// Micro-benchmarks for the pipeline's hot paths: signature extraction,
// database matching, histogram similarity, simulation and pcap I/O.
package dot11fp_test

import (
	"bytes"
	"testing"
	"time"

	"dot11fp"
	"dot11fp/internal/histogram"
)

// microTrace is a small office capture shared by the micro-benchmarks.
var microTrace = func() *dot11fp.Trace {
	tr, err := dot11fp.GenerateOffice("micro", 5, 4*time.Minute, 10)
	if err != nil {
		panic(err)
	}
	return tr
}()

func BenchmarkExtractInterArrival(b *testing.B) {
	cfg := dot11fp.DefaultConfig(dot11fp.ParamInterArrival)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sigs := dot11fp.Extract(microTrace, cfg)
		if len(sigs) == 0 {
			b.Fatal("no signatures")
		}
	}
	b.ReportMetric(float64(len(microTrace.Records)), "records/op")
}

func BenchmarkDatabaseMatch(b *testing.B) {
	cfg := dot11fp.DefaultConfig(dot11fp.ParamInterArrival)
	db := dot11fp.NewDatabase(cfg, dot11fp.MeasureCosine)
	if err := db.Train(microTrace); err != nil {
		b.Fatal(err)
	}
	cands := dot11fp.CandidatesIn(microTrace, time.Minute, cfg)
	if len(cands) == 0 {
		b.Fatal("no candidates")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := cands[i%len(cands)]
		if got := db.Match(c.Sig); len(got) != db.Len() {
			b.Fatal("bad match vector")
		}
	}
}

func BenchmarkCosine512(b *testing.B) {
	h1 := histogram.New(512, 10)
	h2 := histogram.New(512, 10)
	for i := 0; i < 5_000; i++ {
		h1.Add(float64(i % 5120))
		h2.Add(float64((i * 7) % 5120))
	}
	f1, f2 := h1.Freqs(), h2.Freqs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := histogram.Cosine(f1, f2); s < 0 {
			b.Fatal("negative similarity")
		}
	}
}

func BenchmarkSimulatorMinute(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr, err := dot11fp.GenerateOffice("bench-sim", uint64(i+1), time.Minute, 10)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(tr.Records)), "records/op")
	}
}

func BenchmarkPcapRoundTrip(b *testing.B) {
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := dot11fp.WritePcap(&buf, microTrace); err != nil {
			b.Fatal(err)
		}
		tr, err := dot11fp.ReadPcap(&buf)
		if err != nil {
			b.Fatal(err)
		}
		if len(tr.Records) != len(microTrace.Records) {
			b.Fatalf("round trip lost records: %d vs %d", len(tr.Records), len(microTrace.Records))
		}
	}
	b.SetBytes(int64(buf.Len()))
}
