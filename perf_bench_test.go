// Micro-benchmarks for the pipeline's hot paths: signature extraction,
// database matching, histogram similarity, simulation and pcap I/O.
package dot11fp_test

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"runtime"
	"testing"
	"time"

	"dot11fp"
	"dot11fp/internal/histogram"
)

// microTrace is a small office capture shared by the micro-benchmarks.
var microTrace = func() *dot11fp.Trace {
	tr, err := dot11fp.GenerateOffice("micro", 5, 4*time.Minute, 10)
	if err != nil {
		panic(err)
	}
	return tr
}()

func BenchmarkExtractInterArrival(b *testing.B) {
	cfg := dot11fp.DefaultConfig(dot11fp.ParamInterArrival)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sigs := dot11fp.Extract(microTrace, cfg)
		if len(sigs) == 0 {
			b.Fatal("no signatures")
		}
	}
	b.ReportMetric(float64(len(microTrace.Records)), "records/op")
}

// matchFixture builds the shared matching benchmark inputs: a trained
// reference database and the per-window candidates of the micro trace.
func matchFixture(b *testing.B) (*dot11fp.Database, []dot11fp.Candidate) {
	b.Helper()
	cfg := dot11fp.DefaultConfig(dot11fp.ParamInterArrival)
	db := dot11fp.NewDatabase(cfg, dot11fp.MeasureCosine)
	if err := db.Train(microTrace); err != nil {
		b.Fatal(err)
	}
	cands := dot11fp.CandidatesIn(microTrace, time.Minute, cfg)
	if len(cands) == 0 {
		b.Fatal("no candidates")
	}
	return db, cands
}

// BenchmarkDatabaseMatchNaive measures the per-pair Similarity loop —
// the baseline the compiled path is held against. Note Similarity's
// cosine path is itself count-domain now; the seed's freq-domain loop
// (two fresh frequency slices per comparison, ~113µs/96 allocs on the
// reference machine) is recorded in EXPERIMENTS.md.
func BenchmarkDatabaseMatchNaive(b *testing.B) {
	db, cands := matchFixture(b)
	refs := db.Devices()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := cands[i%len(cands)]
		n := 0
		for _, addr := range refs {
			_ = dot11fp.SimilarityOf(c.Sig, db.Signature(addr), db.Measure())
			n++
		}
		if n != db.Len() {
			b.Fatal("bad match vector")
		}
	}
}

// BenchmarkDatabaseMatch measures the public Match API, which delegates
// to the compiled snapshot but still allocates the returned vector.
func BenchmarkDatabaseMatch(b *testing.B) {
	db, cands := matchFixture(b)
	db.Compile() // steady state: snapshot built before timing starts
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := cands[i%len(cands)]
		if got := db.Match(c.Sig); len(got) != db.Len() {
			b.Fatal("bad match vector")
		}
	}
}

// BenchmarkDatabaseMatchAppend measures the append-style form of Match:
// the same compiled fast path, but the caller recycles the result
// buffer across windows, so the steady state is allocation-free without
// owning a MatchScratch.
func BenchmarkDatabaseMatchAppend(b *testing.B) {
	db, cands := matchFixture(b)
	dst := db.MatchAppend(cands[0].Sig, nil) // warm the buffer to Len()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := cands[i%len(cands)]
		dst = db.MatchAppend(c.Sig, dst[:0])
		if len(dst) != db.Len() {
			b.Fatal("bad match vector")
		}
	}
}

// BenchmarkDatabaseMatchCompiled measures the zero-allocation steady
// state: compiled snapshot + caller-owned scratch.
func BenchmarkDatabaseMatchCompiled(b *testing.B) {
	db, cands := matchFixture(b)
	cdb := db.Compile()
	var scratch dot11fp.MatchScratch
	cdb.MatchInto(cands[0].Sig, &scratch) // warm the scratch buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := cands[i%len(cands)]
		if got := cdb.MatchInto(c.Sig, &scratch); len(got) != cdb.Len() {
			b.Fatal("bad match vector")
		}
	}
}

// BenchmarkDatabaseMatchAll measures the batched parallel entry point
// over the full candidate set.
func BenchmarkDatabaseMatchAll(b *testing.B) {
	db, cands := matchFixture(b)
	cdb := db.Compile()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := cdb.MatchAll(cands)
		if len(rows) != len(cands) {
			b.Fatal("bad batch")
		}
	}
	b.ReportMetric(float64(len(cands)), "candidates/op")
}

// TestCompiledMatchZeroAllocs pins the acceptance criterion: the
// compiled match path must not allocate in steady state.
func TestCompiledMatchZeroAllocs(t *testing.T) {
	cfg := dot11fp.DefaultConfig(dot11fp.ParamInterArrival)
	db := dot11fp.NewDatabase(cfg, dot11fp.MeasureCosine)
	if err := db.Train(microTrace); err != nil {
		t.Fatal(err)
	}
	cands := dot11fp.CandidatesIn(microTrace, time.Minute, cfg)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	cdb := db.Compile()
	var scratch dot11fp.MatchScratch
	cdb.MatchInto(cands[0].Sig, &scratch)
	allocs := testing.AllocsPerRun(100, func() {
		for _, c := range cands {
			if got := cdb.MatchInto(c.Sig, &scratch); len(got) != cdb.Len() {
				t.Fatal("bad match vector")
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("compiled match allocated %v times per sweep, want 0", allocs)
	}
}

// BenchmarkCandidatesIn measures the streaming single-pass windowed
// extraction over the micro trace.
func BenchmarkCandidatesIn(b *testing.B) {
	cfg := dot11fp.DefaultConfig(dot11fp.ParamInterArrival)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cands := dot11fp.CandidatesIn(microTrace, time.Minute, cfg); len(cands) == 0 {
			b.Fatal("no candidates")
		}
	}
	b.ReportMetric(float64(len(microTrace.Records)), "records/op")
}

func BenchmarkCosine512(b *testing.B) {
	h1 := histogram.New(512, 10)
	h2 := histogram.New(512, 10)
	for i := 0; i < 5_000; i++ {
		h1.Add(float64(i % 5120))
		h2.Add(float64((i * 7) % 5120))
	}
	f1, f2 := h1.Freqs(), h2.Freqs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := histogram.Cosine(f1, f2); s < 0 {
			b.Fatal("negative similarity")
		}
	}
}

func BenchmarkSimulatorMinute(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr, err := dot11fp.GenerateOffice("bench-sim", uint64(i+1), time.Minute, 10)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(tr.Records)), "records/op")
	}
}

func BenchmarkPcapRoundTrip(b *testing.B) {
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := dot11fp.WritePcap(&buf, microTrace); err != nil {
			b.Fatal(err)
		}
		tr, err := dot11fp.ReadPcap(&buf)
		if err != nil {
			b.Fatal(err)
		}
		if len(tr.Records) != len(microTrace.Records) {
			b.Fatalf("round trip lost records: %d vs %d", len(tr.Records), len(microTrace.Records))
		}
	}
	b.SetBytes(int64(buf.Len()))
}

// BenchmarkDBCodec compares the two checkpoint codecs over the micro
// fixture's trained database — the JSON interop path against the
// binary format the trainer's SIGHUP checkpoints use.
func BenchmarkDBCodec(b *testing.B) {
	db, _ := matchFixture(b)
	var jsonBuf, binBuf bytes.Buffer
	if err := db.Save(&jsonBuf); err != nil {
		b.Fatal(err)
	}
	if err := db.SaveBinary(&binBuf); err != nil {
		b.Fatal(err)
	}
	b.Run("save-json", func(b *testing.B) {
		var buf bytes.Buffer
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := db.Save(&buf); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(buf.Len()))
	})
	b.Run("save-binary", func(b *testing.B) {
		var buf bytes.Buffer
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := db.SaveBinary(&buf); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(buf.Len()))
	})
	b.Run("load-json", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := dot11fp.LoadDatabase(bytes.NewReader(jsonBuf.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(jsonBuf.Len()))
	})
	b.Run("load-binary", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := dot11fp.LoadBinaryDatabase(bytes.NewReader(binBuf.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(binBuf.Len()))
	})
}

// BenchmarkEngineEnroll measures the full online-enrollment loop: a
// cold-started engine over the micro trace with the trainer promoting
// every completed window — push, window rollover, matching, enrollment
// accumulation, promotion and hot-swap included.
func BenchmarkEngineEnroll(b *testing.B) {
	cfg := dot11fp.DefaultConfig(dot11fp.ParamInterArrival)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trainer := dot11fp.NewTrainer(cfg, dot11fp.MeasureCosine, dot11fp.TrainerOptions{Update: true})
		eng, err := dot11fp.NewEngine(cfg, nil, dot11fp.EngineOptions{
			Window:  time.Minute,
			Trainer: trainer,
		})
		if err != nil {
			b.Fatal(err)
		}
		eng.PushTrace(microTrace)
		eng.Close()
		if trainer.Stats().Refs == 0 {
			b.Fatal("nothing enrolled")
		}
	}
	b.ReportMetric(float64(len(microTrace.Records)), "records/op")
}

// engineFixture builds a trained compiled database plus a flat record
// slice for the push-path benchmarks.
func engineFixture(tb testing.TB) (*dot11fp.CompiledDB, dot11fp.Config) {
	tb.Helper()
	cfg := dot11fp.DefaultConfig(dot11fp.ParamInterArrival)
	db := dot11fp.NewDatabase(cfg, dot11fp.MeasureCosine)
	if err := db.Train(microTrace); err != nil {
		tb.Fatal(err)
	}
	return db.Compile(), cfg
}

// BenchmarkEnginePush measures the per-frame ingestion cost of the
// streaming engine within a detection window (no rollover in the inner
// loop): the steady state of a live monitor.
func BenchmarkEnginePush(b *testing.B) {
	cdb, cfg := engineFixture(b)
	eng, err := dot11fp.NewEngine(cfg, cdb, dot11fp.EngineOptions{Window: 24 * time.Hour})
	if err != nil {
		b.Fatal(err)
	}
	recs := microTrace.Records
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := recs[i%len(recs)]
		rec.T = recs[i%len(recs)].T % 3_600_000_000 // keep inside one huge window
		eng.Push(&rec)
	}
	b.StopTimer()
	eng.Close()
}

// BenchmarkEngineStream measures the whole streaming pipeline — push,
// window rollover, matching, event emission — over the micro trace.
func BenchmarkEngineStream(b *testing.B) {
	cdb, cfg := engineFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		events := 0
		eng, err := dot11fp.NewEngine(cfg, cdb, dot11fp.EngineOptions{
			Window: time.Minute,
			Sink:   dot11fp.SinkFunc(func(dot11fp.Event) { events++ }),
		})
		if err != nil {
			b.Fatal(err)
		}
		eng.PushTrace(microTrace)
		eng.Close()
		if events == 0 {
			b.Fatal("no events")
		}
	}
	b.ReportMetric(float64(len(microTrace.Records)), "records/op")
}

// shardedStream synthesises the multi-sender steady-state workload of
// the sharded benchmarks: nSenders stations transmitting round-robin
// with a deterministic mix of classes and sizes, one record every µs.
func shardedStream(nSenders, nRecords int) []dot11fp.Record {
	senders := make([]dot11fp.Addr, nSenders)
	for i := range senders {
		senders[i] = dot11fp.Addr{0x02, 0, 0, 0, byte(i >> 8), byte(i)}
	}
	recs := make([]dot11fp.Record, nRecords)
	x := uint64(1)
	for i := range recs {
		x = x*6364136223846793005 + 1442695040888963407
		recs[i] = dot11fp.Record{
			T:        int64(i) * 40,
			Sender:   senders[i%nSenders],
			Class:    dot11fp.FrameClass(x % 3), // data/qos-data/null mix
			Size:     int(200 + x%1200),
			RateMbps: 24,
			FCSOK:    true,
		}
	}
	return recs
}

// shardedRefs trains a reference database over the synthetic stream so
// the benchmark's window closes carry a realistic matching load.
func shardedRefs(tb testing.TB, recs []dot11fp.Record, cfg dot11fp.Config) *dot11fp.CompiledDB {
	tb.Helper()
	tr := &dot11fp.Trace{Records: recs}
	db := dot11fp.NewDatabase(cfg, dot11fp.MeasureCosine)
	if err := db.Train(tr); err != nil {
		tb.Fatal(err)
	}
	return db.Compile()
}

// BenchmarkShardedPush measures aggregate ingest throughput of the
// sharded engine on a multi-sender synthetic stream — accumulation and
// window matching included, both of which parallelise across shards —
// at 1, 4 and GOMAXPROCS shards. The shards=1 row is the single-core
// pipeline baseline the speedup is read against; the producer (router)
// side is ~10% of the per-frame cost, so shard counts up to ~8 scale
// near-linearly on real cores. Replaying the pre-built stream wraps its
// clock every len(recs) frames, which closes a window exactly like the
// batch semantics and keeps harness cost out of the measured loop.
func BenchmarkShardedPush(b *testing.B) {
	cfg := dot11fp.Config{Param: dot11fp.ParamSize, MinObservations: 10}
	counts := []int{1, 4}
	if p := runtime.GOMAXPROCS(0); p > 4 {
		counts = append(counts, p)
	}
	// 64 senders is a light cell (windows are cheap: ingestion-bound);
	// 1024 senders × 1024 references is the dense cell, where window
	// matching dominates and sharding pays the most.
	for _, nSenders := range []int{64, 1024} {
		recs := shardedStream(nSenders, 1<<18)
		cdb := shardedRefs(b, recs[:1<<17], cfg)
		for _, shards := range counts {
			b.Run(fmt.Sprintf("senders=%d/shards=%d", nSenders, shards), func(b *testing.B) {
				eng, err := dot11fp.NewShardedEngine(cfg, cdb, dot11fp.ShardedOptions{
					// ~10 s of stream per window: every window close
					// matches nSenders candidates against nSenders
					// references.
					Window: 10 * time.Second,
					Shards: shards,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					eng.Push(&recs[i%len(recs)])
				}
				b.StopTimer()
				eng.Close()
				st := eng.Stats()
				if st.Frames != uint64(b.N) || st.DroppedFrames != 0 {
					b.Fatalf("lost frames: %+v", st)
				}
			})
		}
	}
}

// TestShardedPushZeroAllocs extends the serial zero-alloc pin to the
// sharded engine: once a window's senders are established, the
// steady-state push path — routing, batching, queue transfer,
// accumulation — allocates nothing per frame. Window closes and new
// senders amortise to well under 1% of frames and are excluded here by
// keeping the window open.
func TestShardedPushZeroAllocs(t *testing.T) {
	cfg := dot11fp.Config{Param: dot11fp.ParamSize, MinObservations: 10}
	recs := shardedStream(64, 1<<14)
	eng, err := dot11fp.NewShardedEngine(cfg, nil, dot11fp.ShardedOptions{
		Window: 24 * time.Hour,
		Shards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	clock := int64(0)
	sweep := func() {
		for i := range recs {
			rec := recs[i]
			rec.T = clock
			clock += 40
			eng.Push(&rec)
		}
	}
	sweep() // establish the window's senders and batch recycling
	allocs := testing.AllocsPerRun(10, sweep)
	if perFrame := allocs / float64(len(recs)); perFrame > 0.01 {
		t.Fatalf("sharded push allocated %.1f times per %d-record sweep (%.4f/frame), want ~0",
			allocs, len(recs), perFrame)
	}
	eng.Close()
}

// ensembleFixture trains a three-parameter fused reference set over
// the micro trace for the ensemble push benchmarks.
func ensembleFixture(tb testing.TB) (*dot11fp.CompiledEnsemble, []dot11fp.Config) {
	tb.Helper()
	cfgs := []dot11fp.Config{
		{Param: dot11fp.ParamInterArrival},
		{Param: dot11fp.ParamSize},
		{Param: dot11fp.ParamRate},
	}
	ens, err := dot11fp.NewEnsemble(dot11fp.MeasureCosine, cfgs...)
	if err != nil {
		tb.Fatal(err)
	}
	if err := ens.Train(microTrace); err != nil {
		tb.Fatal(err)
	}
	return ens.Compile(), cfgs
}

// BenchmarkEnsemblePush measures the per-frame ingestion cost of the
// fused streaming engine within a detection window: every member
// parameter extracted per frame against the shared inter-arrival
// context — the steady state of a multi-parameter live monitor.
func BenchmarkEnsemblePush(b *testing.B) {
	ce, cfgs := ensembleFixture(b)
	eng, err := dot11fp.NewEnsembleEngine(cfgs, ce, dot11fp.EngineOptions{Window: 24 * time.Hour})
	if err != nil {
		b.Fatal(err)
	}
	recs := microTrace.Records
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := recs[i%len(recs)]
		rec.T = recs[i%len(recs)].T % 3_600_000_000 // keep inside one huge window
		eng.Push(&rec)
	}
	b.StopTimer()
	eng.Close()
}

// TestEnsemblePushZeroAllocs pins the fusion PR's acceptance criterion:
// once a window's senders are established, pushing a frame through the
// ensemble engine allocates nothing — N parameters per frame cost N
// histogram increments, not N allocations.
func TestEnsemblePushZeroAllocs(t *testing.T) {
	ce, cfgs := ensembleFixture(t)
	eng, err := dot11fp.NewEnsembleEngine(cfgs, ce, dot11fp.EngineOptions{Window: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	// Establish the senders and histograms of the open window.
	recs := make([]dot11fp.Record, len(microTrace.Records))
	copy(recs, microTrace.Records)
	for i := range recs {
		recs[i].T %= 3_600_000_000
		eng.Push(&recs[i])
	}
	allocs := testing.AllocsPerRun(20, func() {
		for i := range recs {
			eng.Push(&recs[i])
		}
	})
	if allocs != 0 {
		t.Fatalf("ensemble push allocated %v times per %d-record sweep, want 0", allocs, len(recs))
	}
	eng.Close()
}

// TestEnginePushZeroAllocs pins the redesign's acceptance criterion:
// once a window's senders are established, pushing a frame allocates
// nothing — no per-frame trace materialisation, no hidden buffering.
func TestEnginePushZeroAllocs(t *testing.T) {
	cdb, cfg := engineFixture(t)
	eng, err := dot11fp.NewEngine(cfg, cdb, dot11fp.EngineOptions{Window: 24 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	// Establish the senders and histograms of the open window.
	recs := make([]dot11fp.Record, len(microTrace.Records))
	copy(recs, microTrace.Records)
	for i := range recs {
		recs[i].T %= 3_600_000_000
		eng.Push(&recs[i])
	}
	allocs := testing.AllocsPerRun(20, func() {
		for i := range recs {
			eng.Push(&recs[i])
		}
	})
	if allocs != 0 {
		t.Fatalf("engine push allocated %v times per %d-record sweep, want 0", allocs, len(recs))
	}
	eng.Close()
}

// benchSource replays a fixed record slice — the cheapest possible
// RecordSource, so MultiStream's own merge and supervision overhead
// dominates the measurement.
type benchSource struct {
	recs []dot11fp.Record
	pos  int
}

func (s *benchSource) Next() (dot11fp.Record, error) {
	if s.pos >= len(s.recs) {
		return dot11fp.Record{}, io.EOF
	}
	r := s.recs[s.pos]
	s.pos++
	return r, nil
}

// deadSource is the permanently unplugged radio: every read fails.
type deadSource struct{}

func (deadSource) Next() (dot11fp.Record, error) {
	return dot11fp.Record{}, errors.New("radio unplugged")
}

// BenchmarkMultiStreamDegraded measures the merged-stream drain with
// every lane healthy against the degraded steady state where one lane
// is permanently down — the cost a dead radio imposes on the survivors,
// which supervision promises is a retirement, not a tax.
func BenchmarkMultiStreamDegraded(b *testing.B) {
	const lanes = 4
	perLane := make([][]dot11fp.Record, lanes)
	for i, r := range microTrace.Records {
		perLane[i%lanes] = append(perLane[i%lanes], r)
	}
	sup := dot11fp.Supervisor{
		Reopen:      func(int) (dot11fp.RecordSource, error) { return nil, errors.New("still unplugged") },
		MaxAttempts: 1,
		Backoff:     time.Microsecond,
		MaxBackoff:  time.Microsecond,
	}
	run := func(b *testing.B, degraded bool) {
		b.ReportAllocs()
		var total int
		for i := 0; i < b.N; i++ {
			srcs := make([]dot11fp.RecordSource, 0, lanes)
			for l := 0; l < lanes-1; l++ {
				srcs = append(srcs, &benchSource{recs: perLane[l]})
			}
			if degraded {
				srcs = append(srcs, deadSource{})
			} else {
				srcs = append(srcs, &benchSource{recs: perLane[lanes-1]})
			}
			stream := dot11fp.NewMultiStreamOpts(dot11fp.MultiOptions{
				Mode: dot11fp.MergeByTime, Supervisor: sup,
			}, srcs...)
			n := 0
			for {
				if _, err := stream.Next(); err != nil {
					break
				}
				n++
			}
			stream.Close()
			total += n
		}
		b.ReportMetric(float64(total)/float64(b.N), "records/op")
	}
	b.Run("healthy", func(b *testing.B) { run(b, false) })
	b.Run("one-source-down", func(b *testing.B) { run(b, true) })
}

// randomizedTrace is a MAC-randomizing office capture shared by the
// clustering benchmarks: every client rotates its sender address per
// probe burst, so the push path exercises the content-resolve branch.
var randomizedTrace = func() *dot11fp.Trace {
	p := dot11fp.ScenarioParams{
		Name: "micro-rand", Seed: 5, Duration: 4 * time.Minute, Stations: 10,
		Encrypted: true, CaptureLossProb: 0.01, RandomizedFrac: 1,
	}
	tr, _, err := dot11fp.GenerateScenario(p)
	if err != nil {
		panic(err)
	}
	return tr
}()

// BenchmarkClusterPush measures the per-frame ingestion cost of the
// streaming engine with the clustering stage attached, against the
// no-cluster baseline on the same randomized trace — the price of
// resolving every sender through the content clusterer.
func BenchmarkClusterPush(b *testing.B) {
	cfg := dot11fp.DefaultConfig(dot11fp.ParamInterArrival)
	for _, clustered := range []bool{false, true} {
		name := "baseline"
		var cl *dot11fp.Clusterer
		if clustered {
			name = "clustered"
			cl = dot11fp.NewClusterer(0)
		}
		b.Run(name, func(b *testing.B) {
			eng, err := dot11fp.NewEngine(cfg, nil, dot11fp.EngineOptions{
				Window:  24 * time.Hour,
				Cluster: cl,
			})
			if err != nil {
				b.Fatal(err)
			}
			recs := randomizedTrace.Records
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec := recs[i%len(recs)]
				rec.T = rec.T % 3_600_000_000 // keep inside one huge window
				eng.Push(&rec)
			}
			b.StopTimer()
			eng.Close()
		})
	}
}
