// Quickstart: generate a synthetic office capture, learn a reference
// database from its first minutes, then identify every device seen in
// later 5-minute detection windows — the end-to-end pipeline of the
// paper in ~60 lines.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"dot11fp"
)

func main() {
	// A 14-minute office channel with 12 stations behind one AP.
	trace, err := dot11fp.GenerateOffice("quickstart", 7, 14*time.Minute, 12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("capture: %d frames over %v from %d senders\n",
		len(trace.Records), trace.Duration().Round(time.Second), len(trace.Senders()))

	// Learn reference signatures from the first 4 minutes. The paper's
	// most robust parameter is the frame inter-arrival time.
	train, live := dot11fp.Split(trace, 4*time.Minute)
	cfg := dot11fp.DefaultConfig(dot11fp.ParamInterArrival)
	db := dot11fp.NewDatabase(cfg, dot11fp.MeasureCosine)
	if err := db.Train(train); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference database: %d devices (≥%d observations each)\n\n",
		db.Len(), cfg.MinObservations)

	// Identify candidates per detection window.
	fmt.Printf("%-8s %-20s %-20s %-9s %s\n", "window", "candidate", "best match", "sim", "verdict")
	correct, total := 0, 0
	for _, cand := range dot11fp.CandidatesIn(live, 5*time.Minute, cfg) {
		best, ok := db.Best(cand.Sig)
		if !ok {
			continue
		}
		verdict := "MISMATCH"
		if best.Addr == dot11fp.Addr(cand.Addr) {
			verdict = "identified"
			correct++
		}
		total++
		fmt.Printf("%-8d %-20s %-20s %-9.4f %s\n",
			cand.Window, dot11fp.Addr(cand.Addr), best.Addr, best.Sim, verdict)
	}
	if total > 0 {
		fmt.Printf("\nidentification ratio: %d/%d = %.1f%%\n",
			correct, total, 100*float64(correct)/float64(total))
	}
}
