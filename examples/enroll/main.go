// Enroll: online enrollment end to end — a cold-started monitor on a
// conference-scenario stream with zero references that learns them all
// live. The Trainer watches the engine's windows, accumulates unknown
// senders over a two-window horizon, and hot-swaps each promotion
// batch into the engine, so devices flip from UNKNOWN to identified
// while the stream keeps flowing.
//
// The second half sweeps the enrollment horizon: the first K-window
// prefix of the stream enrolls under each horizon, and the remainder
// is scored against the resulting references — the
// horizon-vs-accuracy trade-off recorded in EXPERIMENTS.md.
//
// Run with:
//
//	go run ./examples/enroll
package main

import (
	"fmt"
	"log"
	"time"

	"dot11fp"
)

const window = 2 * time.Minute

func main() {
	// A 20-minute open-network conference channel: churny associations,
	// a homogeneous fleet — the hard case for cold-start learning.
	trace, err := dot11fp.GenerateConference("enroll", 7, 20*time.Minute, 14)
	if err != nil {
		log.Fatal(err)
	}
	cfg := dot11fp.DefaultConfig(dot11fp.ParamInterArrival)

	// Cold start: no database at all. The trainer owns the references;
	// auto-enroll after a sender has been a candidate in 2 windows.
	trainer := dot11fp.NewTrainer(cfg, dot11fp.MeasureCosine, dot11fp.TrainerOptions{
		Horizon: 2,
	})
	eng, err := dot11fp.NewEngine(cfg, nil, dot11fp.EngineOptions{
		Window:  window,
		Trainer: trainer,
		Sink: dot11fp.SinkFunc(func(ev dot11fp.Event) {
			switch ev := ev.(type) {
			case dot11fp.DeviceEnrolled:
				fmt.Printf("  + %s enrolled (%d observations over %d windows)\n",
					ev.Addr, ev.Observations, ev.Windows)
			case dot11fp.DBSwapped:
				fmt.Printf("  references v%d installed: %d devices\n\n", ev.Version, ev.Refs)
			case dot11fp.CandidateMatched:
				if ev.Best.Addr == ev.Addr {
					return // self-identification is the quiet steady state
				}
				fmt.Printf("  %s -> %s  sim=%.4f  MISMATCH\n", ev.Addr, ev.Best.Addr, ev.Best.Sim)
			case dot11fp.WindowClosed:
				fmt.Printf("window %d: %d candidates, %d matched, %d still unknown\n",
					ev.Window, ev.Candidates, ev.Matched, ev.Unknown)
			}
		}),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cold start: 0 references, enrolling live")
	eng.PushTrace(trace)
	eng.Close()

	st, ts := eng.Stats(), trainer.Stats()
	fmt.Printf("\nstream done: %d frames, %d windows; %d references enrolled in %d swaps\n",
		st.Frames, st.WindowsClosed, ts.Refs, ts.Swaps)

	// Horizon sweep: enroll on the first 6 windows, validate on the rest.
	const prefixWindows = 6
	cut := trace.Records[0].T + prefixWindows*window.Microseconds()
	prefix := trace.Slice(-1<<62, cut)
	remainder := trace.Slice(cut, 1<<62)
	fmt.Printf("\nenrollment horizon sweep (enroll on first %d windows, validate on the rest):\n", prefixWindows)
	fmt.Println("  horizon  refs  validation-accuracy")
	for horizon := 1; horizon <= 4; horizon++ {
		tr := dot11fp.NewTrainer(cfg, dot11fp.MeasureCosine, dot11fp.TrainerOptions{
			Horizon: horizon,
			Update:  true,
		})
		e, err := dot11fp.NewEngine(cfg, nil, dot11fp.EngineOptions{Window: window, Trainer: tr})
		if err != nil {
			log.Fatal(err)
		}
		e.PushTrace(prefix)
		e.Close()

		// Score the remainder against the live-enrolled references.
		db := tr.Database()
		correct, total := 0, 0
		cdb := db.Compile()
		for _, cand := range dot11fp.CandidatesIn(remainder, window, cfg) {
			var addr dot11fp.Addr = cand.Addr
			best := dot11fp.Score{Sim: -1}
			for _, sc := range cdb.Match(cand.Sig) {
				if sc.Sim > best.Sim {
					best = sc
				}
			}
			total++
			if best.Addr == addr {
				correct++
			}
		}
		fmt.Printf("  %7d  %4d  %d/%d (%.1f%%)\n",
			horizon, db.Len(), correct, total, 100*float64(correct)/float64(total))
	}
}
