// Tracking demonstrates the privacy flip-side the paper closes with
// (§VII-B3): a device that randomises its MAC address to stay anonymous
// can still be tracked, because its traffic signature survives the
// address change.
//
// The demo learns signatures for every device in a conference hall,
// then a privacy-conscious device re-joins under a fresh random MAC.
// The identification test maps the new address straight back to the
// enrolled identity.
//
// Run with:
//
//	go run ./examples/tracking
package main

import (
	"fmt"
	"log"
	"time"

	"dot11fp"
)

func main() {
	trace, err := dot11fp.GenerateConference("tracking-demo", 17, 16*time.Minute, 12)
	if err != nil {
		log.Fatal(err)
	}
	train, live := dot11fp.Split(trace, 5*time.Minute)

	cfg := dot11fp.DefaultConfig(dot11fp.ParamInterArrival)
	db := dot11fp.NewDatabase(cfg, dot11fp.MeasureCosine)
	if err := db.Train(train); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("enrolled %d devices during the first 5 minutes\n", db.Len())

	// The target randomises its MAC for the rest of the conference.
	target := busiest(db, live)
	fresh, err := dot11fp.ParseAddr("06:de:ad:be:ef:01") // locally administered
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("target %v re-joins as %v\n\n", target, fresh)

	anon := &dot11fp.Trace{Name: "anon", Channel: live.Channel}
	for _, rec := range live.Records {
		if rec.Sender == target {
			rec.Sender = fresh
		}
		if rec.Receiver == target {
			rec.Receiver = fresh
		}
		anon.Records = append(anon.Records, rec)
	}

	fmt.Printf("%-8s %-20s %-20s %-9s %s\n", "window", "observed MAC", "identified as", "sim", "note")
	hits, windows := 0, 0
	for _, cand := range dot11fp.CandidatesIn(anon, 5*time.Minute, cfg) {
		if dot11fp.Addr(cand.Addr) != fresh {
			continue
		}
		windows++
		best, ok := db.Best(cand.Sig)
		if !ok {
			continue
		}
		note := ""
		if best.Addr == target {
			note = "← tracked despite MAC randomisation"
			hits++
		}
		fmt.Printf("%-8d %-20s %-20s %-9.4f %s\n", cand.Window, fresh, best.Addr, best.Sim, note)
	}
	if windows > 0 {
		fmt.Printf("\nre-identification: %d/%d windows\n", hits, windows)
	} else {
		fmt.Println("target produced too little traffic in the validation period")
	}
}

// busiest picks the enrolled device with the most validation traffic.
func busiest(db *dot11fp.Database, tr *dot11fp.Trace) dot11fp.Addr {
	counts := tr.Senders()
	var best dot11fp.Addr
	for _, d := range db.Devices() {
		if counts[d] > counts[best] {
			best = d
		}
	}
	return best
}
