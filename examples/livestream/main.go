// Livestream: the streaming engine end to end — learn references from
// the first minutes of a capture, then push the rest through the
// push-based Engine one record at a time and react to typed match
// events as each detection window closes. Mid-stream, the reference
// database is retrained and hot-swapped without dropping a frame.
//
// Run with:
//
//	go run ./examples/livestream
package main

import (
	"fmt"
	"log"
	"time"

	"dot11fp"
)

func main() {
	// A 16-minute office channel; the first 4 minutes are the
	// reference period, the rest arrives "live".
	trace, err := dot11fp.GenerateOffice("livestream", 11, 16*time.Minute, 12)
	if err != nil {
		log.Fatal(err)
	}
	train, live := dot11fp.Split(trace, 4*time.Minute)

	cfg := dot11fp.DefaultConfig(dot11fp.ParamInterArrival)
	db := dot11fp.NewDatabase(cfg, dot11fp.MeasureCosine)
	if err := db.Train(train); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("references: %d devices from the first 4 minutes\n\n", db.Len())

	eng, err := dot11fp.NewEngine(cfg, db.Compile(), dot11fp.EngineOptions{
		Window: 3 * time.Minute,
		Sink: dot11fp.SinkFunc(func(ev dot11fp.Event) {
			switch ev := ev.(type) {
			case dot11fp.CandidateMatched:
				verdict := "identified"
				if ev.Best.Addr != ev.Addr {
					verdict = "MISMATCH"
				}
				fmt.Printf("  %s -> %s  sim=%.4f  %s\n", ev.Addr, ev.Best.Addr, ev.Best.Sim, verdict)
			case dot11fp.WindowClosed:
				fmt.Printf("window %d closed: %d candidates, %d matched\n\n",
					ev.Window, ev.Candidates, ev.Matched)
			}
		}),
	})
	if err != nil {
		log.Fatal(err)
	}

	// Feed the live records one at a time, exactly as a monitor driver
	// would. Halfway through, fold the stream seen so far into the
	// references and hot-swap the database mid-stream.
	half := len(live.Records) / 2
	for i := range live.Records {
		eng.Push(&live.Records[i])
		if i == half {
			if err := db.Train(live.Slice(live.Records[0].T, live.Records[half].T)); err != nil {
				log.Fatal(err)
			}
			if err := eng.SetDB(db.Compile()); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("(references retrained mid-stream: %d devices)\n\n", db.Len())
		}
	}
	eng.Close()

	st := eng.Stats()
	fmt.Printf("stats: %d frames (%.0f frames/s), %d windows, %d/%d candidates matched\n",
		st.Frames, st.FramesPerSec, st.WindowsClosed, st.Matched, st.Candidates)
}
