// Spoofdetect demonstrates the paper's §VII-B1 application: an access
// point that routinely fingerprints its clients can detect MAC-address
// spoofing, because forging an inter-arrival-time signature is much
// harder than forging a MAC address.
//
// The demo learns the legitimate device's signature, then replays a
// validation period in which an attacker (a different physical device —
// different card, driver and traffic stack) has taken over the victim's
// MAC address. The fingerprint flags the session even though every
// frame carries the "right" address.
//
// Run with:
//
//	go run ./examples/spoofdetect
package main

import (
	"fmt"
	"log"
	"time"

	"dot11fp"
)

func main() {
	trace, err := dot11fp.GenerateOffice("spoof-demo", 11, 16*time.Minute, 10)
	if err != nil {
		log.Fatal(err)
	}
	train, live := dot11fp.Split(trace, 5*time.Minute)

	cfg := dot11fp.DefaultConfig(dot11fp.ParamInterArrival)
	db := dot11fp.NewDatabase(cfg, dot11fp.MeasureCosine)
	if err := db.Train(train); err != nil {
		log.Fatal(err)
	}

	// Pick the two busiest reference devices: one victim, one "attacker"
	// whose hardware will impersonate the victim's MAC.
	devices := db.Devices()
	if len(devices) < 2 {
		log.Fatal("need at least two reference devices")
	}
	victim, attacker := busiest(db, live, devices)
	fmt.Printf("victim:   %v\nattacker: %v (will spoof the victim's MAC)\n\n", victim, attacker)

	// Forge the attack capture: the victim has left the hot-spot (its
	// own frames disappear) and the attacker's radio now emits every
	// frame under the victim's address — the classic session hijack that
	// ifconfig/macchanger enables.
	spoofed := &dot11fp.Trace{Name: "spoofed", Base: live.Base, Channel: live.Channel, Encrypted: live.Encrypted}
	for _, rec := range live.Records {
		if rec.Sender == victim || rec.Receiver == victim {
			continue // the victim walked away
		}
		if rec.Sender == attacker {
			rec.Sender = victim
		}
		if rec.Receiver == attacker {
			rec.Receiver = victim
		}
		spoofed.Records = append(spoofed.Records, rec)
	}

	fmt.Printf("%-8s %-20s %-10s %-10s %s\n", "window", "claimed MAC", "self-sim", "best-sim", "verdict")
	for _, cand := range dot11fp.CandidatesIn(spoofed, 5*time.Minute, cfg) {
		if dot11fp.Addr(cand.Addr) != victim {
			continue
		}
		// How well does the claimed identity's traffic match its own
		// reference signature?
		self := dot11fp.SimilarityOf(cand.Sig, db.Signature(victim), dot11fp.MeasureCosine)
		best, _ := db.Best(cand.Sig)
		verdict := "ok"
		// The window now blends victim and attacker frames; the drop in
		// self-similarity versus the learned signature raises the alarm.
		if self < 0.80 || best.Addr != victim {
			verdict = "SPOOFING SUSPECTED"
		}
		fmt.Printf("%-8d %-20s %-10.4f %-10.4f %s\n", cand.Window, victim, self, best.Sim, verdict)
	}
}

// busiest returns the two devices with the most validation traffic.
func busiest(db *dot11fp.Database, tr *dot11fp.Trace, devices []dot11fp.Addr) (a, b dot11fp.Addr) {
	counts := tr.Senders()
	for _, d := range devices {
		switch {
		case counts[d] > counts[a]:
			a, b = d, a
		case counts[d] > counts[b]:
			b = d
		}
	}
	return a, b
}
