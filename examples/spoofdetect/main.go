// Spoofdetect demonstrates the paper's §VII-B1 application: an access
// point that routinely fingerprints its clients can detect MAC-address
// spoofing, because forging a traffic signature is much harder than
// forging a MAC address.
//
// The demo learns each legitimate device's fused signature — a
// three-parameter ensemble over inter-arrival time, frame size and
// transmission rate, the combination the paper's conclusion proposes —
// then replays a validation period in which an attacker (a different
// physical device: different card, driver and traffic stack) has taken
// over the victim's MAC address. The fused fingerprint flags the
// session even though every frame carries the "right" address, and the
// per-parameter scores show which member raised the alarm: an attacker
// can imitate one parameter (send the victim's frame sizes) far more
// easily than all of them at once.
//
// Run with:
//
//	go run ./examples/spoofdetect
package main

import (
	"fmt"
	"log"
	"time"

	"dot11fp"
)

func main() {
	trace, err := dot11fp.GenerateOffice("spoof-demo", 11, 16*time.Minute, 10)
	if err != nil {
		log.Fatal(err)
	}
	train, live := dot11fp.Split(trace, 5*time.Minute)

	cfgs := []dot11fp.Config{
		{Param: dot11fp.ParamInterArrival},
		{Param: dot11fp.ParamSize},
		{Param: dot11fp.ParamRate},
	}
	ens, err := dot11fp.NewEnsemble(dot11fp.MeasureCosine, cfgs...)
	if err != nil {
		log.Fatal(err)
	}
	if err := ens.Train(train); err != nil {
		log.Fatal(err)
	}
	ce := ens.Compile()

	// Pick the two busiest reference devices: one victim, one "attacker"
	// whose hardware will impersonate the victim's MAC.
	devices := ce.Devices()
	if len(devices) < 2 {
		log.Fatal("need at least two reference devices")
	}
	victim, attacker := busiest(live, devices)
	fmt.Printf("victim:   %v\nattacker: %v (will spoof the victim's MAC)\n\n", victim, attacker)

	// Forge the attack capture: the victim has left the hot-spot (its
	// own frames disappear) and the attacker's radio now emits every
	// frame under the victim's address — the classic session hijack that
	// ifconfig/macchanger enables.
	spoofed := &dot11fp.Trace{Name: "spoofed", Base: live.Base, Channel: live.Channel, Encrypted: live.Encrypted}
	for _, rec := range live.Records {
		if rec.Sender == victim || rec.Receiver == victim {
			continue // the victim walked away
		}
		if rec.Sender == attacker {
			rec.Sender = victim
		}
		if rec.Receiver == attacker {
			rec.Receiver = victim
		}
		spoofed.Records = append(spoofed.Records, rec)
	}

	fmt.Printf("%-8s %-20s %-10s %-22s %s\n", "window", "claimed MAC", "fused-self", "per-param self (iat/size/rate)", "verdict")
	victimIdx := -1
	for i, addr := range ce.Devices() {
		if addr == victim {
			victimIdx = i
		}
	}
	for _, cand := range ens.CandidatesIn(spoofed, 5*time.Minute) {
		if dot11fp.Addr(cand.Addr) != victim {
			continue
		}
		// How well does the claimed identity's traffic match its own
		// fused reference — and which member disagrees?
		fused, perParam := ce.Match(cand)
		self := fused[victimIdx].Sim
		best, _ := ce.Best(cand)
		verdict := "ok"
		// The window now blends victim and attacker frames; the drop in
		// fused self-similarity versus the learned signature raises the
		// alarm even when one member (e.g. frame size) still looks close.
		if self < 0.80 || best.Addr != victim {
			verdict = "SPOOFING SUSPECTED"
		}
		members := ""
		for m := range perParam {
			if m > 0 {
				members += "/"
			}
			members += fmt.Sprintf("%.2f", memberSelf(perParam[m], victim))
		}
		fmt.Printf("%-8d %-20s %-10.4f %-22s %s\n", cand.Window, victim.String(), self, members, verdict)
	}
}

// memberSelf finds the victim's score in one member's vector.
func memberSelf(scores []dot11fp.Score, victim dot11fp.Addr) float64 {
	for _, sc := range scores {
		if sc.Addr == victim {
			return sc.Sim
		}
	}
	return 0
}

// busiest returns the two devices with the most validation traffic.
func busiest(tr *dot11fp.Trace, devices []dot11fp.Addr) (a, b dot11fp.Addr) {
	counts := tr.Senders()
	for _, d := range devices {
		switch {
		case counts[d] > counts[a]:
			a, b = d, a
		case counts[d] > counts[b]:
			b = d
		}
	}
	return a, b
}
