// Rogueap demonstrates the paper's §VII-B2 application: detecting an
// access-point impersonation. A hot-spot operator publishes the genuine
// AP's signature; clients routinely fingerprint the AP they are talking
// to and alarm on mismatch.
//
// The rogue here is a laptop running AP software (AirSnarf-style): it
// advertises the genuine BSSID, but its wireless card, driver timing and
// traffic mix betray it.
//
// Run with:
//
//	go run ./examples/rogueap
package main

import (
	"fmt"
	"log"
	"time"

	"dot11fp"
)

func main() {
	// Phase 1 — safe learning period (paper: "when receiving the AP from
	// the vendor or during the installation of the hot-spot").
	genuine, err := dot11fp.GenerateOffice("genuine-ap", 21, 8*time.Minute, 8)
	if err != nil {
		log.Fatal(err)
	}
	apAddr := busiestBeaconer(genuine)
	fmt.Printf("genuine AP: %v\n", apAddr)

	cfg := dot11fp.DefaultConfig(dot11fp.ParamInterArrival)
	db := dot11fp.NewDatabase(cfg, dot11fp.MeasureCosine)
	if err := db.Train(genuine); err != nil {
		log.Fatal(err)
	}
	if db.Signature(apAddr) == nil {
		log.Fatal("AP not in reference database")
	}

	// Phase 2 — a later session at "the same hot-spot". In the rogue run
	// a client-grade device impersonates the AP's MAC; in the honest run
	// the same AP keeps operating.
	honest, err := dot11fp.GenerateOffice("genuine-ap", 21, 16*time.Minute, 8)
	if err != nil {
		log.Fatal(err)
	}
	_, honestLive := dot11fp.Split(honest, 8*time.Minute)
	check(db, apAddr, honestLive, "honest session")

	rogueWorld, err := dot11fp.GenerateConference("rogue-world", 33, 8*time.Minute, 8)
	if err != nil {
		log.Fatal(err)
	}
	// The impersonator: the busiest client in a different environment,
	// rebadged with the genuine AP's address.
	impostor := busiestClient(rogueWorld)
	rogue := &dot11fp.Trace{Name: "rogue", Channel: rogueWorld.Channel}
	for _, rec := range rogueWorld.Records {
		if rec.Sender == impostor {
			rec.Sender = apAddr
		}
		rogue.Records = append(rogue.Records, rec)
	}
	check(db, apAddr, rogue, "rogue session")
}

func check(db *dot11fp.Database, apAddr dot11fp.Addr, tr *dot11fp.Trace, label string) {
	cfg := db.Config()
	sig := dot11fp.ExtractOne(tr, apAddr, cfg)
	if sig.Observations() < uint64(cfg.MinObservations) {
		fmt.Printf("%-15s: not enough AP frames (%d)\n", label, sig.Observations())
		return
	}
	self := dot11fp.SimilarityOf(sig, db.Signature(apAddr), dot11fp.MeasureCosine)
	verdict := "AP authentic"
	if self < 0.80 {
		verdict = "ROGUE AP SUSPECTED"
	}
	fmt.Printf("%-15s: similarity to enrolled AP signature = %.4f → %s\n", label, self, verdict)
}

// busiestBeaconer finds the AP (the beacon sender) in a trace.
func busiestBeaconer(tr *dot11fp.Trace) dot11fp.Addr {
	counts := map[dot11fp.Addr]int{}
	for _, rec := range tr.Records {
		if rec.Class.String() == "beacon" && !rec.Sender.IsZero() {
			counts[rec.Sender]++
		}
	}
	var best dot11fp.Addr
	for a, n := range counts {
		if n > counts[best] {
			best = a
		}
	}
	return best
}

// busiestClient finds the most active non-AP sender.
func busiestClient(tr *dot11fp.Trace) dot11fp.Addr {
	ap := busiestBeaconer(tr)
	var best dot11fp.Addr
	counts := tr.Senders()
	for a, n := range counts {
		if a != ap && n > counts[best] {
			best = a
		}
	}
	return best
}
