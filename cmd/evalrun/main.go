// Command evalrun reproduces the paper's evaluation: Table I (trace
// features), Table II (similarity-test AUC), Table III (identification
// ratios) and the Figure 3 similarity-curve series, on synthetic
// office/conference traces standing in for the paper's captures.
//
// The paper's traces span 7 hours with up to 188 reference devices; the
// -scale flag shrinks durations (and -stations the populations) so the
// full grid runs in minutes. EXPERIMENTS.md records results at the
// committed defaults.
//
// Usage:
//
//	evalrun [-scale 0.1] [-stations 48] [-seed 7] [-params iat,txtime]
//	        [-traces conf1,office1] [-fig3 DIR] [-windows 5m]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dot11fp"
	"dot11fp/internal/core"
	"dot11fp/internal/eval"
	"dot11fp/internal/scenario"
)

// traceSpec describes one of the paper's four evaluation traces.
type traceSpec struct {
	name       string
	conference bool
	// Paper-scale knobs.
	total time.Duration
	ref   time.Duration
	// population at -stations baseline (office1 = baseline).
	popFactor float64
	seed      uint64
}

var traceSpecs = []traceSpec{
	{name: "conf-1", conference: true, total: 7 * time.Hour, ref: time.Hour, popFactor: 1.3, seed: 101},
	{name: "conf-2", conference: true, total: time.Hour, ref: 20 * time.Minute, popFactor: 0.8, seed: 102},
	{name: "office-1", conference: false, total: 7 * time.Hour, ref: time.Hour, popFactor: 1.0, seed: 103},
	{name: "office-2", conference: false, total: time.Hour, ref: 20 * time.Minute, popFactor: 0.8, seed: 104},
}

func main() {
	scale := flag.Float64("scale", 0.1, "duration scale relative to the paper's traces (1.0 = 7h/1h)")
	stations := flag.Int("stations", 40, "baseline resident population (office-1); other traces scale from it")
	seed := flag.Uint64("seed", 0, "seed offset added to each trace's base seed")
	paramsFlag := flag.String("params", "all", "comma-separated parameters (rate,size,mtime,txtime,iat) or 'all'")
	tracesFlag := flag.String("traces", "all", "comma-separated traces (conf-1,conf-2,office-1,office-2) or 'all'")
	fig3 := flag.String("fig3", "", "directory to write Figure-3 TSV curve files into")
	window := flag.Duration("window", 5*time.Minute, "detection window size")
	minRef := flag.Duration("minref", 4*time.Minute, "lower bound applied to scaled reference durations")
	flag.Parse()

	params, err := selectParams(*paramsFlag)
	if err != nil {
		fatal(err)
	}
	specs, err := selectTraces(*tracesFlag)
	if err != nil {
		fatal(err)
	}

	results := make(map[string]map[core.Param]*eval.Result, len(specs))
	var infos []eval.TraceInfo
	var order []string

	for _, ts := range specs {
		total := scaleDur(ts.total, *scale)
		ref := scaleDur(ts.ref, *scale)
		if ref < *minRef {
			ref = *minRef
		}
		if total < ref+2**window {
			total = ref + 2**window
		}
		pop := int(float64(*stations)*ts.popFactor + 0.5)
		fmt.Fprintf(os.Stderr, "building %-9s total=%v ref=%v stations=%d...\n", ts.name, total, ref, pop)
		var p scenario.Params
		if ts.conference {
			p = scenario.Conference(ts.name, ts.seed+*seed, total, pop)
		} else {
			p = scenario.Office(ts.name, ts.seed+*seed, total, pop)
		}
		tr, _, err := scenario.Build(p)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "  %d records, %d senders\n", len(tr.Records), len(tr.Senders()))

		infos = append(infos, dot11fp.DescribeTrace(tr, ref, dot11fp.DefaultConfig(dot11fp.ParamInterArrival)))
		order = append(order, ts.name)
		results[ts.name] = make(map[core.Param]*eval.Result, len(params))
		for _, param := range params {
			res, err := dot11fp.Evaluate(tr, dot11fp.EvalSpec{
				RefDuration: ref,
				Window:      *window,
				Config:      dot11fp.DefaultConfig(param),
			})
			if err != nil {
				fatal(err)
			}
			results[ts.name][param] = res
			fmt.Fprintf(os.Stderr, "  %-20s AUC=%5.1f%% id@0.01=%5.1f%% id@0.1=%5.1f%% (refs=%d cand=%d)\n",
				param, res.AUC*100, res.IdentAtFPR[0.01]*100, res.IdentAtFPR[0.1]*100,
				res.RefDevices, res.Candidates)
			if *fig3 != "" {
				if err := writeCurve(*fig3, ts.name, res); err != nil {
					fatal(err)
				}
			}
		}
	}

	fmt.Println("TABLE I — EVALUATION TRACE FEATURES")
	fmt.Println(eval.FormatTableI(infos))
	fmt.Println("TABLE II — AUC FOR THE SIMILARITY TEST")
	fmt.Println(eval.FormatTableII(results, order))
	fmt.Println("TABLE III — IDENTIFICATION RATIOS")
	fmt.Println(eval.FormatTableIII(results, order))
}

func scaleDur(d time.Duration, s float64) time.Duration {
	return time.Duration(float64(d) * s).Round(time.Second)
}

func selectParams(s string) ([]core.Param, error) {
	if s == "all" {
		return dot11fp.Params, nil
	}
	var out []core.Param
	for _, tok := range strings.Split(s, ",") {
		p, err := dot11fp.ParamByShortName(strings.TrimSpace(tok))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

func selectTraces(s string) ([]traceSpec, error) {
	if s == "all" {
		return traceSpecs, nil
	}
	var out []traceSpec
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		found := false
		for _, ts := range traceSpecs {
			if ts.name == tok {
				out = append(out, ts)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown trace %q", tok)
		}
	}
	return out, nil
}

func writeCurve(dir, trace string, res *eval.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := filepath.Join(dir, fmt.Sprintf("fig3-%s-%s.tsv", trace, res.Param.ShortName()))
	return os.WriteFile(name, []byte(eval.FormatCurveTSV(res)), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "evalrun:", err)
	os.Exit(1)
}
