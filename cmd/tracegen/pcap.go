package main

import (
	"fmt"
	"io"

	"dot11fp/internal/capture"
	"dot11fp/internal/pcap"
)

// writePcap serialises the trace; split out for testability.
func writePcap(w io.Writer, tr *capture.Trace, linkType uint32) error {
	return capture.WritePcapLinkType(w, tr, linkType)
}

// linkTypeOf maps the -format flag to a pcap link type.
func linkTypeOf(format string) (uint32, error) {
	switch format {
	case "radiotap":
		return pcap.LinkTypeRadiotap, nil
	case "prism":
		return pcap.LinkTypePrism, nil
	default:
		return 0, fmt.Errorf("unknown capture format %q", format)
	}
}
