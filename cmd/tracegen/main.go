// Command tracegen synthesises office/conference monitor traces and
// writes them as standard radiotap pcap files, the input format of
// fpanalyze and of any off-the-shelf 802.11 toolchain.
//
// Usage:
//
//	tracegen -scenario office -duration 20m -stations 25 -seed 7 -o office.pcap
//	tracegen -scenario conference -duration 1h -stations 90 -o conf.pcap -manifest conf-truth.txt
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dot11fp/internal/scenario"
)

func main() {
	kind := flag.String("scenario", "office", "office, conference or randomized")
	duration := flag.Duration("duration", 20*time.Minute, "trace duration")
	stations := flag.Int("stations", 25, "resident station count")
	seed := flag.Uint64("seed", 1, "random seed")
	out := flag.String("o", "", "output pcap path (required)")
	format := flag.String("format", "radiotap", "capture header format: radiotap or prism")
	manifest := flag.String("manifest", "", "optional ground-truth manifest path")
	flag.Parse()

	if *out == "" {
		fatal(fmt.Errorf("missing -o output path"))
	}
	var p scenario.Params
	switch *kind {
	case "office":
		p = scenario.Office(*kind, *seed, *duration, *stations)
	case "conference":
		p = scenario.Conference(*kind, *seed, *duration, *stations)
	case "randomized":
		p = scenario.RandomizedOffice(*kind, *seed, *duration, *stations)
	default:
		fatal(fmt.Errorf("unknown scenario %q", *kind))
	}

	tr, st, infos, err := scenario.BuildDetailed(p)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "tracegen: %d records, %d senders, %d collisions, %d retries\n",
		st.Records, len(tr.Senders()), st.Collisions, st.Retries)

	linkType, err := linkTypeOf(*format)
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if err := writePcap(f, tr, linkType); err != nil {
		fatal(err)
	}
	// Close on the write side reports deferred write-back failures — an
	// unchecked one here could hand the test suite a torn trace.
	if err := f.Close(); err != nil {
		fatal(err)
	}
	if *manifest != "" {
		mf, err := os.Create(*manifest)
		if err != nil {
			fatal(err)
		}
		for _, si := range infos {
			fmt.Fprintf(mf, "%s\tprofile=%s\tapp=%s\tservices=%v\tsnr=%.1f\tjoin=%dus\tleave=%dus\trandomized=%t\n",
				si.Addr, si.Profile, si.App, si.Services, si.SNRBaseDB, si.JoinUs, si.LeaveUs, si.Randomized)
		}
		if err := mf.Close(); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
