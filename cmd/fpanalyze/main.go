// Command fpanalyze is the reproduction of the paper's analysis tool
// (§V-C, originally Python/pcap): it ingests standard radiotap pcap
// captures, builds device signatures from a chosen network parameter,
// maintains a reference database, and matches candidates against it.
//
// Train a reference database from a capture:
//
//	fpanalyze -pcap office.pcap -param iat -train -db refs.json
//
// Match a later capture against it (per 5-minute detection window):
//
//	fpanalyze -pcap live.pcap -param iat -db refs.json -match
//
// List the devices and signature sizes in a capture:
//
//	fpanalyze -pcap office.pcap -param iat -list
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"dot11fp"
)

func main() {
	pcapPath := flag.String("pcap", "", "input radiotap pcap (required)")
	paramName := flag.String("param", "iat", "network parameter: rate,size,mtime,txtime,iat")
	dbPath := flag.String("db", "", "reference database path (JSON)")
	train := flag.Bool("train", false, "build/extend the database from the capture")
	match := flag.Bool("match", false, "match capture windows against the database")
	list := flag.Bool("list", false, "list devices and observation counts")
	window := flag.Duration("window", 5*time.Minute, "detection window for -match")
	minObs := flag.Int("minobs", 50, "minimum observations per signature")
	threshold := flag.Float64("threshold", 0.5, "similarity threshold for reporting matches")
	flag.Parse()

	if *pcapPath == "" {
		fatal(fmt.Errorf("missing -pcap"))
	}
	param, err := dot11fp.ParamByShortName(*paramName)
	if err != nil {
		fatal(err)
	}
	cfg := dot11fp.Config{Param: param, MinObservations: *minObs}

	f, err := os.Open(*pcapPath)
	if err != nil {
		fatal(err)
	}
	tr, err := dot11fp.ReadPcap(f)
	_ = f.Close() // read-only handle; the decode error is the one reported
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "fpanalyze: %d records, %v span, %d senders\n",
		len(tr.Records), tr.Duration().Round(time.Second), len(tr.Senders()))

	switch {
	case *list:
		runList(tr, cfg)
	case *train:
		if *dbPath == "" {
			fatal(fmt.Errorf("-train requires -db"))
		}
		runTrain(tr, cfg, *dbPath)
	case *match:
		if *dbPath == "" {
			fatal(fmt.Errorf("-match requires -db"))
		}
		runMatch(tr, *dbPath, *window, *threshold)
	default:
		fatal(fmt.Errorf("one of -list, -train, -match is required"))
	}
}

func runList(tr *dot11fp.Trace, cfg dot11fp.Config) {
	sigs := dot11fp.Extract(tr, cfg)
	type row struct {
		addr dot11fp.Addr
		obs  uint64
	}
	rows := make([]row, 0, len(sigs))
	for addr, sig := range sigs {
		rows = append(rows, row{addr, sig.Observations()})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].obs > rows[j].obs })
	fmt.Printf("%-20s %12s\n", "device", "observations")
	for _, r := range rows {
		fmt.Printf("%-20s %12d\n", r.addr, r.obs)
	}
}

func runTrain(tr *dot11fp.Trace, cfg dot11fp.Config, dbPath string) {
	db := loadOrNew(dbPath, cfg)
	if err := db.Train(tr); err != nil {
		fatal(err)
	}
	f, err := os.Create(dbPath)
	if err != nil {
		fatal(err)
	}
	if err := db.Save(f); err != nil {
		fatal(err)
	}
	// The Close error is the write-back verdict for everything buffered;
	// checking it is what makes the success line below true.
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("trained %d reference devices into %s\n", db.Len(), dbPath)
}

func runMatch(tr *dot11fp.Trace, dbPath string, window time.Duration, threshold float64) {
	f, err := os.Open(dbPath)
	if err != nil {
		fatal(err)
	}
	db, err := dot11fp.LoadDatabase(f)
	_ = f.Close() // read-only handle; the load error is the one reported
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%-8s %-20s %-20s %-9s %s\n", "window", "candidate", "best match", "sim", "verdict")
	for _, cand := range dot11fp.CandidatesIn(tr, window, db.Config()) {
		best, ok := db.Best(cand.Sig)
		if !ok {
			continue
		}
		verdict := "UNKNOWN"
		switch {
		case best.Sim < threshold:
			verdict = "no-match"
		case best.Addr == dot11fp.Addr(cand.Addr):
			verdict = "consistent"
		default:
			verdict = "SPOOF-SUSPECT"
		}
		fmt.Printf("%-8d %-20s %-20s %-9.4f %s\n",
			cand.Window, dot11fp.Addr(cand.Addr), best.Addr, best.Sim, verdict)
	}
}

func loadOrNew(path string, cfg dot11fp.Config) *dot11fp.Database {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return dot11fp.NewDatabase(cfg, dot11fp.MeasureCosine)
		}
		fatal(err)
	}
	defer f.Close() //fp:closeok read-only handle; the load error is the one that matters
	db, err := dot11fp.LoadDatabase(f)
	if err != nil {
		fatal(err)
	}
	return db
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fpanalyze:", err)
	os.Exit(1)
}
