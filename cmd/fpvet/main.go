// Command fpvet runs dot11fp's project-invariant static-analysis suite
// (internal/analysis) over the named packages — the repo's multichecker.
//
//	go run ./cmd/fpvet ./...
//
// Exit status is 0 when every package is clean, 1 when any analyzer
// reports a diagnostic, 2 on loading/usage errors. CI runs it on every
// push (the "Invariant lint" step).
//
// The -hotpath-ranges mode prints the source ranges of //fp:hotpath
// functions, one "file:startLine:endLine name" per line, for
// scripts/escape_gate.sh to intersect with `go build -gcflags=-m`
// escape-analysis output.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"

	fpanalysis "dot11fp/internal/analysis"
	"dot11fp/internal/analysis/driver"
)

func main() {
	hotpathRanges := flag.Bool("hotpath-ranges", false,
		"print //fp:hotpath function ranges (file:start:end name) instead of running analyzers")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fpvet [-hotpath-ranges] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	l := driver.New(".")
	roots, err := l.LoadPatterns(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fpvet: %v\n", err)
		os.Exit(2)
	}

	if *hotpathRanges {
		if err := printHotpathRanges(l, roots); err != nil {
			fmt.Fprintf(os.Stderr, "fpvet: %v\n", err)
			os.Exit(2)
		}
		return
	}

	diags, err := driver.Run(l, roots, fpanalysis.All)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fpvet: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "fpvet: %d finding(s) in %d package(s)\n", len(diags), len(roots))
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "fpvet: %d package(s) clean\n", len(roots))
}

func printHotpathRanges(l *driver.Loader, roots []string) error {
	cwd, err := os.Getwd()
	if err != nil {
		return err
	}
	for _, root := range roots {
		pkg, err := l.LoadSource(root)
		if err != nil {
			return err
		}
		for _, fd := range fpanalysis.HotPathFuncs(pkg.Files) {
			start := pkg.Fset().Position(fd.Pos())
			end := pkg.Fset().Position(fd.End())
			file := start.Filename
			if rel, err := filepath.Rel(cwd, file); err == nil {
				file = rel
			}
			fmt.Printf("%s:%d:%d %s\n", file, start.Line, end.Line, funcLabel(fd))
		}
	}
	return nil
}

// funcLabel renders "Name" or "(Recv).Name" for range output.
func funcLabel(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	var buf bytes.Buffer
	_ = printer.Fprint(&buf, token.NewFileSet(), fd.Recv.List[0].Type)
	return "(" + buf.String() + ")." + fd.Name.Name
}
