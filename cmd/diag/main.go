// Command diag is a development diagnostic: it builds a scenario trace,
// runs the matcher, and reports per-candidate margins (true similarity
// minus best impostor similarity) annotated with ground truth, to show
// which device pairs confuse the fingerprint and why.
package main

import (
	"flag"
	"fmt"
	"sort"
	"time"

	"dot11fp"
	"dot11fp/internal/scenario"
)

func main() {
	conf := flag.Bool("conf", false, "use the conference scenario")
	dur := flag.Duration("dur", 14*time.Minute, "trace duration")
	ref := flag.Duration("ref", 4*time.Minute, "reference duration")
	n := flag.Int("n", 20, "stations")
	seed := flag.Uint64("seed", 104, "seed")
	params := flag.String("params", "iat", "comma list of short param names")
	flag.Parse()

	var p scenario.Params
	if *conf {
		p = scenario.Conference("diag", *seed, *dur, *n)
	} else {
		p = scenario.Office("diag", *seed, *dur, *n)
	}
	tr, _, manifest, err := scenario.BuildDetailed(p)
	if err != nil {
		panic(err)
	}
	truth := make(map[dot11fp.Addr]scenario.StationInfo, len(manifest))
	for _, si := range manifest {
		truth[si.Addr] = si
	}
	label := func(a dot11fp.Addr) string {
		si, ok := truth[a]
		if !ok {
			return "ap"
		}
		return fmt.Sprintf("%s/%s/snr%.0f/gf%.1f%v", si.Profile, si.App, si.SNRBaseDB, si.GapFactor, si.Services)
	}

	for _, pname := range splitComma(*params) {
		param, err := dot11fp.ParamByShortName(pname)
		if err != nil {
			panic(err)
		}
		cfg := dot11fp.DefaultConfig(param)
		train, valid := dot11fp.Split(tr, *ref)
		db := dot11fp.NewDatabase(cfg, dot11fp.MeasureCosine)
		if err := db.Train(train); err != nil {
			panic(err)
		}
		cands := dot11fp.CandidatesIn(valid, 5*time.Minute, cfg)
		fmt.Printf("== %s: refs=%d cands=%d\n", pname, db.Len(), len(cands))
		var margins []float64
		for _, c := range cands {
			scores := db.Match(c.Sig)
			trueSim := -1.0
			var bestOther dot11fp.Score
			for _, s := range scores {
				if s.Addr == dot11fp.Addr(c.Addr) {
					trueSim = s.Sim
				} else if s.Sim > bestOther.Sim {
					bestOther = s
				}
			}
			if trueSim < 0 {
				continue
			}
			margins = append(margins, trueSim-bestOther.Sim)
			if trueSim < bestOther.Sim {
				fmt.Printf("  MISS w%d %-46s true=%.3f beaten by %.3f %s\n",
					c.Window, label(dot11fp.Addr(c.Addr)), trueSim, bestOther.Sim, label(bestOther.Addr))
			}
		}
		if len(margins) == 0 {
			fmt.Println("  no known candidates")
			continue
		}
		sort.Float64s(margins)
		neg := 0
		for _, m := range margins {
			if m < 0 {
				neg++
			}
		}
		fmt.Printf("  margins: n=%d wrong-top1=%d median=%.4f p10=%.4f\n",
			len(margins), neg, margins[len(margins)/2], margins[len(margins)/10])
	}
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
