package main

import (
	"testing"

	"dot11fp/internal/cmdutil"
)

// TestOffsetStamp pins the window-bound rendering of the multi-source
// daemon, which stamps offsets into the merged stream rather than wall
// time.
func TestOffsetStamp(t *testing.T) {
	cases := map[int64]string{
		0:             "0s",
		1_000_000:     "1s",
		90_000_000:    "1m30s",
		90_400_000:    "1m30s", // sub-second offsets round to whole seconds
		3_600_000_000: "1h0m0s",
	}
	for us, want := range cases {
		if got := offsetStamp(us); got != want {
			t.Errorf("offsetStamp(%d) = %q, want %q", us, got, want)
		}
	}
}

// TestFlagValidation is the table-driven check of the daemon's flag
// cluster semantics, via the shared validators the main wires together.
func TestFlagValidation(t *testing.T) {
	if err := (cmdutil.EnrollFlags{Enroll: true, Windows: 2}).Validate(); err != nil {
		t.Errorf("-enroll -enroll-windows 2 rejected: %v", err)
	}
	if err := (cmdutil.EnrollFlags{Enroll: false, Windows: 2}).Validate(); err == nil {
		t.Error("-enroll-windows without -enroll accepted")
	}
	if _, err := cmdutil.ParseMergeMode("time"); err != nil {
		t.Errorf("-merge time rejected: %v", err)
	}
	if _, err := cmdutil.ParseMergeMode("never"); err == nil {
		t.Error("-merge never accepted")
	}
	if err := cmdutil.CheckSavePath(t.TempDir() + "/ck.fpdb"); err != nil {
		t.Errorf("-save into a writable directory rejected: %v", err)
	}
	if err := cmdutil.CheckSavePath(t.TempDir() + "/no/such/dir/ck.fpdb"); err == nil {
		t.Error("-save into a missing directory accepted")
	}
	if err := cmdutil.CheckSavePath(t.TempDir()); err == nil {
		t.Error("-save pointing at a directory accepted")
	}
}
