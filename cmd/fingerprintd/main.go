// Command fingerprintd is the pipeline as a long-running service: a
// fingerprinting daemon that ingests several concurrent monitor feeds —
// pcap files, FIFOs fed by `tcpdump -w`, or stdin — merges them into
// one record stream, and drives a sharded, shard-per-core engine that
// re-identifies every candidate device once per detection window.
//
// Multiple sources model multiple monitors: each input decodes on its
// own goroutine, and -merge picks the interleaving (time for synced or
// rebased captures — deterministic; arrival for live unsynchronised
// feeds). The engine partitions senders across -shards cores, bounds
// per-shard sender state with -max-senders / -idle-evict (so MAC
// randomization cannot grow memory without bound), and applies the
// -drop backpressure policy when ingestion outruns matching.
//
// SIGINT/SIGTERM drain gracefully: sources stop, queued records are
// processed, the open window is flushed and matched, and final
// statistics are printed. -stats prints a periodic counters line to
// stderr. Try it end to end:
//
//	go run ./cmd/tracegen -scenario office -duration 30m -stations 24 -o office.pcap
//	go run ./cmd/fingerprintd -ref 5m -window 3m -stats 2s office.pcap
//
// Usage:
//
//	fingerprintd [-db ref.json | -ref 20m] [-param iat] [-measure cosine]
//	             [-window 5m] [-threshold 0] [-shards 0] [-queue 8192]
//	             [-drop] [-max-senders 0] [-idle-evict 0] [-merge time]
//	             [-rebase] [-stats 10s] [-v] input.pcap [input2.pcap ...]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"dot11fp"
	"dot11fp/internal/cmdutil"
)

func main() {
	dbPath := flag.String("db", "", "reference database JSON (from fpanalyze); overrides -ref")
	ref := flag.Duration("ref", 20*time.Minute, "training prefix learned from the merged stream when no -db is given")
	paramFlag := flag.String("param", "iat", "network parameter (rate,size,mtime,txtime,iat); ignored with -db")
	measureFlag := flag.String("measure", "cosine", "similarity measure; ignored with -db")
	window := flag.Duration("window", dot11fp.DefaultWindow, "detection window size")
	threshold := flag.Float64("threshold", 0, "acceptance threshold on the best similarity")
	shards := flag.Int("shards", 0, "engine shards (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "per-shard queue depth in observations (0 = default)")
	drop := flag.Bool("drop", false, "drop observations instead of blocking when a shard queue is full")
	maxSenders := flag.Int("max-senders", 0, "per-shard cap on tracked senders (0 = unbounded)")
	idleEvict := flag.Duration("idle-evict", 0, "evict senders idle for this long in record time (0 = never)")
	mergeFlag := flag.String("merge", "time", "source interleaving: time (deterministic) or arrival (live feeds)")
	rebase := flag.Bool("rebase", false, "shift each source's clock so its first record lands at offset zero")
	statsEvery := flag.Duration("stats", 10*time.Second, "periodic stats line interval (0 = off)")
	verbose := flag.Bool("v", false, "also print below-minimum and evicted drops")
	flag.Parse()

	if flag.NArg() == 0 {
		fatal(fmt.Errorf("no inputs; usage: fingerprintd [flags] input.pcap [input2.pcap ...|-]"))
	}
	var mode dot11fp.MergeMode
	switch *mergeFlag {
	case "time":
		mode = dot11fp.MergeByTime
	case "arrival":
		mode = dot11fp.MergeArrival
	default:
		fatal(fmt.Errorf("unknown -merge mode %q (want time or arrival)", *mergeFlag))
	}

	var sources []dot11fp.RecordSource
	var closers []io.Closer
	for _, name := range flag.Args() {
		in := os.Stdin
		if name != "-" {
			f, err := os.Open(name)
			if err != nil {
				fatal(err)
			}
			closers = append(closers, f)
			in = f
		}
		src, err := dot11fp.ReadPcapStream(in)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		sources = append(sources, src)
	}
	defer func() {
		for _, c := range closers {
			c.Close()
		}
	}()
	stream := dot11fp.NewMultiStream(mode, *rebase, sources...)
	defer stream.Close()

	// Graceful drain, armed before training so a signal at any phase is
	// honoured: closing the merged stream makes both the training loop
	// and the ingest loop fall out at EOF, and engine.Close flushes and
	// matches the open window before the final stats line.
	var interrupted atomic.Bool
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigc
		fmt.Fprintf(os.Stderr, "fingerprintd: %v, draining\n", s)
		interrupted.Store(true)
		stream.Close()
		signal.Stop(sigc)
	}()

	var db *dot11fp.Database
	var pending *dot11fp.Record
	if *dbPath != "" {
		f, err := os.Open(*dbPath)
		if err != nil {
			fatal(err)
		}
		db, err = dot11fp.LoadDatabase(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "fingerprintd: loaded %d references (%s, %s)\n",
			db.Len(), db.Config().Param, db.Measure())
	} else {
		var err error
		db, pending, err = cmdutil.TrainFromStream(stream, *ref, *paramFlag, *measureFlag)
		if err != nil {
			if interrupted.Load() {
				fmt.Fprintln(os.Stderr, "fingerprintd: interrupted during training, nothing to drain")
				return
			}
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "fingerprintd: trained %d references from the first %v of %d sources (%s)\n",
			db.Len(), *ref, len(sources), db.Config().Param)
	}

	policy := dot11fp.BackpressureBlock
	if *drop {
		policy = dot11fp.BackpressureDrop
	}
	eng, err := dot11fp.NewShardedEngine(db.Config(), db.Compile(), dot11fp.ShardedOptions{
		Window:       *window,
		Threshold:    *threshold,
		Shards:       *shards,
		QueueLen:     *queue,
		Backpressure: policy,
		Limits:       dot11fp.SenderLimits{MaxSenders: *maxSenders, IdleEvict: *idleEvict},
		Sink:         dot11fp.SinkFunc(cmdutil.Printer(offsetStamp, *verbose)),
	})
	if err != nil {
		fatal(err)
	}

	stop := make(chan struct{})
	if *statsEvery > 0 {
		go func() {
			tick := time.NewTicker(*statsEvery)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					cmdutil.StatsLine(os.Stderr, "fingerprintd", eng.Stats())
				case <-stop:
					return
				}
			}
		}()
	}

	if pending != nil {
		eng.Push(pending)
	}
	for {
		rec, err := stream.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			fatal(err)
		}
		eng.Push(&rec)
	}
	eng.Close()
	close(stop)
	if err := stream.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "fingerprintd: source errors: %v\n", err)
	}
	cmdutil.StatsLine(os.Stderr, "fingerprintd", eng.Stats())
}

// offsetStamp renders a window bound as its offset into the merged
// stream, which spans sources that need not share a wall clock.
func offsetStamp(us int64) string {
	return (time.Duration(us) * time.Microsecond).Round(time.Second).String()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fingerprintd:", err)
	os.Exit(1)
}
