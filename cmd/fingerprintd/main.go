// Command fingerprintd is the pipeline as a long-running service: a
// fingerprinting daemon that ingests several concurrent monitor feeds —
// pcap files, FIFOs fed by `tcpdump -w`, or stdin — merges them into
// one record stream, and drives a sharded, shard-per-core engine that
// re-identifies every candidate device once per detection window.
//
// Multiple sources model multiple monitors: each input decodes on its
// own goroutine, and -merge picks the interleaving (time for synced or
// rebased captures — deterministic; arrival for live unsynchronised
// feeds). The engine partitions senders across -shards cores, bounds
// per-shard sender state with -max-senders / -idle-evict (so MAC
// randomization cannot grow memory without bound), and applies the
// -drop backpressure policy when ingestion outruns matching.
//
// References can be loaded (-db, JSON or binary checkpoint), trained
// from the stream's first -ref minutes, or learned entirely online:
// -enroll turns on the live trainer, which promotes every sender that
// has been a candidate for -enroll-windows detection windows into the
// reference set and hot-swaps the engine — a cold start with -ref 0
// begins with zero references and self-populates. -save checkpoints
// the reference database (atomic rename; binary codec unless the path
// ends in .json) on SIGHUP and at shutdown, so a daemon restart
// resumes from the learned references instead of relearning.
//
// The daemon degrades instead of dying: -source-retry reopens a failed
// source with exponential backoff (a FIFO whose writer restarts, a
// file that reappears), logging SourceDown/SourceUp transitions, while
// healthy sources keep flowing; engine shards recover panics and a
// watchdog reports wedged shards; -checkpoint-every saves the
// references periodically with bounded retry, and every save keeps the
// previous generation on disk until the new one is written, fsync'd
// and verified — a crash mid-save never costs the references (loads
// fall back to <path>.1). A run that survived recovered faults exits
// with status 3 so orchestrators can tell a clean run from a degraded
// one.
//
// -listen serves fingerprinting as a service on a trusted network: a
// JSON query API (/api/v1/sites/{site}/senders/{mac} answers "who is
// sender X"), a server-sent-events verdict feed, batch pcap scoring,
// remote checkpoint save/load against the -save path, and Prometheus
// metrics at /metrics (-pprof adds /debug/pprof). -site names this
// daemon's tenant. With -enroll-confirm, senders that complete the
// enrollment horizon wait for an operator verdict posted over the API
// instead of auto-enrolling.
//
// SIGINT/SIGTERM drain gracefully: sources stop, queued records are
// processed, the open window is flushed and matched, and final
// statistics are printed. -stats prints a periodic counters line to
// stderr (plus a health line when anything has faulted). Try it end to
// end:
//
//	go run ./cmd/tracegen -scenario office -duration 30m -stations 24 -o office.pcap
//	go run ./cmd/fingerprintd -ref 0 -enroll -enroll-windows 2 -window 3m -save office.fpdb office.pcap
//
// A -param comma list (e.g. -param rate,size,iat) fuses several
// network parameters into one fingerprint: every member is extracted
// in one pass and each window is matched on the mean of the
// per-parameter similarities; -save then checkpoints the whole fused
// reference set in one versioned container.
//
// Usage:
//
//	fingerprintd [-db ref.fpdb | -ref 20m] [-param iat | -param rate,size,iat]
//	             [-measure cosine]
//	             [-enroll] [-enroll-windows 1] [-save ref.fpdb]
//	             [-checkpoint-every 0] [-source-retry 0]
//	             [-window 5m] [-threshold 0] [-index auto] [-shards 0]
//	             [-queue 8192] [-drop] [-max-senders 0] [-idle-evict 0] [-merge time]
//	             [-listen :9077] [-pprof] [-site default] [-enroll-confirm]
//	             [-rebase] [-cluster] [-stats 10s] [-v] input.pcap [input2.pcap ...]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"dot11fp"
	"dot11fp/internal/checkpoint"
	"dot11fp/internal/cmdutil"
	"dot11fp/internal/server"
)

func main() {
	dbPath := flag.String("db", "", "reference database (JSON, binary or ensemble checkpoint); overrides -ref")
	ref := flag.Duration("ref", 20*time.Minute, "training prefix learned from the merged stream when no -db is given (0 with -enroll = cold start)")
	paramFlag := flag.String("param", "iat", "network parameter or comma list for fusion (rate,size,mtime,txtime,iat); ignored with -db")
	measureFlag := flag.String("measure", "cosine", "similarity measure; ignored with -db")
	window := flag.Duration("window", dot11fp.DefaultWindow, "detection window size")
	threshold := flag.Float64("threshold", 0, "acceptance threshold on the best similarity")
	enroll := flag.Bool("enroll", false, "enroll unknown senders into the references while monitoring")
	enrollWindows := flag.Int("enroll-windows", 1, "enrollment horizon: windows a sender must be a candidate in before enrolling")
	savePath := flag.String("save", "", "checkpoint the references here on SIGHUP and at shutdown (binary codec unless .json)")
	shards := flag.Int("shards", 0, "engine shards (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "per-shard queue depth in observations (0 = default)")
	drop := flag.Bool("drop", false, "drop observations instead of blocking when a shard queue is full")
	maxSenders := flag.Int("max-senders", 0, "per-shard cap on tracked senders (0 = unbounded)")
	idleEvict := flag.Duration("idle-evict", 0, "evict senders idle for this long in record time (0 = never)")
	indexFlag := flag.String("index", "auto", "match index: auto (build for large reference sets), on, or off (exhaustive dense matching)")
	mergeFlag := flag.String("merge", "time", "source interleaving: time (deterministic) or arrival (live feeds)")
	rebase := flag.Bool("rebase", false, "shift each source's clock so its first record lands at offset zero")
	sourceRetry := flag.Duration("source-retry", 0, "reopen failed sources, starting at this backoff and doubling (0 = a failed source retires)")
	checkpointEvery := flag.Duration("checkpoint-every", 0, "also checkpoint the references periodically at this interval (0 = only SIGHUP and shutdown)")
	cluster := flag.Bool("cluster", false, "merge MAC-randomizing senders by probe content before attribution (training and monitoring)")
	statsEvery := flag.Duration("stats", 10*time.Second, "periodic stats line interval (0 = off)")
	verbose := flag.Bool("v", false, "also print below-minimum drops, evictions and enrollment progress")
	listen := flag.String("listen", "", "serve the HTTP API, SSE verdict feed and /metrics on this address (trusted networks only; empty = off)")
	pprofFlag := flag.Bool("pprof", false, "with -listen, also mount /debug/pprof")
	siteName := flag.String("site", "default", "site name this daemon serves under /api/v1/sites/{site}")
	enrollConfirm := flag.Bool("enroll-confirm", false, "with -enroll and -listen, hold completed senders for operator approval over the API instead of auto-enrolling")
	flag.Parse()

	if flag.NArg() == 0 {
		fatal(fmt.Errorf("no inputs; usage: fingerprintd [flags] input.pcap [input2.pcap ...|-]"))
	}
	enrollFlags := cmdutil.EnrollFlags{Enroll: *enroll, Windows: *enrollWindows}
	if err := enrollFlags.Validate(); err != nil {
		fatal(err)
	}
	if *enrollConfirm && (!*enroll || *listen == "") {
		fatal(fmt.Errorf("-enroll-confirm needs -enroll and -listen (approvals arrive over the API)"))
	}
	if *pprofFlag && *listen == "" {
		fatal(fmt.Errorf("-pprof needs -listen"))
	}
	mode, err := cmdutil.ParseMergeMode(*mergeFlag)
	if err != nil {
		fatal(err)
	}
	indexMode, err := dot11fp.ParseIndexMode(*indexFlag)
	if err != nil {
		fatal(err)
	}
	if *savePath != "" {
		if err := cmdutil.CheckSavePath(*savePath); err != nil {
			fatal(fmt.Errorf("-save %s: %w", *savePath, err))
		}
		// Fail fast on the flags path: fused references have no JSON
		// form, and a daemon should learn that before it blocks on a
		// FIFO, not at its first checkpoint. (-db resolutions re-check
		// after the file reveals its member count.)
		if *dbPath == "" {
			if params, err := cmdutil.ParseParams(*paramFlag); err == nil && len(params) > 1 {
				if err := cmdutil.CheckEnsembleSave(*savePath); err != nil {
					fatal(fmt.Errorf("-save %s: %w", *savePath, err))
				}
			}
		}
	}
	// SIGHUP's default disposition would kill the daemon, so it is
	// caught before anything that can block — opening a FIFO source
	// stalls until its writer appears, and training runs for -ref of
	// stream time. A checkpoint request arriving while there is nothing
	// to checkpoint yet waits in the channel until the drainer starts.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	// openSource builds one input. File-backed sources carry their file
	// as a Closer, so a supervised reopen (or shutdown) can unblock a
	// read wedged on a FIFO whose writer went away.
	names := flag.Args()
	openSource := func(name string) (dot11fp.RecordSource, error) {
		if name == "-" {
			src, err := dot11fp.ReadPcapStream(os.Stdin)
			if err != nil {
				return nil, fmt.Errorf("stdin: %w", err)
			}
			return src, nil
		}
		f, err := os.Open(name)
		if err != nil {
			return nil, err
		}
		src, err := dot11fp.ReadPcapStream(f)
		if err != nil {
			_ = f.Close() // read-only handle; the decode error is the one reported
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		return dot11fp.WithCloser(src, f), nil
	}
	isFIFO := make([]bool, len(names))
	var sources []dot11fp.RecordSource
	for i, name := range names {
		if name != "-" {
			if info, err := os.Stat(name); err == nil {
				isFIFO[i] = info.Mode()&os.ModeNamedPipe != 0
			}
		}
		src, err := openSource(name)
		if err != nil {
			fatal(err)
		}
		sources = append(sources, src)
	}
	var sup dot11fp.Supervisor
	if *sourceRetry > 0 {
		sup = dot11fp.Supervisor{
			Backoff: *sourceRetry,
			Reopen: func(i int) (dot11fp.RecordSource, error) {
				if names[i] == "-" {
					return nil, fmt.Errorf("stdin is not reopenable")
				}
				return openSource(names[i])
			},
			// A FIFO's EOF only means its writer hung up — reopen and
			// wait for the next one. A regular file's EOF is the end.
			ReopenOnEOF: func(i int) bool { return isFIFO[i] },
			Notify: func(ev dot11fp.SourceEvent) {
				switch ev := ev.(type) {
				case dot11fp.SourceDown:
					if ev.Permanent {
						fmt.Fprintf(os.Stderr, "fingerprintd: source %d (%s) permanently down: %v\n",
							ev.Source, names[ev.Source], ev.Err)
						return
					}
					fmt.Fprintf(os.Stderr, "fingerprintd: source %d (%s) down (%v), retrying in %v\n",
						ev.Source, names[ev.Source], ev.Err, ev.Retry.Round(time.Millisecond))
				case dot11fp.SourceUp:
					fmt.Fprintf(os.Stderr, "fingerprintd: source %d (%s) reopened (attempt %d)\n",
						ev.Source, names[ev.Source], ev.Attempts)
				}
			},
		}
	}
	stream := dot11fp.NewMultiStreamOpts(
		dot11fp.MultiOptions{Mode: mode, Rebase: *rebase, Supervisor: sup}, sources...)
	defer stream.Close()

	// Graceful drain, armed before training so a signal at any phase is
	// honoured: closing the merged stream makes both the training loop
	// and the ingest loop fall out at EOF, and engine.Close flushes and
	// matches the open window before the final stats line.
	var interrupted atomic.Bool
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigc
		fmt.Fprintf(os.Stderr, "fingerprintd: %v, draining\n", s)
		interrupted.Store(true)
		stream.Close()
		signal.Stop(sigc)
	}()
	// With -cluster, one Clusterer spans training and monitoring: the
	// training prefix is read through it (canonical senders in the
	// references) and the engine's router resolves live frames through
	// the same instance.
	var cl *dot11fp.Clusterer
	var trainStream dot11fp.RecordSource = stream
	if *cluster {
		cl = dot11fp.NewClusterer(0)
		trainStream = cmdutil.NewClusterSource(stream, cl)
	}
	cfgs, measure, refs, pending, err := cmdutil.ResolveReferences(
		"fingerprintd", *dbPath, *ref, *paramFlag, *measureFlag, enrollFlags, trainStream, len(sources))
	if err != nil {
		if interrupted.Load() {
			fmt.Fprintln(os.Stderr, "fingerprintd: interrupted during training, nothing to drain")
			return
		}
		fatal(err)
	}
	// An ensemble reference set selects the fused engines even with one
	// member — a 1-member ensemble checkpoint must drive the ensemble
	// path, not silently fall back to an empty single-parameter engine.
	fused := refs.Multi() || len(cfgs) > 1
	if fused && *savePath != "" {
		if err := cmdutil.CheckEnsembleSave(*savePath); err != nil {
			fatal(fmt.Errorf("-save %s: %w", *savePath, err))
		}
	}
	// The site is created before the engine because the engine's Sink
	// is fixed at construction and must run through the site's taps
	// (verdict cache + SSE fanout); the engine itself is attached after
	// it exists. The enrollment gate's Decide likewise has to be in the
	// trainer's options from birth.
	var site *server.Site
	if *listen != "" {
		site = server.NewSite(*siteName, server.SiteOptions{
			Window:         *window,
			Threshold:      *threshold,
			CheckpointPath: *savePath,
		})
		if *enrollConfirm {
			enrollFlags.Decide = site.Gate().Decide
		}
	}
	refs.SetIndexing(indexMode)
	trainer, cdb, cedb, err := enrollFlags.EnrollOrCompile(cfgs, measure, refs) // when enrolling, the trainer owns the references
	if err != nil {
		fatal(err)
	}
	if trainer != nil {
		// Cold-start trainers build their own databases; hand them the
		// mode the seed could not carry in.
		trainer.SetIndexing(indexMode)
	}

	policy := dot11fp.BackpressureBlock
	if *drop {
		policy = dot11fp.BackpressureDrop
	}
	var sink dot11fp.Sink = dot11fp.SinkFunc(cmdutil.Printer(os.Stdout, offsetStamp, *verbose))
	//fp:mayblock operator-facing stderr printer for rare health events (panics, stalls)
	var healthSink dot11fp.Sink = dot11fp.SinkFunc(func(ev dot11fp.Event) {
		switch ev := ev.(type) {
		case dot11fp.ComponentPanicked:
			fmt.Fprintf(os.Stderr, "fingerprintd: recovered %s panic (shard %d): %s\n",
				ev.Component, ev.Shard, ev.Err)
		case dot11fp.ShardStalled:
			fmt.Fprintf(os.Stderr, "fingerprintd: shard %d stalled for %v (%d batches queued)\n",
				ev.Shard, ev.For, ev.Queued)
		case dot11fp.ShardResumed:
			fmt.Fprintf(os.Stderr, "fingerprintd: shard %d resumed\n", ev.Shard)
		}
	})
	if site != nil {
		// Verdicts and health events alike flow through the site's taps
		// into the verdict cache and the SSE feed, then on to the
		// printers.
		sink, healthSink = site.Sink(sink), site.Sink(healthSink)
	}
	opts := dot11fp.ShardedOptions{
		Window:       *window,
		Threshold:    *threshold,
		Shards:       *shards,
		QueueLen:     *queue,
		Backpressure: policy,
		Limits:       dot11fp.SenderLimits{MaxSenders: *maxSenders, IdleEvict: *idleEvict},
		Sink:         sink,
		Trainer:      trainer,
		Watchdog:     5 * time.Second,
		HealthSink:   healthSink,
		Cluster:      cl,
	}
	var eng *dot11fp.ShardedEngine
	if fused {
		eng, err = dot11fp.NewShardedEnsembleEngine(cfgs, cedb, opts)
	} else {
		eng, err = dot11fp.NewShardedEngine(cfgs[0], cdb, opts)
	}
	if err != nil {
		fatal(err)
	}
	var srv *server.Server
	if site != nil {
		site.Attach(eng, trainer, stream.SourceStats, refs)
		reg := server.NewRegistry()
		if err := reg.Add(site); err != nil {
			fatal(err)
		}
		srv, err = server.Start(*listen, reg, server.Options{Pprof: *pprofFlag})
		if err != nil {
			fatal(fmt.Errorf("-listen %s: %w", *listen, err))
		}
		fmt.Fprintf(os.Stderr, "fingerprintd: serving HTTP on %s (site %q)\n", srv.Addr(), *siteName)
	}

	// saveCheckpoint writes the current references to -save: the
	// trainer's live copy when enrolling, the static set otherwise. The
	// write is generation-chained (temp + fsync + verify + rotate +
	// rename) with bounded retry, so a SIGHUP checkpoint racing the
	// final one can never leave a torn file, a transient write failure
	// costs a delay instead of the checkpoint, and the previous good
	// generation survives at <path>.1 until the new one is verified on
	// disk. A failed save is logged and counted — never fatal — and the
	// next trigger (SIGHUP, -checkpoint-every tick, shutdown) tries
	// again. Fused references land in the ensemble container;
	// single-parameter ones keep the codec the extension selects.
	var ckptMu sync.Mutex
	var ckptFailures atomic.Uint64
	saveCheckpoint := func(reason string) {
		if *savePath == "" {
			return
		}
		ckptMu.Lock()
		defer ckptMu.Unlock()
		snap := refs
		if trainer != nil {
			snap = cmdutil.References{DB: trainer.Database(), Ens: trainer.Ensemble()}
		}
		if snap.Empty() {
			fmt.Fprintf(os.Stderr, "fingerprintd: %s: no references to checkpoint yet\n", reason)
			return
		}
		if err := cmdutil.SaveReferencesCheckpoint(*savePath, snap, checkpoint.Options{}); err != nil {
			ckptFailures.Add(1)
			fmt.Fprintf(os.Stderr, "fingerprintd: %s checkpoint failed (previous generation intact, will retry at next trigger): %v\n",
				reason, err)
			return
		}
		fmt.Fprintf(os.Stderr, "fingerprintd: %s: checkpointed %d references to %s\n",
			reason, snap.Len(), *savePath)
	}
	go func() {
		for range hup {
			saveCheckpoint("SIGHUP")
		}
	}()

	stop := make(chan struct{})
	if *statsEvery > 0 {
		go func() {
			tick := time.NewTicker(*statsEvery)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					cmdutil.StatsLine(os.Stderr, "fingerprintd", eng.Stats())
					if trainer != nil {
						cmdutil.TrainerLine(os.Stderr, "fingerprintd", trainer.Stats())
					}
					cmdutil.HealthLine(os.Stderr, "fingerprintd", eng.Health(), stream.SourceStats())
				case <-stop:
					return
				}
			}
		}()
	}
	if *checkpointEvery > 0 && *savePath != "" {
		go func() {
			tick := time.NewTicker(*checkpointEvery)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					saveCheckpoint("periodic")
				case <-stop:
					return
				}
			}
		}()
	}

	if pending != nil {
		eng.Push(pending)
	}
	for {
		rec, err := stream.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			fatal(err)
		}
		eng.Push(&rec)
	}
	eng.Close()
	close(stop)
	if err := stream.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "fingerprintd: source errors: %v\n", err)
	}
	cmdutil.StatsLine(os.Stderr, "fingerprintd", eng.Stats())
	if trainer != nil {
		cmdutil.TrainerLine(os.Stderr, "fingerprintd", trainer.Stats())
	}
	cmdutil.HealthLine(os.Stderr, "fingerprintd", eng.Health(), stream.SourceStats())
	saveCheckpoint("shutdown")
	// The HTTP server drains last, joined to the same graceful path: the
	// API stays queryable until the final checkpoint is on disk, then
	// SSE feeds are released and in-flight requests get a bounded grace.
	if srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		srv.Shutdown(ctx)
		cancel()
	}

	// Degraded-mode exit: the run completed, but only because
	// supervision absorbed faults — recovered panics, a permanently
	// down source, or failed checkpoint saves. Exit 3 so orchestrators
	// can tell this run from a clean one (1 stays "fatal error").
	degraded := cmdutil.Degraded(eng.Health(), stream.SourceStats()) || ckptFailures.Load() > 0
	if degraded {
		fmt.Fprintln(os.Stderr, "fingerprintd: run degraded by recovered faults, exiting 3")
		os.Exit(3)
	}
}

// offsetStamp renders a window bound as its offset into the merged
// stream, which spans sources that need not share a wall clock.
func offsetStamp(us int64) string {
	return (time.Duration(us) * time.Microsecond).Round(time.Second).String()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fingerprintd:", err)
	os.Exit(1)
}
