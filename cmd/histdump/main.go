// Command histdump regenerates the paper's histogram figures (2 and
// 4–8) from controlled simulator experiments and writes them as
// gnuplot-friendly TSV files (bin centre vs density).
//
// Usage:
//
//	histdump -fig 4 -o figures/        # one figure
//	histdump -fig all -o figures/      # every histogram figure
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dot11fp/internal/eval"
	"dot11fp/internal/figures"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 2,4,5,6,7,8 or all")
	out := flag.String("o", "figures", "output directory")
	seed := flag.Uint64("seed", 42, "random seed")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	want := map[string]bool{}
	if *fig == "all" {
		for _, f := range []string{"2", "4", "5", "6", "7", "8"} {
			want[f] = true
		}
	} else {
		for _, f := range strings.Split(*fig, ",") {
			want[strings.TrimSpace(f)] = true
		}
	}

	emit := func(name string, s figures.Series) {
		path := filepath.Join(*out, name+".tsv")
		if err := os.WriteFile(path, []byte(eval.FormatHistogramTSV(s.Title, s.Sig)), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d observations)\n", path, s.Sig.Observations())
	}

	if want["2"] {
		s, err := figures.Figure2(*seed)
		if err != nil {
			fatal(err)
		}
		emit("fig2", s)
	}
	if want["4"] {
		ss, err := figures.Figure4(*seed)
		if err != nil {
			fatal(err)
		}
		emit("fig4a-standard", ss[0])
		emit("fig4b-extraslot", ss[1])
	}
	if want["5"] {
		ss, err := figures.Figure5(*seed)
		if err != nil {
			fatal(err)
		}
		emit("fig5a-rts-off", ss[0])
		emit("fig5b-rts-on", ss[1])
	}
	if want["6"] {
		iat, rates, err := figures.Figure6(*seed)
		if err != nil {
			fatal(err)
		}
		emit("fig6a-dev1-iat", iat[0])
		emit("fig6b-dev2-iat", iat[1])
		emit("fig6c-dev1-rates", rates[0])
		emit("fig6d-dev2-rates", rates[1])
	}
	if want["7"] {
		ss, err := figures.Figure7(*seed)
		if err != nil {
			fatal(err)
		}
		emit("fig7a-netbook1", ss[0])
		emit("fig7b-netbook2", ss[1])
	}
	if want["8"] {
		ss, err := figures.Figure8(*seed)
		if err != nil {
			fatal(err)
		}
		emit("fig8a-card1", ss[0])
		emit("fig8b-card2", ss[1])
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "histdump:", err)
	os.Exit(1)
}
