// Command livemon is the streaming face of the pipeline: it reads a
// radiotap or AVS/Prism pcap stream record by record (a file, or a live
// `tcpdump -w -` feed on stdin), drives the push-based Engine, and
// prints per-window match events as each 5-minute detection window
// closes — the paper's monitoring loop as a continuous service instead
// of a batch replay.
//
// References come from a saved database (-db, see fpanalyze) or are
// learned live from the stream's first -ref minutes; after training the
// remainder of the stream is monitored. Try it end to end with the
// bundled generator:
//
//	go run ./cmd/tracegen -scenario office -duration 20m -stations 16 -o office.pcap
//	go run ./cmd/livemon -ref 5m -window 3m office.pcap
//
// Usage:
//
//	livemon [-db ref.json | -ref 20m] [-param iat] [-measure cosine]
//	        [-window 5m] [-threshold 0] [-v] [capture.pcap | -]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"dot11fp"
)

func main() {
	dbPath := flag.String("db", "", "reference database JSON (from fpanalyze); overrides -ref")
	ref := flag.Duration("ref", 20*time.Minute, "training prefix learned from the stream when no -db is given")
	paramFlag := flag.String("param", "iat", "network parameter (rate,size,mtime,txtime,iat); ignored with -db")
	measureFlag := flag.String("measure", "cosine", "similarity measure; ignored with -db")
	window := flag.Duration("window", dot11fp.DefaultWindow, "detection window size")
	threshold := flag.Float64("threshold", 0, "acceptance threshold on the best similarity")
	verbose := flag.Bool("v", false, "also print below-minimum drops")
	flag.Parse()

	in := os.Stdin
	if name := flag.Arg(0); name != "" && name != "-" {
		f, err := os.Open(name)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	stream, err := dot11fp.ReadPcapStream(in)
	if err != nil {
		fatal(err)
	}

	var db *dot11fp.Database
	var pending *dot11fp.Record // first record past the training prefix
	if *dbPath != "" {
		f, err := os.Open(*dbPath)
		if err != nil {
			fatal(err)
		}
		db, err = dot11fp.LoadDatabase(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "livemon: loaded %d references (%s, %s)\n",
			db.Len(), db.Config().Param, db.Measure())
	} else {
		db, pending, err = trainFromStream(stream, *ref, *paramFlag, *measureFlag)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "livemon: trained %d references from the first %v (%s)\n",
			db.Len(), *ref, db.Config().Param)
	}

	eng, err := dot11fp.NewEngine(db.Config(), db.Compile(), dot11fp.EngineOptions{
		Window:    *window,
		Threshold: *threshold,
		Sink:      dot11fp.SinkFunc(printer(stream, *verbose)),
	})
	if err != nil {
		fatal(err)
	}
	if pending != nil {
		eng.Push(pending)
	}
	for {
		rec, err := stream.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			fatal(err)
		}
		eng.Push(&rec)
	}
	eng.Close()

	st := eng.Stats()
	fmt.Fprintf(os.Stderr,
		"livemon: %d frames in %v (%.0f frames/s), %d windows, %d candidates (%d matched, %d unknown), %d dropped\n",
		st.Frames, st.Elapsed.Round(time.Millisecond), st.FramesPerSec,
		st.WindowsClosed, st.Candidates, st.Matched, st.Unknown, st.Dropped)
}

// trainFromStream materialises only the training prefix (records with
// T within refDur of the first record), builds the reference database,
// and hands back the boundary record so monitoring starts exactly where
// training stopped — Split's anchoring, streamed.
func trainFromStream(stream *dot11fp.PcapStream, refDur time.Duration, paramName, measureName string) (*dot11fp.Database, *dot11fp.Record, error) {
	param, err := dot11fp.ParamByShortName(paramName)
	if err != nil {
		return nil, nil, err
	}
	measure, err := dot11fp.MeasureByName(measureName)
	if err != nil {
		return nil, nil, err
	}
	train := &dot11fp.Trace{}
	var cut int64
	for {
		rec, err := stream.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, err
		}
		if len(train.Records) == 0 {
			cut = rec.T + refDur.Microseconds()
		}
		if rec.T >= cut {
			db := dot11fp.NewDatabase(dot11fp.DefaultConfig(param), measure)
			if err := db.Train(train); err != nil {
				return nil, nil, err
			}
			return db, &rec, nil
		}
		train.Records = append(train.Records, rec)
	}
	return nil, nil, fmt.Errorf("stream ended inside the %v training prefix (%d records)", refDur, len(train.Records))
}

// printer renders events as one line each, stamping windows with the
// capture's wall clock.
func printer(stream *dot11fp.PcapStream, verbose bool) func(dot11fp.Event) {
	clock := func(us int64) string {
		return stream.Base().Add(time.Duration(us) * time.Microsecond).Format("15:04:05")
	}
	return func(ev dot11fp.Event) {
		switch ev := ev.(type) {
		case dot11fp.CandidateMatched:
			fmt.Printf("w%03d  %s  matched  %s  sim=%.4f  obs=%d\n",
				ev.Window, ev.Addr, ev.Best.Addr, ev.Best.Sim, ev.Sig.Observations())
		case dot11fp.UnknownDevice:
			if ev.HasBest {
				fmt.Printf("w%03d  %s  UNKNOWN  (best %s sim=%.4f)  obs=%d\n",
					ev.Window, ev.Addr, ev.Best.Addr, ev.Best.Sim, ev.Sig.Observations())
			} else {
				fmt.Printf("w%03d  %s  UNKNOWN  (no references)  obs=%d\n",
					ev.Window, ev.Addr, ev.Sig.Observations())
			}
		case dot11fp.CandidateDropped:
			if verbose {
				fmt.Printf("w%03d  %s  dropped  %d/%d observations\n",
					ev.Window, ev.Addr, ev.Observations, ev.Minimum)
			}
		case dot11fp.WindowClosed:
			fmt.Printf("-- window %d [%s, %s): %d frames, %d senders, %d candidates (%d matched, %d unknown), %d dropped\n",
				ev.Window, clock(ev.Start), clock(ev.End), ev.Frames,
				ev.Senders, ev.Candidates, ev.Matched, ev.Unknown, ev.Dropped)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "livemon:", err)
	os.Exit(1)
}
