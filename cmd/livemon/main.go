// Command livemon is the streaming face of the pipeline: it reads a
// radiotap or AVS/Prism pcap stream record by record (a file, or a live
// `tcpdump -w -` feed on stdin), drives the push-based Engine, and
// prints per-window match events as each 5-minute detection window
// closes — the paper's monitoring loop as a continuous service instead
// of a batch replay.
//
// References come from a saved database (-db, JSON or binary
// checkpoint), are learned from the stream's first -ref minutes, or —
// with -enroll — are learned continuously: unknown senders that stay
// candidates for a full detection window are promoted into the
// reference set and hot-swapped live, so a cold start (-ref 0 -enroll)
// self-populates. Try it end to end with the bundled generator:
//
//	go run ./cmd/tracegen -scenario office -duration 20m -stations 16 -o office.pcap
//	go run ./cmd/livemon -ref 5m -window 3m office.pcap
//
// With -shards > 1 the stream drives the sharded concurrent engine —
// same events, same order, across as many cores as asked for — and
// -stats prints a periodic counters line to stderr. A -param comma
// list (e.g. -param rate,size,iat) fuses several network parameters
// into one fingerprint: every member is extracted in one pass and each
// window is matched on the mean of the per-parameter similarities.
// Several inputs at once, bounded sender state, backpressure policy
// and reference checkpointing live in the companion daemon,
// fingerprintd.
//
// Usage:
//
//	livemon [-db ref.fpdb | -ref 20m] [-param iat | -param rate,size,iat]
//	        [-measure cosine] [-enroll] [-window 5m] [-threshold 0]
//	        [-index auto] [-shards 1] [-stats 0] [-listen :9077]
//	        [-site default] [-cluster] [-v] [capture.pcap | -]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"dot11fp"
	"dot11fp/internal/cmdutil"
	"dot11fp/internal/server"
)

func main() {
	dbPath := flag.String("db", "", "reference database (JSON, binary or ensemble checkpoint); overrides -ref")
	ref := flag.Duration("ref", 20*time.Minute, "training prefix learned from the stream when no -db is given (0 with -enroll = cold start)")
	paramFlag := flag.String("param", "iat", "network parameter or comma list for fusion (rate,size,mtime,txtime,iat); ignored with -db")
	measureFlag := flag.String("measure", "cosine", "similarity measure; ignored with -db")
	window := flag.Duration("window", dot11fp.DefaultWindow, "detection window size")
	threshold := flag.Float64("threshold", 0, "acceptance threshold on the best similarity")
	enroll := flag.Bool("enroll", false, "enroll unknown senders into the references while monitoring")
	shards := flag.Int("shards", 1, "engine shards: 1 = serial engine, 0 = GOMAXPROCS, N = N shards")
	statsEvery := flag.Duration("stats", 0, "periodic stats line interval on stderr (0 = off)")
	indexFlag := flag.String("index", "auto", "match index: auto (build for large reference sets), on, or off (exhaustive dense matching)")
	cluster := flag.Bool("cluster", false, "merge MAC-randomizing senders by probe content before attribution (training and monitoring)")
	verbose := flag.Bool("v", false, "also print below-minimum drops and enrollment progress")
	listen := flag.String("listen", "", "serve the HTTP API, SSE verdict feed and /metrics on this address (trusted networks only; empty = off)")
	siteName := flag.String("site", "default", "site name under /api/v1/sites/{site} with -listen")
	flag.Parse()

	indexMode, err := dot11fp.ParseIndexMode(*indexFlag)
	if err != nil {
		fatal(err)
	}
	in := os.Stdin
	if name := flag.Arg(0); name != "" && name != "-" {
		f, err := os.Open(name)
		if err != nil {
			fatal(err)
		}
		defer f.Close() //fp:closeok read-only capture handle; decode errors are the signal
		in = f
	}
	stream, err := dot11fp.ReadPcapStream(in)
	if err != nil {
		fatal(err)
	}

	// With -cluster, one Clusterer spans training and monitoring: the
	// training prefix is read through it (canonical senders in the
	// references) and the engine resolves live frames through it.
	var cl *dot11fp.Clusterer
	var trainStream dot11fp.RecordSource = stream
	if *cluster {
		cl = dot11fp.NewClusterer(0)
		trainStream = cmdutil.NewClusterSource(stream, cl)
	}
	enrollFlags := cmdutil.EnrollFlags{Enroll: *enroll, Windows: 1}
	cfgs, measure, refs, pending, err := cmdutil.ResolveReferences(
		"livemon", *dbPath, *ref, *paramFlag, *measureFlag, enrollFlags, trainStream, 1)
	if err != nil {
		fatal(err)
	}
	refs.SetIndexing(indexMode)
	trainer, cdb, cedb, err := enrollFlags.EnrollOrCompile(cfgs, measure, refs) // when enrolling, the trainer owns the references
	if err != nil {
		fatal(err)
	}
	if trainer != nil {
		// Cold-start trainers build their own databases; hand them the
		// mode the seed could not carry in.
		trainer.SetIndexing(indexMode)
	}

	// The serial engine and the sharded engine share the push contract,
	// so the monitoring loop is engine-agnostic; a -param comma list
	// selects the fused (multi-parameter) engines.
	var eng interface {
		Push(*dot11fp.Record)
		Close()
		server.EngineHandle
	}
	// Windows are stamped with the capture's wall clock.
	clock := func(us int64) string {
		return stream.Base().Add(time.Duration(us) * time.Microsecond).Format("15:04:05")
	}
	var sink dot11fp.Sink = dot11fp.SinkFunc(cmdutil.Printer(os.Stdout, clock, *verbose))
	// The site wraps the sink before the engine exists (the engine's
	// Sink is fixed at construction); the engine attaches afterwards.
	var site *server.Site
	if *listen != "" {
		site = server.NewSite(*siteName, server.SiteOptions{Window: *window, Threshold: *threshold})
		sink = site.Sink(sink)
	}
	// An ensemble reference set selects the fused engines even with one
	// member — a 1-member ensemble checkpoint must drive the ensemble
	// path, not silently fall back to an empty single-parameter engine.
	fused := refs.Multi() || len(cfgs) > 1
	switch {
	case *shards == 1 && fused:
		eng, err = dot11fp.NewEnsembleEngine(cfgs, cedb, dot11fp.EngineOptions{
			Window: *window, Threshold: *threshold, Sink: sink, Trainer: trainer, Cluster: cl,
		})
	case *shards == 1:
		eng, err = dot11fp.NewEngine(cfgs[0], cdb, dot11fp.EngineOptions{
			Window: *window, Threshold: *threshold, Sink: sink, Trainer: trainer, Cluster: cl,
		})
	case fused:
		eng, err = dot11fp.NewShardedEnsembleEngine(cfgs, cedb, dot11fp.ShardedOptions{
			Window: *window, Threshold: *threshold, Shards: *shards, Sink: sink, Trainer: trainer, Cluster: cl,
		})
	default:
		eng, err = dot11fp.NewShardedEngine(cfgs[0], cdb, dot11fp.ShardedOptions{
			Window: *window, Threshold: *threshold, Shards: *shards, Sink: sink, Trainer: trainer, Cluster: cl,
		})
	}
	if err != nil {
		fatal(err)
	}
	var srv *server.Server
	if site != nil {
		site.Attach(eng, trainer, nil, refs)
		reg := server.NewRegistry()
		if err := reg.Add(site); err != nil {
			fatal(err)
		}
		srv, err = server.Start(*listen, reg, server.Options{})
		if err != nil {
			fatal(fmt.Errorf("-listen %s: %w", *listen, err))
		}
		fmt.Fprintf(os.Stderr, "livemon: serving HTTP on %s (site %q)\n", srv.Addr(), *siteName)
	}

	stop := make(chan struct{})
	if *statsEvery > 0 {
		go func() {
			tick := time.NewTicker(*statsEvery)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					cmdutil.StatsLine(os.Stderr, "livemon", eng.Stats())
					cmdutil.HealthLine(os.Stderr, "livemon", eng.Health(), nil)
					if trainer != nil {
						cmdutil.TrainerLine(os.Stderr, "livemon", trainer.Stats())
					}
				case <-stop:
					return
				}
			}
		}()
	}

	if pending != nil {
		eng.Push(pending)
	}
	for {
		rec, err := stream.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			fatal(err)
		}
		eng.Push(&rec)
	}
	eng.Close()
	close(stop)
	cmdutil.StatsLine(os.Stderr, "livemon", eng.Stats())
	cmdutil.HealthLine(os.Stderr, "livemon", eng.Health(), nil)
	if trainer != nil {
		cmdutil.TrainerLine(os.Stderr, "livemon", trainer.Stats())
	}
	if srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		srv.Shutdown(ctx)
		cancel()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "livemon:", err)
	os.Exit(1)
}
