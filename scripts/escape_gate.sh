#!/bin/sh
# Escape-analysis gate over the //fp:hotpath roots: the runtime half of
# the fphotpath contract. `cmd/fpvet -hotpath-ranges` prints the source
# range of every annotated per-frame function; this script intersects
# those ranges with the compiler's escape analysis (-gcflags=-m) and
# compares the result against the checked-in expectation,
# scripts/escape_gate.expect — which pins every hot-path root at zero
# heap escapes.
#
# If the gate fails, either the new escape is a regression (fix it), or
# it is a deliberate, amortised allocation that fphotpath already
# accepts via //fp:allocok — in which case re-run with -update and
# commit the new expectation alongside the justification:
#
#   scripts/escape_gate.sh [-update]
set -eu

cd "$(dirname "$0")/.."

expect="scripts/escape_gate.expect"
update=false
[ "${1:-}" = "-update" ] && update=true

ranges="$(mktemp)"
escapes="$(mktemp)"
observed="$(mktemp)"
expected="$(mktemp)"
trap 'rm -f "$ranges" "$escapes" "$observed" "$expected"' EXIT

go run ./cmd/fpvet -hotpath-ranges ./... > "$ranges"
[ -s "$ranges" ] || { echo "escape_gate: no //fp:hotpath ranges found" >&2; exit 1; }

# The compiler replays cached diagnostics, so this is cheap after the
# first build. -gcflags without a pattern applies only to the packages
# named on the command line, keeping vendor/ and the stdlib out.
go build -gcflags='-m=1' ./... 2>&1 \
  | grep -E 'escapes to heap|moved to heap' > "$escapes" || true

awk '
  NR == FNR {
    split($1, loc, ":")
    n++; file[n] = loc[1]; start[n] = loc[2] + 0; end[n] = loc[3] + 0
    fname[n] = $2
    next
  }
  {
    split($1, loc, ":")
    for (i = 1; i <= n; i++) {
      if (loc[1] == file[i] && loc[2] + 0 >= start[i] && loc[2] + 0 <= end[i]) {
        print fname[i] " " $0
      }
    }
  }
' "$ranges" "$escapes" | LC_ALL=C sort > "$observed"

if $update; then
  {
    echo "# Heap escapes inside //fp:hotpath function ranges, as reported by"
    echo "# go build -gcflags=-m. Maintained by scripts/escape_gate.sh -update;"
    echo "# any new entry needs a review-visible justification here."
    cat "$observed"
  } > "$expect"
  echo "escape_gate: wrote $(grep -cv '^#' "$expect" || true) expectation(s) to $expect"
  exit 0
fi

[ -f "$expect" ] || { echo "escape_gate: missing $expect (run with -update to create it)" >&2; exit 1; }

grep -v '^#' "$expect" > "$expected" || true
if ! diff -u "$expected" "$observed"; then
  echo "escape_gate: hot-path escapes differ from $expect (see diff above)" >&2
  echo "escape_gate: fix the regression, or justify it and re-run with -update" >&2
  exit 1
fi
echo "escape_gate: $(wc -l < "$ranges" | tr -d ' ') hot-path ranges, $(wc -l < "$observed" | tr -d ' ') expected escape(s) — clean"
