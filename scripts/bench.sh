#!/bin/sh
# Runs the hot-path micro-benchmarks and emits the results as
# BENCH_<date>.json so the performance trajectory can be compared across
# PRs. Usage:
#
#   scripts/bench.sh [output.json]
#
# BENCHTIME overrides the per-benchmark budget (default 2s; CI's bench
# smoke uses BENCHTIME=1x for a fast structural pass whose JSON is
# uploaded as an artifact — numbers from 1x runs are not comparable).
#
# SCALE_N selects the BenchmarkMatchAllScale reference counts (default
# "1000|10000"; the 100000 fixture's raw signatures need ~13 GB to
# build, so the full curve is an opt-in: SCALE_N='1000|10000|100000').
#
# The JSON is a list of {name, ns_per_op, allocs_per_op, bytes_per_op}
# objects plus a header with the commit and environment.
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_$(date +%Y-%m-%d).json}"
benchtime="${BENCHTIME:-2s}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

scale_n="${SCALE_N:-1000|10000}"

go test -run '^$' \
  -bench 'BenchmarkDatabaseMatch|BenchmarkCandidatesIn|BenchmarkExtract|BenchmarkCosine512|BenchmarkPcapRoundTrip|BenchmarkEnginePush|BenchmarkEngineStream|BenchmarkEnsemblePush|BenchmarkClusterPush|BenchmarkShardedPush|BenchmarkDBCodec|BenchmarkEngineEnroll|BenchmarkMultiStreamDegraded|BenchmarkServerQuery|BenchmarkSSEFanout|BenchmarkServedStream' \
  -benchmem -benchtime="$benchtime" . ./internal/server | tee "$raw"

# The indexed-matching scale curve; its own invocation so the N filter
# (an anchored second path element) cannot touch other benchmarks' subs.
go test -run '^$' \
  -bench "BenchmarkMatchAllScale/N=(${scale_n})\$" \
  -benchmem -benchtime="$benchtime" ./internal/core | tee -a "$raw"

commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
awk -v commit="$commit" -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
BEGIN { n = 0 }
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "B/op") bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (ns == "") next
    results[n++] = sprintf("  {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}",
                           name, ns, bytes == "" ? "null" : bytes, allocs == "" ? "null" : allocs)
}
END {
    printf "{\n\"commit\": \"%s\",\n\"date\": \"%s\",\n\"cpu\": \"%s\",\n\"benchmarks\": [\n", commit, date, cpu
    for (i = 0; i < n; i++) printf "%s%s\n", results[i], (i < n-1 ? "," : "")
    print "]\n}"
}' "$raw" > "$out"

echo "wrote $out"
