module dot11fp

go 1.24

// Vendored subset (go/analysis only); see doc.go "Static analysis" for
// why this is the repo's sole dependency and how it is maintained.
require golang.org/x/tools v0.28.1-0.20250131145412-98746475647e
