module dot11fp

go 1.24
