// Package dot11fp is a library for passive 802.11 device fingerprinting,
// reproducing "An Empirical Study of Passive 802.11 Device
// Fingerprinting" (Neumann, Heen, Onno — ICDCS 2012).
//
// A device is fingerprinted from global network parameters any standard
// wireless card in monitor mode can observe — transmission rate, frame
// size, medium access time, transmission time and frame inter-arrival
// time — without sending a single frame and without reading any header
// field the target controls. Signatures are per-frame-type
// percentage-frequency histograms compared by weighted cosine
// similarity.
//
// # Quick start
//
//	trace, _ := dot11fp.GenerateOffice("demo", 1, 10*time.Minute, 12)
//	train, live := dot11fp.Split(trace, 3*time.Minute)
//
//	db := dot11fp.NewDatabase(dot11fp.DefaultConfig(dot11fp.ParamInterArrival), dot11fp.MeasureCosine)
//	db.Train(train)
//
//	for _, cand := range dot11fp.CandidatesIn(live, 5*time.Minute, db.Config()) {
//	    best, _ := db.Best(cand.Sig)
//	    fmt.Printf("window %d: %v looks like %v (sim %.3f)\n",
//	        cand.Window, dot11fp.Addr(cand.Addr), best.Addr, best.Sim)
//	}
//
// Real captures enter the pipeline through ReadPcap (radiotap link
// type); the bundled simulator substitutes for the paper's testbed and
// CRAWDAD traces, as detailed in DESIGN.md.
package dot11fp
