// Package dot11fp is a library for passive 802.11 device fingerprinting,
// reproducing "An Empirical Study of Passive 802.11 Device
// Fingerprinting" (Neumann, Heen, Onno — ICDCS 2012).
//
// A device is fingerprinted from global network parameters any standard
// wireless card in monitor mode can observe — transmission rate, frame
// size, medium access time, transmission time and frame inter-arrival
// time — without sending a single frame and without reading any header
// field the target controls. Signatures are per-frame-type
// percentage-frequency histograms compared by weighted cosine
// similarity.
//
// # Quick start
//
//	trace, _ := dot11fp.GenerateOffice("demo", 1, 10*time.Minute, 12)
//	train, live := dot11fp.Split(trace, 3*time.Minute)
//
//	db := dot11fp.NewDatabase(dot11fp.DefaultConfig(dot11fp.ParamInterArrival), dot11fp.MeasureCosine)
//	db.Train(train)
//
//	for _, cand := range dot11fp.CandidatesIn(live, 5*time.Minute, db.Config()) {
//	    best, _ := db.Best(cand.Sig)
//	    fmt.Printf("window %d: %v looks like %v (sim %.3f)\n",
//	        cand.Window, dot11fp.Addr(cand.Addr), best.Addr, best.Sim)
//	}
//
// Real captures enter the pipeline through ReadPcap (radiotap link
// type); the bundled simulator substitutes for the paper's testbed and
// CRAWDAD traces, as detailed in DESIGN.md.
//
// # Streaming
//
// The paper's detection loop is online: a passive monitor watches
// frames arrive and re-identifies every candidate once per 5-minute
// detection window. Engine is that loop as a push-based API — no
// materialised trace, O(live senders + references) memory, and an
// allocation-free per-frame path (TestEnginePushZeroAllocs pins it).
// Each record is pushed as it is captured; when one crosses a window
// boundary the closed window's candidates are matched against the
// compiled references and typed events (CandidateMatched,
// UnknownDevice, CandidateDropped, WindowClosed) are delivered to the
// caller's sink, synchronously on the pushing goroutine:
//
//	eng, _ := dot11fp.NewEngine(cfg, db.Compile(), dot11fp.EngineOptions{
//	    Sink: dot11fp.SinkFunc(func(ev dot11fp.Event) {
//	        if m, ok := ev.(dot11fp.CandidateMatched); ok {
//	            fmt.Printf("window %d: %v is %v (sim %.3f)\n",
//	                m.Window, m.Addr, m.Best.Addr, m.Best.Sim)
//	        }
//	    }),
//	})
//	stream, _ := dot11fp.ReadPcapStream(liveFeed) // record-at-a-time, O(1) memory
//	for {
//	    rec, err := stream.Next()
//	    if err != nil {
//	        break
//	    }
//	    eng.Push(&rec)
//	}
//	eng.Close()
//
// Engine.SetDB hot-swaps the reference database mid-stream (live
// retraining without dropping a frame), and Engine.Stats exposes
// frames/s, live senders and per-verdict counters. The batch paths are
// thin adapters over the same code: CandidatesIn replays a trace
// through the shared WindowAccumulator and Evaluate drives an Engine,
// so batch and streaming output are bit-identical
// (TestEngineBitIdenticalToBatch). See cmd/livemon for the pipeline as
// a live monitoring service and examples/livestream for the API end to
// end.
//
// # Scaling
//
// The detection loop is per-sender and windowed, which makes it
// shardable by transmitter address. ShardedEngine is the concurrent
// form of Engine: a router on the pushing goroutine applies the global
// window clock and attribution rules, computes each observation's
// parameter value against the stream-wide inter-arrival context, and
// hash-partitions the observations across N shards (default
// GOMAXPROCS). Each shard owns its accumulator and match scratch and is
// fed through an SPSC batch queue; a merger joins per-shard results
// back into one event stream. Because windowing and parameter values
// are computed globally, the merged stream is identical to the serial
// Engine's — same events, same order — for every shard count
// (TestShardedIdenticalToSerial); shard count changes wall-clock
// behaviour only.
//
//	eng, _ := dot11fp.NewShardedEngine(cfg, db.Compile(), dot11fp.ShardedOptions{
//	    Shards:       0,                                   // one shard per core
//	    Backpressure: dot11fp.BackpressureBlock,           // lossless flow control
//	    Limits:       dot11fp.SenderLimits{MaxSenders: 10_000},
//	    Sink:         sink,
//	})
//
// Backpressure is explicit: Block (default) makes Push wait when a
// shard queue fills, so a slow sink throttles the producer losslessly;
// Drop bounds ingest latency instead, discarding observations under
// pressure and counting them in Stats.DroppedFrames (window clocking is
// never dropped). Events are delivered asynchronously on an internal
// goroutine; Flush and Close block until every flushed window's events
// have reached the sink.
//
// Sender state is boundable on both engines via SenderLimits: a
// MaxSenders cap evicts least-recently-seen senders (batched, so the
// scan amortises), and IdleEvict sweeps senders silent for longer than
// the bound — under MAC randomization, apparent senders outnumber
// physical devices by orders of magnitude, and an unbounded map grows
// with every address ever seen. Evicted senders surface as
// CandidateDropped events with Evicted set, so the information loss is
// explicit in the event stream (individually up to a per-window record
// cap — beyond it evictions are counted, not listed, so even the
// bookkeeping stays bounded under a MAC flood); with limits unset,
// state is unbounded
// and output stays bit-identical to the batch pipeline. Eviction is
// deterministic given the record stream (per shard, once sharded).
//
// Stats snapshots are consistent: the window-scoped counters are
// updated as one group, while Frames/DroppedFrames are monotonic
// ingest-side counters that may run ahead of them by the records still
// in flight.
//
// # Online enrollment
//
// The paper trains references offline, on a captured prefix. A monitor
// that serves live feeds must also learn while it watches: Trainer
// closes the loop from the event stream back into the reference set.
// Attached to either engine (EngineOptions.Trainer /
// ShardedOptions.Trainer — the engine's db argument is then nil, the
// trainer owns the references), it accumulates each unknown sender's
// window signatures over an enrollment horizon (TrainerOptions.Horizon
// windows and MinObservations observations), applies the enrollment
// policy — EnrollAuto, EnrollConfirm with a callback, a deny-list —
// and promotes completed signatures into its private copy-on-write
// Database, compiling and hot-swapping the engine so the next window
// matches against the grown reference set. Promotions surface as typed
// events: EnrollmentProgress per pending sender, DeviceEnrolled per
// promotion, and exactly one DBSwapped per promotion batch.
//
//	trainer := dot11fp.NewTrainer(cfg, dot11fp.MeasureCosine, dot11fp.TrainerOptions{
//	    Horizon: 2,          // windows a sender must be a candidate in
//	    MaxPending: 10_000,  // bound accumulation state under MAC churn
//	})
//	eng, _ := dot11fp.NewEngine(cfg, nil, dot11fp.EngineOptions{
//	    Sink: sink, Trainer: trainer, // cold start: refs learned live
//	})
//
// Because accumulation reuses the same window signatures the engines
// extract, live enrollment is exact, not approximate: a database
// enrolled over the first K windows of a stream (Horizon 1, Update on)
// is bit-identical — same references, same insertion order, same
// MatchAll scores — to one batch-trained per window on the same
// prefix, on both the serial and the sharded engine
// (TestTrainerLiveEqualsBatch). NewTrainerFrom seeds a warm start from
// an existing database (deep-copied); TrainerOptions.Update keeps
// enrolled references learning from re-observations.
//
// Trainer.Database() snapshots the working references under the
// trainer's lock for checkpointing. Database.SaveBinary/LoadBinary is
// the checkpoint codec — a versioned binary format roughly an order of
// magnitude faster and smaller than the JSON interop path (which Save/
// Load keep serving), so SIGHUP-triggered checkpoints do not stall
// ingestion; corrupt or truncated checkpoints surface as typed errors
// (ErrBinaryDatabase, ErrBinaryVersion; fuzzed). cmd/fingerprintd
// wires the whole loop: -enroll / -enroll-windows turn on live
// enrollment (cold start with -ref 0), -save checkpoints on SIGHUP,
// periodically (-checkpoint-every) and at shutdown — generation-chained
// writes, see Fault tolerance — and -db restores either codec;
// cmd/livemon takes -enroll for single-feed monitoring.
//
// Multiple monitors feed one engine through capture.MultiStream
// (NewMultiStream): each source decodes on its own goroutine and the
// merge interleaves by timestamp (deterministic, for synced or rebased
// captures) or by arrival (live FIFOs). cmd/fingerprintd packages the
// whole stack as a daemon — multi-source ingest, sharded engine,
// periodic stats, graceful drain on SIGINT/SIGTERM.
//
// # Fault tolerance
//
// A passive monitor's failure modes are mundane and constant: radios
// unplug, drivers wedge, tcpdump writers hang up mid-record, disks
// fill during a checkpoint. The pipeline treats each as a degradation,
// never a termination.
//
// Ingest: NewMultiStreamOpts takes a Supervisor that puts every source
// under per-source supervision. A source error (or, per ReopenOnEOF, a
// FIFO's writer hang-up) triggers the Reopen factory with exponential
// backoff and seeded jitter, up to MaxAttempts before the source is
// declared permanently down; a decode-error storm trips a per-source
// circuit breaker (BreakerWindow/BreakerRate) and degrades the source
// through the same path instead of spinning on garbage. A supervised
// reopen under MergeByTime rebases the new generation onto the merged
// clock, so timestamps stay monotonic across restarts. Throughout, a
// failing source only thins the merge: healthy sources keep streaming,
// and the dead lane's retirement is visible as SourceDown/SourceUp
// events (Supervisor.Notify) and per-source SourceStats counters
// (records, decode errors, failures, reopens, state).
//
// Compute: both engines recover panics in shard, merger, and sink code
// — a poisoned frame costs its own batch, not the process, with the
// recovery surfaced as a ComponentPanicked event on
// ShardedOptions.HealthSink and counted in Engine/Sharded Health()
// snapshots. ShardedOptions.Watchdog arms a stall detector that emits
// ShardStalled/ShardResumed as shards stop and resume draining.
// Supervision lives entirely off the per-frame path: the fault-free
// hot loops stay allocation-free and lock-free
// (TestShardedPushZeroAllocs is unchanged by all of this).
//
// Checkpoints: reference saves are generation-chained — the previous
// good checkpoint (path, path.1, …) is kept until the new file is
// fully written, fsynced, and header-verified, so a crash, ENOSPC, or
// torn write anywhere in the sequence leaves a loadable chain. Loads
// fall back generation by generation. cmd/fingerprintd wires the whole
// posture: -source-retry supervises its inputs, -checkpoint-every adds
// periodic saves with bounded retry to the SIGHUP/shutdown triggers, a
// failed save logs and keeps the previous generation, -stats lines
// include engine health and per-source state, and a run that survived
// faults (recovered panics, permanently-down sources, failed saves)
// exits 3 — degraded — instead of 0.
//
// All of it is testable on demand: internal/faultinject provides the
// seeded, schedule-driven fault wrappers (erroring/stalling/corrupting
// sources, ENOSPC/torn-write/crash filesystems, shard panic hooks) the
// chaos soak uses to replay exact failure sequences; the soak pins the
// end-to-end guarantee that senders on healthy sources produce
// bit-identical verdicts under fault injection (TestChaosSoakDeterminism)
// and that every checkpoint chain stays loadable after every failed
// save (TestChaosSoakCheckpoints).
//
// # Multi-parameter fusion
//
// The paper's conclusion leaves open "whether the fingerprinting
// method can be improved by combining several network parameters";
// Ensemble is that combination: one reference database per member
// parameter, a candidate's fused similarity the mean of its
// per-parameter similarities — robust where a single parameter is
// ambiguous (EXPERIMENTS.md records office identification reaching
// 100% with all five members). An Ensemble trains, checkpoints
// (SaveBinary — a versioned multi-database container —
// LoadBinaryEnsemble) and compiles like a Database: Compile returns a
// CompiledEnsemble with the member snapshots frozen and the
// fully-known reference set resolved once per reference change, plus
// zero-allocation (MatchInto + EnsembleScratch) and batched (MatchAll)
// fused entry points.
//
// The streaming stack runs fused end to end. NewEnsembleEngine /
// NewShardedEnsembleEngine extract every member parameter in one pass
// — one window clock, one shared inter-arrival context, one signature
// per member per sender — and match each closed window on the fused
// score, emitting verdict events that carry the fused vector (Scores)
// plus the per-member vectors and signatures (ParamScores, Sigs):
//
//	cfgs := []dot11fp.Config{
//	    {Param: dot11fp.ParamRate}, {Param: dot11fp.ParamSize}, {Param: dot11fp.ParamInterArrival},
//	}
//	ens, _ := dot11fp.NewEnsemble(dot11fp.MeasureCosine, cfgs...)
//	ens.Train(trainTrace)
//	eng, _ := dot11fp.NewEnsembleEngine(cfgs, ens.Compile(), dot11fp.EngineOptions{Sink: sink})
//
// The fused streams are exact: TestEnsembleEngineBitIdenticalToBatch
// pins serial and sharded fused scores bit-identical to the batch
// Ensemble path at every shard count, TestEnsemblePushZeroAllocs keeps
// the N-parameter push path allocation-free, and SetEnsembleDB
// hot-swaps fused references exactly like SetDB. Online enrollment is
// fused too: NewEnsembleTrainer accumulates one signature per member
// per pending sender and promotes them atomically (Ensemble.Add), so a
// live-enrolled ensemble never holds a device enrolled in some members
// but not others; devices that end up partially known anyway (e.g.
// separate member training) are reported by Ensemble.Partial — they
// can never match, because matching requires every member, and
// NewEnsembleTrainerFrom refuses such seeds. cmd/livemon and
// cmd/fingerprintd select fusion with a -param comma list
// (-param rate,size,iat); fingerprintd -save checkpoints the whole
// fused reference set in one atomic container.
//
// # MAC randomization
//
// Address-keyed fingerprinting assumes the sender address is stable;
// modern clients rotate a fresh locally-administered MAC per probe
// burst, which splits one device across many short-lived senders and
// drives identification to zero (the training prefix and the
// monitoring period never share an address). The counter is that the
// probe body itself is a fingerprint: ParseElems walks a management
// frame's information elements into Elems, and ContentKey folds the IE
// order, supported rates, capability bits and vendor payloads (which
// carry per-unit WPS UUID-E identity) into one content key that
// survives every address rotation. Three parameters score that content
// directly — ParamProbeIE (element order), ParamProbeCap (rates and
// capabilities) and ParamProbeSSID (directed-probe SSIDs) — listed in
// ContentParams and selectable as -param probe-ie,probe-cap,probe-ssid.
//
// Clusterer turns the key back into a stable identity: Resolve
// inspects each record before sender-table admission, binds every
// FCS-valid probe's sender to a canonical address derived purely from
// its content key, and rewrites subsequent frames from bound senders.
// Because the canonical address is a pure function of the content,
// independent Clusterer instances agree without coordination — the
// serial engine, the sharded engine and batch training (Apply, or a
// training stream wrapped by one Clusterer) all converge on the same
// identities, and engine events simply report canonical senders.
// EngineOptions.Cluster / ShardedOptions.Cluster enable it (nil keeps
// the zero-allocation per-frame path untouched); livemon and
// fingerprintd expose it as -cluster, sharing one Clusterer across the
// training prefix and live monitoring so bindings stay warm over the
// boundary. The binding table is FIFO-bounded (DefaultClusterBindings)
// so address churn cannot grow it without limit. EXPERIMENTS.md
// quantifies the recovery: on a fully randomized office trace, fused
// identification goes from 0% to 92% at a 1% FPR budget once
// clustering is on.
//
// # Serving
//
// internal/server packages the pipeline as fingerprinting as a
// service: an HTTP face (stdlib only) the daemons mount with -listen.
// The API is multi-tenant over named sites — one site per engine plus
// its references, trainer and capture sources — rooted at
// /api/v1/sites/{site}:
//
//	GET  .../senders            last verdict per sender (bounded cache)
//	GET  .../senders/{mac}      "who is sender X": verdict + full score vector
//	GET  .../references         enrolled reference addresses
//	GET  .../references/{mac}   one reference's per-parameter observations
//	GET  .../enroll             pending enrollments + unanswered offers
//	POST .../enroll/{mac}       {"decision":"approve"|"reject"} (confirm mode)
//	POST .../score              score an uploaded pcap against the references
//	POST .../checkpoint         save the references (generation-chained)
//	POST .../checkpoint/load    hot-swap references from the checkpoint chain
//	GET  .../feed               server-sent-events verdict stream
//	GET  /metrics               Prometheus text over every site's snapshot
//	GET  /healthz               200 clean / 503 degraded, per-site detail
//
// Serving never touches the hot path: everything comes from the
// engines' snapshot surfaces, from a verdict cache fed at window close
// (bounded like every other per-sender map, so MAC randomization
// cannot grow the server), or from a one-shot batch engine running the
// site's own window/threshold — so a sender query answers with exactly
// the scores the batch path produces (TestSenderQueryMatchesBatch).
// The SSE feed fans events out through per-client buffers with
// non-blocking sends: a slow or dead client loses frames (counted per
// client and in /metrics), never stalls the pipeline, while a client
// that keeps up sees the engine's exact event sequence
// (TestFeedStreamsEventSequence); with no clients connected events are
// never even encoded. TestEnginePushZeroAllocs holds with the server's
// taps attached and a feed subscribed.
//
// Enrollment closes its loop over the wire: TrainerOptions.Decide is
// the three-way form of Confirm (approve / reject / defer keeps the
// sender pending and asks again next window), and the server's
// EnrollGate implements it — fingerprintd -enroll-confirm holds each
// completed sender until an operator posts the verdict. Checkpoint
// endpoints reuse the generation-chained save/load against the
// server-side -save path (clients never name paths); a trainer-owned
// site refuses loads rather than diverge from its trainer.
//
// The server is built for trusted monitoring networks: there is no
// authentication, no TLS, and the API exposes observed MAC addresses
// and traffic metadata — bind -listen to loopback or a management
// network, never a public interface (-pprof additionally mounts
// /debug/pprof). cmd/fingerprintd wires the whole face (-listen,
// -site, -pprof, -enroll-confirm) with shutdown joined to the
// SIGINT/SIGTERM drain — the API stays queryable until the final
// checkpoint is on disk, then feeds are flushed and released;
// cmd/livemon takes -listen/-site for single-feed monitoring.
//
// # Performance
//
// Matching is the N×W×D hot loop of the methodology: every candidate
// device in every detection window is compared against every reference.
// Database.Match (and Best/Above) delegates to a compiled snapshot —
// Database.Compile returns a CompiledDB that freezes the references
// into contiguous per-class frequency matrices with precomputed weights
// and norms, built lazily and invalidated by Add/Train. The snapshot's
// results are bit-identical to evaluating SimilarityOf per pair.
//
// For steady-state matching without any allocation, hold a CompiledDB
// and a per-goroutine MatchScratch:
//
//	cdb := db.Compile()
//	var scratch dot11fp.MatchScratch
//	for _, cand := range cands {
//	    scores := cdb.MatchInto(cand.Sig, &scratch) // valid until next call
//	    ...
//	}
//
// CompiledDB is safe for concurrent use (one scratch per goroutine);
// CompiledDB.MatchAll batches a whole candidate set across GOMAXPROCS
// workers with deterministic, index-ordered results. CandidatesIn
// streams a validation trace in a single pass, and Evaluate fans
// candidate matching out across EvalSpec.Workers (default GOMAXPROCS)
// with results bit-identical to the serial path. EXPERIMENTS.md records
// the measured numbers.
//
// # Indexed matching
//
// The dense compiled kernels are linear in the reference count: every
// candidate touches every reference row. At fleet scale (tens of
// thousands of enrolled devices) that linear sweep is the entire
// matching cost, yet a detection verdict only ever consumes the best
// few scores. Compile therefore also builds a sparse match index —
// per-class inverted postings over the non-zero signature bins, plus
// per-reference norm bounds grouped into coarse blocks — and Best,
// Above and the TopK entry points run a best-first term walk over it:
// postings are opened shortest-first, an admissible upper bound on
// every unseen reference shrinks as terms are consumed, and the walk
// stops as soon as no unseen reference can displace the current top-k.
// Candidates are scored against far fewer than N references while the
// returned scores, ranks and ties stay bit-identical to the exhaustive
// sweep — the pruning bound is inflated by a hair above the kernels'
// rounding, so a reference is only skipped when it provably cannot
// matter (TestIndexedBitIdentical and TestEnsembleIndexBitIdentical pin
// all four measures, adversarial near-ties included).
//
// IndexMode controls construction: IndexAuto (the default) builds the
// index once the reference set is large enough for pruning to pay for
// itself and skips the dense matrices' memory when it does; IndexOn
// forces it; IndexOff keeps the exhaustive dense baseline
// (Database.SetIndexing / Ensemble.SetIndexing, or -index auto|on|off
// on livemon and fingerprintd — trainers forward the mode to their
// working references via Trainer.SetIndexing). CompiledEnsemble prunes
// on the fused score directly: member bounds combine into one fused
// upper bound, so a multi-parameter top-k visits only references
// competitive under the mean, not the union of per-member candidates.
//
// The full MatchInto/MatchAll vector is inherently Ω(N) — it returns N
// scores — so the engines expose the sublinear path as
// EngineOptions.TopK / ShardedOptions.TopK: verdict events then carry
// the ranked k best scores instead of the full vector, with verdicts,
// Best and window summaries unchanged (TestEngineTopKVerdictsIdentical
// pins them bit-identical at every shard count). Index shape and cost —
// entries, postings, bytes, and the dense bytes forgone — surface in
// Engine/Sharded Stats().Index, the HTTP API's site snapshot and the
// dot11fp_index_* Prometheus families. EXPERIMENTS.md records the
// measured curve: at 10k references an indexed top-k window costs
// under 0.1% of the dense sweep, and a 10× larger reference set
// (10k → 100k) costs only ~1.3× more.
//
// # Static analysis
//
// The guarantees above — zero allocations per frame on the push paths,
// event streams bit-identical between the serial and sharded engines,
// non-blocking verdict sinks, fsync'd checkpoint chains — are enforced
// at compile review time, not just by the tests that measure them.
// internal/analysis holds five go/analysis analyzers (fphotpath,
// fpdeterminism, fpsinksafe, fpatomicfield, fpclosecheck) driven by
// //fp: source annotations: //fp:hotpath test=TestName marks a
// per-frame root, //fp:coldpath an amortised boundary,
// //fp:deterministic (package doc) opts a package into the
// bit-identical rules, and //fp:wallclock, //fp:unordered,
// //fp:mayblock, //fp:allocok and //fp:closeok are per-line escapes
// that each require a written justification (see
// internal/analysis.Directive). `go run ./cmd/fpvet ./...` applies
// the suite to every package and CI's invariant-lint step runs it on
// every push, alongside scripts/escape_gate.sh, which intersects the
// compiler's escape analysis with the //fp:hotpath ranges and diffs
// the result against a checked-in expectation. Every //fp:hotpath
// annotation must also name the testing.AllocsPerRun test that pins
// its runtime behavior (enforced by a meta-test), so each hot-path
// invariant is held three ways: statically by the analyzer, by the
// compiler's escape analysis, and at runtime by the named test.
//
// This suite is why go.mod carries the module's only dependency,
// golang.org/x/tools (vendored): the go/analysis framework is the
// standard currency for Go static checks — the same interface vet
// itself uses — and writing the analyzers against it keeps them usable
// by any multichecker-style driver, not just cmd/fpvet's. Everything
// else in the module remains stdlib-only.
package dot11fp
