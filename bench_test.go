// Benchmark harness: every table and figure of the paper's evaluation
// has a regenerating benchmark here. Traces are scaled-down stand-ins
// for the paper's 7-hour captures (see EXPERIMENTS.md for the committed
// scale and the paper-vs-measured record); fixtures are built once and
// cached, so each benchmark iteration measures the experiment itself.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Regenerate a single artefact:
//
//	go test -bench=BenchmarkTableII -benchtime=1x
package dot11fp_test

import (
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"dot11fp"
	"dot11fp/internal/core"
	"dot11fp/internal/eval"
	"dot11fp/internal/figures"
	"dot11fp/internal/scenario"
)

// benchSpec describes one of the paper's four evaluation traces at the
// committed benchmark scale (≈0.1 of the paper's durations).
type benchSpec struct {
	name       string
	conference bool
	total      time.Duration
	ref        time.Duration
	stations   int
	seed       uint64
}

var benchSpecs = []benchSpec{
	{name: "conf-1", conference: true, total: 40 * time.Minute, ref: 8 * time.Minute, stations: 52, seed: 101},
	{name: "conf-2", conference: true, total: 20 * time.Minute, ref: 6 * time.Minute, stations: 32, seed: 102},
	{name: "office-1", conference: false, total: 40 * time.Minute, ref: 8 * time.Minute, stations: 40, seed: 103},
	{name: "office-2", conference: false, total: 20 * time.Minute, ref: 6 * time.Minute, stations: 32, seed: 104},
}

var (
	traceMu    sync.Mutex
	traceCache = map[string]*dot11fp.Trace{}
)

func benchTrace(tb testing.TB, spec benchSpec) *dot11fp.Trace {
	tb.Helper()
	traceMu.Lock()
	defer traceMu.Unlock()
	if tr, ok := traceCache[spec.name]; ok {
		return tr
	}
	var p scenario.Params
	if spec.conference {
		p = scenario.Conference(spec.name, spec.seed, spec.total, spec.stations)
	} else {
		p = scenario.Office(spec.name, spec.seed, spec.total, spec.stations)
	}
	tr, _, err := scenario.Build(p)
	if err != nil {
		tb.Fatal(err)
	}
	traceCache[spec.name] = tr
	return tr
}

func specByName(name string) benchSpec {
	for _, s := range benchSpecs {
		if s.name == name {
			return s
		}
	}
	panic("unknown spec " + name)
}

// evalOne runs the paper's methodology for one trace and parameter.
func evalOne(tb testing.TB, spec benchSpec, param dot11fp.Param) *eval.Result {
	tb.Helper()
	tr := benchTrace(tb, spec)
	res, err := dot11fp.Evaluate(tr, dot11fp.EvalSpec{
		RefDuration: spec.ref,
		Window:      dot11fp.DefaultWindow,
		Config:      dot11fp.DefaultConfig(param),
	})
	if err != nil {
		tb.Fatal(err)
	}
	return res
}

var printOnce sync.Map

// printSection emits a labelled block exactly once per process, so
// benchmark reruns (b.N > 1) do not repeat the tables.
func printSection(key, body string) {
	if _, loaded := printOnce.LoadOrStore(key, true); loaded {
		return
	}
	fmt.Fprintf(os.Stdout, "\n===== %s =====\n%s\n", key, body)
}

// --- Table I -------------------------------------------------------------------

// BenchmarkTableI regenerates Table I: trace features and reference
// database sizes. Paper (full scale): conf-1 7h/188, conf-2 1h/97,
// office-1 7h/158, office-2 1h/120 reference devices.
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var infos []eval.TraceInfo
		for _, spec := range benchSpecs {
			tr := benchTrace(b, spec)
			infos = append(infos, dot11fp.DescribeTrace(tr, spec.ref, dot11fp.DefaultConfig(dot11fp.ParamInterArrival)))
		}
		printSection("TABLE I (scaled: 0.1× durations, ~0.25× populations)", eval.FormatTableI(infos))
	}
}

// --- Tables II and III -----------------------------------------------------------

// paperTableII holds the paper's AUC values for reference printing.
var paperTableII = map[string]map[dot11fp.Param]float64{
	"conf-1":   {dot11fp.ParamRate: 4.0, dot11fp.ParamSize: 53.4, dot11fp.ParamMediumAccess: 63.4, dot11fp.ParamTxTime: 80.7, dot11fp.ParamInterArrival: 62.7},
	"conf-2":   {dot11fp.ParamRate: 33.5, dot11fp.ParamSize: 78.2, dot11fp.ParamMediumAccess: 61.5, dot11fp.ParamTxTime: 79.4, dot11fp.ParamInterArrival: 72.5},
	"office-1": {dot11fp.ParamRate: 83.7, dot11fp.ParamSize: 85.7, dot11fp.ParamMediumAccess: 86.4, dot11fp.ParamTxTime: 95.0, dot11fp.ParamInterArrival: 93.7},
	"office-2": {dot11fp.ParamRate: 70.6, dot11fp.ParamSize: 70.0, dot11fp.ParamMediumAccess: 68.8, dot11fp.ParamTxTime: 82.9, dot11fp.ParamInterArrival: 80.1},
}

// paperTableIII holds the paper's identification ratios at FPR 0.01/0.1.
var paperTableIII = map[string]map[dot11fp.Param][2]float64{
	"conf-1":   {dot11fp.ParamRate: {0, 0}, dot11fp.ParamSize: {0, 4.5}, dot11fp.ParamMediumAccess: {22.7, 27.2}, dot11fp.ParamTxTime: {0, 6.8}, dot11fp.ParamInterArrival: {15.9, 20.4}},
	"conf-2":   {dot11fp.ParamRate: {0.6, 7.5}, dot11fp.ParamSize: {0.2, 2.5}, dot11fp.ParamMediumAccess: {6.8, 28.1}, dot11fp.ParamTxTime: {0, 5.8}, dot11fp.ParamInterArrival: {6.4, 32.2}},
	"office-1": {dot11fp.ParamRate: {7.0, 12.9}, dot11fp.ParamSize: {18.4, 33.9}, dot11fp.ParamMediumAccess: {34.0, 41.0}, dot11fp.ParamTxTime: {56.1, 60.5}, dot11fp.ParamInterArrival: {48.0, 56.7}},
	"office-2": {dot11fp.ParamRate: {3.0, 7.0}, dot11fp.ParamSize: {13.8, 20.4}, dot11fp.ParamMediumAccess: {18.4, 21.1}, dot11fp.ParamTxTime: {43.4, 50.5}, dot11fp.ParamInterArrival: {21.5, 27.5}},
}

// gridResults computes the full parameter × trace result grid once.
var (
	gridOnce sync.Once
	grid     map[string]map[core.Param]*eval.Result
)

func benchGrid(tb testing.TB) map[string]map[core.Param]*eval.Result {
	gridOnce.Do(func() {
		grid = make(map[string]map[core.Param]*eval.Result, len(benchSpecs))
		for _, spec := range benchSpecs {
			grid[spec.name] = make(map[core.Param]*eval.Result, len(dot11fp.Params))
			for _, param := range dot11fp.Params {
				grid[spec.name][param] = evalOne(tb, spec, param)
			}
		}
	})
	return grid
}

// BenchmarkTableII regenerates Table II: similarity-test AUC per
// parameter and trace, printed next to the paper's values.
func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := benchGrid(b)
		body := eval.FormatTableII(g, traceNames())
		body += "\npaper values for comparison:\n"
		for _, p := range dot11fp.Params {
			body += fmt.Sprintf("%-22s", p.String())
			for _, tn := range traceNames() {
				body += fmt.Sprintf(" %11.1f%%", paperTableII[tn][p])
			}
			body += "\n"
		}
		printSection("TABLE II — AUC, measured vs paper", body)
	}
}

// BenchmarkTableIII regenerates Table III: identification ratios at FPR
// 0.01 and 0.1, printed next to the paper's values.
func BenchmarkTableIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := benchGrid(b)
		body := eval.FormatTableIII(g, traceNames())
		body += "\npaper values for comparison:\n"
		for _, p := range dot11fp.Params {
			for fi, budget := range []float64{0.01, 0.1} {
				body += fmt.Sprintf("%-28s", fmt.Sprintf("%s, %.2f", p.String(), budget))
				for _, tn := range traceNames() {
					body += fmt.Sprintf(" %11.1f%%", paperTableIII[tn][p][fi])
				}
				body += "\n"
			}
		}
		printSection("TABLE III — identification ratios, measured vs paper", body)
	}
}

func traceNames() []string {
	out := make([]string, len(benchSpecs))
	for i, s := range benchSpecs {
		out[i] = s.name
	}
	return out
}

// --- Figure 3 ---------------------------------------------------------------------

// BenchmarkFigure3 regenerates the similarity-curve series (TPR vs FPR
// per trace and parameter) and writes them as TSV under
// testdata/figures/ for plotting.
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := benchGrid(b)
		dir := "testdata/figures"
		if err := os.MkdirAll(dir, 0o755); err != nil {
			b.Fatal(err)
		}
		n := 0
		for tn, perParam := range g {
			for param, res := range perParam {
				path := fmt.Sprintf("%s/fig3-%s-%s.tsv", dir, tn, param.ShortName())
				if err := os.WriteFile(path, []byte(eval.FormatCurveTSV(res)), 0o644); err != nil {
					b.Fatal(err)
				}
				n++
			}
		}
		printSection("FIGURE 3", fmt.Sprintf("wrote %d TPR/FPR curve files under %s/", n, dir))
	}
}

// --- Histogram figures ---------------------------------------------------------------

func benchFigure(b *testing.B, key string, gen func() ([]figures.Series, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		series, err := gen()
		if err != nil {
			b.Fatal(err)
		}
		body := ""
		for _, s := range series {
			h := s.Sig
			body += fmt.Sprintf("%-60s %8d observations\n", s.Title, h.Observations())
		}
		printSection(key, body)
	}
}

// BenchmarkFigure2 regenerates the example inter-arrival histogram.
func BenchmarkFigure2(b *testing.B) {
	benchFigure(b, "FIGURE 2 — example inter-arrival histogram", func() ([]figures.Series, error) {
		s, err := figures.Figure2(42)
		return []figures.Series{s}, err
	})
}

// BenchmarkFigure4 regenerates the backoff-implementation comparison.
func BenchmarkFigure4(b *testing.B) {
	benchFigure(b, "FIGURE 4 — backoff implementations (Faraday cage)", func() ([]figures.Series, error) {
		ss, err := figures.Figure4(42)
		return ss[:], err
	})
}

// BenchmarkFigure5 regenerates the RTS threshold comparison.
func BenchmarkFigure5(b *testing.B) {
	benchFigure(b, "FIGURE 5 — RTS mechanism off/on", func() ([]figures.Series, error) {
		ss, err := figures.Figure5(42)
		return ss[:], err
	})
}

// BenchmarkFigure6 regenerates the rate-adaptation comparison.
func BenchmarkFigure6(b *testing.B) {
	benchFigure(b, "FIGURE 6 — rate adaptation signatures", func() ([]figures.Series, error) {
		iat, rates, err := figures.Figure6(42)
		return []figures.Series{iat[0], iat[1], rates[0], rates[1]}, err
	})
}

// BenchmarkFigure7 regenerates the twin-netbook service comparison.
func BenchmarkFigure7(b *testing.B) {
	benchFigure(b, "FIGURE 7 — identical netbooks, different services", func() ([]figures.Series, error) {
		ss, err := figures.Figure7(42)
		return ss[:], err
	})
}

// BenchmarkFigure8 regenerates the power-save null-function comparison.
func BenchmarkFigure8(b *testing.B) {
	benchFigure(b, "FIGURE 8 — power-save null frames per card", func() ([]figures.Series, error) {
		ss, err := figures.Figure8(42)
		return ss[:], err
	})
}

// --- Ablations (design-choice benchmarks from DESIGN.md) ----------------------------

// BenchmarkAblationBinWidth sweeps the linear bin width of the
// inter-arrival histogram on office-2.
func BenchmarkAblationBinWidth(b *testing.B) {
	spec := specByName("office-2")
	for i := 0; i < b.N; i++ {
		tr := benchTrace(b, spec)
		body := fmt.Sprintf("%-12s %8s %12s %12s\n", "bin width", "AUC", "ident@0.01", "ident@0.1")
		for _, width := range []float64{5, 10, 20, 50} {
			bins := dot11fp.DefaultBins(dot11fp.ParamInterArrival)
			bins.Width = width
			bins.Bins = int(float64(bins.Bins) * 10 / width)
			res, err := dot11fp.Evaluate(tr, dot11fp.EvalSpec{
				RefDuration: spec.ref,
				Window:      dot11fp.DefaultWindow,
				Config:      dot11fp.Config{Param: dot11fp.ParamInterArrival, Bins: bins},
			})
			if err != nil {
				b.Fatal(err)
			}
			body += fmt.Sprintf("%-12v %7.1f%% %11.1f%% %11.1f%%\n",
				width, res.AUC*100, res.IdentAtFPR[0.01]*100, res.IdentAtFPR[0.1]*100)
		}
		printSection("ABLATION — inter-arrival bin width (office-2)", body)
	}
}

// BenchmarkAblationMinObs sweeps the minimum-observation rule (the
// paper settles on 50 as the accuracy/latency compromise, §V-C).
func BenchmarkAblationMinObs(b *testing.B) {
	spec := specByName("office-2")
	for i := 0; i < b.N; i++ {
		tr := benchTrace(b, spec)
		body := fmt.Sprintf("%-8s %6s %8s %8s %12s\n", "min obs", "refs", "cands", "AUC", "ident@0.1")
		for _, min := range []int{10, 50, 500, 2_000, 10_000} {
			res, err := dot11fp.Evaluate(tr, dot11fp.EvalSpec{
				RefDuration: spec.ref,
				Window:      dot11fp.DefaultWindow,
				Config:      dot11fp.Config{Param: dot11fp.ParamInterArrival, MinObservations: min},
			})
			if err != nil {
				b.Fatal(err)
			}
			body += fmt.Sprintf("%-8d %6d %8d %7.1f%% %11.1f%%\n",
				min, res.RefDevices, res.Candidates, res.AUC*100, res.IdentAtFPR[0.1]*100)
		}
		printSection("ABLATION — minimum observations (office-2)", body)
	}
}

// BenchmarkAblationMeasure compares histogram similarity measures
// (cosine is the paper's choice).
func BenchmarkAblationMeasure(b *testing.B) {
	spec := specByName("office-2")
	measures := []dot11fp.Measure{
		dot11fp.MeasureCosine, dot11fp.MeasureIntersection,
		dot11fp.MeasureBhattacharyya, dot11fp.MeasureL1,
	}
	for i := 0; i < b.N; i++ {
		tr := benchTrace(b, spec)
		body := fmt.Sprintf("%-16s %8s %12s %12s\n", "measure", "AUC", "ident@0.01", "ident@0.1")
		for _, m := range measures {
			res, err := dot11fp.Evaluate(tr, dot11fp.EvalSpec{
				RefDuration: spec.ref,
				Window:      dot11fp.DefaultWindow,
				Config:      dot11fp.DefaultConfig(dot11fp.ParamInterArrival),
				Measure:     m,
			})
			if err != nil {
				b.Fatal(err)
			}
			body += fmt.Sprintf("%-16v %7.1f%% %11.1f%% %11.1f%%\n",
				m, res.AUC*100, res.IdentAtFPR[0.01]*100, res.IdentAtFPR[0.1]*100)
		}
		printSection("ABLATION — similarity measures (office-2, inter-arrival)", body)
	}
}

// BenchmarkAblationEnsemble evaluates the paper's future-work question:
// does combining several network parameters improve identification?
func BenchmarkAblationEnsemble(b *testing.B) {
	for i := 0; i < b.N; i++ {
		body := fmt.Sprintf("%-10s %-24s %8s %12s %12s\n", "trace", "fingerprint", "AUC", "ident@0.01", "ident@0.1")
		for _, name := range []string{"conf-2", "office-2"} {
			spec := specByName(name)
			tr := benchTrace(b, spec)
			single := evalOne(b, spec, dot11fp.ParamInterArrival)
			body += fmt.Sprintf("%-10s %-24s %7.1f%% %11.1f%% %11.1f%%\n",
				name, "inter-arrival only", single.AUC*100,
				single.IdentAtFPR[0.01]*100, single.IdentAtFPR[0.1]*100)
			ens, err := eval.RunEnsemble(tr, eval.EnsembleSpec{
				RefDuration: spec.ref,
				Window:      dot11fp.DefaultWindow,
				Params:      []core.Param{dot11fp.ParamInterArrival, dot11fp.ParamTxTime, dot11fp.ParamSize},
			})
			if err != nil {
				b.Fatal(err)
			}
			body += fmt.Sprintf("%-10s %-24s %7.1f%% %11.1f%% %11.1f%%\n",
				name, "iat+txtime+size ensemble", ens.AUC*100,
				ens.IdentAtFPR[0.01]*100, ens.IdentAtFPR[0.1]*100)
		}
		printSection("ABLATION — combined parameters (paper §VIII future work)", body)
	}
}
