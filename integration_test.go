// Integration tests: the paper's headline claims, asserted end-to-end
// on freshly simulated office and conference traces through the public
// API. These are the "shape" checks of DESIGN.md §4.
package dot11fp_test

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"dot11fp"
)

// Small-scale fixtures shared by the integration tests.
var (
	fixOnce   sync.Once
	fixOffice *dot11fp.Trace
	fixConf   *dot11fp.Trace
	fixErr    error
)

func fixtures(t *testing.T) (office, conf *dot11fp.Trace) {
	t.Helper()
	fixOnce.Do(func() {
		fixOffice, fixErr = dot11fp.GenerateOffice("it-office", 104, 14*time.Minute, 20)
		if fixErr != nil {
			return
		}
		fixConf, fixErr = dot11fp.GenerateConference("it-conf", 102, 20*time.Minute, 26)
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixOffice, fixConf
}

func evalParam(t *testing.T, tr *dot11fp.Trace, p dot11fp.Param) *dot11fp.EvalResult {
	t.Helper()
	res, err := dot11fp.Evaluate(tr, dot11fp.EvalSpec{
		RefDuration: 4 * time.Minute,
		Window:      5 * time.Minute,
		Config:      dot11fp.DefaultConfig(p),
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestShapeOfficeTransmissionTimeDominates asserts DESIGN.md shape (i):
// transmission time yields the best AUC and identification in the
// stable office setting (paper Table II/III, office columns).
func TestShapeOfficeTransmissionTimeDominates(t *testing.T) {
	if testing.Short() {
		t.Skip("integration shape test")
	}
	office, _ := fixtures(t)
	tt := evalParam(t, office, dot11fp.ParamTxTime)
	rate := evalParam(t, office, dot11fp.ParamRate)
	size := evalParam(t, office, dot11fp.ParamSize)
	if tt.AUC <= rate.AUC {
		t.Errorf("office: tt AUC %.3f should beat rate AUC %.3f", tt.AUC, rate.AUC)
	}
	if tt.IdentAtFPR[0.1] <= rate.IdentAtFPR[0.1] {
		t.Errorf("office: tt ident %.3f should beat rate %.3f", tt.IdentAtFPR[0.1], rate.IdentAtFPR[0.1])
	}
	if tt.IdentAtFPR[0.1] < 0.4 {
		t.Errorf("office: tt ident@0.1 = %.3f, implausibly low", tt.IdentAtFPR[0.1])
	}
	if tt.AUC <= size.AUC-0.15 {
		t.Errorf("office: tt AUC %.3f far below size AUC %.3f", tt.AUC, size.AUC)
	}
}

// TestShapeConferenceRateCollapses asserts shape (ii): the transmission
// rate is the weakest parameter in the conference setting (paper: 4.0%
// AUC on conf-1).
func TestShapeConferenceRateCollapses(t *testing.T) {
	if testing.Short() {
		t.Skip("integration shape test")
	}
	_, conf := fixtures(t)
	rate := evalParam(t, conf, dot11fp.ParamRate)
	for _, p := range []dot11fp.Param{dot11fp.ParamSize, dot11fp.ParamInterArrival} {
		other := evalParam(t, conf, p)
		if rate.AUC >= other.AUC {
			t.Errorf("conference: rate AUC %.3f should be below %v AUC %.3f", rate.AUC, p, other.AUC)
		}
	}
	if rate.IdentAtFPR[0.1] > 0.15 {
		t.Errorf("conference: rate ident@0.1 = %.3f, should collapse", rate.IdentAtFPR[0.1])
	}
}

// TestShapeConferenceInterArrivalLeadsIdentification asserts shape
// (iii): inter-arrival time gives the best identification ratios in the
// difficult conference setting (the paper's central finding).
func TestShapeConferenceInterArrivalLeadsIdentification(t *testing.T) {
	if testing.Short() {
		t.Skip("integration shape test")
	}
	_, conf := fixtures(t)
	iat := evalParam(t, conf, dot11fp.ParamInterArrival)
	tt := evalParam(t, conf, dot11fp.ParamTxTime)
	rate := evalParam(t, conf, dot11fp.ParamRate)
	size := evalParam(t, conf, dot11fp.ParamSize)
	// iat must lead the timing parameters (within single-seed noise of
	// the leader) and strictly beat rate and size, which both collapse.
	if lead := tt.IdentAtFPR[0.1]; iat.IdentAtFPR[0.1] < 0.85*lead {
		t.Errorf("conference: iat ident@0.1 %.3f well below tt %.3f", iat.IdentAtFPR[0.1], lead)
	}
	if iat.IdentAtFPR[0.1] <= rate.IdentAtFPR[0.1] || iat.IdentAtFPR[0.1] <= size.IdentAtFPR[0.1] {
		t.Errorf("conference: iat ident@0.1 %.3f should beat rate %.3f and size %.3f",
			iat.IdentAtFPR[0.1], rate.IdentAtFPR[0.1], size.IdentAtFPR[0.1])
	}
	if iat.IdentAtFPR[0.1] < 0.15 {
		t.Errorf("conference: iat ident@0.1 = %.3f, implausibly low", iat.IdentAtFPR[0.1])
	}
}

// TestShapeOfficeEasierThanConference asserts shape (iv): for the
// strong parameters, office identification exceeds conference
// identification (paper: compare Table III office vs conference).
func TestShapeOfficeEasierThanConference(t *testing.T) {
	if testing.Short() {
		t.Skip("integration shape test")
	}
	office, conf := fixtures(t)
	for _, p := range []dot11fp.Param{dot11fp.ParamTxTime, dot11fp.ParamInterArrival} {
		o := evalParam(t, office, p)
		c := evalParam(t, conf, p)
		if o.IdentAtFPR[0.1] <= c.IdentAtFPR[0.1] {
			t.Errorf("%v: office ident@0.1 %.3f should exceed conference %.3f",
				p, o.IdentAtFPR[0.1], c.IdentAtFPR[0.1])
		}
	}
}

// TestPcapPipelineEquivalence verifies that exporting a trace to a
// standard radiotap pcap file and re-importing it preserves the
// fingerprinting result: the reference database learned from the
// round-tripped trace identifies the same devices.
func TestPcapPipelineEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("integration shape test")
	}
	office, _ := fixtures(t)
	var buf bytes.Buffer
	if err := dot11fp.WritePcap(&buf, office); err != nil {
		t.Fatal(err)
	}
	back, err := dot11fp.ReadPcap(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Records) != len(office.Records) {
		t.Fatalf("round trip records: %d vs %d", len(back.Records), len(office.Records))
	}

	cfg := dot11fp.DefaultConfig(dot11fp.ParamInterArrival)
	train1, _ := dot11fp.Split(office, 4*time.Minute)
	train2, _ := dot11fp.Split(back, 4*time.Minute)
	db1 := dot11fp.NewDatabase(cfg, dot11fp.MeasureCosine)
	db2 := dot11fp.NewDatabase(cfg, dot11fp.MeasureCosine)
	if err := db1.Train(train1); err != nil {
		t.Fatal(err)
	}
	if err := db2.Train(train2); err != nil {
		t.Fatal(err)
	}
	if db1.Len() != db2.Len() {
		t.Fatalf("reference devices differ after pcap round trip: %d vs %d", db1.Len(), db2.Len())
	}
	// Signatures must match numerically: cross-check similarities.
	for _, addr := range db1.Devices() {
		s := dot11fp.SimilarityOf(db1.Signature(addr), db2.Signature(addr), dot11fp.MeasureCosine)
		if s < 0.9999 {
			t.Errorf("device %v signature drifted through pcap: self-sim %v", addr, s)
		}
	}
}

// TestDeterministicGeneration verifies seed-determinism through the
// public API (same seed → identical trace; different seed → different).
func TestDeterministicGeneration(t *testing.T) {
	t.Parallel()
	a, err := dot11fp.GenerateOffice("det", 9, 2*time.Minute, 6)
	if err != nil {
		t.Fatal(err)
	}
	b, err := dot11fp.GenerateOffice("det", 9, 2*time.Minute, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Records) != len(b.Records) {
		t.Fatalf("same seed, different record counts: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		if !a.Records[i].Equal(b.Records[i]) {
			t.Fatalf("same seed diverged at record %d", i)
		}
	}
	c, err := dot11fp.GenerateOffice("det", 10, 2*time.Minute, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Records) == len(c.Records) {
		same := true
		for i := range a.Records {
			if !a.Records[i].Equal(c.Records[i]) {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}
