package histogram

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAddAndFreqs(t *testing.T) {
	t.Parallel()
	h := New(10, 10)  // [0,100) in 10 bins
	h.Add(5)          // bin 0
	h.Add(15)         // bin 1
	h.Add(15)         // bin 1
	h.Add(99)         // bin 9
	h.Add(100)        // clamped to bin 9
	h.Add(1e9)        // clamped to bin 9
	h.Add(-1)         // dropped
	h.Add(math.NaN()) // dropped

	if h.Total() != 6 {
		t.Fatalf("Total = %d, want 6", h.Total())
	}
	if h.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", h.Dropped())
	}
	f := h.Freqs()
	want := []float64{1.0 / 6, 2.0 / 6, 0, 0, 0, 0, 0, 0, 0, 3.0 / 6}
	for i := range want {
		if math.Abs(f[i]-want[i]) > 1e-12 {
			t.Errorf("freq[%d] = %v, want %v", i, f[i], want[i])
		}
	}
}

func TestFreqsSumToOne(t *testing.T) {
	t.Parallel()
	f := func(vals []float64) bool {
		h := New(25, 100)
		n := 0
		for _, v := range vals {
			h.Add(math.Abs(v))
			if !math.IsNaN(v) {
				n++
			}
		}
		if n == 0 {
			return true
		}
		var sum float64
		for _, p := range h.Freqs() {
			if p < 0 {
				return false
			}
			sum += p
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyFreqs(t *testing.T) {
	t.Parallel()
	h := New(4, 1)
	for _, p := range h.Freqs() {
		if p != 0 {
			t.Fatalf("empty histogram freq = %v", p)
		}
	}
}

func TestAddN(t *testing.T) {
	t.Parallel()
	h := New(4, 1)
	h.AddN(2.5, 10)
	h.AddN(-3, 4)
	if h.Count(2) != 10 || h.Total() != 10 || h.Dropped() != 4 {
		t.Fatalf("AddN: counts=%v total=%d dropped=%d", h.Counts(), h.Total(), h.Dropped())
	}
}

func TestMergeAndClone(t *testing.T) {
	t.Parallel()
	a := New(5, 2)
	b := New(5, 2)
	a.Add(1)
	a.Add(3)
	b.Add(3)
	b.Add(9)
	c := a.Clone()
	if err := a.Merge(b); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if a.Total() != 4 {
		t.Fatalf("merged total = %d, want 4", a.Total())
	}
	if a.Count(1) != 2 {
		t.Fatalf("merged bin1 = %d, want 2", a.Count(1))
	}
	// Clone must be unaffected by the merge.
	if c.Total() != 2 {
		t.Fatalf("clone total changed: %d", c.Total())
	}
	if err := a.Merge(nil); err != nil {
		t.Fatalf("Merge(nil): %v", err)
	}
}

func TestMergeShapeMismatch(t *testing.T) {
	t.Parallel()
	a := New(5, 2)
	if err := a.Merge(New(6, 2)); err == nil {
		t.Fatal("Merge with different bin count: want error")
	}
	if err := a.Merge(New(5, 3)); err == nil {
		t.Fatal("Merge with different bin width: want error")
	}
}

func TestMode(t *testing.T) {
	t.Parallel()
	h := New(10, 100)
	h.AddN(250, 5)
	h.AddN(850, 9)
	if got := h.Mode(); got != 850 {
		t.Fatalf("Mode = %v, want 850", got)
	}
}

func TestNewPanics(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct {
		n int
		w float64
	}{{0, 1}, {-1, 1}, {4, 0}, {4, -2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%v) did not panic", tc.n, tc.w)
				}
			}()
			New(tc.n, tc.w)
		}()
	}
}

func freqsOf(vals ...float64) []float64 {
	h := New(10, 10)
	for _, v := range vals {
		h.Add(v)
	}
	return h.Freqs()
}

func TestCosine(t *testing.T) {
	t.Parallel()
	a := freqsOf(5, 15, 15, 25)
	if got := Cosine(a, a); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Cosine(a,a) = %v, want 1", got)
	}
	b := freqsOf(75, 85, 95)
	if got := Cosine(a, b); got != 0 {
		t.Fatalf("Cosine disjoint = %v, want 0", got)
	}
	// Partial overlap strictly between 0 and 1.
	c := freqsOf(5, 15, 75)
	got := Cosine(a, c)
	if got <= 0 || got >= 1 {
		t.Fatalf("Cosine partial = %v, want in (0,1)", got)
	}
}

func TestCosineDegenerate(t *testing.T) {
	t.Parallel()
	zero := make([]float64, 10)
	a := freqsOf(5)
	if got := Cosine(a, zero); got != 0 {
		t.Fatalf("Cosine with zero vector = %v", got)
	}
	if got := Cosine(a, a[:5]); got != 0 {
		t.Fatalf("Cosine with length mismatch = %v", got)
	}
}

func TestSimilarityMeasuresAgreeOnExtremes(t *testing.T) {
	t.Parallel()
	a := freqsOf(1, 11, 11, 21, 31, 31, 31)
	b := freqsOf(61, 71, 81, 91)
	type m struct {
		name string
		fn   func(x, y []float64) float64
	}
	for _, mm := range []m{
		{"cosine", Cosine},
		{"intersection", Intersection},
		{"bhattacharyya", Bhattacharyya},
		{"l1", L1},
	} {
		if got := mm.fn(a, a); math.Abs(got-1) > 1e-9 {
			t.Errorf("%s(a,a) = %v, want 1", mm.name, got)
		}
		if got := mm.fn(a, b); math.Abs(got) > 1e-9 {
			t.Errorf("%s(a,b disjoint) = %v, want 0", mm.name, got)
		}
	}
}

func TestSimilaritySymmetryAndRange(t *testing.T) {
	t.Parallel()
	f := func(raw1, raw2 []float64) bool {
		h1, h2 := New(16, 5), New(16, 5)
		for _, v := range raw1 {
			h1.Add(math.Abs(v))
		}
		for _, v := range raw2 {
			h2.Add(math.Abs(v))
		}
		if h1.Total() == 0 || h2.Total() == 0 {
			return true
		}
		a, b := h1.Freqs(), h2.Freqs()
		for _, fn := range []func(x, y []float64) float64{Cosine, Intersection, Bhattacharyya, L1} {
			s1, s2 := fn(a, b), fn(b, a)
			if math.Abs(s1-s2) > 1e-9 {
				return false
			}
			if s1 < -1e-9 || s1 > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestShiftSensitivity(t *testing.T) {
	t.Parallel()
	// Two histograms whose mass sits one bin apart should have low cosine
	// similarity — this is what makes per-slot backoff quirks visible.
	a := New(50, 10)
	b := New(50, 10)
	for i := 0; i < 100; i++ {
		a.Add(105) // bin 10
		b.Add(115) // bin 11
	}
	if got := Cosine(a.Freqs(), b.Freqs()); got > 0.01 {
		t.Fatalf("one-bin shift cosine = %v, want ~0", got)
	}
}
