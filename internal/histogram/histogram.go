// Package histogram implements the fixed-width binned histograms and the
// histogram similarity measures at the heart of the paper's signature
// (Definition 1) and matching (Definition 2, Algorithm 1).
//
// A Histogram accumulates raw observation counts; Freqs converts it to
// the percentage-frequency distribution the paper matches on. Cosine is
// the paper's measure; Intersection, Bhattacharyya and L1 are provided
// for the "alternative similarity measure" ablation the paper leaves to
// future work.
//
// The package is bit-identical by contract: kernels perform the same
// float operations in the same order on every run.
//
//fp:deterministic
package histogram

import (
	"fmt"
	"math"
)

// Histogram is a fixed-bin-width histogram over [0, binWidth*len(counts)).
// Values below zero are dropped; values at or above the top edge are
// folded into the last bin (the paper clamps its inter-arrival plots at
// 2.5 ms the same way). The zero value is unusable; use New.
type Histogram struct {
	binWidth float64
	counts   []uint64
	total    uint64
	dropped  uint64
}

// New creates a histogram with nbins bins of the given width.
// It panics if nbins <= 0 or binWidth <= 0 — these are static
// configuration errors, not runtime conditions.
func New(nbins int, binWidth float64) *Histogram {
	if nbins <= 0 || binWidth <= 0 {
		panic(fmt.Sprintf("histogram: invalid shape nbins=%d width=%v", nbins, binWidth))
	}
	return &Histogram{binWidth: binWidth, counts: make([]uint64, nbins)}
}

// Init (re)shapes h in place to nbins bins of the given width with all
// counts zeroed — New for a value slot that is already allocated, so
// aggregates can hold histograms inline (one array element per frame
// class) without a pointer and a struct allocation per class. It panics
// on an invalid shape, exactly like New.
func (h *Histogram) Init(nbins int, binWidth float64) {
	if nbins <= 0 || binWidth <= 0 {
		panic(fmt.Sprintf("histogram: invalid shape nbins=%d width=%v", nbins, binWidth))
	}
	*h = Histogram{binWidth: binWidth, counts: make([]uint64, nbins)}
}

// Clone returns a deep copy.
func (h *Histogram) Clone() *Histogram {
	c := &Histogram{binWidth: h.binWidth, total: h.total, dropped: h.dropped}
	c.counts = make([]uint64, len(h.counts))
	copy(c.counts, h.counts)
	return c
}

// bin maps a value to its bin index, clamping overflow (including +Inf
// and values whose quotient exceeds the int range) into the top bin.
// It returns -1 for values that must be dropped.
func (h *Histogram) bin(v float64) int {
	if v < 0 || math.IsNaN(v) {
		return -1
	}
	q := v / h.binWidth
	if q >= float64(len(h.counts)) {
		return len(h.counts) - 1 // clamp into the top bin
	}
	return int(q)
}

// Add records one observation.
func (h *Histogram) Add(v float64) {
	i := h.bin(v)
	if i < 0 {
		h.dropped++
		return
	}
	h.counts[i]++
	h.total++
}

// AddN records n identical observations.
func (h *Histogram) AddN(v float64, n uint64) {
	i := h.bin(v)
	if i < 0 {
		h.dropped += n
		return
	}
	h.counts[i] += n
	h.total += n
}

// Merge adds other's counts into h. Histograms must have identical
// shapes; mismatches are reported as an error because merged signatures
// cross a trust boundary (reference databases may be loaded from disk).
func (h *Histogram) Merge(other *Histogram) error {
	if other == nil {
		return nil
	}
	if len(h.counts) != len(other.counts) || h.binWidth != other.binWidth {
		return fmt.Errorf("histogram: shape mismatch: %d×%v vs %d×%v",
			len(h.counts), h.binWidth, len(other.counts), other.binWidth)
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	h.dropped += other.dropped
	return nil
}

// Total returns the number of observations recorded (excluding dropped).
// This is the paper's |P^ftype(s)|.
func (h *Histogram) Total() uint64 { return h.total }

// Dropped returns the number of out-of-domain observations discarded.
func (h *Histogram) Dropped() uint64 { return h.dropped }

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.counts) }

// BinWidth returns the bin width.
func (h *Histogram) BinWidth() float64 { return h.binWidth }

// Count returns the raw count of bin i.
func (h *Histogram) Count(i int) uint64 { return h.counts[i] }

// Counts returns a copy of the raw counts.
func (h *Histogram) Counts() []uint64 {
	out := make([]uint64, len(h.counts))
	copy(out, h.counts)
	return out
}

// Freqs returns the percentage-frequency distribution P_j =
// o_j / |P^ftype(s)| (paper §IV-A). An empty histogram yields all zeros.
func (h *Histogram) Freqs() []float64 {
	return h.AppendFreqs(make([]float64, 0, len(h.counts)))
}

// AppendFreqs appends the percentage-frequency distribution to dst and
// returns the extended slice. Passing a scratch slice with sufficient
// capacity (dst[:0] with cap ≥ Bins()) makes the conversion
// allocation-free; the values are bit-identical to Freqs.
func (h *Histogram) AppendFreqs(dst []float64) []float64 {
	if h.total == 0 {
		for range h.counts {
			dst = append(dst, 0)
		}
		return dst
	}
	t := float64(h.total)
	for _, c := range h.counts {
		dst = append(dst, float64(c)/t)
	}
	return dst
}

// CountsView returns the live backing slice of raw counts without
// copying. It exists for the zero-allocation matching kernels; callers
// must treat the slice as read-only and must not retain it across
// subsequent Add/Merge calls.
func (h *Histogram) CountsView() []uint64 { return h.counts }

// Mode returns the centre value of the most populated bin, used by the
// figure reproductions to locate histogram peaks.
func (h *Histogram) Mode() float64 {
	best := 0
	for i, c := range h.counts {
		if c > h.counts[best] {
			best = i
		}
	}
	return (float64(best) + 0.5) * h.binWidth
}

// Cosine computes the cosine similarity of two frequency vectors:
//
//	sim = Σ a_j·b_j / (‖a‖·‖b‖)
//
// It is 1 for identical distributions and 0 for disjoint ones. (The
// paper's Definition 2 prints a stray "1 −" in front of the quotient but
// its prose — "the similarity equals 1 if two signatures are exactly the
// same … 0 when signatures have no intersection" — matches this form.)
// Vectors of different lengths or zero norm yield 0.
func Cosine(a, b []float64) float64 {
	if len(a) != len(b) {
		return 0
	}
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// Intersection computes the histogram-intersection similarity
// Σ min(a_j, b_j), which is 1 for identical frequency distributions.
func Intersection(a, b []float64) float64 {
	if len(a) != len(b) {
		return 0
	}
	var s float64
	for i := range a {
		s += math.Min(a[i], b[i])
	}
	return s
}

// Bhattacharyya computes the Bhattacharyya coefficient Σ √(a_j·b_j),
// 1 for identical distributions.
func Bhattacharyya(a, b []float64) float64 {
	if len(a) != len(b) {
		return 0
	}
	var s float64
	for i := range a {
		s += math.Sqrt(a[i] * b[i])
	}
	return s
}

// L1 computes a similarity derived from total variation distance:
// 1 − ½·Σ|a_j − b_j|, again 1 for identical distributions.
func L1(a, b []float64) float64 {
	if len(a) != len(b) {
		return 0
	}
	var d float64
	for i := range a {
		d += math.Abs(a[i] - b[i])
	}
	return 1 - d/2
}
