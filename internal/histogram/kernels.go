package histogram

// Count-domain similarity kernels. The matching hot loop compares one
// candidate histogram against many reference histograms; converting to
// frequency vectors first costs one []float64 allocation per comparison
// and a division per bin. These kernels operate directly on raw uint64
// counts, exploiting that cosine similarity is invariant under the
// count→frequency scaling and that the remaining measures only need the
// observation totals. Variants taking precomputed norms let a compiled
// database hoist the per-reference work out of the loop entirely.

import "math"

// Norm returns the Euclidean norm ‖a‖ of a frequency vector.
func Norm(a []float64) float64 {
	var n float64
	for _, v := range a {
		n += v * v
	}
	return math.Sqrt(n)
}

// Dot returns the dot product Σ a_j·b_j of two frequency vectors.
// Vectors of different lengths yield 0.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		return 0
	}
	var dot float64
	for i := range a {
		dot += a[i] * b[i]
	}
	return dot
}

// CosineNormed is Cosine with both Euclidean norms precomputed
// (na = ‖a‖, nb = ‖b‖). With identical accumulation order it is
// bit-identical to Cosine. Zero norms yield 0.
func CosineNormed(a, b []float64, na, nb float64) float64 {
	if len(a) != len(b) || na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// CountNorm returns the Euclidean norm ‖a‖ of a count vector. Compiled
// databases precompute this per reference histogram so the cosine kernel
// reduces to a single dot product per comparison.
func CountNorm(a []uint64) float64 {
	var n float64
	for _, v := range a {
		f := float64(v)
		n += f * f
	}
	return math.Sqrt(n)
}

// DotCounts returns the dot product Σ a_j·b_j of two count vectors.
// Vectors of different lengths yield 0.
func DotCounts(a, b []uint64) float64 {
	if len(a) != len(b) {
		return 0
	}
	var dot float64
	for i := range a {
		dot += float64(a[i]) * float64(b[i])
	}
	return dot
}

// CosineCounts computes cosine similarity directly on raw counts.
// Because cosine is scale-invariant, the result equals
// Cosine(a.Freqs(), b.Freqs()) up to floating-point rounding, with no
// frequency conversion and no allocation.
func CosineCounts(a, b []uint64) float64 {
	return CosineCountsNormed(a, b, CountNorm(a), CountNorm(b))
}

// CosineCountsNormed is CosineCounts with both Euclidean norms
// precomputed (na = ‖a‖, nb = ‖b‖). Zero norms yield 0.
func CosineCountsNormed(a, b []uint64, na, nb float64) float64 {
	if len(a) != len(b) || na == 0 || nb == 0 {
		return 0
	}
	return DotCounts(a, b) / (na * nb)
}

// IntersectionCounts computes histogram intersection Σ min(a_j/at, b_j/bt)
// on raw counts with precomputed totals at = Σa, bt = Σb.
func IntersectionCounts(a, b []uint64, at, bt uint64) float64 {
	if len(a) != len(b) || at == 0 || bt == 0 {
		return 0
	}
	fat, fbt := float64(at), float64(bt)
	var s float64
	for i := range a {
		s += math.Min(float64(a[i])/fat, float64(b[i])/fbt)
	}
	return s
}

// BhattacharyyaCounts computes the Bhattacharyya coefficient
// Σ √(a_j·b_j/(at·bt)) on raw counts with precomputed totals.
func BhattacharyyaCounts(a, b []uint64, at, bt uint64) float64 {
	if len(a) != len(b) || at == 0 || bt == 0 {
		return 0
	}
	inv := 1 / math.Sqrt(float64(at)*float64(bt))
	var s float64
	for i := range a {
		s += math.Sqrt(float64(a[i]) * float64(b[i]))
	}
	return s * inv
}

// L1Counts computes 1 − ½·Σ|a_j/at − b_j/bt| on raw counts with
// precomputed totals.
func L1Counts(a, b []uint64, at, bt uint64) float64 {
	if len(a) != len(b) || at == 0 || bt == 0 {
		return 0
	}
	fat, fbt := float64(at), float64(bt)
	var d float64
	for i := range a {
		d += math.Abs(float64(a[i])/fat - float64(b[i])/fbt)
	}
	return 1 - d/2
}
