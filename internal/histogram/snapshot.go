package histogram

import "fmt"

// Snapshot is the portable, serialisable form of a Histogram, used when
// reference databases are written to or loaded from disk.
type Snapshot struct {
	BinWidth float64  `json:"bin_width"`
	Counts   []uint64 `json:"counts"`
	Dropped  uint64   `json:"dropped,omitempty"`
}

// Snapshot exports the histogram's state.
func (h *Histogram) Snapshot() Snapshot {
	return Snapshot{BinWidth: h.binWidth, Counts: h.Counts(), Dropped: h.dropped}
}

// FromSnapshot reconstructs a histogram. The snapshot is validated
// because it typically crosses a trust boundary (files on disk).
func FromSnapshot(s Snapshot) (*Histogram, error) {
	if s.BinWidth <= 0 || len(s.Counts) == 0 {
		return nil, fmt.Errorf("histogram: invalid snapshot shape %d×%v", len(s.Counts), s.BinWidth)
	}
	h := New(len(s.Counts), s.BinWidth)
	for i, c := range s.Counts {
		h.counts[i] = c
		h.total += c
	}
	h.dropped = s.Dropped
	return h, nil
}
