package histogram

import (
	"math"
	"testing"
)

// kernelFixtures returns pairs of histograms covering overlap, disjoint
// support, emptiness and clamping.
func kernelFixtures() []*Histogram {
	a := New(64, 10)
	b := New(64, 10)
	c := New(64, 10)
	empty := New(64, 10)
	for i := 0; i < 500; i++ {
		a.Add(float64((i * 13) % 640))
		b.Add(float64((i*7)%320 + 100))
		c.Add(float64(i % 40)) // narrow support
	}
	c.AddN(5_000, 25) // clamped into the top bin
	return []*Histogram{a, b, c, empty}
}

func TestCountKernelsMatchFreqDomain(t *testing.T) {
	t.Parallel()
	hs := kernelFixtures()
	const tol = 1e-12
	for i, ha := range hs {
		for j, hb := range hs {
			fa, fb := ha.Freqs(), hb.Freqs()
			ca, cb := ha.CountsView(), hb.CountsView()
			at, bt := ha.Total(), hb.Total()
			cases := []struct {
				name      string
				freq, cnt float64
			}{
				{"cosine", Cosine(fa, fb), CosineCounts(ca, cb)},
				{"intersection", Intersection(fa, fb), IntersectionCounts(ca, cb, at, bt)},
				{"bhattacharyya", Bhattacharyya(fa, fb), BhattacharyyaCounts(ca, cb, at, bt)},
			}
			if at > 0 && bt > 0 {
				// L1 in frequency domain treats an empty histogram as the
				// zero vector (similarity ½ against any distribution); the
				// count kernel instead guards on zero totals. Compare only
				// where both are defined.
				cases = append(cases, struct {
					name      string
					freq, cnt float64
				}{"l1", L1(fa, fb), L1Counts(ca, cb, at, bt)})
			}
			for _, tc := range cases {
				if math.Abs(tc.freq-tc.cnt) > tol {
					t.Errorf("pair (%d,%d) %s: count domain %v, freq domain %v", i, j, tc.name, tc.cnt, tc.freq)
				}
			}
		}
	}
	// Empty-vs-empty L1/intersection: freq domain sees two zero vectors
	// (L1 = 1), count domain guards on zero totals (0) — both conventions
	// agree that weights make the contribution zero, but document the
	// totals guard explicitly.
	e := New(8, 1)
	if got := L1Counts(e.CountsView(), e.CountsView(), 0, 0); got != 0 {
		t.Errorf("L1Counts with zero totals = %v, want 0", got)
	}
}

func TestCountKernelLengthMismatch(t *testing.T) {
	t.Parallel()
	a := []uint64{1, 2, 3}
	b := []uint64{1, 2}
	if CosineCounts(a, b) != 0 || IntersectionCounts(a, b, 6, 3) != 0 ||
		BhattacharyyaCounts(a, b, 6, 3) != 0 || L1Counts(a, b, 6, 3) != 0 || DotCounts(a, b) != 0 {
		t.Fatal("length mismatch should yield 0")
	}
}

func TestCosineNormedBitIdenticalToCosine(t *testing.T) {
	t.Parallel()
	hs := kernelFixtures()
	for i, ha := range hs {
		for j, hb := range hs {
			fa, fb := ha.Freqs(), hb.Freqs()
			want := Cosine(fa, fb)
			got := CosineNormed(fa, fb, Norm(fa), Norm(fb))
			if got != want { // exact: same operations in the same order
				t.Errorf("pair (%d,%d): CosineNormed %v != Cosine %v", i, j, got, want)
			}
		}
	}
}

func TestCosineCountsNormedPrecomputed(t *testing.T) {
	t.Parallel()
	hs := kernelFixtures()
	for _, ha := range hs {
		for _, hb := range hs {
			ca, cb := ha.CountsView(), hb.CountsView()
			want := CosineCounts(ca, cb)
			got := CosineCountsNormed(ca, cb, CountNorm(ca), CountNorm(cb))
			if got != want {
				t.Errorf("CosineCountsNormed %v != CosineCounts %v", got, want)
			}
		}
	}
}

func TestAppendFreqsMatchesFreqsAndIsAllocFree(t *testing.T) {
	for _, h := range kernelFixtures() {
		want := h.Freqs()
		scratch := make([]float64, 0, h.Bins())
		got := h.AppendFreqs(scratch)
		if len(got) != len(want) {
			t.Fatalf("AppendFreqs length %d, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] { // bit-identical
				t.Fatalf("bin %d: %v != %v", i, got[i], want[i])
			}
		}
		allocs := testing.AllocsPerRun(100, func() {
			scratch = h.AppendFreqs(scratch[:0])
		})
		if allocs != 0 {
			t.Fatalf("AppendFreqs into warm scratch allocated %v times", allocs)
		}
	}
}

func TestCountsViewAliasesLiveCounts(t *testing.T) {
	t.Parallel()
	h := New(4, 1)
	v := h.CountsView()
	h.Add(2.5)
	if v[2] != 1 {
		t.Fatal("CountsView does not alias the live counts")
	}
	if len(v) != h.Bins() {
		t.Fatalf("CountsView length %d, want %d", len(v), h.Bins())
	}
}
