package server

import (
	"bufio"
	"context"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"dot11fp"
	"dot11fp/internal/cmdutil"
)

// sseFrame is one parsed server-sent event.
type sseFrame struct {
	id    string
	event string
	data  string
}

func parseSSE(t testing.TB, body string) []sseFrame {
	t.Helper()
	var out []sseFrame
	for _, block := range strings.Split(body, "\n\n") {
		if strings.TrimSpace(block) == "" {
			continue
		}
		var f sseFrame
		for _, line := range strings.Split(block, "\n") {
			switch {
			case strings.HasPrefix(line, "id: "):
				f.id = strings.TrimPrefix(line, "id: ")
			case strings.HasPrefix(line, "event: "):
				f.event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				f.data = strings.TrimPrefix(line, "data: ")
			}
		}
		out = append(out, f)
	}
	return out
}

// TestFeedStreamsEventSequence pins acceptance criterion (b)'s fast
// half over real HTTP: an SSE client that keeps up receives exactly the
// event sequence the direct sink saw — same order, same encoding, no
// drops.
func TestFeedStreamsEventSequence(t *testing.T) {
	t.Parallel()
	db, val := testRefs(t, testTrace(t))
	site := NewSite("feed", SiteOptions{Window: testWindow, FeedBuffer: 8192})
	var direct eventLog
	eng, err := dot11fp.NewEngine(db.Config(), db.Compile(), dot11fp.EngineOptions{
		Window: testWindow, Sink: site.Sink(&direct),
	})
	if err != nil {
		t.Fatal(err)
	}
	site.Attach(eng, nil, nil, cmdutil.References{DB: db})
	srv, ts := serveSites(t, Options{}, site)

	// Connect before driving: once the response headers are in, the
	// subscription is live.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/api/v1/sites/feed/feed", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("feed: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("feed Content-Type %q", ct)
	}
	done := make(chan string, 1)
	go func() {
		var sb strings.Builder
		rd := bufio.NewReader(resp.Body)
		buf := make([]byte, 4096)
		for {
			n, err := rd.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				done <- sb.String()
				return
			}
		}
	}()

	eng.PushTrace(val)
	eng.Close()
	// Shutdown releases the feed handler; the client sees EOF after the
	// last buffered frame.
	shCtx, shCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shCancel()
	srv.Shutdown(shCtx)
	var body string
	select {
	case body = <-done:
	case <-ctx.Done():
		t.Fatal("feed read never finished")
	}

	events := direct.snapshot()
	if len(events) == 0 {
		t.Fatal("direct sink saw no events")
	}
	frames := parseSSE(t, body)
	if len(frames) != len(events) {
		t.Fatalf("feed delivered %d frames, direct sink saw %d events", len(frames), len(events))
	}
	if st := site.Feed().Stats(); st.Dropped != 0 || st.Events != uint64(len(events)) {
		t.Fatalf("feed stats %+v, want %d events and no drops", st, len(events))
	}
	// Frame-for-frame identical to the canonical encoding, ids 1..N.
	for i, ev := range events {
		want, ok := encodeSSE(uint64(i+1), ev)
		if !ok {
			t.Fatalf("event %d (%T) not encodable", i, ev)
		}
		f := frames[i]
		rebuilt := fmt.Sprintf("id: %s\nevent: %s\ndata: %s\n\n", f.id, f.event, f.data)
		if rebuilt != string(want) {
			t.Fatalf("frame %d:\n got %q\nwant %q", i, rebuilt, want)
		}
	}
}

// TestFanoutSlowClientDropsFastClientLossless pins acceptance criterion
// (b)'s slow half: a subscriber that never reads loses exactly the
// overflow (counted per client and in the total) while a draining
// subscriber concurrently receives every frame in order.
func TestFanoutSlowClientDropsFastClientLossless(t *testing.T) {
	t.Parallel()
	const buffer, n = 4, 100
	f := NewFanout(buffer)
	slow := f.Subscribe()
	fast := f.Subscribe()

	// The fast client drains after every publish, so its buffer never
	// overflows; the slow one never reads and overflows after `buffer`.
	var frames []sseFrame
	for i := 0; i < n; i++ {
		f.Publish(dot11fp.WindowClosed{Window: i, Frames: i})
		frames = append(frames, parseSSE(t, string(<-fast.C))...)
	}
	fast.Close()

	if len(frames) != n {
		t.Fatalf("fast client received %d frames, want %d", len(frames), n)
	}
	for i, fr := range frames {
		if fr.id != fmt.Sprint(i+1) || fr.event != "window_closed" {
			t.Fatalf("fast frame %d: id %q event %q", i, fr.id, fr.event)
		}
	}
	if fast.Dropped() != 0 {
		t.Fatalf("fast client dropped %d frames", fast.Dropped())
	}
	if d := slow.Dropped(); d != n-buffer {
		t.Fatalf("slow client dropped %d frames, want %d", d, n-buffer)
	}
	if st := f.Stats(); st.Dropped != n-buffer || st.Events != n {
		t.Fatalf("fanout stats %+v, want %d events and %d drops", st, n, n-buffer)
	}
	// The slow client's buffer still holds the first frames, in order.
	slow.Close()
	i := 0
	for frame := range slow.C {
		for _, fr := range parseSSE(t, string(frame)) {
			if fr.id != fmt.Sprint(i+1) {
				t.Fatalf("slow frame %d has id %q", i, fr.id)
			}
			i++
		}
	}
	if i != buffer {
		t.Fatalf("slow client buffered %d frames, want %d", i, buffer)
	}
}

// TestFanoutIdleSkipsEncoding pins the zero-client fast path: events
// are counted but never encoded, so an unobserved feed costs nothing
// beyond one atomic add.
func TestFanoutIdleSkipsEncoding(t *testing.T) {
	t.Parallel()
	f := NewFanout(0)
	for i := 0; i < 10; i++ {
		f.Publish(dot11fp.WindowClosed{Window: i})
	}
	if st := f.Stats(); st.Events != 10 || st.Clients != 0 || st.Dropped != 0 {
		t.Fatalf("idle fanout stats %+v", st)
	}
	// seq only advances when a frame is actually encoded.
	if got := f.seq.Load(); got != 0 {
		t.Fatalf("idle fanout encoded %d frames", got)
	}
	ev := dot11fp.Event(dot11fp.WindowClosed{Window: 1})
	allocs := testing.AllocsPerRun(100, func() {
		f.Publish(ev)
	})
	if allocs != 0 {
		t.Fatalf("idle publish allocated %v times, want 0", allocs)
	}
}
