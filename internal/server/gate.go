package server

import (
	"fmt"
	"sort"
	"sync"

	"dot11fp"
)

// EnrollGate bridges the trainer's synchronous Decide callback to the
// asynchronous HTTP confirm flow. The trainer offers a completed
// sender once per candidate window; the gate answers with whatever the
// operator has posted — approve, reject — or defers when no answer has
// arrived yet, which keeps the sender pending and re-offered. Offers
// the gate has seen but not answered are listed for the API.
type EnrollGate struct {
	mu sync.Mutex
	// offers holds the latest unanswered offer per sender (without the
	// live signatures — those belong to the trainer's goroutine).
	offers map[dot11fp.Addr]dot11fp.PendingEnrollment
	// answers holds operator verdicts awaiting pickup at the sender's
	// next completed window.
	answers map[dot11fp.Addr]dot11fp.EnrollDecision
}

// NewEnrollGate creates an empty gate.
func NewEnrollGate() *EnrollGate {
	return &EnrollGate{
		offers:  make(map[dot11fp.Addr]dot11fp.PendingEnrollment),
		answers: make(map[dot11fp.Addr]dot11fp.EnrollDecision),
	}
}

// Decide implements TrainerOptions.Decide. Called on the engine's
// event-delivery goroutine.
func (g *EnrollGate) Decide(p dot11fp.PendingEnrollment) dot11fp.EnrollDecision {
	g.mu.Lock()
	defer g.mu.Unlock()
	if d, ok := g.answers[p.Addr]; ok {
		delete(g.answers, p.Addr)
		delete(g.offers, p.Addr)
		return d
	}
	// Record the offer without the signatures: the Decide contract
	// forbids retaining them past the callback.
	g.offers[p.Addr] = dot11fp.PendingEnrollment{
		Addr: p.Addr, Windows: p.Windows, Observations: p.Observations,
	}
	return dot11fp.DecideDefer
}

// Offers returns the unanswered offers in ascending address order —
// the senders waiting on an operator verdict.
func (g *EnrollGate) Offers() []dot11fp.PendingEnrollment {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]dot11fp.PendingEnrollment, 0, len(g.offers))
	for _, p := range g.offers {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return addrBytesLess(out[i].Addr, out[j].Addr) })
	return out
}

// Resolve records the operator's verdict for a sender. The verdict is
// applied at the sender's next completed candidate window (the trainer
// asks again; the gate answers). Resolving a sender the gate has not
// offered yet is allowed — the answer waits for the offer — so a
// pre-approval posted from the trainer's PendingList also works.
func (g *EnrollGate) Resolve(addr dot11fp.Addr, approve bool) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, dup := g.answers[addr]; dup {
		return fmt.Errorf("sender %s already has a pending verdict", addr)
	}
	if approve {
		g.answers[addr] = dot11fp.DecideApprove
	} else {
		g.answers[addr] = dot11fp.DecideReject
	}
	return nil
}
