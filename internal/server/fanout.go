package server

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"

	"dot11fp"
)

// Fanout broadcasts engine events to any number of SSE subscribers
// without ever blocking the publisher. Each event is encoded once —
// and only when at least one client is connected — then offered to
// every subscriber's buffered channel with a non-blocking send: a
// client that cannot keep up loses events (counted per client and in
// the fanout total) instead of stalling the engine's event delivery.
type Fanout struct {
	buffer int

	mu      sync.RWMutex
	clients map[*Subscription]struct{}

	nclients atomic.Int64
	events   atomic.Uint64
	dropped  atomic.Uint64
	seq      atomic.Uint64
}

// Subscription is one subscriber's event queue. Frames arrive on C as
// complete SSE wire frames ("id: …\nevent: …\ndata: …\n\n"); the
// channel closes when the subscription is closed.
type Subscription struct {
	// C carries encoded SSE frames.
	C <-chan []byte

	f       *Fanout
	ch      chan []byte
	dropped atomic.Uint64
	once    sync.Once
}

// NewFanout creates a fanout whose subscribers buffer up to buffer
// frames each.
func NewFanout(buffer int) *Fanout {
	if buffer <= 0 {
		buffer = 256
	}
	return &Fanout{buffer: buffer, clients: make(map[*Subscription]struct{})}
}

// Subscribe attaches a new client. Close the subscription when done.
func (f *Fanout) Subscribe() *Subscription {
	ch := make(chan []byte, f.buffer)
	sub := &Subscription{C: ch, f: f, ch: ch}
	f.mu.Lock()
	f.clients[sub] = struct{}{}
	f.mu.Unlock()
	f.nclients.Add(1)
	return sub
}

// Close detaches the subscription and closes its channel. Safe to call
// more than once.
func (s *Subscription) Close() {
	s.once.Do(func() {
		s.f.mu.Lock()
		delete(s.f.clients, s)
		s.f.mu.Unlock()
		s.f.nclients.Add(-1)
		// The publisher holds the read lock while sending, so by here no
		// send to s.ch is in flight and closing is safe.
		close(s.ch)
	})
}

// Dropped returns the number of frames this subscription lost to a
// full buffer.
func (s *Subscription) Dropped() uint64 { return s.dropped.Load() }

// Publish offers one event to every subscriber. Non-blocking: full
// subscribers drop the frame (counted). With no subscribers only the
// event counter moves — the event is never encoded.
func (f *Fanout) Publish(ev dot11fp.Event) {
	f.events.Add(1)
	if f.nclients.Load() == 0 {
		return
	}
	frame, ok := encodeSSE(f.seq.Add(1), ev)
	if !ok {
		return
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	for sub := range f.clients {
		select {
		case sub.ch <- frame:
		default:
			sub.dropped.Add(1)
			f.dropped.Add(1)
		}
	}
}

// Stats snapshots the fanout's counters.
func (f *Fanout) Stats() FeedStats {
	return FeedStats{
		Clients: int(f.nclients.Load()),
		Events:  f.events.Load(),
		Dropped: f.dropped.Load(),
	}
}

// feedScore is a Score rendered for the wire (addresses as canonical
// MAC strings, not byte arrays).
type feedScore struct {
	Ref string  `json:"ref"`
	Sim float64 `json:"sim"`
}

func feedScores(scores []dot11fp.Score) []feedScore {
	if scores == nil {
		return nil
	}
	out := make([]feedScore, len(scores))
	for i, sc := range scores {
		out[i] = feedScore{Ref: sc.Addr.String(), Sim: sc.Sim}
	}
	return out
}

// encodeSSE renders one engine event as a complete SSE frame. The
// event name is the verdict kind; data is a flat JSON object with
// addresses as canonical MAC strings. Health and verdict events share
// the frame format, so one subscriber sees the whole stream in order.
func encodeSSE(id uint64, ev dot11fp.Event) ([]byte, bool) {
	var name string
	var payload any
	switch ev := ev.(type) {
	case dot11fp.WindowClosed:
		name = "window_closed"
		payload = struct {
			Window     int   `json:"window"`
			Start      int64 `json:"start_us"`
			End        int64 `json:"end_us"`
			Frames     int   `json:"frames"`
			Senders    int   `json:"senders"`
			Candidates int   `json:"candidates"`
			Matched    int   `json:"matched"`
			Unknown    int   `json:"unknown"`
			Dropped    int   `json:"dropped"`
		}{ev.Window, ev.Start, ev.End, ev.Frames, ev.Senders, ev.Candidates, ev.Matched, ev.Unknown, ev.Dropped}
	case dot11fp.CandidateMatched:
		name = "matched"
		payload = struct {
			Window int         `json:"window"`
			Addr   string      `json:"addr"`
			Best   string      `json:"best"`
			Sim    float64     `json:"sim"`
			Obs    uint64      `json:"observations"`
			Scores []feedScore `json:"scores,omitempty"`
		}{ev.Window, ev.Addr.String(), ev.Best.Addr.String(), ev.Best.Sim, ev.Observations(), feedScores(ev.Scores)}
	case dot11fp.UnknownDevice:
		name = "unknown"
		p := struct {
			Window int         `json:"window"`
			Addr   string      `json:"addr"`
			Best   string      `json:"best,omitempty"`
			Sim    float64     `json:"sim"`
			Obs    uint64      `json:"observations"`
			Scores []feedScore `json:"scores,omitempty"`
		}{Window: ev.Window, Addr: ev.Addr.String(), Obs: ev.Observations(), Scores: feedScores(ev.Scores)}
		if ev.HasBest {
			p.Best, p.Sim = ev.Best.Addr.String(), ev.Best.Sim
		}
		payload = p
	case dot11fp.CandidateDropped:
		name = "dropped"
		payload = struct {
			Window  int    `json:"window"`
			Addr    string `json:"addr"`
			Obs     uint64 `json:"observations"`
			Minimum int    `json:"minimum"`
			Evicted bool   `json:"evicted"`
		}{ev.Window, ev.Addr.String(), ev.Observations, ev.Minimum, ev.Evicted}
	case dot11fp.EnrollmentProgress:
		name = "enrolling"
		payload = struct {
			Window   int    `json:"window"`
			Addr     string `json:"addr"`
			Windows  int    `json:"windows"`
			Horizon  int    `json:"horizon"`
			Obs      uint64 `json:"observations"`
			Required uint64 `json:"required"`
		}{ev.Window, ev.Addr.String(), ev.Windows, ev.Horizon, ev.Observations, ev.Required}
	case dot11fp.DeviceEnrolled:
		name = "enrolled"
		payload = struct {
			Window  int    `json:"window"`
			Addr    string `json:"addr"`
			Windows int    `json:"windows"`
			Obs     uint64 `json:"observations"`
			Refs    int    `json:"refs"`
		}{ev.Window, ev.Addr.String(), ev.Windows, ev.Observations, ev.Refs}
	case dot11fp.DBSwapped:
		name = "db_swapped"
		payload = struct {
			Window   int    `json:"window"`
			Version  uint64 `json:"version"`
			Refs     int    `json:"refs"`
			Enrolled int    `json:"enrolled"`
			Updated  int    `json:"updated"`
		}{ev.Window, ev.Version, ev.Refs, ev.Enrolled, ev.Updated}
	case dot11fp.ComponentPanicked:
		name = "component_panicked"
		payload = struct {
			Component string `json:"component"`
			Shard     int    `json:"shard"`
			Err       string `json:"err"`
		}{ev.Component, ev.Shard, ev.Err}
	case dot11fp.ShardStalled:
		name = "shard_stalled"
		payload = struct {
			Shard  int   `json:"shard"`
			Queued int   `json:"queued"`
			ForNS  int64 `json:"for_ns"`
		}{ev.Shard, ev.Queued, ev.For.Nanoseconds()}
	case dot11fp.ShardResumed:
		name = "shard_resumed"
		payload = struct {
			Shard int `json:"shard"`
		}{ev.Shard}
	default:
		return nil, false
	}
	data, err := json.Marshal(payload)
	if err != nil {
		return nil, false
	}
	return []byte(fmt.Sprintf("id: %d\nevent: %s\ndata: %s\n\n", id, name, data)), true
}
