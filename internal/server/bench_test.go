package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"dot11fp"
	"dot11fp/internal/cmdutil"
	"dot11fp/internal/dot11"
)

// BenchmarkServerQuery measures one "who is sender X" round trip —
// HTTP, routing, cache lookup and JSON encoding included — against a
// warm verdict cache.
func BenchmarkServerQuery(b *testing.B) {
	db, val := testRefs(b, testTrace(b))
	site := NewSite("bench", SiteOptions{Window: testWindow})
	eng, err := dot11fp.NewEngine(db.Config(), db.Compile(), dot11fp.EngineOptions{
		Window: testWindow, Sink: site.Sink(nil),
	})
	if err != nil {
		b.Fatal(err)
	}
	site.Attach(eng, nil, nil, cmdutil.References{DB: db})
	eng.PushTrace(val)
	eng.Close()

	reg := NewRegistry()
	if err := reg.Add(site); err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(New(reg, Options{}).Handler())
	defer ts.Close()

	senders := site.rec.list()
	if len(senders) == 0 {
		b.Fatal("no verdicts to query")
	}
	url := ts.URL + "/api/v1/sites/bench/senders/" + senders[0].Addr
	client := ts.Client()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Get(url)
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// BenchmarkServedStream replays the validation trace through a live
// engine in three configurations — no server, site taps with an idle
// feed, site taps with one draining SSE client — so the serving tax on
// the streaming path is a measured number (reported as ns/frame).
func BenchmarkServedStream(b *testing.B) {
	db, val := testRefs(b, testTrace(b))
	cfg := db.Config()
	cdb := db.Compile()
	run := func(b *testing.B, attach func(*Site) func()) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var sink dot11fp.Sink
			var cleanup func()
			var site *Site
			if attach != nil {
				site = NewSite("bench", SiteOptions{Window: testWindow})
				cleanup = attach(site)
				sink = site.Sink(nil)
			}
			eng, err := dot11fp.NewEngine(cfg, cdb, dot11fp.EngineOptions{Window: testWindow, Sink: sink})
			if err != nil {
				b.Fatal(err)
			}
			if site != nil {
				site.Attach(eng, nil, nil, cmdutil.References{DB: db})
			}
			eng.PushTrace(val)
			eng.Close()
			if cleanup != nil {
				cleanup()
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(val.Records)), "ns/frame")
	}
	b.Run("bare", func(b *testing.B) { run(b, nil) })
	b.Run("site-idle-feed", func(b *testing.B) {
		run(b, func(*Site) func() { return func() {} })
	})
	b.Run("site-sse-client", func(b *testing.B) {
		run(b, func(s *Site) func() {
			sub := s.Feed().Subscribe()
			done := make(chan struct{})
			go func() {
				for range sub.C {
				}
				close(done)
			}()
			return func() {
				sub.Close()
				<-done
			}
		})
	})
}

// BenchmarkSSEFanout measures publishing one verdict event to 1, 16 and
// 128 draining subscribers — the encode-once cost plus N non-blocking
// channel sends.
func BenchmarkSSEFanout(b *testing.B) {
	ev := dot11fp.Event(dot11fp.CandidateMatched{
		Window: 3, Addr: dot11.LocalAddr(7),
		Best: dot11fp.Score{Addr: dot11.LocalAddr(7), Sim: 0.97},
		Scores: []dot11fp.Score{
			{Addr: dot11.LocalAddr(7), Sim: 0.97},
			{Addr: dot11.LocalAddr(8), Sim: 0.41},
		},
	})
	for _, clients := range []int{1, 16, 128} {
		b.Run(fmt.Sprintf("clients-%d", clients), func(b *testing.B) {
			f := NewFanout(1024)
			subs := make([]*Subscription, clients)
			for i := range subs {
				subs[i] = f.Subscribe()
				go func(s *Subscription) {
					for range s.C {
					}
				}(subs[i])
			}
			// Let the drain goroutines start.
			time.Sleep(time.Millisecond)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.Publish(ev)
			}
			b.StopTimer()
			for _, s := range subs {
				s.Close()
			}
		})
	}
}
