package server

import (
	"fmt"
	"io"
	"strings"
)

// metricFamily is one Prometheus family: a # HELP/# TYPE header
// followed by one sample per (site, extra-label) combination, emitted
// together so the exposition groups families across sites — the format
// requires all samples of a family to be contiguous.
type metricFamily struct {
	name, typ, help string
	samples         []sample
}

type sample struct {
	labels string // rendered `site="x"` or `site="x",source="0"`
	value  float64
}

func (m *metricFamily) add(labels string, v float64) {
	m.samples = append(m.samples, sample{labels: labels, value: v})
}

// WriteMetrics renders every site's canonical snapshot in the
// Prometheus text exposition format (version 0.0.4) — the same
// SiteSnapshot the JSON API serves, flattened to families, so the two
// surfaces cannot disagree. Gauges carry instantaneous values
// (live_senders, refs, feed_clients…); counters carry the engines'
// monotonic totals.
func WriteMetrics(w io.Writer, snaps []SiteSnapshot) {
	fams := []*metricFamily{
		{name: "dot11fp_frames_total", typ: "counter", help: "Frames pushed into the engine."},
		{name: "dot11fp_dropped_frames_total", typ: "counter", help: "Frames dropped by backpressure."},
		{name: "dot11fp_windows_closed_total", typ: "counter", help: "Detection windows closed."},
		{name: "dot11fp_live_senders", typ: "gauge", help: "Senders currently tracked in the open window."},
		{name: "dot11fp_candidates_total", typ: "counter", help: "Candidates that cleared the minimum-observation rule."},
		{name: "dot11fp_matched_total", typ: "counter", help: "Candidates matched to a reference."},
		{name: "dot11fp_unknown_total", typ: "counter", help: "Candidates matched to no reference."},
		{name: "dot11fp_dropped_senders_total", typ: "counter", help: "Senders dropped below the minimum-observation rule or evicted."},
		{name: "dot11fp_evicted_total", typ: "counter", help: "Senders evicted by bounded-state limits."},
		{name: "dot11fp_frames_per_second", typ: "gauge", help: "Ingest rate over the engine's lifetime."},
		{name: "dot11fp_refs", typ: "gauge", help: "References currently installed in the engine."},
		{name: "dot11fp_degraded", typ: "gauge", help: "1 when supervision absorbed unrecoverable faults (recovered panics or a permanently down source)."},
		{name: "dot11fp_health_panics_total", typ: "counter", help: "Recovered panics by component."},
		{name: "dot11fp_health_stalled_shards", typ: "gauge", help: "Shards the watchdog currently considers stalled."},
		{name: "dot11fp_trainer_refs", typ: "gauge", help: "Trainer's reference count."},
		{name: "dot11fp_trainer_pending", typ: "gauge", help: "Senders accumulating toward the enrollment horizon."},
		{name: "dot11fp_trainer_enrolled_total", typ: "counter", help: "Senders promoted into the references."},
		{name: "dot11fp_trainer_updated_total", typ: "counter", help: "Reference refreshes under Update mode."},
		{name: "dot11fp_trainer_swaps_total", typ: "counter", help: "Reference databases hot-swapped into the engine."},
		{name: "dot11fp_trainer_denied_total", typ: "counter", help: "Candidate observations skipped for denied senders."},
		{name: "dot11fp_trainer_rejected_total", typ: "counter", help: "Confirm-rejected senders."},
		{name: "dot11fp_trainer_evicted_pending_total", typ: "counter", help: "Pending senders evicted by MaxPending."},
		{name: "dot11fp_source_records_total", typ: "counter", help: "Records delivered by the capture source."},
		{name: "dot11fp_source_decode_errors_total", typ: "counter", help: "Undecodable frames skipped by the source."},
		{name: "dot11fp_source_failures_total", typ: "counter", help: "Source errors plus failed reopen attempts."},
		{name: "dot11fp_source_reopens_total", typ: "counter", help: "Successful source reopens."},
		{name: "dot11fp_source_down", typ: "gauge", help: "1 while the source is failed (reopening or retired)."},
		{name: "dot11fp_source_permanent_down", typ: "gauge", help: "1 when the source exhausted its reopen attempts."},
		{name: "dot11fp_index_enabled", typ: "gauge", help: "1 when the compiled match index backs the site's matching."},
		{name: "dot11fp_index_entries", typ: "gauge", help: "Non-zero (reference, bin) cells in the match index."},
		{name: "dot11fp_index_postings", typ: "gauge", help: "Inverted-index entries in the match index."},
		{name: "dot11fp_index_bytes", typ: "gauge", help: "Approximate match-index memory footprint."},
		{name: "dot11fp_index_dense_bytes", typ: "gauge", help: "Memory the dense row matrices would occupy (held when the index is off)."},
		{name: "dot11fp_feed_clients", typ: "gauge", help: "Connected SSE feed subscribers."},
		{name: "dot11fp_feed_events_total", typ: "counter", help: "Events published to the SSE feed."},
		{name: "dot11fp_feed_dropped_total", typ: "counter", help: "SSE frames dropped into full client buffers."},
	}
	byName := make(map[string]*metricFamily, len(fams))
	for _, f := range fams {
		byName[f.name] = f
	}
	add := func(name, labels string, v float64) { byName[name].add(labels, v) }
	b01 := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}

	for _, s := range snaps {
		site := fmt.Sprintf(`site=%q`, s.Site)
		add("dot11fp_frames_total", site, float64(s.Stats.Frames))
		add("dot11fp_dropped_frames_total", site, float64(s.Stats.DroppedFrames))
		add("dot11fp_windows_closed_total", site, float64(s.Stats.WindowsClosed))
		add("dot11fp_live_senders", site, float64(s.Stats.LiveSenders))
		add("dot11fp_candidates_total", site, float64(s.Stats.Candidates))
		add("dot11fp_matched_total", site, float64(s.Stats.Matched))
		add("dot11fp_unknown_total", site, float64(s.Stats.Unknown))
		add("dot11fp_dropped_senders_total", site, float64(s.Stats.Dropped))
		add("dot11fp_evicted_total", site, float64(s.Stats.Evicted))
		add("dot11fp_frames_per_second", site, s.Stats.FramesPerSec)
		add("dot11fp_refs", site, float64(s.Refs))
		add("dot11fp_degraded", site, b01(s.Degraded))
		for _, c := range []struct {
			component string
			n         uint64
		}{
			{"shard", s.Health.ShardPanics},
			{"merger", s.Health.MergerPanics},
			{"trainer", s.Health.TrainerPanics},
			{"engine", s.Health.EnginePanics},
		} {
			add("dot11fp_health_panics_total", site+fmt.Sprintf(`,component=%q`, c.component), float64(c.n))
		}
		add("dot11fp_health_stalled_shards", site, float64(len(s.Health.StalledShards)))
		if t := s.Trainer; t != nil {
			add("dot11fp_trainer_refs", site, float64(t.Refs))
			add("dot11fp_trainer_pending", site, float64(t.Pending))
			add("dot11fp_trainer_enrolled_total", site, float64(t.Enrolled))
			add("dot11fp_trainer_updated_total", site, float64(t.Updated))
			add("dot11fp_trainer_swaps_total", site, float64(t.Swaps))
			add("dot11fp_trainer_denied_total", site, float64(t.Denied))
			add("dot11fp_trainer_rejected_total", site, float64(t.Rejected))
			add("dot11fp_trainer_evicted_pending_total", site, float64(t.EvictedPending))
		}
		for i, src := range s.Sources {
			labels := site + fmt.Sprintf(`,source="%d"`, i)
			add("dot11fp_source_records_total", labels, float64(src.Records))
			add("dot11fp_source_decode_errors_total", labels, float64(src.DecodeErrors))
			add("dot11fp_source_failures_total", labels, float64(src.Failures))
			add("dot11fp_source_reopens_total", labels, float64(src.Reopens))
			add("dot11fp_source_down", labels, b01(src.Down))
			add("dot11fp_source_permanent_down", labels, b01(src.Permanent))
		}
		add("dot11fp_index_enabled", site, b01(s.Stats.Index.Enabled))
		add("dot11fp_index_entries", site, float64(s.Stats.Index.Entries))
		add("dot11fp_index_postings", site, float64(s.Stats.Index.Postings))
		add("dot11fp_index_bytes", site, float64(s.Stats.Index.IndexBytes))
		add("dot11fp_index_dense_bytes", site, float64(s.Stats.Index.DenseBytes))
		add("dot11fp_feed_clients", site, float64(s.Feed.Clients))
		add("dot11fp_feed_events_total", site, float64(s.Feed.Events))
		add("dot11fp_feed_dropped_total", site, float64(s.Feed.Dropped))
	}

	var sb strings.Builder
	for _, f := range fams {
		if len(f.samples) == 0 {
			continue
		}
		fmt.Fprintf(&sb, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		for _, smp := range f.samples {
			fmt.Fprintf(&sb, "%s{%s} %v\n", f.name, smp.labels, smp.value)
		}
	}
	io.WriteString(w, sb.String())
}
