package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"

	"dot11fp"
)

// Options parameterises a Server.
type Options struct {
	// Pprof also mounts net/http/pprof under /debug/pprof/. Off by
	// default: profiling endpoints expose more than metrics do.
	Pprof bool
}

// Server is the HTTP face over a Registry of sites. Build it with New,
// mount Handler on any listener — or use Start for the daemons' serve
// loop with graceful shutdown.
type Server struct {
	reg  *Registry
	opts Options
	mux  *http.ServeMux

	// closed releases long-lived handlers (the SSE feeds) at shutdown;
	// http.Server.Shutdown alone would wait on them forever.
	closed    chan struct{}
	closeOnce sync.Once

	srv *http.Server
	ln  net.Listener
}

// New builds the server and its routes over reg.
func New(reg *Registry, opts Options) *Server {
	s := &Server{reg: reg, opts: opts, mux: http.NewServeMux(), closed: make(chan struct{})}
	s.mux.HandleFunc("GET /api/v1/sites", s.handleSites)
	s.mux.HandleFunc("GET /api/v1/sites/{site}", s.withSite(s.handleSite))
	s.mux.HandleFunc("GET /api/v1/sites/{site}/senders", s.withSite(s.handleSenders))
	s.mux.HandleFunc("GET /api/v1/sites/{site}/senders/{mac}", s.withSite(s.handleSender))
	s.mux.HandleFunc("GET /api/v1/sites/{site}/references", s.withSite(s.handleReferences))
	s.mux.HandleFunc("GET /api/v1/sites/{site}/references/{mac}", s.withSite(s.handleReference))
	s.mux.HandleFunc("GET /api/v1/sites/{site}/enroll", s.withSite(s.handleEnrollList))
	s.mux.HandleFunc("POST /api/v1/sites/{site}/enroll/{mac}", s.withSite(s.handleEnrollResolve))
	s.mux.HandleFunc("POST /api/v1/sites/{site}/score", s.withSite(s.handleScore))
	s.mux.HandleFunc("POST /api/v1/sites/{site}/checkpoint", s.withSite(s.handleCheckpointSave))
	s.mux.HandleFunc("POST /api/v1/sites/{site}/checkpoint/load", s.withSite(s.handleCheckpointLoad))
	s.mux.HandleFunc("GET /api/v1/sites/{site}/feed", s.withSite(s.handleFeed))
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	if opts.Pprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// Handler returns the route tree, for mounting on a listener of the
// caller's choosing (tests use httptest.Server).
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr and serves in the background, returning the
// bound address (useful with ":0"). Stop with Shutdown.
func Start(addr string, reg *Registry, opts Options) (*Server, error) {
	s := New(reg, opts)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.mux}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address ("" before Start).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Shutdown stops serving gracefully: long-lived feeds are released,
// in-flight requests get until ctx to finish. Safe without Start (it
// then only releases feeds handled through Handler).
func (s *Server) Shutdown(ctx context.Context) error {
	s.closeOnce.Do(func() { close(s.closed) })
	if s.srv == nil {
		return nil
	}
	return s.srv.Shutdown(ctx)
}

// withSite resolves the {site} path value and 404s unknown names.
func (s *Server) withSite(h func(http.ResponseWriter, *http.Request, *Site)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		site := s.reg.Get(r.PathValue("site"))
		if site == nil {
			writeErr(w, http.StatusNotFound, fmt.Sprintf("unknown site %q", r.PathValue("site")))
			return
		}
		h(w, r, site)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, struct {
		Error string `json:"error"`
	}{msg})
}

func (s *Server) handleSites(w http.ResponseWriter, r *http.Request) {
	sites := s.reg.List()
	snaps := make([]SiteSnapshot, 0, len(sites))
	for _, site := range sites {
		snap, err := site.Snapshot()
		if err != nil {
			snap = SiteSnapshot{Site: site.Name()}
		}
		snaps = append(snaps, snap)
	}
	writeJSON(w, http.StatusOK, struct {
		Sites []SiteSnapshot `json:"sites"`
	}{snaps})
}

func (s *Server) handleSite(w http.ResponseWriter, r *http.Request, site *Site) {
	snap, err := site.Snapshot()
	if err != nil {
		writeErr(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handleSenders(w http.ResponseWriter, r *http.Request, site *Site) {
	window, have := site.rec.window()
	writeJSON(w, http.StatusOK, struct {
		Window     int             `json:"window"`
		HaveWindow bool            `json:"have_window"`
		Senders    []SenderVerdict `json:"senders"`
	}{window, have, site.rec.list()})
}

func (s *Server) handleSender(w http.ResponseWriter, r *http.Request, site *Site) {
	addr, err := dot11fp.ParseAddr(r.PathValue("mac"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	v, ok := site.rec.get(addr)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("sender %s has no recorded verdict", addr))
		return
	}
	writeJSON(w, http.StatusOK, v)
}

func (s *Server) handleReferences(w http.ResponseWriter, r *http.Request, site *Site) {
	eng, err := site.engine()
	if err != nil {
		writeErr(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	var devices []dot11fp.Addr
	switch {
	case eng.EnsembleDB() != nil:
		devices = eng.EnsembleDB().Devices()
	case eng.DB() != nil:
		devices = eng.DB().Devices()
	}
	refs := make([]string, len(devices))
	for i, d := range devices {
		refs[i] = d.String()
	}
	writeJSON(w, http.StatusOK, struct {
		Refs []string `json:"refs"`
	}{refs})
}

// referenceDetail is one reference's wire view: accumulated
// observations per member parameter.
type referenceDetail struct {
	Addr   string            `json:"addr"`
	Params map[string]uint64 `json:"observations_by_param"`
}

func (s *Server) handleReference(w http.ResponseWriter, r *http.Request, site *Site) {
	addr, err := dot11fp.ParseAddr(r.PathValue("mac"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	site.mu.RLock()
	refsFn := site.refsFn
	site.mu.RUnlock()
	if refsFn == nil {
		writeErr(w, http.StatusServiceUnavailable, fmt.Sprintf("site %q has no engine attached", site.Name()))
		return
	}
	refs := refsFn()
	detail := referenceDetail{Addr: addr.String(), Params: make(map[string]uint64)}
	switch {
	case refs.Ens != nil:
		sigs := refs.Ens.Signatures(addr)
		if sigs == nil {
			writeErr(w, http.StatusNotFound, fmt.Sprintf("no reference for %s", addr))
			return
		}
		for i, cfg := range refs.Ens.Configs() {
			detail.Params[cfg.Param.ShortName()] = sigs[i].Observations()
		}
	case refs.DB != nil:
		sig := refs.DB.Signature(addr)
		if sig == nil {
			writeErr(w, http.StatusNotFound, fmt.Sprintf("no reference for %s", addr))
			return
		}
		detail.Params[refs.DB.Config().Param.ShortName()] = sig.Observations()
	default:
		writeErr(w, http.StatusNotFound, fmt.Sprintf("no reference for %s", addr))
		return
	}
	writeJSON(w, http.StatusOK, detail)
}

// enrollEntry is a pending sender's wire view.
type enrollEntry struct {
	Addr         string `json:"addr"`
	Windows      int    `json:"windows"`
	Observations uint64 `json:"observations"`
}

func enrollEntries(ps []dot11fp.PendingEnrollment) []enrollEntry {
	out := make([]enrollEntry, len(ps))
	for i, p := range ps {
		out[i] = enrollEntry{Addr: p.Addr.String(), Windows: p.Windows, Observations: p.Observations}
	}
	return out
}

func (s *Server) handleEnrollList(w http.ResponseWriter, r *http.Request, site *Site) {
	site.mu.RLock()
	trainer := site.trainer
	site.mu.RUnlock()
	if trainer == nil {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("site %q does not enroll online", site.Name()))
		return
	}
	writeJSON(w, http.StatusOK, struct {
		// Pending accumulates toward the horizon; Offers completed it
		// and wait on an operator verdict (confirm mode only).
		Pending []enrollEntry `json:"pending"`
		Offers  []enrollEntry `json:"offers"`
	}{enrollEntries(trainer.PendingList()), enrollEntries(site.gate.Offers())})
}

func (s *Server) handleEnrollResolve(w http.ResponseWriter, r *http.Request, site *Site) {
	site.mu.RLock()
	trainer := site.trainer
	site.mu.RUnlock()
	if trainer == nil {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("site %q does not enroll online", site.Name()))
		return
	}
	addr, err := dot11fp.ParseAddr(r.PathValue("mac"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	var body struct {
		Decision string `json:"decision"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&body); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Sprintf("bad body: %v", err))
		return
	}
	var approve bool
	switch body.Decision {
	case "approve":
		approve = true
	case "reject":
	default:
		writeErr(w, http.StatusBadRequest, fmt.Sprintf("decision %q: want approve or reject", body.Decision))
		return
	}
	if err := site.gate.Resolve(addr, approve); err != nil {
		writeErr(w, http.StatusConflict, err.Error())
		return
	}
	// 202: the verdict applies at the sender's next completed window,
	// not synchronously.
	writeJSON(w, http.StatusAccepted, struct {
		Addr     string `json:"addr"`
		Decision string `json:"decision"`
	}{addr.String(), body.Decision})
}

// scoreVerdict is one batch-scoring verdict row.
type scoreVerdict struct {
	Window       int     `json:"window"`
	Addr         string  `json:"addr"`
	Matched      bool    `json:"matched"`
	Best         string  `json:"best,omitempty"`
	BestSim      float64 `json:"best_sim"`
	Observations uint64  `json:"observations"`
}

// handleScore scores an uploaded pcap against the site's current
// references in a one-shot serial engine — the batch path, never the
// live stream. The live engine is untouched; the one-shot engine runs
// the same window/threshold configuration, so its verdicts are exactly
// what the live path would have produced for the same records.
func (s *Server) handleScore(w http.ResponseWriter, r *http.Request, site *Site) {
	eng, err := site.engine()
	if err != nil {
		writeErr(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	tr, err := dot11fp.ReadPcap(http.MaxBytesReader(w, r.Body, site.opts.MaxBatchBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, http.StatusRequestEntityTooLarge, err.Error())
			return
		}
		writeErr(w, http.StatusBadRequest, fmt.Sprintf("bad pcap: %v", err))
		return
	}
	var verdicts []scoreVerdict
	sink := dot11fp.SinkFunc(func(ev dot11fp.Event) {
		switch ev := ev.(type) {
		case dot11fp.CandidateMatched:
			verdicts = append(verdicts, scoreVerdict{
				Window: ev.Window, Addr: ev.Addr.String(), Matched: true,
				Best: ev.Best.Addr.String(), BestSim: ev.Best.Sim,
				Observations: ev.Observations(),
			})
		case dot11fp.UnknownDevice:
			v := scoreVerdict{Window: ev.Window, Addr: ev.Addr.String(), Observations: ev.Observations()}
			if ev.HasBest {
				v.Best, v.BestSim = ev.Best.Addr.String(), ev.Best.Sim
			}
			verdicts = append(verdicts, v)
		}
	})
	opts := dot11fp.EngineOptions{Window: site.opts.Window, Threshold: site.opts.Threshold, Sink: sink}
	var batch *dot11fp.Engine
	if edb, cfgs := eng.EnsembleDB(), eng.Configs(); edb != nil || len(cfgs) > 1 {
		batch, err = dot11fp.NewEnsembleEngine(cfgs, edb, opts)
	} else {
		batch, err = dot11fp.NewEngine(eng.Config(), eng.DB(), opts)
	}
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err.Error())
		return
	}
	batch.PushTrace(tr)
	batch.Close()
	writeJSON(w, http.StatusOK, struct {
		Records  int            `json:"records"`
		Verdicts []scoreVerdict `json:"verdicts"`
	}{len(tr.Records), verdicts})
}

func (s *Server) handleCheckpointSave(w http.ResponseWriter, r *http.Request, site *Site) {
	n, err := site.SaveCheckpoint()
	if err != nil {
		writeErr(w, http.StatusConflict, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Refs int `json:"refs"`
	}{n})
}

func (s *Server) handleCheckpointLoad(w http.ResponseWriter, r *http.Request, site *Site) {
	n, gen, err := site.LoadCheckpoint()
	if err != nil {
		writeErr(w, http.StatusConflict, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Refs       int `json:"refs"`
		Generation int `json:"generation"`
	}{n, gen})
}

// handleFeed streams the site's events as server-sent events. The
// subscription's buffer decouples the client from the engine: a slow
// reader loses frames (counted) instead of backpressuring the
// pipeline. The handler exits on client disconnect or server shutdown.
func (s *Server) handleFeed(w http.ResponseWriter, r *http.Request, site *Site) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	sub := site.feed.Subscribe()
	defer sub.Close()
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	for {
		select {
		case frame, ok := <-sub.C:
			if !ok {
				return
			}
			if _, err := w.Write(frame); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		case <-s.closed:
			// Graceful, not lossy: flush the frames already buffered,
			// then release the stream.
			for {
				select {
				case frame, ok := <-sub.C:
					if !ok {
						return
					}
					if _, err := w.Write(frame); err != nil {
						return
					}
					fl.Flush()
				default:
					return
				}
			}
		}
	}
}

func (s *Server) snapshots() []SiteSnapshot {
	sites := s.reg.List()
	snaps := make([]SiteSnapshot, 0, len(sites))
	for _, site := range sites {
		if snap, err := site.Snapshot(); err == nil {
			snaps = append(snaps, snap)
		}
	}
	return snaps
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WriteMetrics(w, s.snapshots())
}

// handleHealthz serves orchestrator liveness: 200 when every attached
// site is clean, 503 when any is degraded (the same cmdutil.Degraded
// verdict behind fingerprintd's exit-3 policy).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	type siteHealth struct {
		Site     string `json:"site"`
		Degraded bool   `json:"degraded"`
	}
	var sites []siteHealth
	degraded := false
	for _, snap := range s.snapshots() {
		sites = append(sites, siteHealth{Site: snap.Site, Degraded: snap.Degraded})
		degraded = degraded || snap.Degraded
	}
	code := http.StatusOK
	status := "ok"
	if degraded {
		code, status = http.StatusServiceUnavailable, "degraded"
	}
	writeJSON(w, code, struct {
		Status string       `json:"status"`
		Sites  []siteHealth `json:"sites"`
	}{status, sites})
}
