package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"dot11fp"
	"dot11fp/internal/checkpoint"
	"dot11fp/internal/cmdutil"
	"dot11fp/internal/dot11"
)

const testWindow = 2 * time.Minute

// testTrace synthesises the shared office trace: 12 minutes, 8
// stations, deterministic.
func testTrace(t testing.TB) *dot11fp.Trace {
	t.Helper()
	tr, err := dot11fp.GenerateOffice("srv-office", 7, 12*time.Minute, 8)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// testRefs trains a reference database on the trace's first half and
// returns it with the validation remainder.
func testRefs(t testing.TB, tr *dot11fp.Trace) (*dot11fp.Database, *dot11fp.Trace) {
	t.Helper()
	train, val := dot11fp.Split(tr, 6*time.Minute)
	db := dot11fp.NewDatabase(dot11fp.DefaultConfig(dot11fp.ParamInterArrival), dot11fp.MeasureCosine)
	if err := db.Train(train); err != nil {
		t.Fatal(err)
	}
	if db.Len() == 0 {
		t.Fatal("training produced no references")
	}
	return db, val
}

// eventLog is a collecting sink, safe for the delivery goroutine.
type eventLog struct {
	mu     sync.Mutex
	events []dot11fp.Event
}

func (l *eventLog) HandleEvent(ev dot11fp.Event) {
	l.mu.Lock()
	l.events = append(l.events, ev)
	l.mu.Unlock()
}

func (l *eventLog) snapshot() []dot11fp.Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]dot11fp.Event(nil), l.events...)
}

// serveSites mounts the sites on an httptest server.
func serveSites(t testing.TB, opts Options, sites ...*Site) (*Server, *httptest.Server) {
	t.Helper()
	reg := NewRegistry()
	for _, s := range sites {
		if err := reg.Add(s); err != nil {
			t.Fatal(err)
		}
	}
	srv := New(reg, opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func getJSON(t testing.TB, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
	return resp.StatusCode
}

func postJSON(t testing.TB, url string, body string, out any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("POST %s: decode: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestSenderQueryMatchesBatchPath pins the query API's core promise:
// "who is sender X" answers with exactly the verdict the batch path
// produces for the same records — same window, same best reference,
// same similarity, same full score vector.
func TestSenderQueryMatchesBatchPath(t *testing.T) {
	t.Parallel()
	db, val := testRefs(t, testTrace(t))
	site := NewSite("main", SiteOptions{Window: testWindow})
	var direct eventLog
	eng, err := dot11fp.NewEngine(db.Config(), db.Compile(), dot11fp.EngineOptions{
		Window: testWindow, Sink: site.Sink(&direct),
	})
	if err != nil {
		t.Fatal(err)
	}
	site.Attach(eng, nil, nil, cmdutil.References{DB: db})
	_, ts := serveSites(t, Options{}, site)

	eng.PushTrace(val)
	eng.Close()

	// The expected verdicts: the last verdict event per sender from the
	// direct sink (the site's taps see the identical stream).
	type expect struct {
		window  int
		matched bool
		best    string
		sim     float64
		hasBest bool
		obs     uint64
		scores  []dot11fp.Score
	}
	want := make(map[string]expect)
	for _, ev := range direct.snapshot() {
		switch ev := ev.(type) {
		case dot11fp.CandidateMatched:
			want[ev.Addr.String()] = expect{
				window: ev.Window, matched: true,
				best: ev.Best.Addr.String(), sim: ev.Best.Sim, hasBest: true,
				obs: ev.Observations(), scores: ev.Scores,
			}
		case dot11fp.UnknownDevice:
			e := expect{window: ev.Window, obs: ev.Observations(), scores: ev.Scores}
			if ev.HasBest {
				e.best, e.sim, e.hasBest = ev.Best.Addr.String(), ev.Best.Sim, true
			}
			want[ev.Addr.String()] = e
		}
	}
	if len(want) == 0 {
		t.Fatal("validation run produced no verdicts")
	}

	// The senders listing covers exactly the verdict-carrying senders.
	var listing struct {
		HaveWindow bool            `json:"have_window"`
		Senders    []SenderVerdict `json:"senders"`
	}
	if code := getJSON(t, ts.URL+"/api/v1/sites/main/senders", &listing); code != http.StatusOK {
		t.Fatalf("senders listing: status %d", code)
	}
	if !listing.HaveWindow {
		t.Fatal("senders listing reports no closed window")
	}
	if len(listing.Senders) != len(want) {
		t.Fatalf("listing has %d senders, direct sink saw %d", len(listing.Senders), len(want))
	}

	// Every sender's query answer matches the direct verdict, scores
	// included.
	for addr, w := range want {
		var v SenderVerdict
		if code := getJSON(t, ts.URL+"/api/v1/sites/main/senders/"+addr, &v); code != http.StatusOK {
			t.Fatalf("sender %s: status %d", addr, code)
		}
		if v.Window != w.window || v.Matched != w.matched || v.HasBest != w.hasBest ||
			v.Best != w.best || v.BestSim != w.sim || v.Observations != w.obs {
			t.Fatalf("sender %s: got %+v, want %+v", addr, v, w)
		}
		if len(v.Scores) != len(w.scores) {
			t.Fatalf("sender %s: %d scores, want %d", addr, len(v.Scores), len(w.scores))
		}
		for i, sc := range w.scores {
			if v.Scores[i].Ref != sc.Addr.String() || v.Scores[i].Sim != sc.Sim {
				t.Fatalf("sender %s score %d: got %+v, want {%s %v}", addr, i, v.Scores[i], sc.Addr, sc.Sim)
			}
		}
	}

	// The batch-scoring endpoint over the same pcap agrees verdict for
	// verdict: the one-shot engine runs the same configuration against
	// the same references.
	var pcap bytes.Buffer
	if err := dot11fp.WritePcap(&pcap, val); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/api/v1/sites/main/score", "application/octet-stream", &pcap)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("score: status %d", resp.StatusCode)
	}
	var scored struct {
		Records  int `json:"records"`
		Verdicts []struct {
			Window       int     `json:"window"`
			Addr         string  `json:"addr"`
			Matched      bool    `json:"matched"`
			Best         string  `json:"best"`
			BestSim      float64 `json:"best_sim"`
			Observations uint64  `json:"observations"`
		} `json:"verdicts"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&scored); err != nil {
		t.Fatal(err)
	}
	if scored.Records != len(val.Records) {
		t.Fatalf("score consumed %d records, want %d", scored.Records, len(val.Records))
	}
	last := make(map[string]int)
	for i, v := range scored.Verdicts {
		last[v.Addr] = i
	}
	if len(last) != len(want) {
		t.Fatalf("batch path scored %d senders, live path %d", len(last), len(want))
	}
	for addr, w := range want {
		i, ok := last[addr]
		if !ok {
			t.Fatalf("batch path has no verdict for %s", addr)
		}
		v := scored.Verdicts[i]
		if v.Window != w.window || v.Matched != w.matched || v.Best != w.best ||
			v.BestSim != w.sim || v.Observations != w.obs {
			t.Fatalf("batch verdict for %s: got %+v, want %+v", addr, v, w)
		}
	}
}

// TestCheckpointOverAPI pins acceptance criterion (c): a checkpoint
// saved through the API is loadable with LoadReferencesChain, the load
// endpoint hot-swaps it into a cold site, and a trainer-owned site
// refuses loads.
func TestCheckpointOverAPI(t *testing.T) {
	t.Parallel()
	db, _ := testRefs(t, testTrace(t))
	cfg := db.Config()
	path := filepath.Join(t.TempDir(), "refs.ckpt")

	warm := NewSite("warm", SiteOptions{Window: testWindow, CheckpointPath: path})
	warmEng, err := dot11fp.NewEngine(cfg, db.Compile(), dot11fp.EngineOptions{Window: testWindow, Sink: warm.Sink(nil)})
	if err != nil {
		t.Fatal(err)
	}
	warm.Attach(warmEng, nil, nil, cmdutil.References{DB: db})

	cold := NewSite("cold", SiteOptions{Window: testWindow, CheckpointPath: path})
	empty := dot11fp.NewDatabase(cfg, dot11fp.MeasureCosine)
	coldEng, err := dot11fp.NewEngine(cfg, empty.Compile(), dot11fp.EngineOptions{Window: testWindow, Sink: cold.Sink(nil)})
	if err != nil {
		t.Fatal(err)
	}
	cold.Attach(coldEng, nil, nil, cmdutil.References{DB: empty})

	_, ts := serveSites(t, Options{}, warm, cold)

	// Save over the API.
	var saved struct {
		Refs int `json:"refs"`
	}
	if code := postJSON(t, ts.URL+"/api/v1/sites/warm/checkpoint", "", &saved); code != http.StatusOK {
		t.Fatalf("checkpoint save: status %d", code)
	}
	if saved.Refs != db.Len() {
		t.Fatalf("save reported %d refs, want %d", saved.Refs, db.Len())
	}

	// The file is a first-class generation-chain checkpoint.
	loaded, gen, err := cmdutil.LoadReferencesChain(path, checkpoint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if gen != 0 || loaded.Len() != db.Len() {
		t.Fatalf("LoadReferencesChain: gen %d refs %d, want gen 0 refs %d", gen, loaded.Len(), db.Len())
	}

	// The load endpoint hot-swaps the references into the cold site.
	var load struct {
		Refs       int `json:"refs"`
		Generation int `json:"generation"`
	}
	if code := postJSON(t, ts.URL+"/api/v1/sites/cold/checkpoint/load", "", &load); code != http.StatusOK {
		t.Fatalf("checkpoint load: status %d", code)
	}
	if load.Refs != db.Len() || load.Generation != 0 {
		t.Fatalf("load reported %+v, want %d refs at generation 0", load, db.Len())
	}
	var refs struct {
		Refs []string `json:"refs"`
	}
	if code := getJSON(t, ts.URL+"/api/v1/sites/cold/references", &refs); code != http.StatusOK {
		t.Fatalf("references after load: status %d", code)
	}
	if len(refs.Refs) != db.Len() {
		t.Fatalf("cold site serves %d references after load, want %d", len(refs.Refs), db.Len())
	}

	// A trainer-owned site refuses: the trainer is the source of truth.
	gated := NewSite("gated", SiteOptions{Window: testWindow, CheckpointPath: path})
	trainer := dot11fp.NewTrainer(cfg, dot11fp.MeasureCosine, dot11fp.TrainerOptions{})
	gatedEng, err := dot11fp.NewEngine(cfg, nil, dot11fp.EngineOptions{
		Window: testWindow, Sink: gated.Sink(nil), Trainer: trainer,
	})
	if err != nil {
		t.Fatal(err)
	}
	gated.Attach(gatedEng, trainer, nil, cmdutil.References{})
	reg := NewRegistry()
	if err := reg.Add(gated); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(New(reg, Options{}).Handler())
	defer ts2.Close()
	if code := postJSON(t, ts2.URL+"/api/v1/sites/gated/checkpoint/load", "", nil); code != http.StatusConflict {
		t.Fatalf("trainer-owned load: status %d, want 409", code)
	}
	gatedEng.Close()
	warmEng.Close()
	coldEng.Close()
}

// TestTwoSitesIsolated pins acceptance criterion (d): two sites in one
// registry share nothing — verdicts, references, feeds and metric rows
// are all per-site.
func TestTwoSitesIsolated(t *testing.T) {
	t.Parallel()
	db, val := testRefs(t, testTrace(t))
	cfg := db.Config()

	siteA := NewSite("alpha", SiteOptions{Window: testWindow})
	engA, err := dot11fp.NewEngine(cfg, db.Compile(), dot11fp.EngineOptions{Window: testWindow, Sink: siteA.Sink(nil)})
	if err != nil {
		t.Fatal(err)
	}
	siteA.Attach(engA, nil, nil, cmdutil.References{DB: db})

	siteB := NewSite("beta", SiteOptions{Window: testWindow})
	emptyDB := dot11fp.NewDatabase(cfg, dot11fp.MeasureCosine)
	engB, err := dot11fp.NewEngine(cfg, emptyDB.Compile(), dot11fp.EngineOptions{Window: testWindow, Sink: siteB.Sink(nil)})
	if err != nil {
		t.Fatal(err)
	}
	siteB.Attach(engB, nil, nil, cmdutil.References{DB: emptyDB})

	_, ts := serveSites(t, Options{}, siteA, siteB)

	// Watch beta's feed while alpha's engine runs: nothing may cross.
	subB := siteB.Feed().Subscribe()
	defer subB.Close()

	eng := engA
	eng.PushTrace(val)
	eng.Close()
	engB.Close()

	var sites struct {
		Sites []SiteSnapshot `json:"sites"`
	}
	if code := getJSON(t, ts.URL+"/api/v1/sites", &sites); code != http.StatusOK {
		t.Fatalf("sites listing: status %d", code)
	}
	if len(sites.Sites) != 2 || sites.Sites[0].Site != "alpha" || sites.Sites[1].Site != "beta" {
		t.Fatalf("sites listing: %+v", sites.Sites)
	}
	if len(sites.Sites[0].Params) != 1 || sites.Sites[0].Params[0] != "iat" {
		t.Fatalf("alpha params %v, want [iat]", sites.Sites[0].Params)
	}
	if sites.Sites[0].Stats.Frames == 0 || sites.Sites[1].Stats.Frames != 0 {
		t.Fatalf("frame counts leaked across sites: alpha %d, beta %d",
			sites.Sites[0].Stats.Frames, sites.Sites[1].Stats.Frames)
	}
	if sites.Sites[0].Refs != db.Len() || sites.Sites[1].Refs != 0 {
		t.Fatalf("reference counts leaked: alpha %d, beta %d", sites.Sites[0].Refs, sites.Sites[1].Refs)
	}

	// Alpha has verdicts; beta has none, and alpha's senders 404 there.
	var sendersA, sendersB struct {
		Senders []SenderVerdict `json:"senders"`
	}
	getJSON(t, ts.URL+"/api/v1/sites/alpha/senders", &sendersA)
	getJSON(t, ts.URL+"/api/v1/sites/beta/senders", &sendersB)
	if len(sendersA.Senders) == 0 {
		t.Fatal("alpha recorded no verdicts")
	}
	if len(sendersB.Senders) != 0 {
		t.Fatalf("beta recorded %d verdicts without traffic", len(sendersB.Senders))
	}
	addr := sendersA.Senders[0].Addr
	if code := getJSON(t, ts.URL+"/api/v1/sites/beta/senders/"+addr, nil); code != http.StatusNotFound {
		t.Fatalf("alpha's sender on beta: status %d, want 404", code)
	}
	if code := getJSON(t, ts.URL+"/api/v1/sites/nosuch/senders", nil); code != http.StatusNotFound {
		t.Fatalf("unknown site: status %d, want 404", code)
	}

	// Beta's feed saw none of alpha's events.
	subB.Close()
	if n := len(subB.C); n != 0 {
		t.Fatalf("beta's feed buffered %d frames from alpha's run", n)
	}

	// Metrics carry both sites as separate label rows.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	frames := fmt.Sprintf(`dot11fp_frames_total{site="alpha"} %d`, len(val.Records))
	if !strings.Contains(text, frames) {
		t.Fatalf("metrics missing %q", frames)
	}
	if !strings.Contains(text, `dot11fp_frames_total{site="beta"} 0`) {
		t.Fatal("metrics missing beta's zero frame row")
	}
	if !strings.Contains(text, fmt.Sprintf(`dot11fp_refs{site="alpha"} %d`, db.Len())) ||
		!strings.Contains(text, `dot11fp_refs{site="beta"} 0`) {
		t.Fatal("metrics reference gauges not per-site")
	}
	// Index gauges are emitted per site from the engines' Stats.Index.
	if !strings.Contains(text, `dot11fp_index_enabled{site="alpha"}`) ||
		!strings.Contains(text, `dot11fp_index_enabled{site="beta"}`) {
		t.Fatal("metrics missing per-site index gauges")
	}
}

// TestEnrollConfirmOverAPI drives the whole confirm-over-the-wire loop:
// a cold-start trainer gated on the site's EnrollGate, verdicts posted
// over HTTP — an approved sender enrolls, a rejected one never does,
// everyone else stays pending and visible as offers.
func TestEnrollConfirmOverAPI(t *testing.T) {
	t.Parallel()
	tr := testTrace(t)
	cfg := dot11fp.DefaultConfig(dot11fp.ParamInterArrival)

	// Probe run: auto-enrollment discovers which senders complete the
	// horizon on this trace.
	probe := dot11fp.NewTrainer(cfg, dot11fp.MeasureCosine, dot11fp.TrainerOptions{})
	probeEng, err := dot11fp.NewEngine(cfg, nil, dot11fp.EngineOptions{Window: testWindow, Trainer: probe})
	if err != nil {
		t.Fatal(err)
	}
	probeEng.PushTrace(tr)
	probeEng.Close()
	devices := probe.Database().Devices()
	if len(devices) < 3 {
		t.Fatalf("probe enrolled only %d senders, need 3", len(devices))
	}
	approve, reject := devices[0], devices[1]

	// Gated run: same trace, every promotion waits on the HTTP verdict.
	site := NewSite("gate", SiteOptions{Window: testWindow})
	trainer := dot11fp.NewTrainer(cfg, dot11fp.MeasureCosine, dot11fp.TrainerOptions{
		Policy: dot11fp.EnrollConfirm, Decide: site.Gate().Decide,
	})
	eng, err := dot11fp.NewEngine(cfg, nil, dot11fp.EngineOptions{
		Window: testWindow, Sink: site.Sink(nil), Trainer: trainer,
	})
	if err != nil {
		t.Fatal(err)
	}
	site.Attach(eng, trainer, nil, cmdutil.References{})
	_, ts := serveSites(t, Options{}, site)

	// Verdicts may be posted before the sender completes its horizon —
	// the gate holds them until the trainer asks.
	if code := postJSON(t, ts.URL+"/api/v1/sites/gate/enroll/"+approve.String(), `{"decision":"approve"}`, nil); code != http.StatusAccepted {
		t.Fatalf("approve: status %d, want 202", code)
	}
	if code := postJSON(t, ts.URL+"/api/v1/sites/gate/enroll/"+reject.String(), `{"decision":"reject"}`, nil); code != http.StatusAccepted {
		t.Fatalf("reject: status %d, want 202", code)
	}
	// A second verdict for a sender still pending one is a conflict.
	if code := postJSON(t, ts.URL+"/api/v1/sites/gate/enroll/"+approve.String(), `{"decision":"reject"}`, nil); code != http.StatusConflict {
		t.Fatalf("duplicate verdict: status %d, want 409", code)
	}
	if code := postJSON(t, ts.URL+"/api/v1/sites/gate/enroll/"+approve.String(), `{"decision":"maybe"}`, nil); code != http.StatusBadRequest {
		t.Fatalf("bad decision: status %d, want 400", code)
	}

	eng.PushTrace(tr)
	eng.Close()

	db := trainer.Database()
	if db.Signature(approve) == nil {
		t.Fatalf("approved sender %s never enrolled", approve)
	}
	if db.Signature(reject) != nil {
		t.Fatalf("rejected sender %s enrolled anyway", reject)
	}
	if st := trainer.Stats(); st.Rejected != 1 {
		t.Fatalf("trainer rejected %d senders, want exactly the posted one", st.Rejected)
	}

	// Everyone else was deferred: still pending, visible as offers
	// awaiting a verdict.
	var enroll struct {
		Pending []enrollEntry `json:"pending"`
		Offers  []enrollEntry `json:"offers"`
	}
	if code := getJSON(t, ts.URL+"/api/v1/sites/gate/enroll", &enroll); code != http.StatusOK {
		t.Fatalf("enroll listing: status %d", code)
	}
	if len(enroll.Offers) == 0 {
		t.Fatal("no unanswered offers listed")
	}
	for _, o := range enroll.Offers {
		if o.Addr == approve.String() || o.Addr == reject.String() {
			t.Fatalf("answered sender %s still listed as an offer", o.Addr)
		}
	}
}

// TestPushZeroAllocsWithServerAttached pins that serving does not tax
// the hot path: with the site's taps in the sink chain and a live SSE
// subscriber, pushing a frame inside an open window still allocates
// nothing — the server only acts at window close.
func TestPushZeroAllocsWithServerAttached(t *testing.T) {
	cfg := dot11fp.DefaultConfig(dot11fp.ParamInterArrival)
	db := dot11fp.NewDatabase(cfg, dot11fp.MeasureCosine)
	site := NewSite("hot", SiteOptions{Window: 24 * time.Hour})
	eng, err := dot11fp.NewEngine(cfg, db.Compile(), dot11fp.EngineOptions{
		Window: 24 * time.Hour, Sink: site.Sink(nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	site.Attach(eng, nil, nil, cmdutil.References{DB: db})
	sub := site.Feed().Subscribe()
	defer sub.Close()

	ap := dot11.LocalAddr(1000)
	recs := make([]dot11fp.Record, 240)
	for i := range recs {
		recs[i] = dot11fp.Record{
			T: (int64(i) * 250_000) % 3_600_000_000, Sender: dot11.LocalAddr(uint64(1 + i%3)),
			Receiver: ap, Class: dot11.ClassData, Size: 300, RateMbps: 24, FCSOK: true,
		}
	}
	// Establish the open window's senders and histograms.
	for i := range recs {
		eng.Push(&recs[i])
	}
	allocs := testing.AllocsPerRun(20, func() {
		for i := range recs {
			eng.Push(&recs[i])
		}
	})
	if allocs != 0 {
		t.Fatalf("push with server attached allocated %v times per sweep, want 0", allocs)
	}
	eng.Close()
}
