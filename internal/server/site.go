// Package server is fingerprinting as a service: an HTTP face over the
// streaming engines — a JSON query API ("who is sender X"), a
// server-sent-events verdict feed, remote checkpoint save/load, and
// Prometheus-text metrics — multi-tenant over named sites, each site
// one engine plus its reference set and (optionally) its online
// trainer. See the doc.go "Serving" section of the root package for
// the endpoint map and the security posture (trusted networks only).
//
// The server never touches the engines' hot path: everything it serves
// comes from the snapshot surfaces (Stats, Health, TrainerStats,
// SourceStats), from a verdict cache fed at window close, or from a
// one-shot batch engine of its own. Its sinks are attached in front of
// the daemon's own, record verdicts by reference (events are owned by
// the receiver), and fan out to SSE clients through non-blocking
// per-client buffers — a slow or dead HTTP client can never stall the
// pipeline, it only loses (counted) events.
package server

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"dot11fp"
	"dot11fp/internal/checkpoint"
	"dot11fp/internal/cmdutil"
)

// EngineHandle is the slice of an engine the server needs: snapshots,
// configuration, and the reference views — all safe from any
// goroutine. *dot11fp.Engine and *dot11fp.ShardedEngine both implement
// it.
type EngineHandle interface {
	Stats() dot11fp.EngineStats
	Health() dot11fp.EngineHealth
	Config() dot11fp.Config
	Configs() []dot11fp.Config
	DB() *dot11fp.CompiledDB
	EnsembleDB() *dot11fp.CompiledEnsemble
	SetDB(*dot11fp.CompiledDB) error
	SetEnsembleDB(*dot11fp.CompiledEnsemble) error
}

// SiteOptions parameterises one site.
type SiteOptions struct {
	// Window and Threshold mirror the site's engine configuration; the
	// batch-scoring endpoint runs its one-shot engines with them.
	Window    time.Duration
	Threshold float64
	// CheckpointPath is where the checkpoint endpoints save and load
	// the site's references. The path is server-side configuration —
	// clients never name paths — and empty disables both endpoints.
	CheckpointPath string
	// Checkpoint carries the generation-chain options for saves and
	// loads on CheckpointPath.
	Checkpoint checkpoint.Options
	// FeedBuffer is each SSE client's event buffer (events encoded and
	// queued, not yet written). Zero selects 256.
	FeedBuffer int
	// MaxSenders bounds the verdict cache; beyond it the entry with the
	// oldest window (ties by ascending address) is evicted, so MAC
	// randomization cannot grow the server without bound. Zero selects
	// 4096.
	MaxSenders int
	// MaxBatchBytes bounds an uploaded pcap for batch scoring. Zero
	// selects 64 MiB.
	MaxBatchBytes int64
}

// Site is one tenant: an engine, its reference set, optionally its
// trainer and capture sources, plus the server-side state serving them
// — the verdict cache, the SSE fanout and the enrollment gate. Create
// it before the engine (the engine's Sink is fixed at construction and
// must include the site's — see Sink), then Attach the built engine.
type Site struct {
	name string
	opts SiteOptions

	mu       sync.RWMutex
	eng      EngineHandle
	trainer  *dot11fp.Trainer
	srcStats func() []dot11fp.SourceStats
	refsFn   func() cmdutil.References

	rec  *recorder
	feed *Fanout
	gate *EnrollGate

	// ckptMu serialises checkpoint saves and loads so two API calls (or
	// a call racing the daemon's own SIGHUP save through the same
	// generation chain) cannot interleave rotations.
	ckptMu sync.Mutex
}

// NewSite creates a site. The name is its routing key under
// /api/v1/sites/{site}.
func NewSite(name string, opts SiteOptions) *Site {
	if opts.FeedBuffer <= 0 {
		opts.FeedBuffer = 256
	}
	if opts.MaxSenders <= 0 {
		opts.MaxSenders = 4096
	}
	if opts.MaxBatchBytes <= 0 {
		opts.MaxBatchBytes = 64 << 20
	}
	if opts.Window <= 0 {
		opts.Window = dot11fp.DefaultWindow
	}
	return &Site{
		name: name,
		opts: opts,
		rec:  newRecorder(opts.MaxSenders),
		feed: NewFanout(opts.FeedBuffer),
		gate: NewEnrollGate(),
	}
}

// Name returns the site's routing key.
func (s *Site) Name() string { return s.name }

// Feed returns the site's SSE fanout.
func (s *Site) Feed() *Fanout { return s.feed }

// Gate returns the site's enrollment gate — wire its Decide into
// TrainerOptions.Decide (or cmdutil.EnrollFlags.Decide) to route
// confirm-mode enrollment through the HTTP API.
func (s *Site) Gate() *EnrollGate { return s.gate }

// Sink wraps next with the site's event taps: the verdict cache and
// the SSE fanout see every event first, then next (which may be nil).
// Pass the result as the engine's Options.Sink. Both taps are cheap
// and non-blocking — the cache only acts at window close (the hot push
// path never reaches a sink), and the fanout drops rather than waits.
func (s *Site) Sink(next dot11fp.Sink) dot11fp.Sink {
	//fp:mayblock bounded taps: verdict cache and drop-on-full fanout hold short mutexes and never wait on a consumer
	return dot11fp.SinkFunc(func(ev dot11fp.Event) {
		s.rec.observe(ev)
		s.feed.Publish(ev)
		if next != nil {
			next.HandleEvent(ev)
		}
	})
}

// Attach binds the running engine and its companions to the site.
// trainer may be nil (no online enrollment); srcStats may be nil (no
// supervised capture sources — e.g. livemon's single stream). The
// site's reference snapshot for checkpoints comes from the trainer
// when one is attached (the live, learning copy), else from static —
// which may be empty for reference-less runs.
func (s *Site) Attach(eng EngineHandle, trainer *dot11fp.Trainer, srcStats func() []dot11fp.SourceStats, static cmdutil.References) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.eng = eng
	s.trainer = trainer
	s.srcStats = srcStats
	if trainer != nil {
		s.refsFn = func() cmdutil.References {
			return cmdutil.References{DB: trainer.Database(), Ens: trainer.Ensemble()}
		}
	} else {
		s.refsFn = func() cmdutil.References { return static }
	}
}

// engine returns the attached engine, or an error before Attach.
func (s *Site) engine() (EngineHandle, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.eng == nil {
		return nil, fmt.Errorf("site %q has no engine attached", s.name)
	}
	return s.eng, nil
}

// FeedStats is the SSE fanout's snapshot, part of SiteSnapshot.
type FeedStats struct {
	// Clients is the number of connected feed subscribers.
	Clients int `json:"clients"`
	// Events counts events published to the feed (whether or not any
	// client was connected); Dropped counts per-client discards from
	// full buffers, summed over clients past and present.
	Events  uint64 `json:"events"`
	Dropped uint64 `json:"dropped"`
}

// SiteSnapshot is the canonical point-in-time view of one site — the
// single shape behind both the JSON site endpoint and the /metrics
// encoder, so the two can never drift.
type SiteSnapshot struct {
	Site string `json:"site"`
	// Params are the engine's parameter short names (>1 = fusion);
	// WindowNS and Threshold the detection configuration.
	Params    []string `json:"params"`
	WindowNS  int64    `json:"window_ns"`
	Threshold float64  `json:"threshold"`
	// Refs is the current reference count; Degraded the shared
	// cmdutil.Degraded verdict over health and sources.
	Refs     int  `json:"refs"`
	Degraded bool `json:"degraded"`

	Stats   dot11fp.EngineStats   `json:"stats"`
	Health  dot11fp.EngineHealth  `json:"health"`
	Trainer *dot11fp.TrainerStats `json:"trainer,omitempty"`
	Sources []dot11fp.SourceStats `json:"sources,omitempty"`
	Feed    FeedStats             `json:"feed"`
}

// Snapshot builds the canonical site view.
func (s *Site) Snapshot() (SiteSnapshot, error) {
	eng, err := s.engine()
	if err != nil {
		return SiteSnapshot{}, err
	}
	s.mu.RLock()
	trainer, srcStats := s.trainer, s.srcStats
	s.mu.RUnlock()

	snap := SiteSnapshot{
		Site:      s.name,
		WindowNS:  s.opts.Window.Nanoseconds(),
		Threshold: s.opts.Threshold,
		Stats:     eng.Stats(),
		Health:    eng.Health(),
		Feed:      s.feed.Stats(),
	}
	// The sharded engine's Configs() is nil for a single-parameter
	// engine (by contract); fall back to the sole Config.
	cfgs := eng.Configs()
	if len(cfgs) == 0 {
		cfgs = []dot11fp.Config{eng.Config()}
	}
	for _, cfg := range cfgs {
		snap.Params = append(snap.Params, cfg.Param.ShortName())
	}
	switch {
	case eng.EnsembleDB() != nil:
		snap.Refs = eng.EnsembleDB().Len()
	case eng.DB() != nil:
		snap.Refs = eng.DB().Len()
	}
	if trainer != nil {
		st := trainer.Stats()
		snap.Trainer = &st
	}
	if srcStats != nil {
		snap.Sources = srcStats()
	}
	snap.Degraded = cmdutil.Degraded(snap.Health, snap.Sources)
	return snap, nil
}

// SaveCheckpoint writes the site's current references to the
// configured checkpoint path (generation-chained, atomic, verified)
// and returns the reference count written.
func (s *Site) SaveCheckpoint() (int, error) {
	if s.opts.CheckpointPath == "" {
		return 0, fmt.Errorf("site %q has no checkpoint path configured", s.name)
	}
	s.mu.RLock()
	refsFn := s.refsFn
	s.mu.RUnlock()
	if refsFn == nil {
		return 0, fmt.Errorf("site %q has no engine attached", s.name)
	}
	refs := refsFn()
	if refs.Empty() {
		return 0, fmt.Errorf("site %q has no references to checkpoint yet", s.name)
	}
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	if err := cmdutil.SaveReferencesCheckpoint(s.opts.CheckpointPath, refs, s.opts.Checkpoint); err != nil {
		return 0, err
	}
	return refs.Len(), nil
}

// LoadCheckpoint reads the configured checkpoint path (falling back
// through the generation chain) and hot-swaps the references into the
// site's engine, returning the reference count and the generation that
// loaded (0 = the current file). A site with a trainer attached
// refuses: the trainer owns the references there, and swapping the
// engine underneath it would silently diverge the two.
func (s *Site) LoadCheckpoint() (refs int, gen int, err error) {
	if s.opts.CheckpointPath == "" {
		return 0, 0, fmt.Errorf("site %q has no checkpoint path configured", s.name)
	}
	eng, err := s.engine()
	if err != nil {
		return 0, 0, err
	}
	s.mu.RLock()
	trainer := s.trainer
	s.mu.RUnlock()
	if trainer != nil {
		return 0, 0, fmt.Errorf("site %q enrolls online: its trainer owns the references, checkpoint load refused", s.name)
	}
	s.ckptMu.Lock()
	loaded, gen, err := cmdutil.LoadReferencesChain(s.opts.CheckpointPath, s.opts.Checkpoint)
	s.ckptMu.Unlock()
	if err != nil {
		return 0, 0, err
	}
	switch {
	case loaded.Ens != nil:
		err = eng.SetEnsembleDB(loaded.Ens.Compile())
	case loaded.DB != nil:
		err = eng.SetDB(loaded.DB.Compile())
	default:
		err = fmt.Errorf("checkpoint %s held no references", s.opts.CheckpointPath)
	}
	if err != nil {
		return 0, 0, err
	}
	s.mu.Lock()
	s.refsFn = func() cmdutil.References { return loaded }
	s.mu.Unlock()
	return loaded.Len(), gen, nil
}

// Registry routes site names to sites. Sites are added at daemon
// startup; lookups are concurrent with serving.
type Registry struct {
	mu    sync.RWMutex
	sites map[string]*Site
	order []string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{sites: make(map[string]*Site)}
}

// Add registers a site under its name; a duplicate name fails.
func (r *Registry) Add(s *Site) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.sites[s.name]; dup {
		return fmt.Errorf("site %q already registered", s.name)
	}
	r.sites[s.name] = s
	r.order = append(r.order, s.name)
	return nil
}

// Get returns the named site, nil if unknown.
func (r *Registry) Get(name string) *Site {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.sites[name]
}

// List returns the sites in registration order.
func (r *Registry) List() []*Site {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Site, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.sites[name])
	}
	return out
}

// SenderVerdict is the verdict cache's record of one sender: its most
// recent per-window verdict, scores included. Scores follow the
// reference database's insertion order at verdict time (fused, on an
// ensemble site).
type SenderVerdict struct {
	Addr    string `json:"addr"`
	Window  int    `json:"window"`
	Matched bool   `json:"matched"`
	// Best names the winning reference when HasBest (Matched, or an
	// unknown that at least had references to lose against).
	Best         string  `json:"best,omitempty"`
	BestSim      float64 `json:"best_sim"`
	HasBest      bool    `json:"has_best"`
	Observations uint64  `json:"observations"`
	// Scores is the full similarity vector of the verdict (omitted in
	// the senders listing, populated on the single-sender endpoint).
	Scores []SenderScore `json:"scores,omitempty"`
}

// SenderScore is one reference's similarity within a verdict.
type SenderScore struct {
	Ref string  `json:"ref"`
	Sim float64 `json:"sim"`
}

// recorder is the verdict cache: the last verdict per sender, bounded
// by MaxSenders. Events arrive on the engine's delivery goroutine;
// reads come from HTTP handlers.
type recorder struct {
	mu         sync.RWMutex
	max        int
	last       map[dot11fp.Addr]*verdictEntry
	lastWindow int
	haveWindow bool
}

// verdictEntry retains the verdict event's handed-off data (events are
// owned by the receiver; the engine never reuses the score rows).
type verdictEntry struct {
	window  int
	matched bool
	best    dot11fp.Score
	hasBest bool
	obs     uint64
	scores  []dot11fp.Score
}

func newRecorder(max int) *recorder {
	return &recorder{max: max, last: make(map[dot11fp.Addr]*verdictEntry)}
}

// observe folds one engine event into the cache.
func (r *recorder) observe(ev dot11fp.Event) {
	switch ev := ev.(type) {
	case dot11fp.CandidateMatched:
		r.record(ev.Addr, &verdictEntry{
			window: ev.Window, matched: true,
			best: ev.Best, hasBest: true,
			obs: ev.Observations(), scores: ev.Scores,
		})
	case dot11fp.UnknownDevice:
		r.record(ev.Addr, &verdictEntry{
			window: ev.Window,
			best:   ev.Best, hasBest: ev.HasBest,
			obs: ev.Observations(), scores: ev.Scores,
		})
	case dot11fp.WindowClosed:
		r.mu.Lock()
		r.lastWindow, r.haveWindow = ev.Window, true
		r.mu.Unlock()
	}
}

func (r *recorder) record(addr dot11fp.Addr, e *verdictEntry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, present := r.last[addr]; !present && len(r.last) >= r.max {
		r.evict()
	}
	r.last[addr] = e
}

// evict removes the entry with the oldest window (ties by ascending
// address) — deterministic, like every other bounded-state decision in
// the pipeline. Called with mu held.
func (r *recorder) evict() {
	var victim dot11fp.Addr
	found := false
	for addr, e := range r.last {
		if !found {
			victim, found = addr, true
			continue
		}
		v := r.last[victim]
		if e.window < v.window || (e.window == v.window && addrBytesLess(addr, victim)) {
			victim = addr
		}
	}
	if found {
		delete(r.last, victim)
	}
}

func addrBytesLess(a, b dot11fp.Addr) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// get returns one sender's verdict, scores included.
func (r *recorder) get(addr dot11fp.Addr) (SenderVerdict, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.last[addr]
	if !ok {
		return SenderVerdict{}, false
	}
	v := e.verdict(addr)
	v.Scores = make([]SenderScore, len(e.scores))
	for i, sc := range e.scores {
		v.Scores[i] = SenderScore{Ref: sc.Addr.String(), Sim: sc.Sim}
	}
	return v, true
}

// list returns every cached sender's verdict summary (no score
// vectors), in ascending address order.
func (r *recorder) list() []SenderVerdict {
	r.mu.RLock()
	defer r.mu.RUnlock()
	addrs := make([]dot11fp.Addr, 0, len(r.last))
	for addr := range r.last {
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrBytesLess(addrs[i], addrs[j]) })
	out := make([]SenderVerdict, len(addrs))
	for i, addr := range addrs {
		out[i] = r.last[addr].verdict(addr)
	}
	return out
}

// window returns the most recent closed window index.
func (r *recorder) window() (int, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.lastWindow, r.haveWindow
}

func (e *verdictEntry) verdict(addr dot11fp.Addr) SenderVerdict {
	v := SenderVerdict{
		Addr: addr.String(), Window: e.window, Matched: e.matched,
		HasBest: e.hasBest, Observations: e.obs,
	}
	if e.hasBest {
		v.Best, v.BestSim = e.best.Addr.String(), e.best.Sim
	}
	return v
}
