// Package radiotap encodes and decodes Radiotap capture headers
// (https://www.radiotap.org/), the de-facto metadata format a wireless
// card in monitor mode prepends to each received 802.11 frame.
//
// The paper's entire method rests on the fact that the *receiving*
// driver generates these headers, so a sender cannot spoof them: the
// reception timestamp (TSFT), the transmission rate and the frame length
// are exactly the inputs of the five fingerprint parameters. This
// package implements the subset of fields a standard capture produces,
// with the standard per-field alignment rules, and skips unknown fields
// gracefully so that real-world pcaps parse.
package radiotap

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Present-bitmap field indices (radiotap field bit numbers).
const (
	bitTSFT        = 0
	bitFlags       = 1
	bitRate        = 2
	bitChannel     = 3
	bitFHSS        = 4
	bitAntSignal   = 5
	bitAntNoise    = 6
	bitLockQuality = 7
	bitTxAttenua   = 8
	bitDBTxAtten   = 9
	bitDBmTxPower  = 10
	bitAntenna     = 11
	bitDBAntSignal = 12
	bitDBAntNoise  = 13
	bitRxFlags     = 14
	bitExt         = 31
)

// Flags field bits.
const (
	// FlagShortPreamble marks a frame received with the short PLCP preamble.
	FlagShortPreamble = 0x02
	// FlagWEP marks a frame received encrypted.
	FlagWEP = 0x04
	// FlagFCS indicates the frame includes the 4-byte FCS at the end.
	FlagFCS = 0x10
	// FlagBadFCS indicates the frame failed its FCS check.
	FlagBadFCS = 0x40
)

// Channel flags.
const (
	// ChanCCK marks a CCK (802.11b) channel mode.
	ChanCCK = 0x0020
	// ChanOFDM marks an OFDM (802.11a/g) channel mode.
	ChanOFDM = 0x0040
	// Chan2GHz marks a 2.4 GHz band channel.
	Chan2GHz = 0x0080
)

// Header is a decoded (or to-be-encoded) radiotap header. Optional
// fields use Has* booleans rather than pointers so that the zero value
// is a valid empty header.
type Header struct {
	// TSFT is the µs-resolution MAC timestamp sampled at the *end* of
	// reception of the frame — the paper's t_i.
	TSFT    uint64
	HasTSFT bool

	Flags    uint8
	HasFlags bool

	// Rate is the reception rate in 500 kb/s units (e.g. 108 = 54 Mb/s).
	Rate    uint8
	HasRate bool

	// ChannelFreq is the channel centre frequency in MHz.
	ChannelFreq  uint16
	ChannelFlags uint16
	HasChannel   bool

	// AntSignal is the RF signal power in dBm.
	AntSignal    int8
	HasAntSignal bool

	// AntNoise is the RF noise power in dBm.
	AntNoise    int8
	HasAntNoise bool

	Antenna    uint8
	HasAntenna bool

	RxFlags    uint16
	HasRxFlags bool
}

// RateMbps returns the reception rate in Mb/s.
func (h *Header) RateMbps() float64 { return float64(h.Rate) / 2 }

// SetRateMbps stores a rate given in Mb/s (500 kb/s wire granularity).
func (h *Header) SetRateMbps(mbps float64) {
	h.Rate = uint8(mbps*2 + 0.5)
	h.HasRate = true
}

// Errors returned by Decode.
var (
	ErrTruncated   = errors.New("radiotap: truncated header")
	ErrBadVersion  = errors.New("radiotap: unsupported version")
	ErrUnknownBits = errors.New("radiotap: unknown present bits beyond skip table")
)

// fieldSpec gives the wire size and alignment of each known field.
var fieldSpecs = [...]struct{ size, align int }{
	bitTSFT:        {8, 8},
	bitFlags:       {1, 1},
	bitRate:        {1, 1},
	bitChannel:     {4, 2},
	bitFHSS:        {2, 2},
	bitAntSignal:   {1, 1},
	bitAntNoise:    {1, 1},
	bitLockQuality: {2, 2},
	bitTxAttenua:   {2, 2},
	bitDBTxAtten:   {2, 2},
	bitDBmTxPower:  {1, 1},
	bitAntenna:     {1, 1},
	bitDBAntSignal: {1, 1},
	bitDBAntNoise:  {1, 1},
	bitRxFlags:     {2, 2},
}

// align advances off to the next multiple of a.
func align(off, a int) int {
	if r := off % a; r != 0 {
		off += a - r
	}
	return off
}

// Encode serialises the header. The returned slice length is the value
// stored in the header's own length field, so callers can append the
// 802.11 frame directly after it.
func (h *Header) Encode() []byte {
	var present uint32
	type put struct {
		bit int
		fn  func(b []byte)
	}
	var puts []put
	add := func(bit int, fn func(b []byte)) {
		present |= 1 << uint(bit)
		puts = append(puts, put{bit, fn})
	}
	if h.HasTSFT {
		add(bitTSFT, func(b []byte) { binary.LittleEndian.PutUint64(b, h.TSFT) })
	}
	if h.HasFlags {
		add(bitFlags, func(b []byte) { b[0] = h.Flags })
	}
	if h.HasRate {
		add(bitRate, func(b []byte) { b[0] = h.Rate })
	}
	if h.HasChannel {
		add(bitChannel, func(b []byte) {
			binary.LittleEndian.PutUint16(b, h.ChannelFreq)
			binary.LittleEndian.PutUint16(b[2:], h.ChannelFlags)
		})
	}
	if h.HasAntSignal {
		add(bitAntSignal, func(b []byte) { b[0] = uint8(h.AntSignal) })
	}
	if h.HasAntNoise {
		add(bitAntNoise, func(b []byte) { b[0] = uint8(h.AntNoise) })
	}
	if h.HasAntenna {
		add(bitAntenna, func(b []byte) { b[0] = h.Antenna })
	}
	if h.HasRxFlags {
		add(bitRxFlags, func(b []byte) { binary.LittleEndian.PutUint16(b, h.RxFlags) })
	}

	// First pass: compute offsets honouring alignment.
	off := 8 // version(1) + pad(1) + len(2) + present(4)
	offsets := make([]int, len(puts))
	for i, p := range puts {
		spec := fieldSpecs[p.bit]
		off = align(off, spec.align)
		offsets[i] = off
		off += spec.size
	}
	buf := make([]byte, off)
	buf[0] = 0 // version
	binary.LittleEndian.PutUint16(buf[2:4], uint16(off))
	binary.LittleEndian.PutUint32(buf[4:8], present)
	for i, p := range puts {
		p.fn(buf[offsets[i]:])
	}
	return buf
}

// Decode parses a radiotap header from the front of raw. It returns the
// header and the total header length, so raw[n:] is the 802.11 frame.
// Unknown fields within the skip table are skipped; present bits beyond
// it (including vendor namespaces) yield ErrUnknownBits.
func Decode(raw []byte) (Header, int, error) {
	var h Header
	if len(raw) < 8 {
		return h, 0, fmt.Errorf("%w: %d bytes", ErrTruncated, len(raw))
	}
	if raw[0] != 0 {
		return h, 0, fmt.Errorf("%w: %d", ErrBadVersion, raw[0])
	}
	hlen := int(binary.LittleEndian.Uint16(raw[2:4]))
	if hlen < 8 || hlen > len(raw) {
		return h, 0, fmt.Errorf("%w: header len %d, have %d", ErrTruncated, hlen, len(raw))
	}

	// Collect present words (the Ext bit chains additional bitmaps).
	presents := []uint32{binary.LittleEndian.Uint32(raw[4:8])}
	off := 8
	for presents[len(presents)-1]&(1<<bitExt) != 0 {
		if off+4 > hlen {
			return h, 0, fmt.Errorf("%w: chained present word", ErrTruncated)
		}
		presents = append(presents, binary.LittleEndian.Uint32(raw[off:off+4]))
		off += 4
	}
	if len(presents) > 1 {
		// Extra namespaces shift field data in ways we cannot interpret;
		// refuse rather than misparse. Single-word headers cover every
		// capture this project produces and the common real-world ones.
		return h, 0, fmt.Errorf("%w: %d present words", ErrUnknownBits, len(presents))
	}
	present := presents[0]

	for bit := 0; bit < 31; bit++ {
		if present&(1<<uint(bit)) == 0 {
			continue
		}
		if bit >= len(fieldSpecs) || fieldSpecs[bit].size == 0 {
			return h, 0, fmt.Errorf("%w: bit %d", ErrUnknownBits, bit)
		}
		spec := fieldSpecs[bit]
		off = align(off, spec.align)
		if off+spec.size > hlen {
			return h, 0, fmt.Errorf("%w: field bit %d", ErrTruncated, bit)
		}
		b := raw[off : off+spec.size]
		switch bit {
		case bitTSFT:
			h.TSFT = binary.LittleEndian.Uint64(b)
			h.HasTSFT = true
		case bitFlags:
			h.Flags = b[0]
			h.HasFlags = true
		case bitRate:
			h.Rate = b[0]
			h.HasRate = true
		case bitChannel:
			h.ChannelFreq = binary.LittleEndian.Uint16(b)
			h.ChannelFlags = binary.LittleEndian.Uint16(b[2:])
			h.HasChannel = true
		case bitAntSignal:
			h.AntSignal = int8(b[0])
			h.HasAntSignal = true
		case bitAntNoise:
			h.AntNoise = int8(b[0])
			h.HasAntNoise = true
		case bitAntenna:
			h.Antenna = b[0]
			h.HasAntenna = true
		case bitRxFlags:
			h.RxFlags = binary.LittleEndian.Uint16(b)
			h.HasRxFlags = true
		}
		off += spec.size
	}
	return h, hlen, nil
}

// Freq2GHz returns the centre frequency in MHz of a 2.4 GHz channel
// number (1–14), e.g. channel 6 → 2437.
func Freq2GHz(channel int) uint16 {
	if channel == 14 {
		return 2484
	}
	return uint16(2407 + 5*channel)
}
