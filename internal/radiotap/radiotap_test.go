package radiotap

import (
	"encoding/binary"
	"errors"
	"testing"
	"testing/quick"
)

func fullHeader() Header {
	return Header{
		TSFT: 123456789, HasTSFT: true,
		Flags: FlagFCS, HasFlags: true,
		Rate: 108, HasRate: true,
		ChannelFreq: Freq2GHz(6), ChannelFlags: ChanOFDM | Chan2GHz, HasChannel: true,
		AntSignal: -47, HasAntSignal: true,
		AntNoise: -95, HasAntNoise: true,
		Antenna: 1, HasAntenna: true,
		RxFlags: 0, HasRxFlags: true,
	}
}

func TestEncodeDecodeFull(t *testing.T) {
	t.Parallel()
	h := fullHeader()
	raw := h.Encode()
	got, n, err := Decode(raw)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if n != len(raw) {
		t.Fatalf("Decode length = %d, want %d", n, len(raw))
	}
	if got != h {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, h)
	}
}

func TestAlignmentTSFT(t *testing.T) {
	t.Parallel()
	// TSFT is 8-byte aligned and immediately follows the fixed 8-byte
	// preamble, so a TSFT-only header is exactly 16 bytes.
	h := Header{TSFT: 42, HasTSFT: true}
	raw := h.Encode()
	if len(raw) != 16 {
		t.Fatalf("TSFT-only header length = %d, want 16", len(raw))
	}
	if got := binary.LittleEndian.Uint64(raw[8:]); got != 42 {
		t.Fatalf("TSFT on wire = %d, want 42", got)
	}
}

func TestAlignmentChannelAfterFlagsRate(t *testing.T) {
	t.Parallel()
	// Flags(1)+Rate(1) end at offset 10; Channel needs 2-byte alignment,
	// so it sits at 10 with no padding: total 8+1+1+4 = 14.
	h := Header{Flags: 0, HasFlags: true, Rate: 22, HasRate: true,
		ChannelFreq: 2437, ChannelFlags: ChanCCK | Chan2GHz, HasChannel: true}
	raw := h.Encode()
	if len(raw) != 14 {
		t.Fatalf("header length = %d, want 14", len(raw))
	}
	got, _, err := Decode(raw)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.ChannelFreq != 2437 || !got.HasChannel {
		t.Fatalf("channel mismatch: %+v", got)
	}
}

func TestAlignmentPadding(t *testing.T) {
	t.Parallel()
	// Flags(1) at 8, then RxFlags(2-aligned) must pad to 10.
	h := Header{Flags: FlagShortPreamble, HasFlags: true, RxFlags: 7, HasRxFlags: true}
	raw := h.Encode()
	if len(raw) != 12 {
		t.Fatalf("header length = %d, want 12 (1 pad byte)", len(raw))
	}
	got, _, err := Decode(raw)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.RxFlags != 7 {
		t.Fatalf("RxFlags = %d, want 7", got.RxFlags)
	}
}

func TestDecodeErrors(t *testing.T) {
	t.Parallel()
	tests := []struct {
		name string
		raw  []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short", make([]byte, 4), ErrTruncated},
		{"bad version", []byte{9, 0, 8, 0, 0, 0, 0, 0}, ErrBadVersion},
		{"len beyond buffer", []byte{0, 0, 200, 0, 0, 0, 0, 0}, ErrTruncated},
		{"len below minimum", []byte{0, 0, 4, 0, 0, 0, 0, 0}, ErrTruncated},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			if _, _, err := Decode(tt.raw); !errors.Is(err, tt.want) {
				t.Fatalf("Decode error = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestDecodeUnknownBit(t *testing.T) {
	t.Parallel()
	raw := make([]byte, 16)
	binary.LittleEndian.PutUint16(raw[2:4], 16)
	binary.LittleEndian.PutUint32(raw[4:8], 1<<20) // unknown field bit
	if _, _, err := Decode(raw); !errors.Is(err, ErrUnknownBits) {
		t.Fatalf("err = %v, want ErrUnknownBits", err)
	}
}

func TestDecodeChainedPresentRefused(t *testing.T) {
	t.Parallel()
	raw := make([]byte, 16)
	binary.LittleEndian.PutUint16(raw[2:4], 16)
	binary.LittleEndian.PutUint32(raw[4:8], 1<<bitExt)
	if _, _, err := Decode(raw); !errors.Is(err, ErrUnknownBits) {
		t.Fatalf("err = %v, want ErrUnknownBits", err)
	}
}

func TestDecodeSkipsUnrequestedFields(t *testing.T) {
	t.Parallel()
	// A header carrying a field we parse around (lock quality, bit 7) but
	// do not surface: ensure the fields around it still decode correctly.
	// Bit order on the wire: AntSignal (bit 5, offset 8), pad, lock
	// quality (bit 7, 2-aligned, offset 10), RxFlags (bit 14, offset 12).
	raw := make([]byte, 14)
	binary.LittleEndian.PutUint16(raw[2:4], 14)
	binary.LittleEndian.PutUint32(raw[4:8], 1<<bitAntSignal|1<<bitLockQuality|1<<bitRxFlags)
	raw[8] = byte(0xc4)                            // int8(-60)
	binary.LittleEndian.PutUint16(raw[10:12], 99)  // lock quality value
	binary.LittleEndian.PutUint16(raw[12:14], 321) // rx flags
	h, n, err := Decode(raw)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if n != 14 {
		t.Fatalf("n = %d, want 14", n)
	}
	if !h.HasAntSignal || h.AntSignal != -60 {
		t.Fatalf("AntSignal = %d (has=%v), want -60", h.AntSignal, h.HasAntSignal)
	}
	if !h.HasRxFlags || h.RxFlags != 321 {
		t.Fatalf("RxFlags = %d (has=%v), want 321", h.RxFlags, h.HasRxFlags)
	}
}

func TestRateMbps(t *testing.T) {
	t.Parallel()
	var h Header
	h.SetRateMbps(5.5)
	if h.Rate != 11 {
		t.Errorf("5.5 Mbps -> rate units %d, want 11", h.Rate)
	}
	if got := h.RateMbps(); got != 5.5 {
		t.Errorf("RateMbps = %v, want 5.5", got)
	}
	h.SetRateMbps(54)
	if h.Rate != 108 || h.RateMbps() != 54 {
		t.Errorf("54 Mbps -> %d units, %v Mbps", h.Rate, h.RateMbps())
	}
}

func TestFreq2GHz(t *testing.T) {
	t.Parallel()
	tests := []struct {
		ch   int
		want uint16
	}{{1, 2412}, {6, 2437}, {11, 2462}, {13, 2472}, {14, 2484}}
	for _, tt := range tests {
		if got := Freq2GHz(tt.ch); got != tt.want {
			t.Errorf("Freq2GHz(%d) = %d, want %d", tt.ch, got, tt.want)
		}
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	t.Parallel()
	f := func(tsft uint64, flags, rate uint8, sig int8, hasNoise bool, noise int8) bool {
		h := Header{
			TSFT: tsft, HasTSFT: true,
			Flags: flags, HasFlags: true,
			Rate: rate, HasRate: true,
			AntSignal: sig, HasAntSignal: true,
			AntNoise: noise, HasAntNoise: hasNoise,
		}
		if !hasNoise {
			h.AntNoise = 0
		}
		got, n, err := Decode(h.Encode())
		return err == nil && n == len(h.Encode()) && got == h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeWithTrailingPayload(t *testing.T) {
	t.Parallel()
	h := fullHeader()
	raw := append(h.Encode(), []byte("80211-frame-bytes")...)
	got, n, err := Decode(raw)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if string(raw[n:]) != "80211-frame-bytes" {
		t.Fatalf("payload after header corrupted")
	}
	if got.TSFT != h.TSFT {
		t.Fatalf("TSFT = %d, want %d", got.TSFT, h.TSFT)
	}
}
