package radiotap

import (
	"bytes"
	"testing"
)

// FuzzParse hammers Decode with arbitrary bytes — the parser sits
// directly behind pcap input, so every byte sequence a hostile or
// corrupt capture can contain must either decode cleanly or error,
// never panic or over-read. For inputs that do decode, re-encoding the
// decoded header must round-trip: Decode stores exactly the fields
// Encode writes, so a successful parse is self-consistent.
func FuzzParse(f *testing.F) {
	// Seed with real encodings, from minimal to every-field.
	f.Add((&Header{}).Encode())
	full := &Header{
		TSFT: 123456789, HasTSFT: true,
		Flags: FlagFCS | FlagBadFCS, HasFlags: true,
		ChannelFreq: Freq2GHz(6), ChannelFlags: Chan2GHz | ChanOFDM, HasChannel: true,
		AntSignal: -42, HasAntSignal: true,
		AntNoise: -95, HasAntNoise: true,
		Antenna: 1, HasAntenna: true,
		RxFlags: 0x0002, HasRxFlags: true,
	}
	full.SetRateMbps(54)
	f.Add(full.Encode())
	// Truncations, a bogus version, an extended present chain, and an
	// unknown-bit header.
	enc := full.Encode()
	f.Add(enc[:8])
	f.Add(enc[:len(enc)-1])
	f.Add([]byte{1, 0, 8, 0, 0, 0, 0, 0})
	f.Add([]byte{0, 0, 12, 0, 0, 0, 0, 0x80, 0, 0, 0, 0})
	f.Add([]byte{0, 0, 12, 0, 0, 0, 0, 0x40, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, raw []byte) {
		h, n, err := Decode(raw)
		if err != nil {
			return
		}
		if n < 8 || n > len(raw) {
			t.Fatalf("decoded length %d outside [8, %d]", n, len(raw))
		}
		re := h.Encode()
		h2, n2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded header does not decode: %v", err)
		}
		if n2 != len(re) {
			t.Fatalf("re-encoded header length %d, decoded %d", len(re), n2)
		}
		if h2 != h {
			t.Fatalf("round trip drifted:\n got %+v\nwant %+v", h2, h)
		}
	})
}

// FuzzParse finds its way here too: a deterministic spot-check that the
// corpus above round-trips byte-for-byte (Encode is canonical).
func TestEncodeCanonical(t *testing.T) {
	h := &Header{TSFT: 77, HasTSFT: true, AntSignal: -30, HasAntSignal: true}
	enc := h.Encode()
	h2, _, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got := h2.Encode(); !bytes.Equal(got, enc) {
		t.Fatalf("encode not canonical: %x vs %x", got, enc)
	}
}
