package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"dot11fp/internal/capture"
	"dot11fp/internal/dot11"
	"dot11fp/internal/histogram"
)

// Database is the reference database of the detection methodology
// (§IV-B): the signatures Sig(r_i) learned from the training trace.
//
// Matching goes through a compiled snapshot (see Compile and
// CompiledDB) that is built lazily and invalidated by Add/Train, so
// steady-state matching never re-derives reference frequency vectors.
type Database struct {
	cfg      Config
	measure  Measure
	indexing IndexMode // whether Compile builds the match index
	refs     map[dot11.Addr]*Signature
	order    []dot11.Addr // insertion order for deterministic iteration

	mu       sync.Mutex  // guards compiled
	compiled *CompiledDB // lazily built matching snapshot; nil after mutation
}

// NewDatabase creates an empty reference database. The zero Measure
// selects cosine similarity.
func NewDatabase(cfg Config, m Measure) *Database {
	if m == 0 {
		m = MeasureCosine
	}
	return &Database{
		cfg:     cfg.withDefaults(),
		measure: m,
		refs:    make(map[dot11.Addr]*Signature),
	}
}

// Config returns the extraction configuration the database was built with.
func (db *Database) Config() Config { return db.cfg }

// Measure returns the similarity measure in use.
func (db *Database) Measure() Measure { return db.measure }

// SetIndexing selects whether Compile builds the match index (see
// IndexMode; the default IndexAuto builds it for large reference sets).
// Changing the mode invalidates the cached snapshot.
func (db *Database) SetIndexing(mode IndexMode) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.indexing != mode {
		db.indexing = mode
		db.compiled = nil
	}
}

// Indexing returns the database's index mode.
func (db *Database) Indexing() IndexMode {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.indexing
}

// IndexStats describes the compiled snapshot's match index.
func (db *Database) IndexStats() IndexStats { return db.Compile().IndexStats() }

// Len returns the number of reference devices.
func (db *Database) Len() int { return len(db.refs) }

// Devices returns the reference addresses in insertion order.
func (db *Database) Devices() []dot11.Addr {
	out := make([]dot11.Addr, len(db.order))
	copy(out, db.order)
	return out
}

// Signature returns a device's reference signature, or nil. The caller
// may extend the returned signature through its Add/Merge methods;
// Compile detects such mutations via the signature's observation total
// and rebuilds the matching snapshot on next use. (Mutating histograms
// obtained from Signature.Hist directly bypasses the weight bookkeeping
// and is not supported.)
func (db *Database) Signature(addr dot11.Addr) *Signature { return db.refs[addr] }

// Add inserts or merges a reference signature.
func (db *Database) Add(addr dot11.Addr, sig *Signature) error {
	if sig == nil {
		return fmt.Errorf("core: nil signature for %v", addr)
	}
	if sig.Param() != db.cfg.Param {
		return fmt.Errorf("core: signature parameter %v does not match database %v", sig.Param(), db.cfg.Param)
	}
	if sig.bins != db.cfg.Bins {
		return fmt.Errorf("core: signature bin shape %v does not match database %v", sig.bins, db.cfg.Bins)
	}
	db.mu.Lock()
	db.compiled = nil // reference set changes; drop the frozen snapshot
	db.mu.Unlock()
	if existing, ok := db.refs[addr]; ok {
		return existing.Merge(sig)
	}
	db.refs[addr] = sig
	db.order = append(db.order, addr)
	return nil
}

// Clone returns a deep copy of the database: signatures are cloned, so
// the copy can be trained or mutated without touching the original.
// This is the copy-on-write idiom of the online trainer — it clones the
// seed database once and thereafter mutates only its private copy,
// publishing immutable Compile() snapshots to the engines.
func (db *Database) Clone() *Database {
	out := NewDatabase(db.cfg, db.measure)
	out.indexing = db.indexing
	out.order = make([]dot11.Addr, len(db.order))
	copy(out.order, db.order)
	for addr, sig := range db.refs {
		out.refs[addr] = sig.Clone()
	}
	return out
}

// Train populates the database from a training trace, keeping only
// senders that clear the minimum-observation rule. Existing entries for
// the same address are merged, so several training windows can be folded
// into one database. New references are inserted in ascending address
// order so the similarity-vector order is reproducible run to run (and
// matches a Save/Load round trip).
func (db *Database) Train(tr *capture.Trace) error {
	sigs := Extract(tr, db.cfg)
	for _, addr := range sortedAddrs(sigs) {
		if err := db.Add(addr, sigs[addr]); err != nil {
			return err
		}
	}
	return nil
}

// Score is one entry of the similarity vector returned by Match.
type Score struct {
	Addr dot11.Addr
	Sim  float64
}

// Match computes the similarity vector <sim_1 … sim_N> of a candidate
// signature against every reference (Algorithm 1), in insertion order.
// It delegates to the compiled snapshot, whose results are bit-identical
// to evaluating Similarity per pair.
func (db *Database) Match(candidate *Signature) []Score {
	return db.Compile().Match(candidate)
}

// MatchAppend appends the similarity vector to dst and returns the
// extended slice; with a reused buffer the call is allocation-free.
func (db *Database) MatchAppend(candidate *Signature, dst []Score) []Score {
	return db.Compile().MatchAppend(candidate, dst)
}

// TopK returns the k best-matching references, ranked by similarity
// with ties broken toward the earlier insertion index.
func (db *Database) TopK(candidate *Signature, k int) []Score {
	return db.Compile().TopK(candidate, k)
}

// Best returns the arg-max reference for the identification test, with
// ok=false for an empty database.
func (db *Database) Best(candidate *Signature) (Score, bool) {
	return db.Compile().Best(candidate)
}

// Above returns the references whose similarity is at least the
// threshold — the similarity test's returned set.
func (db *Database) Above(candidate *Signature, threshold float64) []Score {
	return db.Compile().Above(candidate, threshold)
}

// --- persistence ---------------------------------------------------------------

// jsonDB is the on-disk database layout.
type jsonDB struct {
	Param   string                                   `json:"param"`
	Measure string                                   `json:"measure"`
	Bins    BinSpec                                  `json:"bins"`
	MinObs  int                                      `json:"min_observations"`
	Devices map[string]map[string]histogram.Snapshot `json:"devices"` // addr -> class -> histogram
}

// Save serialises the database as JSON.
func (db *Database) Save(w io.Writer) error {
	out := jsonDB{
		Param:   db.cfg.Param.ShortName(),
		Measure: db.measure.String(),
		Bins:    db.cfg.Bins,
		MinObs:  db.cfg.MinObservations,
		Devices: make(map[string]map[string]histogram.Snapshot, len(db.refs)),
	}
	for addr, sig := range db.refs {
		classes := make(map[string]histogram.Snapshot, dot11.NumClasses)
		for _, class := range sig.Classes() {
			classes[class.String()] = sig.Hist(class).Snapshot()
		}
		out.Devices[addr.String()] = classes
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Load reads a database written by Save.
func Load(r io.Reader) (*Database, error) {
	var in jsonDB
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("core: decoding database: %w", err)
	}
	param, err := ParamByShortName(in.Param)
	if err != nil {
		return nil, err
	}
	measure, err := MeasureByName(in.Measure)
	if err != nil {
		return nil, err // already carries the package prefix and the valid names
	}
	cfg := Config{Param: param, Bins: in.Bins, MinObservations: in.MinObs}
	db := NewDatabase(cfg, measure)

	classByName := make(map[string]dot11.Class, dot11.NumClasses)
	for c := dot11.Class(0); c < dot11.Class(dot11.NumClasses); c++ {
		classByName[c.String()] = c
	}
	// Sort addresses for a deterministic insertion order.
	addrs := make([]string, 0, len(in.Devices))
	for a := range in.Devices { //fp:unordered keys are sorted below; insertion order is deterministic
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	for _, as := range addrs {
		addr, err := dot11.ParseAddr(as)
		if err != nil {
			return nil, fmt.Errorf("core: device address: %w", err)
		}
		sig := NewSignature(param, cfg.Bins)
		for cs, snap := range in.Devices[as] {
			class, ok := classByName[cs]
			if !ok {
				return nil, fmt.Errorf("core: unknown frame class %q", cs)
			}
			h, err := histogram.FromSnapshot(snap)
			if err != nil {
				return nil, fmt.Errorf("core: device %s class %s: %w", as, cs, err)
			}
			if h.BinWidth() != cfg.Bins.Width || h.Bins() != cfg.Bins.Bins {
				return nil, fmt.Errorf("core: device %s class %s: histogram shape %d×%v does not match database %v",
					as, cs, h.Bins(), h.BinWidth(), cfg.Bins)
			}
			sig.setHist(class, h)
		}
		if err := db.Add(addr, sig); err != nil {
			return nil, err
		}
	}
	return db, nil
}
