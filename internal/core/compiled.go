package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"dot11fp/internal/dot11"
	"dot11fp/internal/histogram"
)

// CompiledDB is an immutable, matching-optimised snapshot of a
// Database. Compilation freezes every reference signature into
// contiguous per-class [N×bins]float64 frequency matrices with the
// per-reference weights and Euclidean norms precomputed, so matching a
// candidate costs one frequency conversion per candidate class plus one
// dot product per (class, reference) pair — no allocation, no repeated
// normalisation of immutable reference data. Results are bit-identical
// to the naive per-pair Similarity path: the same values flow through
// the same floating-point operations in the same order.
//
// A CompiledDB is safe for concurrent use; each goroutine needs its own
// MatchScratch for the zero-allocation entry points.
type CompiledDB struct {
	cfg     Config
	measure Measure
	addrs   []dot11.Addr
	index   map[dot11.Addr]int // addr → position in addrs
	totals  []uint64           // per reference: observation total at compile time
	bins    int
	classes [dot11.NumClasses]compiledClass
	idx     *matchIndex // sparse match index (see index.go); nil on the dense path

	scratch sync.Pool // *MatchScratch, for the scratchless conveniences
}

// compiledClass is the frozen per-frame-class reference data. For
// cosine — scale-invariant, so it can skip the frequency conversion —
// rows hold the raw counts pre-converted to float64 (exact: counts are
// far below 2^53), keeping the inner loop a pure float dot product
// while staying bit-identical to the count-domain CosineCounts kernel.
// The other measures freeze frequency rows.
type compiledClass struct {
	present bool      // at least one reference carries this class
	has     []bool    // per reference: class present in its signature
	rows    []float64 // N×bins row-major matrix: float64 counts (cosine) or frequencies; nil when indexed
	norms   []float64 // per reference: Euclidean norm of its count row (cosine only)
	weights []float64 // per reference: weight^ftype (Definition 1)
}

// MatchScratch holds the reusable buffers of the zero-allocation match
// path. The zero value is ready to use; buffers grow on first use and
// are retained across calls. A scratch must not be shared between
// concurrent MatchInto calls.
type MatchScratch struct {
	freqs  []float64
	scores []Score
	l1nz   []int32      // candidate support scratch for the indexed L1 kernel
	search *searchState // pruned-search buffers, allocated on first TopK/Best/Above
}

// Compile freezes the database's current references into a CompiledDB.
// The snapshot is cached: repeated calls return the same CompiledDB
// until the reference set changes. Staleness is detected by comparing
// per-reference observation totals (every matching-relevant signature
// mutation — Add, Train, or mutating a signature obtained from
// Signature — grows some histogram count and with it the total), so
// the check costs O(N) instead of a recompile.
func (db *Database) Compile() *CompiledDB {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.compiled == nil || !db.compiled.fresh(db) {
		db.compiled = compile(db)
	}
	return db.compiled
}

// fresh reports whether the snapshot still reflects the live references.
func (c *CompiledDB) fresh(db *Database) bool {
	if len(c.addrs) != len(db.order) {
		return false
	}
	for r, addr := range c.addrs {
		if db.refs[addr].total != c.totals[r] {
			return false
		}
	}
	return true
}

// compile builds the frozen matrices from the live reference map. When
// the database's IndexMode selects indexing (explicitly, or automatically
// at indexAutoMin references), the dense row matrices are not built at
// all: the sparse index carries the same values and the indexed kernels
// reproduce the dense results bit for bit at a fraction of the memory.
func compile(db *Database) *CompiledDB {
	n := len(db.order)
	cosine := db.measure.isCosine()
	indexed := db.indexing == IndexOn || (db.indexing == IndexAuto && n >= indexAutoMin)
	c := &CompiledDB{
		cfg:     db.cfg,
		measure: db.measure,
		addrs:   make([]dot11.Addr, n),
		index:   make(map[dot11.Addr]int, n),
		totals:  make([]uint64, n),
		bins:    db.cfg.Bins.Bins,
	}
	copy(c.addrs, db.order)
	for r, addr := range c.addrs {
		c.index[addr] = r
		c.totals[r] = db.refs[addr].total
	}
	for ci := range c.classes {
		class := dot11.Class(ci)
		cc := &c.classes[ci]
		for r, addr := range db.order {
			sig := db.refs[addr]
			h := sig.Hist(class)
			if h == nil {
				continue
			}
			if !cc.present {
				cc.present = true
				cc.has = make([]bool, n)
				cc.weights = make([]float64, n)
				if !indexed {
					cc.rows = make([]float64, n*c.bins)
				}
				if cosine {
					cc.norms = make([]float64, n)
				}
			}
			cc.has[r] = true
			cc.weights[r] = sig.Weight(class)
			if cosine {
				cc.norms[r] = histogram.CountNorm(h.CountsView())
			}
			if indexed {
				continue
			}
			row := cc.rows[r*c.bins : (r+1)*c.bins]
			if cosine {
				for i, v := range h.CountsView() {
					row[i] = float64(v)
				}
			} else {
				h.AppendFreqs(row[:0:c.bins])
			}
		}
	}
	if indexed {
		c.idx = buildIndex(db, c)
	}
	return c
}

// Config returns the extraction configuration the database was built with.
func (c *CompiledDB) Config() Config { return c.cfg }

// Measure returns the similarity measure in use.
func (c *CompiledDB) Measure() Measure { return c.measure }

// Len returns the number of reference devices.
func (c *CompiledDB) Len() int { return len(c.addrs) }

// Devices returns the reference addresses in insertion order.
func (c *CompiledDB) Devices() []dot11.Addr {
	out := make([]dot11.Addr, len(c.addrs))
	copy(out, c.addrs)
	return out
}

// MatchInto computes the similarity vector of a candidate against every
// reference (Algorithm 1, insertion order) into the scratch buffers and
// returns a slice aliasing scratch.scores. It performs no allocation
// once the scratch has warmed up; the result is only valid until the
// scratch's next use.
//
//fp:hotpath test=TestMatchIntoZeroAlloc
func (c *CompiledDB) MatchInto(candidate *Signature, scratch *MatchScratch) []Score {
	n := len(c.addrs)
	if cap(scratch.scores) < n {
		scratch.scores = make([]Score, n)
	}
	if c.idx != nil {
		return c.matchIndexed(candidate, scratch)
	}
	scores := scratch.scores[:n]
	for r, addr := range c.addrs {
		scores[r] = Score{Addr: addr}
	}
	if candidate == nil {
		return scores
	}
	// Ascending class order mirrors Signature.Classes(), so every
	// reference accumulates its per-class contributions in the same
	// order as the naive Similarity loop.
	for ci := range c.classes {
		cc := &c.classes[ci]
		if !cc.present {
			continue
		}
		ch := candidate.Hist(dot11.Class(ci))
		if ch == nil || ch.Bins() != c.bins {
			// Absent from the candidate, or a shape mismatch on which
			// every similarity measure evaluates to zero.
			continue
		}
		switch c.measure {
		case MeasureIntersection, MeasureBhattacharyya, MeasureL1:
			cf := ch.AppendFreqs(scratch.freqs[:0])
			scratch.freqs = cf // keep the grown buffer for the next class
			c.accumulate(scores, cc, cf, c.measure.fn())
		default:
			// Count domain, like the naive cosine path. The candidate
			// counts are converted to float64 once (exact, so the bits
			// cannot differ from converting inside the dot product) and
			// the candidate norm is hoisted out of the reference loop.
			cf := scratch.freqs[:0]
			for _, v := range ch.CountsView() {
				cf = append(cf, float64(v))
			}
			scratch.freqs = cf
			cn := histogram.CountNorm(ch.CountsView())
			for r := range c.addrs {
				if !cc.has[r] {
					continue
				}
				row := cc.rows[r*c.bins : (r+1)*c.bins]
				scores[r].Sim += cc.weights[r] * histogram.CosineNormed(cf, row, cn, cc.norms[r])
			}
		}
	}
	return scores
}

// accumulate applies a generic frequency-domain measure across every
// reference row that carries the class.
func (c *CompiledDB) accumulate(scores []Score, cc *compiledClass, cf []float64, f func(a, b []float64) float64) {
	for r := range scores {
		if !cc.has[r] {
			continue
		}
		scores[r].Sim += cc.weights[r] * f(cf, cc.rows[r*c.bins:(r+1)*c.bins])
	}
}

// getScratch pops a pooled scratch for the scratchless conveniences.
func (c *CompiledDB) getScratch() *MatchScratch {
	if s, ok := c.scratch.Get().(*MatchScratch); ok {
		return s
	}
	return &MatchScratch{}
}

// Match computes the similarity vector into a freshly allocated slice.
func (c *CompiledDB) Match(candidate *Signature) []Score {
	return c.MatchAppend(candidate, make([]Score, 0, len(c.addrs)))
}

// MatchAppend appends the similarity vector to dst and returns the
// extended slice — the allocation-free form of Match for callers that
// reuse a result buffer across windows (append-style, like
// histogram.AppendFreqs). It routes through the pooled scratch, so a
// warmed dst[:0] with capacity ≥ Len() makes the call allocation-free.
func (c *CompiledDB) MatchAppend(candidate *Signature, dst []Score) []Score {
	s := c.getScratch()
	dst = append(dst, c.MatchInto(candidate, s)...)
	c.scratch.Put(s)
	return dst
}

// Best returns the arg-max reference for the identification test, with
// ok=false for an empty database. With the index enabled this is a
// pruned top-1 search; the result is bit-identical to the full scan.
func (c *CompiledDB) Best(candidate *Signature) (Score, bool) {
	s := c.getScratch()
	defer c.scratch.Put(s)
	if c.idx != nil {
		top := c.topKIndexed(candidate, 1, s.ensureSearch(len(c.addrs)))
		if len(top) == 0 {
			return Score{Sim: -1}, false
		}
		best := Score{Addr: c.addrs[top[0].ref], Sim: top[0].sim}
		return best, best.Sim >= 0
	}
	best := Score{Sim: -1}
	for _, sc := range c.MatchInto(candidate, s) {
		if sc.Sim > best.Sim {
			best = sc
		}
	}
	return best, best.Sim >= 0
}

// Above returns the references whose similarity is at least the
// threshold — the similarity test's returned set, in insertion order.
// A positive threshold with the index enabled takes the pruned walk;
// the returned set, order and scores are bit-identical either way.
func (c *CompiledDB) Above(candidate *Signature, threshold float64) []Score {
	s := c.getScratch()
	defer c.scratch.Put(s)
	if c.idx != nil && threshold > 0 {
		return c.aboveIndexed(candidate, threshold, s.ensureSearch(len(c.addrs)))
	}
	var out []Score
	for _, sc := range c.MatchInto(candidate, s) {
		if sc.Sim >= threshold {
			out = append(out, sc)
		}
	}
	return out
}

// TopKInto returns the k best-matching references ranked by similarity
// (ties broken toward the earlier insertion index — the same reference
// Best would pick), writing into the scratch's buffers; the result is
// only valid until the scratch's next use. With the index enabled the
// search is pruned; scores, order and ties are bit-identical to ranking
// the exhaustive similarity vector. k is clamped to Len(); k <= 0
// returns nil.
func (c *CompiledDB) TopKInto(candidate *Signature, k int, scratch *MatchScratch) []Score {
	n := len(c.addrs)
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	st := scratch.ensureSearch(n)
	var top []topEntry
	if c.idx != nil {
		top = c.topKIndexed(candidate, k, st)
	} else {
		st.top = st.top[:0]
		for r, sc := range c.MatchInto(candidate, scratch) {
			st.top, _ = offerTop(st.top, k, sc.Sim, int32(r))
		}
		top = st.top
	}
	out := st.out[:0]
	for _, e := range top {
		out = append(out, Score{Addr: c.addrs[e.ref], Sim: e.sim})
	}
	st.out = out
	return out
}

// TopK is the allocating convenience form of TopKInto.
func (c *CompiledDB) TopK(candidate *Signature, k int) []Score {
	s := c.getScratch()
	defer c.scratch.Put(s)
	res := c.TopKInto(candidate, k, s)
	if res == nil {
		return nil
	}
	out := make([]Score, len(res))
	copy(out, res)
	return out
}

// TopKAllScratch ranks a batch of candidates through one long-lived
// scratch, returning min(k, Len()) scores per candidate in one backing
// allocation. Row i is exactly TopK(cands[i].Sig, k).
func (c *CompiledDB) TopKAllScratch(cands []Candidate, k int, scratch *MatchScratch) [][]Score {
	out := make([][]Score, len(cands))
	if len(cands) == 0 {
		return out
	}
	kk := min(k, len(c.addrs))
	if kk <= 0 {
		return out
	}
	backing := make([]Score, len(cands)*kk)
	for i := range cands {
		res := c.TopKInto(cands[i].Sig, k, scratch)
		row := backing[i*kk : i*kk+len(res) : (i+1)*kk]
		copy(row, res)
		out[i] = row
	}
	return out
}

// TopKAllWorkers is TopKAllScratch fanned out across workers (0 selects
// GOMAXPROCS, 1 forces the serial path); results are identical for
// every worker count.
func (c *CompiledDB) TopKAllWorkers(cands []Candidate, k, workers int) [][]Score {
	out := make([][]Score, len(cands))
	if len(cands) == 0 {
		return out
	}
	kk := min(k, len(c.addrs))
	if kk <= 0 {
		return out
	}
	backing := make([]Score, len(cands)*kk)
	ForEachIndex(len(cands), workers, func(scratch *MatchScratch, i int) {
		res := c.TopKInto(cands[i].Sig, k, scratch)
		row := backing[i*kk : i*kk+len(res) : (i+1)*kk]
		copy(row, res)
		out[i] = row
	})
	return out
}

// IndexStats describes the snapshot's match index; Enabled is false on
// the dense path, where DenseBytes reports the matrices actually held.
func (c *CompiledDB) IndexStats() IndexStats {
	if c.idx != nil {
		return c.idx.stats
	}
	st := IndexStats{References: len(c.addrs)}
	for ci := range c.classes {
		if c.classes[ci].present {
			st.DenseBytes += int64(len(c.addrs)) * int64(c.bins) * 8
		}
	}
	return st
}

// MatchAll matches a batch of candidates, fanning the work out across
// GOMAXPROCS workers. Row i of the result is exactly Match(cands[i].Sig)
// — worker scheduling cannot affect the output, because every row is
// computed independently and written at its own index. All rows share
// one backing allocation.
func (c *CompiledDB) MatchAll(cands []Candidate) [][]Score {
	return c.MatchAllWorkers(cands, 0)
}

// MatchAllWorkers is MatchAll with an explicit worker cap (0 selects
// GOMAXPROCS, 1 forces the serial path). Results are identical for
// every worker count.
func (c *CompiledDB) MatchAllWorkers(cands []Candidate, workers int) [][]Score {
	out := make([][]Score, len(cands))
	if len(cands) == 0 {
		return out
	}
	backing := make([]Score, len(cands)*len(c.addrs))
	ForEachIndex(len(cands), workers, func(scratch *MatchScratch, i int) {
		row := backing[i*len(c.addrs) : (i+1)*len(c.addrs) : (i+1)*len(c.addrs)]
		copy(row, c.MatchInto(cands[i].Sig, scratch))
		out[i] = row
	})
	return out
}

// MatchAllScratch is the serial, caller-scratch form of MatchAll, built
// for per-shard reuse: one long-lived scratch per shard amortises the
// internal buffers across every window, while the returned rows (one
// backing allocation per call) are handed off to the caller and never
// aliased again. Row i is exactly Match(cands[i].Sig).
func (c *CompiledDB) MatchAllScratch(cands []Candidate, scratch *MatchScratch) [][]Score {
	out := make([][]Score, len(cands))
	if len(cands) == 0 {
		return out
	}
	n := len(c.addrs)
	backing := make([]Score, len(cands)*n)
	for i := range cands {
		row := backing[i*n : (i+1)*n : (i+1)*n]
		copy(row, c.MatchInto(cands[i].Sig, scratch))
		out[i] = row
	}
	return out
}

// ForEachIndex runs fn(scratch, i) for every i in [0, n) across the
// given number of workers (0 ⇒ GOMAXPROCS, 1 ⇒ inline serial). Each
// worker owns one MatchScratch, so fn can use the zero-allocation
// matching entry points directly. Every index is processed exactly once
// and independently; as long as fn's writes are index-disjoint, the
// aggregate effect is identical for any worker count — the fan-out
// changes wall-clock time, never results.
func ForEachIndex(n, workers int, fn func(scratch *MatchScratch, i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		var scratch MatchScratch
		for i := 0; i < n; i++ {
			fn(&scratch, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var scratch MatchScratch
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(&scratch, i)
			}
		}()
	}
	wg.Wait()
}
