package core

import (
	"fmt"

	"dot11fp/internal/capture"
	"dot11fp/internal/dot11"
	"dot11fp/internal/histogram"
)

// Signature is a device signature per Definition 1: one
// percentage-frequency histogram per frame type, each weighted by the
// frame type's share of the device's observations.
//
// The per-class histograms live inline in a fixed array indexed by
// frame class (a slot with zero bins is absent), so the extraction hot
// path costs an array index per observation instead of a map lookup,
// and a signature needs one allocation for itself plus one count slice
// per class actually observed.
type Signature struct {
	param Param
	bins  BinSpec
	hists [dot11.NumClasses]histogram.Histogram // value slots; Bins()==0 marks an absent class
	nhist int                                   // number of present classes
	total uint64
}

// NewSignature creates an empty signature for a parameter and bin shape.
//
//fp:coldpath constructor; runs once per sender admission, amortised across the sender's frames
func NewSignature(param Param, bins BinSpec) *Signature {
	return &Signature{param: param, bins: bins}
}

// Param returns the parameter the signature is built from.
func (s *Signature) Param() Param { return s.param }

// Add records one observation for a frame class, applying the bin
// spec's scale transform.
func (s *Signature) Add(class dot11.Class, v float64) {
	h := &s.hists[class]
	if h.Bins() == 0 {
		h.Init(s.bins.Bins, s.bins.Width)
		s.nhist++
	}
	before := h.Total()
	h.Add(s.bins.Transform(v))
	s.total += h.Total() - before
}

// Observations returns the total observation count |P(s)| across frame
// types — the quantity the ≥50-observation rule applies to (§V-C).
func (s *Signature) Observations() uint64 { return s.total }

// Classes returns the frame classes present, in stable order.
func (s *Signature) Classes() []dot11.Class {
	out := make([]dot11.Class, 0, s.nhist)
	for c := range s.hists {
		if s.hists[c].Bins() != 0 {
			out = append(out, dot11.Class(c))
		}
	}
	return out
}

// Hist returns the histogram for a class, or nil if absent.
func (s *Signature) Hist(class dot11.Class) *histogram.Histogram {
	if int(class) >= len(s.hists) {
		return nil
	}
	h := &s.hists[class]
	if h.Bins() == 0 {
		return nil
	}
	return h
}

// setHist installs a decoded histogram for a class the signature does
// not yet carry; the persistence loaders validate class and shape first.
func (s *Signature) setHist(class dot11.Class, h *histogram.Histogram) {
	s.hists[class] = *h
	s.nhist++
	s.total += h.Total()
}

// Weight returns weight_ftype = |P^ftype| / Σ|P^ftype| (Definition 1).
func (s *Signature) Weight(class dot11.Class) float64 {
	h := s.Hist(class)
	if h == nil || s.total == 0 {
		return 0
	}
	return float64(h.Total()) / float64(s.total)
}

// Clone returns a deep copy of the signature. Used by the online
// trainer to snapshot enrollment state without aliasing live
// histograms.
func (s *Signature) Clone() *Signature {
	c := &Signature{
		param: s.param,
		bins:  s.bins,
		nhist: s.nhist,
		total: s.total,
	}
	for i := range s.hists {
		if s.hists[i].Bins() != 0 {
			c.hists[i] = *s.hists[i].Clone()
		}
	}
	return c
}

// Merge folds other into s (same parameter and bin shape required).
// Used to extend reference signatures with additional training windows.
func (s *Signature) Merge(other *Signature) error {
	if other == nil {
		return nil
	}
	if s.param != other.param || s.bins != other.bins {
		return fmt.Errorf("core: signature shape mismatch: %v/%v vs %v/%v",
			s.param, s.bins, other.param, other.bins)
	}
	for class := range other.hists {
		oh := &other.hists[class]
		if oh.Bins() == 0 {
			continue
		}
		h := &s.hists[class]
		if h.Bins() == 0 {
			s.hists[class] = *oh.Clone()
			s.nhist++
			s.total += oh.Total()
			continue
		}
		before := h.Total()
		if err := h.Merge(oh); err != nil {
			return err
		}
		s.total += h.Total() - before
	}
	return nil
}

// Config parameterises signature extraction.
type Config struct {
	// Param selects the network parameter.
	Param Param
	// Bins shapes the histograms; the zero value selects DefaultBins.
	Bins BinSpec
	// MinObservations is the minimum |P(s)| for a signature to be
	// emitted; the zero value selects the paper's 50 — except for the
	// probe-content parameters, where it selects 8: probe requests are
	// orders of magnitude rarer than data frames, and 50 of them would
	// disqualify every sender in a realistic window.
	MinObservations int
	// KeepBadFCS also attributes frames that failed their checksum.
	// The default (false) matches a real tool: corrupt frames advance
	// the inter-arrival context but are never attributed.
	KeepBadFCS bool
}

// withDefaults materialises default fields.
func (c Config) withDefaults() Config {
	if c.Bins == (BinSpec{}) {
		c.Bins = DefaultBins(c.Param)
	}
	if c.MinObservations == 0 {
		c.MinObservations = 50
		switch c.Param {
		case ParamProbeIE, ParamProbeCap, ParamProbeSSID:
			c.MinObservations = 8
		}
	}
	return c
}

// DefaultConfig returns the paper's configuration for a parameter.
func DefaultConfig(p Param) Config {
	return Config{Param: p}.withDefaults()
}

// Extract builds signatures for every sender in the trace (§IV-A,
// Figure 1): every frame advances the previous-frame context; only
// frames with a known transmitter address contribute attributed values;
// senders with fewer than MinObservations observations are dropped.
func Extract(tr *capture.Trace, cfg Config) map[dot11.Addr]*Signature {
	cfg = cfg.withDefaults()
	// Sized from the record count: real traces carry thousands of frames
	// per sender, so this hint avoids rehashing without overshooting.
	sigs := make(map[dot11.Addr]*Signature, 4+len(tr.Records)/2048)
	var prevT int64 = -1
	// Frames arrive in bursts from one transmitter, so a one-entry cache
	// in front of the sender map absorbs most lookups.
	var lastAddr dot11.Addr
	var lastSig *Signature
	for i := range tr.Records {
		rec := &tr.Records[i]
		if !rec.Sender.IsZero() && (rec.FCSOK || cfg.KeepBadFCS) {
			if v, ok := cfg.Param.Value(rec, prevT); ok {
				sig := lastSig
				if sig == nil || rec.Sender != lastAddr {
					var have bool
					sig, have = sigs[rec.Sender]
					if !have {
						sig = NewSignature(cfg.Param, cfg.Bins)
						sigs[rec.Sender] = sig
					}
					lastAddr, lastSig = rec.Sender, sig
				}
				sig.Add(rec.Class, v)
			}
		}
		prevT = rec.T
	}
	for addr, sig := range sigs {
		if sig.Observations() < uint64(cfg.MinObservations) {
			delete(sigs, addr)
		}
	}
	return sigs
}

// ExtractOne builds the signature of a single sender, regardless of the
// minimum-observation rule (callers decide). Used by the figure
// reproductions and the examples.
func ExtractOne(tr *capture.Trace, sender dot11.Addr, cfg Config) *Signature {
	return ExtractOneFiltered(tr, sender, cfg, nil)
}

// ExtractOneFiltered is ExtractOne with an additional record filter:
// only frames for which keep returns true contribute observations. The
// inter-arrival context still advances over every frame, matching the
// paper's figure methodology ("only data frames transmitted the first
// time and sent at 54 Mbps are shown", Fig. 4).
func ExtractOneFiltered(tr *capture.Trace, sender dot11.Addr, cfg Config, keep func(*capture.Record) bool) *Signature {
	cfg = cfg.withDefaults()
	sig := NewSignature(cfg.Param, cfg.Bins)
	var prevT int64 = -1
	for i := range tr.Records {
		rec := &tr.Records[i]
		if rec.Sender == sender && (rec.FCSOK || cfg.KeepBadFCS) && (keep == nil || keep(rec)) {
			if v, ok := cfg.Param.Value(rec, prevT); ok {
				sig.Add(rec.Class, v)
			}
		}
		prevT = rec.T
	}
	return sig
}
