package core

import (
	"bufio"
	"fmt"
	"io"
)

// Ensemble binary checkpoint container. A fused reference set is N
// member databases that must be restored together — checkpointing them
// as N loose files invites exactly the partial-restore skew Partial
// exists to report. The container is a thin versioned envelope around
// the member databases' own binary codec (SaveBinary/LoadBinary are
// reused verbatim for each member), so the member format evolves in one
// place and the fuzz/corruption hardening of the single-database loader
// covers the container's payload too.
//
// Layout (version 1):
//
//	magic   [8]byte "D11FPENS"
//	version u8      (1)
//	members u8      member count (1..MaxEnsembleMembers)
//	  per member: one complete SaveBinary stream (self-delimiting)
//
// Members are written in parameter order and restored in that order, so
// a round trip reproduces Params() and the fused similarity-vector
// order bit-identically.

// ensembleMagic identifies a binary ensemble container stream. It
// shares the "D11FP" prefix with the single-database magic, so codec
// sniffing reads one 8-byte prefix for both.
var ensembleMagic = [8]byte{'D', '1', '1', 'F', 'P', 'E', 'N', 'S'}

// ensembleBinaryVersion is the current container version.
const ensembleBinaryVersion = 1

// SaveBinary serialises the ensemble in the binary checkpoint
// container: the envelope header followed by every member database in
// its own binary format.
func (e *Ensemble) SaveBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.Write(ensembleMagic[:])
	bw.WriteByte(ensembleBinaryVersion)
	bw.WriteByte(byte(len(e.dbs)))
	if err := bw.Flush(); err != nil {
		return err
	}
	for _, db := range e.dbs {
		if err := db.SaveBinary(w); err != nil {
			return err
		}
	}
	return nil
}

// LoadBinaryEnsemble reads an ensemble written by Ensemble.SaveBinary.
// Corrupt input is reported as a typed error (ErrBinaryDatabase or
// ErrBinaryVersion), exactly like the single-database loader; the
// member set is re-validated (distinct parameters, one measure), so a
// hand-assembled container cannot smuggle in an ensemble the
// constructors would reject.
func LoadBinaryEnsemble(r io.Reader) (*Ensemble, error) {
	br := bufio.NewReader(r)
	var head [10]byte
	if _, err := io.ReadFull(br, head[:]); err != nil {
		return nil, corruptf("reading ensemble header: %v", err)
	}
	if [8]byte(head[:8]) != ensembleMagic {
		return nil, corruptf("bad ensemble magic %q", head[:8])
	}
	if head[8] != ensembleBinaryVersion {
		return nil, fmt.Errorf("%w: ensemble container %d (this build reads version %d)",
			ErrBinaryVersion, head[8], ensembleBinaryVersion)
	}
	n := int(head[9])
	if n < 1 || n > MaxEnsembleMembers {
		return nil, corruptf("ensemble member count %d out of range", n)
	}
	dbs := make([]*Database, n)
	for i := range dbs {
		// LoadBinary consumes exactly its member's bytes: the shared
		// *bufio.Reader is passed through (bufio does not re-wrap an
		// existing reader of sufficient size), so members parse
		// back-to-back.
		db, err := LoadBinary(br)
		if err != nil {
			return nil, fmt.Errorf("core: ensemble member %d: %w", i, err)
		}
		dbs[i] = db
	}
	e, err := NewEnsembleFrom(dbs...)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBinaryDatabase, err)
	}
	return e, nil
}
