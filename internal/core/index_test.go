package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"dot11fp/internal/dot11"
)

// The index property: every match entry point with the index enabled is
// bit-identical — scores, order and ties — to the exhaustive dense
// path. These tests build the same reference set twice (IndexOff vs
// IndexOn) and compare results with math.Float64bits, across all four
// measures, random sparse databases, planted exact ties, disjoint
// supports, and an adversarial candidate whose true best hides behind
// the most common bin.

var allMeasures = []Measure{MeasureCosine, MeasureIntersection, MeasureBhattacharyya, MeasureL1}

var propClasses = []dot11.Class{dot11.ClassData, dot11.ClassQoSData, dot11.ClassNull, dot11.ClassBeacon}

// randSig builds a random sparse signature over nbins: a random subset
// of classes, each with a few random bins, occasionally empty-ish.
func randSig(rng *rand.Rand, spec BinSpec) *Signature {
	sig := NewSignature(ParamInterArrival, spec)
	for _, class := range propClasses {
		if rng.Intn(3) == 0 {
			continue
		}
		nnz := 1 + rng.Intn(6)
		for j := 0; j < nnz; j++ {
			synthAdd(sig, class, rng.Intn(spec.Bins), 1+rng.Intn(5))
		}
	}
	return sig
}

// buildPair adds identical references to an exhaustive and an indexed
// database and returns their compiled snapshots.
func buildPair(t *testing.T, measure Measure, sigs []*Signature) (exh, idx *CompiledDB) {
	t.Helper()
	spec := BinSpec{Width: synthWidth, Bins: 64}
	cfg := Config{Param: ParamInterArrival, Bins: spec, MinObservations: 1}
	dbE := NewDatabase(cfg, measure)
	dbE.SetIndexing(IndexOff)
	dbI := NewDatabase(cfg, measure)
	dbI.SetIndexing(IndexOn)
	for i, sig := range sigs {
		if err := dbE.Add(synthAddr(i), sig.Clone()); err != nil {
			t.Fatal(err)
		}
		if err := dbI.Add(synthAddr(i), sig.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	exh, idx = dbE.Compile(), dbI.Compile()
	if idx.IndexStats().Enabled == (len(sigs) == 0) {
		t.Fatalf("index enabled = %v for %d refs", idx.IndexStats().Enabled, len(sigs))
	}
	return exh, idx
}

func sameScores(t *testing.T, label string, want, got []Score) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d scores, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i].Addr != got[i].Addr || math.Float64bits(want[i].Sim) != math.Float64bits(got[i].Sim) {
			t.Fatalf("%s[%d]: got %v/%x, want %v/%x", label, i,
				got[i].Addr, math.Float64bits(got[i].Sim),
				want[i].Addr, math.Float64bits(want[i].Sim))
		}
	}
}

// exhaustiveTopK ranks a full similarity vector independently of the
// production code: stable sort by (Sim desc, insertion index asc).
func exhaustiveTopK(scores []Score, k int) []Score {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if scores[idx[a]].Sim != scores[idx[b]].Sim {
			return scores[idx[a]].Sim > scores[idx[b]].Sim
		}
		return idx[a] < idx[b]
	})
	if k > len(idx) {
		k = len(idx)
	}
	out := make([]Score, k)
	for i := 0; i < k; i++ {
		out[i] = scores[idx[i]]
	}
	return out
}

func TestIndexBitIdentical(t *testing.T) {
	for _, measure := range allMeasures {
		measure := measure
		t.Run(measure.String(), func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				rng := rand.New(rand.NewSource(seed))
				spec := BinSpec{Width: synthWidth, Bins: 64}
				n := 40 + rng.Intn(80)
				sigs := make([]*Signature, 0, n+2)
				for i := 0; i < n; i++ {
					sigs = append(sigs, randSig(rng, spec))
				}
				// Planted exact ties: two clones of an existing reference.
				sigs = append(sigs, sigs[7].Clone(), sigs[7].Clone())
				exh, idx := buildPair(t, measure, sigs)

				var scratch MatchScratch
				for trial := 0; trial < 12; trial++ {
					var cand *Signature
					switch trial {
					case 0:
						cand = sigs[7].Clone() // exact triple tie at the top
					case 1:
						cand = nil
					case 2:
						cand = NewSignature(ParamInterArrival, spec) // empty
					default:
						cand = randSig(rng, spec)
					}
					want := exh.Match(cand)
					got := idx.Match(cand)
					sameScores(t, "Match", want, got)

					wb, wok := exh.Best(cand)
					gb, gok := idx.Best(cand)
					if wok != gok || wb.Addr != gb.Addr || math.Float64bits(wb.Sim) != math.Float64bits(gb.Sim) {
						t.Fatalf("Best: got %v/%x/%v, want %v/%x/%v",
							gb.Addr, math.Float64bits(gb.Sim), gok, wb.Addr, math.Float64bits(wb.Sim), wok)
					}

					for _, k := range []int{1, 2, 5, len(sigs), len(sigs) + 3} {
						sameScores(t, "TopK(ranked)", exhaustiveTopK(want, k), idx.TopKInto(cand, k, &scratch))
						sameScores(t, "TopK(dense)", exh.TopK(cand, k), idx.TopK(cand, k))
					}

					// Thresholds at exact score values hit the tie edge.
					thresholds := []float64{-0.5, 0, 1e-9, 0.3, 0.99, 1.5}
					for _, sc := range want[:min(4, len(want))] {
						thresholds = append(thresholds, sc.Sim)
					}
					for _, th := range thresholds {
						sameScores(t, "Above", exh.Above(cand, th), idx.Above(cand, th))
					}
				}
			}
		})
	}
}

// TestIndexAdversarialCommonBin hides the true best match behind the
// candidate's most common bin: every reference shares bin 0 (a huge
// posting, walked last), and only the winner's entire mass sits there.
// A prefilter with unsound bounds would stop after the rare bins and
// return the decoy; the MaxScore walk must keep bin 0 alive because its
// term bound stays above the decoy's score.
func TestIndexAdversarialCommonBin(t *testing.T) {
	for _, measure := range allMeasures {
		spec := BinSpec{Width: synthWidth, Bins: 64}
		n := 300 // above indexAutoMin, so IndexAuto also applies
		sigs := make([]*Signature, n)
		rng := rand.New(rand.NewSource(9))
		for i := range sigs {
			sig := NewSignature(ParamInterArrival, spec)
			synthAdd(sig, dot11.ClassData, 0, 1) // the universal bin
			synthAdd(sig, dot11.ClassData, 1+rng.Intn(62), 8)
			sigs[i] = sig
		}
		// The winner: all mass on the universal bin.
		winner := NewSignature(ParamInterArrival, spec)
		synthAdd(winner, dot11.ClassData, 0, 9)
		sigs[n-1] = winner
		// The decoy shares the candidate's rare bin 63 with minor mass.
		decoy := NewSignature(ParamInterArrival, spec)
		synthAdd(decoy, dot11.ClassData, 0, 1)
		synthAdd(decoy, dot11.ClassData, 63, 8)
		sigs[n-2] = decoy

		cand := NewSignature(ParamInterArrival, spec)
		synthAdd(cand, dot11.ClassData, 0, 30)
		synthAdd(cand, dot11.ClassData, 63, 1)

		exh, idx := buildPair(t, measure, sigs)
		wb, _ := exh.Best(cand)
		if wb.Addr != synthAddr(n-1) {
			t.Fatalf("%v: scenario broken: exhaustive best is %v, want the common-bin winner %v",
				measure, wb.Addr, synthAddr(n-1))
		}
		gb, gok := idx.Best(cand)
		if !gok || gb.Addr != wb.Addr || math.Float64bits(gb.Sim) != math.Float64bits(wb.Sim) {
			t.Fatalf("%v: indexed best %v/%x, want %v/%x",
				measure, gb.Addr, math.Float64bits(gb.Sim), wb.Addr, math.Float64bits(wb.Sim))
		}
		var scratch MatchScratch
		sameScores(t, "TopK", exhaustiveTopK(exh.Match(cand), 5), idx.TopKInto(cand, 5, &scratch))
	}
}

// TestIndexDisjointL1 pins the subtle L1 case: a reference sharing a
// class but no bins has a similarity near — but not exactly — zero
// (frequency rounding), which bin-overlap shortlists would silently
// replace with 0. The class-overlap walk must reproduce it bit for bit.
func TestIndexDisjointL1(t *testing.T) {
	spec := BinSpec{Width: synthWidth, Bins: 64}
	sigs := make([]*Signature, 280)
	for i := range sigs {
		// Three equal thirds: the frequencies sum to 0.9999999999999999,
		// so a disjoint distance misses exact 2 by one ulp.
		sig := NewSignature(ParamInterArrival, spec)
		synthAdd(sig, dot11.ClassData, i%29, 1)
		synthAdd(sig, dot11.ClassData, 29+(i%15), 1)
		synthAdd(sig, dot11.ClassData, 44+(i%13), 1)
		sigs[i] = sig
	}
	cand := NewSignature(ParamInterArrival, spec)
	synthAdd(cand, dot11.ClassData, 60, 1)
	synthAdd(cand, dot11.ClassData, 61, 1)
	synthAdd(cand, dot11.ClassData, 62, 1)

	exh, idx := buildPair(t, MeasureL1, sigs)
	want := exh.Match(cand)
	nonzero := 0
	for _, sc := range want {
		if sc.Sim != 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Fatal("scenario broken: expected disjoint L1 scores off exact zero")
	}
	sameScores(t, "Match", want, idx.Match(cand))
	gb, _ := idx.Best(cand)
	wb, _ := exh.Best(cand)
	if wb.Addr != gb.Addr || math.Float64bits(wb.Sim) != math.Float64bits(gb.Sim) {
		t.Fatalf("Best: got %v/%x, want %v/%x", gb.Addr, math.Float64bits(gb.Sim), wb.Addr, math.Float64bits(wb.Sim))
	}
}

// TestIndexAuto pins the auto threshold and the opt-out.
func TestIndexAuto(t *testing.T) {
	spec := BinSpec{Width: synthWidth, Bins: 64}
	cfg := Config{Param: ParamInterArrival, Bins: spec, MinObservations: 1}
	rng := rand.New(rand.NewSource(3))
	db := NewDatabase(cfg, MeasureCosine)
	for i := 0; i < indexAutoMin-1; i++ {
		if err := db.Add(synthAddr(i), randSig(rng, spec)); err != nil {
			t.Fatal(err)
		}
	}
	if st := db.IndexStats(); st.Enabled {
		t.Fatalf("index built below the auto threshold: %+v", st)
	}
	if err := db.Add(synthAddr(indexAutoMin), randSig(rng, spec)); err != nil {
		t.Fatal(err)
	}
	if st := db.IndexStats(); !st.Enabled {
		t.Fatalf("index not built at the auto threshold: %+v", st)
	}
	db.SetIndexing(IndexOff)
	if st := db.IndexStats(); st.Enabled {
		t.Fatalf("IndexOff still built the index: %+v", st)
	}
	clone := db.Clone()
	if clone.Indexing() != IndexOff {
		t.Fatalf("Clone dropped the index mode: %v", clone.Indexing())
	}
}

// TestTopKBatchConsistent pins the batch top-k entry points against the
// one-shot path for every worker count.
func TestTopKBatchConsistent(t *testing.T) {
	db, cands := synthDB(600, 12, MeasureCosine, IndexOn)
	c := db.Compile()
	var scratch MatchScratch
	want := make([][]Score, len(cands))
	for i := range cands {
		want[i] = c.TopK(cands[i].Sig, 4)
	}
	got := c.TopKAllScratch(cands, 4, &scratch)
	for i := range want {
		sameScores(t, "TopKAllScratch", want[i], got[i])
	}
	for _, workers := range []int{1, 3, 8} {
		got := c.TopKAllWorkers(cands, 4, workers)
		for i := range want {
			sameScores(t, "TopKAllWorkers", want[i], got[i])
		}
	}
}

// TestMatchAppendReuse pins the allocation contract of the append-style
// convenience entry point.
func TestMatchAppendReuse(t *testing.T) {
	db, cands := synthDB(300, 2, MeasureCosine, IndexOn)
	c := db.Compile()
	want := c.Match(cands[0].Sig)
	dst := c.MatchAppend(cands[0].Sig, nil)
	sameScores(t, "MatchAppend(nil)", want, dst)
	dst = c.MatchAppend(cands[0].Sig, dst[:0])
	sameScores(t, "MatchAppend(reuse)", want, dst)
	allocs := testing.AllocsPerRun(20, func() {
		dst = c.MatchAppend(cands[0].Sig, dst[:0])
	})
	if allocs != 0 {
		t.Fatalf("MatchAppend with warm buffer: %.1f allocs/op, want 0", allocs)
	}
}
