package core

import (
	"sort"
	"sync/atomic"
	"time"

	"dot11fp/internal/dot11"
)

// SenderLimits bounds the per-window sender state of a SenderTable (and
// with it a WindowAccumulator or engine). The zero value imposes no
// bounds — memory then grows with the number of distinct senders seen
// in a window, which under MAC randomization can be orders of magnitude
// larger than the number of physical devices.
type SenderLimits struct {
	// MaxSenders caps the number of concurrently tracked senders.
	// Inserting a sender beyond the cap evicts the least-recently-seen
	// senders first (a deterministic function of the record stream), so
	// signature memory is O(MaxSenders) instead of O(distinct MACs).
	// Zero means unbounded.
	MaxSenders int
	// IdleEvict evicts senders that have not transmitted for at least
	// this long (in record time, not wall clock). Zero disables idle
	// eviction. Eviction sweeps are triggered from the observation path,
	// so they too are a deterministic function of the record stream.
	IdleEvict time.Duration
}

// senderEntry is one tracked sender: its accumulating signature and the
// record time it was last seen, for recency-based eviction.
type senderEntry struct {
	sig   *Signature
	lastT int64
}

// SenderTable accumulates per-sender signatures for one detection
// window with optionally bounded state. It is the sender-map core of
// WindowAccumulator, split out so a sharded engine can own one table
// per shard and clock them externally.
//
// Observe and Drain must be called from a single goroutine;
// LiveSenders is safe to read from any goroutine.
type SenderTable struct {
	cfg     Config
	limits  SenderLimits
	idleUs  int64
	entries map[dot11.Addr]*senderEntry
	evicted []DroppedSender
	silent  uint64 // evictions beyond the per-window record cap

	sweepT  int64 // record time of the last idle sweep
	scratch []evictCand

	live         atomic.Int64
	evictedTotal atomic.Uint64
}

// evictRecordFloor bounds the per-window detailed eviction records (see
// recordCap): without a cap the evicted list itself would grow with the
// number of distinct MACs churned through a window, re-creating exactly
// the unbounded memory SenderLimits exists to prevent.
const evictRecordFloor = 4096

// recordCap is the most per-window eviction records the table retains;
// evictions beyond it are tallied in WindowResult.EvictedSilently.
func (t *SenderTable) recordCap() int {
	if c := 4 * t.limits.MaxSenders; c > evictRecordFloor {
		return c
	}
	return evictRecordFloor
}

// evictCand is the reusable sort record of the eviction scan.
type evictCand struct {
	addr  dot11.Addr
	lastT int64
}

// NewSenderTable creates a table extracting signatures under cfg (zero
// fields materialised as everywhere else) with the given bounds.
func NewSenderTable(cfg Config, limits SenderLimits) *SenderTable {
	return &SenderTable{
		cfg:     cfg.withDefaults(),
		limits:  limits,
		idleUs:  limits.IdleEvict.Microseconds(),
		entries: make(map[dot11.Addr]*senderEntry),
		sweepT:  -1,
	}
}

// Config returns the extraction configuration with defaults materialised.
func (t *SenderTable) Config() Config { return t.cfg }

// SetLimits replaces the table's bounds. Existing state is kept; the
// new bounds apply from the next observation.
func (t *SenderTable) SetLimits(l SenderLimits) {
	t.limits = l
	t.idleUs = l.IdleEvict.Microseconds()
}

// Len returns the number of currently tracked senders.
func (t *SenderTable) Len() int { return len(t.entries) }

// LiveSenders returns the number of currently tracked senders; unlike
// Len it is safe to call from any goroutine.
func (t *SenderTable) LiveSenders() int { return int(t.live.Load()) }

// EvictedTotal returns the number of senders evicted so far over the
// table's lifetime (cap plus idle evictions, across every window). Safe
// from any goroutine.
func (t *SenderTable) EvictedTotal() uint64 { return t.evictedTotal.Load() }

// Observe adds one attributed observation: the value v of class,
// transmitted by addr in the record whose end of reception is now (µs,
// record time). Callers have already applied the attribution rules and
// computed the parameter value — WindowAccumulator for the serial
// paths, the sharded engine's router for the concurrent one.
func (t *SenderTable) Observe(addr dot11.Addr, class dot11.Class, v float64, now int64) {
	if t.idleUs > 0 {
		// Sweep at most once per idle period, on whichever observation
		// crosses it — a stable sender population still ages out its
		// one-time visitors, at an amortised O(1) per observation.
		if t.sweepT < 0 {
			t.sweepT = now
		} else if now-t.sweepT >= t.idleUs {
			t.sweepIdle(now)
		}
	}
	e, ok := t.entries[addr]
	if !ok {
		if t.limits.MaxSenders > 0 && len(t.entries) >= t.limits.MaxSenders {
			t.evictOldest()
		}
		e = &senderEntry{sig: NewSignature(t.cfg.Param, t.cfg.Bins)}
		t.entries[addr] = e
		t.live.Store(int64(len(t.entries)))
	}
	e.lastT = now
	e.sig.Add(class, v)
}

// sweepIdle evicts every sender whose last observation is at least the
// idle bound behind now.
func (t *SenderTable) sweepIdle(now int64) {
	t.sweepT = now
	cut := now - t.idleUs
	for addr, e := range t.entries {
		if e.lastT <= cut {
			t.evict(addr, e)
		}
	}
	t.live.Store(int64(len(t.entries)))
}

// evictOldest removes the least-recently-seen eighth of the cap (at
// least one sender) so the O(n log n) scan amortises to O(log n) per
// over-cap insertion. Ties on last-seen time break by ascending
// address, keeping eviction a deterministic function of the stream.
func (t *SenderTable) evictOldest() {
	cands := t.scratch[:0]
	for addr, e := range t.entries {
		cands = append(cands, evictCand{addr: addr, lastT: e.lastT})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].lastT != cands[j].lastT {
			return cands[i].lastT < cands[j].lastT
		}
		return lessAddr(cands[i].addr, cands[j].addr)
	})
	k := t.limits.MaxSenders / 8
	if k < 1 {
		k = 1
	}
	if k > len(cands) {
		k = len(cands)
	}
	for _, c := range cands[:k] {
		t.evict(c.addr, t.entries[c.addr])
	}
	t.scratch = cands[:0] // keep the grown buffer
	t.live.Store(int64(len(t.entries)))
}

// evict removes one sender, recording it for the window's Dropped list.
// Only the address and observation count survive eviction — the
// signature memory is released, which is the point of the bound. An
// evicted sender that transmits again starts a fresh signature and may
// therefore be reported twice for the same window; the information loss
// is explicit in the event stream. Detailed records are themselves
// capped per window (recordCap): under a MAC-randomization flood the
// evictions beyond the cap are only counted, keeping the table's whole
// footprint O(MaxSenders), not O(churn).
func (t *SenderTable) evict(addr dot11.Addr, e *senderEntry) {
	if len(t.evicted) < t.recordCap() {
		t.evicted = append(t.evicted, DroppedSender{
			Addr:         addr,
			Observations: e.sig.Observations(),
			Evicted:      true,
		})
	} else {
		t.silent++
	}
	t.evictedTotal.Add(1)
	delete(t.entries, addr)
}

// Drain moves the table's state into res: senders that cleared the
// minimum-observation rule become res.Candidates (ascending address,
// with res.Index as their window), the rest plus every evicted sender
// become res.Dropped (ascending address; below-minimum entries sort
// before evicted ones at equal addresses). The table is reset for the
// next window; everything in res is handed off without aliasing.
func (t *SenderTable) Drain(res *WindowResult) {
	for _, addr := range sortedAddrs(t.entries) {
		e := t.entries[addr]
		if e.sig.Observations() >= uint64(t.cfg.MinObservations) {
			res.Candidates = append(res.Candidates, Candidate{Addr: addr, Window: res.Index, Sig: e.sig})
		} else {
			res.Dropped = append(res.Dropped, DroppedSender{Addr: addr, Observations: e.sig.Observations()})
		}
	}
	if len(t.evicted) > 0 {
		res.Dropped = append(res.Dropped, t.evicted...)
		sort.SliceStable(res.Dropped, func(i, j int) bool {
			return lessAddr(res.Dropped[i].Addr, res.Dropped[j].Addr)
		})
		t.evicted = t.evicted[:0]
	}
	res.EvictedSilently = t.silent
	t.silent = 0
	clear(t.entries)
	t.sweepT = -1
	t.live.Store(0)
}
