package core

import (
	"cmp"
	"slices"
	"sync/atomic"
	"time"

	"dot11fp/internal/dot11"
)

// SenderLimits bounds the per-window sender state of a SenderTable (and
// with it a WindowAccumulator or engine). The zero value imposes no
// bounds — memory then grows with the number of distinct senders seen
// in a window, which under MAC randomization can be orders of magnitude
// larger than the number of physical devices.
type SenderLimits struct {
	// MaxSenders caps the number of concurrently tracked senders.
	// Inserting a sender beyond the cap evicts the least-recently-seen
	// senders first (a deterministic function of the record stream), so
	// signature memory is O(MaxSenders) instead of O(distinct MACs).
	// Zero means unbounded.
	MaxSenders int
	// IdleEvict evicts senders that have not transmitted for at least
	// this long (in record time, not wall clock). Zero disables idle
	// eviction. Eviction sweeps are triggered from the observation path,
	// so they too are a deterministic function of the record stream.
	IdleEvict time.Duration
}

// senderEntry is one tracked sender: its accumulating signatures (one
// per ensemble member; a single-parameter table holds one) and the
// record time it was last seen, for recency-based eviction.
type senderEntry struct {
	sigs  []*Signature
	lastT int64
}

// SenderTable accumulates per-sender signatures for one detection
// window with optionally bounded state. It is the sender-map core of
// WindowAccumulator, split out so a sharded engine can own one table
// per shard and clock them externally.
//
// A table runs in one of two modes, fixed at construction. The
// single-parameter mode (NewSenderTable) keeps one signature per sender
// and drains candidates into WindowResult.Candidates. The ensemble mode
// (NewEnsembleSenderTable) keeps one signature per member parameter per
// sender — all members share the sender's eviction recency, so bounded
// state evicts a sender whole, never one member of it — and drains
// multi-parameter candidates into WindowResult.Multi.
//
// Observe, ObserveN and Drain must be called from a single goroutine;
// LiveSenders is safe to read from any goroutine.
type SenderTable struct {
	cfgs    []Config // one per member; single-parameter tables hold one
	multi   bool     // drain into WindowResult.Multi instead of Candidates
	limits  SenderLimits
	idleUs  int64
	entries map[dot11.Addr]*senderEntry
	evicted []DroppedSender
	silent  uint64 // evictions beyond the per-window record cap

	sweepT  int64 // record time of the last idle sweep
	scratch []evictCand

	live         atomic.Int64
	evictedTotal atomic.Uint64
}

// evictRecordFloor bounds the per-window detailed eviction records (see
// recordCap): without a cap the evicted list itself would grow with the
// number of distinct MACs churned through a window, re-creating exactly
// the unbounded memory SenderLimits exists to prevent.
const evictRecordFloor = 4096

// recordCap is the most per-window eviction records the table retains;
// evictions beyond it are tallied in WindowResult.EvictedSilently.
func (t *SenderTable) recordCap() int {
	if c := 4 * t.limits.MaxSenders; c > evictRecordFloor {
		return c
	}
	return evictRecordFloor
}

// evictCand is the reusable sort record of the eviction scan.
type evictCand struct {
	addr  dot11.Addr
	lastT int64
}

// NewSenderTable creates a single-parameter table extracting signatures
// under cfg (zero fields materialised as everywhere else) with the
// given bounds.
func NewSenderTable(cfg Config, limits SenderLimits) *SenderTable {
	return newSenderTable([]Config{cfg}, false, limits)
}

// NewEnsembleSenderTable creates an ensemble table accumulating one
// signature per member configuration per sender. Member configurations
// must carry distinct parameters (at most MaxEnsembleMembers).
func NewEnsembleSenderTable(cfgs []Config, limits SenderLimits) (*SenderTable, error) {
	if err := validateEnsembleConfigs(cfgs); err != nil {
		return nil, err
	}
	return newSenderTable(cfgs, true, limits), nil
}

func newSenderTable(cfgs []Config, multi bool, limits SenderLimits) *SenderTable {
	t := &SenderTable{
		cfgs:    make([]Config, len(cfgs)),
		multi:   multi,
		limits:  limits,
		idleUs:  limits.IdleEvict.Microseconds(),
		entries: make(map[dot11.Addr]*senderEntry),
		sweepT:  -1,
	}
	for i, cfg := range cfgs {
		t.cfgs[i] = cfg.withDefaults()
	}
	return t
}

// Config returns the extraction configuration with defaults
// materialised (the first member's, for ensemble tables).
func (t *SenderTable) Config() Config { return t.cfgs[0] }

// Configs returns every member configuration with defaults
// materialised, in member order. Single-parameter tables return one.
func (t *SenderTable) Configs() []Config {
	out := make([]Config, len(t.cfgs))
	copy(out, t.cfgs)
	return out
}

// SetLimits replaces the table's bounds. Existing state is kept; the
// new bounds apply from the next observation.
func (t *SenderTable) SetLimits(l SenderLimits) {
	t.limits = l
	t.idleUs = l.IdleEvict.Microseconds()
}

// Len returns the number of currently tracked senders.
func (t *SenderTable) Len() int { return len(t.entries) }

// LiveSenders returns the number of currently tracked senders; unlike
// Len it is safe to call from any goroutine.
func (t *SenderTable) LiveSenders() int { return int(t.live.Load()) }

// EvictedTotal returns the number of senders evicted so far over the
// table's lifetime (cap plus idle evictions, across every window). Safe
// from any goroutine.
func (t *SenderTable) EvictedTotal() uint64 { return t.evictedTotal.Load() }

// entry returns addr's live entry, creating it (and applying the
// bounded-state rules in the exact order the record stream dictates:
// idle sweep, cap eviction, insert) when the sender is new. now is the
// record's end of reception.
func (t *SenderTable) entry(addr dot11.Addr, now int64) *senderEntry {
	if t.idleUs > 0 {
		// Sweep at most once per idle period, on whichever observation
		// crosses it — a stable sender population still ages out its
		// one-time visitors, at an amortised O(1) per observation.
		if t.sweepT < 0 {
			t.sweepT = now
		} else if now-t.sweepT >= t.idleUs {
			t.sweepIdle(now)
		}
	}
	e, ok := t.entries[addr]
	if !ok {
		if t.limits.MaxSenders > 0 && len(t.entries) >= t.limits.MaxSenders {
			t.evictOldest()
		}
		e = &senderEntry{sigs: make([]*Signature, len(t.cfgs))} //fp:allocok per-sender admission; amortised across the sender's frames
		for i, cfg := range t.cfgs {
			e.sigs[i] = NewSignature(cfg.Param, cfg.Bins)
		}
		t.entries[addr] = e
		t.live.Store(int64(len(t.entries)))
	}
	e.lastT = now
	return e
}

// Observe adds one attributed observation: the value v of class,
// transmitted by addr in the record whose end of reception is now (µs,
// record time). Callers have already applied the attribution rules and
// computed the parameter value — WindowAccumulator for the serial
// paths, the sharded engine's router for the concurrent one.
//
//fp:hotpath test=TestEnginePushZeroAllocs
func (t *SenderTable) Observe(addr dot11.Addr, class dot11.Class, v float64, now int64) {
	t.entry(addr, now).sigs[0].Add(class, v)
}

// ObserveN adds one record's attributed observations for every ensemble
// member at once: vals[m] is member m's parameter value, applied only
// where valid[m] is true (a parameter can be undefined for a record —
// e.g. inter-arrival at a window start — without hiding the record from
// the members where it is defined). Call only when at least one member
// is valid, so sender recency, eviction and entry creation stay a
// deterministic function of the attributed record stream.
//
//fp:hotpath test=TestEnsemblePushZeroAllocs
func (t *SenderTable) ObserveN(addr dot11.Addr, class dot11.Class, vals []float64, valid []bool, now int64) {
	e := t.entry(addr, now)
	for m := range t.cfgs {
		if valid[m] {
			e.sigs[m].Add(class, vals[m])
		}
	}
}

// sweepIdle evicts every sender whose last observation is at least the
// idle bound behind now.
//
//fp:coldpath one sweep per idle period, amortised O(1) per observation
func (t *SenderTable) sweepIdle(now int64) {
	t.sweepT = now
	cut := now - t.idleUs
	for addr, e := range t.entries {
		if e.lastT <= cut {
			t.evict(addr, e)
		}
	}
	t.live.Store(int64(len(t.entries)))
}

// evictOldest removes the least-recently-seen eighth of the cap (at
// least one sender) so the O(n log n) scan amortises to O(log n) per
// over-cap insertion. Ties on last-seen time break by ascending
// address, keeping eviction a deterministic function of the stream.
//
//fp:coldpath one batch eviction per MaxSenders/8 over-cap insertions, amortised O(log n) per insertion
func (t *SenderTable) evictOldest() {
	cands := t.scratch[:0]
	for addr, e := range t.entries { //fp:unordered candidates are sorted by (lastT, addr) below; eviction is order-independent
		cands = append(cands, evictCand{addr: addr, lastT: e.lastT})
	}
	slices.SortFunc(cands, func(a, b evictCand) int {
		if a.lastT != b.lastT {
			return cmp.Compare(a.lastT, b.lastT)
		}
		return cmpAddr(a.addr, b.addr)
	})
	k := t.limits.MaxSenders / 8
	if k < 1 {
		k = 1
	}
	if k > len(cands) {
		k = len(cands)
	}
	for _, c := range cands[:k] {
		t.evict(c.addr, t.entries[c.addr])
	}
	t.scratch = cands[:0] // keep the grown buffer
	t.live.Store(int64(len(t.entries)))
}

// maxObs returns the largest observation count across member
// signatures — the ensemble reporting convention: how much traffic was
// attributed to the sender under its best-covered parameter (members
// differ only through per-parameter value validity).
func maxObs(sigs []*Signature) uint64 {
	var max uint64
	for _, sig := range sigs {
		if n := sig.Observations(); n > max {
			max = n
		}
	}
	return max
}

// evict removes one sender, recording it for the window's Dropped list.
// Only the address and observation count survive eviction — the
// signature memory is released, which is the point of the bound. An
// evicted sender that transmits again starts a fresh signature and may
// therefore be reported twice for the same window; the information loss
// is explicit in the event stream. Detailed records are themselves
// capped per window (recordCap): under a MAC-randomization flood the
// evictions beyond the cap are only counted, keeping the table's whole
// footprint O(MaxSenders), not O(churn).
func (t *SenderTable) evict(addr dot11.Addr, e *senderEntry) {
	if len(t.evicted) < t.recordCap() {
		t.evicted = append(t.evicted, DroppedSender{
			Addr:         addr,
			Observations: maxObs(e.sigs),
			Evicted:      true,
		})
	} else {
		t.silent++
	}
	t.evictedTotal.Add(1)
	delete(t.entries, addr)
}

// qualifies reports whether an entry clears the minimum-observation
// rule — for an ensemble, of every member (a sender clearing some
// members but not all stays a Dropped sender, never a candidate: the
// all-members requirement is explicit here).
func (t *SenderTable) qualifies(e *senderEntry) bool {
	for m, cfg := range t.cfgs {
		if e.sigs[m].Observations() < uint64(cfg.MinObservations) {
			return false
		}
	}
	return true
}

// Drain moves the table's state into res: senders that cleared the
// minimum-observation rule — of every member, for ensemble tables —
// become res.Candidates (single-parameter mode) or res.Multi (ensemble
// mode), ascending by address with res.Index as their window; the rest
// plus every evicted sender become res.Dropped (ascending address;
// below-minimum entries sort before evicted ones at equal addresses).
// A dropped ensemble sender reports its best member's observation
// count. The table is reset for the next window; everything in res is
// handed off without aliasing.
func (t *SenderTable) Drain(res *WindowResult) {
	for _, addr := range sortedAddrs(t.entries) {
		e := t.entries[addr]
		switch {
		case !t.qualifies(e):
			res.Dropped = append(res.Dropped, DroppedSender{Addr: addr, Observations: maxObs(e.sigs)})
		case t.multi:
			res.Multi = append(res.Multi, MultiCandidate{Addr: addr, Window: res.Index, Sigs: e.sigs})
		default:
			res.Candidates = append(res.Candidates, Candidate{Addr: addr, Window: res.Index, Sig: e.sigs[0]})
		}
	}
	if len(t.evicted) > 0 {
		res.Dropped = append(res.Dropped, t.evicted...)
		slices.SortStableFunc(res.Dropped, func(a, b DroppedSender) int {
			return cmpAddr(a.Addr, b.Addr)
		})
		t.evicted = t.evicted[:0]
	}
	res.EvictedSilently = t.silent
	t.silent = 0
	clear(t.entries)
	t.sweepT = -1
	t.live.Store(0)
}
