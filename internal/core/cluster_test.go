package core

import (
	"testing"
	"time"

	"dot11fp/internal/capture"
	"dot11fp/internal/dot11"
)

// probeRec builds an FCS-valid probe request record with the given
// sender and content.
func probeRec(t int64, sender dot11.Addr, ies []byte) capture.Record {
	return capture.Record{
		T: t, Sender: sender, Receiver: dot11.Broadcast,
		Class: dot11.ClassProbeReq, Size: 70, RateMbps: 1, FCSOK: true,
		ProbeIEs: ies,
	}
}

func dataRec(t int64, sender dot11.Addr) capture.Record {
	return capture.Record{
		T: t, Sender: sender, Receiver: dot11.Broadcast,
		Class: dot11.ClassData, Size: 500, RateMbps: 54, FCSOK: true,
	}
}

func TestClustererMergesRotatedMACs(t *testing.T) {
	t.Parallel()
	c := NewClusterer(0)
	contentA := dot11.BuildProbeBody([]byte("corp"), nil, dot11.AppendIE(nil, dot11.IEVendor, []byte{1, 2, 3, 4}))
	contentB := dot11.BuildProbeBody([]byte("corp"), nil, dot11.AppendIE(nil, dot11.IEVendor, []byte{9, 9, 9, 9}))

	mac1, mac2 := dot11.LocalAddr(100), dot11.LocalAddr(101)
	r1, r2 := probeRec(0, mac1, contentA), probeRec(1000, mac2, contentA)
	canon1, canon2 := c.Resolve(&r1), c.Resolve(&r2)
	if canon1 != canon2 {
		t.Fatalf("same content, rotated MACs: %v vs %v", canon1, canon2)
	}
	if canon1 == mac1 || canon1 == mac2 {
		t.Fatal("canonical address must differ from raw senders")
	}
	// Data frames from either rotated MAC now resolve to the device.
	d := dataRec(2000, mac1)
	if got := c.Resolve(&d); got != canon1 {
		t.Fatalf("bound data frame resolved to %v, want %v", got, canon1)
	}
	// A different device's content makes a different cluster.
	r3 := probeRec(3000, dot11.LocalAddr(102), contentB)
	if got := c.Resolve(&r3); got == canon1 {
		t.Fatal("distinct content merged into one device")
	}
	if c.Devices() != 2 || c.Bindings() != 3 {
		t.Fatalf("Devices = %d, Bindings = %d, want 2, 3", c.Devices(), c.Bindings())
	}
}

func TestClustererPassThrough(t *testing.T) {
	t.Parallel()
	c := NewClusterer(0)
	// Unbound senders, bodyless probes and bad-FCS probes pass through.
	d := dataRec(0, dot11.LocalAddr(7))
	if got := c.Resolve(&d); got != d.Sender {
		t.Fatalf("unbound sender rewritten to %v", got)
	}
	p := probeRec(1, dot11.LocalAddr(8), nil)
	if got := c.Resolve(&p); got != p.Sender {
		t.Fatal("bodyless probe clustered")
	}
	bad := probeRec(2, dot11.LocalAddr(9), dot11.BuildProbeBody(nil, nil, nil))
	bad.FCSOK = false
	if got := c.Resolve(&bad); got != bad.Sender {
		t.Fatal("corrupt probe clustered")
	}
	if c.Devices() != 0 || c.Bindings() != 0 {
		t.Fatalf("state leaked: %d devices, %d bindings", c.Devices(), c.Bindings())
	}
}

func TestClustererDeterministicCanonical(t *testing.T) {
	t.Parallel()
	// Two independent clusterers seeing the same content in different
	// orders must agree on the canonical address — shard routers depend
	// on it.
	content := dot11.BuildProbeBody([]byte("x"), nil, nil)
	a, b := NewClusterer(0), NewClusterer(0)
	r1, r2 := probeRec(0, dot11.LocalAddr(1), content), probeRec(0, dot11.LocalAddr(2), content)
	if a.Resolve(&r1) != b.Resolve(&r2) {
		t.Fatal("canonical address depends on observation order or raw MAC")
	}
	// Resolving an already-canonical sender is idempotent.
	canon := a.Resolve(&r1)
	again := probeRec(10, canon, content)
	if got := a.Resolve(&again); got != canon {
		t.Fatalf("canonical sender re-resolved to %v", got)
	}
}

func TestClustererBoundedBindings(t *testing.T) {
	t.Parallel()
	c := NewClusterer(4)
	content := dot11.BuildProbeBody([]byte("net"), nil, nil)
	for i := 0; i < 10; i++ {
		r := probeRec(int64(i), dot11.LocalAddr(uint64(200+i)), content)
		c.Resolve(&r)
	}
	if c.Bindings() != 4 {
		t.Fatalf("Bindings = %d, want cap 4", c.Bindings())
	}
	if c.Evicted() != 6 {
		t.Fatalf("Evicted = %d, want 6", c.Evicted())
	}
	if c.Devices() != 1 {
		t.Fatalf("Devices = %d, want 1", c.Devices())
	}
	// The newest binding survives, the oldest is gone.
	newest := dataRec(100, dot11.LocalAddr(209))
	if got := c.Resolve(&newest); got == newest.Sender {
		t.Fatal("newest binding evicted")
	}
	oldest := dataRec(101, dot11.LocalAddr(200))
	if got := c.Resolve(&oldest); got != oldest.Sender {
		t.Fatal("oldest binding survived the cap")
	}
}

func TestClustererApply(t *testing.T) {
	t.Parallel()
	content := dot11.BuildProbeBody([]byte("corp"), nil, nil)
	tr := &capture.Trace{Records: []capture.Record{
		probeRec(0, dot11.LocalAddr(1), content),
		dataRec(100, dot11.LocalAddr(1)),
		probeRec(200, dot11.LocalAddr(2), content), // rotation
		dataRec(300, dot11.LocalAddr(2)),
		dataRec(400, dot11.LocalAddr(50)), // never probed: untouched
	}}
	c := NewClusterer(0)
	out := c.Apply(tr)
	if len(out.Records) != len(tr.Records) {
		t.Fatalf("Apply changed record count")
	}
	canon := out.Records[0].Sender
	for i := 0; i < 4; i++ {
		if out.Records[i].Sender != canon {
			t.Errorf("record %d sender = %v, want %v", i, out.Records[i].Sender, canon)
		}
	}
	if out.Records[4].Sender != dot11.LocalAddr(50) {
		t.Errorf("unprobed sender rewritten to %v", out.Records[4].Sender)
	}
	// The input trace is untouched.
	if tr.Records[1].Sender != dot11.LocalAddr(1) {
		t.Error("Apply mutated its input")
	}
}

func TestProbeParamValues(t *testing.T) {
	t.Parallel()
	content := dot11.BuildProbeBody([]byte("corp"), nil, nil)
	p := probeRec(0, dot11.LocalAddr(1), content)
	d := dataRec(1, dot11.LocalAddr(1))
	for _, param := range ContentParams {
		v, ok := param.Value(&p, -1)
		if !ok {
			t.Errorf("%s undefined for a probe with content", param)
		}
		if v < 0 || v >= contentBins {
			t.Errorf("%s value %v outside [0, %d)", param, v, contentBins)
		}
		if _, ok := param.Value(&d, -1); ok {
			t.Errorf("%s defined for a data frame", param)
		}
		bare := probeRec(2, dot11.LocalAddr(1), nil)
		if _, ok := param.Value(&bare, -1); ok {
			t.Errorf("%s defined for a bodyless probe", param)
		}
		// Resolvable by short name, with probe-tuned defaults.
		got, err := ParamByShortName(param.ShortName())
		if err != nil || got != param {
			t.Errorf("ParamByShortName(%q) = %v, %v", param.ShortName(), got, err)
		}
		cfg := DefaultConfig(param)
		if cfg.MinObservations != 8 {
			t.Errorf("%s MinObservations = %d, want 8", param, cfg.MinObservations)
		}
		if cfg.Bins.Bins != contentBins || cfg.Bins.Width != 1 {
			t.Errorf("%s bins = %+v", param, cfg.Bins)
		}
	}
	// Same content, different rotated sender: identical values — the
	// property that defeats randomization.
	p2 := probeRec(5, dot11.LocalAddr(99), content)
	for _, param := range ContentParams {
		v1, _ := param.Value(&p, -1)
		v2, _ := param.Value(&p2, -1)
		if v1 != v2 {
			t.Errorf("%s value depends on the sender address", param)
		}
	}
}

func TestAccumulatorWithClusterer(t *testing.T) {
	t.Parallel()
	content := dot11.BuildProbeBody([]byte("corp"), nil, nil)
	var recs []capture.Record
	// One logical device rotating its MAC every burst; enough frames to
	// clear min-obs for the size parameter.
	for burst := 0; burst < 4; burst++ {
		mac := dot11.LocalAddr(uint64(300 + burst))
		base := int64(burst) * 10_000
		recs = append(recs, probeRec(base, mac, content))
		for i := 0; i < 20; i++ {
			recs = append(recs, dataRec(base+int64(i+1)*100, mac))
		}
	}
	run := func(cl *Clusterer) map[dot11.Addr]bool {
		senders := make(map[dot11.Addr]bool)
		acc := NewWindowAccumulator(time.Minute, Config{Param: ParamSize, MinObservations: 10}, func(res *WindowResult) {
			for _, c := range res.Candidates {
				senders[c.Addr] = true
			}
		})
		if cl != nil {
			acc.SetClusterer(cl)
		}
		for i := range recs {
			acc.Push(&recs[i])
		}
		acc.Flush()
		return senders
	}
	if got := run(nil); len(got) != 0 {
		// 21 frames per rotated MAC < min-obs 10? No: 21 > 10, so each
		// rotated MAC qualifies separately without clustering.
		if len(got) != 4 {
			t.Fatalf("without clustering: %d senders, want 4 rotated MACs", len(got))
		}
	}
	got := run(NewClusterer(0))
	if len(got) != 1 {
		t.Fatalf("with clustering: %d senders, want 1 device", len(got))
	}
	for s := range got {
		if s[0] != 0x0a {
			t.Fatalf("clustered sender %v is not a canonical device address", s)
		}
	}
}

// TestClusterResolveZeroAllocs backs the //fp:hotpath annotations on
// Clusterer.Resolve, dot11.ParseElems and Elems.ContentKey: once a
// device and its binding exist, re-resolving frames from that sender —
// probe requests (full parse + content key) and data frames (binding
// lookup) alike — must not allocate.
func TestClusterResolveZeroAllocs(t *testing.T) {
	c := NewClusterer(0)
	content := dot11.BuildProbeBody([]byte("corp"), nil,
		dot11.AppendIE(nil, dot11.IEVendor, []byte{1, 2, 3, 4}))
	sender := dot11.LocalAddr(7)
	probe := probeRec(0, sender, content)
	data := dataRec(1000, sender)
	canon := c.Resolve(&probe) // warm-up: creates the device and binding

	if avg := testing.AllocsPerRun(200, func() {
		if got := c.Resolve(&probe); got != canon {
			t.Fatalf("probe resolved to %v, want %v", got, canon)
		}
	}); avg != 0 {
		t.Errorf("steady-state probe Resolve allocates %.1f per call, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() {
		if got := c.Resolve(&data); got != canon {
			t.Fatalf("data frame resolved to %v, want %v", got, canon)
		}
	}); avg != 0 {
		t.Errorf("bound data-frame Resolve allocates %.1f per call, want 0", avg)
	}
}
