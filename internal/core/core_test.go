package core

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"dot11fp/internal/capture"
	"dot11fp/internal/dot11"
)

var (
	staA = dot11.MustParseAddr("02:00:00:00:00:0a")
	staC = dot11.MustParseAddr("02:00:00:00:00:0c")
	apX  = dot11.MustParseAddr("02:00:00:00:00:ff")
)

// figure1Trace reproduces the paper's Figure 1 measurement example:
// the frame sequence DATA(A), ACK, DATA(A), ACK, RTS(C), CTS.
func figure1Trace() *capture.Trace {
	return &capture.Trace{
		Name: "figure-1",
		Records: []capture.Record{
			{T: 1_000, Sender: staA, Receiver: apX, Class: dot11.ClassData, Size: 1500, RateMbps: 54, FCSOK: true},         // f0 at t0
			{T: 1_050, Sender: dot11.ZeroAddr, Receiver: staA, Class: dot11.ClassACK, Size: 14, RateMbps: 24, FCSOK: true}, // f1 at t1
			{T: 1_400, Sender: staA, Receiver: apX, Class: dot11.ClassData, Size: 1500, RateMbps: 54, FCSOK: true},         // f2 at t2
			{T: 1_450, Sender: dot11.ZeroAddr, Receiver: staA, Class: dot11.ClassACK, Size: 14, RateMbps: 24, FCSOK: true}, // f3 at t3
			{T: 1_800, Sender: staC, Receiver: apX, Class: dot11.ClassRTS, Size: 20, RateMbps: 11, FCSOK: true},            // f4 at t4
			{T: 1_840, Sender: dot11.ZeroAddr, Receiver: staC, Class: dot11.ClassCTS, Size: 14, RateMbps: 11, FCSOK: true}, // f5 at t5
		},
	}
}

// TestAttributionFigure1 checks the paper's worked example exactly:
// with inter-arrival times, P_DATA(A) = {t2 − t1} and P_RTS(C) = {t4 − t3};
// ACK/CTS values are dropped. With rates, P_DATA(A) ∋ rate2.
func TestAttributionFigure1(t *testing.T) {
	t.Parallel()
	tr := figure1Trace()
	cfg := Config{Param: ParamInterArrival, MinObservations: 1}
	sigs := Extract(tr, cfg)

	sigA := sigs[staA]
	if sigA == nil {
		t.Fatal("no signature for station A")
	}
	// A's DATA histogram must contain exactly two observations:
	// i0 is undefined (first frame), i2 = t2 − t1 = 350.
	hA := sigA.Hist(dot11.ClassData)
	if hA == nil || hA.Total() != 1 {
		t.Fatalf("A data observations = %v, want exactly 1 (the interval t2−t1)", hA)
	}
	// 350 µs falls in bin 35 with 10 µs bins.
	if got := hA.Count(35); got != 1 {
		t.Fatalf("A's interval not in the 350 µs bin: counts=%v", hA.Counts())
	}

	sigC := sigs[staC]
	if sigC == nil {
		t.Fatal("no signature for station C")
	}
	hC := sigC.Hist(dot11.ClassRTS)
	if hC == nil || hC.Total() != 1 {
		t.Fatal("C should have exactly one RTS observation (t4 − t3 = 350)")
	}
	if got := hC.Count(35); got != 1 {
		t.Fatalf("C's interval not in the 350 µs bin: counts=%v", hC.Counts())
	}

	// No signature may exist for the zero address.
	if _, ok := sigs[dot11.ZeroAddr]; ok {
		t.Fatal("ACK/CTS frames were attributed")
	}

	// With transmission rate: PDATA(A) = {rate2} (plus rate0: the paper
	// drops only unattributable frames, and f0 is attributable for rate).
	rateSigs := Extract(tr, Config{Param: ParamRate, MinObservations: 1})
	hAr := rateSigs[staA].Hist(dot11.ClassData)
	if hAr.Total() != 2 {
		t.Fatalf("A rate observations = %d, want 2 (f0 and f2)", hAr.Total())
	}
	if got := hAr.Count(108); got != 2 { // 54 / 0.5 = bin 108
		t.Fatalf("rate histogram bin for 54 Mb/s has %d, counts=%v", got, hAr.Counts())
	}
}

func TestParamValues(t *testing.T) {
	t.Parallel()
	rec := &capture.Record{T: 10_000, Size: 675, RateMbps: 54}
	tests := []struct {
		param Param
		prevT int64
		want  float64
		ok    bool
	}{
		{ParamRate, 9_000, 54, true},
		{ParamSize, 9_000, 675, true},
		{ParamTxTime, 9_000, 100, true},         // 675*8/54 = 100 µs
		{ParamInterArrival, 9_000, 1_000, true}, // 10000-9000
		{ParamMediumAccess, 9_000, 900, true},   // 1000 - 100
		{ParamInterArrival, -1, 0, false},       // first frame
		{ParamMediumAccess, -1, 0, false},       // first frame
		{ParamMediumAccess, 9_950, 0, false},    // negative gap dropped
	}
	for _, tt := range tests {
		got, ok := tt.param.Value(rec, tt.prevT)
		if ok != tt.ok {
			t.Errorf("%v ok = %v, want %v", tt.param, ok, tt.ok)
			continue
		}
		if ok && math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("%v = %v, want %v", tt.param, got, tt.want)
		}
	}
}

func TestParamNames(t *testing.T) {
	t.Parallel()
	for _, p := range Params {
		if p.String() == "" || p.ShortName() == "unknown" {
			t.Errorf("param %d lacks names", p)
		}
		back, err := ParamByShortName(p.ShortName())
		if err != nil || back != p {
			t.Errorf("round trip of %v failed: %v", p, err)
		}
	}
	if _, err := ParamByShortName("bogus"); err == nil {
		t.Error("bogus short name accepted")
	}
}

func TestMinObservationRule(t *testing.T) {
	t.Parallel()
	tr := &capture.Trace{}
	// Device A: 60 frames; device B: 30 frames.
	for i := 0; i < 60; i++ {
		tr.Records = append(tr.Records, capture.Record{
			T: int64(i) * 1_000, Sender: staA, Receiver: apX,
			Class: dot11.ClassData, Size: 500, RateMbps: 54, FCSOK: true,
		})
	}
	for i := 0; i < 30; i++ {
		tr.Records = append(tr.Records, capture.Record{
			T: 100_000 + int64(i)*1_000, Sender: staC, Receiver: apX,
			Class: dot11.ClassData, Size: 500, RateMbps: 54, FCSOK: true,
		})
	}
	sigs := Extract(tr, Config{Param: ParamSize}) // default MinObs = 50
	if _, ok := sigs[staA]; !ok {
		t.Error("A (60 obs) dropped")
	}
	if _, ok := sigs[staC]; ok {
		t.Error("C (30 obs) kept despite the 50-observation rule")
	}
}

func TestBadFCSNotAttributed(t *testing.T) {
	t.Parallel()
	tr := &capture.Trace{Records: []capture.Record{
		{T: 0, Sender: staA, Receiver: apX, Class: dot11.ClassData, Size: 100, RateMbps: 11, FCSOK: true},
		{T: 1_000, Sender: staA, Receiver: apX, Class: dot11.ClassData, Size: 100, RateMbps: 11, FCSOK: false},
		{T: 2_000, Sender: staA, Receiver: apX, Class: dot11.ClassData, Size: 100, RateMbps: 11, FCSOK: true},
	}}
	sigs := Extract(tr, Config{Param: ParamInterArrival, MinObservations: 1})
	h := sigs[staA].Hist(dot11.ClassData)
	// Only the last frame yields an interval, measured against the
	// corrupt frame's end time (1000 µs context still advances).
	if h.Total() != 1 {
		t.Fatalf("observations = %d, want 1", h.Total())
	}
	if got := h.Count(100); got != 1 {
		t.Fatalf("interval not 1000 µs: %v", h.Counts())
	}
	// With KeepBadFCS the corrupt frame is also attributed.
	sigs = Extract(tr, Config{Param: ParamInterArrival, MinObservations: 1, KeepBadFCS: true})
	if got := sigs[staA].Hist(dot11.ClassData).Total(); got != 2 {
		t.Fatalf("KeepBadFCS observations = %d, want 2", got)
	}
}

func TestSignatureWeights(t *testing.T) {
	t.Parallel()
	sig := NewSignature(ParamSize, DefaultBins(ParamSize))
	for i := 0; i < 30; i++ {
		sig.Add(dot11.ClassData, 500)
	}
	for i := 0; i < 10; i++ {
		sig.Add(dot11.ClassProbeReq, 68)
	}
	if sig.Observations() != 40 {
		t.Fatalf("observations = %d", sig.Observations())
	}
	if w := sig.Weight(dot11.ClassData); math.Abs(w-0.75) > 1e-12 {
		t.Errorf("data weight = %v, want 0.75", w)
	}
	if w := sig.Weight(dot11.ClassProbeReq); math.Abs(w-0.25) > 1e-12 {
		t.Errorf("probe weight = %v, want 0.25", w)
	}
	if w := sig.Weight(dot11.ClassBeacon); w != 0 {
		t.Errorf("absent class weight = %v", w)
	}
	classes := sig.Classes()
	if len(classes) != 2 {
		t.Errorf("classes = %v", classes)
	}
}

func TestSimilarityIdenticalAndDisjoint(t *testing.T) {
	t.Parallel()
	mk := func(dataVal, probeVal float64) *Signature {
		sig := NewSignature(ParamInterArrival, DefaultBins(ParamInterArrival))
		for i := 0; i < 40; i++ {
			sig.Add(dot11.ClassData, dataVal)
		}
		for i := 0; i < 10; i++ {
			sig.Add(dot11.ClassProbeReq, probeVal)
		}
		return sig
	}
	a := mk(300, 1_200)
	b := mk(300, 1_200)
	if got := Similarity(a, b, MeasureCosine); math.Abs(got-1) > 1e-9 {
		t.Errorf("identical similarity = %v, want 1", got)
	}
	c := mk(900, 2_100)
	if got := Similarity(a, c, MeasureCosine); got != 0 {
		t.Errorf("disjoint similarity = %v, want 0", got)
	}
	// Partial: same data histogram, different probe histogram -> the
	// data weight (0.8) survives.
	d := mk(300, 2_100)
	if got := Similarity(a, d, MeasureCosine); math.Abs(got-0.8) > 1e-9 {
		t.Errorf("partial similarity = %v, want 0.8", got)
	}
	if got := Similarity(nil, a, MeasureCosine); got != 0 {
		t.Errorf("nil candidate similarity = %v", got)
	}
}

func TestSimilarityMissingClassInReference(t *testing.T) {
	t.Parallel()
	cand := NewSignature(ParamSize, DefaultBins(ParamSize))
	for i := 0; i < 50; i++ {
		cand.Add(dot11.ClassNull, 28)
	}
	ref := NewSignature(ParamSize, DefaultBins(ParamSize))
	for i := 0; i < 50; i++ {
		ref.Add(dot11.ClassData, 500)
	}
	if got := Similarity(cand, ref, MeasureCosine); got != 0 {
		t.Errorf("similarity with no shared classes = %v", got)
	}
}

func TestAllMeasures(t *testing.T) {
	t.Parallel()
	sig := NewSignature(ParamSize, DefaultBins(ParamSize))
	for i := 0; i < 60; i++ {
		sig.Add(dot11.ClassData, float64(100+i%3*32))
	}
	for _, m := range []Measure{MeasureCosine, MeasureIntersection, MeasureBhattacharyya, MeasureL1} {
		if got := Similarity(sig, sig, m); math.Abs(got-1) > 1e-9 {
			t.Errorf("%v self similarity = %v, want 1", m, got)
		}
		if m.String() == "" {
			t.Errorf("measure %d has no name", m)
		}
	}
}

func TestDatabaseMatchAndBest(t *testing.T) {
	t.Parallel()
	mk := func(center float64) *Signature {
		sig := NewSignature(ParamInterArrival, DefaultBins(ParamInterArrival))
		for i := 0; i < 100; i++ {
			sig.Add(dot11.ClassData, center+float64(i%5)*10)
		}
		return sig
	}
	db := NewDatabase(Config{Param: ParamInterArrival}, MeasureCosine)
	if err := db.Add(staA, mk(300)); err != nil {
		t.Fatal(err)
	}
	if err := db.Add(staC, mk(900)); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 2 {
		t.Fatalf("db.Len = %d", db.Len())
	}

	cand := mk(300)
	scores := db.Match(cand)
	if len(scores) != 2 {
		t.Fatalf("similarity vector length = %d", len(scores))
	}
	best, ok := db.Best(cand)
	if !ok || best.Addr != staA {
		t.Fatalf("Best = %+v, want station A", best)
	}
	if best.Sim < 0.99 {
		t.Errorf("best similarity = %v, want ≈1", best.Sim)
	}
	above := db.Above(cand, 0.5)
	if len(above) != 1 || above[0].Addr != staA {
		t.Fatalf("Above(0.5) = %+v", above)
	}
	if got := db.Above(cand, 1.01); len(got) != 0 {
		t.Fatalf("Above(1.01) = %+v", got)
	}

	// Parameter mismatch is rejected.
	wrong := NewSignature(ParamRate, DefaultBins(ParamRate))
	if err := db.Add(apX, wrong); err == nil {
		t.Fatal("Add with wrong parameter accepted")
	}
}

func TestDatabaseBestEmpty(t *testing.T) {
	t.Parallel()
	db := NewDatabase(Config{Param: ParamSize}, 0)
	if _, ok := db.Best(NewSignature(ParamSize, DefaultBins(ParamSize))); ok {
		t.Fatal("Best on empty database reported ok")
	}
}

func TestDatabaseSaveLoad(t *testing.T) {
	t.Parallel()
	tr := figure1Trace()
	db := NewDatabase(Config{Param: ParamInterArrival, MinObservations: 1}, MeasureCosine)
	if err := db.Train(tr); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 2 {
		t.Fatalf("trained db has %d devices, want 2", db.Len())
	}

	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if loaded.Len() != db.Len() {
		t.Fatalf("loaded %d devices, want %d", loaded.Len(), db.Len())
	}
	if loaded.Config().Param != ParamInterArrival || loaded.Measure() != MeasureCosine {
		t.Fatalf("loaded config = %+v / %v", loaded.Config(), loaded.Measure())
	}
	// Matching behaviour must be preserved bit-for-bit.
	cand := ExtractOne(tr, staA, Config{Param: ParamInterArrival, MinObservations: 1})
	for i, s := range db.Match(cand) {
		ls := loaded.Match(cand)[i]
		if s.Addr != ls.Addr || math.Abs(s.Sim-ls.Sim) > 1e-12 {
			t.Fatalf("loaded match %d = %+v, want %+v", i, ls, s)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	t.Parallel()
	if _, err := Load(bytes.NewReader([]byte("{"))); err == nil {
		t.Fatal("truncated JSON accepted")
	}
	if _, err := Load(bytes.NewReader([]byte(`{"param":"nope"}`))); err == nil {
		t.Fatal("unknown parameter accepted")
	}
	bad := `{"param":"iat","measure":"cosine","bins":{"Width":10,"Bins":250},
	 "devices":{"02:00:00:00:00:01":{"data":{"bin_width":99,"counts":[1]}}}}`
	if _, err := Load(bytes.NewReader([]byte(bad))); err == nil {
		t.Fatal("shape-mismatched histogram accepted")
	}
	// Unknown or missing measure names must error instead of silently
	// matching with cosine.
	for _, m := range []string{"euclidean", ""} {
		doc := `{"param":"iat","measure":"` + m + `","bins":{"Width":10,"Bins":250},"devices":{}}`
		_, err := Load(bytes.NewReader([]byte(doc)))
		if err == nil {
			t.Fatalf("measure %q accepted", m)
		}
		if !strings.Contains(err.Error(), "similarity measure") {
			t.Fatalf("measure %q: undescriptive error %v", m, err)
		}
	}
}

func TestMeasureByName(t *testing.T) {
	t.Parallel()
	for _, m := range Measures {
		got, err := MeasureByName(m.String())
		if err != nil || got != m {
			t.Fatalf("MeasureByName(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := MeasureByName("nope"); err == nil {
		t.Fatal("unknown measure name resolved")
	}
}

func TestSplitAndWindows(t *testing.T) {
	t.Parallel()
	tr := &capture.Trace{}
	for i := 0; i < 600; i++ { // one frame per second for 10 minutes
		tr.Records = append(tr.Records, capture.Record{
			T: int64(i) * 1_000_000, Sender: staA, Receiver: apX,
			Class: dot11.ClassData, Size: 100, RateMbps: 11, FCSOK: true,
		})
	}
	train, valid := Split(tr, 2*time.Minute)
	if len(train.Records) != 120 {
		t.Fatalf("train records = %d, want 120", len(train.Records))
	}
	if len(valid.Records) != 480 {
		t.Fatalf("validation records = %d, want 480", len(valid.Records))
	}
	wins := Windows(valid, time.Minute)
	if len(wins) != 8 {
		t.Fatalf("windows = %d, want 8", len(wins))
	}
	for wi, w := range wins {
		if len(w.Records) != 60 {
			t.Fatalf("window %d has %d records, want 60", wi, len(w.Records))
		}
	}
	if got := Windows(&capture.Trace{}, time.Minute); got != nil {
		t.Fatalf("windows of empty trace = %v", got)
	}
	whole := Windows(tr, 0)
	if len(whole) != 1 || len(whole[0].Records) != 600 {
		t.Fatal("non-positive window should yield the whole trace")
	}
}

func TestCandidatesIn(t *testing.T) {
	t.Parallel()
	tr := &capture.Trace{}
	// A sends densely in both windows; C only in the second.
	for i := 0; i < 240; i++ {
		tr.Records = append(tr.Records, capture.Record{
			T: int64(i) * 500_000, Sender: staA, Receiver: apX,
			Class: dot11.ClassData, Size: 100, RateMbps: 11, FCSOK: true,
		})
	}
	for i := 0; i < 70; i++ {
		tr.Records = append(tr.Records, capture.Record{
			T: 61_000_000 + int64(i)*700_000, Sender: staC, Receiver: apX,
			Class: dot11.ClassData, Size: 200, RateMbps: 11, FCSOK: true,
		})
	}
	cands := CandidatesIn(tr, time.Minute, Config{Param: ParamSize})
	byWindow := make(map[int][]Candidate)
	for _, c := range cands {
		byWindow[c.Window] = append(byWindow[c.Window], c)
	}
	if len(byWindow[0]) != 1 {
		t.Fatalf("window 0 candidates = %d, want 1 (A only)", len(byWindow[0]))
	}
	if len(byWindow[1]) != 2 {
		t.Fatalf("window 1 candidates = %d, want 2 (A and C)", len(byWindow[1]))
	}
}

func TestSignatureMergeMismatch(t *testing.T) {
	t.Parallel()
	a := NewSignature(ParamSize, DefaultBins(ParamSize))
	b := NewSignature(ParamRate, DefaultBins(ParamRate))
	if err := a.Merge(b); err == nil {
		t.Fatal("merge across parameters accepted")
	}
	if err := a.Merge(nil); err != nil {
		t.Fatalf("merge nil: %v", err)
	}
}

func TestDatabaseTrainMergesAcrossCalls(t *testing.T) {
	t.Parallel()
	tr := figure1Trace()
	db := NewDatabase(Config{Param: ParamRate, MinObservations: 1}, 0)
	if err := db.Train(tr); err != nil {
		t.Fatal(err)
	}
	n1 := db.Signature(staA).Observations()
	if err := db.Train(tr); err != nil {
		t.Fatal(err)
	}
	if got := db.Signature(staA).Observations(); got != 2*n1 {
		t.Fatalf("merged observations = %d, want %d", got, 2*n1)
	}
	if db.Len() != 2 {
		t.Fatalf("retraining duplicated devices: %d", db.Len())
	}
}
