package core

import (
	"fmt"

	"dot11fp/internal/capture"
	"dot11fp/internal/dot11"
)

// Ensemble combines several network parameters into one fingerprint —
// the improvement the paper's conclusion explicitly leaves to future
// work ("whether the fingerprinting method can be improved by combining
// several network parameters"). Each parameter keeps its own reference
// database; a candidate's combined similarity to a reference is the
// mean of its per-parameter similarities.
type Ensemble struct {
	dbs []*Database
}

// NewEnsemble creates an ensemble over the given extraction
// configurations (typically one Config per Param). The zero Measure
// selects cosine similarity for every member.
func NewEnsemble(m Measure, cfgs ...Config) (*Ensemble, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("core: ensemble needs at least one parameter")
	}
	seen := make(map[Param]bool, len(cfgs))
	e := &Ensemble{dbs: make([]*Database, 0, len(cfgs))}
	for _, cfg := range cfgs {
		if seen[cfg.Param] {
			return nil, fmt.Errorf("core: duplicate ensemble parameter %v", cfg.Param)
		}
		seen[cfg.Param] = true
		e.dbs = append(e.dbs, NewDatabase(cfg, m))
	}
	return e, nil
}

// Params returns the member parameters in order.
func (e *Ensemble) Params() []Param {
	out := make([]Param, len(e.dbs))
	for i, db := range e.dbs {
		out[i] = db.Config().Param
	}
	return out
}

// Train populates every member database from the training trace.
func (e *Ensemble) Train(tr *capture.Trace) error {
	for _, db := range e.dbs {
		if err := db.Train(tr); err != nil {
			return err
		}
	}
	return nil
}

// Len returns the number of devices known to every member database
// (devices must clear the minimum-observation rule for each parameter;
// with equal minimums the sets coincide).
func (e *Ensemble) Len() int {
	n := 0
	for _, addr := range e.dbs[0].Devices() {
		if e.knownToAll(addr) {
			n++
		}
	}
	return n
}

func (e *Ensemble) knownToAll(addr dot11.Addr) bool {
	for _, db := range e.dbs {
		if db.refs[addr] == nil {
			return false
		}
	}
	return true
}

// MultiCandidate is one device in one detection window, carrying a
// signature per member parameter.
type MultiCandidate struct {
	Addr   [6]byte
	Window int
	Sigs   []*Signature // aligned with Params()
}

// CandidatesIn extracts multi-parameter candidates per detection window.
// A device qualifies in a window if it clears the observation rule for
// the first member parameter (all parameters observe the same frames,
// so counts differ only through per-parameter value validity).
func (e *Ensemble) CandidatesIn(tr *capture.Trace, window interface{ Microseconds() int64 }) []MultiCandidate {
	w := window.Microseconds()
	var out []MultiCandidate
	for wi, wtr := range windowsUs(tr, w) {
		perParam := make([]map[dot11.Addr]*Signature, len(e.dbs))
		for i, db := range e.dbs {
			perParam[i] = Extract(wtr, db.Config())
		}
		for _, addr := range sortedAddrs(perParam[0]) {
			mc := MultiCandidate{Addr: addr, Window: wi, Sigs: make([]*Signature, len(e.dbs))}
			ok := true
			for i := range perParam {
				sig := perParam[i][addr]
				if sig == nil {
					ok = false
					break
				}
				mc.Sigs[i] = sig
			}
			if ok {
				out = append(out, mc)
			}
		}
	}
	return out
}

// windowsUs is Windows with a raw microsecond width.
func windowsUs(tr *capture.Trace, w int64) []*capture.Trace {
	if len(tr.Records) == 0 {
		return nil
	}
	if w <= 0 {
		return []*capture.Trace{tr}
	}
	start := tr.Records[0].T
	end := tr.Records[len(tr.Records)-1].T
	var out []*capture.Trace
	for t := start; t <= end; t += w {
		s := tr.Slice(t, t+w)
		if len(s.Records) > 0 {
			out = append(out, s)
		}
	}
	return out
}

// Match returns the combined similarity vector: for each reference
// known to all members, the mean per-parameter similarity. Each member
// matches through its compiled snapshot, so the per-pair cost is the
// same zero-rederivation kernel as Database.Match; the values are
// bit-identical to averaging per-pair Similarity calls.
func (e *Ensemble) Match(c MultiCandidate) []Score {
	if len(c.Sigs) != len(e.dbs) {
		return nil
	}
	vectors := make([][]Score, len(e.dbs))
	cdbs := make([]*CompiledDB, len(e.dbs))
	for i, db := range e.dbs {
		cdbs[i] = db.Compile()
		vectors[i] = cdbs[i].Match(c.Sigs[i])
	}
	var out []Score
	for _, addr := range cdbs[0].addrs {
		if !e.knownToAll(addr) {
			continue
		}
		sum := 0.0
		for i := range e.dbs {
			sum += vectors[i][cdbs[i].index[addr]].Sim
		}
		out = append(out, Score{Addr: addr, Sim: sum / float64(len(e.dbs))})
	}
	return out
}

// Best returns the arg-max combined match.
func (e *Ensemble) Best(c MultiCandidate) (Score, bool) {
	best := Score{Sim: -1}
	for _, s := range e.Match(c) {
		if s.Sim > best.Sim {
			best = s
		}
	}
	return best, best.Sim >= 0
}
