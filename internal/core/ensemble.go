package core

import (
	"fmt"
	"sync"
	"time"

	"dot11fp/internal/capture"
	"dot11fp/internal/dot11"
)

// MaxEnsembleMembers bounds the member count of an ensemble: members
// must carry distinct parameters — the paper's five plus the three
// probe-content parameters — so an ensemble can never combine more.
// Fixed-size per-record buffers in the streaming paths are sized by it.
const MaxEnsembleMembers = 8

// validateEnsembleConfigs applies the shared member rules: at least one
// member, distinct parameters, at most MaxEnsembleMembers.
func validateEnsembleConfigs(cfgs []Config) error {
	if len(cfgs) == 0 {
		return fmt.Errorf("core: ensemble needs at least one parameter")
	}
	if len(cfgs) > MaxEnsembleMembers {
		return fmt.Errorf("core: ensemble of %d members exceeds the %d distinct parameters", len(cfgs), MaxEnsembleMembers)
	}
	seen := make(map[Param]bool, len(cfgs))
	for _, cfg := range cfgs {
		if seen[cfg.Param] {
			return fmt.Errorf("core: duplicate ensemble parameter %v", cfg.Param)
		}
		seen[cfg.Param] = true
	}
	return nil
}

// Ensemble combines several network parameters into one fingerprint —
// the improvement the paper's conclusion explicitly leaves to future
// work ("whether the fingerprinting method can be improved by combining
// several network parameters"). Each parameter keeps its own reference
// database; a candidate's combined similarity to a reference is the
// mean of its per-parameter similarities.
//
// Matching goes through a compiled snapshot (Compile, CompiledEnsemble)
// that freezes every member's CompiledDB and the fully-known reference
// set once per reference change, so steady-state fused matching never
// re-derives member snapshots per candidate.
type Ensemble struct {
	dbs []*Database

	mu       sync.Mutex        // guards compiled
	compiled *CompiledEnsemble // cached fused snapshot; rebuilt when a member recompiles
}

// NewEnsemble creates an ensemble over the given extraction
// configurations (typically one Config per Param). The zero Measure
// selects cosine similarity for every member.
func NewEnsemble(m Measure, cfgs ...Config) (*Ensemble, error) {
	if err := validateEnsembleConfigs(cfgs); err != nil {
		return nil, err
	}
	e := &Ensemble{dbs: make([]*Database, 0, len(cfgs))}
	for _, cfg := range cfgs {
		e.dbs = append(e.dbs, NewDatabase(cfg, m))
	}
	return e, nil
}

// NewEnsembleFrom assembles an ensemble from existing member databases
// (e.g. separately trained or checkpoint-loaded references). The
// members must carry distinct parameters and share one similarity
// measure; they are adopted, not copied — Clone first to keep the
// originals untouched.
func NewEnsembleFrom(dbs ...*Database) (*Ensemble, error) {
	cfgs := make([]Config, len(dbs))
	for i, db := range dbs {
		cfgs[i] = db.Config()
	}
	if err := validateEnsembleConfigs(cfgs); err != nil {
		return nil, err
	}
	for _, db := range dbs[1:] {
		if db.Measure() != dbs[0].Measure() {
			return nil, fmt.Errorf("core: ensemble members mix measures %v and %v", dbs[0].Measure(), db.Measure())
		}
	}
	e := &Ensemble{dbs: make([]*Database, len(dbs))}
	copy(e.dbs, dbs)
	return e, nil
}

// Params returns the member parameters in order.
func (e *Ensemble) Params() []Param {
	out := make([]Param, len(e.dbs))
	for i, db := range e.dbs {
		out[i] = db.Config().Param
	}
	return out
}

// Configs returns the member extraction configurations in order.
func (e *Ensemble) Configs() []Config {
	out := make([]Config, len(e.dbs))
	for i, db := range e.dbs {
		out[i] = db.Config()
	}
	return out
}

// Measure returns the similarity measure shared by every member.
func (e *Ensemble) Measure() Measure { return e.dbs[0].Measure() }

// Members returns the member databases in parameter order. They are the
// live references, not copies: mutations (Add, Train) are picked up by
// the next Compile.
func (e *Ensemble) Members() []*Database {
	out := make([]*Database, len(e.dbs))
	copy(out, e.dbs)
	return out
}

// Clone returns a deep copy of the ensemble — every member database
// cloned — so the copy can be trained or mutated without touching the
// original. This is the online trainer's copy-on-write idiom, extended
// to fused references.
func (e *Ensemble) Clone() *Ensemble {
	out := &Ensemble{dbs: make([]*Database, len(e.dbs))}
	for i, db := range e.dbs {
		out.dbs[i] = db.Clone()
	}
	return out
}

// Train populates every member database from the training trace. Each
// member applies its own minimum-observation rule, so a device can end
// up known to some members but not all — such partially-known devices
// are never matchable (Match requires every member) and are reported by
// Partial, not silently hidden.
func (e *Ensemble) Train(tr *capture.Trace) error {
	for _, db := range e.dbs {
		if err := db.Train(tr); err != nil {
			return err
		}
	}
	return nil
}

// Add inserts (or merges into) a reference atomically across every
// member: sigs must carry one signature per member, shape-matched, and
// either every member accepts or none is touched — an ensemble grown
// through Add can never hold a partially-known device. It is the online
// trainer's promotion entry point.
func (e *Ensemble) Add(addr dot11.Addr, sigs []*Signature) error {
	if len(sigs) != len(e.dbs) {
		return fmt.Errorf("core: %d signatures for an ensemble of %d members", len(sigs), len(e.dbs))
	}
	for i, sig := range sigs {
		if sig == nil {
			return fmt.Errorf("core: nil member %d signature for %v", i, addr)
		}
		if sig.Param() != e.dbs[i].Config().Param {
			return fmt.Errorf("core: member %d signature parameter %v does not match database %v",
				i, sig.Param(), e.dbs[i].Config().Param)
		}
		if sig.bins != e.dbs[i].Config().Bins {
			return fmt.Errorf("core: member %d signature bin shape %v does not match database %v",
				i, sig.bins, e.dbs[i].Config().Bins)
		}
	}
	for i, sig := range sigs {
		if err := e.dbs[i].Add(addr, sig); err != nil {
			return err // unreachable after the checks above; never half-applied
		}
	}
	return nil
}

// Signatures returns a device's per-member reference signatures, or nil
// when the device is not known to every member.
func (e *Ensemble) Signatures(addr dot11.Addr) []*Signature {
	out := make([]*Signature, len(e.dbs))
	for i, db := range e.dbs {
		if out[i] = db.Signature(addr); out[i] == nil {
			return nil
		}
	}
	return out
}

// Len returns the number of devices known to every member database —
// the matchable reference set. Devices that cleared the
// minimum-observation rule for some members but not all do not count;
// Partial lists them.
func (e *Ensemble) Len() int {
	n := 0
	for _, addr := range e.dbs[0].Devices() {
		if e.knownToAll(addr) {
			n++
		}
	}
	return n
}

// Partial returns the devices known to at least one member but not all
// — enrolled, yet never matchable, because Match requires a similarity
// from every member. A non-empty partial set after Train means some
// devices cleared the minimum-observation rule for a subset of the
// parameters only; the operator sees them here instead of wondering why
// an enrolled device never matches. Ascending address order.
func (e *Ensemble) Partial() []dot11.Addr {
	seen := make(map[dot11.Addr]bool)
	var out []dot11.Addr
	for _, db := range e.dbs {
		for _, addr := range db.Devices() {
			if !seen[addr] && !e.knownToAll(addr) {
				seen[addr] = true
				out = append(out, addr)
			}
		}
	}
	sortAddrs(out)
	return out
}

func (e *Ensemble) knownToAll(addr dot11.Addr) bool {
	for _, db := range e.dbs {
		if db.refs[addr] == nil {
			return false
		}
	}
	return true
}

// MultiCandidate is one device in one detection window, carrying a
// signature per member parameter.
type MultiCandidate struct {
	Addr   [6]byte
	Window int
	Sigs   []*Signature // aligned with Params()
}

// CandidatesIn extracts multi-parameter candidates per detection
// window: one pass over the validation trace, one window clock and one
// shared inter-arrival context, one signature per member per sender
// (NewEnsembleAccumulator is the streaming form; this is its batch
// adapter, so batch and streaming fused extraction are a single code
// path). A device qualifies in a window when it clears every member's
// minimum-observation rule — the all-members requirement is explicit,
// and candidate discovery iterates every member's senders, so a window
// where one member's parameter is undefined (e.g. a single-frame window
// under inter-arrival) cannot hide the sender from the others.
func (e *Ensemble) CandidatesIn(tr *capture.Trace, window interface{ Microseconds() int64 }) []MultiCandidate {
	var out []MultiCandidate
	acc, err := NewEnsembleAccumulator(time.Duration(window.Microseconds())*time.Microsecond, e.Configs(),
		func(w *WindowResult) { out = append(out, w.Multi...) })
	if err != nil {
		return nil // member configs were validated at construction; unreachable
	}
	for i := range tr.Records {
		acc.Push(&tr.Records[i])
	}
	acc.Flush()
	return out
}

// Match returns the combined similarity vector: for each reference
// known to all members, the mean per-parameter similarity. It delegates
// to the compiled snapshot; values are bit-identical to averaging
// per-pair Similarity calls.
func (e *Ensemble) Match(c MultiCandidate) []Score {
	fused, _ := e.Compile().Match(c)
	return fused
}

// Best returns the arg-max combined match.
func (e *Ensemble) Best(c MultiCandidate) (Score, bool) {
	return e.Compile().Best(c)
}

// TopK returns the k best fused references; see CompiledEnsemble.TopK.
func (e *Ensemble) TopK(c MultiCandidate, k int) []Score {
	return e.Compile().TopK(c, k)
}

// SetIndexing forwards the index mode to every member database; see
// Database.SetIndexing. The fused pruned search engages only when every
// member ends up indexed.
func (e *Ensemble) SetIndexing(mode IndexMode) {
	for _, db := range e.dbs {
		db.SetIndexing(mode)
	}
}

// IndexStats aggregates the members' compiled index stats; see
// CompiledEnsemble.IndexStats.
func (e *Ensemble) IndexStats() IndexStats {
	return e.Compile().IndexStats()
}
