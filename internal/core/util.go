package core

import (
	"sort"

	"dot11fp/internal/dot11"
)

// sortedAddrs returns map keys in ascending byte order for deterministic
// iteration.
func sortedAddrs[V any](m map[dot11.Addr]V) []dot11.Addr {
	out := make([]dot11.Addr, 0, len(m))
	for a := range m {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool {
		return lessAddr(out[i], out[j])
	})
	return out
}

// sortAddrs sorts an address slice ascending in place.
func sortAddrs(addrs []dot11.Addr) {
	sort.Slice(addrs, func(i, j int) bool {
		return lessAddr(addrs[i], addrs[j])
	})
}

func lessAddr(a, b dot11.Addr) bool {
	for k := 0; k < len(a); k++ {
		if a[k] != b[k] {
			return a[k] < b[k]
		}
	}
	return false
}
