package core

import (
	"bytes"
	"slices"

	"dot11fp/internal/dot11"
)

// sortedAddrs returns map keys in ascending byte order for deterministic
// iteration.
func sortedAddrs[V any](m map[dot11.Addr]V) []dot11.Addr {
	out := make([]dot11.Addr, 0, len(m))
	for a := range m { //fp:unordered keys are sorted ascending before return
		out = append(out, a)
	}
	slices.SortFunc(out, cmpAddr)
	return out
}

// sortAddrs sorts an address slice ascending in place.
func sortAddrs(addrs []dot11.Addr) {
	slices.SortFunc(addrs, cmpAddr)
}

// cmpAddr is lessAddr's three-way form, for slices.SortFunc (which,
// unlike sort.Slice, sorts without boxing through sort.Interface).
func cmpAddr(a, b dot11.Addr) int { return bytes.Compare(a[:], b[:]) }

func lessAddr(a, b dot11.Addr) bool {
	for k := 0; k < len(a); k++ {
		if a[k] != b[k] {
			return a[k] < b[k]
		}
	}
	return false
}
