package core

import (
	"cmp"
	"fmt"
	"math"
	"slices"

	"dot11fp/internal/dot11"
	"dot11fp/internal/histogram"
)

// This file implements the compiled database's match index: a
// coarse-to-fine structure built at Compile time that lets the top-k,
// Best and Above entry points touch far fewer than N references per
// candidate while returning results bit-identical to the exhaustive
// scan. Three cooperating layers:
//
//  1. An inverted index over non-empty fine bins plus CSR sparse rows.
//     Reference histograms are ~13× sparse (the binary codec's varint
//     stream demonstrates the same), so the exact kernels stream only
//     the non-zero cells, and a candidate's shortlist is the union of
//     the postings of its own non-zero bins.
//  2. Norm bounds. Each reference row is folded into coarseGroups
//     coarse cells (partial Euclidean norms for cosine, group sums for
//     the frequency measures), giving a cheap Cauchy–Schwarz-style
//     upper bound on the similarity that screens shortlisted
//     references before their exact score is computed. On top of that,
//     every fine bin carries its maximum possible contribution
//     (MaxScore), so the term walk stops opening common bins as soon
//     as the bins still unopened cannot beat the current k-th score.
//  3. Exactness. Pruning decisions only ever use upper bounds inflated
//     by a float-safety margin; surviving references are scored by
//     sparse kernels that perform the same float operations in the
//     same order as the dense path (dropped terms are exact +0 adds,
//     which cannot change an IEEE accumulator built from non-negative
//     terms), so every returned score, order and tie is bit-identical
//     to the exhaustive scan. The L1 measure's disjoint scores are not
//     exactly zero (frequency sums round), so its shortlist is the
//     class-overlap set and its kernel merges the union of both
//     supports — same guarantee, weaker pruning.

// IndexMode controls whether Compile builds the match index.
type IndexMode uint8

const (
	// IndexAuto builds the index once the reference set is large enough
	// for pruning to pay for itself (indexAutoMin references).
	IndexAuto IndexMode = iota
	// IndexOn always builds the index.
	IndexOn
	// IndexOff never builds it: matching uses the dense matrices. The
	// exhaustive baseline for A/B comparisons.
	IndexOff
)

// String implements fmt.Stringer.
func (m IndexMode) String() string {
	switch m {
	case IndexOn:
		return "on"
	case IndexOff:
		return "off"
	default:
		return "auto"
	}
}

// ParseIndexMode resolves "auto", "on" or "off".
func ParseIndexMode(s string) (IndexMode, error) {
	switch s {
	case "auto":
		return IndexAuto, nil
	case "on":
		return IndexOn, nil
	case "off":
		return IndexOff, nil
	}
	return 0, fmt.Errorf("core: unknown index mode %q (want auto, on or off)", s)
}

const (
	// indexAutoMin is the reference count at which IndexAuto builds the
	// index. Below it the dense kernels' contiguous loops win; above it
	// sparsity and pruning do.
	indexAutoMin = 256
	// coarseGroups is the number of coarse cells each reference row is
	// folded into for the norm-bound prefilter.
	coarseGroups = 8
)

// inflateBound pads an upper bound computed in floating point so it
// soundly dominates the exactly-computed score it bounds: the bound
// arithmetic and the exact kernel each accumulate relative error far
// below 1e-9, so a reference is pruned only when even the padded bound
// cannot reach the current threshold — ties at the threshold always
// survive to the exact kernel.
func inflateBound(ub float64) float64 { return ub*(1+1e-9) + 1e-12 }

// IndexStats describes the compiled match index, for Stats endpoints
// and /metrics.
type IndexStats struct {
	// Enabled reports whether the compiled snapshot carries an index.
	Enabled bool `json:"enabled"`
	// References is the number of indexed reference rows.
	References int `json:"references,omitempty"`
	// Classes is the number of frame classes carrying index data.
	Classes int `json:"classes,omitempty"`
	// Coarse is the number of coarse cells per reference row.
	Coarse int `json:"coarse,omitempty"`
	// Entries is the number of non-zero (reference, bin) cells stored.
	Entries int64 `json:"entries,omitempty"`
	// Postings is the number of inverted-index entries.
	Postings int64 `json:"postings,omitempty"`
	// IndexBytes approximates the index's memory footprint.
	IndexBytes int64 `json:"index_bytes,omitempty"`
	// DenseBytes is what the dense row matrices would occupy; the ratio
	// to IndexBytes is the realised sparsity.
	DenseBytes int64 `json:"dense_bytes,omitempty"`
}

// matchIndex is the per-snapshot index over the frozen references.
type matchIndex struct {
	bins      int
	groupSize int // fine bins per coarse cell
	classes   [dot11.NumClasses]classIndex
	stats     IndexStats
}

// classIndex is one frame class's index layer.
type classIndex struct {
	// CSR of the class's non-zero reference cells, ascending bin order
	// within each row: float64 counts for cosine, frequencies for the
	// other measures — the same values the dense rows would hold.
	rowStart []int32 // len n+1
	rowBin   []int32
	rowVal   []float64
	// Inverted index: references (ascending) per fine bin.
	postStart []int32 // len bins+1
	postRef   []int32
	// Per-bin maximum contribution factor (MaxScore); nil for L1.
	binBound []float64
	// Per-reference coarse row, coarseGroups cells each: partial
	// Euclidean norms (cosine) or group sums (frequency measures).
	coarse []float64
	// classRefs lists the references carrying the class, ascending —
	// the L1 shortlist (class overlap, not bin overlap).
	classRefs []int32
	// wMax is the maximum reference weight, for intersection bounds.
	wMax float64
}

// buildIndex freezes the index layers from the live reference map. The
// caller has already populated c's has/weights/norms bookkeeping.
func buildIndex(db *Database, c *CompiledDB) *matchIndex {
	n := len(c.addrs)
	cosine := c.measure.isCosine()
	ix := &matchIndex{
		bins:      c.bins,
		groupSize: (c.bins + coarseGroups - 1) / coarseGroups,
	}
	row := make([]float64, c.bins) // scratch frequency row
	for ci := range c.classes {
		cc := &c.classes[ci]
		if !cc.present {
			continue
		}
		cx := &ix.classes[ci]
		cx.rowStart = make([]int32, n+1)
		cx.coarse = make([]float64, n*coarseGroups)
		if c.measure != MeasureL1 {
			cx.binBound = make([]float64, c.bins)
		}
		binRefs := make([]int32, c.bins) // postings length per bin
		// First pass: CSR rows, coarse cells and per-bin bounds.
		for r, addr := range db.order {
			cx.rowStart[r] = int32(len(cx.rowBin))
			if !cc.has[r] {
				continue
			}
			cx.classRefs = append(cx.classRefs, int32(r))
			w := cc.weights[r]
			if w > cx.wMax {
				cx.wMax = w
			}
			h := db.refs[addr].Hist(dot11.Class(ci))
			vals := row[:0]
			if cosine {
				for _, v := range h.CountsView() {
					vals = append(vals, float64(v))
				}
			} else {
				vals = h.AppendFreqs(row[:0])
			}
			co := cx.coarse[r*coarseGroups : (r+1)*coarseGroups]
			var norm float64
			if cosine {
				norm = cc.norms[r]
			}
			for j, v := range vals {
				if v == 0 {
					continue
				}
				cx.rowBin = append(cx.rowBin, int32(j))
				cx.rowVal = append(cx.rowVal, v)
				binRefs[j]++
				g := j / ix.groupSize
				switch {
				case cosine:
					co[g] += v * v
				default:
					co[g] += v
				}
				if cx.binBound != nil {
					var b float64
					switch {
					case cosine:
						if norm > 0 {
							b = w * v / norm
						}
					case c.measure == MeasureBhattacharyya:
						b = w * math.Sqrt(v)
					default: // intersection
						b = w * v
					}
					if b > cx.binBound[j] {
						cx.binBound[j] = b
					}
				}
			}
			if cosine {
				for g := range co {
					co[g] = math.Sqrt(co[g])
				}
			}
		}
		cx.rowStart[n] = int32(len(cx.rowBin))
		// Second pass: postings, ascending reference order per bin.
		cx.postStart = make([]int32, c.bins+1)
		var total int32
		for j, cnt := range binRefs {
			cx.postStart[j] = total
			total += cnt
		}
		cx.postStart[c.bins] = total
		cx.postRef = make([]int32, total)
		fill := make([]int32, c.bins)
		copy(fill, cx.postStart[:c.bins])
		for r := 0; r < n; r++ {
			for i := cx.rowStart[r]; i < cx.rowStart[r+1]; i++ {
				j := cx.rowBin[i]
				cx.postRef[fill[j]] = int32(r)
				fill[j]++
			}
		}
		ix.stats.Classes++
		ix.stats.Entries += int64(len(cx.rowBin))
		ix.stats.Postings += int64(len(cx.postRef))
		ix.stats.IndexBytes += int64(len(cx.rowStart)+len(cx.rowBin)+len(cx.postStart)+len(cx.postRef)+len(cx.classRefs))*4 +
			int64(len(cx.rowVal)+len(cx.coarse)+len(cx.binBound))*8
		ix.stats.DenseBytes += int64(n) * int64(c.bins) * 8
	}
	ix.stats.Enabled = true
	ix.stats.References = n
	ix.stats.Coarse = coarseGroups
	return ix
}

// --- candidate-side search state ----------------------------------------------

// candPrep is one frame class of the candidate, unpacked for the index
// kernels: the dense vector the dense path would compare (float64
// counts for cosine, frequencies otherwise), its non-zero support, the
// candidate count norm, and the coarse fold used by the norm bounds.
type candPrep struct {
	cf     []float64
	nz     []int32
	cn     float64
	coarse [coarseGroups]float64
}

// searchTerm is one (class, candidate bin) pair of the pruned walk,
// with its posting length and maximum possible score contribution.
type searchTerm struct {
	class int32
	bin   int32
	plen  int32
	bound float64
}

// topEntry is one slot of the running top-k: the exact score and the
// reference's insertion index, which breaks ties exactly as the
// exhaustive scan's first-strict-max rule does.
type topEntry struct {
	sim float64
	ref int32
}

// better reports whether (sim, ref) ranks strictly ahead of e under the
// exhaustive order: higher score first, earlier insertion index on ties.
func (e topEntry) better(sim float64, ref int32) bool {
	return sim > e.sim || (sim == e.sim && ref < e.ref)
}

// searchState holds the reusable buffers of the pruned search. It lives
// inside MatchScratch so the engines' long-lived scratches amortise it.
type searchState struct {
	prep    [dot11.NumClasses]candPrep
	prepped [dot11.NumClasses]bool
	stamp   []int32
	epoch   int32
	terms   []searchTerm
	top     []topEntry
	out     []Score
}

// ensureSearch sizes the per-DB buffers and opens a new stamp epoch.
func (s *MatchScratch) ensureSearch(n int) *searchState {
	if s.search == nil {
		s.search = &searchState{}
	}
	st := s.search
	if len(st.stamp) < n {
		st.stamp = make([]int32, n)
		st.epoch = 0
	}
	if st.epoch == math.MaxInt32 {
		clear(st.stamp)
		st.epoch = 0
	}
	st.epoch++
	return st
}

// prepCandidate unpacks the candidate's classes against c's shape. Only
// classes that can contribute to any reference are marked prepped; the
// dense vectors hold exactly the values the dense kernels would see.
func (c *CompiledDB) prepCandidate(candidate *Signature, st *searchState) {
	cosine := c.measure.isCosine()
	for ci := range st.prepped {
		st.prepped[ci] = false
	}
	if candidate == nil {
		return
	}
	for ci := range c.classes {
		cc := &c.classes[ci]
		if !cc.present {
			continue
		}
		ch := candidate.Hist(dot11.Class(ci))
		if ch == nil || ch.Bins() != c.bins {
			continue
		}
		p := &st.prep[ci]
		if len(p.cf) < c.bins {
			p.cf = make([]float64, c.bins)
		}
		p.nz = p.nz[:0]
		p.coarse = [coarseGroups]float64{}
		gsz := c.idx.groupSize
		counts := ch.CountsView()
		if cosine {
			p.cn = histogram.CountNorm(counts)
			if p.cn == 0 {
				// Empty class: CosineNormed yields exact 0 for every
				// reference, so the class contributes nothing.
				continue
			}
			for j, v := range counts {
				if v == 0 {
					continue
				}
				f := float64(v)
				p.cf[j] = f
				p.nz = append(p.nz, int32(j))
				p.coarse[j/gsz] += f * f
			}
			for g := range p.coarse {
				p.coarse[g] = math.Sqrt(p.coarse[g])
			}
		} else {
			p.cn = 0
			if t := ch.Total(); t != 0 {
				ft := float64(t)
				for j, v := range counts {
					if v == 0 {
						continue
					}
					f := float64(v) / ft
					p.cf[j] = f
					p.nz = append(p.nz, int32(j))
					p.coarse[j/gsz] += f
				}
			}
			// A present-but-empty class still matters for L1 (its
			// distance to a non-empty reference row is not zero), so it
			// stays prepped with an empty support.
		}
		st.prepped[ci] = true
	}
}

// cleanupCandidate restores the dense buffers' all-zero invariant.
func (c *CompiledDB) cleanupCandidate(st *searchState) {
	for ci := range st.prepped {
		if !st.prepped[ci] {
			continue
		}
		p := &st.prep[ci]
		for _, j := range p.nz {
			p.cf[j] = 0
		}
	}
}

// scoreRef computes the candidate's exact similarity against reference
// r through the sparse rows: the same float operations in the same
// (ascending class, ascending bin) order as the dense MatchInto path,
// with only exact-zero terms dropped — bit-identical by construction.
func (c *CompiledDB) scoreRef(r int, st *searchState) float64 {
	sim := 0.0
	for ci := range c.classes {
		if !st.prepped[ci] {
			continue
		}
		cc := &c.classes[ci]
		if !cc.has[r] {
			continue
		}
		cx := &c.idx.classes[ci]
		p := &st.prep[ci]
		start, end := cx.rowStart[r], cx.rowStart[r+1]
		switch c.measure {
		case MeasureIntersection:
			s := 0.0
			for i := start; i < end; i++ {
				s += math.Min(p.cf[cx.rowBin[i]], cx.rowVal[i])
			}
			sim += cc.weights[r] * s
		case MeasureBhattacharyya:
			s := 0.0
			for i := start; i < end; i++ {
				s += math.Sqrt(p.cf[cx.rowBin[i]] * cx.rowVal[i])
			}
			sim += cc.weights[r] * s
		case MeasureL1:
			sim += cc.weights[r] * l1Sparse(p.cf, p.nz, cx.rowBin[start:end], cx.rowVal[start:end])
		default: // cosine
			nrm := cc.norms[r]
			if nrm == 0 {
				continue
			}
			dot := 0.0
			for i := start; i < end; i++ {
				dot += p.cf[cx.rowBin[i]] * cx.rowVal[i]
			}
			sim += cc.weights[r] * (dot / (p.cn * nrm))
		}
	}
	return sim
}

// l1Sparse evaluates 1 − ½·Σ|a_j − b_j| over the merged supports of the
// candidate (dense cf with support nz) and a reference CSR row. Bins
// where both sides are zero contribute exact +0 in the dense loop and
// are skipped; one-sided bins reduce to the surviving value (|x−0| ≡ x
// bit-for-bit for the non-negative frequencies involved).
func l1Sparse(cf []float64, nz []int32, rowBin []int32, rowVal []float64) float64 {
	d := 0.0
	i, k := 0, 0
	for i < len(rowBin) && k < len(nz) {
		rb, cb := rowBin[i], nz[k]
		switch {
		case rb == cb:
			d += math.Abs(cf[cb] - rowVal[i])
			i++
			k++
		case rb < cb:
			d += rowVal[i]
			i++
		default:
			d += cf[cb]
			k++
		}
	}
	for ; i < len(rowBin); i++ {
		d += rowVal[i]
	}
	for ; k < len(nz); k++ {
		d += cf[nz[k]]
	}
	return 1 - d/2
}

// coarseBound returns an upper bound on scoreRef(r) from the coarse
// rows: per class, a grouped Cauchy–Schwarz bound for cosine and the
// matching grouped bounds for the other measures (min of sums ≥ sum of
// mins, √(ΣaΣb) ≥ Σ√(ab), |Σa−Σb| ≤ Σ|a−b|). Exact in real arithmetic;
// callers compare through inflateBound.
func (c *CompiledDB) coarseBound(r int, st *searchState) float64 {
	ub := 0.0
	for ci := range c.classes {
		if !st.prepped[ci] {
			continue
		}
		cc := &c.classes[ci]
		if !cc.has[r] {
			continue
		}
		p := &st.prep[ci]
		co := c.idx.classes[ci].coarse[r*coarseGroups : (r+1)*coarseGroups : (r+1)*coarseGroups]
		switch c.measure {
		case MeasureIntersection:
			s := 0.0
			for g, v := range co {
				s += math.Min(p.coarse[g], v)
			}
			ub += cc.weights[r] * s
		case MeasureBhattacharyya:
			s := 0.0
			for g, v := range co {
				s += math.Sqrt(p.coarse[g] * v)
			}
			ub += cc.weights[r] * s
		case MeasureL1:
			d := 0.0
			for g, v := range co {
				d += math.Abs(p.coarse[g] - v)
			}
			ub += cc.weights[r] * (1 - d/2)
		default: // cosine
			nrm := cc.norms[r]
			if nrm == 0 {
				continue
			}
			s := 0.0
			for g, v := range co {
				s += p.coarse[g] * v
			}
			ub += cc.weights[r] * (s / (p.cn * nrm))
		}
	}
	return ub
}

// buildTerms assembles the candidate's (class, bin) terms with their
// MaxScore bounds, sorted by ascending posting length so rare bins are
// walked first and common bins can be stopped out. Returns the sum of
// the term bounds — the starting value of the walk's remaining budget.
// Not used for L1, whose per-bin contributions don't decompose into
// non-negative terms.
func (c *CompiledDB) buildTerms(st *searchState) float64 {
	st.terms = st.terms[:0]
	total := 0.0
	for ci := range c.classes {
		if !st.prepped[ci] {
			continue
		}
		cx := &c.idx.classes[ci]
		p := &st.prep[ci]
		for _, j := range p.nz {
			plen := cx.postStart[j+1] - cx.postStart[j]
			if plen == 0 {
				continue // no reference carries the bin: exact zero everywhere
			}
			var b float64
			switch c.measure {
			case MeasureIntersection:
				b = math.Min(cx.wMax*p.cf[j], cx.binBound[j])
			case MeasureBhattacharyya:
				b = math.Sqrt(p.cf[j]) * cx.binBound[j]
			default: // cosine
				b = p.cf[j] / p.cn * cx.binBound[j]
			}
			total += b
			st.terms = append(st.terms, searchTerm{class: int32(ci), bin: j, plen: plen, bound: b})
		}
	}
	// Insertion sort by (posting length, class, bin): candidate supports
	// are small, and the deterministic order keeps walks reproducible.
	terms := st.terms
	for i := 1; i < len(terms); i++ {
		t := terms[i]
		k := i
		for k > 0 && (terms[k-1].plen > t.plen ||
			(terms[k-1].plen == t.plen && (terms[k-1].class > t.class ||
				(terms[k-1].class == t.class && terms[k-1].bin > t.bin)))) {
			terms[k] = terms[k-1]
			k--
		}
		terms[k] = t
	}
	return total
}

// offerTop inserts (sim, ref) into the running top-k if it ranks ahead
// of the current k-th entry, returning the updated slice and whether the
// entry ranked.
func offerTop(top []topEntry, k int, sim float64, ref int32) ([]topEntry, bool) {
	if len(top) == k {
		if !top[k-1].better(sim, ref) {
			return top, false
		}
	} else {
		top = append(top, topEntry{})
	}
	pos := len(top) - 1
	for pos > 0 && top[pos-1].better(sim, ref) {
		top[pos] = top[pos-1]
		pos--
	}
	top[pos] = topEntry{sim: sim, ref: ref}
	return top, true
}

// topKIndexed runs the pruned search: walk the candidate's terms
// rarest-first, exact-score each newly shortlisted reference that
// survives the coarse bound, and stop opening terms once the unopened
// remainder cannot beat the k-th score. Returns st.top ranked by the
// exhaustive order, with zero-score references merged in when the walk
// completed without pruning (only then can a zero still rank).
func (c *CompiledDB) topKIndexed(candidate *Signature, k int, st *searchState) []topEntry {
	st.top = st.top[:0]
	c.prepCandidate(candidate, st)
	stopped := false
	if c.measure == MeasureL1 {
		// Class-overlap shortlist: disjoint-support scores are near but
		// not exactly zero, so every reference sharing a class is scored.
		for ci := range c.classes {
			if !st.prepped[ci] {
				continue
			}
			for _, r := range c.idx.classes[ci].classRefs {
				if st.stamp[r] == st.epoch {
					continue
				}
				st.stamp[r] = st.epoch
				if len(st.top) == k && !st.top[k-1].better(inflateBound(c.coarseBound(int(r), st)), r) {
					// Bound can't displace the k-th entry: skip the exact kernel.
					continue
				}
				st.top, _ = offerTop(st.top, k, c.scoreRef(int(r), st), r)
			}
		}
	} else {
		remaining := c.buildTerms(st)
		for _, t := range st.terms {
			if len(st.top) == k && !st.top[k-1].better(inflateBound(remaining), math.MaxInt32) {
				// Even a reference collecting every unopened term's full
				// bound cannot displace the k-th entry.
				stopped = true
				break
			}
			cx := &c.idx.classes[t.class]
			for _, r := range cx.postRef[cx.postStart[t.bin]:cx.postStart[t.bin+1]] {
				if st.stamp[r] == st.epoch {
					continue
				}
				st.stamp[r] = st.epoch
				if len(st.top) == k && !st.top[k-1].better(inflateBound(c.coarseBound(int(r), st)), r) {
					continue
				}
				st.top, _ = offerTop(st.top, k, c.scoreRef(int(r), st), r)
			}
			remaining -= t.bound
		}
	}
	if !stopped {
		// References outside the shortlist score exactly +0; merge them
		// in ascending insertion order until one fails to rank.
		for r := 0; r < len(c.addrs); r++ {
			if st.stamp[r] == st.epoch {
				continue
			}
			var ok bool
			if st.top, ok = offerTop(st.top, k, 0, int32(r)); !ok {
				break
			}
		}
	}
	c.cleanupCandidate(st)
	return st.top
}

// aboveIndexed runs the pruned threshold search (threshold > 0): same
// term walk with a fixed bar instead of a moving k-th score. Returns
// the qualifying references in insertion order, exactly as the
// exhaustive scan emits them.
func (c *CompiledDB) aboveIndexed(candidate *Signature, threshold float64, st *searchState) []Score {
	st.top = st.top[:0] // reused as the hit list
	c.prepCandidate(candidate, st)
	score := func(r int32) {
		if st.stamp[r] == st.epoch {
			return
		}
		st.stamp[r] = st.epoch
		if inflateBound(c.coarseBound(int(r), st)) < threshold {
			return
		}
		if sim := c.scoreRef(int(r), st); sim >= threshold {
			st.top = append(st.top, topEntry{sim: sim, ref: r})
		}
	}
	if c.measure == MeasureL1 {
		for ci := range c.classes {
			if !st.prepped[ci] {
				continue
			}
			for _, r := range c.idx.classes[ci].classRefs {
				score(r)
			}
		}
	} else {
		remaining := c.buildTerms(st)
		for _, t := range st.terms {
			if inflateBound(remaining) < threshold {
				break // unopened terms cannot reach the bar
			}
			cx := &c.idx.classes[t.class]
			for _, r := range cx.postRef[cx.postStart[t.bin]:cx.postStart[t.bin+1]] {
				score(r)
			}
			remaining -= t.bound
		}
	}
	c.cleanupCandidate(st)
	if len(st.top) == 0 {
		return nil
	}
	slices.SortFunc(st.top, func(a, b topEntry) int { return cmp.Compare(a.ref, b.ref) })
	out := make([]Score, len(st.top))
	for i, e := range st.top {
		out[i] = Score{Addr: c.addrs[e.ref], Sim: e.sim}
	}
	return out
}

// matchIndexed is the index-backed full similarity vector: the same
// class-outer accumulation as the dense MatchInto, with the inner loop
// streaming each class's CSR block — a blocked sparse kernel over
// contiguous rows instead of N dense dot products.
func (c *CompiledDB) matchIndexed(candidate *Signature, scratch *MatchScratch) []Score {
	n := len(c.addrs)
	if cap(scratch.scores) < n {
		scratch.scores = make([]Score, n)
	}
	scores := scratch.scores[:n]
	for r, addr := range c.addrs {
		scores[r] = Score{Addr: addr}
	}
	if candidate == nil {
		return scores
	}
	for ci := range c.classes {
		cc := &c.classes[ci]
		if !cc.present {
			continue
		}
		ch := candidate.Hist(dot11.Class(ci))
		if ch == nil || ch.Bins() != c.bins {
			continue
		}
		cx := &c.idx.classes[ci]
		switch c.measure {
		case MeasureIntersection, MeasureBhattacharyya, MeasureL1:
			cf := ch.AppendFreqs(scratch.freqs[:0])
			scratch.freqs = cf
			switch c.measure {
			case MeasureIntersection:
				for r := 0; r < n; r++ {
					start, end := cx.rowStart[r], cx.rowStart[r+1]
					if start == end {
						continue
					}
					s := 0.0
					for i := start; i < end; i++ {
						s += math.Min(cf[cx.rowBin[i]], cx.rowVal[i])
					}
					scores[r].Sim += cc.weights[r] * s
				}
			case MeasureBhattacharyya:
				for r := 0; r < n; r++ {
					start, end := cx.rowStart[r], cx.rowStart[r+1]
					if start == end {
						continue
					}
					s := 0.0
					for i := start; i < end; i++ {
						s += math.Sqrt(cf[cx.rowBin[i]] * cx.rowVal[i])
					}
					scores[r].Sim += cc.weights[r] * s
				}
			default: // L1 needs the union support and scores class overlap exactly
				nz := scratch.l1nz[:0]
				for j, v := range cf {
					if v != 0 {
						nz = append(nz, int32(j))
					}
				}
				scratch.l1nz = nz
				for _, r := range cx.classRefs {
					start, end := cx.rowStart[r], cx.rowStart[r+1]
					scores[r].Sim += cc.weights[r] * l1Sparse(cf, nz, cx.rowBin[start:end], cx.rowVal[start:end])
				}
			}
		default: // cosine, count domain
			cf := scratch.freqs[:0]
			for _, v := range ch.CountsView() {
				cf = append(cf, float64(v))
			}
			scratch.freqs = cf
			cn := histogram.CountNorm(ch.CountsView())
			if cn == 0 {
				continue
			}
			for r := 0; r < n; r++ {
				nrm := cc.norms[r]
				if nrm == 0 {
					continue
				}
				dot := 0.0
				for i := cx.rowStart[r]; i < cx.rowStart[r+1]; i++ {
					dot += cf[cx.rowBin[i]] * cx.rowVal[i]
				}
				scores[r].Sim += cc.weights[r] * (dot / (cn * nrm))
			}
		}
	}
	return scores
}
