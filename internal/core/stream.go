package core

import (
	"sync/atomic"
	"time"

	"dot11fp/internal/capture"
	"dot11fp/internal/dot11"
)

// WindowResult is one closed detection window as seen by a streaming
// consumer: the candidates that cleared the minimum-observation rule
// (ascending address order, as CandidatesIn emits them) plus the
// senders that were observed but dropped below the minimum.
//
// The result and everything it references is handed off to the
// consumer: the accumulator keeps no alias after emitting it, so
// signatures and slices may be retained or mutated freely.
type WindowResult struct {
	// Index is the window ordinal among non-empty windows, exactly as
	// Windows and CandidatesIn number them.
	Index int
	// Start and End bound the window in trace time [Start, End) µs.
	// For a non-positive window size the whole stream is one window
	// and End is the last record's timestamp plus one.
	Start, End int64
	// Frames is the number of records scanned in the window, whether
	// or not they were attributed to a sender.
	Frames int
	// Candidates are the senders that cleared MinObservations.
	Candidates []Candidate
	// Dropped are the senders that did not.
	Dropped []DroppedSender
}

// DroppedSender is a sender observed in a window whose signature stayed
// below the minimum-observation rule.
type DroppedSender struct {
	Addr         dot11.Addr
	Observations uint64
}

// WindowAccumulator is the incremental form of CandidatesIn: records
// are pushed one at a time, per-sender signatures accumulate in the
// current detection window, and each window is emitted to the callback
// as soon as a record crosses its boundary (or Flush is called). The
// window grid is anchored at the first pushed record, windows are
// numbered among non-empty windows, and the inter-arrival context
// resets at each boundary — byte-for-byte the semantics of the batch
// path, which is itself implemented on top of this type.
//
// Push and Flush must be called from a single goroutine; LiveSenders
// and WindowsClosed are safe to read from any goroutine.
type WindowAccumulator struct {
	cfg  Config
	w    int64 // window size in µs; <= 0 means one window for the stream
	emit func(*WindowResult)

	sigs    map[dot11.Addr]*Signature
	started bool  // anchor captured
	anchor  int64 // T of the first pushed record: the window-grid origin
	open    bool  // a window is currently accumulating
	bucket  int64 // current window ordinal relative to the anchor
	wi      int   // index among non-empty windows
	prevT   int64 // previous record's T; -1 at each window start
	frames  int

	live    atomic.Int64 // senders in the open window, for concurrent stats
	windows atomic.Int64 // windows emitted so far
}

// NewWindowAccumulator creates an accumulator emitting each closed
// window to emit (which may be nil to discard results — useful only
// for measurement). The config's zero fields are materialised exactly
// as the batch extraction paths do.
func NewWindowAccumulator(window time.Duration, cfg Config, emit func(*WindowResult)) *WindowAccumulator {
	return &WindowAccumulator{
		cfg:  cfg.withDefaults(),
		w:    window.Microseconds(),
		emit: emit,
		sigs: make(map[dot11.Addr]*Signature),
		wi:   -1,
	}
}

// Config returns the extraction configuration with defaults materialised.
func (a *WindowAccumulator) Config() Config { return a.cfg }

// LiveSenders returns the number of distinct senders with observations
// in the currently open window.
func (a *WindowAccumulator) LiveSenders() int { return int(a.live.Load()) }

// WindowsClosed returns the number of windows emitted so far.
func (a *WindowAccumulator) WindowsClosed() int { return int(a.windows.Load()) }

// Push scans one record. The record is not retained. Crossing a window
// boundary closes the previous window (emitting its WindowResult)
// before the record is accounted to the new one.
func (a *WindowAccumulator) Push(rec *capture.Record) {
	if !a.started {
		a.started = true
		a.anchor = rec.T
	}
	var b int64
	if a.w > 0 {
		b = (rec.T - a.anchor) / a.w
	}
	if !a.open || b != a.bucket {
		if a.open {
			a.close()
		}
		a.open = true
		a.bucket = b
		a.wi++
		a.prevT = -1 // each window starts a fresh inter-arrival context
	}
	a.frames++
	if !rec.Sender.IsZero() && (rec.FCSOK || a.cfg.KeepBadFCS) {
		if v, ok := a.cfg.Param.Value(rec, a.prevT); ok {
			sig, have := a.sigs[rec.Sender]
			if !have {
				sig = NewSignature(a.cfg.Param, a.cfg.Bins)
				a.sigs[rec.Sender] = sig
				a.live.Add(1)
			}
			sig.Add(rec.Class, v)
		}
	}
	a.prevT = rec.T
}

// Flush closes the currently open window, if any. The next pushed
// record opens a fresh window on the same grid; flushing at stream end
// (the batch paths' usage) leaves streaming output identical to
// windowing the materialised trace.
func (a *WindowAccumulator) Flush() {
	if a.open {
		a.close()
		a.open = false
	}
}

// close emits the accumulated window and resets the per-window state.
func (a *WindowAccumulator) close() {
	res := &WindowResult{Index: a.wi, Frames: a.frames}
	if a.w > 0 {
		res.Start = a.anchor + a.bucket*a.w
		res.End = res.Start + a.w
	} else {
		res.Start = a.anchor
		res.End = a.prevT + 1
	}
	for _, addr := range sortedAddrs(a.sigs) {
		sig := a.sigs[addr]
		if sig.Observations() >= uint64(a.cfg.MinObservations) {
			res.Candidates = append(res.Candidates, Candidate{Addr: addr, Window: a.wi, Sig: sig})
		} else {
			res.Dropped = append(res.Dropped, DroppedSender{Addr: addr, Observations: sig.Observations()})
		}
	}
	clear(a.sigs)
	a.live.Store(0)
	a.frames = 0
	a.windows.Add(1)
	if a.emit != nil {
		a.emit(res)
	}
}
