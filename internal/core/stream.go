package core

import (
	"sync/atomic"
	"time"

	"dot11fp/internal/capture"
	"dot11fp/internal/dot11"
)

// WindowResult is one closed detection window as seen by a streaming
// consumer: the candidates that cleared the minimum-observation rule
// (ascending address order, as CandidatesIn emits them) plus the
// senders that were observed but dropped below the minimum.
//
// The result and everything it references is handed off to the
// consumer: the accumulator keeps no alias after emitting it, so
// signatures and slices may be retained or mutated freely.
type WindowResult struct {
	// Index is the window ordinal among non-empty windows, exactly as
	// Windows and CandidatesIn number them.
	Index int
	// Start and End bound the window in trace time [Start, End) µs.
	// For a non-positive window size the whole stream is one window
	// and End is the last record's timestamp plus one.
	Start, End int64
	// Frames is the number of records scanned in the window, whether
	// or not they were attributed to a sender.
	Frames int
	// Candidates are the senders that cleared MinObservations
	// (single-parameter pipelines; empty in ensemble mode).
	Candidates []Candidate
	// Multi are the multi-parameter candidates of an ensemble pipeline:
	// senders that cleared every member's minimum-observation rule, one
	// signature per member (empty in single-parameter mode).
	Multi []MultiCandidate
	// Dropped are the senders that did not clear the rule — for an
	// ensemble, senders that cleared some members but not all are
	// dropped too, reported with their best member's observation count.
	Dropped []DroppedSender
	// EvictedSilently counts evictions beyond the per-window record
	// cap: they are tallied (here and in the engines' counters) but
	// carry no individual Dropped entry, so eviction bookkeeping stays
	// O(SenderLimits.MaxSenders) under unbounded MAC churn.
	EvictedSilently uint64
}

// DroppedSender is a sender observed in a window that was never
// matched: its signature stayed below the minimum-observation rule, or
// it was evicted by the table's SenderLimits before the window closed.
type DroppedSender struct {
	Addr         dot11.Addr
	Observations uint64
	// Evicted distinguishes a bounded-state eviction (cap or idle) from
	// the ordinary below-minimum drop.
	Evicted bool
}

// WindowMeta is the bookkeeping of one closed detection window, as
// produced by WindowClock.
type WindowMeta struct {
	// Index is the window ordinal among non-empty windows.
	Index int
	// Start and End bound the window in trace time [Start, End) µs.
	Start, End int64
	// Frames is the number of records scanned in the window.
	Frames int
}

// WindowClock is the detection-window bookkeeping shared by
// WindowAccumulator and the sharded engine's router — one
// implementation of the grid anchoring, non-empty-window numbering,
// per-window frame counting and inter-arrival context reset, so the
// serial and sharded paths cannot drift apart. The grid is anchored at
// the first record; a non-positive window size keeps the whole stream
// as one window (closed only by CloseOpen).
type WindowClock struct {
	w       int64 // window size in µs; <= 0 means one window for the stream
	started bool  // anchor captured
	anchor  int64 // T of the first record: the window-grid origin
	open    bool  // a window is currently accumulating
	bucket  int64 // current window ordinal relative to the anchor
	index   int   // index among non-empty windows
	prevT   int64 // previous record's T; -1 at each window start
	frames  int
}

// NewWindowClock creates a clock for the given window size.
func NewWindowClock(window time.Duration) WindowClock {
	return WindowClock{w: window.Microseconds(), index: -1, prevT: -1}
}

// Advance accounts one record at time t: if t falls outside the open
// window, that window closes — its metadata is returned with
// closed=true — before the record is counted to the freshly opened
// one. Call Mark(t) after processing the record.
func (c *WindowClock) Advance(t int64) (closed bool, meta WindowMeta) {
	if !c.started {
		c.started = true
		c.anchor = t
	}
	var b int64
	if c.w > 0 {
		b = (t - c.anchor) / c.w
	}
	if !c.open || b != c.bucket {
		if c.open {
			closed, meta = true, c.meta()
		}
		c.open = true
		c.bucket = b
		c.index++
		c.prevT = -1 // each window starts a fresh inter-arrival context
		c.frames = 0
	}
	c.frames++
	return closed, meta
}

// CloseOpen closes the currently open window early (the Flush path);
// the next Advance opens a fresh window on the same grid.
func (c *WindowClock) CloseOpen() (closed bool, meta WindowMeta) {
	if !c.open {
		return false, WindowMeta{}
	}
	meta = c.meta()
	c.open = false
	return true, meta
}

// PrevT returns the previous record's end of reception — the
// inter-arrival context — or -1 at a window start.
func (c *WindowClock) PrevT() int64 { return c.prevT }

// Mark records t as the new inter-arrival context.
func (c *WindowClock) Mark(t int64) { c.prevT = t }

// meta captures the open window's bookkeeping.
func (c *WindowClock) meta() WindowMeta {
	m := WindowMeta{Index: c.index, Frames: c.frames}
	if c.w > 0 {
		m.Start = c.anchor + c.bucket*c.w
		m.End = m.Start + c.w
	} else {
		m.Start = c.anchor
		m.End = c.prevT + 1
	}
	return m
}

// WindowAccumulator is the incremental form of CandidatesIn: records
// are pushed one at a time, per-sender signatures accumulate in the
// current detection window, and each window is emitted to the callback
// as soon as a record crosses its boundary (or Flush is called). The
// window grid is anchored at the first pushed record, windows are
// numbered among non-empty windows, and the inter-arrival context
// resets at each boundary — byte-for-byte the semantics of the batch
// path, which is itself implemented on top of this type.
//
// Push and Flush must be called from a single goroutine; LiveSenders
// and WindowsClosed are safe to read from any goroutine.
type WindowAccumulator struct {
	cfg     Config
	cfgs    []Config // ensemble members; nil in single-parameter mode
	clock   WindowClock
	emit    func(*WindowResult)
	table   *SenderTable
	cluster *Clusterer // nil = no MAC-randomization clustering

	// Reusable per-record member value buffers (ensemble mode only), so
	// the multi-parameter push path allocates nothing per frame.
	vals  []float64
	valid []bool

	windows atomic.Int64 // windows emitted so far
}

// NewWindowAccumulator creates an accumulator emitting each closed
// window to emit (which may be nil to discard results — useful only
// for measurement). The config's zero fields are materialised exactly
// as the batch extraction paths do.
func NewWindowAccumulator(window time.Duration, cfg Config, emit func(*WindowResult)) *WindowAccumulator {
	a := &WindowAccumulator{
		clock: NewWindowClock(window),
		emit:  emit,
	}
	a.table = NewSenderTable(cfg, SenderLimits{})
	a.cfg = a.table.Config()
	return a
}

// NewEnsembleAccumulator creates a multi-parameter accumulator: one
// window clock and one shared inter-arrival context drive the
// extraction of every member parameter in a single pass over the
// record stream, so each sender accumulates one signature per member
// per window. Closed windows emit their fully-qualified senders as
// WindowResult.Multi (all members' minimum-observation rules cleared);
// senders clearing only some members surface in WindowResult.Dropped
// instead of silently vanishing. Member configurations must carry
// distinct parameters.
func NewEnsembleAccumulator(window time.Duration, cfgs []Config, emit func(*WindowResult)) (*WindowAccumulator, error) {
	table, err := NewEnsembleSenderTable(cfgs, SenderLimits{})
	if err != nil {
		return nil, err
	}
	a := &WindowAccumulator{
		clock: NewWindowClock(window),
		emit:  emit,
		table: table,
		vals:  make([]float64, len(cfgs)),
		valid: make([]bool, len(cfgs)),
	}
	a.cfgs = table.Configs()
	a.cfg = a.cfgs[0]
	return a, nil
}

// Config returns the extraction configuration with defaults materialised
// (the first member's, in ensemble mode).
func (a *WindowAccumulator) Config() Config { return a.cfg }

// Configs returns every member configuration with defaults
// materialised, or nil for a single-parameter accumulator.
func (a *WindowAccumulator) Configs() []Config {
	if a.cfgs == nil {
		return nil
	}
	out := make([]Config, len(a.cfgs))
	copy(out, a.cfgs)
	return out
}

// SetClusterer routes attribution through a MAC-randomization
// clusterer: every attributable record's sender is resolved to its
// clustered device address before sender-table admission (nil disables,
// the default — a single branch on the per-frame path). Call before the
// first Push.
func (a *WindowAccumulator) SetClusterer(c *Clusterer) { a.cluster = c }

// SetLimits bounds the accumulator's per-window sender state (see
// SenderLimits). With the zero value — the default — state is unbounded
// and output is byte-for-byte the batch pipeline's; with bounds in
// place, evicted senders surface in WindowResult.Dropped with Evicted
// set. Call before the first Push.
func (a *WindowAccumulator) SetLimits(l SenderLimits) { a.table.SetLimits(l) }

// LiveSenders returns the number of distinct senders with observations
// in the currently open window.
func (a *WindowAccumulator) LiveSenders() int { return a.table.LiveSenders() }

// EvictedSenders returns the number of senders evicted under the
// accumulator's SenderLimits so far, across all windows.
func (a *WindowAccumulator) EvictedSenders() uint64 { return a.table.EvictedTotal() }

// WindowsClosed returns the number of windows emitted so far.
func (a *WindowAccumulator) WindowsClosed() int { return int(a.windows.Load()) }

// Push scans one record. The record is not retained. Crossing a window
// boundary closes the previous window (emitting its WindowResult)
// before the record is accounted to the new one.
//
//fp:hotpath test=TestEnginePushZeroAllocs
func (a *WindowAccumulator) Push(rec *capture.Record) {
	if closed, meta := a.clock.Advance(rec.T); closed {
		a.close(meta)
	}
	if a.cfgs != nil {
		a.pushMulti(rec)
	} else if !rec.Sender.IsZero() && (rec.FCSOK || a.cfg.KeepBadFCS) {
		sender := rec.Sender
		if a.cluster != nil {
			sender = a.cluster.Resolve(rec)
		}
		if v, ok := a.cfg.Param.Value(rec, a.clock.PrevT()); ok {
			a.table.Observe(sender, rec.Class, v, rec.T)
		}
	}
	a.clock.Mark(rec.T)
}

// pushMulti applies the ensemble attribution: one pass computes every
// member's parameter value against the shared inter-arrival context; a
// record reaches the sender table when at least one member's value is
// defined, so sender recency (and with it bounded-state eviction) stays
// a deterministic function of the attributed record stream. MemberValues
// is the same computation, exported for the sharded engine's router.
//
//fp:hotpath test=TestEnsemblePushZeroAllocs
func (a *WindowAccumulator) pushMulti(rec *capture.Record) {
	if rec.Sender.IsZero() {
		return
	}
	sender := rec.Sender
	if a.cluster != nil {
		sender = a.cluster.Resolve(rec)
	}
	if MemberValues(a.cfgs, rec, a.clock.PrevT(), a.vals, a.valid) {
		a.table.ObserveN(sender, rec.Class, a.vals, a.valid, rec.T)
	}
}

// MemberValues computes every member's parameter value for one
// attributable record against the shared inter-arrival context prevT,
// writing into the caller's vals/valid buffers (len(cfgs) each) and
// reporting whether any member's value is defined. A member whose
// configuration keeps bad-FCS frames sees them; the others skip them —
// per-member attribution, shared context, exactly as per-member
// extraction over the same records behaves.
//
//fp:hotpath test=TestEnsemblePushZeroAllocs
func MemberValues(cfgs []Config, rec *capture.Record, prevT int64, vals []float64, valid []bool) bool {
	any := false
	for m := range cfgs {
		ok := rec.FCSOK || cfgs[m].KeepBadFCS
		var v float64
		if ok {
			v, ok = cfgs[m].Param.Value(rec, prevT)
		}
		vals[m], valid[m] = v, ok
		any = any || ok
	}
	return any
}

// Flush closes the currently open window, if any. The next pushed
// record opens a fresh window on the same grid; flushing at stream end
// (the batch paths' usage) leaves streaming output identical to
// windowing the materialised trace.
func (a *WindowAccumulator) Flush() {
	if closed, meta := a.clock.CloseOpen(); closed {
		a.close(meta)
	}
}

// close emits the accumulated window.
//
//fp:coldpath runs once per closed window; drain and emit amortise across the window's frames
func (a *WindowAccumulator) close(meta WindowMeta) {
	res := &WindowResult{Index: meta.Index, Start: meta.Start, End: meta.End, Frames: meta.Frames}
	a.table.Drain(res)
	a.windows.Add(1)
	if a.emit != nil {
		a.emit(res)
	}
}
