package core

import (
	"math"
	"math/rand"
	"testing"
)

// The fused pruned search must preserve the ensemble's bit-identity
// contract: every fused TopK/Best result with all members indexed is
// bit-for-bit the ranking of the exhaustive fused MatchInto vector.

// randSigFor is randSig for an arbitrary member parameter.
func randSigFor(rng *rand.Rand, p Param, spec BinSpec) *Signature {
	sig := NewSignature(p, spec)
	for _, class := range propClasses {
		if rng.Intn(3) == 0 {
			continue
		}
		nnz := 1 + rng.Intn(6)
		for j := 0; j < nnz; j++ {
			synthAdd(sig, class, rng.Intn(spec.Bins), 1+rng.Intn(5))
		}
	}
	return sig
}

// buildEnsemblePair mirrors buildPair for ensembles: identical member
// references enrolled into an exhaustive and an indexed ensemble.
func buildEnsemblePair(t *testing.T, measure Measure, params []Param, sigs [][]*Signature) (exh, idx *Ensemble) {
	t.Helper()
	spec := BinSpec{Width: synthWidth, Bins: 64}
	var dbsE, dbsI []*Database
	for mi, p := range params {
		cfg := Config{Param: p, Bins: spec, MinObservations: 1}
		dbE := NewDatabase(cfg, measure)
		dbE.SetIndexing(IndexOff)
		dbI := NewDatabase(cfg, measure)
		dbI.SetIndexing(IndexOn)
		for i, sig := range sigs[mi] {
			if err := dbE.Add(synthAddr(i), sig.Clone()); err != nil {
				t.Fatal(err)
			}
			if err := dbI.Add(synthAddr(i), sig.Clone()); err != nil {
				t.Fatal(err)
			}
		}
		dbsE = append(dbsE, dbE)
		dbsI = append(dbsI, dbI)
	}
	exh, err := NewEnsembleFrom(dbsE...)
	if err != nil {
		t.Fatal(err)
	}
	idx, err = NewEnsembleFrom(dbsI...)
	if err != nil {
		t.Fatal(err)
	}
	if !idx.Compile().indexedAll() {
		t.Fatal("indexed ensemble did not build every member index")
	}
	if idx.Compile().IndexStats().Enabled == false {
		t.Fatal("ensemble IndexStats not enabled with every member indexed")
	}
	return exh, idx
}

func TestEnsembleIndexBitIdentical(t *testing.T) {
	params := []Param{ParamRate, ParamSize, ParamInterArrival}
	for _, measure := range allMeasures {
		measure := measure
		t.Run(measure.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			spec := BinSpec{Width: synthWidth, Bins: 64}
			n := 90
			sigs := make([][]*Signature, len(params))
			for mi, p := range params {
				for i := 0; i < n; i++ {
					sigs[mi] = append(sigs[mi], randSigFor(rng, p, spec))
				}
				// Planted exact fused ties: two clones of reference 7.
				sigs[mi] = append(sigs[mi], sigs[mi][7].Clone(), sigs[mi][7].Clone())
			}
			exh, idx := buildEnsemblePair(t, measure, params, sigs)
			ce, ci := exh.Compile(), idx.Compile()

			var scratch EnsembleScratch
			for trial := 0; trial < 10; trial++ {
				cand := MultiCandidate{Addr: synthAddr(1000 + trial)}
				switch trial {
				case 0: // exact triple tie at the top
					for mi := range params {
						cand.Sigs = append(cand.Sigs, sigs[mi][7].Clone())
					}
				case 1: // nil member signatures
					cand.Sigs = make([]*Signature, len(params))
				case 2: // empty member signatures
					for _, p := range params {
						cand.Sigs = append(cand.Sigs, NewSignature(p, spec))
					}
				default:
					for _, p := range params {
						cand.Sigs = append(cand.Sigs, randSigFor(rng, p, spec))
					}
				}
				want, _ := ce.Match(cand)
				got, _ := ci.Match(cand)
				sameScores(t, "Match", want, got)

				wb, wok := ce.Best(cand)
				gb, gok := ci.Best(cand)
				if wok != gok || wb.Addr != gb.Addr || math.Float64bits(wb.Sim) != math.Float64bits(gb.Sim) {
					t.Fatalf("Best: got %v/%x/%v, want %v/%x/%v",
						gb.Addr, math.Float64bits(gb.Sim), gok, wb.Addr, math.Float64bits(wb.Sim), wok)
				}

				for _, k := range []int{1, 2, 5, ce.Len(), ce.Len() + 3} {
					sameScores(t, "TopK(ranked)", exhaustiveTopK(want, k), ci.TopKInto(cand, k, &scratch))
					sameScores(t, "TopK(fallback)", ce.TopK(cand, k), ci.TopK(cand, k))
				}
			}

			// Mismatched candidates yield nil, like MatchInto.
			if got := ci.TopK(MultiCandidate{}, 3); got != nil {
				t.Fatalf("TopK on mismatched candidate: %v, want nil", got)
			}
		})
	}
}

// TestEnsembleTopKBatchConsistent pins the fused batch top-k entry
// points against the one-shot path for every worker count, mismatched
// rows included.
func TestEnsembleTopKBatchConsistent(t *testing.T) {
	params := []Param{ParamRate, ParamInterArrival}
	spec := BinSpec{Width: synthWidth, Bins: 64}
	rng := rand.New(rand.NewSource(21))
	sigs := make([][]*Signature, len(params))
	for mi, p := range params {
		for i := 0; i < 300; i++ {
			sigs[mi] = append(sigs[mi], randSigFor(rng, p, spec))
		}
	}
	_, idx := buildEnsemblePair(t, MeasureCosine, params, sigs)
	ci := idx.Compile()

	cands := make([]MultiCandidate, 24)
	for i := range cands {
		cands[i].Addr = synthAddr(2000 + i)
		for _, p := range params {
			cands[i].Sigs = append(cands[i].Sigs, randSigFor(rng, p, spec))
		}
	}
	cands[5].Sigs = cands[5].Sigs[:1] // member-count mismatch: nil row

	want := make([][]Score, len(cands))
	for i := range cands {
		want[i] = ci.TopK(cands[i], 4)
	}
	if want[5] != nil {
		t.Fatal("mismatched candidate should rank nil")
	}
	var scratch EnsembleScratch
	got := ci.TopKAllScratch(cands, 4, &scratch)
	for i := range want {
		sameScores(t, "TopKAllScratch", want[i], got[i])
	}
	for _, workers := range []int{1, 3, 8} {
		got := ci.TopKAllWorkers(cands, 4, workers)
		for i := range want {
			sameScores(t, "TopKAllWorkers", want[i], got[i])
		}
	}
}

// TestEnsembleIndexMixedFallback pins the fallback: an ensemble with
// one unindexed member still ranks bit-identically through the fused
// exhaustive vector, and SetIndexing forwards to every member.
func TestEnsembleIndexMixedFallback(t *testing.T) {
	params := []Param{ParamRate, ParamInterArrival}
	spec := BinSpec{Width: synthWidth, Bins: 64}
	rng := rand.New(rand.NewSource(31))
	sigs := make([][]*Signature, len(params))
	for mi, p := range params {
		for i := 0; i < 80; i++ {
			sigs[mi] = append(sigs[mi], randSigFor(rng, p, spec))
		}
	}
	exh, idx := buildEnsemblePair(t, MeasureIntersection, params, sigs)
	idx.Members()[1].SetIndexing(IndexOff)
	ci := idx.Compile()
	if ci.indexedAll() {
		t.Fatal("member IndexOff did not disable the fused pruned search")
	}
	if ci.IndexStats().Enabled {
		t.Fatal("ensemble IndexStats enabled with an unindexed member")
	}
	cand := MultiCandidate{Addr: synthAddr(999)}
	for _, p := range params {
		cand.Sigs = append(cand.Sigs, randSigFor(rng, p, spec))
	}
	fused, _ := exh.Compile().Match(cand)
	sameScores(t, "TopK(mixed)", exhaustiveTopK(fused, 6), ci.TopK(cand, 6))

	idx.SetIndexing(IndexOn)
	if !idx.Compile().indexedAll() {
		t.Fatal("Ensemble.SetIndexing(IndexOn) did not reach every member")
	}
	sameScores(t, "TopK(restored)", exhaustiveTopK(fused, 6), idx.TopK(cand, 6))
}
