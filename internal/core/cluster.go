package core

import (
	"dot11fp/internal/capture"
	"dot11fp/internal/dot11"
)

// DefaultClusterBindings bounds the raw-MAC → device binding table when
// NewClusterer is given no explicit cap. Randomizing clients mint a
// fresh address per probe burst, so the binding table — unlike the
// device table — grows with time, not with population.
const DefaultClusterBindings = 1 << 16

// Clusterer merges randomized-MAC senders into one logical device by
// probe-request content, upstream of sender-table admission: every
// FCS-valid probe request with a body is fingerprinted
// (dot11.Elems.ContentKey — IE order, rates, capability; deliberately
// not the SSID), and its sender address is bound to a canonical device
// address derived from that fingerprint. Subsequent frames from the
// same (rotated) address — data, nulls, further probes — resolve to the
// canonical address, so the window accumulator and the reference
// databases see one stable device where the air shows a parade of
// random MACs.
//
// The canonical address is a pure function of the content key, so the
// serial engine, every shard router, training and batch application all
// agree on it without coordination. Devices with byte-identical probe
// content (same model, driver and configuration) are inherently merged
// — the resolution limit of content-based clustering.
//
// A Clusterer is NOT safe for concurrent use: each engine owns one and
// calls it from its single ingest/router goroutine.
type Clusterer struct {
	devices map[uint64]dot11.Addr     // content key → canonical device address
	macs    map[dot11.Addr]dot11.Addr // raw sender → canonical device address
	// FIFO over macs insertions for bounded eviction; head indexes the
	// oldest live entry and the slice is compacted when it drifts.
	order   []dot11.Addr
	head    int
	maxMACs int

	rebound uint64 // bindings that moved to a different device
	evicted uint64 // bindings dropped by the FIFO bound
}

// NewClusterer returns a clusterer bounding the raw-MAC binding table
// at maxBindings (0 selects DefaultClusterBindings; negative means
// unbounded). The device table is unbounded: it grows with distinct
// probe-content fingerprints, i.e. with the real device population.
func NewClusterer(maxBindings int) *Clusterer {
	if maxBindings == 0 {
		maxBindings = DefaultClusterBindings
	}
	if maxBindings < 0 {
		maxBindings = 0
	}
	return &Clusterer{
		devices: make(map[uint64]dot11.Addr),
		macs:    make(map[dot11.Addr]dot11.Addr),
		maxMACs: maxBindings,
	}
}

// CanonicalAddr derives the canonical device address for a content key:
// locally administered, unicast, with a first octet (0x0a) no real
// vendor OUI and no simulator address (0x02) uses, so canonical
// addresses can never collide with observed senders.
func CanonicalAddr(key uint64) dot11.Addr {
	return dot11.Addr{0x0a, byte(key >> 32), byte(key >> 24), byte(key >> 16), byte(key >> 8), byte(key)}
}

// Resolve returns the address the record's sender should be attributed
// to: the canonical device address when the sender is (or just became)
// bound to a clustered device, the raw sender otherwise. An FCS-valid
// probe request with content establishes or refreshes the binding; the
// record itself is not retained or mutated.
//
//fp:hotpath test=TestClusterResolveZeroAllocs
func (c *Clusterer) Resolve(rec *capture.Record) dot11.Addr {
	if rec.Class == dot11.ClassProbeReq && len(rec.ProbeIEs) > 0 && rec.FCSOK && !rec.Sender.IsZero() {
		e := dot11.ParseElems(rec.ProbeIEs)
		key := e.ContentKey()
		canon, ok := c.devices[key]
		if !ok {
			canon = CanonicalAddr(key)
			c.devices[key] = canon
		}
		c.bind(rec.Sender, canon)
		return canon
	}
	if canon, ok := c.macs[rec.Sender]; ok {
		return canon
	}
	return rec.Sender
}

// bind records raw → canon, evicting the oldest binding at the cap.
func (c *Clusterer) bind(raw, canon dot11.Addr) {
	if prev, ok := c.macs[raw]; ok {
		if prev != canon {
			// Content drift (or a fingerprint collision breaking up):
			// the newest observation wins.
			c.macs[raw] = canon
			c.rebound++
		}
		return
	}
	if c.maxMACs > 0 && len(c.macs) >= c.maxMACs {
		old := c.order[c.head]
		c.order[c.head] = dot11.Addr{}
		c.head++
		delete(c.macs, old)
		c.evicted++
		if c.head > len(c.order)/2 {
			c.order = append(c.order[:0], c.order[c.head:]...)
			c.head = 0
		}
	}
	c.macs[raw] = canon
	c.order = append(c.order, raw)
}

// Apply rewrites a trace's senders through the clusterer, in record
// order, returning a new trace that shares everything but the rewritten
// records. It is the batch adapter over Resolve: training and
// evaluation on an Apply'd trace see exactly the senders the streaming
// engines would attribute.
func (c *Clusterer) Apply(tr *capture.Trace) *capture.Trace {
	out := &capture.Trace{
		Name: tr.Name, Base: tr.Base, Channel: tr.Channel, Encrypted: tr.Encrypted,
		Records: make([]capture.Record, len(tr.Records)),
	}
	for i := range tr.Records {
		rec := tr.Records[i]
		rec.Sender = c.Resolve(&tr.Records[i])
		out.Records[i] = rec
	}
	return out
}

// Devices returns the number of distinct clustered devices seen.
func (c *Clusterer) Devices() int { return len(c.devices) }

// Bindings returns the number of live raw-MAC → device bindings.
func (c *Clusterer) Bindings() int { return len(c.macs) }

// Rebound returns how many bindings moved between devices.
func (c *Clusterer) Rebound() uint64 { return c.rebound }

// Evicted returns how many bindings the FIFO bound dropped.
func (c *Clusterer) Evicted() uint64 { return c.evicted }
