package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"dot11fp/internal/dot11"
	"dot11fp/internal/histogram"
)

// Binary database codec. The JSON codec (Save/Load) stays the interop
// format — readable, diffable, stable — but it is far too slow and too
// large for the online trainer's checkpoint path, where a SIGHUP (or a
// graceful shutdown) must serialise thousands of references without
// stalling ingestion. SaveBinary/LoadBinary are the checkpoint codec:
// a versioned, length-delimited layout with varint-packed histogram
// counts, written and parsed in one streaming pass.
//
// Layout (version 1, little-endian, varints are unsigned LEB128):
//
//	magic   [7]byte "D11FPDB"
//	version u8      (1)
//	param   u8 len + bytes (short name, e.g. "iat")
//	measure u8 len + bytes (e.g. "cosine")
//	bins    u32     histogram bin count
//	width   f64     histogram bin width (IEEE-754 bits)
//	knee    f64     logarithmic-binning knee (0 = pure linear)
//	minObs  u32     minimum-observation rule
//	devices u32     reference count
//	  per device: addr [6]byte, classes u8,
//	    per class: class u8, dropped uvarint, bins × count uvarint
//
// Devices are written in insertion order and loaded back in that same
// order, so a binary round trip reproduces the similarity-vector order
// (and with it MatchAll output) bit-identically.

// binaryMagic identifies a binary reference database stream.
var binaryMagic = [7]byte{'D', '1', '1', 'F', 'P', 'D', 'B'}

// binaryVersion is the current format version.
const binaryVersion = 1

// ErrBinaryDatabase reports a corrupt or truncated binary database.
// All LoadBinary corruption errors wrap it, so callers can distinguish
// bad bytes from I/O failures with errors.Is.
var ErrBinaryDatabase = errors.New("core: corrupt binary database")

// ErrBinaryVersion reports a well-formed binary database written by a
// newer format version than this build understands.
var ErrBinaryVersion = errors.New("core: unsupported binary database version")

// corruptf wraps a corruption detail in ErrBinaryDatabase.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBinaryDatabase, fmt.Sprintf(format, args...))
}

// Decode-time sanity bounds: a hostile header must not be able to make
// the loader allocate more than a handful of bytes before the stream
// proves it actually carries that much data.
const (
	maxBinaryBins    = 1 << 20 // 8 MiB of counts per histogram, far above any real shape
	maxBinaryNameLen = 64
)

// SaveBinary serialises the database in the binary checkpoint format.
func (db *Database) SaveBinary(w io.Writer) error {
	// Save-side mirror of the loader's header bounds: the saver must
	// never emit a checkpoint LoadBinary will reject, or the learned
	// references are unrecoverable exactly when they are needed.
	switch {
	case db.cfg.Bins.Bins <= 0 || db.cfg.Bins.Bins > maxBinaryBins:
		return fmt.Errorf("core: bin count %d outside the binary format's bounds", db.cfg.Bins.Bins)
	case !(db.cfg.Bins.Width > 0) || math.IsInf(db.cfg.Bins.Width, 0):
		return fmt.Errorf("core: bin width %v outside the binary format's bounds", db.cfg.Bins.Width)
	case !(db.cfg.Bins.LogKnee >= 0) || math.IsInf(db.cfg.Bins.LogKnee, 0):
		return fmt.Errorf("core: log knee %v outside the binary format's bounds", db.cfg.Bins.LogKnee)
	case db.cfg.MinObservations < 0 || db.cfg.MinObservations > 1<<30:
		return fmt.Errorf("core: minimum observations %d outside the binary format's bounds", db.cfg.MinObservations)
	case len(db.order) > math.MaxUint32:
		return fmt.Errorf("core: %d devices overflow the binary format's count field", len(db.order))
	}
	bw := bufio.NewWriter(w)
	bw.Write(binaryMagic[:])
	bw.WriteByte(binaryVersion)
	if err := writeBinaryString(bw, db.cfg.Param.ShortName()); err != nil {
		return err
	}
	if err := writeBinaryString(bw, db.measure.String()); err != nil {
		return err
	}

	var fixed [8]byte
	binary.LittleEndian.PutUint32(fixed[:4], uint32(db.cfg.Bins.Bins))
	bw.Write(fixed[:4])
	binary.LittleEndian.PutUint64(fixed[:], math.Float64bits(db.cfg.Bins.Width))
	bw.Write(fixed[:8])
	binary.LittleEndian.PutUint64(fixed[:], math.Float64bits(db.cfg.Bins.LogKnee))
	bw.Write(fixed[:8])
	binary.LittleEndian.PutUint32(fixed[:4], uint32(db.cfg.MinObservations))
	bw.Write(fixed[:4])
	binary.LittleEndian.PutUint32(fixed[:4], uint32(len(db.order)))
	bw.Write(fixed[:4])

	var varint [binary.MaxVarintLen64]byte
	for _, addr := range db.order {
		sig := db.refs[addr]
		bw.Write(addr[:])
		classes := sig.Classes()
		bw.WriteByte(byte(len(classes)))
		for _, class := range classes {
			h := sig.Hist(class)
			bw.WriteByte(byte(class))
			bw.Write(varint[:binary.PutUvarint(varint[:], h.Dropped())])
			for _, c := range h.CountsView() {
				bw.Write(varint[:binary.PutUvarint(varint[:], c)])
			}
		}
	}
	return bw.Flush()
}

// writeBinaryString writes a u8-length-prefixed string, enforcing the
// same bound readBinaryString applies — the saver must never emit a
// checkpoint the loader will reject.
func writeBinaryString(bw *bufio.Writer, s string) error {
	if len(s) > maxBinaryNameLen {
		return fmt.Errorf("core: binary database name %q exceeds %d bytes", s, maxBinaryNameLen)
	}
	bw.WriteByte(byte(len(s)))
	bw.WriteString(s)
	return nil
}

// LoadBinary reads a database written by SaveBinary. Corrupt input is
// reported as a typed error (ErrBinaryDatabase or ErrBinaryVersion) —
// the loader never panics and never trusts a header field it has not
// bounded, since checkpoints cross a trust boundary like every file.
func LoadBinary(r io.Reader) (*Database, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, corruptf("reading header: %v", err)
	}
	if [7]byte(magic[:7]) != binaryMagic {
		return nil, corruptf("bad magic %q", magic[:7])
	}
	if magic[7] != binaryVersion {
		return nil, fmt.Errorf("%w: %d (this build reads version %d)", ErrBinaryVersion, magic[7], binaryVersion)
	}
	paramName, err := readBinaryString(br, "parameter name")
	if err != nil {
		return nil, err
	}
	measureName, err := readBinaryString(br, "measure name")
	if err != nil {
		return nil, err
	}
	param, err := ParamByShortName(paramName)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBinaryDatabase, err)
	}
	measure, err := MeasureByName(measureName)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBinaryDatabase, err)
	}

	var fixed [8]byte
	if _, err := io.ReadFull(br, fixed[:4]); err != nil {
		return nil, corruptf("reading bin count: %v", err)
	}
	bins := int(binary.LittleEndian.Uint32(fixed[:4]))
	if bins <= 0 || bins > maxBinaryBins {
		return nil, corruptf("bin count %d out of range", bins)
	}
	if _, err := io.ReadFull(br, fixed[:8]); err != nil {
		return nil, corruptf("reading bin width: %v", err)
	}
	width := math.Float64frombits(binary.LittleEndian.Uint64(fixed[:8]))
	if !(width > 0) || math.IsInf(width, 0) { // rejects NaN, zero, negatives
		return nil, corruptf("bin width %v out of range", width)
	}
	if _, err := io.ReadFull(br, fixed[:8]); err != nil {
		return nil, corruptf("reading log knee: %v", err)
	}
	knee := math.Float64frombits(binary.LittleEndian.Uint64(fixed[:8]))
	if !(knee >= 0) || math.IsInf(knee, 0) { // rejects NaN, negatives
		return nil, corruptf("log knee %v out of range", knee)
	}
	if _, err := io.ReadFull(br, fixed[:4]); err != nil {
		return nil, corruptf("reading minimum observations: %v", err)
	}
	minObs := int(binary.LittleEndian.Uint32(fixed[:4]))
	if minObs < 0 || minObs > 1<<30 {
		return nil, corruptf("minimum observations %d out of range", minObs)
	}
	if _, err := io.ReadFull(br, fixed[:4]); err != nil {
		return nil, corruptf("reading device count: %v", err)
	}
	devices := int(binary.LittleEndian.Uint32(fixed[:4]))
	if devices < 0 {
		return nil, corruptf("device count %d out of range", devices)
	}

	cfg := Config{Param: param, Bins: BinSpec{Bins: bins, Width: width, LogKnee: knee}, MinObservations: minObs}
	db := NewDatabase(cfg, measure)
	// The device loop allocates per device actually present in the
	// stream, never from the claimed count alone: a huge count over a
	// short stream fails at the first missing byte.
	for d := 0; d < devices; d++ {
		var addr dot11.Addr
		if _, err := io.ReadFull(br, addr[:]); err != nil {
			return nil, corruptf("device %d address: %v", d, err)
		}
		if db.refs[addr] != nil {
			return nil, corruptf("duplicate device %v", addr)
		}
		nClasses, err := br.ReadByte()
		if err != nil {
			return nil, corruptf("device %v class count: %v", addr, err)
		}
		if int(nClasses) > dot11.NumClasses {
			return nil, corruptf("device %v claims %d frame classes (max %d)", addr, nClasses, dot11.NumClasses)
		}
		sig := NewSignature(param, cfg.Bins)
		for k := 0; k < int(nClasses); k++ {
			cb, err := br.ReadByte()
			if err != nil {
				return nil, corruptf("device %v class id: %v", addr, err)
			}
			class := dot11.Class(cb)
			if int(cb) >= dot11.NumClasses {
				return nil, corruptf("device %v: unknown frame class %d", addr, cb)
			}
			if sig.Hist(class) != nil {
				return nil, corruptf("device %v: duplicate frame class %v", addr, class)
			}
			dropped, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, corruptf("device %v class %v dropped count: %v", addr, class, err)
			}
			snap := histogram.Snapshot{BinWidth: width, Counts: make([]uint64, bins), Dropped: dropped}
			for i := 0; i < bins; i++ {
				if snap.Counts[i], err = binary.ReadUvarint(br); err != nil {
					return nil, corruptf("device %v class %v bin %d: %v", addr, class, i, err)
				}
			}
			h, err := histogram.FromSnapshot(snap)
			if err != nil {
				return nil, fmt.Errorf("%w: device %v class %v: %v", ErrBinaryDatabase, addr, class, err)
			}
			sig.setHist(class, h)
		}
		if err := db.Add(addr, sig); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBinaryDatabase, err)
		}
	}
	return db, nil
}

// readBinaryString reads a u8-length-prefixed string.
func readBinaryString(br *bufio.Reader, what string) (string, error) {
	n, err := br.ReadByte()
	if err != nil {
		return "", corruptf("reading %s length: %v", what, err)
	}
	if int(n) > maxBinaryNameLen {
		return "", corruptf("%s length %d out of range", what, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", corruptf("reading %s: %v", what, err)
	}
	return string(buf), nil
}
