package core

import (
	"fmt"

	"dot11fp/internal/histogram"
)

// Measure selects the histogram similarity function. The paper uses
// cosine similarity; the others support the "alternative measures"
// ablation.
type Measure uint8

// Similarity measures.
const (
	// MeasureCosine is the paper's Definition 2.
	MeasureCosine Measure = iota + 1
	// MeasureIntersection is histogram intersection Σ min(a,b).
	MeasureIntersection
	// MeasureBhattacharyya is the Bhattacharyya coefficient.
	MeasureBhattacharyya
	// MeasureL1 is 1 − total-variation distance.
	MeasureL1
)

// String implements fmt.Stringer.
func (m Measure) String() string {
	switch m {
	case MeasureCosine:
		return "cosine"
	case MeasureIntersection:
		return "intersection"
	case MeasureBhattacharyya:
		return "bhattacharyya"
	case MeasureL1:
		return "l1"
	default:
		return fmt.Sprintf("measure(%d)", uint8(m))
	}
}

// Measures lists all similarity measures.
var Measures = []Measure{MeasureCosine, MeasureIntersection, MeasureBhattacharyya, MeasureL1}

// MeasureByName resolves a measure's String() name ("cosine",
// "intersection", "bhattacharyya" or "l1").
func MeasureByName(s string) (Measure, error) {
	for _, m := range Measures {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("core: unknown similarity measure %q (want one of cosine, intersection, bhattacharyya, l1)", s)
}

// fn returns the underlying vector similarity.
func (m Measure) fn() func(a, b []float64) float64 {
	switch m {
	case MeasureIntersection:
		return histogram.Intersection
	case MeasureBhattacharyya:
		return histogram.Bhattacharyya
	case MeasureL1:
		return histogram.L1
	default:
		return histogram.Cosine
	}
}

// isCosine reports whether the measure evaluates as cosine. Unknown
// values fall back to cosine, mirroring fn's default, so the naive and
// compiled paths agree for every possible Measure value.
func (m Measure) isCosine() bool {
	switch m {
	case MeasureIntersection, MeasureBhattacharyya, MeasureL1:
		return false
	default:
		return true
	}
}

// Similarity computes Algorithm 1 for one candidate/reference pair:
//
//	sim = Σ_{ftype ∈ Sig(c)} weight^ftype(r) · simCos(hist^ftype(c), hist^ftype(r))
//
// Frame types absent from the reference contribute nothing (their
// reference weight is zero); frame types absent from the candidate are
// not iterated, exactly as in the paper's pseudo-code.
//
// Cosine — the paper's measure — is evaluated in the count domain
// (histogram.CosineCounts): cosine similarity is invariant under the
// count→frequency scaling, so raw counts give the mathematically
// identical result (agreeing with the frequency-domain evaluation to
// floating-point rounding) without allocating two frequency slices per
// comparison. The other measures need the frequency conversion.
// CompiledDB reproduces both paths bit-for-bit.
func Similarity(candidate, reference *Signature, m Measure) float64 {
	if candidate == nil || reference == nil {
		return 0
	}
	sim := 0.0
	if m.isCosine() {
		for _, class := range candidate.Classes() {
			rh := reference.Hist(class)
			if rh == nil {
				continue
			}
			ch := candidate.Hist(class)
			sim += reference.Weight(class) * histogram.CosineCounts(ch.CountsView(), rh.CountsView())
		}
		return sim
	}
	f := m.fn()
	for _, class := range candidate.Classes() {
		rh := reference.Hist(class)
		if rh == nil {
			continue
		}
		ch := candidate.Hist(class)
		sim += reference.Weight(class) * f(ch.Freqs(), rh.Freqs())
	}
	return sim
}
