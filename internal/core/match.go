package core

import (
	"fmt"

	"dot11fp/internal/histogram"
)

// Measure selects the histogram similarity function. The paper uses
// cosine similarity; the others support the "alternative measures"
// ablation.
type Measure uint8

// Similarity measures.
const (
	// MeasureCosine is the paper's Definition 2.
	MeasureCosine Measure = iota + 1
	// MeasureIntersection is histogram intersection Σ min(a,b).
	MeasureIntersection
	// MeasureBhattacharyya is the Bhattacharyya coefficient.
	MeasureBhattacharyya
	// MeasureL1 is 1 − total-variation distance.
	MeasureL1
)

// String implements fmt.Stringer.
func (m Measure) String() string {
	switch m {
	case MeasureCosine:
		return "cosine"
	case MeasureIntersection:
		return "intersection"
	case MeasureBhattacharyya:
		return "bhattacharyya"
	case MeasureL1:
		return "l1"
	default:
		return fmt.Sprintf("measure(%d)", uint8(m))
	}
}

// fn returns the underlying vector similarity.
func (m Measure) fn() func(a, b []float64) float64 {
	switch m {
	case MeasureIntersection:
		return histogram.Intersection
	case MeasureBhattacharyya:
		return histogram.Bhattacharyya
	case MeasureL1:
		return histogram.L1
	default:
		return histogram.Cosine
	}
}

// Similarity computes Algorithm 1 for one candidate/reference pair:
//
//	sim = Σ_{ftype ∈ Sig(c)} weight^ftype(r) · simCos(hist^ftype(c), hist^ftype(r))
//
// Frame types absent from the reference contribute nothing (their
// reference weight is zero); frame types absent from the candidate are
// not iterated, exactly as in the paper's pseudo-code.
func Similarity(candidate, reference *Signature, m Measure) float64 {
	if candidate == nil || reference == nil {
		return 0
	}
	sim := 0.0
	f := m.fn()
	for _, class := range candidate.Classes() {
		rh := reference.Hist(class)
		if rh == nil {
			continue
		}
		ch := candidate.Hist(class)
		sim += reference.Weight(class) * f(ch.Freqs(), rh.Freqs())
	}
	return sim
}
