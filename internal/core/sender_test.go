package core

import (
	"testing"
	"time"

	"dot11fp/internal/capture"
	"dot11fp/internal/dot11"
)

// TestSenderTableCapChurn is the bounded-memory acceptance test: 100k
// distinct randomized MACs stream through a capped table and the live
// sender count — the signature memory — never exceeds the cap, while
// every evicted sender is accounted for in the drained window.
func TestSenderTableCapChurn(t *testing.T) {
	t.Parallel()
	const cap = 1024
	tab := NewSenderTable(Config{Param: ParamSize}, SenderLimits{MaxSenders: cap})
	x := uint64(7)
	seen := make(map[dot11.Addr]bool)
	for i := 0; i < 100_000; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		addr := dot11.LocalAddr(x >> 16)
		seen[addr] = true
		tab.Observe(addr, dot11.ClassData, 300, int64(i)*100)
		if tab.Len() > cap {
			t.Fatalf("after %d observations the table holds %d senders, cap is %d", i+1, tab.Len(), cap)
		}
	}
	var res WindowResult
	tab.Drain(&res)
	if tab.Len() != 0 || tab.LiveSenders() != 0 {
		t.Fatalf("drain left %d/%d senders", tab.Len(), tab.LiveSenders())
	}
	// Every distinct sender is accounted for — as a candidate, a
	// detailed drop record, or a silently counted eviction (re-tracked
	// evictees may appear more than once) — and evictions cover the
	// overflow past the cap.
	total := uint64(len(res.Candidates)+len(res.Dropped)) + res.EvictedSilently
	if total < uint64(len(seen)) {
		t.Fatalf("%d candidates + dropped + silent for %d distinct senders", total, len(seen))
	}
	if got := tab.EvictedTotal(); got < uint64(len(seen)-cap) {
		t.Fatalf("%d evictions for %d distinct senders over cap %d", got, len(seen), cap)
	}
	evicted := 0
	for _, d := range res.Dropped {
		if d.Evicted {
			evicted++
		}
	}
	if uint64(evicted)+res.EvictedSilently != tab.EvictedTotal() {
		t.Fatalf("%d evicted entries + %d silent, counter says %d",
			evicted, res.EvictedSilently, tab.EvictedTotal())
	}
	// The bookkeeping itself is bounded: detailed eviction records are
	// capped, the ~95k overflow is counted, not stored.
	if evicted > 4*cap || evicted < cap {
		t.Fatalf("%d detailed eviction records for cap %d, want within [cap, 4·cap∨4096]", evicted, cap)
	}
	if res.EvictedSilently == 0 {
		t.Fatal("100k-MAC churn never overflowed the eviction record cap")
	}
}

// TestSenderTableIdleEvict pins the idle policy: a sender that goes
// quiet for longer than the bound is evicted by a later insertion's
// sweep, while active senders survive.
func TestSenderTableIdleEvict(t *testing.T) {
	t.Parallel()
	tab := NewSenderTable(Config{Param: ParamSize}, SenderLimits{IdleEvict: time.Second})
	quiet := dot11.LocalAddr(1)
	busy := dot11.LocalAddr(2)
	tab.Observe(quiet, dot11.ClassData, 100, 0)
	for i := 0; i < 100; i++ {
		tab.Observe(busy, dot11.ClassData, 100, int64(i)*100_000) // every 100 ms
	}
	// A new sender 10 s in triggers the sweep; quiet (last seen at 0)
	// is over the 1 s bound, busy is not.
	tab.Observe(dot11.LocalAddr(3), dot11.ClassData, 100, 10_000_000)
	if tab.Len() != 2 {
		t.Fatalf("table holds %d senders, want 2 (busy + newcomer)", tab.Len())
	}
	var res WindowResult
	tab.Drain(&res)
	foundQuiet := false
	for _, d := range res.Dropped {
		if d.Addr == quiet {
			foundQuiet = true
			if !d.Evicted || d.Observations != 1 {
				t.Fatalf("quiet sender drop record = %+v", d)
			}
		}
		if d.Addr == busy {
			t.Fatalf("busy sender was evicted: %+v", d)
		}
	}
	if !foundQuiet {
		t.Fatal("idle sender never surfaced in Dropped")
	}
}

// TestSenderTableIdleEvictStablePopulation pins that sweeps are driven
// by every observation, not just new-sender insertions: with a fixed
// sender set (no insertions after startup), a one-time visitor still
// ages out on the busy sender's traffic alone.
func TestSenderTableIdleEvictStablePopulation(t *testing.T) {
	t.Parallel()
	tab := NewSenderTable(Config{Param: ParamSize}, SenderLimits{IdleEvict: time.Second})
	quiet := dot11.LocalAddr(1)
	busy := dot11.LocalAddr(2)
	tab.Observe(quiet, dot11.ClassData, 100, 0)
	for i := 0; i < 100; i++ {
		tab.Observe(busy, dot11.ClassData, 100, int64(i)*100_000) // every 100 ms, no newcomers
	}
	if tab.Len() != 1 {
		t.Fatalf("table holds %d senders after 10 s of stable traffic, want 1 (quiet evicted)", tab.Len())
	}
	if tab.EvictedTotal() != 1 {
		t.Fatalf("evicted %d senders, want 1", tab.EvictedTotal())
	}
}

// TestAccumulatorLimitsEquivalence pins that zero limits leave the
// accumulator byte-for-byte equivalent (the default path is untouched)
// and that eviction order is deterministic: two identical runs with the
// same cap produce identical results.
func TestAccumulatorLimitsEquivalence(t *testing.T) {
	t.Parallel()
	mkTrace := func() *capture.Trace {
		tr := &capture.Trace{}
		x := uint64(3)
		for i := 0; i < 30_000; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			tr.Records = append(tr.Records, capture.Record{
				T:      int64(i) * 1000,
				Sender: dot11.LocalAddr(x % 500), // 500 senders, zipf-ish reuse
				Class:  dot11.ClassData, Size: 300, RateMbps: 24, FCSOK: true,
			})
		}
		return tr
	}
	run := func(limits SenderLimits) []*WindowResult {
		var out []*WindowResult
		acc := NewWindowAccumulator(5*time.Second, Config{Param: ParamSize, MinObservations: 5},
			func(w *WindowResult) { out = append(out, w) })
		acc.SetLimits(limits)
		tr := mkTrace()
		for i := range tr.Records {
			acc.Push(&tr.Records[i])
		}
		acc.Flush()
		return out
	}

	a := run(SenderLimits{MaxSenders: 64})
	b := run(SenderLimits{MaxSenders: 64})
	if len(a) != len(b) {
		t.Fatalf("eviction nondeterministic: %d vs %d windows", len(a), len(b))
	}
	for i := range a {
		if len(a[i].Candidates) != len(b[i].Candidates) || len(a[i].Dropped) != len(b[i].Dropped) {
			t.Fatalf("window %d: %d/%d candidates, %d/%d dropped", i,
				len(a[i].Candidates), len(b[i].Candidates), len(a[i].Dropped), len(b[i].Dropped))
		}
		for j := range a[i].Dropped {
			if a[i].Dropped[j] != b[i].Dropped[j] {
				t.Fatalf("window %d drop %d: %+v vs %+v", i, j, a[i].Dropped[j], b[i].Dropped[j])
			}
		}
		for j := range a[i].Candidates {
			if a[i].Candidates[j].Addr != b[i].Candidates[j].Addr {
				t.Fatalf("window %d candidate %d: %x vs %x", i, j,
					a[i].Candidates[j].Addr, b[i].Candidates[j].Addr)
			}
		}
	}

	// Unbounded: identical to the pre-limit behaviour (CandidatesIn).
	unbounded := run(SenderLimits{})
	var cands []Candidate
	for _, w := range unbounded {
		cands = append(cands, w.Candidates...)
	}
	want := CandidatesIn(mkTrace(), 5*time.Second, Config{Param: ParamSize, MinObservations: 5})
	if len(cands) != len(want) {
		t.Fatalf("unbounded accumulator drifted: %d candidates, want %d", len(cands), len(want))
	}
	for i := range want {
		if cands[i].Addr != want[i].Addr || cands[i].Window != want[i].Window {
			t.Fatalf("candidate %d: (%x, w%d), want (%x, w%d)", i,
				cands[i].Addr, cands[i].Window, want[i].Addr, want[i].Window)
		}
	}
}
