package core

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"testing"
)

// BenchmarkMatchAllScale sweeps synthetic reference databases of
// 1k/10k/100k devices (16 candidates per window, the batch a detection
// window hands the matcher) and is the curve behind the indexed-matching
// claims:
//
//   - indexed-topk: the pruned top-4 search — the per-window match cost
//     when the engines run with Options.TopK. Sublinear in N: the term
//     walk touches the candidate's rare postings and stops before the
//     universal bins.
//   - indexed-full: the full similarity vector through the sparse
//     blocked kernels. Ω(N) by its output size, but with a far smaller
//     constant than the dense path — and no N×bins dense matrices.
//   - exhaustive: the dense IndexOff baseline. Capped at N=10k, where
//     its row matrices already occupy ~1.3 GB; at 100k they would need
//     ~13 GB, which is the memory half of why the index exists.
//
// The committed BENCH_*.json records this sweep; CI re-runs the N=10k
// pair and fails if the indexed search stops beating the exhaustive scan.
func BenchmarkMatchAllScale(b *testing.B) {
	type fixture struct {
		c     *CompiledDB
		cands []Candidate
	}
	cache := map[string]*fixture{}
	get := func(n int, mode IndexMode) *fixture {
		key := fmt.Sprintf("%d/%v", n, mode)
		fx := cache[key]
		if fx == nil {
			// The raw signatures of a 100k-reference fixture are ~13 GB of
			// dense histograms; build without GC churn, keep only the
			// compiled snapshot, and release the rest before timing.
			prev := debug.SetGCPercent(-1)
			db, cands := synthDB(n, 16, MeasureCosine, mode)
			fx = &fixture{c: db.Compile(), cands: cands}
			cache[key] = fx
			debug.SetGCPercent(prev)
			runtime.GC()
		}
		return fx
	}
	for _, n := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("N=%d/indexed-topk", n), func(b *testing.B) {
			fx := get(n, IndexOn)
			var scratch MatchScratch
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fx.c.TopKAllScratch(fx.cands, 4, &scratch)
			}
		})
		b.Run(fmt.Sprintf("N=%d/indexed-full", n), func(b *testing.B) {
			fx := get(n, IndexOn)
			var scratch MatchScratch
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fx.c.MatchAllScratch(fx.cands, &scratch)
			}
		})
		if n > 10000 {
			continue // dense matrices at 100k would need ~13 GB
		}
		b.Run(fmt.Sprintf("N=%d/exhaustive", n), func(b *testing.B) {
			fx := get(n, IndexOff)
			var scratch MatchScratch
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fx.c.MatchAllScratch(fx.cands, &scratch)
			}
		})
	}
}
