package core

import (
	"time"

	"dot11fp/internal/capture"
	"dot11fp/internal/dot11"
)

// DefaultWindow is the paper's detection window size (§V-A).
const DefaultWindow = 5 * time.Minute

// Split divides a trace into the training prefix (the reference trace)
// and the validation remainder, at refDur from the trace start.
func Split(tr *capture.Trace, refDur time.Duration) (train, validation *capture.Trace) {
	cut := refDur.Microseconds()
	return tr.Slice(0, cut), tr.Slice(cut, 1<<62)
}

// Windows partitions a trace into consecutive detection windows of the
// given size, anchored at the trace's first record. Empty windows are
// skipped. A non-positive window yields the whole trace as one window.
func Windows(tr *capture.Trace, window time.Duration) []*capture.Trace {
	if len(tr.Records) == 0 {
		return nil
	}
	w := window.Microseconds()
	if w <= 0 {
		return []*capture.Trace{tr}
	}
	start := tr.Records[0].T
	end := tr.Records[len(tr.Records)-1].T
	var out []*capture.Trace
	for t := start; t <= end; t += w {
		s := tr.Slice(t, t+w)
		if len(s.Records) > 0 {
			out = append(out, s)
		}
	}
	return out
}

// Candidate is one device observed in one detection window.
type Candidate struct {
	Addr   [6]byte // dot11.Addr; kept comparable for map keys
	Window int
	Sig    *Signature
}

// CandidatesIn extracts the candidate signatures of every detection
// window (the matching unit of §V-A: every candidate device is matched
// against the reference database for each detection window).
//
// The trace is streamed in a single pass: records are bucketed into
// their window as they are scanned, instead of materialising one
// sub-trace per window and re-extracting it. Output is identical to
// windowing first — window indices count non-empty windows in time
// order, the inter-arrival context resets at each window boundary
// (mirroring per-window extraction), and candidates within a window are
// emitted in ascending address order after the minimum-observation rule.
func CandidatesIn(validation *capture.Trace, window time.Duration, cfg Config) []Candidate {
	recs := validation.Records
	if len(recs) == 0 {
		return nil
	}
	cfg = cfg.withDefaults()
	w := window.Microseconds()
	start := recs[0].T

	var out []Candidate
	sigs := make(map[dot11.Addr]*Signature)
	wi := -1            // index among non-empty windows, as Windows numbers them
	bucket := int64(-1) // current window ordinal relative to the trace start
	var prevT int64 = -1
	flush := func() {
		for _, addr := range sortedAddrs(sigs) {
			if sig := sigs[addr]; sig.Observations() >= uint64(cfg.MinObservations) {
				out = append(out, Candidate{Addr: addr, Window: wi, Sig: sig})
			}
		}
		clear(sigs)
	}
	for i := range recs {
		rec := &recs[i]
		b := int64(0)
		if w > 0 {
			b = (rec.T - start) / w
		}
		if b != bucket {
			if wi >= 0 {
				flush()
			}
			bucket = b
			wi++
			prevT = -1 // each window starts a fresh inter-arrival context
		}
		if !rec.Sender.IsZero() && (rec.FCSOK || cfg.KeepBadFCS) {
			if v, ok := cfg.Param.Value(rec, prevT); ok {
				sig, have := sigs[rec.Sender]
				if !have {
					sig = NewSignature(cfg.Param, cfg.Bins)
					sigs[rec.Sender] = sig
				}
				sig.Add(rec.Class, v)
			}
		}
		prevT = rec.T
	}
	flush()
	return out
}
