package core

import (
	"time"

	"dot11fp/internal/capture"
)

// DefaultWindow is the paper's detection window size (§V-A).
const DefaultWindow = 5 * time.Minute

// Split divides a trace into the training prefix (the reference trace)
// and the validation remainder, at refDur from the trace start. The cut
// is anchored at the first record's timestamp, not at absolute zero, so
// traces carrying wall-clock timestamps (every real pcap) split exactly
// like ones rebased to zero.
func Split(tr *capture.Trace, refDur time.Duration) (train, validation *capture.Trace) {
	cut := refDur.Microseconds()
	if len(tr.Records) > 0 {
		cut += tr.Records[0].T
	}
	return tr.Slice(-1<<62, cut), tr.Slice(cut, 1<<62)
}

// Windows partitions a trace into consecutive detection windows of the
// given size, anchored at the trace's first record. Empty windows are
// skipped. A non-positive window yields the whole trace as one window.
func Windows(tr *capture.Trace, window time.Duration) []*capture.Trace {
	if len(tr.Records) == 0 {
		return nil
	}
	w := window.Microseconds()
	if w <= 0 {
		return []*capture.Trace{tr}
	}
	start := tr.Records[0].T
	end := tr.Records[len(tr.Records)-1].T
	var out []*capture.Trace
	for t := start; t <= end; t += w {
		s := tr.Slice(t, t+w)
		if len(s.Records) > 0 {
			out = append(out, s)
		}
	}
	return out
}

// Candidate is one device observed in one detection window.
type Candidate struct {
	Addr   [6]byte // dot11.Addr; kept comparable for map keys
	Window int
	Sig    *Signature
}

// CandidatesIn extracts the candidate signatures of every detection
// window (the matching unit of §V-A: every candidate device is matched
// against the reference database for each detection window).
//
// It is a thin batch adapter over WindowAccumulator — the single
// extraction code path shared with the streaming engine. The trace is
// scanned in one pass; output is identical to windowing first: window
// indices count non-empty windows in time order, the inter-arrival
// context resets at each window boundary (mirroring per-window
// extraction), and candidates within a window are emitted in ascending
// address order after the minimum-observation rule.
func CandidatesIn(validation *capture.Trace, window time.Duration, cfg Config) []Candidate {
	var out []Candidate
	acc := NewWindowAccumulator(window, cfg, func(w *WindowResult) {
		out = append(out, w.Candidates...)
	})
	for i := range validation.Records {
		acc.Push(&validation.Records[i])
	}
	acc.Flush()
	return out
}
