package core

import (
	"time"

	"dot11fp/internal/capture"
)

// DefaultWindow is the paper's detection window size (§V-A).
const DefaultWindow = 5 * time.Minute

// Split divides a trace into the training prefix (the reference trace)
// and the validation remainder, at refDur from the trace start.
func Split(tr *capture.Trace, refDur time.Duration) (train, validation *capture.Trace) {
	cut := refDur.Microseconds()
	return tr.Slice(0, cut), tr.Slice(cut, 1<<62)
}

// Windows partitions a trace into consecutive detection windows of the
// given size, anchored at the trace's first record. Empty windows are
// skipped. A non-positive window yields the whole trace as one window.
func Windows(tr *capture.Trace, window time.Duration) []*capture.Trace {
	if len(tr.Records) == 0 {
		return nil
	}
	w := window.Microseconds()
	if w <= 0 {
		return []*capture.Trace{tr}
	}
	start := tr.Records[0].T
	end := tr.Records[len(tr.Records)-1].T
	var out []*capture.Trace
	for t := start; t <= end; t += w {
		s := tr.Slice(t, t+w)
		if len(s.Records) > 0 {
			out = append(out, s)
		}
	}
	return out
}

// Candidate is one device observed in one detection window.
type Candidate struct {
	Addr   [6]byte // dot11.Addr; kept comparable for map keys
	Window int
	Sig    *Signature
}

// CandidatesIn extracts the candidate signatures of every detection
// window (the matching unit of §V-A: every candidate device is matched
// against the reference database for each detection window).
func CandidatesIn(validation *capture.Trace, window time.Duration, cfg Config) []Candidate {
	var out []Candidate
	for wi, wtr := range Windows(validation, window) {
		sigs := Extract(wtr, cfg)
		// Deterministic order within the window.
		for _, addr := range sortedAddrs(sigs) {
			out = append(out, Candidate{Addr: addr, Window: wi, Sig: sigs[addr]})
		}
	}
	return out
}
