package core

import (
	"math/rand"
	"testing"

	"dot11fp/internal/dot11"
)

// Synthetic large-database generator for the scale benchmarks and the
// index property tests. The profile mimics what high-resolution
// inter-arrival signatures look like at deployment scale: each device
// model concentrates its mass on a handful of model-specific timing
// bins (DCF slot/SIFS multiples of its chipset), every device also
// touches a few universal bins (the protocol-mandated timings every
// card shares), and individual devices add a little private jitter —
// ~15 non-zero bins out of 16384, far sparser than dense rows assume.

const (
	synthBins  = 16384
	synthWidth = 1e-6 // 1 µs bins over ~16.4 ms
)

func synthSpec() BinSpec { return BinSpec{Width: synthWidth, Bins: synthBins} }

func synthAddr(i int) dot11.Addr {
	return dot11.Addr{0x02, 0x00, byte(i >> 16), byte(i >> 8), byte(i), 0x01}
}

// synthAdd records cnt observations at the centre of a bin. Batched
// through AddN so building 100k-reference fixtures stays fast.
func synthAdd(sig *Signature, class dot11.Class, bin, cnt int) {
	v := (float64(bin) + 0.5) * synthWidth
	h := &sig.hists[class]
	if h.Bins() == 0 {
		h.Init(sig.bins.Bins, sig.bins.Width)
		sig.nhist++
	}
	before := h.Total()
	h.AddN(sig.bins.Transform(v), uint64(cnt))
	sig.total += h.Total() - before
}

// synthModel is one device model: the signature bins its devices share.
type synthModel struct{ bins [8]int }

// synthRefSpec is one device: its model plus device-private jitter bins
// and the universal bins it touches. Kept so candidates can be derived
// from the exact device they are planted to match.
type synthRefSpec struct {
	model   *synthModel
	private [4]int
	common  [3]int
}

func newSynthRefSpec(rng *rand.Rand, m *synthModel) synthRefSpec {
	s := synthRefSpec{model: m}
	for j := range s.private {
		s.private[j] = 32 + rng.Intn(synthBins-32)
	}
	for j := range s.common {
		s.common[j] = rng.Intn(32)
	}
	return s
}

// sig materialises the device's reference signature: model bins carry
// the bulk of the mass, private and universal bins the rest.
func (s *synthRefSpec) sig() *Signature {
	sig := NewSignature(ParamInterArrival, synthSpec())
	for _, b := range s.model.bins {
		synthAdd(sig, dot11.ClassData, b, 4)
	}
	for _, b := range s.private {
		synthAdd(sig, dot11.ClassData, b, 1)
	}
	for _, b := range s.common {
		synthAdd(sig, dot11.ClassData, b, 2)
	}
	return sig
}

// synthDB builds an n-reference database (n/16 models, 16 devices each)
// plus nc candidate signatures that are perturbed clones of enrolled
// devices — the planted matches a deployment-scale matcher actually
// sees. Deterministic for a given (n, nc).
func synthDB(n, nc int, measure Measure, mode IndexMode) (*Database, []Candidate) {
	rng := rand.New(rand.NewSource(int64(n) + 1))
	models := make([]synthModel, (n+15)/16)
	for i := range models {
		for j := range models[i].bins {
			models[i].bins[j] = 32 + rng.Intn(synthBins-32)
		}
	}
	db := NewDatabase(Config{Param: ParamInterArrival, Bins: synthSpec(), MinObservations: 1}, measure)
	db.SetIndexing(mode)
	specs := make([]synthRefSpec, n)
	for i := 0; i < n; i++ {
		specs[i] = newSynthRefSpec(rng, &models[i/16])
		if err := db.Add(synthAddr(i), specs[i].sig()); err != nil {
			panic(err)
		}
	}
	cands := make([]Candidate, nc)
	for i := range cands {
		src := rng.Intn(n)
		// A later observation window of the enrolled device: the same
		// model and private bins, minus one private bin, plus one fresh
		// jitter bin — a near-perfect but imperfect match.
		sig := NewSignature(ParamInterArrival, synthSpec())
		sp := &specs[src]
		for _, b := range sp.model.bins {
			synthAdd(sig, dot11.ClassData, b, 4)
		}
		for _, b := range sp.private[:3] {
			synthAdd(sig, dot11.ClassData, b, 1)
		}
		for _, b := range sp.common {
			synthAdd(sig, dot11.ClassData, b, 2)
		}
		synthAdd(sig, dot11.ClassData, 32+rng.Intn(synthBins-32), 1)
		cands[i] = Candidate{Addr: synthAddr(src), Window: 0, Sig: sig}
	}
	return db, cands
}

// TestSynthDBShape pins the generator's sparsity profile so the scale
// benchmarks keep measuring what they claim to.
func TestSynthDBShape(t *testing.T) {
	db, cands := synthDB(512, 8, MeasureCosine, IndexAuto)
	if db.Len() != 512 {
		t.Fatalf("Len = %d, want 512", db.Len())
	}
	st := db.IndexStats()
	if !st.Enabled {
		t.Fatalf("IndexAuto did not build the index at n=512: %+v", st)
	}
	nnz := float64(st.Entries) / float64(st.References)
	if nnz < 8 || nnz > 20 {
		t.Fatalf("mean non-zero bins per reference = %.1f, want ~15", nnz)
	}
	if st.IndexBytes*10 >= st.DenseBytes {
		t.Fatalf("index (%d B) not ≪ dense (%d B)", st.IndexBytes, st.DenseBytes)
	}
	// Planted candidates really match their source device.
	c := db.Compile()
	for _, cand := range cands {
		best, ok := c.Best(cand.Sig)
		if !ok || best.Addr != dot11.Addr(cand.Addr) {
			t.Fatalf("candidate for %v matched %v (ok=%v)", dot11.Addr(cand.Addr), best.Addr, ok)
		}
		if best.Sim < 0.9 {
			t.Fatalf("planted match similarity %.3f, want ≥ 0.9", best.Sim)
		}
	}
}
