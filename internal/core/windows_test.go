package core

import (
	"testing"
	"time"

	"dot11fp/internal/capture"
	"dot11fp/internal/dot11"
)

// sliceCandidatesIn is the seed's window-then-extract implementation of
// CandidatesIn, kept as the oracle for the streaming single-pass version.
func sliceCandidatesIn(validation *capture.Trace, window time.Duration, cfg Config) []Candidate {
	var out []Candidate
	for wi, wtr := range Windows(validation, window) {
		sigs := Extract(wtr, cfg)
		for _, addr := range sortedAddrs(sigs) {
			out = append(out, Candidate{Addr: addr, Window: wi, Sig: sigs[addr]})
		}
	}
	return out
}

// gapTrace builds a trace with device activity, an entirely silent
// window in the middle, boundary-exact timestamps, bad-FCS frames and
// unattributable control frames.
func gapTrace() *capture.Trace {
	tr := &capture.Trace{Name: "gap"}
	add := func(t int64, sender dot11.Addr, class dot11.Class, fcsOK bool) {
		tr.Records = append(tr.Records, capture.Record{
			T: t, Sender: sender, Receiver: apX, Class: class,
			Size: 200, RateMbps: 24, FCSOK: fcsOK,
		})
	}
	// Window 0: [0, 60 s) — A active, one corrupt frame, one ACK.
	for i := 0; i < 80; i++ {
		add(int64(i)*700_000, staA, dot11.ClassData, true)
	}
	add(56_500_000, staA, dot11.ClassData, false)
	add(57_000_000, dot11.ZeroAddr, dot11.ClassACK, true)
	// One record exactly on the [60 s] boundary: must open window 1.
	add(60_000_000, staC, dot11.ClassData, true)
	for i := 1; i < 70; i++ {
		add(60_000_000+int64(i)*800_000, staC, dot11.ClassData, true)
	}
	// Windows [120 s, 180 s) silent; activity resumes in [180 s, 240 s).
	for i := 0; i < 60; i++ {
		add(180_000_000+int64(i)*900_000, staA, dot11.ClassQoSData, true)
		add(180_000_100+int64(i)*900_000, staC, dot11.ClassData, true)
	}
	return tr
}

func TestStreamingCandidatesMatchSliceBased(t *testing.T) {
	t.Parallel()
	traces := map[string]*capture.Trace{
		"gap":     gapTrace(),
		"fixture": compiledFixtureTrace(5, 4_000),
		"single":  figure1Trace(),
	}
	windows := []time.Duration{time.Minute, 7 * time.Second, 0, -time.Second, 24 * time.Hour}
	params := []Param{ParamInterArrival, ParamSize, ParamMediumAccess}
	for name, tr := range traces {
		for _, w := range windows {
			for _, p := range params {
				cfg := Config{Param: p, MinObservations: 10}
				want := sliceCandidatesIn(tr, w, cfg)
				got := CandidatesIn(tr, w, cfg)
				if len(got) != len(want) {
					t.Fatalf("%s w=%v p=%v: %d candidates, want %d", name, w, p, len(got), len(want))
				}
				for i := range want {
					if got[i].Addr != want[i].Addr || got[i].Window != want[i].Window {
						t.Fatalf("%s w=%v p=%v cand %d: got (%x, w%d), want (%x, w%d)",
							name, w, p, i, got[i].Addr, got[i].Window, want[i].Addr, want[i].Window)
					}
					// Signatures must be observation-for-observation equal.
					if got[i].Sig.Observations() != want[i].Sig.Observations() {
						t.Fatalf("%s w=%v p=%v cand %d: %d observations, want %d",
							name, w, p, i, got[i].Sig.Observations(), want[i].Sig.Observations())
					}
					for _, class := range want[i].Sig.Classes() {
						wh, gh := want[i].Sig.Hist(class), got[i].Sig.Hist(class)
						if gh == nil {
							t.Fatalf("%s cand %d: class %v missing", name, i, class)
						}
						for b := 0; b < wh.Bins(); b++ {
							if wh.Count(b) != gh.Count(b) {
								t.Fatalf("%s cand %d class %v bin %d: %d, want %d",
									name, i, class, b, gh.Count(b), wh.Count(b))
							}
						}
					}
				}
			}
		}
	}
}

func TestCandidatesInEmptyTrace(t *testing.T) {
	t.Parallel()
	if got := CandidatesIn(&capture.Trace{}, time.Minute, Config{Param: ParamSize}); got != nil {
		t.Fatalf("empty trace candidates = %v", got)
	}
}

func TestCandidatesInNonPositiveWindow(t *testing.T) {
	t.Parallel()
	tr := gapTrace()
	cfg := Config{Param: ParamSize, MinObservations: 10}
	for _, w := range []time.Duration{0, -time.Minute} {
		cands := CandidatesIn(tr, w, cfg)
		if len(cands) == 0 {
			t.Fatalf("window %v yielded no candidates", w)
		}
		for _, c := range cands {
			if c.Window != 0 {
				t.Fatalf("window %v: candidate in window %d, want 0 (whole trace)", w, c.Window)
			}
		}
	}
}

func TestWindowsBoundaryRecord(t *testing.T) {
	t.Parallel()
	tr := &capture.Trace{Records: []capture.Record{
		{T: 0, Sender: staA, Class: dot11.ClassData, FCSOK: true},
		{T: 59_999_999, Sender: staA, Class: dot11.ClassData, FCSOK: true},
		{T: 60_000_000, Sender: staA, Class: dot11.ClassData, FCSOK: true}, // exactly on the edge
		{T: 60_000_001, Sender: staA, Class: dot11.ClassData, FCSOK: true},
	}}
	wins := Windows(tr, time.Minute)
	if len(wins) != 2 {
		t.Fatalf("windows = %d, want 2", len(wins))
	}
	if len(wins[0].Records) != 2 || len(wins[1].Records) != 2 {
		t.Fatalf("window sizes = %d/%d, want 2/2 (boundary record belongs to the later window)",
			len(wins[0].Records), len(wins[1].Records))
	}
	if wins[1].Records[0].T != 60_000_000 {
		t.Fatalf("second window starts at %d", wins[1].Records[0].T)
	}
}

// TestSplitWallClockAnchor pins the anchoring fix: a trace whose
// timestamps start at a large wall-clock µs value (every real pcap)
// must still get a refDur-long training prefix, not an empty one.
func TestSplitWallClockAnchor(t *testing.T) {
	t.Parallel()
	const base = int64(1_700_000_000_000_000) // ≈ 2023 in unix µs
	tr := &capture.Trace{Records: []capture.Record{
		{T: base}, {T: base + 30_000_000}, {T: base + 59_999_999},
		{T: base + 60_000_000}, {T: base + 90_000_000},
	}}
	train, valid := Split(tr, time.Minute)
	if len(train.Records) != 3 {
		t.Fatalf("train records = %d, want 3 (prefix anchored at the first record)", len(train.Records))
	}
	if len(valid.Records) != 2 || valid.Records[0].T != base+60_000_000 {
		t.Fatalf("validation records = %+v", valid.Records)
	}
	// Rebasing the same trace to zero must split identically.
	zero := &capture.Trace{Records: make([]capture.Record, len(tr.Records))}
	for i, r := range tr.Records {
		r.T -= base
		zero.Records[i] = r
	}
	ztrain, zvalid := Split(zero, time.Minute)
	if len(ztrain.Records) != len(train.Records) || len(zvalid.Records) != len(valid.Records) {
		t.Fatalf("rebased split differs: %d/%d vs %d/%d",
			len(ztrain.Records), len(zvalid.Records), len(train.Records), len(valid.Records))
	}
}

// TestWindowAccumulatorResults checks the streaming window metadata the
// batch adapter discards: indices, bounds, frame counts and the
// below-minimum drop reporting.
func TestWindowAccumulatorResults(t *testing.T) {
	t.Parallel()
	tr := gapTrace()
	cfg := Config{Param: ParamSize, MinObservations: 10}
	var results []*WindowResult
	acc := NewWindowAccumulator(time.Minute, cfg, func(w *WindowResult) {
		results = append(results, w)
	})
	for i := range tr.Records {
		acc.Push(&tr.Records[i])
	}
	if got := acc.LiveSenders(); got != 2 {
		t.Fatalf("live senders before flush = %d, want 2 (A and C active)", got)
	}
	acc.Flush()
	if acc.LiveSenders() != 0 {
		t.Fatalf("live senders after flush = %d", acc.LiveSenders())
	}
	if len(results) != 3 || acc.WindowsClosed() != 3 {
		t.Fatalf("windows = %d (closed %d), want 3 non-empty windows", len(results), acc.WindowsClosed())
	}
	wantStarts := []int64{0, 60_000_000, 180_000_000}
	for i, w := range results {
		if w.Index != i {
			t.Fatalf("window %d has index %d", i, w.Index)
		}
		if w.Start != wantStarts[i] || w.End != w.Start+60_000_000 {
			t.Fatalf("window %d bounds [%d, %d), want start %d", i, w.Start, w.End, wantStarts[i])
		}
		if w.Frames == 0 {
			t.Fatalf("window %d reports zero frames", i)
		}
	}
	// Window 0: A clears the minimum; the bad-FCS frame and the ACK are
	// scanned but never attributed, so no dropped senders appear.
	if len(results[0].Candidates) != 1 || len(results[0].Dropped) != 0 {
		t.Fatalf("window 0: %d candidates / %d dropped, want 1/0",
			len(results[0].Candidates), len(results[0].Dropped))
	}
	// A sparse sender below the minimum must surface in Dropped.
	short := &capture.Trace{Records: []capture.Record{
		{T: 0, Sender: staA, Class: dot11.ClassData, Size: 100, RateMbps: 24, FCSOK: true},
		{T: 1_000, Sender: staA, Class: dot11.ClassData, Size: 100, RateMbps: 24, FCSOK: true},
	}}
	var dropped []DroppedSender
	acc = NewWindowAccumulator(time.Minute, cfg, func(w *WindowResult) {
		dropped = append(dropped, w.Dropped...)
	})
	for i := range short.Records {
		acc.Push(&short.Records[i])
	}
	acc.Flush()
	if len(dropped) != 1 || dropped[0].Addr != staA || dropped[0].Observations != 2 {
		t.Fatalf("dropped = %+v, want staA with 2 observations", dropped)
	}
}

func TestSplitEdgeCases(t *testing.T) {
	t.Parallel()
	empty := &capture.Trace{}
	train, valid := Split(empty, time.Minute)
	if len(train.Records) != 0 || len(valid.Records) != 0 {
		t.Fatal("splitting an empty trace produced records")
	}
	tr := &capture.Trace{Records: []capture.Record{
		{T: 0}, {T: 59_999_999}, {T: 60_000_000},
	}}
	train, valid = Split(tr, time.Minute)
	if len(train.Records) != 2 {
		t.Fatalf("train records = %d, want 2 (boundary record goes to validation)", len(train.Records))
	}
	if len(valid.Records) != 1 || valid.Records[0].T != 60_000_000 {
		t.Fatalf("validation records = %+v", valid.Records)
	}
}
