package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"dot11fp/internal/dot11"
)

// CompiledEnsemble is an immutable, matching-optimised snapshot of an
// Ensemble: every member frozen as its CompiledDB, the fully-known
// reference set (devices present in every member) resolved once with
// per-member row indices precomputed, so fused matching costs one
// member MatchInto per member plus one float add per (reference,
// member) pair — no map lookups, no per-candidate freshness checks, no
// allocation with a caller-owned EnsembleScratch.
//
// Fused scores are bit-identical to averaging per-pair Similarity
// calls: each member contributes through the same compiled kernel as
// its standalone CompiledDB, members are summed in member order, and
// the mean is taken by the same division.
//
// A CompiledEnsemble is safe for concurrent use; each goroutine needs
// its own EnsembleScratch for the zero-allocation entry points.
type CompiledEnsemble struct {
	members []*CompiledDB
	addrs   []dot11.Addr       // fully-known references, member-0 insertion order
	index   map[dot11.Addr]int // addr → position in addrs
	rowIdx  [][]int            // [member][i] = addrs[i]'s row in members[member]
	partial []dot11.Addr       // known to ≥1 member but not all (ascending)

	scratch sync.Pool // *EnsembleScratch, for the scratchless conveniences
}

// EnsembleScratch holds the reusable buffers of the zero-allocation
// fused match path: one MatchScratch per member plus the fused score
// vector. The zero value is ready to use; buffers grow on first use and
// are retained across calls. A scratch must not be shared between
// concurrent MatchInto calls.
type EnsembleScratch struct {
	member []MatchScratch
	rows   [][]Score
	fused  []Score
}

// grow sizes the scratch for ce.
func (s *EnsembleScratch) grow(ce *CompiledEnsemble) {
	if cap(s.member) < len(ce.members) {
		s.member = make([]MatchScratch, len(ce.members))
		s.rows = make([][]Score, len(ce.members))
	}
	s.member = s.member[:len(ce.members)]
	s.rows = s.rows[:len(ce.members)]
	if cap(s.fused) < len(ce.addrs) {
		s.fused = make([]Score, len(ce.addrs))
	}
}

// Compile freezes the ensemble's current references into a
// CompiledEnsemble. The snapshot is cached: as long as every member's
// own Compile returns its cached snapshot (references unchanged), the
// fused snapshot is reused too — one O(members × references) freshness
// check per call, performed once per reference swap by the engines, not
// per candidate.
func (e *Ensemble) Compile() *CompiledEnsemble {
	e.mu.Lock()
	defer e.mu.Unlock()
	members := make([]*CompiledDB, len(e.dbs))
	fresh := e.compiled != nil
	for i, db := range e.dbs {
		members[i] = db.Compile()
		if fresh && e.compiled.members[i] != members[i] {
			fresh = false // a member recompiled: the fused snapshot is stale
		}
	}
	if !fresh {
		e.compiled = compileEnsemble(members)
	}
	return e.compiled
}

// compileEnsemble resolves the fused reference set from frozen member
// snapshots.
func compileEnsemble(members []*CompiledDB) *CompiledEnsemble {
	ce := &CompiledEnsemble{
		members: members,
		index:   make(map[dot11.Addr]int),
		rowIdx:  make([][]int, len(members)),
	}
	// Fully-known set: member 0's insertion order filtered to devices
	// present in every member — the same order Ensemble.Match has always
	// emitted.
	for _, addr := range members[0].addrs {
		known := true
		for _, m := range members[1:] {
			if _, ok := m.index[addr]; !ok {
				known = false
				break
			}
		}
		if known {
			ce.index[addr] = len(ce.addrs)
			ce.addrs = append(ce.addrs, addr)
		}
	}
	for mi, m := range members {
		rows := make([]int, len(ce.addrs))
		for i, addr := range ce.addrs {
			rows[i] = m.index[addr]
		}
		ce.rowIdx[mi] = rows
	}
	// Partially-known devices, for operator reporting.
	seen := make(map[dot11.Addr]bool)
	for _, m := range members {
		for _, addr := range m.addrs {
			if _, full := ce.index[addr]; !full && !seen[addr] {
				seen[addr] = true
				ce.partial = append(ce.partial, addr)
			}
		}
	}
	sortAddrs(ce.partial)
	return ce
}

// Members returns the frozen member snapshots in parameter order.
func (ce *CompiledEnsemble) Members() []*CompiledDB {
	out := make([]*CompiledDB, len(ce.members))
	copy(out, ce.members)
	return out
}

// Params returns the member parameters in order.
func (ce *CompiledEnsemble) Params() []Param {
	out := make([]Param, len(ce.members))
	for i, m := range ce.members {
		out[i] = m.Config().Param
	}
	return out
}

// Configs returns the member extraction configurations in order.
func (ce *CompiledEnsemble) Configs() []Config {
	out := make([]Config, len(ce.members))
	for i, m := range ce.members {
		out[i] = m.Config()
	}
	return out
}

// Measure returns the similarity measure shared by every member.
func (ce *CompiledEnsemble) Measure() Measure { return ce.members[0].Measure() }

// Len returns the number of fully-known (matchable) reference devices.
func (ce *CompiledEnsemble) Len() int { return len(ce.addrs) }

// Devices returns the fully-known reference addresses in the fused
// vector order.
func (ce *CompiledEnsemble) Devices() []dot11.Addr {
	out := make([]dot11.Addr, len(ce.addrs))
	copy(out, ce.addrs)
	return out
}

// Partial returns the devices known to at least one member but not all
// at compile time (never matchable; see Ensemble.Partial). Ascending
// address order.
func (ce *CompiledEnsemble) Partial() []dot11.Addr {
	out := make([]dot11.Addr, len(ce.partial))
	copy(out, ce.partial)
	return out
}

// MatchInto computes the fused similarity vector of a multi-parameter
// candidate against every fully-known reference into the scratch
// buffers: fused[i] is the mean of the member similarities for
// Devices()[i], and perParam[m] is member m's full similarity vector
// (that member's own reference order — partially-known devices score in
// their members but never fuse). It performs no allocation once the
// scratch has warmed up; both results are only valid until the
// scratch's next use. A candidate whose member count mismatches returns
// nil, nil.
func (ce *CompiledEnsemble) MatchInto(c MultiCandidate, s *EnsembleScratch) (fused []Score, perParam [][]Score) {
	if len(c.Sigs) != len(ce.members) {
		return nil, nil
	}
	s.grow(ce)
	for m, cdb := range ce.members {
		s.rows[m] = cdb.MatchInto(c.Sigs[m], &s.member[m])
	}
	fused = s.fused[:len(ce.addrs)]
	div := float64(len(ce.members))
	for i, addr := range ce.addrs {
		sum := 0.0
		for m := range ce.members {
			sum += s.rows[m][ce.rowIdx[m][i]].Sim
		}
		fused[i] = Score{Addr: addr, Sim: sum / div}
	}
	return fused, s.rows
}

// getScratch pops a pooled scratch for the scratchless conveniences.
func (ce *CompiledEnsemble) getScratch() *EnsembleScratch {
	if s, ok := ce.scratch.Get().(*EnsembleScratch); ok {
		return s
	}
	return &EnsembleScratch{}
}

// Match computes the fused and per-member similarity vectors into
// freshly allocated slices.
func (ce *CompiledEnsemble) Match(c MultiCandidate) (fused []Score, perParam [][]Score) {
	s := ce.getScratch()
	defer ce.scratch.Put(s)
	f, rows := ce.MatchInto(c, s)
	if f == nil {
		return nil, nil
	}
	fused = append(make([]Score, 0, len(f)), f...)
	perParam = make([][]Score, len(rows))
	for m, row := range rows {
		perParam[m] = append(make([]Score, 0, len(row)), row...)
	}
	return fused, perParam
}

// Best returns the arg-max fused reference, with ok=false for an empty
// (or mismatched) candidate or reference set.
func (ce *CompiledEnsemble) Best(c MultiCandidate) (Score, bool) {
	s := ce.getScratch()
	defer ce.scratch.Put(s)
	fused, _ := ce.MatchInto(c, s)
	best := Score{Sim: -1}
	for _, sc := range fused {
		if sc.Sim > best.Sim {
			best = sc
		}
	}
	return best, best.Sim >= 0
}

// MatchAll fuse-matches a batch of candidates across GOMAXPROCS
// workers; see MatchAllWorkers.
func (ce *CompiledEnsemble) MatchAll(cands []MultiCandidate) (fused [][]Score, perParam [][][]Score) {
	return ce.MatchAllWorkers(cands, 0)
}

// MatchAllWorkers fuse-matches a batch of candidates with an explicit
// worker cap (0 selects GOMAXPROCS, 1 forces the serial path). Row i of
// fused (and perParam[i][m] per member) is exactly Match(cands[i]) —
// every row is computed independently and written at its own index, so
// worker scheduling cannot affect the output. Rows share per-call
// backing allocations and are handed off to the caller, never reused.
func (ce *CompiledEnsemble) MatchAllWorkers(cands []MultiCandidate, workers int) (fused [][]Score, perParam [][][]Score) {
	fused = make([][]Score, len(cands))
	perParam = make([][][]Score, len(cands))
	if len(cands) == 0 {
		return fused, perParam
	}
	n := len(ce.addrs)
	fusedBacking := make([]Score, len(cands)*n)
	memberBacking := make([][]Score, len(ce.members))
	rowBacking := make([][]Score, len(cands)*len(ce.members))
	for m, cdb := range ce.members {
		memberBacking[m] = make([]Score, len(cands)*cdb.Len())
	}
	forEachEnsembleIndex(len(cands), workers, func(s *EnsembleScratch, i int) {
		f, rows := ce.MatchInto(cands[i], s)
		frow := fusedBacking[i*n : (i+1)*n : (i+1)*n]
		copy(frow, f)
		fused[i] = frow
		prows := rowBacking[i*len(ce.members) : (i+1)*len(ce.members) : (i+1)*len(ce.members)]
		for m, cdb := range ce.members {
			k := cdb.Len()
			mrow := memberBacking[m][i*k : (i+1)*k : (i+1)*k]
			copy(mrow, rows[m])
			prows[m] = mrow
		}
		perParam[i] = prows
	})
	return fused, perParam
}

// MatchAllScratch is the serial, caller-scratch form of MatchAll, built
// for per-shard reuse: one long-lived scratch amortises the internal
// buffers across every window, while the returned rows (per-call
// backing) are handed off to the caller and never aliased again.
func (ce *CompiledEnsemble) MatchAllScratch(cands []MultiCandidate, s *EnsembleScratch) (fused [][]Score, perParam [][][]Score) {
	fused = make([][]Score, len(cands))
	perParam = make([][][]Score, len(cands))
	if len(cands) == 0 {
		return fused, perParam
	}
	n := len(ce.addrs)
	fusedBacking := make([]Score, len(cands)*n)
	memberBacking := make([][]Score, len(ce.members))
	rowBacking := make([][]Score, len(cands)*len(ce.members))
	for m, cdb := range ce.members {
		memberBacking[m] = make([]Score, len(cands)*cdb.Len())
	}
	for i := range cands {
		f, rows := ce.MatchInto(cands[i], s)
		frow := fusedBacking[i*n : (i+1)*n : (i+1)*n]
		copy(frow, f)
		fused[i] = frow
		prows := rowBacking[i*len(ce.members) : (i+1)*len(ce.members) : (i+1)*len(ce.members)]
		for m, cdb := range ce.members {
			k := cdb.Len()
			mrow := memberBacking[m][i*k : (i+1)*k : (i+1)*k]
			copy(mrow, rows[m])
			prows[m] = mrow
		}
		perParam[i] = prows
	}
	return fused, perParam
}

// forEachEnsembleIndex is ForEachIndex with a per-worker
// EnsembleScratch: fn(scratch, i) runs for every i in [0, n) across the
// given number of workers (0 ⇒ GOMAXPROCS, 1 ⇒ inline serial), each
// index exactly once; index-disjoint writes make the aggregate effect
// identical for any worker count.
func forEachEnsembleIndex(n, workers int, fn func(s *EnsembleScratch, i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		var s EnsembleScratch
		for i := 0; i < n; i++ {
			fn(&s, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var s EnsembleScratch
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(&s, i)
			}
		}()
	}
	wg.Wait()
}
