package core

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"dot11fp/internal/dot11"
)

// CompiledEnsemble is an immutable, matching-optimised snapshot of an
// Ensemble: every member frozen as its CompiledDB, the fully-known
// reference set (devices present in every member) resolved once with
// per-member row indices precomputed, so fused matching costs one
// member MatchInto per member plus one float add per (reference,
// member) pair — no map lookups, no per-candidate freshness checks, no
// allocation with a caller-owned EnsembleScratch.
//
// Fused scores are bit-identical to averaging per-pair Similarity
// calls: each member contributes through the same compiled kernel as
// its standalone CompiledDB, members are summed in member order, and
// the mean is taken by the same division.
//
// A CompiledEnsemble is safe for concurrent use; each goroutine needs
// its own EnsembleScratch for the zero-allocation entry points.
type CompiledEnsemble struct {
	members []*CompiledDB
	addrs   []dot11.Addr       // fully-known references, member-0 insertion order
	index   map[dot11.Addr]int // addr → position in addrs
	rowIdx  [][]int            // [member][i] = addrs[i]'s row in members[member]
	fusedOf [][]int32          // [member][row] = fused index of that member row, -1 if not fully known
	partial []dot11.Addr       // known to ≥1 member but not all (ascending)

	scratch sync.Pool // *EnsembleScratch, for the scratchless conveniences
}

// EnsembleScratch holds the reusable buffers of the zero-allocation
// fused match path: one MatchScratch per member plus the fused score
// vector. The zero value is ready to use; buffers grow on first use and
// are retained across calls. A scratch must not be shared between
// concurrent MatchInto calls.
type EnsembleScratch struct {
	member []MatchScratch
	rows   [][]Score
	fused  []Score

	// Fused pruned-search state (TopK/Best over indexed members); the
	// per-member candidate prep lives in the member scratches above.
	fstamp []int32
	fepoch int32
	ftop   []topEntry
	fout   []Score
}

// grow sizes the scratch for ce.
func (s *EnsembleScratch) grow(ce *CompiledEnsemble) {
	if cap(s.member) < len(ce.members) {
		s.member = make([]MatchScratch, len(ce.members))
		s.rows = make([][]Score, len(ce.members))
	}
	s.member = s.member[:len(ce.members)]
	s.rows = s.rows[:len(ce.members)]
	if cap(s.fused) < len(ce.addrs) {
		s.fused = make([]Score, len(ce.addrs))
	}
}

// Compile freezes the ensemble's current references into a
// CompiledEnsemble. The snapshot is cached: as long as every member's
// own Compile returns its cached snapshot (references unchanged), the
// fused snapshot is reused too — one O(members × references) freshness
// check per call, performed once per reference swap by the engines, not
// per candidate.
func (e *Ensemble) Compile() *CompiledEnsemble {
	e.mu.Lock()
	defer e.mu.Unlock()
	members := make([]*CompiledDB, len(e.dbs))
	fresh := e.compiled != nil
	for i, db := range e.dbs {
		members[i] = db.Compile()
		if fresh && e.compiled.members[i] != members[i] {
			fresh = false // a member recompiled: the fused snapshot is stale
		}
	}
	if !fresh {
		e.compiled = compileEnsemble(members)
	}
	return e.compiled
}

// compileEnsemble resolves the fused reference set from frozen member
// snapshots.
func compileEnsemble(members []*CompiledDB) *CompiledEnsemble {
	ce := &CompiledEnsemble{
		members: members,
		index:   make(map[dot11.Addr]int),
		rowIdx:  make([][]int, len(members)),
	}
	// Fully-known set: member 0's insertion order filtered to devices
	// present in every member — the same order Ensemble.Match has always
	// emitted.
	for _, addr := range members[0].addrs {
		known := true
		for _, m := range members[1:] {
			if _, ok := m.index[addr]; !ok {
				known = false
				break
			}
		}
		if known {
			ce.index[addr] = len(ce.addrs)
			ce.addrs = append(ce.addrs, addr)
		}
	}
	ce.fusedOf = make([][]int32, len(members))
	for mi, m := range members {
		rows := make([]int, len(ce.addrs))
		of := make([]int32, m.Len())
		for r := range of {
			of[r] = -1
		}
		for i, addr := range ce.addrs {
			rows[i] = m.index[addr]
			of[rows[i]] = int32(i)
		}
		ce.rowIdx[mi] = rows
		ce.fusedOf[mi] = of
	}
	// Partially-known devices, for operator reporting.
	seen := make(map[dot11.Addr]bool)
	for _, m := range members {
		for _, addr := range m.addrs {
			if _, full := ce.index[addr]; !full && !seen[addr] {
				seen[addr] = true
				ce.partial = append(ce.partial, addr)
			}
		}
	}
	sortAddrs(ce.partial)
	return ce
}

// Members returns the frozen member snapshots in parameter order.
func (ce *CompiledEnsemble) Members() []*CompiledDB {
	out := make([]*CompiledDB, len(ce.members))
	copy(out, ce.members)
	return out
}

// Params returns the member parameters in order.
func (ce *CompiledEnsemble) Params() []Param {
	out := make([]Param, len(ce.members))
	for i, m := range ce.members {
		out[i] = m.Config().Param
	}
	return out
}

// Configs returns the member extraction configurations in order.
func (ce *CompiledEnsemble) Configs() []Config {
	out := make([]Config, len(ce.members))
	for i, m := range ce.members {
		out[i] = m.Config()
	}
	return out
}

// Measure returns the similarity measure shared by every member.
func (ce *CompiledEnsemble) Measure() Measure { return ce.members[0].Measure() }

// Len returns the number of fully-known (matchable) reference devices.
func (ce *CompiledEnsemble) Len() int { return len(ce.addrs) }

// Devices returns the fully-known reference addresses in the fused
// vector order.
func (ce *CompiledEnsemble) Devices() []dot11.Addr {
	out := make([]dot11.Addr, len(ce.addrs))
	copy(out, ce.addrs)
	return out
}

// Partial returns the devices known to at least one member but not all
// at compile time (never matchable; see Ensemble.Partial). Ascending
// address order.
func (ce *CompiledEnsemble) Partial() []dot11.Addr {
	out := make([]dot11.Addr, len(ce.partial))
	copy(out, ce.partial)
	return out
}

// MatchInto computes the fused similarity vector of a multi-parameter
// candidate against every fully-known reference into the scratch
// buffers: fused[i] is the mean of the member similarities for
// Devices()[i], and perParam[m] is member m's full similarity vector
// (that member's own reference order — partially-known devices score in
// their members but never fuse). It performs no allocation once the
// scratch has warmed up; both results are only valid until the
// scratch's next use. A candidate whose member count mismatches returns
// nil, nil.
func (ce *CompiledEnsemble) MatchInto(c MultiCandidate, s *EnsembleScratch) (fused []Score, perParam [][]Score) {
	if len(c.Sigs) != len(ce.members) {
		return nil, nil
	}
	s.grow(ce)
	for m, cdb := range ce.members {
		s.rows[m] = cdb.MatchInto(c.Sigs[m], &s.member[m])
	}
	fused = s.fused[:len(ce.addrs)]
	div := float64(len(ce.members))
	for i, addr := range ce.addrs {
		sum := 0.0
		for m := range ce.members {
			sum += s.rows[m][ce.rowIdx[m][i]].Sim
		}
		fused[i] = Score{Addr: addr, Sim: sum / div}
	}
	return fused, s.rows
}

// getScratch pops a pooled scratch for the scratchless conveniences.
func (ce *CompiledEnsemble) getScratch() *EnsembleScratch {
	if s, ok := ce.scratch.Get().(*EnsembleScratch); ok {
		return s
	}
	return &EnsembleScratch{}
}

// Match computes the fused and per-member similarity vectors into
// freshly allocated slices.
func (ce *CompiledEnsemble) Match(c MultiCandidate) (fused []Score, perParam [][]Score) {
	s := ce.getScratch()
	defer ce.scratch.Put(s)
	f, rows := ce.MatchInto(c, s)
	if f == nil {
		return nil, nil
	}
	fused = append(make([]Score, 0, len(f)), f...)
	perParam = make([][]Score, len(rows))
	for m, row := range rows {
		perParam[m] = append(make([]Score, 0, len(row)), row...)
	}
	return fused, perParam
}

// Best returns the arg-max fused reference, with ok=false for an empty
// (or mismatched) candidate or reference set. With every member indexed
// this is a pruned top-1 search; the result is bit-identical to the
// full fused scan (ties resolve to the earliest fused index, exactly as
// the first-strict-max scan did).
func (ce *CompiledEnsemble) Best(c MultiCandidate) (Score, bool) {
	s := ce.getScratch()
	defer ce.scratch.Put(s)
	res := ce.TopKInto(c, 1, s)
	if len(res) == 0 {
		return Score{Sim: -1}, false
	}
	return res[0], res[0].Sim >= 0
}

// MatchAll fuse-matches a batch of candidates across GOMAXPROCS
// workers; see MatchAllWorkers.
func (ce *CompiledEnsemble) MatchAll(cands []MultiCandidate) (fused [][]Score, perParam [][][]Score) {
	return ce.MatchAllWorkers(cands, 0)
}

// MatchAllWorkers fuse-matches a batch of candidates with an explicit
// worker cap (0 selects GOMAXPROCS, 1 forces the serial path). Row i of
// fused (and perParam[i][m] per member) is exactly Match(cands[i]) —
// every row is computed independently and written at its own index, so
// worker scheduling cannot affect the output. Rows share per-call
// backing allocations and are handed off to the caller, never reused.
func (ce *CompiledEnsemble) MatchAllWorkers(cands []MultiCandidate, workers int) (fused [][]Score, perParam [][][]Score) {
	fused = make([][]Score, len(cands))
	perParam = make([][][]Score, len(cands))
	if len(cands) == 0 {
		return fused, perParam
	}
	n := len(ce.addrs)
	fusedBacking := make([]Score, len(cands)*n)
	memberBacking := make([][]Score, len(ce.members))
	rowBacking := make([][]Score, len(cands)*len(ce.members))
	for m, cdb := range ce.members {
		memberBacking[m] = make([]Score, len(cands)*cdb.Len())
	}
	forEachEnsembleIndex(len(cands), workers, func(s *EnsembleScratch, i int) {
		f, rows := ce.MatchInto(cands[i], s)
		frow := fusedBacking[i*n : (i+1)*n : (i+1)*n]
		copy(frow, f)
		fused[i] = frow
		prows := rowBacking[i*len(ce.members) : (i+1)*len(ce.members) : (i+1)*len(ce.members)]
		for m, cdb := range ce.members {
			k := cdb.Len()
			mrow := memberBacking[m][i*k : (i+1)*k : (i+1)*k]
			copy(mrow, rows[m])
			prows[m] = mrow
		}
		perParam[i] = prows
	})
	return fused, perParam
}

// MatchAllScratch is the serial, caller-scratch form of MatchAll, built
// for per-shard reuse: one long-lived scratch amortises the internal
// buffers across every window, while the returned rows (per-call
// backing) are handed off to the caller and never aliased again.
func (ce *CompiledEnsemble) MatchAllScratch(cands []MultiCandidate, s *EnsembleScratch) (fused [][]Score, perParam [][][]Score) {
	fused = make([][]Score, len(cands))
	perParam = make([][][]Score, len(cands))
	if len(cands) == 0 {
		return fused, perParam
	}
	n := len(ce.addrs)
	fusedBacking := make([]Score, len(cands)*n)
	memberBacking := make([][]Score, len(ce.members))
	rowBacking := make([][]Score, len(cands)*len(ce.members))
	for m, cdb := range ce.members {
		memberBacking[m] = make([]Score, len(cands)*cdb.Len())
	}
	for i := range cands {
		f, rows := ce.MatchInto(cands[i], s)
		frow := fusedBacking[i*n : (i+1)*n : (i+1)*n]
		copy(frow, f)
		fused[i] = frow
		prows := rowBacking[i*len(ce.members) : (i+1)*len(ce.members) : (i+1)*len(ce.members)]
		for m, cdb := range ce.members {
			k := cdb.Len()
			mrow := memberBacking[m][i*k : (i+1)*k : (i+1)*k]
			copy(mrow, rows[m])
			prows[m] = mrow
		}
		perParam[i] = prows
	}
	return fused, perParam
}

// ensureFused sizes the fused pruned-search buffers and opens a new
// stamp epoch, mirroring MatchScratch.ensureSearch.
func (s *EnsembleScratch) ensureFused(n int) {
	if len(s.fstamp) < n {
		s.fstamp = make([]int32, n)
		s.fepoch = 0
	}
	if s.fepoch == math.MaxInt32 {
		clear(s.fstamp)
		s.fepoch = 0
	}
	s.fepoch++
}

// indexedAll reports whether every member snapshot carries a match
// index — the precondition of the fused pruned search.
func (ce *CompiledEnsemble) indexedAll() bool {
	for _, m := range ce.members {
		if m.idx == nil {
			return false
		}
	}
	return true
}

// scoreFused computes the exact fused similarity of fully-known
// reference i: each member's sparse exact kernel in member order, then
// the same division MatchInto performs — bit-identical to fusing the
// members' full vectors.
func (ce *CompiledEnsemble) scoreFused(i int, s *EnsembleScratch, div float64) float64 {
	sum := 0.0
	for m, cdb := range ce.members {
		sum += cdb.scoreRef(ce.rowIdx[m][i], s.member[m].search)
	}
	return sum / div
}

// boundFused upper-bounds scoreFused(i) by summing the members' coarse
// bounds; exact in real arithmetic, callers compare through
// inflateBound.
func (ce *CompiledEnsemble) boundFused(i int, s *EnsembleScratch, div float64) float64 {
	sum := 0.0
	for m, cdb := range ce.members {
		sum += cdb.coarseBound(ce.rowIdx[m][i], s.member[m].search)
	}
	return sum / div
}

// topKFused runs the pruned fused search over the fully-known reference
// set: every member's term walk shares one fused budget (the fused
// score of an unseen reference is at most the sum of all unopened term
// bounds across members, divided by the member count), fused stamps
// deduplicate across members, and survivors are scored exactly through
// scoreFused. Requires indexedAll; results land in s.ftop ranked by the
// exhaustive fused order.
func (ce *CompiledEnsemble) topKFused(c MultiCandidate, k int, s *EnsembleScratch) []topEntry {
	div := float64(len(ce.members))
	s.ensureFused(len(ce.addrs))
	for m, cdb := range ce.members {
		st := s.member[m].ensureSearch(cdb.Len())
		cdb.prepCandidate(c.Sigs[m], st)
	}
	s.ftop = s.ftop[:0]
	stopped := false
	visit := func(fi int32) {
		if s.fstamp[fi] == s.fepoch {
			return
		}
		s.fstamp[fi] = s.fepoch
		if len(s.ftop) == k && !s.ftop[k-1].better(inflateBound(ce.boundFused(int(fi), s, div)), fi) {
			return // coarse bound can't displace the k-th entry
		}
		s.ftop, _ = offerTop(s.ftop, k, ce.scoreFused(int(fi), s, div), fi)
	}
	if ce.Measure() == MeasureL1 {
		// Class-overlap shortlist per member; no early stop (see
		// topKIndexed). A reference fused from any member's shortlist is
		// scored across all members at once.
		for m, cdb := range ce.members {
			st := s.member[m].search
			for ci := range cdb.classes {
				if !st.prepped[ci] {
					continue
				}
				for _, r := range cdb.idx.classes[ci].classRefs {
					if fi := ce.fusedOf[m][r]; fi >= 0 {
						visit(fi)
					}
				}
			}
		}
	} else {
		remaining := 0.0
		for m, cdb := range ce.members {
			remaining += cdb.buildTerms(s.member[m].search)
		}
		for m, cdb := range ce.members {
			st := s.member[m].search
			for _, t := range st.terms {
				if len(s.ftop) == k && !s.ftop[k-1].better(inflateBound(remaining/div), math.MaxInt32) {
					stopped = true
					break
				}
				cx := &cdb.idx.classes[t.class]
				for _, r := range cx.postRef[cx.postStart[t.bin]:cx.postStart[t.bin+1]] {
					if fi := ce.fusedOf[m][r]; fi >= 0 {
						visit(fi)
					}
				}
				remaining -= t.bound
			}
			if stopped {
				break
			}
		}
	}
	if !stopped {
		// Unseen fused references score exactly +0 in every member (no
		// shared support anywhere), hence exactly 0 fused.
		for fi := 0; fi < len(ce.addrs); fi++ {
			if s.fstamp[fi] == s.fepoch {
				continue
			}
			var ok bool
			if s.ftop, ok = offerTop(s.ftop, k, 0, int32(fi)); !ok {
				break
			}
		}
	}
	for m, cdb := range ce.members {
		cdb.cleanupCandidate(s.member[m].search)
	}
	return s.ftop
}

// TopKInto returns the k best fused references (ties toward the earlier
// fused index, as Best picks), writing into the scratch's buffers; the
// result is only valid until the scratch's next use. When every member
// is indexed the search is pruned, touching far fewer than Len()
// references; scores, order and ties are bit-identical to ranking the
// fused MatchInto vector either way. k is clamped to Len(); k <= 0 or a
// member-count mismatch returns nil.
func (ce *CompiledEnsemble) TopKInto(c MultiCandidate, k int, s *EnsembleScratch) []Score {
	if len(c.Sigs) != len(ce.members) {
		return nil
	}
	n := len(ce.addrs)
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	s.grow(ce)
	var top []topEntry
	if ce.indexedAll() {
		top = ce.topKFused(c, k, s)
	} else {
		fused, _ := ce.MatchInto(c, s)
		s.ftop = s.ftop[:0]
		for i, sc := range fused {
			s.ftop, _ = offerTop(s.ftop, k, sc.Sim, int32(i))
		}
		top = s.ftop
	}
	out := s.fout[:0]
	for _, e := range top {
		out = append(out, Score{Addr: ce.addrs[e.ref], Sim: e.sim})
	}
	s.fout = out
	return out
}

// TopK is the allocating convenience form of TopKInto.
func (ce *CompiledEnsemble) TopK(c MultiCandidate, k int) []Score {
	s := ce.getScratch()
	defer ce.scratch.Put(s)
	res := ce.TopKInto(c, k, s)
	if res == nil {
		return nil
	}
	out := make([]Score, len(res))
	copy(out, res)
	return out
}

// TopKAllScratch ranks a batch of multi-parameter candidates through
// one long-lived scratch, returning min(k, Len()) fused scores per
// candidate in one backing allocation. Row i is exactly
// TopK(cands[i], k); a mismatched candidate yields a nil row.
func (ce *CompiledEnsemble) TopKAllScratch(cands []MultiCandidate, k int, s *EnsembleScratch) [][]Score {
	out := make([][]Score, len(cands))
	if len(cands) == 0 {
		return out
	}
	kk := min(k, len(ce.addrs))
	if kk <= 0 {
		return out
	}
	backing := make([]Score, len(cands)*kk)
	for i := range cands {
		res := ce.TopKInto(cands[i], k, s)
		if res == nil {
			continue
		}
		row := backing[i*kk : i*kk+len(res) : (i+1)*kk]
		copy(row, res)
		out[i] = row
	}
	return out
}

// TopKAllWorkers is TopKAllScratch fanned out across workers (0 selects
// GOMAXPROCS, 1 forces the serial path); results are identical for
// every worker count.
func (ce *CompiledEnsemble) TopKAllWorkers(cands []MultiCandidate, k, workers int) [][]Score {
	out := make([][]Score, len(cands))
	if len(cands) == 0 {
		return out
	}
	kk := min(k, len(ce.addrs))
	if kk <= 0 {
		return out
	}
	backing := make([]Score, len(cands)*kk)
	forEachEnsembleIndex(len(cands), workers, func(s *EnsembleScratch, i int) {
		res := ce.TopKInto(cands[i], k, s)
		if res == nil {
			return
		}
		row := backing[i*kk : i*kk+len(res) : (i+1)*kk]
		copy(row, res)
		out[i] = row
	})
	return out
}

// IndexStats aggregates the members' index stats: Enabled only when
// every member carries an index (the fused pruned search's
// precondition), sizes summed across members.
func (ce *CompiledEnsemble) IndexStats() IndexStats {
	agg := IndexStats{Enabled: len(ce.members) > 0}
	for _, m := range ce.members {
		st := m.IndexStats()
		if !st.Enabled {
			agg.Enabled = false
		}
		agg.References += st.References
		agg.Entries += st.Entries
		agg.Postings += st.Postings
		agg.IndexBytes += st.IndexBytes
		agg.DenseBytes += st.DenseBytes
		if st.Classes > agg.Classes {
			agg.Classes = st.Classes
		}
		if st.Coarse > agg.Coarse {
			agg.Coarse = st.Coarse
		}
	}
	return agg
}

// forEachEnsembleIndex is ForEachIndex with a per-worker
// EnsembleScratch: fn(scratch, i) runs for every i in [0, n) across the
// given number of workers (0 ⇒ GOMAXPROCS, 1 ⇒ inline serial), each
// index exactly once; index-disjoint writes make the aggregate effect
// identical for any worker count.
func forEachEnsembleIndex(n, workers int, fn func(s *EnsembleScratch, i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		var s EnsembleScratch
		for i := 0; i < n; i++ {
			fn(&s, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var s EnsembleScratch
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(&s, i)
			}
		}()
	}
	wg.Wait()
}
