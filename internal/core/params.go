// Package core implements the paper's contribution: passive 802.11
// device fingerprinting from global network parameters.
//
// The pipeline is exactly the one of §IV: from a monitor trace, extract
// one of five per-frame network parameters (transmission rate, frame
// size, medium access time, transmission time, frame inter-arrival
// time), attribute values to senders under the Figure-1 rules (ACK/CTS
// frames carry no transmitter address and are dropped from attribution
// while still advancing the inter-arrival context), build per-frame-type
// percentage-frequency histograms weighted by frame-type share
// (Definition 1), and match candidates against a reference database with
// weighted cosine similarity (Definition 2, Algorithm 1).
//
// The package is bit-identical by contract: the same record stream
// yields byte-for-byte the same windows, signatures and scores, on
// every run and shard count.
//
//fp:deterministic
package core

import (
	"fmt"
	"math"

	"dot11fp/internal/capture"
	"dot11fp/internal/dot11"
)

// Param selects which network parameter a signature is built from
// (paper §III).
type Param uint8

// The five network parameters.
const (
	// ParamRate is the per-frame transmission rate in Mb/s.
	ParamRate Param = iota + 1
	// ParamSize is the on-air frame size in bytes.
	ParamSize
	// ParamMediumAccess is the medium access time in µs:
	// mtime_i = t_i − tt_i − t_{i−1}, the gap between the previous
	// frame's end of reception and this frame's start of transmission.
	ParamMediumAccess
	// ParamTxTime is the transmission time in µs: tt_i = size_i/rate_i.
	ParamTxTime
	// ParamInterArrival is the frame inter-arrival time in µs:
	// ii_i = t_i − t_{i−1} between consecutive end-of-receptions.
	ParamInterArrival
)

// Probe-content parameters, beyond the paper's five: address-independent
// features of probe-request bodies. The paper's parameters key on a
// stable sender MAC; modern clients randomize theirs, and probe content
// (information-element order, supported rates, capability, SSID) is the
// driver/firmware artifact that stays stable across rotations. These
// parameters histogram content fingerprints through the same
// WindowAccumulator/ensemble path as the paper's five.
const (
	// ParamProbeIE is the IE id/order fingerprint of probe-request
	// bodies, folded onto a fixed histogram domain.
	ParamProbeIE Param = 6
	// ParamProbeCap is the supported-rates + capability fingerprint.
	ParamProbeCap Param = 7
	// ParamProbeSSID is the directed-SSID fingerprint (bin 0 collects
	// wildcard probes).
	ParamProbeSSID Param = 8
)

// Params lists all five parameters in the paper's order.
var Params = []Param{ParamRate, ParamSize, ParamMediumAccess, ParamTxTime, ParamInterArrival}

// ContentParams lists the probe-content parameters.
var ContentParams = []Param{ParamProbeIE, ParamProbeCap, ParamProbeSSID}

// contentBins is the histogram domain probe fingerprints fold onto:
// a prime modulus spreads the 64-bit hashes evenly across the bins.
const contentBins = 251

// String implements fmt.Stringer using the paper's names.
func (p Param) String() string {
	switch p {
	case ParamRate:
		return "transmission rate"
	case ParamSize:
		return "frame size"
	case ParamMediumAccess:
		return "medium access time"
	case ParamTxTime:
		return "transmission time"
	case ParamInterArrival:
		return "inter-arrival time"
	case ParamProbeIE:
		return "probe IE order"
	case ParamProbeCap:
		return "probe rates/capability"
	case ParamProbeSSID:
		return "probe SSID"
	default:
		return fmt.Sprintf("param(%d)", uint8(p))
	}
}

// ShortName returns a compact identifier for file names and flags.
func (p Param) ShortName() string {
	switch p {
	case ParamRate:
		return "rate"
	case ParamSize:
		return "size"
	case ParamMediumAccess:
		return "mtime"
	case ParamTxTime:
		return "txtime"
	case ParamInterArrival:
		return "iat"
	case ParamProbeIE:
		return "probe-ie"
	case ParamProbeCap:
		return "probe-cap"
	case ParamProbeSSID:
		return "probe-ssid"
	default:
		return "unknown"
	}
}

// ParamByShortName resolves a compact identifier.
func ParamByShortName(s string) (Param, error) {
	for _, p := range Params {
		if p.ShortName() == s {
			return p, nil
		}
	}
	for _, p := range ContentParams {
		if p.ShortName() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("core: unknown parameter %q", s)
}

// txTimeUs is the paper's transmission-time estimate tt_i = size_i/rate_i,
// expressed in µs (sizes in bytes, rates in Mb/s).
func txTimeUs(sizeBytes int, rateMbps float64) float64 {
	if rateMbps <= 0 {
		return 0
	}
	return float64(sizeBytes) * 8 / rateMbps
}

// Value computes the parameter value for record rec given the end of
// reception prevT of the immediately preceding frame in the capture
// (−1 when rec is the first frame). ok=false means the value is
// undefined for this record (e.g. inter-arrival of the first frame).
//
//fp:hotpath test=TestEnginePushZeroAllocs
func (p Param) Value(rec *capture.Record, prevT int64) (v float64, ok bool) {
	switch p {
	case ParamRate:
		return rec.RateMbps, true
	case ParamSize:
		return float64(rec.Size), true
	case ParamTxTime:
		return txTimeUs(rec.Size, rec.RateMbps), true
	case ParamInterArrival:
		if prevT < 0 {
			return 0, false
		}
		return float64(rec.T - prevT), true
	case ParamMediumAccess:
		if prevT < 0 {
			return 0, false
		}
		m := float64(rec.T) - txTimeUs(rec.Size, rec.RateMbps) - float64(prevT)
		if m < 0 {
			// Overlap due to capture loss or preamble not accounted in
			// tt_i; a real tool cannot use such samples.
			return 0, false
		}
		return m, true
	case ParamProbeIE, ParamProbeCap, ParamProbeSSID:
		if rec.Class != dot11.ClassProbeReq || len(rec.ProbeIEs) == 0 {
			return 0, false
		}
		e := dot11.ParseElems(rec.ProbeIEs)
		var fp uint64
		switch p {
		case ParamProbeIE:
			fp = e.OrderFP()
		case ParamProbeCap:
			fp = e.RatesFP()
		default:
			fp = e.SSIDFP() // 0 = wildcard; a real bin, not "undefined"
		}
		return float64(fp % contentBins), true
	default:
		return 0, false
	}
}

// BinSpec shapes the histograms for one parameter.
type BinSpec struct {
	// Width is the bin width in the parameter's unit.
	Width float64
	// Bins is the number of bins; values at or above the top edge fold
	// into the last bin.
	Bins int
	// LogKnee, when positive, switches to logarithmic binning above
	// that value: v > LogKnee is remapped to
	// LogKnee + (LogKnee/10)·ln(v/LogKnee) before linear binning, so
	// the µs-scale MAC region keeps 10 µs resolution while second-scale
	// application cadences (keystrokes, reading pauses, keep-alive
	// periods) still occupy distinct bins instead of folding into one.
	LogKnee float64
}

// Transform maps a raw value into binning space (see LogKnee).
func (b BinSpec) Transform(v float64) float64 {
	if b.LogKnee > 0 && v > b.LogKnee {
		return b.LogKnee + b.LogKnee/10*math.Log(v/b.LogKnee)
	}
	return v
}

// DefaultBins returns the paper-calibrated histogram shape for a
// parameter: time parameters use 10 µs bins over the Figure-2 MAC range
// (0–2.5 ms) with a logarithmic tail out to minutes, sizes 32-byte bins
// to the maximum MPDU, rates 0.5 Mb/s bins resolving every standard
// rate.
func DefaultBins(p Param) BinSpec {
	switch p {
	case ParamRate:
		return BinSpec{Width: 0.5, Bins: 110}
	case ParamSize:
		return BinSpec{Width: 32, Bins: 74}
	case ParamProbeIE, ParamProbeCap, ParamProbeSSID:
		// One bin per folded fingerprint value.
		return BinSpec{Width: 1, Bins: contentBins}
	default:
		// 250 linear bins to the 2.5 ms knee + ~260 log bins to ≈ 1 min.
		return BinSpec{Width: 10, Bins: 512, LogKnee: 2_500}
	}
}
