package core

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"dot11fp/internal/capture"
	"dot11fp/internal/dot11"
)

// ensembleTrace builds two devices distinguishable only by combining
// parameters: same sizes but different rates for one pair of windows,
// and vice versa.
func ensembleTrace() *capture.Trace {
	tr := &capture.Trace{Name: "ens"}
	durUs := (20 * time.Minute).Microseconds()
	for t := int64(0); t < durUs; t += 400_000 {
		// Device 1: size 200 at 54 Mb/s. Device 2: size 200 at 11 Mb/s
		// (same size histogram, different rate histogram).
		tr.Records = append(tr.Records,
			capture.Record{T: t, Sender: dot11.LocalAddr(1), Receiver: dot11.LocalAddr(99),
				Class: dot11.ClassData, Size: 200, RateMbps: 54, FCSOK: true},
			capture.Record{T: t + 3_000, Sender: dot11.LocalAddr(2), Receiver: dot11.LocalAddr(99),
				Class: dot11.ClassData, Size: 200, RateMbps: 11, FCSOK: true},
		)
	}
	return tr
}

func TestEnsembleConstruction(t *testing.T) {
	t.Parallel()
	if _, err := NewEnsemble(MeasureCosine); err == nil {
		t.Fatal("empty ensemble accepted")
	}
	if _, err := NewEnsemble(MeasureCosine,
		Config{Param: ParamSize}, Config{Param: ParamSize}); err == nil {
		t.Fatal("duplicate parameter accepted")
	}
	e, err := NewEnsemble(0, Config{Param: ParamSize}, Config{Param: ParamRate})
	if err != nil {
		t.Fatal(err)
	}
	ps := e.Params()
	if len(ps) != 2 || ps[0] != ParamSize || ps[1] != ParamRate {
		t.Fatalf("Params = %v", ps)
	}
}

func TestEnsembleCombinesEvidence(t *testing.T) {
	t.Parallel()
	tr := ensembleTrace()
	e, err := NewEnsemble(MeasureCosine,
		Config{Param: ParamSize}, Config{Param: ParamRate})
	if err != nil {
		t.Fatal(err)
	}
	train, valid := Split(tr, 5*time.Minute)
	if err := e.Train(train); err != nil {
		t.Fatal(err)
	}
	if e.Len() != 2 {
		t.Fatalf("ensemble devices = %d, want 2", e.Len())
	}
	cands := e.CandidatesIn(valid, 5*time.Minute)
	if len(cands) == 0 {
		t.Fatal("no multi-candidates")
	}
	for _, c := range cands {
		scores := e.Match(c)
		if len(scores) != 2 {
			t.Fatalf("match vector = %d entries", len(scores))
		}
		best, ok := e.Best(c)
		if !ok {
			t.Fatal("Best failed")
		}
		if best.Addr != dot11.Addr(c.Addr) {
			t.Fatalf("window %d: %v identified as %v", c.Window, dot11.Addr(c.Addr), best.Addr)
		}
		// Size similarity alone cannot separate the two devices (both
		// send 200-byte frames): the margin must come from the rate
		// member. Verify the combined margin is strict.
		var trueSim, otherSim float64
		for _, s := range scores {
			if s.Addr == dot11.Addr(c.Addr) {
				trueSim = s.Sim
			} else {
				otherSim = s.Sim
			}
		}
		if trueSim <= otherSim {
			t.Fatalf("combined similarity did not separate: true %v vs other %v", trueSim, otherSim)
		}
		// And the gap should be about half the rate gap (mean of a
		// ~equal size-sim and a disjoint rate-sim).
		if otherSim < 0.3 || otherSim > 0.7 {
			t.Errorf("impostor combined sim = %v, want ≈0.5 (size matches, rate disjoint)", otherSim)
		}
	}
}

func TestEnsembleMismatchedCandidate(t *testing.T) {
	t.Parallel()
	e, err := NewEnsemble(MeasureCosine, Config{Param: ParamSize}, Config{Param: ParamRate})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Match(MultiCandidate{Sigs: []*Signature{nil}}); got != nil {
		t.Fatalf("mismatched candidate match = %v", got)
	}
}

// partialTrace builds a trace where device 2 transmits only the very
// first frame: its frame size is observable (every frame carries one)
// but its inter-arrival time never is (the first frame of a capture has
// no inter-arrival context), so device 2 becomes a partially-known
// device under a (size, iat) ensemble with 1-observation minimums.
func partialTrace() *capture.Trace {
	tr := &capture.Trace{Name: "partial"}
	tr.Records = append(tr.Records, capture.Record{
		T: 0, Sender: dot11.LocalAddr(2), Receiver: dot11.LocalAddr(99),
		Class: dot11.ClassData, Size: 800, RateMbps: 11, FCSOK: true,
	})
	for i := 1; i <= 100; i++ {
		tr.Records = append(tr.Records, capture.Record{
			T: int64(i) * 500_000, Sender: dot11.LocalAddr(1), Receiver: dot11.LocalAddr(99),
			Class: dot11.ClassData, Size: 300, RateMbps: 24, FCSOK: true,
		})
	}
	return tr
}

// TestEnsemblePartialReporting pins the partially-known-device fix: a
// device that clears MinObservations in some members but not all is
// excluded from Len (it can never match) but reported by Partial — not
// silently enrolled-yet-unmatchable.
func TestEnsemblePartialReporting(t *testing.T) {
	t.Parallel()
	tr := partialTrace()
	e, err := NewEnsemble(MeasureCosine,
		Config{Param: ParamSize, MinObservations: 1},
		Config{Param: ParamInterArrival, MinObservations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Train(tr); err != nil {
		t.Fatal(err)
	}
	// Device 2 has one size observation but no inter-arrival one.
	if e.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (only the chatty device is fully known)", e.Len())
	}
	partial := e.Partial()
	if len(partial) != 1 || partial[0] != dot11.LocalAddr(2) {
		t.Fatalf("Partial = %v, want [%v]", partial, dot11.LocalAddr(2))
	}
	// The compiled snapshot agrees.
	ce := e.Compile()
	if ce.Len() != 1 || len(ce.Partial()) != 1 || ce.Partial()[0] != dot11.LocalAddr(2) {
		t.Fatalf("compiled: Len=%d Partial=%v", ce.Len(), ce.Partial())
	}
	// A fully-known ensemble reports nothing (size and rate observe
	// every frame, including the first).
	full, err := NewEnsemble(MeasureCosine,
		Config{Param: ParamSize, MinObservations: 1},
		Config{Param: ParamRate, MinObservations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := full.Train(tr); err != nil {
		t.Fatal(err)
	}
	if got := full.Partial(); len(got) != 0 {
		t.Fatalf("fully-known ensemble Partial = %v", got)
	}
}

// TestEnsembleCandidatesWindowEdge pins the candidate-discovery fix:
// discovery iterates the union of member extractions (not member 0's
// map), the all-members requirement stays explicit, and a sender
// observable only through later members surfaces as a dropped sender in
// the streaming result instead of silently vanishing. The edge case is
// a single-frame window: inter-arrival is undefined for the window's
// first frame, so an iat-first ensemble's member 0 never sees the
// sender at all.
func TestEnsembleCandidatesWindowEdge(t *testing.T) {
	t.Parallel()
	tr := &capture.Trace{Name: "edge"}
	winUs := (1 * time.Minute).Microseconds()
	// Window 0: device 1 sends 60 frames. Window 1: exactly one frame,
	// from device 2.
	for i := 0; i < 60; i++ {
		tr.Records = append(tr.Records, capture.Record{
			T: int64(i) * 900_000, Sender: dot11.LocalAddr(1), Receiver: dot11.LocalAddr(99),
			Class: dot11.ClassData, Size: 300, RateMbps: 24, FCSOK: true,
		})
	}
	tr.Records = append(tr.Records, capture.Record{
		T: winUs + 1000, Sender: dot11.LocalAddr(2), Receiver: dot11.LocalAddr(99),
		Class: dot11.ClassData, Size: 800, RateMbps: 11, FCSOK: true,
	})

	iatFirst := []Config{
		{Param: ParamInterArrival, MinObservations: 1},
		{Param: ParamSize, MinObservations: 1},
	}
	sizeFirst := []Config{iatFirst[1], iatFirst[0]}

	candidates := func(cfgs []Config) []MultiCandidate {
		e, err := NewEnsemble(MeasureCosine, cfgs...)
		if err != nil {
			t.Fatal(err)
		}
		return e.CandidatesIn(tr, time.Minute)
	}
	a, b := candidates(iatFirst), candidates(sizeFirst)
	if len(a) != len(b) {
		t.Fatalf("candidate set depends on member order: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Addr != b[i].Addr || a[i].Window != b[i].Window {
			t.Fatalf("candidate %d differs across member orders: %x/w%d vs %x/w%d",
				i, a[i].Addr, a[i].Window, b[i].Addr, b[i].Window)
		}
	}
	// Device 2 clears size but not iat in its single-frame window: not a
	// candidate (all-members requirement) under either order.
	for _, c := range a {
		if c.Addr == [6]byte(dot11.LocalAddr(2)) {
			t.Fatalf("partially-qualified sender emitted as candidate: %+v", c)
		}
	}
	// But the streaming result reports it dropped — observed, not hidden
	// — with its best member's observation count, regardless of member
	// order.
	for _, cfgs := range [][]Config{iatFirst, sizeFirst} {
		var dropped []DroppedSender
		acc, err := NewEnsembleAccumulator(time.Minute, cfgs, func(w *WindowResult) {
			dropped = append(dropped, w.Dropped...)
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range tr.Records {
			acc.Push(&tr.Records[i])
		}
		acc.Flush()
		found := false
		for _, d := range dropped {
			if d.Addr == dot11.LocalAddr(2) {
				found = true
				if d.Observations != 1 {
					t.Fatalf("dropped sender reports %d observations, want 1 (best member)", d.Observations)
				}
			}
		}
		if !found {
			t.Fatalf("single-frame-window sender hidden from the %v-first ensemble", cfgs[0].Param)
		}
	}
}

// TestCompiledEnsembleBitIdentical pins the compiled fused path against
// first principles: the fused score is the mean of the per-pair naive
// Similarity values, bit for bit, and the per-member vectors equal each
// member database's own Match output.
func TestCompiledEnsembleBitIdentical(t *testing.T) {
	t.Parallel()
	tr := ensembleTrace()
	e, err := NewEnsemble(MeasureCosine,
		Config{Param: ParamSize}, Config{Param: ParamRate}, Config{Param: ParamInterArrival})
	if err != nil {
		t.Fatal(err)
	}
	train, valid := Split(tr, 5*time.Minute)
	if err := e.Train(train); err != nil {
		t.Fatal(err)
	}
	ce := e.Compile()
	members := e.Members()
	cands := e.CandidatesIn(valid, 5*time.Minute)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	var scratch EnsembleScratch
	for _, c := range cands {
		fused, perParam := ce.MatchInto(c, &scratch)
		if len(fused) != ce.Len() {
			t.Fatalf("fused vector = %d entries, want %d", len(fused), ce.Len())
		}
		for i, sc := range fused {
			want := 0.0
			for m, db := range members {
				want += Similarity(c.Sigs[m], db.Signature(sc.Addr), db.Measure())
			}
			want /= float64(len(members))
			if sc.Sim != want { // exact float equality: bit-identical
				t.Fatalf("fused[%d] = %v, want %v", i, sc.Sim, want)
			}
		}
		for m, db := range members {
			want := db.Match(c.Sigs[m])
			if len(perParam[m]) != len(want) {
				t.Fatalf("member %d vector = %d entries, want %d", m, len(perParam[m]), len(want))
			}
			for j := range want {
				if perParam[m][j] != want[j] {
					t.Fatalf("member %d score %d: %+v, want %+v", m, j, perParam[m][j], want[j])
				}
			}
		}
	}
}

// TestCompiledEnsembleFreshness pins the once-per-swap freshness
// contract: repeated Compile calls return the cached snapshot while the
// references are unchanged, and a member mutation is picked up by the
// next Compile.
func TestCompiledEnsembleFreshness(t *testing.T) {
	t.Parallel()
	tr := ensembleTrace()
	e, err := NewEnsemble(MeasureCosine, Config{Param: ParamSize}, Config{Param: ParamRate})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Train(tr); err != nil {
		t.Fatal(err)
	}
	c1 := e.Compile()
	if c2 := e.Compile(); c2 != c1 {
		t.Fatal("unchanged ensemble recompiled")
	}
	// Mutate one member through the atomic Add path.
	sigs := []*Signature{
		NewSignature(ParamSize, DefaultBins(ParamSize)),
		NewSignature(ParamRate, DefaultBins(ParamRate)),
	}
	sigs[0].Add(dot11.ClassData, 128)
	sigs[1].Add(dot11.ClassData, 54)
	if err := e.Add(dot11.LocalAddr(77), sigs); err != nil {
		t.Fatal(err)
	}
	c3 := e.Compile()
	if c3 == c1 {
		t.Fatal("mutated ensemble returned the stale snapshot")
	}
	if c3.Len() != c1.Len()+1 {
		t.Fatalf("recompiled Len = %d, want %d", c3.Len(), c1.Len()+1)
	}
}

// TestEnsembleAddAtomic pins the all-or-nothing contract of the
// trainer's promotion entry point: a rejected Add leaves every member
// untouched.
func TestEnsembleAddAtomic(t *testing.T) {
	t.Parallel()
	e, err := NewEnsemble(MeasureCosine, Config{Param: ParamSize}, Config{Param: ParamRate})
	if err != nil {
		t.Fatal(err)
	}
	good := NewSignature(ParamSize, DefaultBins(ParamSize))
	good.Add(dot11.ClassData, 128)
	addr := dot11.LocalAddr(5)
	for _, sigs := range [][]*Signature{
		{good},               // member count mismatch
		{good, nil},          // nil member
		{good, good.Clone()}, // wrong parameter for member 1
	} {
		if err := e.Add(addr, sigs); err == nil {
			t.Fatalf("Add(%d sigs) accepted", len(sigs))
		}
		for _, db := range e.Members() {
			if db.Len() != 0 {
				t.Fatalf("rejected Add mutated a member: %d refs", db.Len())
			}
		}
	}
}

// TestEnsembleBinaryRoundTrip pins the multi-database checkpoint
// container: params, measure, devices and fused scores survive a
// save/load cycle bit-identically, and corrupt containers surface the
// typed errors.
func TestEnsembleBinaryRoundTrip(t *testing.T) {
	t.Parallel()
	tr := ensembleTrace()
	e, err := NewEnsemble(MeasureIntersection, Config{Param: ParamSize}, Config{Param: ParamRate})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Train(tr); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.SaveBinary(&buf); err != nil {
		t.Fatal(err)
	}
	raw := append([]byte(nil), buf.Bytes()...)
	got, err := LoadBinaryEnsemble(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if gp, wp := got.Params(), e.Params(); len(gp) != len(wp) || gp[0] != wp[0] || gp[1] != wp[1] {
		t.Fatalf("params %v, want %v", gp, wp)
	}
	if got.Measure() != e.Measure() {
		t.Fatalf("measure %v, want %v", got.Measure(), e.Measure())
	}
	if got.Len() != e.Len() {
		t.Fatalf("Len %d, want %d", got.Len(), e.Len())
	}
	// Fused scores bit-identical through the round trip.
	for _, c := range e.CandidatesIn(tr, 5*time.Minute) {
		want := e.Match(c)
		have := got.Match(c)
		if len(want) != len(have) {
			t.Fatalf("score vector %d, want %d", len(have), len(want))
		}
		for i := range want {
			if want[i] != have[i] {
				t.Fatalf("score %d: %+v, want %+v", i, have[i], want[i])
			}
		}
	}
	// Corruption catalogue.
	if _, err := LoadBinaryEnsemble(bytes.NewReader(raw[:5])); !errors.Is(err, ErrBinaryDatabase) {
		t.Fatalf("truncated header error = %v", err)
	}
	bad := append([]byte(nil), raw...)
	bad[0] = 'X'
	if _, err := LoadBinaryEnsemble(bytes.NewReader(bad)); !errors.Is(err, ErrBinaryDatabase) {
		t.Fatalf("bad magic error = %v", err)
	}
	bad = append([]byte(nil), raw...)
	bad[8] = 99 // container version
	if _, err := LoadBinaryEnsemble(bytes.NewReader(bad)); !errors.Is(err, ErrBinaryVersion) {
		t.Fatalf("future version error = %v", err)
	}
	bad = append([]byte(nil), raw...)
	bad[9] = 0 // member count
	if _, err := LoadBinaryEnsemble(bytes.NewReader(bad)); !errors.Is(err, ErrBinaryDatabase) {
		t.Fatalf("zero members error = %v", err)
	}
	if _, err := LoadBinaryEnsemble(bytes.NewReader(raw[:len(raw)/2])); !errors.Is(err, ErrBinaryDatabase) {
		t.Fatalf("truncated member error = %v", err)
	}
}

// TestEnsembleMatchZeroAllocs pins the fused steady state: compiled
// ensemble + caller-owned scratch allocates nothing per candidate.
func TestEnsembleMatchZeroAllocs(t *testing.T) {
	tr := ensembleTrace()
	e, err := NewEnsemble(MeasureCosine, Config{Param: ParamSize}, Config{Param: ParamRate})
	if err != nil {
		t.Fatal(err)
	}
	train, valid := Split(tr, 5*time.Minute)
	if err := e.Train(train); err != nil {
		t.Fatal(err)
	}
	ce := e.Compile()
	cands := e.CandidatesIn(valid, 5*time.Minute)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	var scratch EnsembleScratch
	ce.MatchInto(cands[0], &scratch) // warm the buffers
	allocs := testing.AllocsPerRun(100, func() {
		for _, c := range cands {
			if fused, _ := ce.MatchInto(c, &scratch); len(fused) != ce.Len() {
				t.Fatal("bad fused vector")
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("fused match allocated %v times per sweep, want 0", allocs)
	}
}
