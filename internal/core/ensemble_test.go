package core

import (
	"testing"
	"time"

	"dot11fp/internal/capture"
	"dot11fp/internal/dot11"
)

// ensembleTrace builds two devices distinguishable only by combining
// parameters: same sizes but different rates for one pair of windows,
// and vice versa.
func ensembleTrace() *capture.Trace {
	tr := &capture.Trace{Name: "ens"}
	durUs := (20 * time.Minute).Microseconds()
	for t := int64(0); t < durUs; t += 400_000 {
		// Device 1: size 200 at 54 Mb/s. Device 2: size 200 at 11 Mb/s
		// (same size histogram, different rate histogram).
		tr.Records = append(tr.Records,
			capture.Record{T: t, Sender: dot11.LocalAddr(1), Receiver: dot11.LocalAddr(99),
				Class: dot11.ClassData, Size: 200, RateMbps: 54, FCSOK: true},
			capture.Record{T: t + 3_000, Sender: dot11.LocalAddr(2), Receiver: dot11.LocalAddr(99),
				Class: dot11.ClassData, Size: 200, RateMbps: 11, FCSOK: true},
		)
	}
	return tr
}

func TestEnsembleConstruction(t *testing.T) {
	t.Parallel()
	if _, err := NewEnsemble(MeasureCosine); err == nil {
		t.Fatal("empty ensemble accepted")
	}
	if _, err := NewEnsemble(MeasureCosine,
		Config{Param: ParamSize}, Config{Param: ParamSize}); err == nil {
		t.Fatal("duplicate parameter accepted")
	}
	e, err := NewEnsemble(0, Config{Param: ParamSize}, Config{Param: ParamRate})
	if err != nil {
		t.Fatal(err)
	}
	ps := e.Params()
	if len(ps) != 2 || ps[0] != ParamSize || ps[1] != ParamRate {
		t.Fatalf("Params = %v", ps)
	}
}

func TestEnsembleCombinesEvidence(t *testing.T) {
	t.Parallel()
	tr := ensembleTrace()
	e, err := NewEnsemble(MeasureCosine,
		Config{Param: ParamSize}, Config{Param: ParamRate})
	if err != nil {
		t.Fatal(err)
	}
	train, valid := Split(tr, 5*time.Minute)
	if err := e.Train(train); err != nil {
		t.Fatal(err)
	}
	if e.Len() != 2 {
		t.Fatalf("ensemble devices = %d, want 2", e.Len())
	}
	cands := e.CandidatesIn(valid, 5*time.Minute)
	if len(cands) == 0 {
		t.Fatal("no multi-candidates")
	}
	for _, c := range cands {
		scores := e.Match(c)
		if len(scores) != 2 {
			t.Fatalf("match vector = %d entries", len(scores))
		}
		best, ok := e.Best(c)
		if !ok {
			t.Fatal("Best failed")
		}
		if best.Addr != dot11.Addr(c.Addr) {
			t.Fatalf("window %d: %v identified as %v", c.Window, dot11.Addr(c.Addr), best.Addr)
		}
		// Size similarity alone cannot separate the two devices (both
		// send 200-byte frames): the margin must come from the rate
		// member. Verify the combined margin is strict.
		var trueSim, otherSim float64
		for _, s := range scores {
			if s.Addr == dot11.Addr(c.Addr) {
				trueSim = s.Sim
			} else {
				otherSim = s.Sim
			}
		}
		if trueSim <= otherSim {
			t.Fatalf("combined similarity did not separate: true %v vs other %v", trueSim, otherSim)
		}
		// And the gap should be about half the rate gap (mean of a
		// ~equal size-sim and a disjoint rate-sim).
		if otherSim < 0.3 || otherSim > 0.7 {
			t.Errorf("impostor combined sim = %v, want ≈0.5 (size matches, rate disjoint)", otherSim)
		}
	}
}

func TestEnsembleMismatchedCandidate(t *testing.T) {
	t.Parallel()
	e, err := NewEnsemble(MeasureCosine, Config{Param: ParamSize}, Config{Param: ParamRate})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Match(MultiCandidate{Sigs: []*Signature{nil}}); got != nil {
		t.Fatalf("mismatched candidate match = %v", got)
	}
}
