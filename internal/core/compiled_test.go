package core

import (
	"fmt"
	"testing"
	"time"

	"dot11fp/internal/capture"
	"dot11fp/internal/dot11"
)

// compiledFixtureTrace synthesises a multi-device, multi-class trace
// busy enough that signatures carry several frame classes with distinct
// weights.
func compiledFixtureTrace(devices, frames int) *capture.Trace {
	tr := &capture.Trace{Name: "compiled-fixture"}
	classes := []dot11.Class{dot11.ClassData, dot11.ClassQoSData, dot11.ClassNull, dot11.ClassProbeReq}
	t := int64(0)
	for i := 0; i < frames; i++ {
		d := i % devices
		var addr dot11.Addr
		addr[0] = 0x02
		addr[5] = byte(d + 1)
		t += int64(200 + (i*37)%900 + d*13)
		tr.Records = append(tr.Records, capture.Record{
			T: t, Sender: addr, Receiver: dot11.Addr{0x02, 0, 0, 0, 0, 0xff},
			Class: classes[(i+d)%len(classes)], Size: 100 + (i*29)%1300,
			RateMbps: []float64{11, 24, 54}[(i+d)%3], FCSOK: true,
		})
	}
	return tr
}

// trainedDB builds a reference database over the fixture trace.
func trainedDB(t testing.TB, m Measure) (*Database, []Candidate) {
	t.Helper()
	tr := compiledFixtureTrace(8, 6_000)
	db := NewDatabase(Config{Param: ParamInterArrival}, m)
	if err := db.Train(tr); err != nil {
		t.Fatal(err)
	}
	if db.Len() == 0 {
		t.Fatal("fixture trained no references")
	}
	cands := CandidatesIn(tr, 500*time.Millisecond, db.Config())
	if len(cands) == 0 {
		t.Fatal("fixture produced no candidates")
	}
	return db, cands
}

// naiveMatch is the seed's per-pair matching loop, kept as the oracle
// the compiled path must reproduce bit-for-bit.
func naiveMatch(db *Database, candidate *Signature) []Score {
	out := make([]Score, 0, len(db.order))
	for _, addr := range db.order {
		out = append(out, Score{Addr: addr, Sim: Similarity(candidate, db.refs[addr], db.measure)})
	}
	return out
}

func TestCompiledMatchBitIdenticalToNaive(t *testing.T) {
	t.Parallel()
	for _, m := range Measures {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			t.Parallel()
			db, cands := trainedDB(t, m)
			cdb := db.Compile()
			var scratch MatchScratch
			for ci, c := range cands {
				want := naiveMatch(db, c.Sig)
				got := cdb.MatchInto(c.Sig, &scratch)
				if len(got) != len(want) {
					t.Fatalf("candidate %d: %d scores, want %d", ci, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] { // exact: same addr, bit-identical Sim
						t.Fatalf("candidate %d ref %d: got %+v, want %+v", ci, i, got[i], want[i])
					}
				}
			}
		})
	}
}

func TestCompiledDelegationAndConveniences(t *testing.T) {
	t.Parallel()
	db, cands := trainedDB(t, MeasureCosine)
	c := cands[0]
	want := naiveMatch(db, c.Sig)

	// Database.Match delegates to the compiled snapshot.
	got := db.Match(c.Sig)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Match[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	// Best and Above agree with the naive definitions.
	bestWant := Score{Sim: -1}
	for _, s := range want {
		if s.Sim > bestWant.Sim {
			bestWant = s
		}
	}
	if best, ok := db.Best(c.Sig); !ok || best != bestWant {
		t.Fatalf("Best = %+v ok=%v, want %+v", best, ok, bestWant)
	}
	thr := bestWant.Sim
	above := db.Above(c.Sig, thr)
	var aboveWant []Score
	for _, s := range want {
		if s.Sim >= thr {
			aboveWant = append(aboveWant, s)
		}
	}
	if fmt.Sprint(above) != fmt.Sprint(aboveWant) {
		t.Fatalf("Above = %+v, want %+v", above, aboveWant)
	}
}

func TestCompiledMatchAll(t *testing.T) {
	t.Parallel()
	db, cands := trainedDB(t, MeasureCosine)
	cdb := db.Compile()
	rows := cdb.MatchAll(cands)
	if len(rows) != len(cands) {
		t.Fatalf("MatchAll rows = %d, want %d", len(rows), len(cands))
	}
	for i, c := range cands {
		want := naiveMatch(db, c.Sig)
		for j := range want {
			if rows[i][j] != want[j] {
				t.Fatalf("row %d ref %d: got %+v, want %+v", i, j, rows[i][j], want[j])
			}
		}
	}
}

func TestCompileCacheInvalidatedByAdd(t *testing.T) {
	t.Parallel()
	db, cands := trainedDB(t, MeasureCosine)
	first := db.Compile()
	if db.Compile() != first {
		t.Fatal("Compile did not cache the snapshot")
	}
	extra := dot11.MustParseAddr("02:11:22:33:44:55")
	sig := NewSignature(ParamInterArrival, db.Config().Bins)
	for i := 0; i < 60; i++ {
		sig.Add(dot11.ClassData, float64(100+i%7*10))
	}
	if err := db.Add(extra, sig); err != nil {
		t.Fatal(err)
	}
	second := db.Compile()
	if second == first {
		t.Fatal("Add did not invalidate the compiled snapshot")
	}
	if second.Len() != first.Len()+1 {
		t.Fatalf("recompiled Len = %d, want %d", second.Len(), first.Len()+1)
	}
	if got := db.Match(cands[0].Sig); len(got) != second.Len() {
		t.Fatalf("Match after Add returned %d scores, want %d", len(got), second.Len())
	}
}

func TestCompileCacheInvalidatedBySignatureMutation(t *testing.T) {
	t.Parallel()
	db, cands := trainedDB(t, MeasureCosine)

	// Worst-case aliasing order: hold the signature pointer, let Match
	// build and cache the snapshot, then mutate behind the cache. The
	// observation-total freshness check must still catch it.
	target := db.Devices()[0]
	held := db.Signature(target)
	before := db.Match(cands[0].Sig)

	extra := NewSignature(ParamInterArrival, db.Config().Bins)
	for i := 0; i < 500; i++ {
		extra.Add(dot11.ClassProbeResp, float64(2_000+i))
	}
	if err := held.Merge(extra); err != nil {
		t.Fatal(err)
	}
	after := db.Match(cands[0].Sig)
	want := naiveMatch(db, cands[0].Sig)
	for i := range want {
		if after[i] != want[i] {
			t.Fatalf("post-mutation Match[%d] = %+v, want %+v (stale snapshot?)", i, after[i], want[i])
		}
	}
	if after[0] == before[0] {
		t.Fatal("mutation did not change the target's similarity — test fixture too weak")
	}
}

func TestUnknownMeasureFallsBackToCosine(t *testing.T) {
	t.Parallel()
	// NewDatabase does not validate the measure, so an out-of-range
	// value must behave like Measure.fn's cosine default in both the
	// naive and compiled paths instead of panicking.
	db, cands := trainedDB(t, Measure(9))
	want := naiveMatch(db, cands[0].Sig)
	got := db.Match(cands[0].Sig)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Match[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	ref := Score{Sim: -1}
	for _, s := range want {
		if s.Sim > ref.Sim {
			ref = s
		}
	}
	if ref.Sim <= 0 {
		t.Fatal("unknown measure produced no positive cosine scores")
	}
}

func TestAddRejectsBinShapeMismatch(t *testing.T) {
	t.Parallel()
	db := NewDatabase(Config{Param: ParamInterArrival}, MeasureCosine)
	sig := NewSignature(ParamInterArrival, BinSpec{Width: 5, Bins: 16})
	for i := 0; i < 60; i++ {
		sig.Add(dot11.ClassData, float64(i))
	}
	if err := db.Add(staA, sig); err == nil {
		t.Fatal("Add accepted a signature with a mismatched bin shape")
	}
}

func TestMatchIntoZeroAlloc(t *testing.T) {
	db, cands := trainedDB(t, MeasureCosine)
	cdb := db.Compile()
	var scratch MatchScratch
	cdb.MatchInto(cands[0].Sig, &scratch) // warm the buffers
	allocs := testing.AllocsPerRun(200, func() {
		for _, c := range cands {
			if got := cdb.MatchInto(c.Sig, &scratch); len(got) != cdb.Len() {
				t.Fatal("bad match vector")
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("MatchInto allocated %v times per run, want 0", allocs)
	}
}

func TestCompiledEmptyAndNil(t *testing.T) {
	t.Parallel()
	db := NewDatabase(Config{Param: ParamSize}, 0)
	cdb := db.Compile()
	if got := cdb.Match(nil); len(got) != 0 {
		t.Fatalf("empty db Match = %+v", got)
	}
	if _, ok := cdb.Best(NewSignature(ParamSize, DefaultBins(ParamSize))); ok {
		t.Fatal("Best on empty compiled db reported ok")
	}
	if rows := cdb.MatchAll(nil); len(rows) != 0 {
		t.Fatalf("MatchAll(nil) = %v", rows)
	}

	// A nil candidate scores zero against everything, like the naive path.
	db2, _ := trainedDB(t, MeasureCosine)
	for i, s := range db2.Match(nil) {
		if s.Sim != 0 {
			t.Fatalf("nil candidate score %d = %v", i, s.Sim)
		}
	}
}
