package core

import (
	"bufio"
	"bytes"
	"errors"
	"strings"
	"testing"

	"dot11fp/internal/dot11"
)

// roundTrip serialises db with save, reloads it with load, and asserts
// the reloaded database reproduces the original's MatchAll output
// bit-identically — same reference order, same score bits — which is
// the property checkpoint/restore must preserve.
func roundTrip(t *testing.T, label string, db *Database, cands []Candidate,
	save func(*Database, *bytes.Buffer) error, load func([]byte) (*Database, error)) *Database {
	t.Helper()
	var buf bytes.Buffer
	if err := save(db, &buf); err != nil {
		t.Fatalf("%s save: %v", label, err)
	}
	loaded, err := load(buf.Bytes())
	if err != nil {
		t.Fatalf("%s load: %v", label, err)
	}
	if loaded.Len() != db.Len() {
		t.Fatalf("%s: loaded %d references, want %d", label, loaded.Len(), db.Len())
	}
	if loaded.Config() != db.Config() || loaded.Measure() != db.Measure() {
		t.Fatalf("%s: loaded config %+v/%v, want %+v/%v",
			label, loaded.Config(), loaded.Measure(), db.Config(), db.Measure())
	}
	want := db.Compile().MatchAll(cands)
	got := loaded.Compile().MatchAll(cands)
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("%s: candidate %d has %d scores, want %d", label, i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] { // exact equality: bit-identical similarity AND order
				t.Fatalf("%s: candidate %d score %d = %+v, want %+v", label, i, j, got[i][j], want[i][j])
			}
		}
	}
	return loaded
}

// TestDatabaseRoundTripBitIdentical is the missing Save → Load →
// Compile → MatchAll proof for both codecs: a serialised database —
// JSON or binary — must reproduce every similarity score bit for bit.
// (Binary additionally preserves insertion order as written; JSON
// reloads in ascending address order, so the check runs against a
// database whose insertion order is already sorted, as Train produces.)
func TestDatabaseRoundTripBitIdentical(t *testing.T) {
	t.Parallel()
	for _, m := range []Measure{MeasureCosine, MeasureIntersection, MeasureBhattacharyya, MeasureL1} {
		db, cands := trainedDB(t, m)
		label := "measure=" + m.String()
		roundTrip(t, label+"/json", db, cands,
			func(db *Database, buf *bytes.Buffer) error { return db.Save(buf) },
			func(b []byte) (*Database, error) { return Load(bytes.NewReader(b)) })
		roundTrip(t, label+"/binary", db, cands,
			func(db *Database, buf *bytes.Buffer) error { return db.SaveBinary(buf) },
			func(b []byte) (*Database, error) { return LoadBinary(bytes.NewReader(b)) })
	}
}

// TestBinaryPreservesInsertionOrder pins the property that makes the
// binary codec the checkpoint format: references come back in the
// exact order they were written, so similarity vectors keep their
// positions across a restart even when insertion order was not sorted.
func TestBinaryPreservesInsertionOrder(t *testing.T) {
	t.Parallel()
	cfg := Config{Param: ParamSize, MinObservations: 1}
	db := NewDatabase(cfg, MeasureCosine)
	// Deliberately descending insertion order.
	for i := 5; i >= 1; i-- {
		sig := NewSignature(ParamSize, db.Config().Bins)
		for k := 0; k < 10+i; k++ {
			sig.Add(dot11.ClassData, float64(100*i+k))
		}
		if err := db.Add(dot11.LocalAddr(uint64(i)), sig); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := db.SaveBinary(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want, got := db.Devices(), loaded.Devices()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("device %d = %v, want %v (insertion order lost)", i, got[i], want[i])
		}
	}
}

// TestLoadBinaryRejectsCorruption walks the typed-error contract over a
// catalogue of corrupt inputs: every one must fail with
// ErrBinaryDatabase (or ErrBinaryVersion), never panic, never succeed.
func TestLoadBinaryRejectsCorruption(t *testing.T) {
	t.Parallel()
	db, _ := trainedDB(t, MeasureCosine)
	var buf bytes.Buffer
	if err := db.SaveBinary(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	mutate := func(f func(b []byte) []byte) []byte {
		b := make([]byte, len(valid))
		copy(b, valid)
		return f(b)
	}
	cases := map[string][]byte{
		"empty":             {},
		"short magic":       valid[:4],
		"bad magic":         mutate(func(b []byte) []byte { b[0] = 'X'; return b }),
		"truncated header":  valid[:12],
		"truncated mid-way": valid[:len(valid)/2],
		"truncated tail":    valid[:len(valid)-1],
		"device overclaim": mutate(func(b []byte) []byte {
			// The device-count field sits after magic(8) + two
			// length-prefixed names + bins(4) + width(8) + knee(8) + minObs(4).
			off := 8 + 1 + int(valid[8]) + 1
			off += int(valid[off-1]) + 4 + 8 + 8 + 4
			b[off] = 0xff
			b[off+1] = 0xff
			b[off+2] = 0xff
			b[off+3] = 0x7f
			return b
		}),
	}
	for name, input := range cases {
		if _, err := LoadBinary(bytes.NewReader(input)); err == nil {
			t.Errorf("%s: corrupt input accepted", name)
		} else if !errors.Is(err, ErrBinaryDatabase) {
			t.Errorf("%s: error %v is not ErrBinaryDatabase", name, err)
		}
	}

	future := mutate(func(b []byte) []byte { b[7] = binaryVersion + 1; return b })
	if _, err := LoadBinary(bytes.NewReader(future)); !errors.Is(err, ErrBinaryVersion) {
		t.Errorf("future version: error %v is not ErrBinaryVersion", err)
	}
}

// TestWriteBinaryStringBound pins the save-side name bound: the saver
// must reject a name longer than maxBinaryNameLen rather than truncate
// its u8 length prefix into a checkpoint LoadBinary cannot parse.
func TestWriteBinaryStringBound(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	if err := writeBinaryString(bw, strings.Repeat("x", maxBinaryNameLen)); err != nil {
		t.Fatalf("name at the bound rejected: %v", err)
	}
	if err := writeBinaryString(bw, strings.Repeat("x", maxBinaryNameLen+1)); err == nil {
		t.Fatal("name over the bound accepted")
	}
}

// TestSaveBinaryHeaderBounds pins the save-side mirror of the loader's
// header bounds: a database whose configuration the loader would reject
// must fail at save time, not strand an unreloadable checkpoint.
func TestSaveBinaryHeaderBounds(t *testing.T) {
	t.Parallel()
	cases := map[string]Config{
		"oversized bins": {Param: ParamSize, Bins: BinSpec{Bins: maxBinaryBins + 1, Width: 1}},
		"zero width":     {Param: ParamSize, Bins: BinSpec{Bins: 8, Width: 0}},
		"negative knee":  {Param: ParamSize, Bins: BinSpec{Bins: 8, Width: 1, LogKnee: -1}},
		"huge min obs":   {Param: ParamSize, Bins: BinSpec{Bins: 8, Width: 1}, MinObservations: 1<<30 + 1},
	}
	for name, cfg := range cases {
		db := NewDatabase(cfg, MeasureCosine)
		var buf bytes.Buffer
		if err := db.SaveBinary(&buf); err == nil {
			t.Errorf("%s: SaveBinary wrote a checkpoint LoadBinary rejects", name)
		}
	}
}

// FuzzLoadBinary hammers the binary loader with mutated checkpoints:
// it must never panic, corrupt input must surface as a typed error,
// and anything it does accept must survive a canonical re-save →
// re-load cycle byte-for-byte (the checkpoint fixpoint property).
func FuzzLoadBinary(f *testing.F) {
	db, _ := trainedDB(f, MeasureCosine)
	var buf bytes.Buffer
	if err := db.SaveBinary(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:16])
	f.Add([]byte("D11FPDB\x01"))
	f.Add([]byte{})

	empty := NewDatabase(Config{Param: ParamSize}, MeasureCosine)
	buf.Reset()
	if err := empty.SaveBinary(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		loaded, err := LoadBinary(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBinaryDatabase) && !errors.Is(err, ErrBinaryVersion) {
				t.Fatalf("untyped load error: %v", err)
			}
			return
		}
		var first bytes.Buffer
		if err := loaded.SaveBinary(&first); err != nil {
			t.Fatalf("re-saving an accepted database: %v", err)
		}
		again, err := LoadBinary(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("re-loading a canonical save: %v", err)
		}
		var second bytes.Buffer
		if err := again.SaveBinary(&second); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatal("canonical form is not a fixpoint")
		}
	})
}
