package scenario

import (
	"testing"
	"time"

	"dot11fp/internal/device"
	"dot11fp/internal/dot11"
)

func TestOfficeBuild(t *testing.T) {
	t.Parallel()
	p := Office("office-test", 21, 3*time.Minute, 8)
	tr, st, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Encrypted {
		t.Error("office trace not encrypted")
	}
	senders := tr.Senders()
	// AP + most of the 8 stations should have transmitted.
	if len(senders) < 7 {
		t.Fatalf("senders = %d, want ≥ 7", len(senders))
	}
	if st.FramesOnAir == 0 || st.Records == 0 {
		t.Fatalf("empty run: %+v", st)
	}
	// Order invariant.
	for i := 1; i < len(tr.Records); i++ {
		if tr.Records[i].T < tr.Records[i-1].T {
			t.Fatal("records out of order")
		}
	}
}

func TestConferenceBuildChurn(t *testing.T) {
	t.Parallel()
	p := Conference("conf-test", 22, 4*time.Minute, 10)
	tr, _, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Encrypted {
		t.Error("conference trace encrypted")
	}
	senders := tr.Senders()
	// Base stations + AP + some churn devices.
	if len(senders) < 10 {
		t.Fatalf("senders = %d, want ≥ 10 (10 base + churn)", len(senders))
	}
}

func TestBuildDeterminism(t *testing.T) {
	t.Parallel()
	p := Office("det", 23, 90*time.Second, 5)
	a, _, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Records) != len(b.Records) {
		t.Fatalf("non-deterministic build: %d vs %d records", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		if !a.Records[i].Equal(b.Records[i]) {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestFaradaySingleDevice(t *testing.T) {
	t.Parallel()
	prof, err := device.ByName("atheros-like-a")
	if err != nil {
		t.Fatal(err)
	}
	tr, addr, err := BuildFaraday(FaradayParams{
		Profile: prof, Seed: 24, Duration: 5 * time.Second, FixedRateMbps: 54,
	})
	if err != nil {
		t.Fatal(err)
	}
	senders := tr.Senders()
	if senders[addr] < 100 {
		t.Fatalf("device sent %d frames, want saturation", senders[addr])
	}
	// Only AP + device transmit in the cage.
	if len(senders) != 2 {
		t.Fatalf("senders in cage = %d, want 2", len(senders))
	}
}

func TestFaradayBusyChannel(t *testing.T) {
	t.Parallel()
	prof, err := device.ByName("atheros-like-a")
	if err != nil {
		t.Fatal(err)
	}
	tr, _, err := BuildFaraday(FaradayParams{
		Profile: prof, Seed: 25, Duration: 5 * time.Second,
		FixedRateMbps: 54, BusyChannel: true,
		Mutate: func(p *device.Profile) { p.RTSThresholdB = 1000 },
	})
	if err != nil {
		t.Fatal(err)
	}
	rts := 0
	for _, r := range tr.Records {
		if r.Class == dot11.ClassRTS {
			rts++
		}
	}
	if rts == 0 {
		t.Fatal("mutated RTS threshold produced no RTS frames")
	}
}

func TestBuildTwins(t *testing.T) {
	t.Parallel()
	prof, err := device.ByName("intel-like-a")
	if err != nil {
		t.Fatal(err)
	}
	tr, addrs, err := BuildTwins(TwinParams{
		Profile: prof, Seed: 26, Duration: 2 * time.Minute,
		ServicesA: []string{"igmpv3", "llmnr"},
		ServicesB: []string{"mdns", "ssdp"},
	})
	if err != nil {
		t.Fatal(err)
	}
	senders := tr.Senders()
	if senders[addrs[0]] == 0 || senders[addrs[1]] == 0 {
		t.Fatalf("twin activity: %d / %d", senders[addrs[0]], senders[addrs[1]])
	}
	// Both twins broadcast (service frames).
	bcast := map[dot11.Addr]int{}
	for _, r := range tr.Records {
		if r.Receiver.IsBroadcast() && !r.Sender.IsZero() && r.Class == dot11.ClassData {
			bcast[r.Sender]++
		}
	}
	if bcast[addrs[0]] == 0 || bcast[addrs[1]] == 0 {
		t.Fatalf("twin broadcast counts: %v", bcast)
	}
}

func TestRandomizedOfficeBuild(t *testing.T) {
	t.Parallel()
	p := RandomizedOffice("rand-office", 31, 3*time.Minute, 6)
	tr, _, manifest, err := BuildDetailed(p)
	if err != nil {
		t.Fatal(err)
	}
	for i, info := range manifest {
		if !info.Randomized {
			t.Errorf("station %d not marked Randomized with frac 1.0", i)
		}
	}
	rotated := make(map[dot11.Addr]bool)
	withContent := 0
	for _, r := range tr.Records {
		if r.Class != dot11.ClassProbeReq {
			continue
		}
		if r.Sender[0] == 0x06 {
			rotated[r.Sender] = true
		}
		if len(r.ProbeIEs) > 0 {
			withContent++
		}
	}
	if len(rotated) < len(manifest) {
		t.Fatalf("rotated probe senders = %d, want ≥ %d (every client rotates)",
			len(rotated), len(manifest))
	}
	if withContent == 0 {
		t.Fatal("no probe requests carried content")
	}
	// Base addresses must never appear as probe senders.
	base := make(map[dot11.Addr]bool, len(manifest))
	for _, info := range manifest {
		base[info.Addr] = true
	}
	for _, r := range tr.Records {
		if r.Class == dot11.ClassProbeReq && base[r.Sender] {
			t.Fatalf("randomized client probed with its base address %v", r.Sender)
		}
	}
}

func TestRandomizedFracZeroUnchanged(t *testing.T) {
	t.Parallel()
	// Adding the randomization machinery must not perturb existing
	// scenarios: frac 0 and the pre-feature builder agree bit for bit.
	a, _, err := Build(Office("base", 33, 2*time.Minute, 5))
	if err != nil {
		t.Fatal(err)
	}
	p := Office("base", 33, 2*time.Minute, 5)
	p.RandomizedFrac = 0
	b, _, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Records) != len(b.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		if !a.Records[i].Equal(b.Records[i]) {
			t.Fatalf("records diverge at %d", i)
		}
	}
}
