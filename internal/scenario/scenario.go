// Package scenario assembles the evaluation settings of the paper's §V
// on top of the simulator: office traces (stationary WPA network, the
// paper's office 1/2), conference traces (large churning unencrypted
// population with mobility, standing in for the Sigcomm'08 CRAWDAD
// capture), and the controlled Faraday-cage micro-experiments behind
// Figures 4–8.
//
// Scaling: the paper's traces span 7 h with up to 188 reference devices.
// All builders are parameterised by duration and population so the same
// code runs both CI-scale (minutes, tens of devices) and paper-scale
// experiments; EXPERIMENTS.md records the scaled defaults used by the
// benchmark harness.
package scenario

import (
	"math"
	"math/rand/v2"
	"time"

	"dot11fp/internal/capture"
	"dot11fp/internal/device"
	"dot11fp/internal/dot11"
	"dot11fp/internal/sim"
	"dot11fp/internal/stats"
	"dot11fp/internal/traffic"
)

// Params configures an office or conference trace.
type Params struct {
	// Name labels the trace (e.g. "office 1").
	Name string
	// Seed drives all randomness.
	Seed uint64
	// Duration is the total trace length.
	Duration time.Duration
	// Stations is the resident population (present from the start, the
	// pool reference databases learn from).
	Stations int
	// ChurnStations adds devices that join and leave mid-trace
	// (conference walk-ins; candidates unknown to the database).
	ChurnStations int
	// Encrypted applies WPA framing.
	Encrypted bool
	// Mobility enables SNR relocation jumps (conference behaviour).
	Mobility bool
	// ProfilePool bounds how many distinct card archetypes the
	// population draws from; 0 = the full catalogue. Small pools model
	// homogeneous conference fleets.
	ProfilePool int
	// CaptureLossProb is the monitor's loss rate.
	CaptureLossProb float64
	// RandomizedFrac is the fraction of clients that randomize their MAC
	// address (a fresh locally-administered sender per probe burst).
	// 0 disables randomization and leaves existing traces bit-identical.
	RandomizedFrac float64
}

// Office returns parameters mirroring the paper's office captures:
// stable placements, WPA, the full diversity of cards and services.
func Office(name string, seed uint64, duration time.Duration, stations int) Params {
	return Params{
		Name: name, Seed: seed, Duration: duration, Stations: stations,
		Encrypted: true, Mobility: false, ProfilePool: 0,
		CaptureLossProb: 0.01,
	}
}

// Conference returns parameters mirroring the Sigcomm'08 capture:
// open network, mobile users, a laptop fleet skewed towards a few
// popular models, heavy churn and a lossier monitor.
func Conference(name string, seed uint64, duration time.Duration, stations int) Params {
	return Params{
		Name: name, Seed: seed, Duration: duration, Stations: stations,
		ChurnStations: stations / 2, Encrypted: false, Mobility: true,
		ProfilePool: 8, CaptureLossProb: 0.04,
	}
}

// RandomizedOffice returns an office whose entire client population
// randomizes its MAC per probe burst — the adversarial setting for the
// probe-content clustering experiments. Everything else matches Office.
func RandomizedOffice(name string, seed uint64, duration time.Duration, stations int) Params {
	p := Office(name, seed, duration, stations)
	p.RandomizedFrac = 1.0
	return p
}

// StationInfo is the ground truth of one synthesised station, for
// experiment analysis (never consumed by the fingerprint pipeline).
type StationInfo struct {
	Addr      dot11.Addr
	Profile   string
	App       string
	Services  []string
	SNRBaseDB float64
	GapFactor float64
	JoinUs    int64
	LeaveUs   int64
	// Randomized marks a MAC-randomizing client; its Addr is the logical
	// base identity, never seen on the air for probe traffic.
	Randomized bool
}

// Build synthesises the trace.
func Build(p Params) (*capture.Trace, sim.Stats, error) {
	tr, st, _, err := BuildDetailed(p)
	return tr, st, err
}

// BuildDetailed synthesises the trace and also returns the ground-truth
// manifest of every client station.
func BuildDetailed(p Params) (*capture.Trace, sim.Stats, []StationInfo, error) {
	s := sim.New(sim.Config{
		Name:            p.Name,
		Seed:            p.Seed,
		DurationUs:      p.Duration.Microseconds(),
		Channel:         6,
		Encrypted:       p.Encrypted,
		CaptureLossProb: p.CaptureLossProb,
	})
	r := stats.NewRand(p.Seed, 0x5CE0)

	addAP(s, p, r)

	pool := device.Catalog()
	if p.ProfilePool > 0 && p.ProfilePool < len(pool) {
		pool = pool[:p.ProfilePool]
	}
	durUs := p.Duration.Microseconds()
	manifest := make([]StationInfo, 0, p.Stations+p.ChurnStations)
	for i := 0; i < p.Stations; i++ {
		manifest = append(manifest, addClient(s, p, r, pool, i, 0, 0))
	}
	for i := 0; i < p.ChurnStations; i++ {
		join := r.Int64N(durUs * 3 / 4)
		stay := durUs/8 + r.Int64N(durUs/2)
		leave := join + stay
		if leave > durUs {
			leave = durUs
		}
		manifest = append(manifest, addClient(s, p, r, pool, p.Stations+i, join, leave))
	}
	tr, st, err := s.Run()
	return tr, st, manifest, err
}

// addAP attaches the infrastructure: one AP with aggregated downlink
// traffic proportional to the population.
func addAP(s *sim.Simulator, p Params, r *rand.Rand) {
	apSpec := device.APProfile().Instantiate(0, stats.NewRand(p.Seed, 0xA9))
	period := int64(40_000) // base downlink cadence
	if p.Stations > 0 {
		period = max64(40_000, 8_000_000/int64(p.Stations+1))
	}
	dl := traffic.NewCBR("ap-downlink", 1_000, period, 860, float64(period)/4, stats.NewRand(p.Seed, 0xD0))
	web := traffic.NewWeb("ap-web", 0, stats.NewRand(p.Seed, 0xD1))
	s.AddAP(sim.StationConfig{
		Spec:             apSpec,
		Sources:          []traffic.Source{dl, web},
		SNR:              sim.SNRParams{BaseDB: 35, SigmaDB: 0.5},
		MonitorSignalDBm: -42,
	})
}

// addClient attaches one client station with a per-device profile,
// application mix, service set and channel process, returning its
// ground truth.
func addClient(s *sim.Simulator, p Params, r *rand.Rand, pool []device.Profile, unit int, joinUs, leaveUs int64) StationInfo {
	// Popularity-weighted model choice (min of two uniforms → linearly
	// decreasing pmf): a few models dominate, as in a real venue.
	pi := r.IntN(len(pool))
	if p.Mobility {
		if pj := r.IntN(len(pool)); pj < pi {
			pi = pj
		}
	}
	prof := pool[pi]
	spec := prof.Instantiate(unit+1, stats.NewRand(p.Seed, 0x100+uint64(unit)))

	// Short-circuit keeps the shared stream r untouched when the
	// scenario has no randomization, so existing traces stay identical.
	randomized := p.RandomizedFrac > 0 && r.Float64() < p.RandomizedFrac
	if randomized {
		spec.RandomizeMAC = true
		if spec.ProbePeriodUs <= 0 || spec.ProbeBurst <= 0 {
			// Rotation happens at burst boundaries, so a randomizing OS
			// always scans actively even on otherwise quiet drivers.
			spec.ProbePeriodUs = 30_000_000
			spec.ProbeBurst = 3
			spec.ProbeGapUs = 20_000
		}
	}

	srcRand := func(k uint64) *rand.Rand { return stats.NewRand(p.Seed, 0x10_000+uint64(unit)*31+k) }
	var sources []traffic.Source

	// Application mix: pick one dominant behaviour per device and give
	// every generator per-device parameters (download speed, TCP ACK
	// size per OS, request sizes, codec cadence) so two units of the
	// same card model remain separable only through their traffic — the
	// identity signal the paper's §VI-C describes. Conference attendees
	// mostly browse and type; offices add VoIP and bulk transfers.
	//
	// gapFactor models the device's effective downlink speed: it scales
	// the ACK-train density of browsing (lognormal-ish spread 0.4–4).
	gapFactor := math.Exp(stats.TruncNormal(r, 0, 0.55, -0.9, 1.4))
	ackBytes := []int{40, 40, 52, 60, 72}[r.IntN(5)]

	mkWeb := func(label string, slow float64) *traffic.Web {
		w := traffic.NewWeb(label, r.Int64N(5_000_000), srcRand(1))
		w.MeanGapUs *= gapFactor * slow
		w.OnMeanUs *= 0.6 + r.Float64()
		w.OffMinUs *= 0.7 + r.Float64()
		w.AckBytes = ackBytes
		w.ReqBytes = 300 + r.IntN(5)*100 // shared discrete request modes
		w.ReqProb = 0.06 + r.Float64()*0.12
		return w
	}
	mkBulk := func(periodBase int64) *traffic.BurstTrain {
		burst := 4 + r.IntN(7)
		bt := traffic.NewBurstTrain("bulk", r.Int64N(8_000_000),
			periodBase+r.Int64N(periodBase), burst, 1460, float64(periodBase)/5, srcRand(4))
		return bt
	}
	roll := r.Float64()
	if p.Mobility {
		switch {
		case roll < 0.55: // browsing
			sources = append(sources, mkWeb("web", 1))
		case roll < 0.75: // interactive ssh / IM
			ssh := traffic.NewInteractive("ssh", r.Int64N(5_000_000), srcRand(2))
			ssh.MeanGapUs *= gapFactor
			ssh.Bytes = []int{56, 64, 72, 80}[r.IntN(4)]
			sources = append(sources, ssh)
		case roll < 0.82: // an occasional download during a talk
			sources = append(sources, mkBulk(350_000))
		default: // mostly idle: sparse web
			w := mkWeb("idle-web", 2.5)
			w.OffMaxUs *= 2
			sources = append(sources, w)
		}
	} else {
		switch {
		case roll < 0.45: // browsing
			sources = append(sources, mkWeb("web", 1))
		case roll < 0.62: // interactive ssh
			ssh := traffic.NewInteractive("ssh", r.Int64N(5_000_000), srcRand(2))
			ssh.MeanGapUs *= gapFactor
			ssh.Bytes = []int{56, 64, 72, 80}[r.IntN(4)]
			sources = append(sources, ssh)
		case roll < 0.68: // voip call segments (codec-specific cadence,
			// frame bundling keeps the packet rate moderate)
			period := int64(40_000 + r.IntN(2)*20_000)
			size := []int{172, 212}[r.IntN(2)]
			sources = append(sources, traffic.NewCBR("voip", r.Int64N(3_000_000), period, size, 250, srcRand(3)))
		case roll < 0.86: // bulk upload bursts
			sources = append(sources, mkBulk(250_000))
		default: // mostly idle: sparse web
			w := mkWeb("idle-web", 2.5)
			w.OffMaxUs *= 2
			sources = append(sources, w)
		}
	}

	// Network services: a per-device subset with per-device phases —
	// the Figure-7 identity signal. Offices run richer stacks.
	catalog := traffic.ServiceCatalog()
	nsvc := 1 + r.IntN(3)
	if p.Mobility { // conference laptops: leaner service sets
		nsvc = 1 + r.IntN(2)
	}
	var svcNames []string
	seen := make(map[int]bool, nsvc)
	for k := 0; k < nsvc; k++ {
		idx := r.IntN(len(catalog))
		if seen[idx] {
			continue
		}
		seen[idx] = true
		t := catalog[idx]
		phase := r.Int64N(t.PeriodUs)
		svcNames = append(svcNames, t.Name)
		sources = append(sources, traffic.NewService(t.Name, t.PeriodUs, t.JitterUs, t.GapUs, t.BurstBytes, phase, srcRand(6+uint64(idx))))
	}

	snr := sim.SNRParams{BaseDB: 10 + r.Float64()*28, SigmaDB: 0.5}
	if p.Mobility {
		snr.BaseDB = 8 + r.Float64()*26
		snr.SigmaDB = 1.8
		snr.MoveProb = 1.0 / 600 // attendees relocate every ~10 minutes
		snr.MoveLoDB, snr.MoveHiDB = 8, 32
	}

	addr := s.AddStation(sim.StationConfig{
		Spec:             spec,
		Sources:          sources,
		SNR:              snr,
		JoinUs:           joinUs,
		LeaveUs:          leaveUs,
		MonitorSignalDBm: -(35 + r.Float64()*40),
	})
	app := "idle"
	if len(sources) > 0 {
		if lbl := sourceLabel(sources[0]); lbl != "" {
			app = lbl
		}
	}
	return StationInfo{
		Addr: addr, Profile: prof.Name, App: app, Services: svcNames,
		SNRBaseDB: snr.BaseDB, GapFactor: gapFactor, JoinUs: joinUs, LeaveUs: leaveUs,
		Randomized: randomized,
	}
}

// sourceLabel extracts the human label of a traffic source.
func sourceLabel(s traffic.Source) string {
	switch v := s.(type) {
	case *traffic.Web:
		return v.Label
	case *traffic.Interactive:
		return v.Label
	case *traffic.CBR:
		return v.Label
	case *traffic.BurstTrain:
		return v.Label
	case *traffic.Saturator:
		return v.Label
	default:
		return ""
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
