package scenario

import (
	"time"

	"dot11fp/internal/capture"
	"dot11fp/internal/device"
	"dot11fp/internal/dot11"
	"dot11fp/internal/sim"
	"dot11fp/internal/stats"
	"dot11fp/internal/traffic"
)

// FaradayParams configures a controlled single-device experiment (the
// paper's Faraday-cage / lab setups behind Figures 4–8).
type FaradayParams struct {
	// Profile is the card archetype under test.
	Profile device.Profile
	// Mutate optionally adjusts the profile (e.g. set an RTS threshold)
	// before instantiation.
	Mutate func(*device.Profile)
	// Seed and Duration shape the run.
	Seed     uint64
	Duration time.Duration
	// FixedRateMbps pins the data rate (0 keeps the profile's policy) —
	// the paper's "only frames transmitted at 54 Mbps" filter is applied
	// at analysis time, but pinning reproduces the cage's stability.
	FixedRateMbps float64
	// PayloadBytes is the saturated UDP frame payload (default 1470,
	// iperf's default).
	PayloadBytes int
	// BusyChannel adds a competing station (the paper's RTS experiment
	// runs in a busy lab, not the cage).
	BusyChannel bool
	// SNRdB overrides the device's channel quality (default 40: cage).
	SNRdB float64
	// Idle drops the saturated UDP source; the device only emits its
	// MAC-level traffic (power-save nulls, probes) — the Figure-8 setup.
	Idle bool
	// KeepPowerSave preserves the profile's power-save behaviour, which
	// is otherwise disabled to keep backoff combs clean.
	KeepPowerSave bool
}

// BuildFaraday runs the controlled experiment and returns the trace and
// the device's MAC address.
func BuildFaraday(p FaradayParams) (*capture.Trace, dot11.Addr, error) {
	if p.Duration <= 0 {
		p.Duration = 30 * time.Second
	}
	if p.PayloadBytes == 0 {
		p.PayloadBytes = 1470
	}
	if p.SNRdB == 0 {
		p.SNRdB = 40
	}
	prof := p.Profile
	if p.Mutate != nil {
		p.Mutate(&prof)
	}
	if !p.KeepPowerSave {
		prof.PowerSave = false
	}
	prof.ProbePeriodUs = 0
	if p.FixedRateMbps > 0 {
		prof.RatePolicy = device.RateFixed
		prof.PreferredRateMbps = p.FixedRateMbps
	}

	s := sim.New(sim.Config{
		Name:       "faraday-" + prof.Name,
		Seed:       p.Seed,
		DurationUs: p.Duration.Microseconds(),
		Channel:    6,
	})
	ap := device.APProfile().Instantiate(0, stats.NewRand(p.Seed, 0xA9))
	s.AddAP(sim.StationConfig{Spec: ap, SNR: sim.SNRParams{BaseDB: 35}, MonitorSignalDBm: -40})

	spec := prof.Instantiate(1, stats.NewRand(p.Seed, 1))
	var sources []traffic.Source
	if !p.Idle {
		sources = append(sources, &traffic.Saturator{Label: "iperf", Bytes: p.PayloadBytes})
	}
	addr := s.AddStation(sim.StationConfig{
		Spec:             spec,
		Sources:          sources,
		SNR:              sim.SNRParams{BaseDB: p.SNRdB, SigmaDB: 0.3},
		MonitorSignalDBm: -45,
	})

	if p.BusyChannel {
		other, err := device.ByName("intel-like-a")
		if err != nil {
			return nil, dot11.ZeroAddr, err
		}
		other.ProbePeriodUs = 0
		other.PowerSave = false
		ospec := other.Instantiate(2, stats.NewRand(p.Seed, 2))
		// A steadily chatty neighbour keeps the medium occupied, so the
		// device under test almost always contends for access — the
		// paper's "busy wireless network environment (our lab)".
		bg := traffic.NewCBR("bg-cbr", 0, 2_500, 700, 400, stats.NewRand(p.Seed, 3))
		web := traffic.NewWeb("bg-web", 0, stats.NewRand(p.Seed, 4))
		s.AddStation(sim.StationConfig{
			Spec:             ospec,
			Sources:          []traffic.Source{bg, web},
			SNR:              sim.SNRParams{BaseDB: 30, SigmaDB: 1},
			MonitorSignalDBm: -60,
		})
	}

	tr, _, err := s.Run()
	return tr, addr, err
}

// TwinParams configures the Figure-7 experiment: two units of the same
// model, same OS, different service sets, active simultaneously.
type TwinParams struct {
	Profile  device.Profile
	Seed     uint64
	Duration time.Duration
	// ServicesA and ServicesB name the per-unit service sets.
	ServicesA, ServicesB []string
}

// BuildTwins runs the twin-netbook experiment, returning the trace and
// both addresses.
func BuildTwins(p TwinParams) (*capture.Trace, [2]dot11.Addr, error) {
	var addrs [2]dot11.Addr
	if p.Duration <= 0 {
		p.Duration = 10 * time.Minute
	}
	prof := p.Profile
	prof.ProbePeriodUs = 0
	s := sim.New(sim.Config{
		Name:       "twins-" + prof.Name,
		Seed:       p.Seed,
		DurationUs: p.Duration.Microseconds(),
		Channel:    6,
	})
	ap := device.APProfile().Instantiate(0, stats.NewRand(p.Seed, 0xA9))
	s.AddAP(sim.StationConfig{Spec: ap, SNR: sim.SNRParams{BaseDB: 35}, MonitorSignalDBm: -40})

	for i, names := range [][]string{p.ServicesA, p.ServicesB} {
		var sources []traffic.Source
		for k, name := range names {
			svc, ok := traffic.ServiceByName(name, int64(k)*1_000_000, stats.NewRand(p.Seed, uint64(10*i+k)))
			if !ok {
				continue
			}
			// Twins broadcast frequently enough for 5-minute windows.
			svc.PeriodUs /= 20
			sources = append(sources, svc)
		}
		spec := prof.Instantiate(i+1, stats.NewRand(p.Seed, uint64(i+1)))
		addrs[i] = s.AddStation(sim.StationConfig{
			Spec:             spec,
			Sources:          sources,
			SNR:              sim.SNRParams{BaseDB: 32, SigmaDB: 0.5},
			MonitorSignalDBm: -50,
		})
	}
	tr, _, err := s.Run()
	return tr, addrs, err
}
