package device

import (
	"bytes"
	"testing"

	"dot11fp/internal/stats"
)

func TestCatalogValid(t *testing.T) {
	t.Parallel()
	cat := Catalog()
	if len(cat) < 10 {
		t.Fatalf("catalogue has %d profiles, want >= 10 for population diversity", len(cat))
	}
	seen := make(map[string]bool, len(cat))
	for i := range cat {
		p := cat[i]
		if err := p.Validate(); err != nil {
			t.Errorf("profile %d: %v", i, err)
		}
		if seen[p.Name] {
			t.Errorf("duplicate profile name %q", p.Name)
		}
		seen[p.Name] = true
	}
	if err := APProfile().Validate(); err != nil {
		t.Errorf("AP profile: %v", err)
	}
}

func TestCatalogIsCopy(t *testing.T) {
	t.Parallel()
	a := Catalog()
	a[0].Name = "mutated"
	b := Catalog()
	if b[0].Name == "mutated" {
		t.Fatal("Catalog() exposes internal storage")
	}
}

func TestByName(t *testing.T) {
	t.Parallel()
	p, err := ByName("intel-like-a")
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	if p.Vendor != "vendor-b" {
		t.Errorf("vendor = %q", p.Vendor)
	}
	if _, err := ByName("ap-generic"); err != nil {
		t.Errorf("ByName(ap-generic): %v", err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName(nope) should fail")
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	t.Parallel()
	base := Catalog()[0]
	mutations := []func(*Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.CWmin = 0 },
		func(p *Profile) { p.CWmax = p.CWmin - 1 },
		func(p *Profile) { p.Backoff = 0 },
		func(p *Profile) { p.Backoff = BackoffTruncated + 1 },
		func(p *Profile) { p.GranularityUs = 0 },
		func(p *Profile) { p.RTSThresholdB = -1 },
		func(p *Profile) { p.RTSThresholdB = RTSDisabled + 1 },
		func(p *Profile) { p.RatePolicy = 0 },
		func(p *Profile) { p.Mode = 0 },
		func(p *Profile) { p.PowerSave = true; p.NullPeriodUs = 0 },
	}
	for i, mut := range mutations {
		p := base
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d: Validate accepted an invalid profile", i)
		}
	}
}

func TestRates(t *testing.T) {
	t.Parallel()
	b := Profile{Mode: ModeB}
	if got := len(b.Rates()); got != 4 {
		t.Errorf("ModeB rates = %d, want 4", got)
	}
	g := Profile{Mode: ModeG}
	if got := len(g.Rates()); got != 12 {
		t.Errorf("ModeG rates = %d, want 12", got)
	}
}

func TestInstantiateDeterministicAndVaried(t *testing.T) {
	t.Parallel()
	p := Catalog()[1] // has power save and probing
	s1 := p.Instantiate(1, stats.NewRand(9, 1))
	s2 := p.Instantiate(1, stats.NewRand(9, 1))
	if s1.ClockSkewPPM != s2.ClockSkewPPM || s1.UnitDIFSUs != s2.UnitDIFSUs ||
		s1.NullPhaseUs != s2.NullPhaseUs || s1.ProbePhaseUs != s2.ProbePhaseUs ||
		!bytes.Equal(s1.ProbeIEs, s2.ProbeIEs) {
		t.Fatal("Instantiate is not deterministic for equal sources")
	}
	s3 := p.Instantiate(2, stats.NewRand(9, 2))
	if s1.ClockSkewPPM == s3.ClockSkewPPM && s1.NullPhaseUs == s3.NullPhaseUs {
		t.Error("distinct units got identical variation, suspicious")
	}
	if bytes.Equal(s1.ProbeIEs, s3.ProbeIEs) {
		t.Error("distinct units got identical probe content (UUID should differ)")
	}
	if s1.ClockSkewPPM < -40 || s1.ClockSkewPPM > 40 {
		t.Errorf("clock skew %v out of tolerance", s1.ClockSkewPPM)
	}
	if s1.NullPhaseUs < 0 || s1.NullPhaseUs >= p.NullPeriodUs {
		t.Errorf("null phase %d outside period", s1.NullPhaseUs)
	}
}

func TestSkewPeriod(t *testing.T) {
	t.Parallel()
	s := Spec{ClockSkewPPM: 20}
	if got := s.SkewPeriod(1_000_000); got != 1_000_020 {
		t.Errorf("SkewPeriod = %d, want 1000020", got)
	}
	s.ClockSkewPPM = -20
	if got := s.SkewPeriod(1_000_000); got != 999_980 {
		t.Errorf("SkewPeriod = %d, want 999980", got)
	}
}

func TestDrawBackoffSlotsRanges(t *testing.T) {
	t.Parallel()
	r := stats.NewRand(11, 3)
	quirks := []BackoffQuirk{BackoffStandard, BackoffExtraSlot, BackoffFirstSlotBias, BackoffSkewedLow, BackoffTruncated}
	for _, q := range quirks {
		s := Spec{Profile: Profile{Backoff: q, ExtraSlotUs: 10, FirstSlotProb: 0.3}}
		for i := 0; i < 5000; i++ {
			slots, off := s.DrawBackoffSlots(r, 15)
			if slots < 0 || slots > 15 {
				t.Fatalf("quirk %d: slots = %d out of [0,15]", q, slots)
			}
			if off != 0 && q != BackoffExtraSlot {
				t.Fatalf("quirk %d: unexpected sub-slot offset %d", q, off)
			}
		}
	}
}

func TestDrawBackoffQuirkShapes(t *testing.T) {
	t.Parallel()
	const n = 40_000
	count := func(q BackoffQuirk, p float64) (slot0 int, preSlot int, hi int) {
		r := stats.NewRand(5, uint64(q))
		s := Spec{Profile: Profile{Backoff: q, ExtraSlotUs: 10, FirstSlotProb: p}}
		for i := 0; i < n; i++ {
			slots, off := s.DrawBackoffSlots(r, 15)
			if off != 0 {
				preSlot++
			} else if slots == 0 {
				slot0++
			}
			if slots > 11 {
				hi++
			}
		}
		return
	}

	s0, _, _ := count(BackoffStandard, 0)
	uniform := float64(n) / 16
	if f := float64(s0); f < uniform*0.85 || f > uniform*1.15 {
		t.Errorf("standard slot0 count = %d, want ~%v", s0, uniform)
	}

	_, pre, _ := count(BackoffExtraSlot, 0)
	if pre == 0 {
		t.Error("extra-slot quirk never used its pre-slot")
	}
	if f := float64(pre); f < uniform*0.7 || f > uniform*1.3 {
		t.Errorf("pre-slot count = %d, want ~%v", pre, uniform)
	}

	sBias, _, _ := count(BackoffFirstSlotBias, 0.3)
	if f := float64(sBias) / n; f < 0.28 || f > 0.42 {
		t.Errorf("first-slot-bias slot0 fraction = %v, want ~0.3+", f)
	}

	_, _, hiTrunc := count(BackoffTruncated, 0)
	if hiTrunc != 0 {
		t.Errorf("truncated quirk drew %d slots above 3/4 CW", hiTrunc)
	}

	sLow, _, _ := count(BackoffSkewedLow, 0)
	if float64(sLow) <= uniform {
		t.Errorf("skewed-low slot0 count = %d, want > uniform %v", sLow, uniform)
	}
}

func TestQuantize(t *testing.T) {
	t.Parallel()
	s := Spec{Profile: Profile{GranularityUs: 4}}
	tests := []struct{ in, want int64 }{
		{0, 0}, {1, 0}, {2, 4}, {3, 4}, {4, 4}, {5, 4}, {6, 8}, {103, 104},
	}
	for _, tt := range tests {
		if got := s.Quantize(tt.in); got != tt.want {
			t.Errorf("Quantize(%d) = %d, want %d", tt.in, got, tt.want)
		}
	}
	s1 := Spec{Profile: Profile{GranularityUs: 1}}
	if got := s1.Quantize(7); got != 7 {
		t.Errorf("granularity-1 Quantize(7) = %d", got)
	}
}

func TestProfileDiversity(t *testing.T) {
	t.Parallel()
	// The population must span multiple backoff quirks, rate policies and
	// RTS settings — otherwise the paper's factors are unexercised.
	quirks := make(map[BackoffQuirk]bool)
	policies := make(map[RatePolicy]bool)
	rts := make(map[bool]bool)
	ps := make(map[bool]bool)
	for _, p := range Catalog() {
		quirks[p.Backoff] = true
		policies[p.RatePolicy] = true
		rts[p.RTSThresholdB < RTSDisabled] = true
		ps[p.PowerSave] = true
	}
	if len(quirks) < 4 {
		t.Errorf("only %d backoff quirks exercised", len(quirks))
	}
	if len(policies) < 3 {
		t.Errorf("only %d rate policies exercised", len(policies))
	}
	if !rts[true] || !rts[false] {
		t.Error("catalogue lacks both RTS-on and RTS-off devices")
	}
	if !ps[true] || !ps[false] {
		t.Error("catalogue lacks both power-save and non-power-save devices")
	}
}
