package device

import "fmt"

// The catalogue of card/driver archetypes used by the scenario
// generators. Names are synthetic ("atheros-like" = a card family with
// madwifi-era behaviour) — see the package comment.
var catalog = []Profile{
	{
		Name: "atheros-like-a", Vendor: "vendor-a", Mode: ModeG,
		CWmin: 15, CWmax: 1023, Backoff: BackoffStandard,
		GranularityUs: 1, JitterUs: 0.6, DIFSAdjustUs: 0,
		RTSThresholdB: RTSDisabled, RatePolicy: RateSampler, PreferredRateMbps: 54,
		PowerSave:     false,
		ProbePeriodUs: 60_000_000, ProbeBurst: 3, ProbeGapUs: 25_000,
		ShortPreamble: true,
	},
	{
		Name: "atheros-like-b", Vendor: "vendor-a", Mode: ModeG,
		CWmin: 15, CWmax: 1023, Backoff: BackoffExtraSlot, ExtraSlotUs: 10,
		GranularityUs: 1, JitterUs: 0.5, DIFSAdjustUs: 1,
		RTSThresholdB: RTSDisabled, RatePolicy: RateARF, PreferredRateMbps: 54,
		PowerSave: true, NullPeriodUs: 180_000_000, NullJitterUs: 4_000_000,
		ProbePeriodUs: 45_000_000, ProbeBurst: 2, ProbeGapUs: 40_000,
		ShortPreamble: true,
	},
	{
		Name: "intel-like-a", Vendor: "vendor-b", Mode: ModeG,
		CWmin: 15, CWmax: 1023, Backoff: BackoffFirstSlotBias, FirstSlotProb: 0.22,
		GranularityUs: 2, JitterUs: 0.9, DIFSAdjustUs: 2,
		RTSThresholdB: RTSDisabled, RatePolicy: RateConservative, PreferredRateMbps: 48,
		PowerSave: true, NullPeriodUs: 102_400_000 / 2, NullJitterUs: 900_000,
		ProbePeriodUs: 120_000_000, ProbeBurst: 4, ProbeGapUs: 18_000,
		ShortPreamble: true,
	},
	{
		Name: "intel-like-b", Vendor: "vendor-b", Mode: ModeG,
		CWmin: 31, CWmax: 1023, Backoff: BackoffStandard,
		GranularityUs: 2, JitterUs: 1.1, DIFSAdjustUs: -1,
		RTSThresholdB: 2000, RatePolicy: RateConservative, PreferredRateMbps: 36,
		PowerSave: true, NullPeriodUs: 60_000_000, NullJitterUs: 1_500_000,
		ProbePeriodUs: 90_000_000, ProbeBurst: 3, ProbeGapUs: 22_000,
		ShortPreamble: true,
	},
	{
		Name: "broadcom-like", Vendor: "vendor-c", Mode: ModeG,
		CWmin: 15, CWmax: 511, Backoff: BackoffSkewedLow,
		GranularityUs: 1, JitterUs: 0.7, DIFSAdjustUs: 3,
		RTSThresholdB: RTSDisabled, RatePolicy: RateARF, PreferredRateMbps: 54,
		PowerSave: true, NullPeriodUs: 300_000_000, NullJitterUs: 10_000_000,
		ProbePeriodUs: 75_000_000, ProbeBurst: 3, ProbeGapUs: 35_000,
		ShortPreamble: true,
	},
	{
		Name: "ralink-like", Vendor: "vendor-d", Mode: ModeG,
		CWmin: 15, CWmax: 1023, Backoff: BackoffTruncated,
		GranularityUs: 4, JitterUs: 1.8, DIFSAdjustUs: 4,
		RTSThresholdB: 2347, RatePolicy: RateARF, PreferredRateMbps: 54,
		PowerSave:     false,
		ProbePeriodUs: 30_000_000, ProbeBurst: 5, ProbeGapUs: 15_000,
		ShortPreamble: false,
	},
	{
		Name: "prism-like", Vendor: "vendor-e", Mode: ModeB,
		CWmin: 31, CWmax: 1023, Backoff: BackoffStandard,
		GranularityUs: 4, JitterUs: 2.2, DIFSAdjustUs: 6,
		RTSThresholdB: 1500, RatePolicy: RateARF, PreferredRateMbps: 11,
		PowerSave:     false,
		ProbePeriodUs: 60_000_000, ProbeBurst: 2, ProbeGapUs: 60_000,
		ShortPreamble: false,
	},
	{
		Name: "realtek-like", Vendor: "vendor-f", Mode: ModeB,
		CWmin: 31, CWmax: 1023, Backoff: BackoffFirstSlotBias, FirstSlotProb: 0.35,
		GranularityUs: 2, JitterUs: 1.4, DIFSAdjustUs: -2,
		RTSThresholdB: RTSDisabled, RatePolicy: RateFixed, PreferredRateMbps: 11,
		PowerSave: true, NullPeriodUs: 45_000_000, NullJitterUs: 2_000_000,
		ProbePeriodUs: 20_000_000, ProbeBurst: 3, ProbeGapUs: 30_000,
		ShortPreamble: false,
	},
	{
		Name: "marvell-like", Vendor: "vendor-g", Mode: ModeG,
		CWmin: 15, CWmax: 1023, Backoff: BackoffExtraSlot, ExtraSlotUs: 6,
		GranularityUs: 1, JitterUs: 0.8, DIFSAdjustUs: 2,
		RTSThresholdB: 2200, RatePolicy: RateSampler, PreferredRateMbps: 48,
		PowerSave: true, NullPeriodUs: 240_000_000, NullJitterUs: 6_000_000,
		ProbePeriodUs: 50_000_000, ProbeBurst: 2, ProbeGapUs: 45_000,
		ShortPreamble: true,
	},
	{
		Name: "ti-like", Vendor: "vendor-h", Mode: ModeG,
		CWmin: 15, CWmax: 255, Backoff: BackoffSkewedLow,
		GranularityUs: 2, JitterUs: 1.0, DIFSAdjustUs: 5,
		RTSThresholdB: RTSDisabled, RatePolicy: RateConservative, PreferredRateMbps: 24,
		PowerSave: true, NullPeriodUs: 90_000_000, NullJitterUs: 3_000_000,
		ProbePeriodUs: 40_000_000, ProbeBurst: 4, ProbeGapUs: 20_000,
		ShortPreamble: true,
	},
	{
		Name: "apple-like", Vendor: "vendor-c", Mode: ModeG,
		CWmin: 15, CWmax: 1023, Backoff: BackoffStandard,
		GranularityUs: 1, JitterUs: 0.5, DIFSAdjustUs: -1,
		RTSThresholdB: RTSDisabled, RatePolicy: RateSampler, PreferredRateMbps: 54,
		PowerSave: true, NullPeriodUs: 120_000_000, NullJitterUs: 2_500_000,
		ProbePeriodUs: 35_000_000, ProbeBurst: 3, ProbeGapUs: 28_000,
		ShortPreamble: true,
	},
	{
		Name: "zydas-like", Vendor: "vendor-i", Mode: ModeG,
		CWmin: 31, CWmax: 1023, Backoff: BackoffTruncated,
		GranularityUs: 4, JitterUs: 2.5, DIFSAdjustUs: 8,
		RTSThresholdB: 1800, RatePolicy: RateARF, PreferredRateMbps: 36,
		PowerSave:     false,
		ProbePeriodUs: 25_000_000, ProbeBurst: 6, ProbeGapUs: 12_000,
		ShortPreamble: false,
	},
}

// apProfile is the archetype used for access points.
var apProfile = Profile{
	Name: "ap-generic", Vendor: "vendor-ap", Mode: ModeG,
	CWmin: 15, CWmax: 1023, Backoff: BackoffStandard,
	GranularityUs: 1, JitterUs: 0.4, DIFSAdjustUs: 0,
	RTSThresholdB: RTSDisabled, RatePolicy: RateARF, PreferredRateMbps: 54,
	ShortPreamble: true,
}

// Catalog returns a copy of the client-card archetype catalogue.
func Catalog() []Profile {
	out := make([]Profile, len(catalog))
	copy(out, catalog)
	return out
}

// APProfile returns the access-point archetype.
func APProfile() Profile { return apProfile }

// ByName finds a profile by name.
func ByName(name string) (Profile, error) {
	if name == apProfile.Name {
		return apProfile, nil
	}
	for _, p := range catalog {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("device: unknown profile %q", name)
}
