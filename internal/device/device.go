// Package device models the wireless card + driver heterogeneity that
// the paper identifies as the root cause of fingerprintability (§VI):
// random-backoff implementation quirks (Gopinath et al.; Fig. 4),
// RTS-threshold handling (Fig. 5), rate-adaptation policy (Fig. 6),
// power-save keep-alive behaviour (Fig. 8) and active-scan probing
// (Franklin et al.).
//
// A Profile describes a card/driver archetype; Instantiate derives a
// per-unit Spec with small manufacturing-level variations (clock skew,
// timer offsets), which is what makes two devices of the same model
// distinguishable only by their traffic (Fig. 7), not their timing.
//
// The archetypes are synthetic: they mimic the *kinds* of deviations the
// paper and its citations report, not any specific vendor's measured
// firmware. That is exactly what the substitution needs — a population
// whose between-model variance dwarfs within-model variance.
package device

import (
	"fmt"
	"math/rand/v2"

	"dot11fp/internal/dot11"
	"dot11fp/internal/stats"
)

// BackoffQuirk names a random-backoff implementation family.
type BackoffQuirk uint8

// Backoff quirks. Standard draws uniformly over [0, CW]; the others
// reproduce deviations reported by Gopinath et al. and Berger et al.
const (
	// BackoffStandard is a compliant uniform draw over [0, CW].
	BackoffStandard BackoffQuirk = iota + 1
	// BackoffExtraSlot inserts one short additional slot position before
	// the standard grid (the extra peak in Fig. 4, top).
	BackoffExtraSlot
	// BackoffFirstSlotBias transmits in the first slot far more often
	// than a uniform draw would (Berger et al.).
	BackoffFirstSlotBias
	// BackoffSkewedLow draws with a linear bias towards low slots.
	BackoffSkewedLow
	// BackoffTruncated uses only the lower 3/4 of the contention window.
	BackoffTruncated
)

// RatePolicy names a rate-adaptation algorithm family.
type RatePolicy uint8

// Rate policies.
const (
	// RateFixed pins the preferred rate.
	RateFixed RatePolicy = iota + 1
	// RateARF steps up after 10 consecutive successes and down after 2
	// consecutive failures.
	RateARF
	// RateConservative is a slow ARF variant (20 successes / 3 failures).
	RateConservative
	// RateSampler mostly uses a home rate but frequently samples
	// neighbouring rates (the spread distribution of Fig. 6d).
	RateSampler
)

// PHYMode is the supported rate family.
type PHYMode uint8

// PHY modes.
const (
	// ModeB supports only the 802.11b CCK rates.
	ModeB PHYMode = iota + 1
	// ModeG supports b and g rates (the common 2008-era card).
	ModeG
)

// RatesB and RatesG are the standard rate sets in Mb/s.
var (
	RatesB = []float64{1, 2, 5.5, 11}
	RatesG = []float64{1, 2, 5.5, 11, 6, 9, 12, 18, 24, 36, 48, 54}
	// RatesOrdered is RatesG sorted by speed, the ladder rate
	// controllers climb.
	RatesOrdered = []float64{1, 2, 5.5, 6, 9, 11, 12, 18, 24, 36, 48, 54}
)

// RTSDisabled is an RTS threshold value that never triggers RTS/CTS.
const RTSDisabled = 2347

// Profile is a card/driver archetype.
type Profile struct {
	Name   string
	Vendor string
	Mode   PHYMode

	// CWmin/CWmax bound the binary exponential backoff.
	CWmin, CWmax int
	// Backoff selects the quirk family.
	Backoff BackoffQuirk
	// ExtraSlotUs is the width of the quirk pre-slot (BackoffExtraSlot).
	ExtraSlotUs int64
	// FirstSlotProb is the slot-0 probability for BackoffFirstSlotBias.
	FirstSlotProb float64
	// DIFSAdjustUs is a systematic firmware timing offset applied to the
	// DIFS wait, in µs (positive = slow card).
	DIFSAdjustUs int64
	// GranularityUs quantises all of the card's timers (1, 2 or 4 µs).
	GranularityUs int64
	// JitterUs is the σ of gaussian timing noise the card adds.
	JitterUs float64

	// RTSThresholdB triggers RTS/CTS for larger MSDUs; RTSDisabled turns
	// the mechanism off.
	RTSThresholdB int

	// RatePolicy and PreferredRateMbps parameterise rate control.
	RatePolicy        RatePolicy
	PreferredRateMbps float64

	// PowerSave enables periodic null-function keep-alives with the
	// given mean period and jitter.
	PowerSave    bool
	NullPeriodUs int64
	NullJitterUs float64

	// Active scanning: a burst of ProbeBurst probe requests every
	// ProbePeriodUs, ProbeGapUs apart (per-driver scan signatures).
	ProbePeriodUs int64
	ProbeBurst    int
	ProbeGapUs    int64

	// RandomizeMAC models a privacy-conscious client OS: the station
	// mints a fresh locally-administered sender address at the start of
	// every probe burst and keeps it until the next burst, so no stable
	// MAC ever links its traffic. Probe content (ProbeIEs) is the only
	// thread connecting the rotations.
	RandomizeMAC bool

	// ShortPreamble selects the short CCK PLCP preamble.
	ShortPreamble bool
}

// Validate reports structural problems in a profile.
func (p Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("device: profile without name")
	case p.CWmin <= 0 || p.CWmax < p.CWmin:
		return fmt.Errorf("device %s: bad CW range [%d,%d]", p.Name, p.CWmin, p.CWmax)
	case p.Backoff < BackoffStandard || p.Backoff > BackoffTruncated:
		return fmt.Errorf("device %s: bad backoff quirk %d", p.Name, p.Backoff)
	case p.GranularityUs <= 0:
		return fmt.Errorf("device %s: bad granularity %d", p.Name, p.GranularityUs)
	case p.RTSThresholdB < 0 || p.RTSThresholdB > RTSDisabled:
		return fmt.Errorf("device %s: bad RTS threshold %d", p.Name, p.RTSThresholdB)
	case p.RatePolicy < RateFixed || p.RatePolicy > RateSampler:
		return fmt.Errorf("device %s: bad rate policy %d", p.Name, p.RatePolicy)
	case p.Mode != ModeB && p.Mode != ModeG:
		return fmt.Errorf("device %s: bad PHY mode %d", p.Name, p.Mode)
	case p.PowerSave && p.NullPeriodUs <= 0:
		return fmt.Errorf("device %s: power save without period", p.Name)
	}
	return nil
}

// Rates returns the profile's supported rate set.
func (p Profile) Rates() []float64 {
	if p.Mode == ModeB {
		return RatesB
	}
	return RatesG
}

// Spec is one physical unit of a Profile: the archetype plus per-unit
// manufacturing variation. Two Specs of the same Profile differ only in
// these small offsets and in the traffic running on them.
type Spec struct {
	Profile
	// Unit is a per-scenario unique identifier.
	Unit int
	// ClockSkewPPM scales every period the unit times (crystal skew).
	ClockSkewPPM float64
	// UnitDIFSUs is an extra per-unit timing offset within the model's
	// tolerance band.
	UnitDIFSUs int64
	// NullPhaseUs de-phases the power-save schedule.
	NullPhaseUs int64
	// ProbePhaseUs de-phases the scan schedule.
	ProbePhaseUs int64
	// ProbeIEs is the unit's probe-request body: the driver's element
	// list (SSID, rates by PHY mode, DS parameter) plus a WPS-style
	// vendor element carrying a per-unit UUID — the stable,
	// address-independent content that probe-content fingerprinting
	// keys on. Immutable after Instantiate.
	ProbeIEs []byte
}

// Instantiate derives a per-unit Spec using the given source.
func (p Profile) Instantiate(unit int, r *rand.Rand) Spec {
	s := Spec{Profile: p, Unit: unit}
	s.ClockSkewPPM = stats.TruncNormal(r, 0, 15, -40, 40)
	s.UnitDIFSUs = int64(stats.TruncNormal(r, 0, 0.8, -2, 2))
	if p.NullPeriodUs > 0 {
		s.NullPhaseUs = r.Int64N(p.NullPeriodUs)
	}
	if p.ProbePeriodUs > 0 {
		s.ProbePhaseUs = r.Int64N(p.ProbePeriodUs)
	}
	// Per-unit probe content, drawn last so the per-unit variation
	// stream above is untouched for existing units.
	s.ProbeIEs = p.probeIEs(r.Uint64(), r.Uint64())
	return s
}

// probeIEs builds the archetype's probe-request element list with the
// unit's WPS UUID bytes mixed in.
func (p Profile) probeIEs(uuidHi, uuidLo uint64) []byte {
	rates, ext := probeRatesB, []byte(nil)
	if p.Mode == ModeG {
		rates, ext = probeRatesG, probeRatesGExt
	}
	body := dot11.AppendIE(nil, dot11.IESSID, nil) // wildcard scan
	body = dot11.AppendIE(body, dot11.IESupportedRates, rates)
	if ext != nil {
		body = dot11.AppendIE(body, dot11.IEExtRates, ext)
	}
	body = dot11.AppendIE(body, dot11.IEDSParam, []byte{0})
	// WPS vendor element (OUI 00:50:f2, type 4) carrying UUID-E.
	wps := make([]byte, 0, 20)
	wps = append(wps, 0x00, 0x50, 0xf2, 0x04)
	for i := 0; i < 8; i++ {
		wps = append(wps, byte(uuidHi>>(56-8*i)))
	}
	for i := 0; i < 8; i++ {
		wps = append(wps, byte(uuidLo>>(56-8*i)))
	}
	return dot11.AppendIE(body, dot11.IEVendor, wps)
}

// Probe-body rate elements in wire encoding (Mb/s × 2; 0x80 marks a
// basic rate).
var (
	probeRatesB    = []byte{0x82, 0x84, 0x8b, 0x96}
	probeRatesG    = []byte{0x82, 0x84, 0x8b, 0x96, 0x0c, 0x12, 0x18, 0x24}
	probeRatesGExt = []byte{0x30, 0x48, 0x60, 0x6c}
)

// SkewPeriod applies the unit's clock skew to a nominal period.
func (s Spec) SkewPeriod(us int64) int64 {
	return us + int64(float64(us)*s.ClockSkewPPM/1e6)
}

// DrawBackoffSlots draws a backoff slot count for the given contention
// window according to the quirk family. The second return value is a
// sub-slot time offset in µs (used by BackoffExtraSlot's pre-slot).
func (s Spec) DrawBackoffSlots(r *rand.Rand, cw int) (slots int, offsetUs int64) {
	switch s.Backoff {
	case BackoffExtraSlot:
		// One extra position squeezed before the standard grid.
		k := r.IntN(cw + 2)
		if k == 0 {
			return 0, -s.ExtraSlotUs
		}
		return k - 1, 0
	case BackoffFirstSlotBias:
		if r.Float64() < s.FirstSlotProb {
			return 0, 0
		}
		return r.IntN(cw + 1), 0
	case BackoffSkewedLow:
		// min of two uniforms has a linear density favouring low slots.
		a, b := r.IntN(cw+1), r.IntN(cw+1)
		if b < a {
			a = b
		}
		return a, 0
	case BackoffTruncated:
		lim := cw * 3 / 4
		if lim < 1 {
			lim = 1
		}
		return r.IntN(lim + 1), 0
	default:
		return r.IntN(cw + 1), 0
	}
}

// Quantize rounds a time to the unit's timer granularity.
func (s Spec) Quantize(us int64) int64 {
	g := s.GranularityUs
	if g <= 1 {
		return us
	}
	return (us + g/2) / g * g
}
