// Package faultinject provides deterministic, seeded fault wrappers
// for chaos-testing the streaming stack. Every fault fires on a fixed
// schedule expressed in operation counts — "error after 500 records",
// "fail the 3rd write", "panic on shard 2's 7th batch" — so a chaos
// run that fails can be replayed exactly by re-running with the same
// seed and schedule. Nothing in this package is randomized internally;
// Plan derives randomized schedules from a seed up front, and the
// wrappers then execute them mechanically.
//
// Three fault surfaces cover the pipeline:
//
//   - Source wraps a capture.RecordSource and errors, stalls, corrupts
//     or drops (as decode-skips) records on schedule — the raw material
//     for exercising MultiStream supervision.
//   - FS wraps a checkpoint.FS and fails writes (ENOSPC), tears them
//     (partial write), or crashes between rename and commit — the
//     checkpoint-recovery torture kit.
//   - ShardFaults builds an engine batch hook that panics or stalls a
//     chosen shard — the engine-supervision counterpart.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"dot11fp/internal/capture"
	"dot11fp/internal/checkpoint"
)

// Injected fault sentinels. Each wraps the closest real-world errno or
// error where one exists so production error handling (errors.Is on
// ENOSPC, say) sees what it would see in the field.
var (
	// ErrSource is the default error a Source returns when its
	// ErrAfter schedule fires.
	ErrSource = errors.New("faultinject: injected source failure")
	// ErrNoSpace is the injected write failure; errors.Is matches
	// syscall.ENOSPC.
	ErrNoSpace = fmt.Errorf("faultinject: injected write failure: %w", syscall.ENOSPC)
	// ErrPartialWrite is the error completing an injected torn write.
	ErrPartialWrite = fmt.Errorf("faultinject: injected partial write: %w", io.ErrShortWrite)
	// ErrCrash marks an injected crash-before-rename: the operation is
	// abandoned as a killed process would abandon it.
	ErrCrash = errors.New("faultinject: injected crash")
	// PanicValue is what an injected shard panic panics with.
	PanicValue = "faultinject: injected shard panic"
)

// SourceFaults schedules the faults of one Source. Counts are 1-based
// over the records read from the wrapped source; zero fields disable
// that fault.
type SourceFaults struct {
	// ErrAfter fails the source after it has delivered this many
	// records: delivery N succeeds, the next call returns Err (and
	// keeps returning it — the source is dead until reopened).
	ErrAfter uint64
	// Err is the error ErrAfter returns; nil selects ErrSource.
	Err error
	// EOFAfter ends the source cleanly (io.EOF) after this many
	// delivered records, simulating a premature writer hangup.
	EOFAfter uint64
	// StallAt blocks the delivery of the Nth record until Release or
	// Close, simulating a wedged FIFO writer. It fires once.
	StallAt uint64
	// DecodeErrEvery consumes every k-th read record as a decode
	// failure: the record is dropped and the Skipped counter advances,
	// exactly as StreamReader treats an undecodable frame.
	DecodeErrEvery uint64
	// CorruptEvery scrambles the payload fields (Size, RateMbps) of
	// every k-th delivered record with seeded noise. Timestamps and
	// addresses are left alone so stream ordering survives.
	CorruptEvery uint64
	// Seed seeds the corruption noise.
	Seed int64
}

// Source wraps a capture.RecordSource with a deterministic fault
// schedule. It implements capture.RecordSource, the Skipped counter
// contract of capture.StreamReader, and io.Closer (Close releases a
// stall and closes the wrapped source if it is closable).
type Source struct {
	src    capture.RecordSource
	faults SourceFaults

	read      uint64 // records pulled from src (schedules DecodeErrEvery)
	delivered atomic.Uint64
	skipped   atomic.Uint64
	failed    error

	release sync.Once
	stallCh chan struct{}
	rng     *rand.Rand
}

// NewSource wraps src with the given fault schedule.
func NewSource(src capture.RecordSource, faults SourceFaults) *Source {
	if faults.Err == nil {
		faults.Err = ErrSource
	}
	return &Source{
		src:     src,
		faults:  faults,
		stallCh: make(chan struct{}),
		rng:     rand.New(rand.NewSource(faults.Seed)),
	}
}

// Next returns the next record, applying the fault schedule.
func (s *Source) Next() (capture.Record, error) {
	if s.failed != nil {
		return capture.Record{}, s.failed
	}
	if s.faults.StallAt > 0 && s.delivered.Load()+1 == s.faults.StallAt {
		<-s.stallCh // until Release or Close
		s.faults.StallAt = 0
	}
	for {
		if s.faults.ErrAfter > 0 && s.delivered.Load() >= s.faults.ErrAfter {
			s.failed = s.faults.Err
			return capture.Record{}, s.failed
		}
		if s.faults.EOFAfter > 0 && s.delivered.Load() >= s.faults.EOFAfter {
			s.failed = io.EOF
			return capture.Record{}, io.EOF
		}
		rec, err := s.src.Next()
		if err != nil {
			s.failed = err
			return capture.Record{}, err
		}
		s.read++
		if k := s.faults.DecodeErrEvery; k > 0 && s.read%k == 0 {
			s.skipped.Add(1)
			continue
		}
		n := s.delivered.Add(1)
		if k := s.faults.CorruptEvery; k > 0 && n%k == 0 {
			rec.Size = int(s.rng.Int31n(1 << 16))
			rec.RateMbps = float64(s.rng.Int31n(1000))
		}
		return rec, nil
	}
}

// Skipped reports records consumed as injected decode failures, the
// same contract as capture.StreamReader.Skipped.
func (s *Source) Skipped() uint64 { return s.skipped.Load() }

// Delivered reports records successfully returned to the caller.
func (s *Source) Delivered() uint64 { return s.delivered.Load() }

// Release unblocks a stalled Next, which then proceeds normally.
// Idempotent.
func (s *Source) Release() {
	s.release.Do(func() { close(s.stallCh) })
}

// Close releases any stall and closes the wrapped source when it is
// closable, so Next unblocks and returns its error promptly.
func (s *Source) Close() error {
	s.Release()
	if c, ok := s.src.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// FSFaults schedules the faults of one FS. Counts are 1-based over
// that operation kind across all files; zero fields disable the fault.
type FSFaults struct {
	// CreateErrAt fails the Nth CreateTemp with ErrNoSpace.
	CreateErrAt uint64
	// WriteErrAt fails the Nth Write call with ErrNoSpace, writing
	// nothing.
	WriteErrAt uint64
	// PartialWriteAt tears the Nth Write call: half the buffer is
	// written, then ErrPartialWrite.
	PartialWriteAt uint64
	// SyncErrAt fails the Nth file Sync with ErrNoSpace (how full
	// filesystems actually surface at fsync time).
	SyncErrAt uint64
	// RenameErrAt simulates a crash at the Nth Rename: the rename does
	// not happen and ErrCrash is returned, leaving whatever the
	// sequence had committed so far — exactly the on-disk state a kill
	// between renames leaves behind.
	RenameErrAt uint64
}

// FS wraps a checkpoint.FS with a deterministic fault schedule.
type FS struct {
	inner  checkpoint.FS
	faults FSFaults

	creates  atomic.Uint64
	writes   atomic.Uint64
	syncs    atomic.Uint64
	renames  atomic.Uint64
	injected atomic.Uint64
}

// NewFS wraps inner (nil selects checkpoint.OS) with the schedule.
func NewFS(inner checkpoint.FS, faults FSFaults) *FS {
	if inner == nil {
		inner = checkpoint.OS
	}
	return &FS{inner: inner, faults: faults}
}

// Injected reports how many faults have fired so far.
func (f *FS) Injected() uint64 { return f.injected.Load() }

func (f *FS) CreateTemp(dir, pattern string) (checkpoint.File, error) {
	if n := f.creates.Add(1); f.faults.CreateErrAt > 0 && n == f.faults.CreateErrAt {
		f.injected.Add(1)
		return nil, ErrNoSpace
	}
	file, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

func (f *FS) Open(name string) (io.ReadCloser, error) { return f.inner.Open(name) }
func (f *FS) Stat(name string) (os.FileInfo, error)   { return f.inner.Stat(name) }
func (f *FS) Remove(name string) error                { return f.inner.Remove(name) }
func (f *FS) SyncDir(dir string) error                { return f.inner.SyncDir(dir) }

func (f *FS) Rename(oldpath, newpath string) error {
	if n := f.renames.Add(1); f.faults.RenameErrAt > 0 && n == f.faults.RenameErrAt {
		f.injected.Add(1)
		return ErrCrash
	}
	return f.inner.Rename(oldpath, newpath)
}

// faultFile interposes on the write path of one temp file.
type faultFile struct {
	checkpoint.File
	fs *FS
}

func (w *faultFile) Write(p []byte) (int, error) {
	fs := w.fs
	n := fs.writes.Add(1)
	if fs.faults.WriteErrAt > 0 && n == fs.faults.WriteErrAt {
		fs.injected.Add(1)
		return 0, ErrNoSpace
	}
	if fs.faults.PartialWriteAt > 0 && n == fs.faults.PartialWriteAt {
		fs.injected.Add(1)
		written, err := w.File.Write(p[:len(p)/2])
		if err != nil {
			return written, err
		}
		return written, ErrPartialWrite
	}
	return w.File.Write(p)
}

func (w *faultFile) Sync() error {
	fs := w.fs
	if n := fs.syncs.Add(1); fs.faults.SyncErrAt > 0 && n == fs.faults.SyncErrAt {
		fs.injected.Add(1)
		return ErrNoSpace
	}
	return w.File.Sync()
}

// ShardFaults schedules the faults of one engine shard, applied
// through the batch hook. Counts are 1-based over the shard's
// processed batches (window-close controls included).
type ShardFaults struct {
	// Shard is the target shard index; other shards pass through.
	Shard int
	// PanicAt panics on the shard's Nth batch.
	PanicAt uint64
	// PanicEvery panics on every k-th batch (composable with PanicAt).
	PanicEvery uint64
	// SlowEvery sleeps SlowFor before every k-th batch, simulating a
	// shard wedged on a slow dependency (for watchdog tests).
	SlowEvery uint64
	// SlowFor is the injected delay; zero selects 1 ms.
	SlowFor time.Duration
}

// Hook builds the engine batch hook implementing the schedule. The
// returned function is safe for concurrent use by multiple shards.
func (f ShardFaults) Hook() func(shard, batchLen int) {
	if f.SlowFor <= 0 {
		f.SlowFor = time.Millisecond
	}
	var batches atomic.Uint64
	return func(shard, batchLen int) {
		if shard != f.Shard {
			return
		}
		n := batches.Add(1)
		if f.SlowEvery > 0 && n%f.SlowEvery == 0 {
			time.Sleep(f.SlowFor)
		}
		if f.PanicAt > 0 && n == f.PanicAt {
			panic(PanicValue)
		}
		if f.PanicEvery > 0 && n%f.PanicEvery == 0 {
			panic(PanicValue)
		}
	}
}

// Plan derives reproducible randomized fault schedules from one seed,
// so a chaos test can vary its schedule per run while staying
// replayable from the logged seed.
type Plan struct {
	rng *rand.Rand
}

// NewPlan returns a Plan seeded with seed.
func NewPlan(seed int64) *Plan {
	return &Plan{rng: rand.New(rand.NewSource(seed))}
}

// N returns a uniform count in [lo, hi], for filling schedule fields.
func (p *Plan) N(lo, hi uint64) uint64 {
	if hi <= lo {
		return lo
	}
	return lo + uint64(p.rng.Int63n(int64(hi-lo+1)))
}
