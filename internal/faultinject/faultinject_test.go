package faultinject

import (
	"errors"
	"io"
	"testing"
	"time"

	"dot11fp/internal/capture"
)

// seqSource yields records with consecutive timestamps forever.
type seqSource struct{ t int64 }

func (s *seqSource) Next() (capture.Record, error) {
	s.t++
	return capture.Record{T: s.t, Size: 100, RateMbps: 11}, nil
}

func TestSourceErrAfter(t *testing.T) {
	src := NewSource(&seqSource{}, SourceFaults{ErrAfter: 3})
	for i := 0; i < 3; i++ {
		if _, err := src.Next(); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
	}
	for i := 0; i < 2; i++ { // sticky: dead until reopened
		if _, err := src.Next(); !errors.Is(err, ErrSource) {
			t.Fatalf("call %d after schedule = %v, want ErrSource", i, err)
		}
	}
	if src.Delivered() != 3 {
		t.Fatalf("Delivered = %d, want 3", src.Delivered())
	}
}

func TestSourceEOFAfter(t *testing.T) {
	src := NewSource(&seqSource{}, SourceFaults{EOFAfter: 2})
	for i := 0; i < 2; i++ {
		if _, err := src.Next(); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
	}
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("after schedule = %v, want io.EOF", err)
	}
}

func TestSourceDecodeErrEvery(t *testing.T) {
	src := NewSource(&seqSource{}, SourceFaults{DecodeErrEvery: 3})
	var ts []int64
	for i := 0; i < 5; i++ {
		rec, err := src.Next()
		if err != nil {
			t.Fatal(err)
		}
		ts = append(ts, rec.T)
	}
	// Reads 3 and 6 are consumed as decode failures.
	want := []int64{1, 2, 4, 5, 7}
	for i := range want {
		if ts[i] != want[i] {
			t.Fatalf("delivered timestamps %v, want %v", ts, want)
		}
	}
	if src.Skipped() != 2 {
		t.Fatalf("Skipped = %d, want 2", src.Skipped())
	}
}

func TestSourceCorruptEveryDeterministic(t *testing.T) {
	run := func() []int {
		src := NewSource(&seqSource{}, SourceFaults{CorruptEvery: 2, Seed: 7})
		var sizes []int
		for i := 0; i < 6; i++ {
			rec, err := src.Next()
			if err != nil {
				t.Fatal(err)
			}
			sizes = append(sizes, rec.Size)
		}
		return sizes
	}
	a, b := run(), run()
	corrupted := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different corruption: %v vs %v", a, b)
		}
		if a[i] != 100 {
			corrupted++
		}
	}
	if corrupted == 0 {
		t.Fatal("CorruptEvery never changed a record")
	}
}

func TestSourceStallAndRelease(t *testing.T) {
	src := NewSource(&seqSource{}, SourceFaults{StallAt: 2})
	if _, err := src.Next(); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		_, err := src.Next()
		got <- err
	}()
	select {
	case err := <-got:
		t.Fatalf("Next returned %v during scheduled stall", err)
	case <-time.After(20 * time.Millisecond):
	}
	src.Release()
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("Next after Release: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Next still blocked after Release")
	}
	src.Release() // idempotent
	if _, err := src.Next(); err != nil {
		t.Fatalf("stall must fire once: %v", err)
	}
}

func TestShardFaultsHook(t *testing.T) {
	hook := ShardFaults{Shard: 1, PanicAt: 2}.Hook()
	hook(0, 5) // other shard: never counted
	hook(1, 5)
	panicked := func() (p bool) {
		defer func() { p = recover() != nil }()
		hook(1, 5)
		return false
	}()
	if !panicked {
		t.Fatal("hook did not panic on the scheduled batch")
	}
	hook(1, 5) // past the schedule: passes through
}

func TestPlanDeterministic(t *testing.T) {
	a, b := NewPlan(42), NewPlan(42)
	for i := 0; i < 100; i++ {
		x, y := a.N(10, 500), b.N(10, 500)
		if x != y {
			t.Fatalf("same seed diverged at draw %d: %d vs %d", i, x, y)
		}
		if x < 10 || x > 500 {
			t.Fatalf("draw %d out of range: %d", i, x)
		}
	}
	if p := NewPlan(1); p.N(7, 7) != 7 {
		t.Fatal("degenerate range must return lo")
	}
}
