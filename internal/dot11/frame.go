// Package dot11 models IEEE 802.11 (1999/2007 era) MAC frames: frame
// control flags, addressing, wire-format encoding and decoding, FCS
// computation, and the frame-type classification used by the
// fingerprinting pipeline.
//
// The model covers exactly the frame families that matter to the paper's
// passive measurement method: data (including QoS and null-function
// power-save frames), management (beacons, probe requests/responses,
// association and authentication) and control (RTS, CTS, ACK, PS-Poll).
//
// Parsing is bit-identical by contract: the same frame bytes yield the
// same structures and fingerprints on every run.
//
//fp:deterministic
package dot11

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Header sizes in bytes.
const (
	hdrLenCTSACK = 10 // FC + Duration + RA
	hdrLenRTS    = 16 // FC + Duration + RA + TA
	hdrLenData   = 24 // three-address data/management header
	hdrLenQoS    = 26 // data header + QoS control
	fcsLen       = 4
	maxFrameBody = 2312 // 802.11-1999 maximum MSDU size
	// MaxFrameSize is the largest legal MPDU including header and FCS.
	MaxFrameSize = hdrLenQoS + maxFrameBody + fcsLen
)

// Frame is a decoded 802.11 MAC frame. Addr fields follow the standard
// layout: Addr1 is always the receiver address (RA); Addr2 is the
// transmitter address (TA) when present; Addr3 carries BSSID/DA/SA
// depending on the ToDS/FromDS combination.
type Frame struct {
	FC       FrameControl
	Duration uint16 // NAV duration in µs (or AID for PS-Poll)
	Addr1    Addr
	Addr2    Addr
	Addr3    Addr
	SeqCtl   uint16 // fragment number (4 bits) | sequence number (12 bits)
	QoSCtl   uint16 // present only for QoS data subtypes
	Body     []byte // frame body (possibly encrypted); nil for control frames
}

// Errors returned by Decode.
var (
	ErrShortFrame = errors.New("dot11: frame too short")
	ErrBadFCS     = errors.New("dot11: FCS check failed")
)

// SeqNum returns the 12-bit sequence number.
func (f Frame) SeqNum() uint16 { return f.SeqCtl >> 4 }

// SetSeqNum stores the 12-bit sequence number, preserving the fragment bits.
func (f *Frame) SetSeqNum(n uint16) { f.SeqCtl = f.SeqCtl&0xf | n<<4 }

// HasTA reports whether the frame carries a transmitter address.
// ACK and CTS control frames do not (IEEE 802.11 §7.2.1) — this is the
// reason the paper's monitoring method cannot attribute them to a sender.
func (f Frame) HasTA() bool {
	if f.FC.Type != TypeControl {
		return true
	}
	switch f.FC.Subtype {
	case SubtypeCTS, SubtypeACK, SubtypeCFEnd, SubtypeCFEndAck:
		return false
	default:
		return true
	}
}

// TA returns the transmitter address, or the zero address when the frame
// type carries none.
func (f Frame) TA() Addr {
	if !f.HasTA() {
		return ZeroAddr
	}
	return f.Addr2
}

// RA returns the receiver address.
func (f Frame) RA() Addr { return f.Addr1 }

// IsQoS reports whether the frame is a QoS data subtype with a QoS
// control field.
func (f Frame) IsQoS() bool {
	return f.FC.Type == TypeData && f.FC.Subtype >= SubtypeQoSData
}

// IsNullFunc reports whether the frame is a (QoS) null-function data
// frame. These frames carry no payload and typically signal power-save
// transitions; the paper uses them in §VI-D to isolate per-card
// power-management behaviour.
func (f Frame) IsNullFunc() bool {
	return f.FC.Type == TypeData &&
		(f.FC.Subtype == SubtypeNull || f.FC.Subtype == SubtypeQoSNull)
}

// IsBroadcastData reports whether this is a data frame addressed to a
// group address, the frame family Pang et al. use as an implicit
// identifier and the paper revisits in Figure 7.
func (f Frame) IsBroadcastData() bool {
	if f.FC.Type != TypeData {
		return false
	}
	// For ToDS frames the ultimate destination is Addr3.
	da := f.Addr1
	if f.FC.ToDS {
		da = f.Addr3
	}
	return da.IsGroup()
}

// headerLen returns the encoded MAC header length for the frame's type.
func (f Frame) headerLen() int {
	switch f.FC.Type {
	case TypeControl:
		switch f.FC.Subtype {
		case SubtypeCTS, SubtypeACK:
			return hdrLenCTSACK
		case SubtypeRTS, SubtypePSPoll, SubtypeBlockAckReq, SubtypeBlockAck:
			return hdrLenRTS
		default:
			return hdrLenRTS
		}
	case TypeData:
		if f.IsQoS() {
			return hdrLenQoS
		}
		return hdrLenData
	default:
		return hdrLenData
	}
}

// Size returns the full MPDU size in bytes (header + body + FCS) as it
// would appear on the air. This is the size_i the fingerprint pipeline
// measures.
func (f Frame) Size() int { return f.headerLen() + len(f.Body) + fcsLen }

// Encode serialises the frame to its wire format, appending the FCS.
// The returned slice is freshly allocated.
func (f Frame) Encode() []byte {
	n := f.headerLen()
	buf := make([]byte, n+len(f.Body)+fcsLen)
	binary.LittleEndian.PutUint16(buf[0:2], f.FC.Encode())
	binary.LittleEndian.PutUint16(buf[2:4], f.Duration)
	copy(buf[4:10], f.Addr1[:])
	if n >= hdrLenRTS {
		copy(buf[10:16], f.Addr2[:])
	}
	if n >= hdrLenData {
		copy(buf[16:22], f.Addr3[:])
		binary.LittleEndian.PutUint16(buf[22:24], f.SeqCtl)
	}
	if n >= hdrLenQoS {
		binary.LittleEndian.PutUint16(buf[24:26], f.QoSCtl)
	}
	copy(buf[n:], f.Body)
	fcs := crc32.ChecksumIEEE(buf[:n+len(f.Body)])
	binary.LittleEndian.PutUint32(buf[n+len(f.Body):], fcs)
	return buf
}

// Decode parses a wire-format frame. When checkFCS is true the trailing
// CRC-32 is verified and ErrBadFCS returned on mismatch. The Body slice
// aliases raw; callers that retain the frame beyond the life of raw must
// copy it.
func Decode(raw []byte, checkFCS bool) (Frame, error) {
	var f Frame
	if len(raw) < hdrLenCTSACK+fcsLen {
		return f, fmt.Errorf("%w: %d bytes", ErrShortFrame, len(raw))
	}
	f.FC = DecodeFrameControl(binary.LittleEndian.Uint16(raw[0:2]))
	f.Duration = binary.LittleEndian.Uint16(raw[2:4])
	copy(f.Addr1[:], raw[4:10])
	n := f.headerLen()
	if len(raw) < n+fcsLen {
		return f, fmt.Errorf("%w: %d bytes for %s/%d header", ErrShortFrame, len(raw), f.FC.Type, f.FC.Subtype)
	}
	if n >= hdrLenRTS {
		copy(f.Addr2[:], raw[10:16])
	}
	if n >= hdrLenData {
		copy(f.Addr3[:], raw[16:22])
		f.SeqCtl = binary.LittleEndian.Uint16(raw[22:24])
	}
	if n >= hdrLenQoS {
		f.QoSCtl = binary.LittleEndian.Uint16(raw[24:26])
	}
	// Control frames carry no frame body (Frame documents Body as nil
	// for them). Captures routinely pad short control frames — radiotap
	// vendor trailers, driver padding to a minimum record length — and
	// aliasing that tail as a Body would invent content downstream.
	if f.FC.Type != TypeControl {
		f.Body = raw[n : len(raw)-fcsLen]
	}
	if checkFCS {
		want := binary.LittleEndian.Uint32(raw[len(raw)-fcsLen:])
		got := crc32.ChecksumIEEE(raw[:len(raw)-fcsLen])
		if want != got {
			return f, ErrBadFCS
		}
	}
	return f, nil
}

// NewData builds an unencrypted data frame from a station to the DS
// (ToDS=1): Addr1=BSSID, Addr2=SA, Addr3=DA.
func NewData(sa, bssid, da Addr, body []byte) Frame {
	return Frame{
		FC:    FrameControl{Type: TypeData, Subtype: SubtypeData, ToDS: true},
		Addr1: bssid,
		Addr2: sa,
		Addr3: da,
		Body:  body,
	}
}

// NewQoSData builds a QoS data frame from a station to the DS.
func NewQoSData(sa, bssid, da Addr, tid uint8, body []byte) Frame {
	return Frame{
		FC:     FrameControl{Type: TypeData, Subtype: SubtypeQoSData, ToDS: true},
		Addr1:  bssid,
		Addr2:  sa,
		Addr3:  da,
		QoSCtl: uint16(tid & 0xf),
		Body:   body,
	}
}

// NewNull builds a null-function frame, typically used to signal a
// power-save transition. pwrMgmt sets the power-management bit.
func NewNull(sa, bssid Addr, pwrMgmt bool) Frame {
	return Frame{
		FC:    FrameControl{Type: TypeData, Subtype: SubtypeNull, ToDS: true, PwrMgmt: pwrMgmt},
		Addr1: bssid,
		Addr2: sa,
		Addr3: bssid,
	}
}

// NewRTS builds a request-to-send control frame.
func NewRTS(ta, ra Addr, duration uint16) Frame {
	return Frame{
		FC:       FrameControl{Type: TypeControl, Subtype: SubtypeRTS},
		Duration: duration,
		Addr1:    ra,
		Addr2:    ta,
	}
}

// NewCTS builds a clear-to-send control frame. CTS carries no TA.
func NewCTS(ra Addr, duration uint16) Frame {
	return Frame{
		FC:       FrameControl{Type: TypeControl, Subtype: SubtypeCTS},
		Duration: duration,
		Addr1:    ra,
	}
}

// NewACK builds an acknowledgement control frame. ACK carries no TA.
func NewACK(ra Addr) Frame {
	return Frame{
		FC:    FrameControl{Type: TypeControl, Subtype: SubtypeACK},
		Addr1: ra,
	}
}

// NewBeacon builds a beacon management frame with the given body
// (timestamp, interval, capabilities and IEs are opaque here).
func NewBeacon(bssid Addr, body []byte) Frame {
	return Frame{
		FC:    FrameControl{Type: TypeManagement, Subtype: SubtypeBeacon},
		Addr1: Broadcast,
		Addr2: bssid,
		Addr3: bssid,
		Body:  body,
	}
}

// NewProbeReq builds a broadcast probe request from sa with a
// well-formed body: an SSID element (empty ssid = wildcard probe) and a
// DefaultRates supported-rates element, so generated frames round-trip
// through ParseMgmtBody. Use BuildProbeBody directly for custom rates
// or extra elements.
func NewProbeReq(sa Addr, ssid []byte) Frame {
	return Frame{
		FC:    FrameControl{Type: TypeManagement, Subtype: SubtypeProbeReq},
		Addr1: Broadcast,
		Addr2: sa,
		Addr3: Broadcast,
		Body:  BuildProbeBody(ssid, nil, nil),
	}
}

// NewProbeResp builds a probe response from an AP to a station.
func NewProbeResp(bssid, da Addr, body []byte) Frame {
	return Frame{
		FC:    FrameControl{Type: TypeManagement, Subtype: SubtypeProbeResp},
		Addr1: da,
		Addr2: bssid,
		Addr3: bssid,
		Body:  body,
	}
}
