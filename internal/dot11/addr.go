package dot11

import (
	"encoding/hex"
	"errors"
	"fmt"
)

// Addr is a 48-bit IEEE 802 MAC address.
type Addr [6]byte

// Well-known addresses.
var (
	// Broadcast is the all-ones broadcast address ff:ff:ff:ff:ff:ff.
	Broadcast = Addr{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

	// ZeroAddr is the all-zero address. It is never a valid station
	// address and doubles as the "unknown sender" sentinel in capture
	// records (ACK and CTS frames carry no transmitter address).
	ZeroAddr = Addr{}
)

// ErrBadAddr reports that a textual MAC address could not be parsed.
var ErrBadAddr = errors.New("dot11: malformed MAC address")

// ParseAddr parses a textual MAC address in one of the three canonical
// groupings: colon-separated ("00:1f:3c:51:ae:90"), dash-separated
// ("00-1f-3c-51-ae-90"), or bare hexadecimal ("001f3c51ae90"). The
// separator must be uniform and sit between every octet pair — inputs
// whose separators are misplaced, mixed or trailing (e.g.
// "001f3c51ae90::::::" or "0-0:1f3c51ae90") are rejected, not silently
// normalised.
func ParseAddr(s string) (Addr, error) {
	var a Addr
	var norm string
	switch len(s) {
	case 12: // bare hex
		norm = s
	case 17: // separated: xx?xx?xx?xx?xx?xx with one uniform separator
		sep := s[2]
		if sep != ':' && sep != '-' {
			return a, fmt.Errorf("%w: %q", ErrBadAddr, s)
		}
		var b [12]byte
		n := 0
		for i := 0; i < len(s); i++ {
			if i%3 == 2 {
				if s[i] != sep {
					return a, fmt.Errorf("%w: %q", ErrBadAddr, s)
				}
				continue
			}
			b[n] = s[i]
			n++
		}
		norm = string(b[:])
	default:
		return a, fmt.Errorf("%w: %q", ErrBadAddr, s)
	}
	raw, err := hex.DecodeString(norm)
	if err != nil {
		return a, fmt.Errorf("%w: %q: %v", ErrBadAddr, s, err)
	}
	copy(a[:], raw)
	return a, nil
}

// MustParseAddr is like ParseAddr but panics on malformed input.
// It is intended for tests and static tables.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// String renders the address in the canonical lower-case colon form.
func (a Addr) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", a[0], a[1], a[2], a[3], a[4], a[5])
}

// IsBroadcast reports whether the address is the all-ones broadcast address.
func (a Addr) IsBroadcast() bool { return a == Broadcast }

// IsGroup reports whether the address is a group (multicast or broadcast)
// address, i.e. the I/G bit of the first octet is set.
func (a Addr) IsGroup() bool { return a[0]&0x01 != 0 }

// IsZero reports whether the address is the all-zero sentinel.
func (a Addr) IsZero() bool { return a == ZeroAddr }

// OUI returns the 24-bit organisationally unique identifier prefix.
func (a Addr) OUI() [3]byte { return [3]byte{a[0], a[1], a[2]} }

// LocalAddr builds a locally-administered unicast address from a 40-bit
// value. The U/L bit is set and the I/G bit cleared, so two distinct
// values can never collide with a real vendor address or a group address.
// It is used by the simulator to mint station addresses deterministically.
func LocalAddr(v uint64) Addr {
	var a Addr
	a[0] = 0x02 // locally administered, unicast
	a[1] = byte(v >> 32)
	a[2] = byte(v >> 24)
	a[3] = byte(v >> 16)
	a[4] = byte(v >> 8)
	a[5] = byte(v)
	return a
}
