package dot11

// Class is the coarse frame classification the fingerprinting method
// histograms over: one histogram per Class per device (paper §IV-A,
// "one histogram per frame type (e.g. Data frames, Probe Requests, ...)").
type Class uint8

// Classes, ordered roughly by how often they appear in a typical trace.
// Enumerations start at one so that the zero value is an explicit
// "unknown" and never silently classifies.
const (
	ClassUnknown Class = iota
	ClassData          // plain data frames
	ClassQoSData       // QoS data frames
	ClassNull          // (QoS) null-function frames (power save)
	ClassBeacon
	ClassProbeReq
	ClassProbeResp
	ClassMgmtOther // assoc/auth/deauth/action/...
	ClassRTS
	ClassCTS
	ClassACK
	ClassPSPoll
	ClassCtlOther
	numClasses
)

// NumClasses is the number of distinct classes, for sizing dense tables.
const NumClasses = int(numClasses)

var classNames = [...]string{
	ClassUnknown:   "unknown",
	ClassData:      "data",
	ClassQoSData:   "qos-data",
	ClassNull:      "null",
	ClassBeacon:    "beacon",
	ClassProbeReq:  "probe-req",
	ClassProbeResp: "probe-resp",
	ClassMgmtOther: "mgmt-other",
	ClassRTS:       "rts",
	ClassCTS:       "cts",
	ClassACK:       "ack",
	ClassPSPoll:    "ps-poll",
	ClassCtlOther:  "ctl-other",
}

// String implements fmt.Stringer.
func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return "class(?)"
}

// Classify maps a frame's type/subtype pair onto its fingerprinting class.
func Classify(fc FrameControl) Class {
	switch fc.Type {
	case TypeData:
		switch fc.Subtype {
		case SubtypeNull, SubtypeQoSNull:
			return ClassNull
		case SubtypeQoSData:
			return ClassQoSData
		default:
			return ClassData
		}
	case TypeManagement:
		switch fc.Subtype {
		case SubtypeBeacon:
			return ClassBeacon
		case SubtypeProbeReq:
			return ClassProbeReq
		case SubtypeProbeResp:
			return ClassProbeResp
		default:
			return ClassMgmtOther
		}
	case TypeControl:
		switch fc.Subtype {
		case SubtypeRTS:
			return ClassRTS
		case SubtypeCTS:
			return ClassCTS
		case SubtypeACK:
			return ClassACK
		case SubtypePSPoll:
			return ClassPSPoll
		default:
			return ClassCtlOther
		}
	default:
		return ClassUnknown
	}
}
