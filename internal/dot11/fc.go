package dot11

import "fmt"

// Type is the two-bit 802.11 frame type from the Frame Control field.
type Type uint8

// Frame types (IEEE Std 802.11-1999 §7.1.3.1.2).
const (
	TypeManagement Type = 0
	TypeControl    Type = 1
	TypeData       Type = 2
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case TypeManagement:
		return "mgmt"
	case TypeControl:
		return "ctrl"
	case TypeData:
		return "data"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Subtype is the four-bit 802.11 frame subtype from the Frame Control field.
// Its interpretation depends on the frame Type.
type Subtype uint8

// Management subtypes.
const (
	SubtypeAssocReq    Subtype = 0
	SubtypeAssocResp   Subtype = 1
	SubtypeReassocReq  Subtype = 2
	SubtypeReassocResp Subtype = 3
	SubtypeProbeReq    Subtype = 4
	SubtypeProbeResp   Subtype = 5
	SubtypeBeacon      Subtype = 8
	SubtypeATIM        Subtype = 9
	SubtypeDisassoc    Subtype = 10
	SubtypeAuth        Subtype = 11
	SubtypeDeauth      Subtype = 12
	SubtypeAction      Subtype = 13
)

// Control subtypes.
const (
	SubtypeBlockAckReq Subtype = 8
	SubtypeBlockAck    Subtype = 9
	SubtypePSPoll      Subtype = 10
	SubtypeRTS         Subtype = 11
	SubtypeCTS         Subtype = 12
	SubtypeACK         Subtype = 13
	SubtypeCFEnd       Subtype = 14
	SubtypeCFEndAck    Subtype = 15
)

// Data subtypes.
const (
	SubtypeData          Subtype = 0
	SubtypeDataCFAck     Subtype = 1
	SubtypeDataCFPoll    Subtype = 2
	SubtypeDataCFAckPoll Subtype = 3
	SubtypeNull          Subtype = 4
	SubtypeCFAck         Subtype = 5
	SubtypeCFPoll        Subtype = 6
	SubtypeCFAckPoll     Subtype = 7
	SubtypeQoSData       Subtype = 8
	SubtypeQoSNull       Subtype = 12
)

// FrameControl models the 16-bit Frame Control field.
type FrameControl struct {
	Protocol  uint8 // always 0 for 802.11-1999
	Type      Type
	Subtype   Subtype
	ToDS      bool
	FromDS    bool
	MoreFrag  bool
	Retry     bool
	PwrMgmt   bool
	MoreData  bool
	Protected bool // WEP/WPA/WPA2 encrypted payload
	Order     bool
}

// Encode packs the frame control field into its little-endian wire form.
func (fc FrameControl) Encode() uint16 {
	var v uint16
	v |= uint16(fc.Protocol & 0x3)
	v |= uint16(fc.Type&0x3) << 2
	v |= uint16(fc.Subtype&0xf) << 4
	if fc.ToDS {
		v |= 1 << 8
	}
	if fc.FromDS {
		v |= 1 << 9
	}
	if fc.MoreFrag {
		v |= 1 << 10
	}
	if fc.Retry {
		v |= 1 << 11
	}
	if fc.PwrMgmt {
		v |= 1 << 12
	}
	if fc.MoreData {
		v |= 1 << 13
	}
	if fc.Protected {
		v |= 1 << 14
	}
	if fc.Order {
		v |= 1 << 15
	}
	return v
}

// DecodeFrameControl unpacks a wire-format frame control field.
func DecodeFrameControl(v uint16) FrameControl {
	return FrameControl{
		Protocol:  uint8(v & 0x3),
		Type:      Type((v >> 2) & 0x3),
		Subtype:   Subtype((v >> 4) & 0xf),
		ToDS:      v&(1<<8) != 0,
		FromDS:    v&(1<<9) != 0,
		MoreFrag:  v&(1<<10) != 0,
		Retry:     v&(1<<11) != 0,
		PwrMgmt:   v&(1<<12) != 0,
		MoreData:  v&(1<<13) != 0,
		Protected: v&(1<<14) != 0,
		Order:     v&(1<<15) != 0,
	}
}
