package dot11

import (
	"bytes"
	"testing"
)

func TestParseElemsProbeBody(t *testing.T) {
	t.Parallel()
	extra := AppendIE(nil, IEHTCapabilities, make([]byte, 26))
	extra = AppendIE(extra, IEVendor, []byte{0x00, 0x50, 0xf2, 0x04, 0xde, 0xad})
	body := BuildProbeBody([]byte("corpnet"), nil, extra)

	e := ParseElems(body)
	if e.Truncated {
		t.Fatal("well-formed body reported truncated")
	}
	wantOrder := []uint8{IESSID, IESupportedRates, IEHTCapabilities, IEVendor}
	if e.NumOrder != len(wantOrder) || e.NumIEs != len(wantOrder) {
		t.Fatalf("NumOrder = %d, NumIEs = %d, want %d", e.NumOrder, e.NumIEs, len(wantOrder))
	}
	for i, id := range wantOrder {
		if e.Order[i] != id {
			t.Errorf("Order[%d] = %d, want %d", i, e.Order[i], id)
		}
		if !e.Has(id) {
			t.Errorf("Has(%d) = false", id)
		}
	}
	if e.Has(IETIM) {
		t.Error("Has(TIM) = true for a body without it")
	}
	if !e.HasSSID || string(e.SSID) != "corpnet" {
		t.Errorf("SSID = %q (has %v), want corpnet", e.SSID, e.HasSSID)
	}
	if e.NumRates != len(DefaultRates) || !bytes.Equal(e.Rates[:e.NumRates], DefaultRates) {
		t.Errorf("Rates = %v, want %v", e.Rates[:e.NumRates], DefaultRates)
	}
	if e.HasCap {
		t.Error("probe request body has no capability field, HasCap = true")
	}
}

func TestParseMgmtBodyFixedFields(t *testing.T) {
	t.Parallel()
	ies := AppendIE(nil, IESSID, []byte("net"))
	ies = AppendIE(ies, IESupportedRates, DefaultRates)

	// Beacon: timestamp(8) + interval(2) + capability(2), then IEs.
	beacon := make([]byte, 12)
	beacon[10], beacon[11] = 0x31, 0x04 // capability 0x0431
	beacon = append(beacon, ies...)
	e := ParseMgmtBody(SubtypeBeacon, beacon)
	if !e.HasCap || e.Cap != 0x0431 {
		t.Errorf("beacon Cap = %#04x (has %v), want 0x0431", e.Cap, e.HasCap)
	}
	if !e.HasSSID || string(e.SSID) != "net" {
		t.Errorf("beacon SSID = %q, want net", e.SSID)
	}

	// Association request: capability(2) + listen interval(2).
	assoc := append([]byte{0x11, 0x00, 0x0a, 0x00}, ies...)
	e = ParseMgmtBody(SubtypeAssocReq, assoc)
	if !e.HasCap || e.Cap != 0x0011 {
		t.Errorf("assoc Cap = %#04x (has %v), want 0x0011", e.Cap, e.HasCap)
	}

	// Probe request: no fixed fields at all.
	e = ParseMgmtBody(SubtypeProbeReq, ies)
	if e.HasCap {
		t.Error("probe-req HasCap = true")
	}
	if e.NumIEs != 2 {
		t.Errorf("probe-req NumIEs = %d, want 2", e.NumIEs)
	}

	// Body shorter than the fixed fields: empty and truncated, no panic.
	e = ParseMgmtBody(SubtypeBeacon, make([]byte, 7))
	if !e.Truncated || e.NumIEs != 0 || e.HasCap {
		t.Errorf("short beacon body: %+v, want empty truncated", e)
	}
}

func TestParseElemsTruncated(t *testing.T) {
	t.Parallel()
	body := BuildProbeBody([]byte("office"), nil, nil)
	full := ParseElems(body)

	// Cut inside the rates element: the SSID survives, the partial
	// element is dropped, Truncated is set.
	cut := ParseElems(body[:len(body)-3])
	if !cut.Truncated {
		t.Fatal("mid-element cut not reported truncated")
	}
	if !cut.HasSSID || string(cut.SSID) != "office" {
		t.Errorf("truncated parse lost the SSID: %q", cut.SSID)
	}
	if cut.NumIEs != full.NumIEs-1 {
		t.Errorf("NumIEs = %d, want %d", cut.NumIEs, full.NumIEs-1)
	}
	// A dangling single byte (id without length) is also truncation.
	if e := ParseElems([]byte{IESSID}); !e.Truncated || e.NumIEs != 0 {
		t.Errorf("dangling id byte: %+v", e)
	}
	// Empty body: cleanly empty, not truncated.
	if e := ParseElems(nil); e.Truncated || e.NumIEs != 0 {
		t.Errorf("nil body: %+v", e)
	}
}

func TestContentKeyIgnoresSSID(t *testing.T) {
	t.Parallel()
	a := ParseElems(BuildProbeBody([]byte("home"), nil, nil))
	b := ParseElems(BuildProbeBody([]byte("work"), nil, nil))
	if a.ContentKey() != b.ContentKey() {
		t.Error("ContentKey differs across SSIDs: one device probing two networks must collapse to one key")
	}
	if a.SSIDFP() == b.SSIDFP() {
		t.Error("SSIDFP identical for different SSIDs")
	}
	c := ParseElems(BuildProbeBody([]byte("home"), []byte{0x82, 0x84}, nil))
	if a.ContentKey() == c.ContentKey() {
		t.Error("ContentKey identical for different rate sets")
	}
	d := ParseElems(BuildProbeBody([]byte("home"), nil, AppendIE(nil, IEHTCapabilities, nil)))
	if a.ContentKey() == d.ContentKey() {
		t.Error("ContentKey identical for different IE orders")
	}
	if w := ParseElems(BuildProbeBody(nil, nil, nil)); w.SSIDFP() != 0 {
		t.Errorf("wildcard SSIDFP = %d, want 0", w.SSIDFP())
	}
}

func TestNewProbeReqRoundTrip(t *testing.T) {
	t.Parallel()
	f := NewProbeReq(LocalAddr(3), []byte("corpnet"))
	got, err := Decode(f.Encode(), true)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	e := ParseMgmtBody(got.FC.Subtype, got.Body)
	if e.Truncated {
		t.Fatal("generated probe body reported truncated")
	}
	if !e.HasSSID || string(e.SSID) != "corpnet" {
		t.Errorf("SSID = %q, want corpnet", e.SSID)
	}
	if !e.Has(IESupportedRates) || !bytes.Equal(e.Rates[:e.NumRates], DefaultRates) {
		t.Errorf("rates = %v, want %v", e.Rates[:e.NumRates], DefaultRates)
	}
}

// FuzzElems throws hostile bodies at the parser: it must never panic,
// never read outside the body, and parse deterministically.
func FuzzElems(f *testing.F) {
	f.Add([]byte{})
	f.Add(BuildProbeBody([]byte("seed"), nil, nil))
	f.Add([]byte{0x00})
	f.Add([]byte{0x00, 0xff, 0x01})
	f.Add([]byte{221, 255})
	f.Add(bytes.Repeat([]byte{0x01, 0x01, 0x82}, 64))
	f.Fuzz(func(t *testing.T, body []byte) {
		for _, st := range []Subtype{SubtypeProbeReq, SubtypeBeacon, SubtypeAssocReq, SubtypeAuth, SubtypeDeauth} {
			e := ParseMgmtBody(st, body)
			if e.NumOrder < 0 || e.NumOrder > MaxElemOrder {
				t.Fatalf("NumOrder = %d out of range", e.NumOrder)
			}
			if e.NumRates < 0 || e.NumRates > MaxElemRates {
				t.Fatalf("NumRates = %d out of range", e.NumRates)
			}
			if e.NumIEs < e.NumOrder {
				t.Fatalf("NumIEs = %d < NumOrder = %d", e.NumIEs, e.NumOrder)
			}
			if e.HasSSID && len(e.SSID) > MaxSSIDLen {
				t.Fatalf("SSID longer than MaxSSIDLen: %d", len(e.SSID))
			}
			e2 := ParseMgmtBody(st, body)
			if e.OrderFP() != e2.OrderFP() || e.RatesFP() != e2.RatesFP() ||
				e.SSIDFP() != e2.SSIDFP() || e.ContentKey() != e2.ContentKey() {
				t.Fatal("non-deterministic parse")
			}
		}
	})
}
