package dot11

import "testing"

// TestClassifyExhaustive sweeps every type/subtype pair. The invariant:
// every valid frame type classifies somewhere concrete — unknown
// management subtypes land in ClassMgmtOther and unknown control
// subtypes in ClassCtlOther, never ClassUnknown. Only the reserved
// type 3 is ClassUnknown.
func TestClassifyExhaustive(t *testing.T) {
	t.Parallel()
	mgmt := map[Subtype]Class{
		SubtypeBeacon:    ClassBeacon,
		SubtypeProbeReq:  ClassProbeReq,
		SubtypeProbeResp: ClassProbeResp,
	}
	ctl := map[Subtype]Class{
		SubtypeRTS:    ClassRTS,
		SubtypeCTS:    ClassCTS,
		SubtypeACK:    ClassACK,
		SubtypePSPoll: ClassPSPoll,
	}
	data := map[Subtype]Class{
		SubtypeNull:    ClassNull,
		SubtypeQoSNull: ClassNull,
		SubtypeQoSData: ClassQoSData,
	}
	for ty := Type(0); ty < 4; ty++ {
		for st := Subtype(0); st < 16; st++ {
			var want Class
			switch ty {
			case TypeManagement:
				want = ClassMgmtOther
				if c, ok := mgmt[st]; ok {
					want = c
				}
			case TypeControl:
				want = ClassCtlOther
				if c, ok := ctl[st]; ok {
					want = c
				}
			case TypeData:
				want = ClassData
				if c, ok := data[st]; ok {
					want = c
				}
			default:
				want = ClassUnknown
			}
			got := Classify(FrameControl{Type: ty, Subtype: st})
			if got != want {
				t.Errorf("Classify(type %d, subtype %d) = %s, want %s", ty, st, got, want)
			}
			if ty != 3 && got == ClassUnknown {
				t.Errorf("valid type %d subtype %d classified ClassUnknown", ty, st)
			}
		}
	}
}

// Regression: captures pad short control frames (radiotap vendor
// trailers, minimum record lengths); Decode must not alias that tail as
// a frame body — Frame documents Body as nil for control frames.
func TestDecodeControlPaddedBody(t *testing.T) {
	t.Parallel()
	frames := map[string]Frame{
		"cts": NewCTS(LocalAddr(1), 280),
		"ack": NewACK(LocalAddr(1)),
		"rts": NewRTS(LocalAddr(1), LocalAddr(2), 312),
	}
	for name, f := range frames {
		f := f
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			raw := f.Encode()
			padded := append(append([]byte(nil), raw...), 0xde, 0xad, 0xbe, 0xef, 0x00, 0x00)
			got, err := Decode(padded, false)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if got.Body != nil {
				t.Fatalf("control frame Body = %x, want nil", got.Body)
			}
			// The unpadded frame decodes to a nil body too.
			if got, err := Decode(raw, true); err != nil || got.Body != nil {
				t.Fatalf("unpadded: Body = %x, err = %v", got.Body, err)
			}
		})
	}
	// Management frames keep the trailing bytes: there the tail is body.
	b := NewBeacon(LocalAddr(9), make([]byte, 16))
	got, err := Decode(b.Encode(), true)
	if err != nil || len(got.Body) != 16 {
		t.Fatalf("beacon Body = %d bytes, err = %v, want 16", len(got.Body), err)
	}
}
