package dot11

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestParseAddr(t *testing.T) {
	t.Parallel()
	tests := []struct {
		name    string
		in      string
		want    Addr
		wantErr bool
	}{
		{name: "colons", in: "00:1f:3c:51:ae:90", want: Addr{0x00, 0x1f, 0x3c, 0x51, 0xae, 0x90}},
		{name: "dashes", in: "00-1F-3C-51-AE-90", want: Addr{0x00, 0x1f, 0x3c, 0x51, 0xae, 0x90}},
		{name: "bare hex", in: "001f3c51ae90", want: Addr{0x00, 0x1f, 0x3c, 0x51, 0xae, 0x90}},
		{name: "bare hex upper", in: "001F3C51AE90", want: Addr{0x00, 0x1f, 0x3c, 0x51, 0xae, 0x90}},
		{name: "broadcast", in: "ff:ff:ff:ff:ff:ff", want: Broadcast},
		{name: "short", in: "00:1f:3c", wantErr: true},
		{name: "junk", in: "zz:zz:zz:zz:zz:zz", wantErr: true},
		{name: "empty", in: "", wantErr: true},
		// Misplaced, trailing or mixed separators must be rejected, not
		// stripped: each of these used to parse because separators were
		// removed before the length check.
		{name: "trailing separators", in: "001f3c51ae90::::::", wantErr: true},
		{name: "misplaced separators", in: "0-0:1f3c51ae90", wantErr: true},
		{name: "mixed separators", in: "00:1f-3c:51-ae:90", wantErr: true},
		{name: "leading separator", in: ":001f3c51ae90::::", wantErr: true},
		{name: "double separator", in: "00::1f:3c:51:ae90", wantErr: true},
		{name: "dot separator", in: "00.1f.3c.51.ae.90", wantErr: true},
		{name: "separators only", in: "::::::::::::", wantErr: true},
		{name: "bare hex too long", in: "001f3c51ae9000", wantErr: true},
		{name: "bare hex bad digit", in: "001f3c51ae9g", wantErr: true},
		{name: "separated bad digit", in: "00:1f:3c:51:ae:9g", wantErr: true},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			got, err := ParseAddr(tt.in)
			if tt.wantErr {
				if err == nil {
					t.Fatalf("ParseAddr(%q) = %v, want error", tt.in, got)
				}
				if !errors.Is(err, ErrBadAddr) {
					t.Fatalf("ParseAddr(%q) error = %v, want ErrBadAddr", tt.in, err)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseAddr(%q) unexpected error: %v", tt.in, err)
			}
			if got != tt.want {
				t.Fatalf("ParseAddr(%q) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestAddrStringRoundTrip(t *testing.T) {
	t.Parallel()
	f := func(a Addr) bool {
		got, err := ParseAddr(a.String())
		return err == nil && got == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddrPredicates(t *testing.T) {
	t.Parallel()
	if !Broadcast.IsBroadcast() || !Broadcast.IsGroup() {
		t.Error("broadcast predicates failed")
	}
	if !ZeroAddr.IsZero() {
		t.Error("ZeroAddr.IsZero() = false")
	}
	multicast := Addr{0x01, 0x00, 0x5e, 0x00, 0x00, 0x16} // IGMP
	if !multicast.IsGroup() || multicast.IsBroadcast() {
		t.Error("multicast predicates failed")
	}
	unicast := LocalAddr(42)
	if unicast.IsGroup() || unicast.IsZero() {
		t.Error("unicast predicates failed")
	}
}

func TestLocalAddrDistinct(t *testing.T) {
	t.Parallel()
	seen := make(map[Addr]uint64, 1000)
	for v := uint64(0); v < 1000; v++ {
		a := LocalAddr(v)
		if prev, dup := seen[a]; dup {
			t.Fatalf("LocalAddr collision: %d and %d -> %v", prev, v, a)
		}
		if a[0] != 0x02 {
			t.Fatalf("LocalAddr(%d) first octet = %#x, want 0x02", v, a[0])
		}
		seen[a] = v
	}
}

func TestFrameControlRoundTrip(t *testing.T) {
	t.Parallel()
	f := func(v uint16) bool {
		fc := DecodeFrameControl(v)
		return fc.Encode() == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestFrameControlFlags(t *testing.T) {
	t.Parallel()
	fc := FrameControl{Type: TypeData, Subtype: SubtypeQoSData, ToDS: true, Retry: true, Protected: true}
	got := DecodeFrameControl(fc.Encode())
	if got != fc {
		t.Fatalf("round trip = %+v, want %+v", got, fc)
	}
}

func TestEncodeDecodeDataFrame(t *testing.T) {
	t.Parallel()
	sa := MustParseAddr("02:00:00:00:00:01")
	bssid := MustParseAddr("02:00:00:00:00:ff")
	da := MustParseAddr("02:00:00:00:00:02")
	body := []byte("hello 802.11 world")
	f := NewData(sa, bssid, da, body)
	f.SetSeqNum(1234)

	raw := f.Encode()
	if len(raw) != f.Size() {
		t.Fatalf("Encode length = %d, Size() = %d", len(raw), f.Size())
	}
	got, err := Decode(raw, true)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.FC != f.FC || got.Addr1 != f.Addr1 || got.Addr2 != f.Addr2 || got.Addr3 != f.Addr3 {
		t.Errorf("header mismatch: got %+v want %+v", got, f)
	}
	if got.SeqNum() != 1234 {
		t.Errorf("SeqNum = %d, want 1234", got.SeqNum())
	}
	if !bytes.Equal(got.Body, body) {
		t.Errorf("body mismatch: %q", got.Body)
	}
}

func TestEncodeDecodeAllConstructors(t *testing.T) {
	t.Parallel()
	sa := LocalAddr(1)
	ap := LocalAddr(1000)
	frames := map[string]Frame{
		"data":      NewData(sa, ap, Broadcast, make([]byte, 100)),
		"qos-data":  NewQoSData(sa, ap, Broadcast, 5, make([]byte, 80)),
		"null":      NewNull(sa, ap, true),
		"rts":       NewRTS(sa, ap, 312),
		"cts":       NewCTS(sa, 280),
		"ack":       NewACK(sa),
		"beacon":    NewBeacon(ap, make([]byte, 64)),
		"probe-req": NewProbeReq(sa, []byte("corpnet")),
		"probe-rsp": NewProbeResp(ap, sa, make([]byte, 90)),
	}
	for name, f := range frames {
		f := f
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			raw := f.Encode()
			got, err := Decode(raw, true)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if got.FC != f.FC {
				t.Errorf("FC = %+v, want %+v", got.FC, f.FC)
			}
			if got.Addr1 != f.Addr1 {
				t.Errorf("Addr1 = %v, want %v", got.Addr1, f.Addr1)
			}
			if got.Size() != f.Size() {
				t.Errorf("Size = %d, want %d", got.Size(), f.Size())
			}
		})
	}
}

func TestDecodeBadFCS(t *testing.T) {
	t.Parallel()
	f := NewData(LocalAddr(1), LocalAddr(2), Broadcast, []byte("payload"))
	raw := f.Encode()
	raw[len(raw)-1] ^= 0xff
	if _, err := Decode(raw, true); !errors.Is(err, ErrBadFCS) {
		t.Fatalf("Decode with corrupted FCS: err = %v, want ErrBadFCS", err)
	}
	// Without the check the frame still parses.
	if _, err := Decode(raw, false); err != nil {
		t.Fatalf("Decode without FCS check: %v", err)
	}
}

func TestDecodeShort(t *testing.T) {
	t.Parallel()
	for n := 0; n < hdrLenCTSACK+fcsLen; n++ {
		if _, err := Decode(make([]byte, n), false); !errors.Is(err, ErrShortFrame) {
			t.Fatalf("Decode(%d bytes): err = %v, want ErrShortFrame", n, err)
		}
	}
}

func TestDecodeTruncatedHeader(t *testing.T) {
	t.Parallel()
	// A data frame needs 24+4 bytes; hand it only 20.
	f := NewData(LocalAddr(1), LocalAddr(2), Broadcast, nil)
	raw := f.Encode()[:20]
	if _, err := Decode(raw, false); !errors.Is(err, ErrShortFrame) {
		t.Fatalf("err = %v, want ErrShortFrame", err)
	}
}

func TestHasTA(t *testing.T) {
	t.Parallel()
	sa := LocalAddr(7)
	tests := []struct {
		name string
		f    Frame
		want bool
	}{
		{"ack", NewACK(sa), false},
		{"cts", NewCTS(sa, 0), false},
		{"rts", NewRTS(sa, LocalAddr(8), 0), true},
		{"data", NewData(sa, LocalAddr(8), Broadcast, nil), true},
		{"beacon", NewBeacon(sa, nil), true},
	}
	for _, tt := range tests {
		if got := tt.f.HasTA(); got != tt.want {
			t.Errorf("%s: HasTA = %v, want %v", tt.name, got, tt.want)
		}
	}
	if got := NewACK(sa).TA(); !got.IsZero() {
		t.Errorf("ACK TA = %v, want zero", got)
	}
	if got := NewRTS(sa, LocalAddr(8), 0).TA(); got != sa {
		t.Errorf("RTS TA = %v, want %v", got, sa)
	}
}

func TestFrameSizes(t *testing.T) {
	t.Parallel()
	if got := NewACK(LocalAddr(1)).Size(); got != 14 {
		t.Errorf("ACK size = %d, want 14", got)
	}
	if got := NewCTS(LocalAddr(1), 0).Size(); got != 14 {
		t.Errorf("CTS size = %d, want 14", got)
	}
	if got := NewRTS(LocalAddr(1), LocalAddr(2), 0).Size(); got != 20 {
		t.Errorf("RTS size = %d, want 20", got)
	}
	if got := NewNull(LocalAddr(1), LocalAddr(2), false).Size(); got != 28 {
		t.Errorf("null size = %d, want 28", got)
	}
	if got := NewData(LocalAddr(1), LocalAddr(2), Broadcast, make([]byte, 1000)).Size(); got != 1028 {
		t.Errorf("data(1000) size = %d, want 1028", got)
	}
	if got := NewQoSData(LocalAddr(1), LocalAddr(2), Broadcast, 0, make([]byte, 1000)).Size(); got != 1030 {
		t.Errorf("qos-data(1000) size = %d, want 1030", got)
	}
}

func TestClassify(t *testing.T) {
	t.Parallel()
	tests := []struct {
		fc   FrameControl
		want Class
	}{
		{FrameControl{Type: TypeData, Subtype: SubtypeData}, ClassData},
		{FrameControl{Type: TypeData, Subtype: SubtypeDataCFAck}, ClassData},
		{FrameControl{Type: TypeData, Subtype: SubtypeQoSData}, ClassQoSData},
		{FrameControl{Type: TypeData, Subtype: SubtypeNull}, ClassNull},
		{FrameControl{Type: TypeData, Subtype: SubtypeQoSNull}, ClassNull},
		{FrameControl{Type: TypeManagement, Subtype: SubtypeBeacon}, ClassBeacon},
		{FrameControl{Type: TypeManagement, Subtype: SubtypeProbeReq}, ClassProbeReq},
		{FrameControl{Type: TypeManagement, Subtype: SubtypeProbeResp}, ClassProbeResp},
		{FrameControl{Type: TypeManagement, Subtype: SubtypeAuth}, ClassMgmtOther},
		{FrameControl{Type: TypeControl, Subtype: SubtypeRTS}, ClassRTS},
		{FrameControl{Type: TypeControl, Subtype: SubtypeCTS}, ClassCTS},
		{FrameControl{Type: TypeControl, Subtype: SubtypeACK}, ClassACK},
		{FrameControl{Type: TypeControl, Subtype: SubtypePSPoll}, ClassPSPoll},
		{FrameControl{Type: TypeControl, Subtype: SubtypeBlockAck}, ClassCtlOther},
		{FrameControl{Type: 3}, ClassUnknown},
	}
	for _, tt := range tests {
		if got := Classify(tt.fc); got != tt.want {
			t.Errorf("Classify(%s/%d) = %s, want %s", tt.fc.Type, tt.fc.Subtype, got, tt.want)
		}
	}
}

func TestClassStrings(t *testing.T) {
	t.Parallel()
	seen := make(map[string]bool, NumClasses)
	for c := ClassUnknown; c < Class(NumClasses); c++ {
		s := c.String()
		if s == "" || s == "class(?)" {
			t.Errorf("Class(%d) has no name", c)
		}
		if seen[s] {
			t.Errorf("duplicate class name %q", s)
		}
		seen[s] = true
	}
}

func TestIsBroadcastData(t *testing.T) {
	t.Parallel()
	sa, ap := LocalAddr(1), LocalAddr(9)
	bc := NewData(sa, ap, Broadcast, nil) // ToDS: DA in Addr3
	if !bc.IsBroadcastData() {
		t.Error("ToDS broadcast data not detected")
	}
	uni := NewData(sa, ap, LocalAddr(3), nil)
	if uni.IsBroadcastData() {
		t.Error("unicast data misdetected as broadcast")
	}
	// FromDS frame: DA in Addr1.
	down := Frame{
		FC:    FrameControl{Type: TypeData, Subtype: SubtypeData, FromDS: true},
		Addr1: Broadcast, Addr2: ap, Addr3: sa,
	}
	if !down.IsBroadcastData() {
		t.Error("FromDS broadcast data not detected")
	}
	if NewBeacon(ap, nil).IsBroadcastData() {
		t.Error("beacon misdetected as broadcast data")
	}
}

func TestSeqNumRoundTrip(t *testing.T) {
	t.Parallel()
	f := func(n uint16, frag uint8) bool {
		var fr Frame
		fr.SeqCtl = uint16(frag & 0xf)
		fr.SetSeqNum(n & 0xfff)
		return fr.SeqNum() == n&0xfff && fr.SeqCtl&0xf == uint16(frag&0xf)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	t.Parallel()
	// Property: any data frame with a random body round-trips.
	f := func(seed uint16, bodyLen uint16, body []byte) bool {
		n := int(bodyLen) % 1500
		if len(body) > n {
			body = body[:n]
		}
		fr := NewQoSData(LocalAddr(uint64(seed)), LocalAddr(9999), Broadcast, uint8(seed%8), body)
		fr.SetSeqNum(seed & 0xfff)
		got, err := Decode(fr.Encode(), true)
		if err != nil {
			return false
		}
		return got.FC == fr.FC && got.Addr2 == fr.Addr2 && bytes.Equal(got.Body, fr.Body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
