package dot11

import "encoding/binary"

// Information-element ids used by the probe-content fingerprint. The
// parser records every id it sees; these constants only name the ones
// the package itself interprets.
const (
	IESSID           uint8 = 0
	IESupportedRates uint8 = 1
	IEDSParam        uint8 = 3
	IETIM            uint8 = 5
	IEHTCapabilities uint8 = 45
	IEExtRates       uint8 = 50
	IEExtCaps        uint8 = 127
	IEVHTCaps        uint8 = 191
	IEVendor         uint8 = 221
)

// Bounds on what Elems records. The fixed arrays keep parsing
// allocation-free on the per-frame path; bodies with more elements than
// MaxElemOrder still parse (the bitmap keeps counting), only the order
// list is capped.
const (
	MaxElemOrder = 32 // IE ids kept in appearance order
	MaxElemRates = 16 // supported + extended rates kept
	MaxSSIDLen   = 32 // 802.11 maximum SSID length
)

// Elems is the decoded information-element list of a management-frame
// body: the id sequence in order of appearance, a presence bitmap over
// all 256 ids, the supported-rates set, the SSID, and the capability
// field when the subtype carries one. It is the raw material of the
// probe-content parameters that survive MAC randomization — the id
// order and rate set are driver/firmware artifacts that stay stable
// while the sender address rotates.
//
// The zero value means "no elements". SSID aliases the parsed body;
// callers that retain an Elems past the life of the input must copy it.
type Elems struct {
	Order    [MaxElemOrder]uint8 // IE ids in appearance order
	NumOrder int                 // entries used in Order (capped at MaxElemOrder)
	NumIEs   int                 // total well-formed elements seen (not capped)
	Bitmap   [4]uint64           // presence bitmap indexed by IE id
	Rates    [MaxElemRates]uint8 // supported + extended rates, wire encoding
	NumRates int                 // entries used in Rates
	SSID     []byte              // SSID element value; nil if absent (aliases input)
	HasSSID  bool                // SSID element present (may be zero length: wildcard)
	Cap      uint16              // capability information field
	HasCap   bool                // subtype carries a capability field and it was present
	vendor   uint64              // running hash over vendor-IE payloads; 0 = none seen

	// Truncated is set when the body ends mid-element (or before the
	// subtype's fixed fields) — the norm for snap-length captures.
	// Everything fully present before the cut is still recorded, so a
	// truncated body yields a stable prefix fingerprint rather than
	// nothing.
	Truncated bool
}

// Has reports whether an element with the given id was seen.
func (e *Elems) Has(id uint8) bool {
	return e.Bitmap[id>>6]&(1<<(id&63)) != 0
}

// ParseElems parses a bare IE list (id, length, value triples) as found
// after a management frame's fixed fields. It never fails: hostile or
// truncated input yields whatever well-formed prefix exists, with
// Truncated set if the body ended mid-element. The returned Elems
// aliases body (SSID).
//
//fp:hotpath test=TestClusterResolveZeroAllocs
func ParseElems(body []byte) Elems {
	var e Elems
	parseElemsInto(&e, body)
	return e
}

func parseElemsInto(e *Elems, body []byte) {
	for i := 0; i < len(body); {
		if len(body)-i < 2 {
			e.Truncated = true
			return
		}
		id := body[i]
		l := int(body[i+1])
		if len(body)-i-2 < l {
			e.Truncated = true
			return
		}
		val := body[i+2 : i+2+l]
		i += 2 + l

		e.NumIEs++
		if e.NumOrder < MaxElemOrder {
			e.Order[e.NumOrder] = id
			e.NumOrder++
		}
		e.Bitmap[id>>6] |= 1 << (id & 63)
		switch id {
		case IESSID:
			if !e.HasSSID && len(val) <= MaxSSIDLen {
				e.SSID = val
				e.HasSSID = true
			}
		case IESupportedRates, IEExtRates:
			for _, r := range val {
				if e.NumRates == MaxElemRates {
					break
				}
				e.Rates[e.NumRates] = r
				e.NumRates++
			}
		case IEVendor:
			// Vendor payloads carry the per-unit identifiers (WPS
			// UUID-E and friends) that survive MAC randomization; fold
			// them in order into one running hash.
			if e.vendor == 0 {
				e.vendor = fnvOffset
			}
			e.vendor = fnvBytes(e.vendor, val)
		}
	}
}

// mgmtFixedLen returns the length of the fixed (non-IE) fields that
// precede the element list in a management frame body of the given
// subtype, and the byte offset of the capability-information field
// within them (-1 when the subtype carries none).
func mgmtFixedLen(subtype Subtype) (fixed, capOff int) {
	switch subtype {
	case SubtypeProbeReq:
		return 0, -1
	case SubtypeBeacon, SubtypeProbeResp:
		return 12, 10 // timestamp(8) + interval(2) + capability(2)
	case SubtypeAssocReq:
		return 4, 0 // capability(2) + listen interval(2)
	case SubtypeReassocReq:
		return 10, 0 // capability(2) + listen interval(2) + current AP(6)
	case SubtypeAssocResp, SubtypeReassocResp:
		return 6, 0 // capability(2) + status(2) + AID(2)
	case SubtypeAuth:
		return 6, -1 // algorithm(2) + seq(2) + status(2)
	case SubtypeDeauth, SubtypeDisassoc:
		return 2, -1 // reason code
	default:
		return 0, -1
	}
}

// ParseMgmtBody parses a management frame body: it skips the subtype's
// fixed fields (extracting the capability information where the subtype
// carries it) and parses the trailing element list. Like ParseElems it
// never fails; a body shorter than its fixed fields returns an empty
// Elems with Truncated set.
func ParseMgmtBody(subtype Subtype, body []byte) Elems {
	var e Elems
	fixed, capOff := mgmtFixedLen(subtype)
	if len(body) < fixed {
		e.Truncated = true
		return e
	}
	if capOff >= 0 {
		e.Cap = binary.LittleEndian.Uint16(body[capOff : capOff+2])
		e.HasCap = true
	}
	parseElemsInto(&e, body[fixed:])
	return e
}

// FNV-1a, inlined so fingerprinting stays allocation-free.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime }

func fnvBytes(h uint64, p []byte) uint64 {
	for _, b := range p {
		h = fnvByte(h, b)
	}
	return h
}

// OrderFP hashes the IE id sequence in appearance order — the
// driver-characteristic "IE fingerprint" of the probe-content
// literature. Two bodies with the same elements in different order hash
// differently.
//
//fp:hotpath test=TestEnginePushZeroAllocs
func (e *Elems) OrderFP() uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < e.NumOrder; i++ {
		h = fnvByte(h, e.Order[i])
	}
	return h
}

// RatesFP hashes the supported-rates set (wire order, basic-rate flags
// included), folding in the capability field when present.
//
//fp:hotpath test=TestEnginePushZeroAllocs
func (e *Elems) RatesFP() uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < e.NumRates; i++ {
		h = fnvByte(h, e.Rates[i])
	}
	if e.HasCap {
		h = fnvByte(h, byte(e.Cap))
		h = fnvByte(h, byte(e.Cap>>8))
	}
	return h
}

// SSIDFP hashes the SSID value, or returns 0 for an absent or wildcard
// (zero-length) SSID — the two cases that carry no directed-probe
// information.
//
//fp:hotpath test=TestEnginePushZeroAllocs
func (e *Elems) SSIDFP() uint64 {
	if !e.HasSSID || len(e.SSID) == 0 {
		return 0
	}
	return fnvBytes(fnvOffset, e.SSID)
}

// VendorFP hashes the concatenated vendor-IE payloads in appearance
// order — the home of per-unit identifiers like the WPS UUID-E — or
// returns 0 when the body carries no vendor element.
func (e *Elems) VendorFP() uint64 { return e.vendor }

// ContentKey condenses the address-independent content fingerprint into
// one value: IE order, rate set, capability, and the vendor-specific
// payloads folded together. The SSID is deliberately excluded — a
// device probing for several networks must collapse to one key. This is
// the key the clustering stage merges randomized-MAC senders under.
//
//fp:hotpath test=TestClusterResolveZeroAllocs
func (e *Elems) ContentKey() uint64 {
	h := e.OrderFP()
	h = mix64(h ^ e.RatesFP())
	h = mix64(h ^ e.vendor)
	return mix64(h)
}

// mix64 is the splitmix64 finalizer: full avalanche, so consecutive
// content keys spread across the clusterer's canonical address space.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// AppendIE appends one information element (id, length, value) to dst
// and returns the extended slice. Values longer than 255 bytes are
// truncated to 255 (the wire format's limit).
func AppendIE(dst []byte, id uint8, val []byte) []byte {
	if len(val) > 255 {
		val = val[:255]
	}
	dst = append(dst, id, uint8(len(val)))
	return append(dst, val...)
}

// DefaultRates is the 802.11b/g supported-rates element value used by
// the builders: 1, 2, 5.5, 11 Mbps marked basic, then 6–54 Mbps.
var DefaultRates = []byte{0x82, 0x84, 0x8b, 0x96, 0x0c, 0x12, 0x18, 0x24}

// BuildProbeBody builds a well-formed probe-request body: an SSID
// element (empty ssid = wildcard), a supported-rates element (nil rates
// = DefaultRates), and any pre-encoded extra elements appended verbatim.
func BuildProbeBody(ssid []byte, rates []byte, extra []byte) []byte {
	if rates == nil {
		rates = DefaultRates
	}
	body := make([]byte, 0, 4+len(ssid)+len(rates)+len(extra))
	body = AppendIE(body, IESSID, ssid)
	body = AppendIE(body, IESupportedRates, rates)
	return append(body, extra...)
}
