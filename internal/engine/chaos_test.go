package engine_test

import (
	"fmt"
	"io"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"dot11fp/internal/capture"
	"dot11fp/internal/checkpoint"
	"dot11fp/internal/core"
	"dot11fp/internal/dot11"
	"dot11fp/internal/engine"
	"dot11fp/internal/faultinject"
)

// chaosSeed makes every chaos schedule in this file replayable: a
// failure reproduces by re-running with the logged seed.
const chaosSeed = 20260807

// cursorSource yields records from a shared position over a slice, so
// a supervised reopen that wraps the same cursor resumes exactly where
// the dead generation stopped — no record is lost or replayed across
// restarts.
type cursorSource struct {
	mu   sync.Mutex
	recs []capture.Record
	i    int
}

func (c *cursorSource) Next() (capture.Record, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.i >= len(c.recs) {
		return capture.Record{}, io.EOF
	}
	r := c.recs[c.i]
	c.i++
	return r, nil
}

// verdictString renders a verdict event exactly — hex floats, so two
// runs compare bit-identical, not merely close.
func verdictString(ev engine.Event) (dot11.Addr, string, bool) {
	switch ev := ev.(type) {
	case engine.CandidateMatched:
		return ev.Addr, fmt.Sprintf("w%d matched %v sim=%s obs=%d",
			ev.Window, ev.Best.Addr, strconv.FormatFloat(ev.Best.Sim, 'x', -1, 64), ev.Observations()), true
	case engine.UnknownDevice:
		s := fmt.Sprintf("w%d unknown obs=%d", ev.Window, ev.Observations())
		if ev.HasBest {
			s += fmt.Sprintf(" best=%v sim=%s", ev.Best.Addr, strconv.FormatFloat(ev.Best.Sim, 'x', -1, 64))
		}
		return ev.Addr, s, true
	}
	return dot11.Addr{}, "", false
}

// verdictSink collects per-sender verdict strings.
type verdictSink struct {
	mu  sync.Mutex
	per map[dot11.Addr][]string
}

func newVerdictSink() *verdictSink { return &verdictSink{per: map[dot11.Addr][]string{}} }

func (v *verdictSink) HandleEvent(ev engine.Event) {
	if addr, s, ok := verdictString(ev); ok {
		v.mu.Lock()
		v.per[addr] = append(v.per[addr], s)
		v.mu.Unlock()
	}
}

// chaosRecords builds each source's record stream: srcSenders[s] emit
// round-robin on source s, phase-shifted so no two sources ever share
// a timestamp (the by-time merge stays tie-free and deterministic).
func chaosRecords(srcSenders [][]dot11.Addr, total time.Duration) [][]capture.Record {
	const step = 400 // µs between records on one source
	out := make([][]capture.Record, len(srcSenders))
	for s, senders := range srcSenders {
		n := int(total.Microseconds()) / step
		recs := make([]capture.Record, n)
		for i := range recs {
			sender := senders[i%len(senders)]
			recs[i] = capture.Record{
				T: int64(i)*step + int64(s)*100 + 1, Sender: sender, Receiver: apX,
				Class: dot11.ClassData, Size: 200 + 20*int(sender[5]), RateMbps: 24, FCSOK: true,
			}
		}
		out[s] = recs
	}
	return out
}

// chaosDB trains one reference per sender on its deterministic size
// signature, so verdicts carry real similarity scores.
func chaosDB(t *testing.T, cfg core.Config, senders []dot11.Addr) *core.CompiledDB {
	t.Helper()
	tr := &capture.Trace{Base: time.Unix(1700000000, 0).UTC(), Channel: 6}
	for i := 0; i < 2000; i++ {
		sender := senders[i%len(senders)]
		tr.Records = append(tr.Records, capture.Record{
			T: int64(i) * 500, Sender: sender, Receiver: apX,
			Class: dot11.ClassData, Size: 200 + 20*int(sender[5]), RateMbps: 24, FCSOK: true,
		})
	}
	db := core.NewDatabase(cfg, core.MeasureCosine)
	if err := db.Train(tr); err != nil {
		t.Fatal(err)
	}
	return db.Compile()
}

// runChaosStream pumps a MultiStream into a sharded engine until EOF
// and closes both, returning collected verdicts.
func runChaosStream(t *testing.T, ms *capture.MultiStream, eng *engine.Sharded, sink *verdictSink) {
	t.Helper()
	for {
		rec, err := ms.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		eng.Push(&rec)
	}
	ms.Close()
	eng.Close()
}

// TestChaosSoakDeterminism is the fault-tolerance acceptance test: a
// run with a randomized (but seeded, replayable) fault schedule — a
// capture source that keeps dying and reopening, decode-error storms,
// corrupted payloads, a panicking shard, a watchdog sampling
// throughout — must terminate (no deadlock), survive every injected
// fault, and emit verdicts for senders on healthy sources that are
// BIT-IDENTICAL to a fault-free run. Faulty senders are confined to
// source 0 and shard 0; every other sender's event stream may not
// change by one bit.
func TestChaosSoakDeterminism(t *testing.T) {
	t.Parallel()
	total := 60 * time.Second // trace time, not wall time
	if testing.Short() {
		total = 12 * time.Second
	}
	plan := faultinject.NewPlan(chaosSeed)
	const shards = 4
	cfg := core.Config{Param: core.ParamSize, MinObservations: 1}

	// Partition senders by shard, using a probe engine's ShardOf: the
	// faulty source carries only shard-0 senders, so the injected shard
	// panics and source faults touch the same blast radius.
	probe, err := engine.NewSharded(cfg, nil, engine.ShardedOptions{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	var faulty, healthy []dot11.Addr
	for seed := uint64(1); len(faulty) < 3 || len(healthy) < 6; seed++ {
		a := dot11.LocalAddr(seed)
		if probe.ShardOf(a) == 0 {
			if len(faulty) < 3 {
				faulty = append(faulty, a)
			}
		} else if len(healthy) < 6 {
			healthy = append(healthy, a)
		}
	}
	probe.Close()
	cdb := chaosDB(t, cfg, append(append([]dot11.Addr{}, faulty...), healthy...))
	streams := chaosRecords([][]dot11.Addr{faulty, healthy}, total)

	run := func(inject bool) (*verdictSink, *engine.Sharded, *capture.MultiStream) {
		sink := newVerdictSink()
		opts := engine.ShardedOptions{
			Window: time.Second, Threshold: 0.2, Shards: shards, Sink: sink,
		}
		var sup capture.Supervisor
		var srcs []capture.RecordSource
		if inject {
			opts.Watchdog = 5 * time.Millisecond
			opts.Hooks = engine.Hooks{
				ShardBatch: faultinject.ShardFaults{
					Shard: 0, PanicAt: plan.N(2, 10), PanicEvery: plan.N(40, 90),
				}.Hook(),
			}
			cursor := &cursorSource{recs: streams[0]}
			nextGen := func() capture.RecordSource {
				return faultinject.NewSource(cursor, faultinject.SourceFaults{
					ErrAfter:       plan.N(500, 4000),
					DecodeErrEvery: plan.N(150, 400),
					CorruptEvery:   plan.N(100, 300),
					Seed:           chaosSeed,
				})
			}
			sup = capture.Supervisor{
				Reopen:      func(int) (capture.RecordSource, error) { return nextGen(), nil },
				MaxAttempts: -1, // the source must always come back: no record may be lost
				Backoff:     200 * time.Microsecond,
				MaxBackoff:  2 * time.Millisecond,
				Seed:        chaosSeed,
			}
			srcs = []capture.RecordSource{nextGen(), &cursorSource{recs: streams[1]}}
		} else {
			srcs = []capture.RecordSource{
				&cursorSource{recs: streams[0]},
				&cursorSource{recs: streams[1]},
			}
		}
		eng, err := engine.NewSharded(cfg, cdb, opts)
		if err != nil {
			t.Fatal(err)
		}
		ms := capture.NewMultiStreamOpts(capture.MultiOptions{Mode: capture.MergeByTime, Supervisor: sup}, srcs...)
		runChaosStream(t, ms, eng, sink)
		return sink, eng, ms
	}

	cleanSink, _, _ := run(false)
	chaosSink, chaosEng, chaosMS := run(true)

	// The faults must actually have fired — a chaos test whose schedule
	// never triggers proves nothing.
	h := chaosEng.Health()
	if h.ShardPanics == 0 {
		t.Fatalf("no shard panics fired (health %+v); the schedule is dead", h)
	}
	st := chaosMS.SourceStats()[0]
	if st.Reopens == 0 || st.DecodeErrors == 0 {
		t.Fatalf("source faults never fired: %+v", st)
	}
	if err := chaosMS.Err(); err != nil {
		t.Fatalf("the supervised merge surfaced a terminal error: %v", err)
	}

	// Healthy senders: bit-identical verdict streams.
	for _, a := range healthy {
		clean, chaos := cleanSink.per[a], chaosSink.per[a]
		if len(clean) == 0 {
			t.Fatalf("sender %v produced no verdicts in the fault-free run", a)
		}
		if len(chaos) != len(clean) {
			t.Fatalf("sender %v: %d verdicts under chaos, %d fault-free", a, len(chaos), len(clean))
		}
		for i := range clean {
			if chaos[i] != clean[i] {
				t.Fatalf("sender %v verdict %d diverged under chaos:\n  chaos: %s\n  clean: %s",
					a, i, chaos[i], clean[i])
			}
		}
	}
	// Faulty senders still produce verdicts — degraded, not silenced.
	var faultyVerdicts int
	for _, a := range faulty {
		faultyVerdicts += len(chaosSink.per[a])
	}
	if faultyVerdicts == 0 {
		t.Fatal("faulty-source senders vanished entirely; supervision should degrade them, not erase them")
	}
	var healthyVerdicts int
	for _, a := range healthy {
		healthyVerdicts += len(chaosSink.per[a])
	}
	var records int
	for _, s := range streams {
		records += len(s)
	}
	t.Logf("chaos soak: %d records over %v trace time, %d shard panics, %d reopens, %d decode errors; "+
		"%d healthy-sender verdicts bit-identical to fault-free, %d faulty-sender verdicts delivered",
		records, total, h.ShardPanics, st.Reopens, st.DecodeErrors, healthyVerdicts, faultyVerdicts)
}

// TestChaosSoakCheckpoints tortures the checkpoint path while a live
// trainer grows references: every save attempt runs against a fresh
// randomized filesystem fault schedule (failed creates, ENOSPC writes
// and fsyncs, torn writes, crashes between renames), and after EVERY
// attempt — succeeded or not — the checkpoint chain must load, and
// what loads must be a database the trainer actually held (current or
// previous good generation, never torn bytes).
func TestChaosSoakCheckpoints(t *testing.T) {
	t.Parallel()
	saves := 40
	if testing.Short() {
		saves = 12
	}
	plan := faultinject.NewPlan(chaosSeed + 1)
	path := filepath.Join(t.TempDir(), "refs.db")
	cfg := core.Config{Param: core.ParamSize, MinObservations: 1}
	trainer := engine.NewTrainer(cfg, core.MeasureCosine, engine.TrainerOptions{Horizon: 1, Update: true})
	eng, err := engine.New(cfg, nil, engine.Options{Window: 200 * time.Millisecond, Trainer: trainer})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	goodLens := map[int]bool{} // reference counts of successfully saved snapshots
	verify := func(r io.Reader) error {
		_, err := core.LoadBinary(r)
		return err
	}
	assertLoadable := func(attempt int) {
		t.Helper()
		var db *core.Database
		gen, err := checkpoint.Load(path, checkpoint.Options{}, func(r io.Reader) error {
			var lerr error
			db, lerr = core.LoadBinary(r)
			return lerr
		})
		if err != nil {
			t.Fatalf("attempt %d left no loadable generation: %v", attempt, err)
		}
		if !goodLens[db.Len()] {
			t.Fatalf("attempt %d: generation %d holds %d references, matching no snapshot ever saved (%v)",
				attempt, gen, db.Len(), goodLens)
		}
	}

	recIdx := 0
	firstSaved := false
	failed, injected := 0, uint64(0)
	for attempt := 1; attempt <= saves; attempt++ {
		// Grow the reference set between saves: each attempt introduces
		// new senders, so successive snapshots hold more references and
		// the loadability check can tell generations apart.
		pool := attempt * 4
		for i := 0; i < 2000; i++ {
			s := recIdx % pool
			rec := capture.Record{
				T: int64(recIdx) * 200, Sender: dot11.LocalAddr(uint64(s + 1)), Receiver: apX,
				Class: dot11.ClassData, Size: 200 + 10*s, RateMbps: 24, FCSOK: true,
			}
			eng.Push(&rec)
			recIdx++
		}
		db := trainer.Database()
		ffs := faultinject.NewFS(nil, faultinject.FSFaults{
			CreateErrAt:    plan.N(0, 3),
			WriteErrAt:     plan.N(0, 4),
			PartialWriteAt: plan.N(0, 4),
			SyncErrAt:      plan.N(0, 3),
			RenameErrAt:    plan.N(0, 5),
		})
		err := checkpoint.SaveRetry(path, checkpoint.Options{
			FS: ffs, Retries: 2, Backoff: time.Microsecond, Sleep: func(time.Duration) {},
		}, db.SaveBinary, verify)
		if err == nil {
			goodLens[db.Len()] = true
			firstSaved = true
		} else {
			failed++
		}
		injected += ffs.Injected()
		if firstSaved {
			assertLoadable(attempt)
		}
	}
	if !firstSaved {
		t.Fatal("no save attempt ever succeeded; the schedule is over-aggressive")
	}
	if len(goodLens) < 2 {
		t.Fatalf("only %d distinct snapshots saved across %d attempts", len(goodLens), saves)
	}
	t.Logf("checkpoint soak: %d save attempts, %d failed, %d filesystem faults injected; "+
		"%d distinct snapshots saved, chain loadable after every attempt",
		saves, failed, injected, len(goodLens))
}
