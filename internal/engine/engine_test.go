package engine_test

import (
	"testing"
	"time"

	"dot11fp/internal/capture"
	"dot11fp/internal/core"
	"dot11fp/internal/dot11"
	"dot11fp/internal/engine"
	"dot11fp/internal/scenario"
)

var (
	staA = dot11.LocalAddr(1)
	staB = dot11.LocalAddr(2)
	staC = dot11.LocalAddr(3)
	apX  = dot11.LocalAddr(1000)
)

// buildScenario synthesises a small office or conference trace.
func buildScenario(t testing.TB, conference bool) *capture.Trace {
	t.Helper()
	var p scenario.Params
	if conference {
		p = scenario.Conference("eng-conf", 42, 10*time.Minute, 12)
	} else {
		p = scenario.Office("eng-office", 41, 10*time.Minute, 10)
	}
	tr, _, err := scenario.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// edgeTrace exercises the window-boundary, min-observation and
// out-of-order/duplicate-timestamp corners in one hand-built capture.
func edgeTrace() *capture.Trace {
	tr := &capture.Trace{Name: "edges"}
	add := func(t int64, sender dot11.Addr, class dot11.Class, fcsOK bool) {
		tr.Records = append(tr.Records, capture.Record{
			T: t, Sender: sender, Receiver: apX, Class: class,
			Size: 300, RateMbps: 24, FCSOK: fcsOK,
		})
	}
	// Window 0: A dense, B sparse (below any reasonable minimum).
	for i := 0; i < 90; i++ {
		add(int64(i)*600_000, staA, dot11.ClassData, true)
	}
	add(10_000_000, staB, dot11.ClassData, true)
	add(10_000_000, staB, dot11.ClassData, true) // duplicate timestamp
	add(9_000_000, staB, dot11.ClassData, true)  // out of order within the window
	// Exactly on the 60 s boundary: must open window 1.
	add(60_000_000, staC, dot11.ClassQoSData, true)
	for i := 1; i < 80; i++ {
		add(60_000_000+int64(i)*700_000, staC, dot11.ClassQoSData, true)
	}
	// A corrupt frame and an unattributable ACK advance context only.
	add(100_000_000, staA, dot11.ClassData, false)
	add(100_000_500, dot11.ZeroAddr, dot11.ClassACK, true)
	// Out-of-order across the window boundary: jumps back to window 0's
	// bucket, which reopens a fresh window exactly like the batch path.
	add(30_000_000, staA, dot11.ClassData, true)
	for i := 0; i < 60; i++ {
		add(30_000_000+int64(i)*400_000, staA, dot11.ClassData, true)
	}
	return tr
}

// collected is the flattened event record used by the equivalence suite.
type collected struct {
	cands   []core.Candidate
	scores  [][]core.Score
	best    []core.Score
	dropped []engine.CandidateDropped
	closed  []engine.WindowClosed
}

// runEngine replays tr through a fresh engine one record at a time
// (each record copied to a local first, as a live driver would hand
// them over) and collects every event.
func runEngine(t *testing.T, tr *capture.Trace, db *core.CompiledDB, cfg core.Config, window time.Duration, workers int) *collected {
	t.Helper()
	got := &collected{}
	sink := engine.SinkFunc(func(ev engine.Event) {
		switch ev := ev.(type) {
		case engine.CandidateMatched:
			got.cands = append(got.cands, core.Candidate{Addr: [6]byte(ev.Addr), Window: ev.Window, Sig: ev.Sig})
			got.scores = append(got.scores, ev.Scores)
			got.best = append(got.best, ev.Best)
		case engine.UnknownDevice:
			got.cands = append(got.cands, core.Candidate{Addr: [6]byte(ev.Addr), Window: ev.Window, Sig: ev.Sig})
			got.scores = append(got.scores, ev.Scores)
			got.best = append(got.best, ev.Best)
		case engine.CandidateDropped:
			got.dropped = append(got.dropped, ev)
		case engine.WindowClosed:
			got.closed = append(got.closed, ev)
		}
	})
	eng, err := engine.New(cfg, db, engine.Options{Window: window, Workers: workers, Sink: sink})
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Records {
		rec := tr.Records[i]
		eng.Push(&rec)
	}
	eng.Close()
	return got
}

// sameSig asserts two signatures are observation-for-observation equal.
func sameSig(t *testing.T, label string, got, want *core.Signature) {
	t.Helper()
	if got.Observations() != want.Observations() {
		t.Fatalf("%s: %d observations, want %d", label, got.Observations(), want.Observations())
	}
	for _, class := range want.Classes() {
		wh, gh := want.Hist(class), got.Hist(class)
		if gh == nil {
			t.Fatalf("%s: class %v missing", label, class)
		}
		for b := 0; b < wh.Bins(); b++ {
			if wh.Count(b) != gh.Count(b) {
				t.Fatalf("%s class %v bin %d: %d, want %d", label, class, b, gh.Count(b), wh.Count(b))
			}
		}
	}
}

// TestEngineBitIdenticalToBatch is the redesign's acceptance test: the
// engine fed one record at a time produces exactly the candidates and
// scores of CandidatesIn + CompiledDB.MatchAll, on synthetic office and
// conference scenario traces and on the hand-built edge trace, across
// window sizes (including window-boundary records), minimum-observation
// settings, out-of-order and duplicate timestamps, and worker counts.
func TestEngineBitIdenticalToBatch(t *testing.T) {
	t.Parallel()
	traces := map[string]*capture.Trace{
		"office": buildScenario(t, false),
		"conf":   buildScenario(t, true),
		"edges":  edgeTrace(),
	}
	type tc struct {
		window  time.Duration
		minObs  int
		param   core.Param
		workers int
	}
	cases := []tc{
		{2 * time.Minute, 0, core.ParamInterArrival, 1},
		{2 * time.Minute, 0, core.ParamInterArrival, 0},
		{time.Minute, 10, core.ParamSize, 0},
		{90 * time.Second, 25, core.ParamTxTime, 3},
		{-1, 10, core.ParamMediumAccess, 0}, // whole stream as one window
	}
	for name, tr := range traces {
		train, valid := core.Split(tr, 3*time.Minute)
		if name == "edges" {
			train, valid = tr, tr // tiny trace: train and monitor on the same records
		}
		for _, c := range cases {
			cfg := core.Config{Param: c.param, MinObservations: c.minObs}
			db := core.NewDatabase(cfg, core.MeasureCosine)
			if err := db.Train(train); err != nil {
				t.Fatal(err)
			}
			cdb := db.Compile()
			window := c.window
			if window < 0 {
				window = 0 // batch semantics: non-positive = whole trace
			}
			wantCands := core.CandidatesIn(valid, window, db.Config())
			wantScores := cdb.MatchAll(wantCands)

			got := runEngine(t, valid, cdb, cfg, c.window, c.workers)

			label := name + "/" + c.param.ShortName()
			if len(got.cands) != len(wantCands) {
				t.Fatalf("%s: %d candidates, want %d", label, len(got.cands), len(wantCands))
			}
			for i := range wantCands {
				if got.cands[i].Addr != wantCands[i].Addr || got.cands[i].Window != wantCands[i].Window {
					t.Fatalf("%s cand %d: got (%x, w%d), want (%x, w%d)", label, i,
						got.cands[i].Addr, got.cands[i].Window, wantCands[i].Addr, wantCands[i].Window)
				}
				sameSig(t, label, got.cands[i].Sig, wantCands[i].Sig)
				if len(got.scores[i]) != len(wantScores[i]) {
					t.Fatalf("%s cand %d: %d scores, want %d", label, i, len(got.scores[i]), len(wantScores[i]))
				}
				for j := range wantScores[i] {
					if got.scores[i][j] != wantScores[i][j] { // exact float equality: bit-identical
						t.Fatalf("%s cand %d score %d: %+v, want %+v", label, i, j,
							got.scores[i][j], wantScores[i][j])
					}
				}
				best := core.Score{Sim: -1}
				for _, sc := range wantScores[i] {
					if sc.Sim > best.Sim {
						best = sc
					}
				}
				if got.best[i] != best {
					t.Fatalf("%s cand %d best: %+v, want %+v", label, i, got.best[i], best)
				}
			}
			// Window summaries must be self-consistent with the events.
			var matched, unknown, dropped, cands int
			for _, w := range got.closed {
				matched += w.Matched
				unknown += w.Unknown
				dropped += w.Dropped
				cands += w.Candidates
			}
			if cands != len(got.cands) || matched+unknown != cands || dropped != len(got.dropped) {
				t.Fatalf("%s: inconsistent summaries: %d cands (%d events), %d+%d verdicts, %d dropped (%d events)",
					label, cands, len(got.cands), matched, unknown, dropped, len(got.dropped))
			}
		}
	}
}

// TestEngineMinObservationDrops checks that sparse senders surface as
// CandidateDropped with the effective minimum attached.
func TestEngineMinObservationDrops(t *testing.T) {
	t.Parallel()
	tr := edgeTrace()
	cfg := core.Config{Param: core.ParamSize, MinObservations: 50}
	got := runEngine(t, tr, nil, cfg, time.Minute, 1)
	found := false
	for _, d := range got.dropped {
		if d.Addr == staB {
			found = true
			if d.Observations == 0 || d.Observations >= 50 || d.Minimum != 50 {
				t.Fatalf("drop event = %+v", d)
			}
		}
	}
	if !found {
		t.Fatal("sparse sender B never reported as dropped")
	}
}

// TestEngineSetDBHotSwap drives a stream with no references, installs a
// database mid-stream, and checks the verdicts flip from UnknownDevice
// to CandidateMatched without the stream restarting.
func TestEngineSetDBHotSwap(t *testing.T) {
	t.Parallel()
	tr := buildScenario(t, false)
	cfg := core.DefaultConfig(core.ParamInterArrival)
	db := core.NewDatabase(cfg, core.MeasureCosine)
	if err := db.Train(tr); err != nil {
		t.Fatal(err)
	}

	var unknownNoScores, matched int
	var order []string
	sink := engine.SinkFunc(func(ev engine.Event) {
		switch ev := ev.(type) {
		case engine.UnknownDevice:
			if ev.Scores == nil && !ev.HasBest {
				unknownNoScores++
			}
			order = append(order, "u")
		case engine.CandidateMatched:
			matched++
			order = append(order, "m")
			if len(ev.Scores) != db.Len() {
				t.Errorf("matched event carries %d scores, want %d", len(ev.Scores), db.Len())
			}
		}
	})
	eng, err := engine.New(cfg, nil, engine.Options{Window: 2 * time.Minute, Sink: sink})
	if err != nil {
		t.Fatal(err)
	}
	if eng.DB() != nil {
		t.Fatal("fresh engine has a database installed")
	}

	// Shape mismatch must be rejected and leave the engine unchanged.
	wrong := core.NewDatabase(core.Config{Param: core.ParamRate}, core.MeasureCosine)
	if err := eng.SetDB(wrong.Compile()); err == nil {
		t.Fatal("mismatched SetDB accepted")
	}

	half := len(tr.Records) / 2
	for i := range tr.Records {
		eng.Push(&tr.Records[i])
		if i == half {
			if err := eng.SetDB(db.Compile()); err != nil {
				t.Fatal(err)
			}
		}
	}
	eng.Close()

	if unknownNoScores == 0 {
		t.Fatal("no score-less UnknownDevice events before the database was installed")
	}
	if matched == 0 {
		t.Fatal("no CandidateMatched events after the database was installed")
	}
	for i := 1; i < len(order); i++ {
		if order[i-1] == "m" && order[i] == "u" {
			t.Fatal("verdicts regressed from matched to unknown after the hot swap")
		}
	}
}

// TestEngineThreshold checks the acceptance threshold splits verdicts
// and that UnknownDevice still carries the best score.
func TestEngineThreshold(t *testing.T) {
	t.Parallel()
	tr := buildScenario(t, false)
	cfg := core.DefaultConfig(core.ParamInterArrival)
	train, valid := core.Split(tr, 3*time.Minute)
	db := core.NewDatabase(cfg, core.MeasureCosine)
	if err := db.Train(train); err != nil {
		t.Fatal(err)
	}
	var matched, unknown int
	sink := engine.SinkFunc(func(ev engine.Event) {
		switch ev := ev.(type) {
		case engine.CandidateMatched:
			matched++
			if ev.Best.Sim < 0.99 {
				t.Errorf("matched below threshold: %+v", ev.Best)
			}
		case engine.UnknownDevice:
			unknown++
			if !ev.HasBest || ev.Best.Sim >= 0.99 {
				t.Errorf("unknown verdict inconsistent: %+v", ev)
			}
		}
	})
	eng, err := engine.New(cfg, db.Compile(), engine.Options{
		Window: 2 * time.Minute, Threshold: 0.99, Sink: sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.PushTrace(valid)
	eng.Close()
	if matched+unknown == 0 || unknown == 0 {
		t.Fatalf("threshold split degenerate: %d matched, %d unknown", matched, unknown)
	}
}

// TestEngineStats checks the counters an operator scrapes.
func TestEngineStats(t *testing.T) {
	t.Parallel()
	tr := edgeTrace()
	cfg := core.Config{Param: core.ParamSize, MinObservations: 10}
	db := core.NewDatabase(cfg, core.MeasureCosine)
	if err := db.Train(tr); err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(cfg, db.Compile(), engine.Options{Window: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if st := eng.Stats(); st.Frames != 0 || st.Elapsed != 0 {
		t.Fatalf("fresh engine stats = %+v", st)
	}
	for i := range tr.Records {
		eng.Push(&tr.Records[i])
	}
	mid := eng.Stats()
	if mid.Frames != uint64(len(tr.Records)) {
		t.Fatalf("frames = %d, want %d", mid.Frames, len(tr.Records))
	}
	if mid.LiveSenders == 0 {
		t.Fatal("no live senders with an open window")
	}
	eng.Close()
	st := eng.Stats()
	if st.LiveSenders != 0 {
		t.Fatalf("live senders after close = %d", st.LiveSenders)
	}
	if st.WindowsClosed == 0 || st.Candidates != st.Matched+st.Unknown {
		t.Fatalf("final stats inconsistent: %+v", st)
	}
	if st.Elapsed <= 0 || st.FramesPerSec <= 0 {
		t.Fatalf("throughput not tracked: %+v", st)
	}
	// Close is idempotent and a flushed engine stays flushed.
	eng.Close()
	if again := eng.Stats(); again.WindowsClosed != st.WindowsClosed {
		t.Fatalf("second Close changed windows: %d vs %d", again.WindowsClosed, st.WindowsClosed)
	}
}

// TestEngineChannelSink checks the channel delivery path end to end.
func TestEngineChannelSink(t *testing.T) {
	t.Parallel()
	tr := edgeTrace()
	cfg := core.Config{Param: core.ParamSize, MinObservations: 10}
	sink := engine.NewChannelSink(1024)
	eng, err := engine.New(cfg, nil, engine.Options{Window: time.Minute, Sink: sink})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan int)
	go func() {
		n := 0
		for range sink.C {
			n++
		}
		done <- n
	}()
	eng.PushTrace(tr)
	eng.Close()
	sink.Close()
	if n := <-done; n == 0 {
		t.Fatal("no events delivered through the channel")
	}
}

// TestEnginePushAfterClosePanics pins the sealed-stream contract.
func TestEnginePushAfterClosePanics(t *testing.T) {
	t.Parallel()
	eng, err := engine.New(core.Config{Param: core.ParamSize}, nil, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Push after Close did not panic")
		}
	}()
	rec := capture.Record{T: 1, Sender: staA, Class: dot11.ClassData, FCSOK: true}
	eng.Push(&rec)
}
