package engine_test

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dot11fp/internal/capture"
	"dot11fp/internal/core"
	"dot11fp/internal/dot11"
	"dot11fp/internal/engine"
	"dot11fp/internal/faultinject"
)

// pushStream feeds n data records from the given senders round-robin,
// 50 µs apart.
func pushStream(eng interface{ Push(*capture.Record) }, senders []dot11.Addr, n int) {
	for i := 0; i < n; i++ {
		rec := capture.Record{
			T: int64(i) * 50, Sender: senders[i%len(senders)], Receiver: apX,
			Class: dot11.ClassData, Size: 300, RateMbps: 24, FCSOK: true,
		}
		eng.Push(&rec)
	}
}

// shardSenders picks per-shard sender addresses via ShardOf, so a test
// can aim records (and faults) at specific shards deterministically.
func shardSenders(t *testing.T, eng *engine.Sharded, shards, perShard int) [][]dot11.Addr {
	t.Helper()
	out := make([][]dot11.Addr, shards)
	for seed := uint64(1); ; seed++ {
		a := dot11.LocalAddr(seed)
		sh := eng.ShardOf(a)
		if len(out[sh]) < perShard {
			out[sh] = append(out[sh], a)
		}
		done := true
		for _, s := range out {
			if len(s) < perShard {
				done = false
			}
		}
		if done {
			return out
		}
		if seed > 1_000_000 {
			t.Fatal("could not find senders for every shard")
		}
	}
}

// TestShardedShardPanicRecovery pins the supervision contract: a shard
// that panics mid-batch loses that batch but nothing else — Close
// completes (the merger still sees every (shard, window) segment), the
// other shards' verdicts arrive, and the panic is counted and reported
// on the health sink with a stack.
func TestShardedShardPanicRecovery(t *testing.T) {
	t.Parallel()
	var panics []engine.ComponentPanicked
	var hmu sync.Mutex
	health := engine.SinkFunc(func(ev engine.Event) {
		if p, ok := ev.(engine.ComponentPanicked); ok {
			hmu.Lock()
			panics = append(panics, p)
			hmu.Unlock()
		}
	})
	verdicts := map[dot11.Addr]int{}
	sink := engine.SinkFunc(func(ev engine.Event) {
		if u, ok := ev.(engine.UnknownDevice); ok {
			verdicts[u.Addr]++
		}
	})
	eng, err := engine.NewSharded(core.Config{Param: core.ParamSize, MinObservations: 1}, nil,
		engine.ShardedOptions{
			Window: time.Second, Shards: 2, Sink: sink, HealthSink: health,
			Hooks: engine.Hooks{ShardBatch: faultinject.ShardFaults{Shard: 0, PanicAt: 2}.Hook()},
		})
	if err != nil {
		t.Fatal(err)
	}
	senders := shardSenders(t, eng, 2, 2)
	pushStream(eng, append(senders[0], senders[1]...), 100_000)
	eng.Close()

	h := eng.Health()
	if h.ShardPanics == 0 || h.Healthy() {
		t.Fatalf("health = %+v, want the injected shard panic counted", h)
	}
	if !strings.Contains(h.LastPanic, faultinject.PanicValue) {
		t.Fatalf("LastPanic = %q, want the injected panic value", h.LastPanic)
	}
	hmu.Lock()
	defer hmu.Unlock()
	if len(panics) == 0 {
		t.Fatal("no ComponentPanicked event on the health sink")
	}
	p := panics[0]
	if p.Component != "shard" || p.Shard != 0 || p.Stack == "" {
		t.Fatalf("ComponentPanicked = %+v, want shard 0 with a stack", p)
	}
	for _, a := range senders[1] {
		if verdicts[a] == 0 {
			t.Fatalf("healthy shard's sender %v produced no verdicts after a peer shard panicked", a)
		}
	}
}

// TestShardedMergerPanicRecovery pins merger supervision: a sink that
// panics during event delivery costs that window's events, never the
// engine — Close and Flush still drain, later windows still emit.
func TestShardedMergerPanicRecovery(t *testing.T) {
	t.Parallel()
	var windows atomic.Int32
	sink := engine.SinkFunc(func(ev engine.Event) {
		if _, ok := ev.(engine.WindowClosed); ok {
			if windows.Add(1) == 1 {
				panic("sink exploded on the first window")
			}
		}
	})
	eng, err := engine.NewSharded(core.Config{Param: core.ParamSize, MinObservations: 1}, nil,
		engine.ShardedOptions{Window: time.Second, Shards: 2, Sink: sink})
	if err != nil {
		t.Fatal(err)
	}
	senders := []dot11.Addr{dot11.LocalAddr(1), dot11.LocalAddr(2)}
	pushStream(eng, senders, 200_000) // 10 s of trace: ~10 windows
	eng.Close()
	h := eng.Health()
	if h.MergerPanics != 1 {
		t.Fatalf("MergerPanics = %d, want 1", h.MergerPanics)
	}
	if windows.Load() < 2 {
		t.Fatalf("only %d windows emitted: the merger did not survive the sink panic", windows.Load())
	}
	if st := eng.Stats(); st.WindowsClosed < 2 {
		t.Fatalf("stats %+v, want the stream to continue past the panicked window", st)
	}
}

// TestEnginePanicRecovery is the serial-engine counterpart: a panic
// during window delivery (here from the sink) is recovered on the
// pushing goroutine, counted, and later windows deliver normally.
func TestEnginePanicRecovery(t *testing.T) {
	t.Parallel()
	var windows atomic.Int32
	sink := engine.SinkFunc(func(ev engine.Event) {
		if _, ok := ev.(engine.WindowClosed); ok {
			if windows.Add(1) == 1 {
				panic("sink exploded on the first window")
			}
		}
	})
	eng, err := engine.New(core.Config{Param: core.ParamSize, MinObservations: 1}, nil,
		engine.Options{Window: time.Second, Sink: sink})
	if err != nil {
		t.Fatal(err)
	}
	senders := []dot11.Addr{dot11.LocalAddr(1), dot11.LocalAddr(2)}
	pushStream(eng, senders, 100_000)
	eng.Close()
	h := eng.Health()
	if h.EnginePanics != 1 {
		t.Fatalf("EnginePanics = %d, want 1 (health: %+v)", h.EnginePanics, h)
	}
	if windows.Load() < 2 {
		t.Fatalf("only %d windows emitted after the panic", windows.Load())
	}
}

// TestShardedWatchdogStall pins the stall detector: a shard wedged
// mid-batch with work queued is reported ShardStalled, and ShardResumed
// once it moves again.
func TestShardedWatchdogStall(t *testing.T) {
	t.Parallel()
	gate := make(chan struct{})
	var gated atomic.Bool
	hsink := engine.NewChannelSink(64)
	events := hsink.C
	eng, err := engine.NewSharded(core.Config{Param: core.ParamSize, MinObservations: 1}, nil,
		engine.ShardedOptions{
			Window:     time.Hour, // no window churn: pure ingest
			Shards:     2,
			QueueLen:   16 * 256,
			Watchdog:   2 * time.Millisecond,
			HealthSink: hsink,
			Hooks: engine.Hooks{ShardBatch: func(shard, _ int) {
				if shard == 0 && gated.CompareAndSwap(false, true) {
					<-gate // wedge the first shard-0 batch
				}
			}},
		})
	if err != nil {
		t.Fatal(err)
	}
	senders := shardSenders(t, eng, 2, 1)
	// Enough shard-0 records to queue several batches behind the wedge.
	done := make(chan struct{})
	go func() {
		defer close(done)
		pushStream(eng, senders[0], 10_000)
	}()

	waitFor := func(want string) {
		t.Helper()
		deadline := time.After(5 * time.Second)
		for {
			select {
			case ev := <-events:
				switch ev := ev.(type) {
				case engine.ShardStalled:
					if want == "stalled" && ev.Shard == 0 && ev.Queued > 0 && ev.For > 0 {
						return
					}
					if want == "stalled" {
						t.Fatalf("ShardStalled = %+v, want shard 0 with queued work", ev)
					}
				case engine.ShardResumed:
					if want == "resumed" && ev.Shard == 0 {
						return
					}
				}
			case <-deadline:
				t.Fatalf("no %s event from the watchdog", want)
			}
		}
	}
	waitFor("stalled")
	if h := eng.Health(); len(h.StalledShards) != 1 || h.StalledShards[0] != 0 {
		t.Fatalf("Health.StalledShards = %v, want [0]", h.StalledShards)
	}
	close(gate)
	waitFor("resumed")
	<-done
	eng.Close()
	if h := eng.Health(); len(h.StalledShards) != 0 || h.Panics() != 0 {
		t.Fatalf("post-run health = %+v, want clean (a stall is not a panic)", h)
	}
	if len(eng.Health().QueueDepths) != 2 {
		t.Fatalf("QueueDepths = %v, want one entry per shard", eng.Health().QueueDepths)
	}
}
