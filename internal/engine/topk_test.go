package engine_test

import (
	"math"
	"sort"
	"testing"
	"time"

	"dot11fp/internal/core"
	"dot11fp/internal/engine"
)

// rankScores ranks a full similarity vector the way the exhaustive
// verdict does: Sim descending, earlier reference index first on ties.
func rankScores(scores []core.Score, k int) []core.Score {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if scores[idx[a]].Sim != scores[idx[b]].Sim {
			return scores[idx[a]].Sim > scores[idx[b]].Sim
		}
		return idx[a] < idx[b]
	})
	if k > len(idx) {
		k = len(idx)
	}
	out := make([]core.Score, k)
	for i := range out {
		out[i] = scores[idx[i]]
	}
	return out
}

// TestEngineTopKVerdictsIdentical pins Options.TopK: verdict types,
// order, Best and window summaries are bit-identical to the full-vector
// run — only the events' Scores shrink to the ranked top-k — on both
// the serial and the sharded engine, with the match index on.
func TestEngineTopKVerdictsIdentical(t *testing.T) {
	t.Parallel()
	tr := buildScenario(t, false)
	train, valid := core.Split(tr, 3*time.Minute)
	cfg := core.Config{Param: core.ParamInterArrival}
	db := core.NewDatabase(cfg, core.MeasureCosine)
	db.SetIndexing(core.IndexOn)
	if err := db.Train(train); err != nil {
		t.Fatal(err)
	}
	cdb := db.Compile()
	if !cdb.IndexStats().Enabled {
		t.Fatal("index not built with IndexOn")
	}
	const k = 3

	full := runEngine(t, valid, cdb, cfg, 2*time.Minute, 0)

	run := func(topk int, sharded bool) *collected {
		got := &collected{}
		sink := engine.SinkFunc(func(ev engine.Event) {
			switch ev := ev.(type) {
			case engine.CandidateMatched:
				got.cands = append(got.cands, core.Candidate{Addr: [6]byte(ev.Addr), Window: ev.Window, Sig: ev.Sig})
				got.scores = append(got.scores, ev.Scores)
				got.best = append(got.best, ev.Best)
			case engine.UnknownDevice:
				got.cands = append(got.cands, core.Candidate{Addr: [6]byte(ev.Addr), Window: ev.Window, Sig: ev.Sig})
				got.scores = append(got.scores, ev.Scores)
				got.best = append(got.best, ev.Best)
			case engine.CandidateDropped:
				got.dropped = append(got.dropped, ev)
			case engine.WindowClosed:
				got.closed = append(got.closed, ev)
			}
		})
		if sharded {
			eng, err := engine.NewSharded(cfg, cdb, engine.ShardedOptions{
				Window: 2 * time.Minute, Sink: sink, Shards: 4, TopK: topk,
			})
			if err != nil {
				t.Fatal(err)
			}
			if st := eng.Stats(); !st.Index.Enabled {
				t.Fatal("sharded Stats.Index not populated")
			}
			eng.PushTrace(valid)
			eng.Close()
			return got
		}
		eng, err := engine.New(cfg, cdb, engine.Options{
			Window: 2 * time.Minute, Sink: sink, TopK: topk,
		})
		if err != nil {
			t.Fatal(err)
		}
		if st := eng.Stats(); !st.Index.Enabled {
			t.Fatal("serial Stats.Index not populated")
		}
		eng.PushTrace(valid)
		eng.Close()
		return got
	}

	for _, mode := range []struct {
		name    string
		sharded bool
	}{{"serial", false}, {"sharded", true}} {
		got := run(k, mode.sharded)
		if len(got.cands) != len(full.cands) {
			t.Fatalf("%s: %d verdicts, want %d", mode.name, len(got.cands), len(full.cands))
		}
		for i := range full.cands {
			if got.cands[i].Addr != full.cands[i].Addr || got.cands[i].Window != full.cands[i].Window {
				t.Fatalf("%s verdict %d: got (%x, w%d), want (%x, w%d)", mode.name, i,
					got.cands[i].Addr, got.cands[i].Window, full.cands[i].Addr, full.cands[i].Window)
			}
			if got.best[i].Addr != full.best[i].Addr ||
				math.Float64bits(got.best[i].Sim) != math.Float64bits(full.best[i].Sim) {
				t.Fatalf("%s verdict %d best: %+v, want %+v", mode.name, i, got.best[i], full.best[i])
			}
			want := rankScores(full.scores[i], k)
			if len(got.scores[i]) != len(want) {
				t.Fatalf("%s verdict %d: %d scores, want %d", mode.name, i, len(got.scores[i]), len(want))
			}
			for j := range want {
				if got.scores[i][j].Addr != want[j].Addr ||
					math.Float64bits(got.scores[i][j].Sim) != math.Float64bits(want[j].Sim) {
					t.Fatalf("%s verdict %d score %d: %+v, want %+v", mode.name, i, j, got.scores[i][j], want[j])
				}
			}
		}
		if len(got.closed) != len(full.closed) {
			t.Fatalf("%s: %d windows, want %d", mode.name, len(got.closed), len(full.closed))
		}
		for i := range full.closed {
			if got.closed[i] != full.closed[i] {
				t.Fatalf("%s window %d summary: %+v, want %+v", mode.name, i, got.closed[i], full.closed[i])
			}
		}
	}
}
