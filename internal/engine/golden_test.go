package engine_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"dot11fp/internal/core"
	"dot11fp/internal/engine"
	"dot11fp/internal/scenario"
)

// Golden conformance tests: the full event streams of the office and
// conference scenarios — event type, sender, best match and exact
// score, under fixed seeds — are frozen as testdata files, so any
// refactor of the extraction or match path that shifts a single event,
// order, or score bit shows up as a readable diff instead of silent
// drift. Regenerate deliberately with:
//
//	go test ./internal/engine -run TestGolden -update
var updateGolden = flag.Bool("update", false, "rewrite the golden event-stream files")

// fexact renders a similarity with the shortest representation that
// round-trips the exact float64 bits — a digit of drift anywhere is a
// conformance failure.
func fexact(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// eventLine renders one event in the frozen line format. Verdict
// events use Observations(), which covers both the single-parameter
// and the ensemble shape.
func eventLine(ev engine.Event) string {
	switch ev := ev.(type) {
	case engine.CandidateMatched:
		return fmt.Sprintf("w%03d match   %s best=%s sim=%s obs=%d",
			ev.Window, ev.Addr, ev.Best.Addr, fexact(ev.Best.Sim), ev.Observations())
	case engine.UnknownDevice:
		if ev.HasBest {
			return fmt.Sprintf("w%03d unknown %s best=%s sim=%s obs=%d",
				ev.Window, ev.Addr, ev.Best.Addr, fexact(ev.Best.Sim), ev.Observations())
		}
		return fmt.Sprintf("w%03d unknown %s best=- obs=%d", ev.Window, ev.Addr, ev.Observations())
	case engine.CandidateDropped:
		kind := "dropped"
		if ev.Evicted {
			kind = "evicted"
		}
		return fmt.Sprintf("w%03d %s %s obs=%d/%d", ev.Window, kind, ev.Addr, ev.Observations, ev.Minimum)
	case engine.WindowClosed:
		return fmt.Sprintf("w%03d closed  frames=%d senders=%d cands=%d matched=%d unknown=%d dropped=%d",
			ev.Window, ev.Frames, ev.Senders, ev.Candidates, ev.Matched, ev.Unknown, ev.Dropped)
	case engine.EnrollmentProgress:
		return fmt.Sprintf("w%03d pending %s windows=%d/%d obs=%d", ev.Window, ev.Addr, ev.Windows, ev.Horizon, ev.Observations)
	case engine.DeviceEnrolled:
		return fmt.Sprintf("w%03d enroll  %s windows=%d obs=%d refs=%d", ev.Window, ev.Addr, ev.Windows, ev.Observations, ev.Refs)
	case engine.DBSwapped:
		return fmt.Sprintf("w%03d swap    v%d refs=%d enrolled=%d updated=%d", ev.Window, ev.Version, ev.Refs, ev.Enrolled, ev.Updated)
	default:
		return fmt.Sprintf("unhandled event %T", ev)
	}
}

// checkGolden compares the rendered stream against its testdata file,
// rewriting the file under -update.
func checkGolden(t *testing.T, name string, lines []string) {
	t.Helper()
	if len(lines) == 0 {
		t.Fatal("empty event stream")
	}
	got := strings.Join(lines, "\n") + "\n"
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d lines)", path, len(lines))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got == string(want) {
		return
	}
	// Point at the first drifting line, not just "files differ".
	gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if gl[i] != wl[i] {
			t.Fatalf("%s drifted at line %d:\n  got:  %s\n  want: %s", name, i+1, gl[i], wl[i])
		}
	}
	t.Fatalf("%s drifted in length: got %d lines, want %d", name, len(gl), len(wl))
}

// streamScenario replays a scenario through the serial engine —
// trained on the first 3 minutes, monitored on the rest — and renders
// every event.
func streamScenario(t *testing.T, conference bool) []string {
	t.Helper()
	tr := buildScenario(t, conference) // fixed seeds inside
	cfg := core.DefaultConfig(core.ParamInterArrival)
	train, valid := core.Split(tr, 3*time.Minute)
	db := core.NewDatabase(cfg, core.MeasureCosine)
	if err := db.Train(train); err != nil {
		t.Fatal(err)
	}
	var lines []string
	eng, err := engine.New(cfg, db.Compile(), engine.Options{
		Window: 2 * time.Minute,
		Sink:   engine.SinkFunc(func(ev engine.Event) { lines = append(lines, eventLine(ev)) }),
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.PushTrace(valid)
	eng.Close()
	return lines
}

// TestGoldenOfficeStream freezes the office-scenario event stream.
func TestGoldenOfficeStream(t *testing.T) {
	checkGolden(t, "office_stream.golden", streamScenario(t, false))
}

// TestGoldenConferenceStream freezes the conference-scenario stream.
func TestGoldenConferenceStream(t *testing.T) {
	checkGolden(t, "conference_stream.golden", streamScenario(t, true))
}

// streamEnsembleScenario replays a scenario through the serial fused
// engine — a three-parameter ensemble trained on the first 3 minutes,
// monitored on the rest — and renders every event. The frozen fused
// scores pin the whole multi-parameter path: one-pass member
// extraction, compiled-ensemble matching, mean fusion.
func streamEnsembleScenario(t *testing.T, conference bool) []string {
	t.Helper()
	tr := buildScenario(t, conference) // fixed seeds inside
	cfgs := ensembleCfgs(0)            // paper defaults per member
	ens, err := core.NewEnsemble(core.MeasureCosine, cfgs...)
	if err != nil {
		t.Fatal(err)
	}
	train, valid := core.Split(tr, 3*time.Minute)
	if err := ens.Train(train); err != nil {
		t.Fatal(err)
	}
	var lines []string
	eng, err := engine.NewEnsemble(cfgs, ens.Compile(), engine.Options{
		Window: 2 * time.Minute,
		Sink:   engine.SinkFunc(func(ev engine.Event) { lines = append(lines, eventLine(ev)) }),
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.PushTrace(valid)
	eng.Close()
	return lines
}

// TestGoldenOfficeEnsembleStream freezes the office-scenario fused
// event stream.
func TestGoldenOfficeEnsembleStream(t *testing.T) {
	checkGolden(t, "office_ensemble.golden", streamEnsembleScenario(t, false))
}

// TestGoldenConferenceEnsembleStream freezes the conference-scenario
// fused stream.
func TestGoldenConferenceEnsembleStream(t *testing.T) {
	checkGolden(t, "conference_ensemble.golden", streamEnsembleScenario(t, true))
}

// streamRandomizedScenario replays the MAC-randomizing office through
// the fused engine with probe-content members and the clustering stage:
// training sees the cluster-canonicalised first 3 minutes, monitoring
// resolves rotated senders live through the same Clusterer. The frozen
// stream pins the whole randomization-defeat path — content parsing,
// canonical addressing, cluster-aware accumulation.
func streamRandomizedScenario(t *testing.T) []string {
	t.Helper()
	p := scenario.RandomizedOffice("eng-rand", 43, 10*time.Minute, 8)
	tr, _, err := scenario.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := []core.Config{
		{Param: core.ParamInterArrival},
		{Param: core.ParamProbeIE},
		{Param: core.ParamProbeCap},
	}
	cl := core.NewClusterer(0)
	train, valid := core.Split(tr, 3*time.Minute)
	ens, err := core.NewEnsemble(core.MeasureCosine, cfgs...)
	if err != nil {
		t.Fatal(err)
	}
	if err := ens.Train(cl.Apply(train)); err != nil {
		t.Fatal(err)
	}
	var lines []string
	eng, err := engine.NewEnsemble(cfgs, ens.Compile(), engine.Options{
		Window:  2 * time.Minute,
		Sink:    engine.SinkFunc(func(ev engine.Event) { lines = append(lines, eventLine(ev)) }),
		Cluster: cl,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.PushTrace(valid)
	eng.Close()
	return lines
}

// TestGoldenRandomizedStream freezes the randomized-office clustered
// fused stream.
func TestGoldenRandomizedStream(t *testing.T) {
	checkGolden(t, "randomized_stream.golden", streamRandomizedScenario(t))
}

// TestGoldenEnrollStream freezes the online-enrollment event stream:
// a cold-started conference monitor self-populating its references
// (horizon 2, frozen after enrollment). Covers the trainer's event
// order and swap batching against drift.
func TestGoldenEnrollStream(t *testing.T) {
	tr := buildScenario(t, true)
	cfg := core.DefaultConfig(core.ParamInterArrival)
	trainer := engine.NewTrainer(cfg, core.MeasureCosine, engine.TrainerOptions{Horizon: 2})
	var lines []string
	eng, err := engine.New(cfg, nil, engine.Options{
		Window:  2 * time.Minute,
		Sink:    engine.SinkFunc(func(ev engine.Event) { lines = append(lines, eventLine(ev)) }),
		Trainer: trainer,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.PushTrace(tr)
	eng.Close()
	checkGolden(t, "conference_enroll.golden", lines)
}
