package engine_test

import (
	"encoding/json"
	"reflect"
	"sort"
	"testing"
	"time"

	"dot11fp/internal/core"
	"dot11fp/internal/engine"
)

// jsonKeys marshals v and returns the sorted top-level object keys.
func jsonKeys(t *testing.T, v any) []string {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// roundTrip marshals src and unmarshals into dst (a pointer to the
// same type), asserting the decoded value equals the original.
func roundTrip(t *testing.T, label string, src, dst any) {
	t.Helper()
	raw, err := json.Marshal(src)
	if err != nil {
		t.Fatalf("%s: marshal: %v", label, err)
	}
	if err := json.Unmarshal(raw, dst); err != nil {
		t.Fatalf("%s: unmarshal: %v", label, err)
	}
	if got := reflect.ValueOf(dst).Elem().Interface(); !reflect.DeepEqual(got, src) {
		t.Fatalf("%s: round trip drifted:\n got  %+v\n want %+v", label, got, src)
	}
}

// TestSnapshotJSONStable pins the JSON shape of the engine's snapshot
// structs — the canonical wire form shared by the HTTP API and the
// /metrics encoder. Every field carries a distinct non-zero value so a
// dropped or misnamed tag cannot round-trip silently; the key sets are
// asserted exactly so adding or renaming a field is a deliberate,
// test-visible API change.
func TestSnapshotJSONStable(t *testing.T) {
	t.Parallel()

	stats := engine.Stats{
		Frames: 1, DroppedFrames: 2, WindowsClosed: 3, LiveSenders: 4,
		Candidates: 5, Matched: 6, Unknown: 7, Dropped: 8, Evicted: 9,
		Elapsed: 10 * time.Second, FramesPerSec: 11.5,
		Index: core.IndexStats{
			Enabled: true, References: 12, Classes: 13, Coarse: 14,
			Entries: 15, Postings: 16, IndexBytes: 17, DenseBytes: 18,
		},
	}
	var stats2 engine.Stats
	roundTrip(t, "Stats", stats, &stats2)
	wantStats := []string{
		"candidates", "dropped", "dropped_frames", "elapsed_ns", "evicted",
		"frames", "frames_per_sec", "index", "live_senders", "matched",
		"unknown", "windows_closed",
	}
	if got := jsonKeys(t, stats); !reflect.DeepEqual(got, wantStats) {
		t.Fatalf("Stats JSON keys drifted:\n got  %v\n want %v", got, wantStats)
	}
	wantIndex := []string{
		"classes", "coarse", "dense_bytes", "enabled", "entries",
		"index_bytes", "postings", "references",
	}
	if got := jsonKeys(t, stats.Index); !reflect.DeepEqual(got, wantIndex) {
		t.Fatalf("IndexStats JSON keys drifted:\n got  %v\n want %v", got, wantIndex)
	}

	health := engine.Health{
		ShardPanics: 1, MergerPanics: 2, TrainerPanics: 3, EnginePanics: 4,
		LastPanic: "shard: boom", StalledShards: []int{5}, QueueDepths: []int{6, 7},
	}
	var health2 engine.Health
	roundTrip(t, "Health", health, &health2)
	wantHealth := []string{
		"engine_panics", "last_panic", "merger_panics", "queue_depths",
		"shard_panics", "stalled_shards", "trainer_panics",
	}
	if got := jsonKeys(t, health); !reflect.DeepEqual(got, wantHealth) {
		t.Fatalf("Health JSON keys drifted:\n got  %v\n want %v", got, wantHealth)
	}
	// The omitempty fields vanish on a clean snapshot: a healthy
	// engine's health is compact on the wire.
	clean := jsonKeys(t, engine.Health{ShardPanics: 1, MergerPanics: 2, TrainerPanics: 3, EnginePanics: 4})
	wantClean := []string{"engine_panics", "merger_panics", "shard_panics", "trainer_panics"}
	if !reflect.DeepEqual(clean, wantClean) {
		t.Fatalf("clean Health JSON keys drifted:\n got  %v\n want %v", clean, wantClean)
	}

	tstats := engine.TrainerStats{
		Refs: 1, Pending: 2, Enrolled: 3, Updated: 4, Swaps: 5,
		Denied: 6, Rejected: 7, EvictedPending: 8,
	}
	var tstats2 engine.TrainerStats
	roundTrip(t, "TrainerStats", tstats, &tstats2)
	wantTrainer := []string{
		"denied", "enrolled", "evicted_pending", "pending", "refs",
		"rejected", "swaps", "updated",
	}
	if got := jsonKeys(t, tstats); !reflect.DeepEqual(got, wantTrainer) {
		t.Fatalf("TrainerStats JSON keys drifted:\n got  %v\n want %v", got, wantTrainer)
	}
}
