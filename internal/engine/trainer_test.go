package engine_test

import (
	"testing"
	"time"

	"dot11fp/internal/capture"
	"dot11fp/internal/core"
	"dot11fp/internal/dot11"
	"dot11fp/internal/engine"
)

// trainEvents separates the trainer's event stream for assertions.
type trainEvents struct {
	progress []engine.EnrollmentProgress
	enrolled []engine.DeviceEnrolled
	swapped  []engine.DBSwapped
}

func collectTrainer(te *trainEvents) engine.SinkFunc {
	return func(ev engine.Event) {
		switch ev := ev.(type) {
		case engine.EnrollmentProgress:
			te.progress = append(te.progress, ev)
		case engine.DeviceEnrolled:
			te.enrolled = append(te.enrolled, ev)
		case engine.DBSwapped:
			te.swapped = append(te.swapped, ev)
		}
	}
}

// batchTrainPerWindow is the offline equivalent of live enrollment with
// Horizon 1 + Update: the training prefix is split on the detection
// grid and each window is folded into the database, exactly as
// Database.Train documents for multi-window training.
func batchTrainPerWindow(t *testing.T, prefix *capture.Trace, window time.Duration, cfg core.Config) *core.Database {
	t.Helper()
	db := core.NewDatabase(cfg, core.MeasureCosine)
	for _, win := range core.Windows(prefix, window) {
		if err := db.Train(win); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// sameDB asserts two databases hold the same references in the same
// insertion order and produce bit-identical MatchAll scores over a
// probe candidate set.
func sameDB(t *testing.T, label string, got, want *core.Database, probe []core.Candidate) {
	t.Helper()
	gd, wd := got.Devices(), want.Devices()
	if len(gd) != len(wd) {
		t.Fatalf("%s: %d references, want %d", label, len(gd), len(wd))
	}
	for i := range wd {
		if gd[i] != wd[i] {
			t.Fatalf("%s: reference %d is %v, want %v (insertion order must match)", label, i, gd[i], wd[i])
		}
	}
	gotRows := got.Compile().MatchAll(probe)
	wantRows := want.Compile().MatchAll(probe)
	for i := range wantRows {
		for j := range wantRows[i] {
			if gotRows[i][j] != wantRows[i][j] { // exact float equality: bit-identical
				t.Fatalf("%s: probe %d score %d: %+v, want %+v", label, i, j, gotRows[i][j], wantRows[i][j])
			}
		}
	}
}

// TestTrainerLiveEqualsBatch is the subsystem's acceptance test: a
// database enrolled live from the first K windows of a stream (cold
// start, Horizon 1, Update on) matches a database batch-trained per
// window on the same prefix bit-identically — same references, same
// insertion order, same MatchAll scores on the validation remainder —
// on both the serial and the sharded engine; and the mid-stream
// hot-swaps lose no frames and emit exactly one DBSwapped per
// promotion batch.
func TestTrainerLiveEqualsBatch(t *testing.T) {
	t.Parallel()
	const window = 2 * time.Minute
	const k = 3 // enrollment horizon of the stream, in windows
	cfg := core.DefaultConfig(core.ParamInterArrival)

	for name, conference := range map[string]bool{"office": false, "conference": true} {
		tr := buildScenario(t, conference)
		cut := tr.Records[0].T + int64(k)*window.Microseconds()
		prefix := tr.Slice(-1<<62, cut)
		remainder := tr.Slice(cut, 1<<62)
		probe := core.CandidatesIn(remainder, window, cfg)
		if len(probe) == 0 {
			t.Fatalf("%s: no validation candidates", name)
		}
		batch := batchTrainPerWindow(t, prefix, window, cfg)
		if batch.Len() == 0 {
			t.Fatalf("%s: batch training produced no references", name)
		}

		for _, shards := range []int{0, 1, 4} { // 0 = serial Engine
			trainer := engine.NewTrainer(cfg, core.MeasureCosine, engine.TrainerOptions{
				Horizon: 1,
				Update:  true,
			})
			var te trainEvents
			sink := collectTrainer(&te)

			var frames uint64
			var droppedFrames uint64
			if shards == 0 {
				eng, err := engine.New(cfg, nil, engine.Options{Window: window, Sink: sink, Trainer: trainer})
				if err != nil {
					t.Fatal(err)
				}
				eng.PushTrace(prefix)
				eng.Close()
				st := eng.Stats()
				frames, droppedFrames = st.Frames, st.DroppedFrames
			} else {
				eng, err := engine.NewSharded(cfg, nil, engine.ShardedOptions{
					Window: window, Shards: shards, Sink: sink, Trainer: trainer,
				})
				if err != nil {
					t.Fatal(err)
				}
				eng.PushTrace(prefix)
				eng.Close()
				st := eng.Stats()
				frames, droppedFrames = st.Frames, st.DroppedFrames
			}

			label := name + "/live-vs-batch"
			if shards > 0 {
				label = name + "/sharded-live-vs-batch"
			}
			sameDB(t, label, trainer.Database(), batch, probe)

			// The hot-swap path must be lossless and emit exactly one
			// DBSwapped per promotion batch (per changed window).
			if frames != uint64(len(prefix.Records)) || droppedFrames != 0 {
				t.Fatalf("%s: %d frames seen of %d pushed (%d dropped)", label, frames, len(prefix.Records), droppedFrames)
			}
			perWindow := make(map[int]int)
			for i, sw := range te.swapped {
				perWindow[sw.Window]++
				if sw.Version != uint64(i+1) {
					t.Fatalf("%s: swap %d has version %d", label, i, sw.Version)
				}
			}
			for win, n := range perWindow {
				if n != 1 {
					t.Fatalf("%s: window %d emitted %d DBSwapped events, want exactly 1", label, win, n)
				}
			}
			if len(te.swapped) == 0 || len(te.enrolled) == 0 {
				t.Fatalf("%s: no enrollment activity (%d swaps, %d enrollments)", label, len(te.swapped), len(te.enrolled))
			}
			st := trainer.Stats()
			if st.Refs != batch.Len() || st.Swaps != uint64(len(te.swapped)) || st.Enrolled != uint64(len(te.enrolled)) {
				t.Fatalf("%s: trainer stats inconsistent: %+v", label, st)
			}
		}
	}
}

// TestTrainerHorizon checks that a multi-window horizon delays
// promotion, reports progress meanwhile, and enrolls the accumulated
// multi-window signature.
func TestTrainerHorizon(t *testing.T) {
	t.Parallel()
	const window = 2 * time.Minute
	cfg := core.DefaultConfig(core.ParamInterArrival)
	tr := buildScenario(t, false)

	trainer := engine.NewTrainer(cfg, core.MeasureCosine, engine.TrainerOptions{Horizon: 2, Update: true})
	var te trainEvents
	eng, err := engine.New(cfg, nil, engine.Options{Window: window, Sink: collectTrainer(&te), Trainer: trainer})
	if err != nil {
		t.Fatal(err)
	}
	eng.PushTrace(tr)
	eng.Close()

	if len(te.enrolled) == 0 {
		t.Fatal("nothing enrolled")
	}
	firstEnroll := make(map[dot11.Addr]engine.DeviceEnrolled)
	for _, en := range te.enrolled {
		if _, dup := firstEnroll[en.Addr]; dup {
			t.Fatalf("%v enrolled twice", en.Addr)
		}
		firstEnroll[en.Addr] = en
		if en.Windows < 2 {
			t.Fatalf("%v enrolled after %d windows, horizon is 2", en.Addr, en.Windows)
		}
	}
	// Every enrollee must have reported progress before promotion.
	progressed := make(map[dot11.Addr]bool)
	for _, p := range te.progress {
		progressed[p.Addr] = true
		if p.Horizon != 2 || p.Windows >= 2 {
			t.Fatalf("progress event inconsistent: %+v", p)
		}
		if en, ok := firstEnroll[p.Addr]; ok && p.Window >= en.Window {
			t.Fatalf("%v progressed at window %d after enrolling at %d", p.Addr, p.Window, en.Window)
		}
	}
	for addr := range firstEnroll {
		if !progressed[addr] {
			t.Fatalf("%v enrolled without a progress event", addr)
		}
	}
}

// TestTrainerPolicies checks the deny-list and the confirm callback:
// denied senders never enroll, rejected senders are remembered and the
// callback runs at most once per sender, approved senders enroll.
func TestTrainerPolicies(t *testing.T) {
	t.Parallel()
	const window = 2 * time.Minute
	cfg := core.DefaultConfig(core.ParamInterArrival)
	tr := buildScenario(t, false)

	// Find two distinct senders that will complete enrollment.
	probeTrainer := engine.NewTrainer(cfg, core.MeasureCosine, engine.TrainerOptions{})
	var probe trainEvents
	eng, err := engine.New(cfg, nil, engine.Options{Window: window, Sink: collectTrainer(&probe), Trainer: probeTrainer})
	if err != nil {
		t.Fatal(err)
	}
	eng.PushTrace(tr)
	eng.Close()
	if len(probe.enrolled) < 3 {
		t.Fatalf("scenario too sparse: %d enrollments", len(probe.enrolled))
	}
	denyAddr := probe.enrolled[0].Addr
	rejectAddr := probe.enrolled[1].Addr

	calls := make(map[dot11.Addr]int)
	trainer := engine.NewTrainer(cfg, core.MeasureCosine, engine.TrainerOptions{
		Policy: engine.EnrollConfirm,
		Deny:   []dot11.Addr{denyAddr},
		Confirm: func(p engine.PendingEnrollment) bool {
			calls[p.Addr]++
			if p.Observations == 0 || p.Windows == 0 || p.Sig == nil {
				t.Errorf("confirm saw an empty pending enrollment: %+v", p)
			}
			return p.Addr != rejectAddr
		},
	})
	var te trainEvents
	eng, err = engine.New(cfg, nil, engine.Options{Window: window, Sink: collectTrainer(&te), Trainer: trainer})
	if err != nil {
		t.Fatal(err)
	}
	eng.PushTrace(tr)
	eng.Close()

	if calls[denyAddr] != 0 {
		t.Fatal("confirm callback consulted for a deny-listed sender")
	}
	if calls[rejectAddr] != 1 {
		t.Fatalf("confirm called %d times for the rejected sender, want exactly 1", calls[rejectAddr])
	}
	db := trainer.Database()
	if db.Signature(denyAddr) != nil || db.Signature(rejectAddr) != nil {
		t.Fatal("denied or rejected sender present in the references")
	}
	if db.Len() == 0 {
		t.Fatal("no approved enrollments")
	}
	st := trainer.Stats()
	if st.Rejected != 1 || st.Denied == 0 {
		t.Fatalf("policy counters inconsistent: %+v", st)
	}
}

// TestTrainerConfirmNilNeverEnrolls pins the conservative default of
// EnrollConfirm without a callback.
func TestTrainerConfirmNilNeverEnrolls(t *testing.T) {
	t.Parallel()
	cfg := core.DefaultConfig(core.ParamInterArrival)
	tr := buildScenario(t, false)
	trainer := engine.NewTrainer(cfg, core.MeasureCosine, engine.TrainerOptions{Policy: engine.EnrollConfirm})
	eng, err := engine.New(cfg, nil, engine.Options{Window: 2 * time.Minute, Trainer: trainer})
	if err != nil {
		t.Fatal(err)
	}
	eng.PushTrace(tr)
	eng.Close()
	if st := trainer.Stats(); st.Refs != 0 || st.Enrolled != 0 || st.Swaps != 0 {
		t.Fatalf("EnrollConfirm with nil callback enrolled anyway: %+v", st)
	}
}

// TestTrainerMaxPending bounds the pending accumulation state under
// sender churn that never completes the horizon.
func TestTrainerMaxPending(t *testing.T) {
	t.Parallel()
	cfg := core.Config{Param: core.ParamSize, MinObservations: 10}
	tr := &capture.Trace{Name: "pending-churn"}
	// 32 senders, each a candidate in exactly one 1-second window — a
	// horizon of 100 means none ever promotes.
	for s := 0; s < 32; s++ {
		base := int64(s) * 1_000_000
		for i := 0; i < 12; i++ {
			tr.Records = append(tr.Records, capture.Record{
				T: base + int64(i)*10_000, Sender: dot11.LocalAddr(uint64(s + 1)), Receiver: apX,
				Class: dot11.ClassData, Size: 200 + 8*s, RateMbps: 24, FCSOK: true,
			})
		}
	}
	trainer := engine.NewTrainer(cfg, core.MeasureCosine, engine.TrainerOptions{
		Horizon: 100, MaxPending: 4,
	})
	eng, err := engine.New(cfg, nil, engine.Options{Window: time.Second, Trainer: trainer})
	if err != nil {
		t.Fatal(err)
	}
	eng.PushTrace(tr)
	eng.Close()
	st := trainer.Stats()
	if st.Pending > 4 {
		t.Fatalf("pending state %d exceeds MaxPending 4", st.Pending)
	}
	if st.EvictedPending == 0 {
		t.Fatal("no pending evictions under churn")
	}
	if st.Refs != 0 {
		t.Fatalf("%d senders enrolled below the horizon", st.Refs)
	}
}

// TestTrainerMaxPendingPromoteSameWindow pins the promote/evict
// interaction inside a single window: with Horizon 1 a sender is slated
// for promotion the moment it appears, and a later new sender in the
// same window may push pending over MaxPending and trigger an eviction.
// A promote-slated sender must be out of eviction's reach — evicting it
// used to leave a nil pending entry for the promote loop to dereference,
// crashing the engine's window goroutine.
func TestTrainerMaxPendingPromoteSameWindow(t *testing.T) {
	t.Parallel()
	cfg := core.Config{Param: core.ParamSize, MinObservations: 10}
	tr := &capture.Trace{Name: "promote-evict-race"}
	// Three new senders, all candidates of the same 1-second window, in
	// ascending address order — the promote-slated lowest address is the
	// eviction tie-break victim if it is still visible to evictPending.
	for s := 0; s < 3; s++ {
		base := int64(s) * 50_000
		for i := 0; i < 12; i++ {
			tr.Records = append(tr.Records, capture.Record{
				T: base + int64(i)*1_000, Sender: dot11.LocalAddr(uint64(s + 1)), Receiver: apX,
				Class: dot11.ClassData, Size: 200 + 8*s, RateMbps: 24, FCSOK: true,
			})
		}
	}
	trainer := engine.NewTrainer(cfg, core.MeasureCosine, engine.TrainerOptions{
		Horizon: 1, MaxPending: 2,
	})
	eng, err := engine.New(cfg, nil, engine.Options{Window: time.Second, Trainer: trainer})
	if err != nil {
		t.Fatal(err)
	}
	eng.PushTrace(tr)
	eng.Close()
	st := trainer.Stats()
	if st.Refs != 3 {
		t.Fatalf("%d of 3 same-window senders enrolled at Horizon 1: %+v", st.Refs, st)
	}
	if st.EvictedPending != 0 {
		t.Fatalf("promote-slated senders counted against MaxPending: %+v", st)
	}
}

// TestTrainerMaxPendingNoCascade pins the mid-window eviction rule:
// when pending senders are all candidates of the current window, one
// new arrival over the cap must not cascade into resetting live
// senders' accumulation — everyone persistent still reaches the
// horizon and enrolls.
func TestTrainerMaxPendingNoCascade(t *testing.T) {
	t.Parallel()
	const cap = 8
	cfg := core.Config{Param: core.ParamSize, MinObservations: 10}
	tr := &capture.Trace{Name: "pending-cap"}
	// cap+1 persistent senders, every one a candidate in every 1-second
	// window, across 4 windows.
	for win := 0; win < 4; win++ {
		for s := 0; s <= cap; s++ {
			base := int64(win)*1_000_000 + int64(s)*50_000
			for i := 0; i < 12; i++ {
				tr.Records = append(tr.Records, capture.Record{
					T: base + int64(i)*1_000, Sender: dot11.LocalAddr(uint64(s + 1)), Receiver: apX,
					Class: dot11.ClassData, Size: 200 + 8*s, RateMbps: 24, FCSOK: true,
				})
			}
		}
	}
	trainer := engine.NewTrainer(cfg, core.MeasureCosine, engine.TrainerOptions{
		Horizon: 2, MaxPending: cap,
	})
	eng, err := engine.New(cfg, nil, engine.Options{Window: time.Second, Trainer: trainer})
	if err != nil {
		t.Fatal(err)
	}
	eng.PushTrace(tr)
	eng.Close()
	// With a cascade, every window's insertions would reset every
	// pending sender and nothing would ever complete the horizon. The
	// fixed rule loses at most the cap overflow (1 sender's worth of
	// thrash), so at least cap-1 of the cap+1 senders must enroll.
	if st := trainer.Stats(); st.Refs < cap-1 {
		t.Fatalf("only %d of %d persistent senders enrolled under MaxPending %d: %+v",
			st.Refs, cap+1, cap, st)
	}
}

// TestTrainerTapMatchesInline checks the event-stream attachment (Tap +
// Bind) reproduces the inline mode on the serial engine, where event
// delivery is synchronous with window close.
func TestTrainerTapMatchesInline(t *testing.T) {
	t.Parallel()
	const window = 2 * time.Minute
	cfg := core.DefaultConfig(core.ParamInterArrival)
	tr := buildScenario(t, true)
	probe := core.CandidatesIn(tr, window, cfg)

	inline := engine.NewTrainer(cfg, core.MeasureCosine, engine.TrainerOptions{Horizon: 2, Update: true})
	eng, err := engine.New(cfg, nil, engine.Options{Window: window, Trainer: inline})
	if err != nil {
		t.Fatal(err)
	}
	eng.PushTrace(tr)
	eng.Close()

	tapped := engine.NewTrainer(cfg, core.MeasureCosine, engine.TrainerOptions{Horizon: 2, Update: true})
	var te trainEvents
	eng2, err := engine.New(cfg, nil, engine.Options{Window: window, Sink: tapped.Tap(collectTrainer(&te))})
	if err != nil {
		t.Fatal(err)
	}
	// Bind installs the trainer's compiled references (empty here) and
	// shape-checks through the engine's SetDB.
	if err := tapped.Bind(eng2); err != nil {
		t.Fatal(err)
	}
	eng2.PushTrace(tr)
	eng2.Close()

	sameDB(t, "tap-vs-inline", tapped.Database(), inline.Database(), probe)
	if len(te.swapped) == 0 {
		t.Fatal("tap delivered no trainer events downstream")
	}

	// A shape-mismatched trainer must fail at Bind, not silently fail
	// every later swap.
	wrong := engine.NewTrainer(core.DefaultConfig(core.ParamRate), core.MeasureCosine, engine.TrainerOptions{})
	eng3, err := engine.New(cfg, nil, engine.Options{Window: window})
	if err != nil {
		t.Fatal(err)
	}
	defer eng3.Close()
	if err := wrong.Bind(eng3); err == nil {
		t.Fatal("Bind accepted a shape-mismatched trainer")
	}
}

// TestTrainerTapUnboundClaimsNoSwaps pins the unbound tap: a trainer
// fed through Tap without Bind still accumulates and promotes into its
// private database, but must not claim installations that never
// happened — no DBSwapped events, Stats().Swaps zero.
func TestTrainerTapUnboundClaimsNoSwaps(t *testing.T) {
	t.Parallel()
	const window = 2 * time.Minute
	cfg := core.DefaultConfig(core.ParamInterArrival)
	tr := buildScenario(t, true)

	unbound := engine.NewTrainer(cfg, core.MeasureCosine, engine.TrainerOptions{Horizon: 2})
	var te trainEvents
	eng, err := engine.New(cfg, nil, engine.Options{Window: window, Sink: unbound.Tap(collectTrainer(&te))})
	if err != nil {
		t.Fatal(err)
	}
	eng.PushTrace(tr)
	eng.Close()

	st := unbound.Stats()
	if st.Refs == 0 || st.Enrolled == 0 || len(te.enrolled) == 0 {
		t.Fatalf("unbound tap stopped enrolling: %+v", st)
	}
	if st.Swaps != 0 || len(te.swapped) != 0 {
		t.Fatalf("unbound tap claimed %d swaps (%d DBSwapped events) with no engine to swap", st.Swaps, len(te.swapped))
	}
}

// TestTrainerRejectsMisuse pins the constructor-time error paths: a
// trainer plus an explicit database, a shape-mismatched trainer, and
// double attachment.
func TestTrainerRejectsMisuse(t *testing.T) {
	t.Parallel()
	cfg := core.DefaultConfig(core.ParamInterArrival)
	trainer := engine.NewTrainer(cfg, core.MeasureCosine, engine.TrainerOptions{})
	db := core.NewDatabase(cfg, core.MeasureCosine)

	if _, err := engine.New(cfg, db.Compile(), engine.Options{Trainer: trainer}); err == nil {
		t.Fatal("engine accepted both a db and a trainer")
	}
	if _, err := engine.NewSharded(cfg, db.Compile(), engine.ShardedOptions{Trainer: trainer}); err == nil {
		t.Fatal("sharded engine accepted both a db and a trainer")
	}
	wrong := engine.NewTrainer(core.DefaultConfig(core.ParamRate), core.MeasureCosine, engine.TrainerOptions{})
	if _, err := engine.New(cfg, nil, engine.Options{Trainer: wrong}); err == nil {
		t.Fatal("engine accepted a shape-mismatched trainer")
	}

	eng, err := engine.New(cfg, nil, engine.Options{Trainer: trainer})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := engine.New(cfg, nil, engine.Options{Trainer: trainer}); err == nil {
		t.Fatal("trainer accepted a second engine")
	}
}

// TestTrainerWarmStart checks NewTrainerFrom: seeded references keep
// matching, the seed is copy-on-write (the caller's database is never
// mutated), and only unknown senders enroll around it.
func TestTrainerWarmStart(t *testing.T) {
	t.Parallel()
	const window = 2 * time.Minute
	cfg := core.DefaultConfig(core.ParamInterArrival)
	tr := buildScenario(t, false)
	cut := tr.Records[0].T + window.Microseconds()
	head, tail := tr.Slice(-1<<62, cut), tr.Slice(cut, 1<<62)

	seed := batchTrainPerWindow(t, head, window, cfg)
	seedObs := make(map[dot11.Addr]uint64)
	for _, addr := range seed.Devices() {
		seedObs[addr] = seed.Signature(addr).Observations()
	}

	trainer := engine.NewTrainerFrom(seed, engine.TrainerOptions{}) // Update off: seed stays frozen
	var matched int
	sink := engine.SinkFunc(func(ev engine.Event) {
		if _, ok := ev.(engine.CandidateMatched); ok {
			matched++
		}
	})
	eng, err := engine.New(cfg, nil, engine.Options{Window: window, Sink: sink, Trainer: trainer})
	if err != nil {
		t.Fatal(err)
	}
	eng.PushTrace(tail)
	eng.Close()

	if matched == 0 {
		t.Fatal("seeded references never matched")
	}
	for addr, obs := range seedObs {
		if got := seed.Signature(addr).Observations(); got != obs {
			t.Fatalf("seed database mutated: %v has %d observations, had %d", addr, got, obs)
		}
	}
	if trainer.Stats().Refs < seed.Len() {
		t.Fatalf("warm-started trainer lost seed references: %+v", trainer.Stats())
	}
}
