package engine

import (
	"sync/atomic"

	"dot11fp/internal/core"
	"dot11fp/internal/dot11"
)

// Event is the sealed interface over the engine's typed events. Events
// are delivered synchronously, on the pushing goroutine, in a fixed
// per-window order: one CandidateMatched or UnknownDevice per candidate
// (ascending address), then one CandidateDropped per below-minimum
// sender (ascending address), then the WindowClosed summary. Everything
// an event references is owned by the receiver — the engine keeps no
// alias, so events may be retained, sent across channels or mutated.
type Event interface{ event() }

// WindowClosed summarises one completed detection window. It is the
// last event of its window.
type WindowClosed struct {
	// Window is the window index among non-empty windows.
	Window int
	// Start and End bound the window in trace time [Start, End) µs.
	Start, End int64
	// Frames is the number of records scanned in the window.
	Frames int
	// Senders counts distinct senders with attributed observations.
	Senders int
	// Candidates counts senders that cleared the minimum-observation
	// rule (Candidates = Matched + Unknown).
	Candidates int
	// Matched and Unknown partition the candidates by the acceptance
	// threshold; Dropped counts the below-minimum and evicted senders.
	// Under extreme MAC churn, per-sender CandidateDropped events are
	// capped per window (the eviction record cap), so Dropped may
	// exceed the number of CandidateDropped events delivered.
	Matched, Unknown, Dropped int
}

// CandidateMatched reports a candidate whose best reference similarity
// reached the acceptance threshold — the identification test's verdict
// for one (device, window) instance.
type CandidateMatched struct {
	Window int
	Addr   dot11.Addr
	// Sig is the candidate's window signature (single-parameter
	// engines; nil in ensemble mode, which carries Sigs instead).
	Sig *core.Signature
	// Sigs are the candidate's per-member window signatures in an
	// ensemble engine, aligned with the ensemble's Params (nil on
	// single-parameter engines).
	Sigs []*core.Signature
	// Scores is the full similarity vector (Algorithm 1), in the
	// reference database's insertion order. On an ensemble engine it is
	// the fused vector — the mean of the member similarities — over the
	// fully-known reference set.
	Scores []core.Score
	// ParamScores are the per-member similarity vectors behind a fused
	// Scores, aligned with the ensemble's Params; each member's vector
	// runs over that member's own reference order (nil on
	// single-parameter engines).
	ParamScores [][]core.Score
	// Best is the arg-max entry of Scores.
	Best core.Score
}

// Observations returns the candidate's observation count: the single
// signature's on a single-parameter engine, the maximum across member
// signatures in ensemble mode (members differ only through
// per-parameter value validity).
func (ev CandidateMatched) Observations() uint64 { return eventObs(ev.Sig, ev.Sigs) }

// UnknownDevice reports a candidate that cleared the minimum-observation
// rule but matched no reference: either its best similarity stayed
// below the acceptance threshold, or no reference database is installed
// (Scores nil, HasBest false).
type UnknownDevice struct {
	Window int
	Addr   dot11.Addr
	// Sig and Sigs carry the window signature(s), exactly as on
	// CandidateMatched (Sig single-parameter, Sigs ensemble).
	Sig  *core.Signature
	Sigs []*core.Signature
	// Scores is the similarity vector (fused on an ensemble engine);
	// ParamScores the per-member vectors behind it (ensemble only).
	Scores      []core.Score
	ParamScores [][]core.Score
	// Best is the arg-max entry of Scores when HasBest is true.
	Best    core.Score
	HasBest bool
}

// Observations returns the candidate's observation count (see
// CandidateMatched.Observations).
func (ev UnknownDevice) Observations() uint64 { return eventObs(ev.Sig, ev.Sigs) }

// eventObs implements the verdict events' Observations convention.
func eventObs(sig *core.Signature, sigs []*core.Signature) uint64 {
	if sig != nil {
		return sig.Observations()
	}
	return maxSigObs(sigs)
}

// CandidateDropped reports a sender observed in the window that was
// never matched: its signature stayed below the minimum-observation
// rule (§V-C), or — when sender bounds are configured — it was evicted
// before the window closed.
type CandidateDropped struct {
	Window       int
	Addr         dot11.Addr
	Observations uint64
	// Minimum is the rule's threshold, for self-contained reporting.
	Minimum int
	// Evicted marks a bounded-state eviction (SenderLimits cap or idle
	// timeout) rather than an ordinary below-minimum drop.
	Evicted bool
}

// EnrollmentProgress reports a pending sender advancing toward the
// enrollment horizon — one event per (pending sender, window) while a
// Trainer is attached. Trainer events follow their window's
// WindowClosed summary, in ascending address order.
type EnrollmentProgress struct {
	Window int
	Addr   dot11.Addr
	// Windows counts the detection windows the sender has been a
	// candidate in so far, against the trainer's Horizon.
	Windows, Horizon int
	// Observations counts the accumulated observations, against the
	// trainer's MinObservations bar (0 = no extra bar).
	Observations, Required uint64
}

// DeviceEnrolled reports a sender promoted into the reference database
// by the online trainer.
type DeviceEnrolled struct {
	Window int
	Addr   dot11.Addr
	// Windows and Observations describe the accumulated training
	// signature that became the reference.
	Windows      int
	Observations uint64
	// Refs is the reference count after this enrollment.
	Refs int
}

// DBSwapped reports a reference-database hot-swap pushed to the engine
// by the online trainer — exactly one per promotion batch (a window
// whose enrollments or reference updates changed the database).
type DBSwapped struct {
	Window int
	// Version numbers the swaps monotonically from 1.
	Version uint64
	// Refs is the reference count after the swap; Enrolled and Updated
	// the newly promoted and refreshed references in this batch.
	Refs, Enrolled, Updated int
}

func (WindowClosed) event()       {}
func (CandidateMatched) event()   {}
func (UnknownDevice) event()      {}
func (CandidateDropped) event()   {}
func (EnrollmentProgress) event() {}
func (DeviceEnrolled) event()     {}
func (DBSwapped) event()          {}

// emitVerdict delivers the per-candidate verdict event — the single
// event-construction path shared by the serial and sharded engines, so
// their streams cannot drift apart — and reports whether the candidate
// matched. A nil sink still computes the verdict, keeping counters
// exact.
func emitVerdict(sink Sink, threshold float64, c *core.Candidate, scores []core.Score) bool {
	best := core.Score{Sim: -1}
	for _, sc := range scores {
		if sc.Sim > best.Sim {
			best = sc
		}
	}
	if hasBest := len(scores) > 0; hasBest && best.Sim >= threshold {
		if sink != nil {
			sink.HandleEvent(CandidateMatched{
				Window: c.Window, Addr: dot11.Addr(c.Addr), Sig: c.Sig,
				Scores: scores, Best: best,
			})
		}
		return true
	}
	if sink != nil {
		ev := UnknownDevice{Window: c.Window, Addr: dot11.Addr(c.Addr), Sig: c.Sig, Scores: scores}
		if len(scores) > 0 {
			ev.Best, ev.HasBest = best, true
		}
		sink.HandleEvent(ev)
	}
	return false
}

// emitVerdictMulti is emitVerdict for an ensemble engine's fused
// verdicts — the same single event-construction path, shared by the
// serial and sharded engines, over the fused score vector.
func emitVerdictMulti(sink Sink, threshold float64, c *core.MultiCandidate, fused []core.Score, perParam [][]core.Score) bool {
	best := core.Score{Sim: -1}
	for _, sc := range fused {
		if sc.Sim > best.Sim {
			best = sc
		}
	}
	if hasBest := len(fused) > 0; hasBest && best.Sim >= threshold {
		if sink != nil {
			sink.HandleEvent(CandidateMatched{
				Window: c.Window, Addr: dot11.Addr(c.Addr), Sigs: c.Sigs,
				Scores: fused, ParamScores: perParam, Best: best,
			})
		}
		return true
	}
	if sink != nil {
		ev := UnknownDevice{Window: c.Window, Addr: dot11.Addr(c.Addr), Sigs: c.Sigs, Scores: fused, ParamScores: perParam}
		if len(fused) > 0 {
			ev.Best, ev.HasBest = best, true
		}
		sink.HandleEvent(ev)
	}
	return false
}

// Sink receives engine events. HandleEvent is called synchronously on
// the pushing goroutine; a slow sink backpressures the stream, which is
// the intended flow control.
type Sink interface {
	HandleEvent(Event)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Event)

// HandleEvent implements Sink.
func (f SinkFunc) HandleEvent(ev Event) { f(ev) }

// ChannelSink forwards events into a channel, for consumers that want
// to select on the stream instead of registering a callback.
//
// The full-buffer policy is explicit and fixed at construction:
//
//   - Blocking (NewChannelSink, the default): a send into a full
//     channel waits, backpressuring the engine exactly like any other
//     slow Sink — lossless, end-to-end flow control. A consumer that
//     stops draining stalls the stream at the next window boundary.
//   - Dropping (NewDroppingChannelSink): a send into a full channel
//     discards the event and counts it in Dropped — the engine never
//     stalls on this sink, at the cost of a gappy (but counted) stream.
//     This is the building block for fanning events out to consumers
//     that must not backpressure the pipeline, e.g. the HTTP server's
//     SSE feed.
//
// Either way the channel is never silently lossy: events are delivered
// in order, and every event not delivered is visible in Dropped().
type ChannelSink struct {
	// C carries the events. The engine never closes it; the owner of
	// the stream calls Close after Engine.Close has returned.
	C chan Event

	dropOnFull bool
	dropped    atomic.Uint64
}

// NewChannelSink creates a blocking sink buffering up to buffer
// events: a full buffer backpressures the engine (lossless).
func NewChannelSink(buffer int) *ChannelSink {
	return &ChannelSink{C: make(chan Event, buffer)}
}

// NewDroppingChannelSink creates a non-blocking sink buffering up to
// buffer events: a full buffer drops the event and counts it in
// Dropped instead of stalling the engine.
func NewDroppingChannelSink(buffer int) *ChannelSink {
	return &ChannelSink{C: make(chan Event, buffer), dropOnFull: true}
}

// HandleEvent implements Sink under the sink's full-buffer policy.
//
//fp:mayblock lossless mode blocks on a full C by documented contract; dropOnFull is the non-blocking policy
func (s *ChannelSink) HandleEvent(ev Event) {
	if s.dropOnFull {
		select {
		case s.C <- ev:
		default:
			s.dropped.Add(1)
		}
		return
	}
	s.C <- ev
}

// Dropped returns the number of events discarded by a dropping sink
// (always 0 for a blocking one). Safe from any goroutine.
func (s *ChannelSink) Dropped() uint64 { return s.dropped.Load() }

// Close closes the event channel, releasing range loops over C.
func (s *ChannelSink) Close() { close(s.C) }
