// Package engine is the streaming-first form of the paper's method: a
// push-based fingerprinting pipeline for live monitor feeds.
//
// The paper's detection loop is inherently online — a passive monitor
// watches frames arrive and re-identifies every candidate device once
// per 5-minute detection window (§V-A). Engine implements exactly that
// loop without ever materialising a trace: each pushed record updates
// the current window's per-sender signature accumulation (shared with
// the batch paths via core.WindowAccumulator, so streaming and batch
// extraction are one code path); when a record crosses a window
// boundary the closed window's candidates are matched against the
// compiled reference database and typed events are emitted to the
// caller's sink. Memory is O(live senders + references), independent of
// stream length, and the push path is allocation-light at steady state.
//
// The reference database is hot-swappable (SetDB), so references can be
// retrained — e.g. from a fresher training window — without dropping
// the stream.
//
// The event stream is bit-identical by contract — the same records
// yield the same events on every run and at every shard count; wall
// clock feeds only stats and supervision, never output (each read is
// annotated //fp:wallclock).
//
//fp:deterministic
package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dot11fp/internal/capture"
	"dot11fp/internal/core"
)

// Options parameterises an Engine.
type Options struct {
	// Window is the detection window size. Zero selects the paper's
	// 5 minutes (core.DefaultWindow); a negative value accumulates the
	// whole stream as a single window.
	Window time.Duration
	// Threshold is the identification acceptance threshold: a candidate
	// whose best similarity reaches it is emitted as CandidateMatched,
	// otherwise as UnknownDevice. The zero value accepts any best match
	// (all similarity measures are non-negative), i.e. pure arg-max
	// identification.
	Threshold float64
	// Workers caps the per-window matching fan-out, like eval.Spec:
	// 0 selects GOMAXPROCS, 1 forces the serial path. Results are
	// identical for every worker count.
	Workers int
	// TopK, when positive, trims the per-candidate verdict events to the
	// k best-matching references (ranked, ties toward the earlier
	// reference) instead of the full similarity vector. Verdicts and
	// Best are bit-identical to the full-vector run — the ranked row's
	// first entry is exactly the full scan's arg-max — while the match
	// cost becomes sublinear in the reference count once the database
	// index is enabled (see core.IndexMode). In ensemble mode the events'
	// ParamScores are omitted (the fused pruned search never materialises
	// the per-member vectors). 0 keeps the full vector.
	TopK int
	// Limits bounds the per-window sender state (see core.SenderLimits).
	// The zero value is unbounded — bit-identical to the batch pipeline;
	// with bounds set, evicted senders surface as CandidateDropped
	// events with Evicted set and memory stays O(MaxSenders).
	Limits core.SenderLimits
	// Cluster, when set, merges randomized-MAC senders into logical
	// devices by probe-request content before sender-table admission
	// (see core.Clusterer). The engine owns the clusterer from then on:
	// it is driven from the push goroutine and must not be shared with
	// another live engine. nil — the default — disables clustering at
	// the cost of a single branch per frame.
	Cluster *core.Clusterer
	// Sink receives the engine's events; nil discards them (statistics
	// are still maintained).
	Sink Sink
	// Trainer, when set, closes the loop from the stream back into the
	// reference set: after each window's events the trainer accumulates
	// that window's candidates, promotes completed enrollments and
	// hot-swaps the engine's database, so the next window matches
	// against the grown reference set (see Trainer). The engine must
	// then be created with a nil db — the trainer owns the references
	// (seed a warm start with NewTrainerFrom).
	Trainer *Trainer
	// HealthSink receives supervision events (ComponentPanicked). On
	// the serial engine it is called on the pushing goroutine, but
	// never interleaved with the main event stream; it must not call
	// back into the engine. nil discards the events (Health still
	// counts everything).
	HealthSink Sink
}

// Stats is a point-in-time snapshot of an engine's counters.
//
// Snapshot semantics: the window-scoped counters — WindowsClosed,
// Candidates, Matched, Unknown, Dropped and Evicted — are updated as
// one group under a lock when a window's events have been emitted, so
// within any snapshot they are mutually consistent (Candidates is
// always Matched + Unknown, and all six describe the same set of
// closed windows). Frames and DroppedFrames are lock-free monotonic
// counters updated on the ingest path; they may run ahead of the
// window counters by the records still in flight (queued but not yet
// windowed, or in the currently open window). LiveSenders is an
// instantaneous gauge.
//
// The JSON field names are a stable API surface: the HTTP server and
// the /metrics encoder both serve this snapshot shape, so renaming a
// tag is a breaking change for API consumers (TestSnapshotJSONStable
// pins them).
type Stats struct {
	// Frames is the number of records pushed.
	Frames uint64 `json:"frames"`
	// DroppedFrames is the number of observations discarded by the
	// sharded engine's Drop backpressure policy. Always 0 for the
	// serial Engine.
	DroppedFrames uint64 `json:"dropped_frames"`
	// WindowsClosed is the number of detection windows emitted.
	WindowsClosed uint64 `json:"windows_closed"`
	// LiveSenders is the number of distinct senders with observations
	// in the currently open window (summed across shards).
	LiveSenders int `json:"live_senders"`
	// Candidates, Matched, Unknown and Dropped count the per-window
	// verdicts emitted so far; Candidates = Matched + Unknown in every
	// snapshot. Dropped counts below-minimum and evicted senders.
	Candidates uint64 `json:"candidates"`
	Matched    uint64 `json:"matched"`
	Unknown    uint64 `json:"unknown"`
	Dropped    uint64 `json:"dropped"`
	// Evicted counts the senders evicted under Options.Limits (a subset
	// of Dropped).
	Evicted uint64 `json:"evicted"`
	// Elapsed is the wall-clock time since the first push, in
	// nanoseconds on the wire; FramesPerSec is Frames over Elapsed.
	Elapsed      time.Duration `json:"elapsed_ns"`
	FramesPerSec float64       `json:"frames_per_sec"`
	// Index describes the installed database's compiled match index
	// (aggregated across members on an ensemble engine); Enabled false
	// means matching runs the dense exhaustive kernels.
	Index core.IndexStats `json:"index"`
}

// Engine is a push-based fingerprinting pipeline. Push, PushTrace,
// Flush and Close must be called from a single goroutine; SetDB, DB and
// Stats are safe from any goroutine at any time.
//
// An engine runs in one of two modes, fixed at construction: the
// single-parameter mode (New) matches each window against a CompiledDB,
// the ensemble mode (NewEnsemble) extracts every member parameter in
// one pass and matches against a CompiledEnsemble, emitting fused plus
// per-member score vectors. Apart from the database type the contract
// is identical.
type Engine struct {
	cfg   core.Config
	cfgs  []core.Config // ensemble members; nil in single-parameter mode
	multi bool
	opts  Options
	acc   *core.WindowAccumulator
	db    atomic.Pointer[core.CompiledDB]
	edb   atomic.Pointer[core.CompiledEnsemble]

	closed  bool
	startNs atomic.Int64 // wall clock of the first push, unix ns

	frames atomic.Uint64

	// The window-scoped counters form one consistent snapshot group
	// (see Stats); they are only touched under mu.
	mu      sync.Mutex
	windows uint64
	matched uint64
	unknown uint64
	dropped uint64
	evicted uint64

	health healthState
}

// New creates an engine extracting signatures under cfg and matching
// each window's candidates against db (which may be nil to run
// extraction-only: every candidate is emitted as UnknownDevice until a
// database is installed with SetDB). A non-nil db must have been
// compiled from the same parameter and bin shape as cfg.
func New(cfg core.Config, db *core.CompiledDB, opts Options) (*Engine, error) {
	if opts.Window == 0 {
		opts.Window = core.DefaultWindow
	}
	e := &Engine{opts: opts}
	e.acc = core.NewWindowAccumulator(opts.Window, cfg, e.handleWindow)
	e.acc.SetLimits(opts.Limits)
	e.acc.SetClusterer(opts.Cluster)
	e.cfg = e.acc.Config() // defaults materialised
	if opts.Trainer != nil {
		if db != nil {
			return nil, fmt.Errorf("engine: both db and Options.Trainer set — the trainer owns the reference set (seed it with NewTrainerFrom)")
		}
		if err := opts.Trainer.bind(e, e.cfg); err != nil {
			return nil, err
		}
		db = opts.Trainer.Compiled()
	}
	if err := e.SetDB(db); err != nil {
		return nil, err
	}
	return e, nil
}

// NewEnsemble creates a multi-parameter engine: every member parameter
// is extracted in one pass over the stream (one window clock, one
// shared inter-arrival context, one signature per member per sender)
// and each closed window's candidates are fuse-matched against edb
// (which may be nil to run extraction-only until SetEnsembleDB installs
// one). Member configurations must carry distinct parameters; a
// non-nil edb must have been compiled from the same parameters and bin
// shapes. Verdict events carry the fused score vector plus the
// per-member vectors (Scores / ParamScores) and per-member signatures
// (Sigs).
func NewEnsemble(cfgs []core.Config, edb *core.CompiledEnsemble, opts Options) (*Engine, error) {
	if opts.Window == 0 {
		opts.Window = core.DefaultWindow
	}
	e := &Engine{opts: opts, multi: true}
	acc, err := core.NewEnsembleAccumulator(opts.Window, cfgs, e.handleWindow)
	if err != nil {
		return nil, err
	}
	e.acc = acc
	e.acc.SetLimits(opts.Limits)
	e.acc.SetClusterer(opts.Cluster)
	e.cfgs = e.acc.Configs() // defaults materialised
	e.cfg = e.cfgs[0]
	if opts.Trainer != nil {
		if edb != nil {
			return nil, fmt.Errorf("engine: both db and Options.Trainer set — the trainer owns the reference set (seed it with NewEnsembleTrainerFrom)")
		}
		if err := opts.Trainer.bindEnsemble(e, e.cfgs); err != nil {
			return nil, err
		}
		edb = opts.Trainer.CompiledEnsemble()
	}
	if err := e.SetEnsembleDB(edb); err != nil {
		return nil, err
	}
	return e, nil
}

// Config returns the extraction configuration with defaults materialised
// (the first member's, in ensemble mode).
func (e *Engine) Config() core.Config { return e.cfg }

// Configs returns every member configuration with defaults
// materialised, or nil for a single-parameter engine.
func (e *Engine) Configs() []core.Config { return e.acc.Configs() }

// checkShape verifies a database was compiled from the engine's
// parameter and bin shape.
func checkShape(cfg core.Config, db *core.CompiledDB) error {
	if db != nil {
		if c := db.Config(); c.Param != cfg.Param || c.Bins != cfg.Bins {
			return fmt.Errorf("engine: database shape %v/%v does not match engine %v/%v",
				c.Param, c.Bins, cfg.Param, cfg.Bins)
		}
	}
	return nil
}

// SetDB atomically swaps the reference database the next closed window
// is matched against — live retraining without dropping the stream. A
// nil db switches the engine to extraction-only. The database must
// share the engine's parameter and bin shape; on mismatch the previous
// database stays installed. Ensemble engines swap through
// SetEnsembleDB instead.
func (e *Engine) SetDB(db *core.CompiledDB) error {
	if e.multi {
		return fmt.Errorf("engine: ensemble engine takes a compiled ensemble (SetEnsembleDB)")
	}
	if err := checkShape(e.cfg, db); err != nil {
		return err
	}
	e.db.Store(db)
	return nil
}

// DB returns the currently installed reference database, or nil (always
// nil on an ensemble engine; see EnsembleDB).
func (e *Engine) DB() *core.CompiledDB { return e.db.Load() }

// checkEnsembleShape verifies a compiled ensemble was built from the
// engine's member parameters and bin shapes.
func checkEnsembleShape(cfgs []core.Config, edb *core.CompiledEnsemble) error {
	if edb == nil {
		return nil
	}
	got := edb.Configs()
	if len(got) != len(cfgs) {
		return fmt.Errorf("engine: ensemble of %d members does not match engine's %d", len(got), len(cfgs))
	}
	for i := range cfgs {
		if got[i].Param != cfgs[i].Param || got[i].Bins != cfgs[i].Bins {
			return fmt.Errorf("engine: ensemble member %d shape %v/%v does not match engine %v/%v",
				i, got[i].Param, got[i].Bins, cfgs[i].Param, cfgs[i].Bins)
		}
	}
	return nil
}

// SetEnsembleDB atomically swaps the compiled ensemble the next closed
// window is fuse-matched against — SetDB for the ensemble mode. A nil
// edb switches the engine to extraction-only; a mismatched one leaves
// the previous ensemble installed.
func (e *Engine) SetEnsembleDB(edb *core.CompiledEnsemble) error {
	if !e.multi {
		return fmt.Errorf("engine: single-parameter engine takes a compiled database (SetDB)")
	}
	if err := checkEnsembleShape(e.cfgs, edb); err != nil {
		return err
	}
	e.edb.Store(edb)
	return nil
}

// EnsembleDB returns the currently installed compiled ensemble, or nil
// (always nil on a single-parameter engine).
func (e *Engine) EnsembleDB() *core.CompiledEnsemble { return e.edb.Load() }

// Push ingests one record. The record is not retained. Crossing a
// window boundary synchronously matches and emits the completed window
// before the record is accounted to the new one. Push panics after
// Close.
//
//fp:hotpath test=TestEnginePushZeroAllocs
func (e *Engine) Push(rec *capture.Record) {
	if e.closed {
		panic("engine: Push after Close")
	}
	if e.frames.Add(1) == 1 {
		e.startNs.Store(time.Now().UnixNano()) //fp:wallclock throughput-stats epoch, read once on the first frame; no output depends on it
	}
	e.acc.Push(rec)
}

// PushTrace replays a materialised trace through the push path — the
// batch adapter. Output is bit-identical to pushing the records one at
// a time.
func (e *Engine) PushTrace(tr *capture.Trace) {
	for i := range tr.Records {
		e.Push(&tr.Records[i])
	}
}

// Flush closes the currently open detection window early, emitting its
// events. The next pushed record opens a fresh window on the same grid.
// Flushing exactly once, at stream end, keeps the event stream
// bit-identical to the batch pipeline over the same records.
func (e *Engine) Flush() {
	e.acc.Flush()
}

// Close flushes the open window and seals the engine; further pushes
// panic. Close is idempotent.
func (e *Engine) Close() {
	if !e.closed {
		e.acc.Flush()
		e.closed = true
	}
}

// Stats returns a snapshot of the engine's counters (see the Stats type
// for the consistency semantics).
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	s := Stats{
		WindowsClosed: e.windows,
		Matched:       e.matched,
		Unknown:       e.unknown,
		Dropped:       e.dropped,
		Evicted:       e.evicted,
	}
	e.mu.Unlock()
	s.Candidates = s.Matched + s.Unknown
	s.Frames = e.frames.Load()
	s.LiveSenders = e.acc.LiveSenders()
	if e.multi {
		if edb := e.edb.Load(); edb != nil {
			s.Index = edb.IndexStats()
		}
	} else if db := e.db.Load(); db != nil {
		s.Index = db.IndexStats()
	}
	if ns := e.startNs.Load(); ns != 0 {
		s.Elapsed = time.Duration(time.Now().UnixNano() - ns) //fp:wallclock stats-only elapsed/throughput; no event output depends on it
		if s.Elapsed > 0 {
			s.FramesPerSec = float64(s.Frames) / s.Elapsed.Seconds()
		}
	}
	return s
}

// Health snapshots the engine's supervision state (recovered panics in
// window delivery and trainer steps). Safe from any goroutine.
func (e *Engine) Health() Health { return e.health.snapshot() }

// handleWindow matches one closed window's candidates — fused in
// ensemble mode — and emits its events. It runs on the pushing
// goroutine, under panic supervision: a panic — a faulting sink, a
// matching fault — loses that window's remaining events (counted in
// Health as an engine panic) but not the stream; the accumulator has
// already rolled to the next window and Push keeps working.
//
//fp:coldpath runs once per closed window; matching and emission amortise across the window's frames
func (e *Engine) handleWindow(w *core.WindowResult) {
	defer func() {
		if r := recover(); r != nil {
			e.health.recordPanic(e.opts.HealthSink, "engine", -1, r)
		}
	}()
	sink := e.opts.Sink
	matchedN, unknownN := 0, 0
	if e.multi {
		edb := e.edb.Load()
		var fused [][]core.Score
		var perParam [][][]core.Score
		if edb != nil && edb.Len() > 0 && len(w.Multi) > 0 {
			// Rows share per-window backing allocations and are handed
			// off to the events, never reused, so receivers may retain
			// them.
			if e.opts.TopK > 0 {
				fused = edb.TopKAllWorkers(w.Multi, e.opts.TopK, e.opts.Workers)
			} else {
				fused, perParam = edb.MatchAllWorkers(w.Multi, e.opts.Workers)
			}
		}
		for i := range w.Multi {
			var f []core.Score
			var pp [][]core.Score
			if fused != nil {
				f = fused[i]
			}
			if perParam != nil {
				pp = perParam[i]
			}
			if emitVerdictMulti(sink, e.opts.Threshold, &w.Multi[i], f, pp) {
				matchedN++
			} else {
				unknownN++
			}
		}
	} else {
		db := e.db.Load()
		var rows [][]core.Score
		if db != nil && db.Len() > 0 && len(w.Candidates) > 0 {
			// Rows share one backing allocation per window and are handed
			// off to the events, never reused, so receivers may retain them.
			if e.opts.TopK > 0 {
				rows = db.TopKAllWorkers(w.Candidates, e.opts.TopK, e.opts.Workers)
			} else {
				rows = db.MatchAllWorkers(w.Candidates, e.opts.Workers)
			}
		}
		for i := range w.Candidates {
			var scores []core.Score
			if rows != nil {
				scores = rows[i]
			}
			if emitVerdict(sink, e.opts.Threshold, &w.Candidates[i], scores) {
				matchedN++
			} else {
				unknownN++
			}
		}
	}

	evictedN := 0
	for _, d := range w.Dropped {
		if d.Evicted {
			evictedN++
		}
		if sink != nil {
			sink.HandleEvent(CandidateDropped{
				Window: w.Index, Addr: d.Addr,
				Observations: d.Observations, Minimum: e.cfg.MinObservations,
				Evicted: d.Evicted,
			})
		}
	}
	// Evictions beyond the per-window record cap carry no individual
	// event but count everywhere a total does.
	candsN := len(w.Candidates) + len(w.Multi)
	droppedN := len(w.Dropped) + int(w.EvictedSilently)
	evictedN += int(w.EvictedSilently)
	if sink != nil {
		sink.HandleEvent(WindowClosed{
			Window: w.Index, Start: w.Start, End: w.End, Frames: w.Frames,
			Senders:    candsN + droppedN,
			Candidates: candsN,
			Matched:    matchedN, Unknown: unknownN, Dropped: droppedN,
		})
	}

	e.mu.Lock()
	e.windows++
	e.matched += uint64(matchedN)
	e.unknown += uint64(unknownN)
	e.dropped += uint64(droppedN)
	e.evicted += uint64(evictedN)
	e.mu.Unlock()

	// Enrollment happens after the window's own events: the trainer's
	// promotions swap the database the *next* window is matched against,
	// which is exactly per-window batch training's visibility. The
	// trainer step is supervised separately, so a panic in it loses this
	// window's enrollment (a trainer fault in Health) but not the window.
	if tr := e.opts.Trainer; tr != nil {
		func() {
			defer func() {
				if r := recover(); r != nil {
					e.health.recordPanic(e.opts.HealthSink, "trainer", -1, r)
				}
			}()
			emit := func(ev Event) {
				if sink != nil {
					sink.HandleEvent(ev)
				}
			}
			if e.multi {
				tr.observeWindowMulti(w.Index, w.Multi, emit)
			} else {
				tr.observeWindow(w.Index, w.Candidates, emit)
			}
		}()
	}
}
