package engine

import (
	"cmp"
	"fmt"
	"slices"
	"sync"

	"dot11fp/internal/core"
	"dot11fp/internal/dot11"
)

// Trainer is the online-enrollment subsystem: it closes the loop from
// candidates observed in the live stream back into the reference
// database, so a cold-started monitor populates its own references
// without ever materialising a training trace.
//
// The trainer consumes closed detection windows — inline via
// Options.Trainer / ShardedOptions.Trainer (the precise mode: window k's
// promotions are visible to window k+1's matching on both engines), or
// from an engine's event stream via Tap — and accumulates each unknown
// sender's window signatures over the enrollment horizon. When a sender
// completes the horizon, the enrollment policy (auto, confirm-callback,
// deny-list) decides its fate; completed signatures are promoted into
// the trainer's private copy-on-write core.Database, compiled, and
// hot-swapped into the bound engine with SetDB. Each promotion batch
// emits DeviceEnrolled events (one per device), EnrollmentProgress for
// senders still accumulating, and exactly one DBSwapped.
//
// A trainer created with NewEnsembleTrainer / NewEnsembleTrainerFrom
// serves an ensemble engine instead: it accumulates one signature per
// member parameter per pending sender and promotes all member
// signatures atomically (Ensemble.Add — a live-enrolled ensemble can
// never hold a partially-known device), hot-swapping one compiled
// ensemble per promotion batch through SetEnsembleDB.
//
// Accumulation reuses the window signatures produced by
// core.WindowAccumulator / core.SenderTable, so extraction stays a
// single code path: a database enrolled live over the first K windows of
// a stream (Horizon 1, Update true) is bit-identical — same references,
// same MatchAll scores — to one batch-trained per window on the same
// prefix (TestTrainerLiveEqualsBatch).
//
// A Trainer serves one engine at a time. Its mutating entry points run
// on the engine's event-delivery goroutine; Stats, Database and
// Compiled are safe from any goroutine.
type Trainer struct {
	mu           sync.Mutex
	cfg          core.Config
	cfgs         []core.Config // ensemble members; nil in single mode
	multi        bool
	opts         TrainerOptions
	db           *core.Database // single mode: private working copy
	ens          *core.Ensemble // ensemble mode: private working copy
	pending      map[dot11.Addr]*pendingEnroll
	denied       map[dot11.Addr]bool
	evictScratch []pendingEvictCand
	target       DBSetter         // single mode engine
	etarget      EnsembleDBSetter // ensemble mode engine
	stats        TrainerStats
}

// DBSetter is the hot-swap half of an engine as the trainer sees it;
// *Engine and *Sharded both implement it.
type DBSetter interface {
	SetDB(*core.CompiledDB) error
}

// EnsembleDBSetter is the hot-swap half of an ensemble engine; *Engine
// and *Sharded both implement it (the call fails on engines built in
// single-parameter mode).
type EnsembleDBSetter interface {
	SetEnsembleDB(*core.CompiledEnsemble) error
}

// EnrollPolicy selects what the trainer does with a sender that has
// completed its enrollment horizon.
type EnrollPolicy uint8

const (
	// EnrollAuto promotes every completed sender into the references.
	EnrollAuto EnrollPolicy = iota
	// EnrollConfirm asks TrainerOptions.Decide (or the boolean Confirm)
	// before promoting. A rejected sender is remembered and never
	// offered again; a deferred one stays pending. With neither callback
	// set nothing is ever promoted.
	EnrollConfirm
)

// EnrollDecision is the three-way verdict of TrainerOptions.Decide on a
// sender that completed its enrollment horizon.
type EnrollDecision uint8

const (
	// DecideDefer keeps the sender pending: it continues accumulating
	// and is offered again at its next candidate window. This is the
	// natural return for an out-of-band approval flow (e.g. an operator
	// confirming over the HTTP API) that has not answered yet.
	DecideDefer EnrollDecision = iota
	// DecideApprove promotes the sender into the references now.
	DecideApprove
	// DecideReject permanently denies the sender: dropped from pending,
	// never offered again (same memory as the deny list).
	DecideReject
)

// PendingEnrollment is the trainer's view of one not-yet-enrolled
// sender, handed to the Confirm callback.
type PendingEnrollment struct {
	Addr dot11.Addr
	// Windows is the number of detection windows the sender has been a
	// candidate in; Observations the observations accumulated across
	// them (the weakest member's count for an ensemble trainer — the
	// same count the MinObservations bar gates on).
	Windows      int
	Observations uint64
	// Sig is the accumulated training signature (single-parameter
	// trainers; an ensemble trainer hands Sigs instead). The callback
	// may inspect it but must not retain or mutate it — on approval it
	// becomes the reference.
	Sig *core.Signature
	// Sigs are the per-member training signatures of an ensemble
	// trainer, aligned with the ensemble's parameters (nil otherwise).
	Sigs []*core.Signature
}

// TrainerOptions parameterises a Trainer.
type TrainerOptions struct {
	// Horizon is the enrollment horizon in detection windows: a sender
	// must have been a candidate (cleared the per-window
	// minimum-observation rule) in at least this many windows before it
	// is promoted. Zero selects 1 — enroll at the first window.
	Horizon int
	// MinObservations additionally requires this many observations
	// accumulated across the horizon before promotion. Zero imposes no
	// bar beyond the per-window rule candidates already cleared. An
	// ensemble trainer applies the bar to every member — the weakest
	// member's count must clear it, so a fused reference is never
	// promoted on the strength of one parameter alone.
	MinObservations uint64
	// Policy selects auto-enrollment (default) or confirm-before-enroll.
	Policy EnrollPolicy
	// Confirm decides EnrollConfirm promotions. It is called
	// synchronously on the engine's event-delivery goroutine and must
	// not call back into the trainer or the engine. A false return is
	// remembered: the sender is dropped from pending and never offered
	// again.
	Confirm func(PendingEnrollment) bool
	// Decide is the three-way form of Confirm — approve, reject, or
	// defer (keep pending and ask again next window). When set it takes
	// precedence over Confirm. Same calling contract: synchronous on the
	// event-delivery goroutine, no re-entry into trainer or engine. A
	// deferred sender emits EnrollmentProgress for the window, so the
	// stream still accounts for it.
	Decide func(PendingEnrollment) EnrollDecision
	// Deny lists senders that must never be enrolled (nor merged into
	// existing references) — e.g. the monitor's own infrastructure.
	Deny []dot11.Addr
	// Update keeps enrolled references learning: every window an
	// already-enrolled sender appears as a candidate, its window
	// signature is merged into the reference and the refresh is included
	// in that window's swap. Off (the default), references freeze at
	// enrollment.
	Update bool
	// MaxPending bounds the not-yet-enrolled accumulation state: beyond
	// the cap, the pending sender not seen for the most windows (ties by
	// ascending address) is evicted — under MAC randomization the
	// pending set would otherwise grow with every address that ever
	// cleared one window. Zero is unbounded.
	MaxPending int
}

// TrainerStats is a point-in-time snapshot of a trainer's counters.
//
// The JSON field names are a stable API surface shared by the HTTP
// server and the /metrics encoder (TestSnapshotJSONStable pins them).
type TrainerStats struct {
	// Refs is the current reference count (fully-known devices, for an
	// ensemble trainer); Pending the senders still accumulating toward
	// the horizon.
	Refs    int `json:"refs"`
	Pending int `json:"pending"`
	// Enrolled counts promotions, Updated reference refreshes (Update
	// mode), Swaps the database promotions pushed to the engine (the
	// DBSwapped version number).
	Enrolled uint64 `json:"enrolled"`
	Updated  uint64 `json:"updated"`
	Swaps    uint64 `json:"swaps"`
	// Denied counts candidate observations skipped for deny-listed or
	// confirm-rejected senders; Rejected the Confirm refusals;
	// EvictedPending the pending senders dropped by MaxPending.
	Denied         uint64 `json:"denied"`
	Rejected       uint64 `json:"rejected"`
	EvictedPending uint64 `json:"evicted_pending"`
}

// pendingEnroll is one sender accumulating toward the horizon: one
// signature per member (single-parameter trainers hold one).
type pendingEnroll struct {
	sigs       []*core.Signature
	windows    int
	lastWindow int
}

// minSigObs returns the smallest observation count across member
// signatures — the enrollment bar's view: every member must clear it.
func minSigObs(sigs []*core.Signature) uint64 {
	min := sigs[0].Observations()
	for _, sig := range sigs[1:] {
		if n := sig.Observations(); n < min {
			min = n
		}
	}
	return min
}

// maxSigObs returns the largest observation count across member
// signatures — the reporting convention shared with the engines' drop
// and verdict events.
func maxSigObs(sigs []*core.Signature) uint64 {
	var max uint64
	for _, sig := range sigs {
		if n := sig.Observations(); n > max {
			max = n
		}
	}
	return max
}

// NewTrainer creates a cold-start trainer: the reference set begins
// empty and is populated entirely by enrollment. The configuration and
// measure must match the engine the trainer is attached to.
func NewTrainer(cfg core.Config, measure core.Measure, opts TrainerOptions) *Trainer {
	return newTrainer(core.NewDatabase(cfg, measure), opts)
}

// NewTrainerFrom creates a trainer seeded with an existing database —
// warm start: known references keep matching while unknown senders
// enroll around them. The seed is deep-copied (copy-on-write); the
// caller's database is never touched.
func NewTrainerFrom(seed *core.Database, opts TrainerOptions) *Trainer {
	return newTrainer(seed.Clone(), opts)
}

func newTrainer(db *core.Database, opts TrainerOptions) *Trainer {
	t := newTrainerCommon(opts)
	t.cfg = db.Config()
	t.db = db
	return t
}

// NewEnsembleTrainer creates a cold-start trainer for an ensemble
// engine: one member database per configuration, all beginning empty,
// populated by atomic multi-parameter enrollment. Member configurations
// must carry distinct parameters.
func NewEnsembleTrainer(cfgs []core.Config, measure core.Measure, opts TrainerOptions) (*Trainer, error) {
	ens, err := core.NewEnsemble(measure, cfgs...)
	if err != nil {
		return nil, err
	}
	return newEnsembleTrainer(ens, opts), nil
}

// NewEnsembleTrainerFrom creates an ensemble trainer seeded with an
// existing ensemble — warm start, deep-copied. A seed holding
// partially-known devices (enrolled in some members but not all — see
// Ensemble.Partial) is refused: such devices can never match, and the
// trainer would never repair them either, because their addresses are
// already "known" to some member and so never re-enter enrollment.
func NewEnsembleTrainerFrom(seed *core.Ensemble, opts TrainerOptions) (*Trainer, error) {
	if partial := seed.Partial(); len(partial) > 0 {
		return nil, fmt.Errorf("engine: ensemble seed holds %d partially-enrolled devices (first %v) — not matchable and not repairable; re-train or drop them first",
			len(partial), partial[0])
	}
	return newEnsembleTrainer(seed.Clone(), opts), nil
}

func newEnsembleTrainer(ens *core.Ensemble, opts TrainerOptions) *Trainer {
	t := newTrainerCommon(opts)
	t.multi = true
	t.ens = ens
	t.cfgs = ens.Configs()
	t.cfg = t.cfgs[0]
	return t
}

func newTrainerCommon(opts TrainerOptions) *Trainer {
	if opts.Horizon <= 0 {
		opts.Horizon = 1
	}
	t := &Trainer{
		opts:    opts,
		pending: make(map[dot11.Addr]*pendingEnroll),
		denied:  make(map[dot11.Addr]bool),
	}
	for _, addr := range opts.Deny {
		t.denied[addr] = true
	}
	return t
}

// Config returns the trainer's extraction configuration (the first
// member's, for an ensemble trainer).
func (t *Trainer) Config() core.Config { return t.cfg }

// Configs returns the member configurations of an ensemble trainer, or
// nil for a single-parameter one.
func (t *Trainer) Configs() []core.Config {
	if !t.multi {
		return nil
	}
	out := make([]core.Config, len(t.cfgs))
	copy(out, t.cfgs)
	return out
}

// bind attaches the trainer to the engine it hot-swaps. One engine per
// trainer: a second bind to a different target fails.
func (t *Trainer) bind(target DBSetter, cfg core.Config) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.multi {
		return fmt.Errorf("engine: ensemble trainer attached to a single-parameter engine")
	}
	if t.cfg.Param != cfg.Param || t.cfg.Bins != cfg.Bins {
		return fmt.Errorf("engine: trainer shape %v/%v does not match engine %v/%v",
			t.cfg.Param, t.cfg.Bins, cfg.Param, cfg.Bins)
	}
	if t.target != nil && t.target != target {
		return fmt.Errorf("engine: trainer is already attached to another engine")
	}
	t.target = target
	return nil
}

// bindEnsemble is bind for the ensemble mode.
func (t *Trainer) bindEnsemble(target EnsembleDBSetter, cfgs []core.Config) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.multi {
		return fmt.Errorf("engine: single-parameter trainer attached to an ensemble engine")
	}
	if len(t.cfgs) != len(cfgs) {
		return fmt.Errorf("engine: trainer ensemble of %d members does not match engine's %d", len(t.cfgs), len(cfgs))
	}
	for i := range cfgs {
		if t.cfgs[i].Param != cfgs[i].Param || t.cfgs[i].Bins != cfgs[i].Bins {
			return fmt.Errorf("engine: trainer member %d shape %v/%v does not match engine %v/%v",
				i, t.cfgs[i].Param, t.cfgs[i].Bins, cfgs[i].Param, cfgs[i].Bins)
		}
	}
	if t.etarget != nil && t.etarget != target {
		return fmt.Errorf("engine: trainer is already attached to another engine")
	}
	t.etarget = target
	return nil
}

// Bind attaches the trainer to the engine it should hot-swap, for the
// Tap (event-stream) mode, and installs the trainer's current compiled
// references into it — which also validates the shapes for real: a
// trainer whose parameter or bins mismatch the engine fails here, at
// attach time, instead of silently failing every later swap. An
// ensemble trainer's target must implement EnsembleDBSetter (both
// engines do; the ensemble-mode SetEnsembleDB is the call that must
// succeed). The inline mode — Options.Trainer / ShardedOptions.Trainer
// — binds automatically.
func (t *Trainer) Bind(target DBSetter) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.multi {
		et, ok := target.(EnsembleDBSetter)
		if !ok {
			return fmt.Errorf("engine: ensemble trainer needs an engine with SetEnsembleDB")
		}
		if t.etarget != nil && t.etarget != et {
			return fmt.Errorf("engine: trainer is already attached to another engine")
		}
		if err := et.SetEnsembleDB(t.ens.Compile()); err != nil {
			return err
		}
		t.etarget = et
		return nil
	}
	if t.target != nil && t.target != target {
		return fmt.Errorf("engine: trainer is already attached to another engine")
	}
	if err := target.SetDB(t.db.Compile()); err != nil {
		return err
	}
	t.target = target
	return nil
}

// Compiled returns the latest compiled snapshot of the trainer's
// reference database (possibly empty, for a cold start; nil for an
// ensemble trainer, which compiles through CompiledEnsemble).
func (t *Trainer) Compiled() *core.CompiledDB {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.multi {
		return nil
	}
	return t.db.Compile()
}

// CompiledEnsemble returns the latest compiled snapshot of an ensemble
// trainer's references (nil for a single-parameter trainer).
func (t *Trainer) CompiledEnsemble() *core.CompiledEnsemble {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.multi {
		return nil
	}
	return t.ens.Compile()
}

// Database returns a deep copy of the trainer's working database — the
// checkpoint entry point (nil for an ensemble trainer; see Ensemble).
// The clone is taken under the trainer's lock, so it is a consistent
// snapshot even while enrollment is running; serialise it with
// Database.SaveBinary (fast) or Save (interop JSON).
func (t *Trainer) Database() *core.Database {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.multi {
		return nil
	}
	return t.db.Clone()
}

// Ensemble returns a deep copy of an ensemble trainer's working
// references — the fused checkpoint entry point (nil for a
// single-parameter trainer); serialise it with Ensemble.SaveBinary.
func (t *Trainer) Ensemble() *core.Ensemble {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.multi {
		return nil
	}
	return t.ens.Clone()
}

// SetIndexing forwards the match-index mode to the trainer's working
// references (see core.IndexMode), so trainer-owned databases compile
// under the operator's choice — including cold starts, where no seed
// database exists to carry the mode in. Safe at any time; the next
// compile or hot-swap honours the new mode.
func (t *Trainer) SetIndexing(mode core.IndexMode) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.multi {
		t.ens.SetIndexing(mode)
		return
	}
	t.db.SetIndexing(mode)
}

// Stats returns a snapshot of the trainer's counters.
func (t *Trainer) Stats() TrainerStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.stats
	if t.multi {
		st.Refs = t.ens.Len()
	} else {
		st.Refs = t.db.Len()
	}
	st.Pending = len(t.pending)
	return st
}

// PendingList returns a snapshot of the senders still accumulating
// toward the enrollment horizon, in ascending address order — the HTTP
// API's view of the enrollment queue. Entries carry address, window
// count and the binding (weakest-member) observation count only: Sig
// and Sigs stay nil, because the live accumulation signatures belong to
// the trainer's goroutine and must not escape. Safe from any goroutine.
func (t *Trainer) PendingList() []PendingEnrollment {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]PendingEnrollment, 0, len(t.pending))
	for addr, p := range t.pending { //fp:unordered entries are sorted by address below
		out = append(out, PendingEnrollment{
			Addr: addr, Windows: p.windows, Observations: minSigObs(p.sigs),
		})
	}
	slices.SortFunc(out, func(a, b PendingEnrollment) int {
		return addrCmp([6]byte(a.Addr), [6]byte(b.Addr))
	})
	return out
}

// refsLocked returns the current reference count; call with mu held.
func (t *Trainer) refsLocked() int {
	if t.multi {
		return t.ens.Len()
	}
	return t.db.Len()
}

// observeWindow folds one closed window's candidates into the
// enrollment state, promotes completed senders under the policy, swaps
// the bound engine's database if anything changed, and emits the
// trainer's events (progress, enrollments, then exactly one DBSwapped)
// through emit. Candidates must arrive in ascending address order —
// both engines and the batch paths emit them that way — which makes
// promotion order, and with it the reference insertion order, a
// deterministic function of the stream. observeWindowMulti is the
// ensemble form over multi-parameter candidates; the two share every
// policy decision through observeCommon.
func (t *Trainer) observeWindow(window int, cands []core.Candidate, emit func(Event)) {
	t.observeCommon(window, len(cands),
		func(i int) (dot11.Addr, []*core.Signature) {
			return dot11.Addr(cands[i].Addr), nil
		},
		func(i int) *core.Signature { return cands[i].Sig },
		emit)
}

// observeWindowMulti is observeWindow for an ensemble trainer's
// multi-parameter candidates.
func (t *Trainer) observeWindowMulti(window int, cands []core.MultiCandidate, emit func(Event)) {
	t.observeCommon(window, len(cands),
		func(i int) (dot11.Addr, []*core.Signature) {
			return dot11.Addr(cands[i].Addr), cands[i].Sigs
		},
		nil,
		emit)
}

// observeCommon is the single enrollment pipeline behind both candidate
// shapes: candAt yields candidate i's address and (ensemble mode) its
// member signatures; sigAt yields the single-parameter signature (nil
// function in ensemble mode).
func (t *Trainer) observeCommon(window, n int, candAt func(int) (dot11.Addr, []*core.Signature), sigAt func(int) *core.Signature, emit func(Event)) {
	t.mu.Lock()
	// Refresh recency for every pending sender that is a candidate in
	// this window before any MaxPending eviction runs: without this, an
	// eviction triggered early in the window would target senders whose
	// lastWindow is one behind merely because they sort later in the
	// same window's candidate list — cascading into resetting live
	// senders' accumulation instead of shedding genuinely stale ones.
	if t.opts.MaxPending > 0 {
		for i := 0; i < n; i++ {
			addr, _ := candAt(i)
			if p := t.pending[addr]; p != nil {
				p.lastWindow = window
			}
		}
	}
	var evs []Event
	// Promoted senders leave t.pending the moment they are slated, and
	// the promote list carries the *pendingEnroll itself: if a later new
	// sender in this same window triggers evictPending, a promote-slated
	// address must be neither an eviction victim nor re-looked-up as nil.
	type promotion struct {
		addr dot11.Addr
		p    *pendingEnroll
	}
	var promote []promotion
	updated := 0
	for i := 0; i < n; i++ {
		addr, candSigs := candAt(i)
		if t.denied[addr] {
			t.stats.Denied++
			continue
		}
		if t.updateKnown(addr, candSigs, sigAt, i, &updated) {
			continue
		}
		p := t.pending[addr]
		if p == nil {
			if t.opts.MaxPending > 0 && len(t.pending) >= t.opts.MaxPending {
				t.evictPending()
			}
			p = &pendingEnroll{sigs: t.newPendingSigs()}
			t.pending[addr] = p
		}
		p.windows++
		p.lastWindow = window
		if !t.mergePending(p, candSigs, sigAt, i) {
			continue // impossible by construction; never corrupt state on it
		}
		// The enrollment bar: every member must clear MinObservations
		// (a single-parameter trainer has one member). Progress events
		// and the Confirm callback report that same binding count — the
		// weakest member's — so Observations is always comparable to
		// Required; the enrolled/verdict events report the best-covered
		// member instead (how much traffic the reference froze with).
		barObs := minSigObs(p.sigs)
		if p.windows < t.opts.Horizon || barObs < t.opts.MinObservations {
			evs = append(evs, EnrollmentProgress{
				Window: window, Addr: addr,
				Windows: p.windows, Horizon: t.opts.Horizon,
				Observations: barObs, Required: t.opts.MinObservations,
			})
			continue
		}
		decision := DecideApprove
		if t.opts.Policy == EnrollConfirm {
			decision = DecideReject
			pe := PendingEnrollment{Addr: addr, Windows: p.windows, Observations: barObs}
			if t.multi {
				pe.Sigs = p.sigs
			} else {
				pe.Sig = p.sigs[0]
			}
			if cb := t.opts.Decide; cb != nil {
				decision = cb(pe)
			} else if cb := t.opts.Confirm; cb != nil {
				if cb(pe) {
					decision = DecideApprove
				}
			}
		}
		switch decision {
		case DecideApprove:
			delete(t.pending, addr)
			promote = append(promote, promotion{addr: addr, p: p})
		case DecideDefer:
			// Still pending: keep accumulating, report progress so the
			// window's event stream accounts for the sender.
			evs = append(evs, EnrollmentProgress{
				Window: window, Addr: addr,
				Windows: p.windows, Horizon: t.opts.Horizon,
				Observations: barObs, Required: t.opts.MinObservations,
			})
		default: // DecideReject
			delete(t.pending, addr)
			t.denied[addr] = true
			t.stats.Rejected++
		}
	}

	for _, pr := range promote {
		var err error
		if t.multi {
			err = t.ens.Add(pr.addr, pr.p.sigs) // all members or none: never a partial reference
		} else {
			err = t.db.Add(pr.addr, pr.p.sigs[0])
		}
		if err != nil {
			continue // impossible by construction (shape-checked at bind)
		}
		t.stats.Enrolled++
		evs = append(evs, DeviceEnrolled{
			Window: window, Addr: pr.addr,
			Windows: pr.p.windows, Observations: maxSigObs(pr.p.sigs),
			Refs: t.refsLocked(),
		})
	}

	// A swap is claimed — Swaps counted, DBSwapped emitted — only when a
	// database was actually pushed to an engine. A Tap-attached trainer
	// whose Bind was never called still accumulates and promotes (Bind
	// installs the current references when it eventually runs), but it
	// must not report installations that never happened.
	if bound := t.target != nil || t.etarget != nil; (len(promote) > 0 || updated > 0) && bound {
		if t.multi {
			t.etarget.SetEnsembleDB(t.ens.Compile()) // shape-checked at bind; cannot fail
		} else {
			t.target.SetDB(t.db.Compile()) // shape-checked at bind; cannot fail
		}
		t.stats.Swaps++
		evs = append(evs, DBSwapped{
			Window: window, Version: t.stats.Swaps,
			Refs: t.refsLocked(), Enrolled: len(promote), Updated: updated,
		})
	}
	t.mu.Unlock()

	// Events are delivered outside the lock, so a sink may call Stats,
	// Database or Compiled without deadlocking.
	if emit != nil {
		for _, ev := range evs {
			emit(ev)
		}
	}
}

// newPendingSigs allocates the per-member accumulation signatures of a
// fresh pending sender.
func (t *Trainer) newPendingSigs() []*core.Signature {
	if t.multi {
		sigs := make([]*core.Signature, len(t.cfgs))
		for i, cfg := range t.cfgs {
			sigs[i] = core.NewSignature(cfg.Param, cfg.Bins)
		}
		return sigs
	}
	return []*core.Signature{core.NewSignature(t.cfg.Param, t.cfg.Bins)}
}

// updateKnown merges an already-enrolled candidate into its reference
// under Update mode and reports whether the candidate was a known
// reference (and so consumed). Shapes always match: the candidate came
// from an engine bound to this trainer's configuration.
func (t *Trainer) updateKnown(addr dot11.Addr, candSigs []*core.Signature, sigAt func(int) *core.Signature, i int, updated *int) bool {
	if t.multi {
		refs := t.ens.Signatures(addr)
		if refs == nil {
			return false
		}
		if t.opts.Update {
			ok := true
			for m := range refs {
				if err := refs[m].Merge(candSigs[m]); err != nil {
					ok = false
				}
			}
			if ok {
				*updated++
				t.stats.Updated++
			}
		}
		return true
	}
	ref := t.db.Signature(addr)
	if ref == nil {
		return false
	}
	if t.opts.Update {
		if err := ref.Merge(sigAt(i)); err == nil {
			*updated++
			t.stats.Updated++
		}
	}
	return true
}

// mergePending folds a candidate's window signature(s) into the pending
// accumulation, reporting success.
func (t *Trainer) mergePending(p *pendingEnroll, candSigs []*core.Signature, sigAt func(int) *core.Signature, i int) bool {
	if t.multi {
		for m := range p.sigs {
			if err := p.sigs[m].Merge(candSigs[m]); err != nil {
				return false
			}
		}
		return true
	}
	return p.sigs[0].Merge(sigAt(i)) == nil
}

// pendingEvictCand is the reusable sort record of the pending-eviction
// scan.
type pendingEvictCand struct {
	addr       dot11.Addr
	lastWindow int
}

// evictPending drops the least-recently-seen eighth of MaxPending (at
// least one pending sender) per scan — batched like core.SenderTable's
// cap eviction, so MAC-randomization churn pays one O(n log n) scan per
// batch instead of per over-cap insertion. Ties on last-seen window
// break by ascending address, keeping eviction deterministic, like
// every other bounded-state decision in the pipeline.
func (t *Trainer) evictPending() {
	cands := t.evictScratch[:0]
	for addr, p := range t.pending { //fp:unordered candidates are sorted by (lastWindow, addr) below
		cands = append(cands, pendingEvictCand{addr: addr, lastWindow: p.lastWindow})
	}
	slices.SortFunc(cands, func(a, b pendingEvictCand) int {
		if a.lastWindow != b.lastWindow {
			return cmp.Compare(a.lastWindow, b.lastWindow)
		}
		return addrCmp([6]byte(a.addr), [6]byte(b.addr))
	})
	k := t.opts.MaxPending / 8
	if k < 1 {
		k = 1
	}
	if k > len(cands) {
		k = len(cands)
	}
	for _, c := range cands[:k] {
		delete(t.pending, c.addr)
		t.stats.EvictedPending++
	}
	t.evictScratch = cands[:0] // keep the grown buffer
}

// Tap returns a sink that feeds the trainer from an engine's event
// stream and forwards every event — the engine's first, then the
// trainer's own — to next (which may be nil to consume silently). Use
// Bind to point the trainer at the engine to hot-swap: until Bind runs
// the trainer accumulates and promotes into its private database but
// claims no swaps — no DBSwapped, Stats().Swaps stays zero. Unlike the
// inline mode, the tap observes windows only as their events are
// delivered; on the sharded engine, whose shards match ahead of event
// delivery, a promotion may then reach matching one window later than
// inline attachment would — prefer ShardedOptions.Trainer when the
// exact swap boundary matters.
func (t *Trainer) Tap(next Sink) Sink {
	return &tapSink{t: t, next: next}
}

// tapSink reconstructs windows from the event stream: verdict events
// carry the candidates (in ascending address order), WindowClosed marks
// the boundary. Ensemble engines' verdicts carry Sigs and feed the
// multi-parameter observation path.
type tapSink struct {
	t    *Trainer
	next Sink
	buf  []core.Candidate
	mbuf []core.MultiCandidate
}

// HandleEvent implements Sink.
//
//fp:mayblock trainer-owned tap: observeWindow* re-enters the Trainer, which drives its engine synchronously from Train — no other pusher exists
func (s *tapSink) HandleEvent(ev Event) {
	if s.next != nil {
		s.next.HandleEvent(ev)
	}
	switch ev := ev.(type) {
	case CandidateMatched:
		s.buffer(ev.Window, ev.Addr, ev.Sig, ev.Sigs)
	case UnknownDevice:
		s.buffer(ev.Window, ev.Addr, ev.Sig, ev.Sigs)
	case WindowClosed:
		emit := func(Event) {}
		if s.next != nil {
			emit = s.next.HandleEvent
		}
		if s.t.multi {
			s.t.observeWindowMulti(ev.Window, s.mbuf, emit)
		} else {
			s.t.observeWindow(ev.Window, s.buf, emit)
		}
		s.buf = s.buf[:0]
		s.mbuf = s.mbuf[:0]
	}
}

// buffer queues one verdict's candidate in the shape the trainer runs
// in.
func (s *tapSink) buffer(window int, addr dot11.Addr, sig *core.Signature, sigs []*core.Signature) {
	if s.t.multi {
		if sigs != nil {
			s.mbuf = append(s.mbuf, core.MultiCandidate{Addr: [6]byte(addr), Window: window, Sigs: sigs})
		}
		return
	}
	if sig != nil {
		s.buf = append(s.buf, core.Candidate{Addr: [6]byte(addr), Window: window, Sig: sig})
	}
}
