package engine_test

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dot11fp/internal/capture"
	"dot11fp/internal/core"
	"dot11fp/internal/dot11"
	"dot11fp/internal/engine"
)

// churnStream synthesises the soak workload: a 60-second (record time)
// channel where a small stable population transmits steadily while
// 100k single-shot randomized MACs churn through — the
// MAC-randomization regime SenderLimits and MaxPending exist for.
// Deterministic (fixed seed), time-sorted.
func churnStream(stable, churn int) []capture.Record {
	const span = 60_000_000 // 60 s in µs
	rng := rand.New(rand.NewSource(7))
	total := stable*2000 + churn
	recs := make([]capture.Record, 0, total)
	step := int64(span / total)
	t := int64(0)
	churnLeft := churn
	for i := 0; i < total; i++ {
		t += step + int64(rng.Intn(int(step)+1)) - step/2
		rec := capture.Record{
			T: t, Receiver: apX, Class: dot11.ClassData,
			RateMbps: 24, FCSOK: true,
		}
		// Interleave: every (total/churn)-ish record is a churn MAC.
		if churnLeft > 0 && rng.Intn(total-i) < churnLeft {
			churnLeft--
			var addr dot11.Addr
			addr[0] = 0x02 // locally administered, like real randomization
			for b := 1; b < 6; b++ {
				addr[b] = byte(rng.Intn(256))
			}
			rec.Sender = addr
			rec.Size = 100 + rng.Intn(1000)
		} else {
			s := rng.Intn(stable)
			rec.Sender = dot11.LocalAddr(uint64(s + 1))
			rec.Size = 200 + 16*s + rng.Intn(32) // size fingerprint per sender
		}
		recs = append(recs, rec)
	}
	return recs
}

// TestSoakShardedEnrollChurn is the soak satellite: a 60s-equivalent
// sharded run under 100k randomized-MAC churn with bounded sender
// state AND live enrollment active, asserting bounded sender counts,
// monotonic and internally consistent Stats under concurrent
// scraping, and zero dropped frames in Block mode. Runs under -race in
// CI; skipped with -short.
func TestSoakShardedEnrollChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	const (
		stable     = 24
		churn      = 100_000
		shards     = 4
		maxSenders = 512
		maxPending = 1024
	)
	recs := churnStream(stable, churn)
	cfg := core.Config{Param: core.ParamSize, MinObservations: 50}
	trainer := engine.NewTrainer(cfg, core.MeasureCosine, engine.TrainerOptions{
		Horizon:    2,
		MaxPending: maxPending,
	})

	var swapsSeen atomic.Uint64
	perWindowSwaps := make(map[int]int)
	var sinkMu sync.Mutex
	sink := engine.SinkFunc(func(ev engine.Event) {
		if sw, ok := ev.(engine.DBSwapped); ok {
			swapsSeen.Add(1)
			sinkMu.Lock()
			perWindowSwaps[sw.Window]++
			sinkMu.Unlock()
		}
	})

	eng, err := engine.NewSharded(cfg, nil, engine.ShardedOptions{
		Window:       10 * time.Second,
		Shards:       shards,
		Backpressure: engine.Block,
		Limits:       core.SenderLimits{MaxSenders: maxSenders, IdleEvict: 5 * time.Second},
		Sink:         sink,
		Trainer:      trainer,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Concurrent scrapers: Stats must stay monotonic in its monotone
	// counters and internally consistent in every snapshot, while the
	// push path runs full speed.
	stop := make(chan struct{})
	var scrapeWG sync.WaitGroup
	for g := 0; g < 2; g++ {
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			var prev engine.Stats
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := eng.Stats()
				if st.Frames < prev.Frames || st.WindowsClosed < prev.WindowsClosed ||
					st.Candidates < prev.Candidates || st.Dropped < prev.Dropped {
					t.Errorf("stats went backwards: %+v after %+v", st, prev)
					return
				}
				if st.Candidates != st.Matched+st.Unknown {
					t.Errorf("inconsistent snapshot: %d candidates != %d matched + %d unknown",
						st.Candidates, st.Matched, st.Unknown)
					return
				}
				if st.LiveSenders > shards*maxSenders {
					t.Errorf("live senders %d exceed bound %d", st.LiveSenders, shards*maxSenders)
					return
				}
				prev = st
			}
		}()
	}

	for i := range recs {
		eng.Push(&recs[i])
	}
	eng.Close()
	close(stop)
	scrapeWG.Wait()

	st := eng.Stats()
	if st.Frames != uint64(len(recs)) {
		t.Fatalf("frames = %d, want %d", st.Frames, len(recs))
	}
	if st.DroppedFrames != 0 {
		t.Fatalf("%d frames dropped in Block mode, want 0", st.DroppedFrames)
	}
	if st.WindowsClosed == 0 || st.Evicted == 0 {
		t.Fatalf("soak run degenerate: %+v", st)
	}
	if st.LiveSenders != 0 {
		t.Fatalf("%d live senders after Close", st.LiveSenders)
	}

	ts := trainer.Stats()
	if ts.Pending > maxPending {
		t.Fatalf("pending enrollment state %d exceeds MaxPending %d", ts.Pending, maxPending)
	}
	// Single-shot churn MACs never clear the per-window minimum, so the
	// reference set must stay at the stable-population scale.
	if ts.Refs == 0 || ts.Refs > 2*stable {
		t.Fatalf("reference count %d departed from the stable population %d: %+v", ts.Refs, stable, ts)
	}
	if ts.Swaps != swapsSeen.Load() {
		t.Fatalf("%d swaps counted, %d DBSwapped events", ts.Swaps, swapsSeen.Load())
	}
	sinkMu.Lock()
	defer sinkMu.Unlock()
	for win, n := range perWindowSwaps {
		if n != 1 {
			t.Fatalf("window %d emitted %d DBSwapped events, want at most 1 per promotion batch", win, n)
		}
	}
}
