package engine

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dot11fp/internal/capture"
	"dot11fp/internal/core"
	"dot11fp/internal/dot11"
)

// Backpressure selects what the sharded engine does when a shard queue
// is full.
type Backpressure uint8

const (
	// Block makes Push wait for queue space — lossless, end-to-end flow
	// control: a slow sink ultimately slows the producer, exactly like
	// the serial Engine's synchronous delivery.
	Block Backpressure = iota
	// Drop makes Push discard observations instead of waiting, counting
	// them in Stats.DroppedFrames — bounded ingest latency under load
	// bursts for live feeds that must not stall the radio. Window
	// clocking is never dropped (dropping a close control would corrupt
	// the shard merge), so windows still close on the right boundaries;
	// dropped observations are simply missing from that window's
	// signatures (output is then no longer equivalent to the serial
	// engine). The lossless control path means a sink that stops
	// returning altogether still stalls Push at the next window
	// boundary — Drop bounds loss to data, it does not make a
	// permanently wedged sink survivable; a sink with its own overflow
	// policy (e.g. draining a ChannelSink) is the tool for that.
	Drop
)

// ShardedOptions parameterises a Sharded engine.
type ShardedOptions struct {
	// Window, Threshold and Sink mean exactly what they do in Options.
	Window    time.Duration
	Threshold float64
	Sink      Sink
	// Shards is the number of independent partitions records are hashed
	// into by sender address; 0 selects GOMAXPROCS. Each shard owns its
	// accumulator, match scratch and queue, so ingestion and matching
	// scale across cores. Shard count changes wall-clock behaviour only:
	// the merged event stream is identical for every value.
	Shards int
	// QueueLen is the per-shard queue depth in observations (rounded up
	// to whole batches); 0 selects 8192. Deeper queues absorb larger
	// bursts before the Backpressure policy engages.
	QueueLen int
	// Backpressure picks the full-queue policy: Block (default,
	// lossless) or Drop (bounded latency, counted loss).
	Backpressure Backpressure
	// TopK trims verdict events to the k best references, exactly like
	// Options.TopK: verdicts and Best stay bit-identical to the full
	// vector at every shard count, per-window match cost becomes
	// sublinear with the index enabled, and ensemble ParamScores are
	// omitted. 0 keeps the full vector.
	TopK int
	// Limits bounds each shard's sender state (see core.SenderLimits).
	// The cap applies per shard, so total signature memory is
	// O(Shards × MaxSenders); eviction is deterministic per shard but —
	// unlike everything else about shard count — which senders are
	// evicted depends on the partitioning.
	Limits core.SenderLimits
	// Cluster merges randomized-MAC senders into logical devices by
	// probe-request content, exactly like Options.Cluster. The router
	// resolves every sender before shard hashing, so all of a device's
	// rotated addresses land on — and accumulate in — one shard under
	// the canonical device address. Driven only from the Push
	// goroutine; nil disables.
	Cluster *core.Clusterer
	// Trainer enables online enrollment, exactly like Options.Trainer
	// (the engine must then be created with a nil db). Enrollment needs
	// strict window ordering — window k's promotions must be installed
	// before window k+1 is matched — and per-shard matching runs ahead
	// of the merger, so with a Trainer attached the shards skip
	// matching and the merger matches each merged window against the
	// freshly swapped database instead (fanning out across workers).
	// The event stream stays identical to the serial engine's with the
	// same Trainer settings, at every shard count.
	Trainer *Trainer
	// HealthSink receives supervision events (ComponentPanicked,
	// ShardStalled, ShardResumed). Unlike Sink it is called from
	// internal goroutines — shards, the merger, the watchdog — possibly
	// concurrently, and never interleaved with the main event stream;
	// it must not call back into the engine. nil discards the events
	// (Health still counts everything).
	HealthSink Sink
	// Watchdog enables the stall detector at this sampling interval: a
	// shard with queued batches that processes nothing across an
	// interval is reported ShardStalled (and ShardResumed when it moves
	// again). 0 disables.
	Watchdog time.Duration
	// Hooks are fault-injection/test points (see Hooks); nil — the
	// production value — costs one branch per batch.
	Hooks Hooks
}

// shardBatch is the router→shard transfer granularity: big enough to
// amortise queue synchronisation to well under a nanosecond per frame,
// small enough that a window close never waits long for stragglers.
const shardBatch = 256

// shardObs is one attributed observation, routed to the sender's shard.
// The router has already applied the attribution rules and computed the
// parameter value against the global inter-arrival context, so sharding
// cannot change any observation's value.
type shardObs struct {
	addr  dot11.Addr
	class dot11.Class
	v     float64
	t     int64
}

// shardMultiObs is shardObs for an ensemble engine: one record's
// parameter values for every member, computed by the router against the
// shared inter-arrival context. The value arrays are sized by
// core.MaxEnsembleMembers so batches stay flat, recycled memory.
type shardMultiObs struct {
	addr  dot11.Addr
	class dot11.Class
	t     int64
	vals  [core.MaxEnsembleMembers]float64
	valid [core.MaxEnsembleMembers]bool
}

// shardMsg is the SPSC queue element: a batch of observations, plus an
// optional close-window control processed after them. The close carries
// the router's core.WindowMeta — the one global window clock — so
// window indices, bounds and frame counts stay consistent across
// shards. Messages are recycled through a per-shard free list, so the
// steady state moves no memory to the garbage collector. Ensemble
// engines batch into mentries (allocated once per message at
// construction); single-parameter engines into entries.
type shardMsg struct {
	n        int
	closeWin bool
	meta     core.WindowMeta
	entries  [shardBatch]shardObs
	mentries []shardMultiObs // ensemble mode only; len shardBatch
}

// shard is one partition: an SPSC queue pair (ch carries filled
// messages to the shard goroutine, free returns drained ones) and the
// state owned exclusively by that goroutine.
type shard struct {
	ch    chan *shardMsg
	free  chan *shardMsg
	cur   *shardMsg // batch being filled by the router
	table *core.SenderTable
	// processed counts drained messages — the watchdog's progress
	// signal. Incremented once per batch, never per frame.
	processed atomic.Uint64
}

// shardSegment is one shard's slice of a closed window, sent to the
// merger: candidates and dropped senders (each sorted by address) plus
// the shard-local match rows (fused + per-member in ensemble mode).
type shardSegment struct {
	meta     core.WindowMeta
	res      core.WindowResult
	rows     [][]core.Score
	fused    [][]core.Score
	perParam [][][]core.Score
}

// Sharded is the concurrent form of Engine: records are hash-
// partitioned by sender address across N independent shards, each
// owning its accumulator and match scratch, fed through per-shard
// SPSC batch queues; a merger joins the per-shard results back into
// one deterministic event stream.
//
// The contract is the serial Engine's: Push, PushTrace, Flush and
// Close from a single goroutine; SetDB, DB and Stats from any
// goroutine. Unlike Engine, events are delivered asynchronously on an
// internal goroutine — Flush and Close block until every event for the
// flushed windows has been handed to the sink, and the sink must not
// call back into Push.
//
// Because the router computes each observation's parameter value
// against the global inter-arrival context and broadcasts one global
// window clock, the merged event stream is identical to the serial
// Engine's over the same records — same events, same order — for every
// shard count, as long as no observations are dropped (Block policy,
// no SenderLimits).
type Sharded struct {
	cfg   core.Config
	cfgs  []core.Config // ensemble members; nil in single-parameter mode
	multi bool
	opts  ShardedOptions
	db    atomic.Pointer[core.CompiledDB]
	edb   atomic.Pointer[core.CompiledEnsemble]

	shards []*shard
	segCh  chan shardSegment

	// deferMatch moves window matching from the shards to the merger
	// (set when a Trainer is attached — see ShardedOptions.Trainer).
	deferMatch bool

	// Router state, owned by the pushing goroutine. The clock is the
	// same implementation WindowAccumulator runs on, so serial and
	// sharded windowing cannot drift apart. vals/valid are the reusable
	// per-record member value buffers of the ensemble mode.
	closed bool
	clock  core.WindowClock
	closes uint64 // window closes broadcast so far
	vals   []float64
	valid  []bool

	startNs       atomic.Int64
	frames        atomic.Uint64
	droppedFrames atomic.Uint64

	// Window-scoped counters: one consistent snapshot group (see
	// Stats), updated by the merger under mu. emitted drives the
	// Flush/Close rendezvous via cond.
	mu      sync.Mutex
	cond    *sync.Cond
	emitted uint64
	windows uint64
	matched uint64
	unknown uint64
	dropped uint64
	evicted uint64

	shardWG  sync.WaitGroup
	mergerWG sync.WaitGroup

	health    healthState
	watchStop chan struct{}
	watchWG   sync.WaitGroup
}

// NewSharded creates a sharded engine extracting signatures under cfg
// and matching each closed window against db (nil runs extraction-only
// until SetDB installs one). A non-nil db must share cfg's parameter
// and bin shape.
func NewSharded(cfg core.Config, db *core.CompiledDB, opts ShardedOptions) (*Sharded, error) {
	s, err := newSharded([]core.Config{cfg}, false, opts)
	if err != nil {
		return nil, err
	}
	if opts.Trainer != nil {
		if db != nil {
			return nil, fmt.Errorf("engine: both db and ShardedOptions.Trainer set — the trainer owns the reference set (seed it with NewTrainerFrom)")
		}
		if err := opts.Trainer.bind(s, s.cfg); err != nil {
			return nil, err
		}
		db = opts.Trainer.Compiled()
		s.deferMatch = true
	}
	if err := s.SetDB(db); err != nil {
		return nil, err
	}
	s.start()
	return s, nil
}

// NewShardedEnsemble creates a sharded multi-parameter engine: the
// router computes every member's parameter value against the global
// inter-arrival context (so sharding cannot change any value), shards
// accumulate one signature per member per sender, and each closed
// window's candidates are fuse-matched against edb (nil runs
// extraction-only until SetEnsembleDB installs one). The merged event
// stream is identical to the serial ensemble engine's at every shard
// count, exactly like the single-parameter engines.
func NewShardedEnsemble(cfgs []core.Config, edb *core.CompiledEnsemble, opts ShardedOptions) (*Sharded, error) {
	s, err := newSharded(cfgs, true, opts)
	if err != nil {
		return nil, err
	}
	if opts.Trainer != nil {
		if edb != nil {
			return nil, fmt.Errorf("engine: both db and ShardedOptions.Trainer set — the trainer owns the reference set (seed it with NewEnsembleTrainerFrom)")
		}
		if err := opts.Trainer.bindEnsemble(s, s.cfgs); err != nil {
			return nil, err
		}
		edb = opts.Trainer.CompiledEnsemble()
		s.deferMatch = true
	}
	if err := s.SetEnsembleDB(edb); err != nil {
		return nil, err
	}
	s.start()
	return s, nil
}

// newSharded builds the router, shards and queues shared by both modes.
func newSharded(cfgs []core.Config, multi bool, opts ShardedOptions) (*Sharded, error) {
	if opts.Window == 0 {
		opts.Window = core.DefaultWindow
	}
	if opts.Shards <= 0 {
		opts.Shards = runtime.GOMAXPROCS(0)
	}
	if opts.QueueLen <= 0 {
		opts.QueueLen = 8192
	}
	s := &Sharded{
		opts:  opts,
		multi: multi,
		clock: core.NewWindowClock(opts.Window),
	}
	s.cond = sync.NewCond(&s.mu)

	batches := (opts.QueueLen + shardBatch - 1) / shardBatch
	s.shards = make([]*shard, opts.Shards)
	for i := range s.shards {
		var table *core.SenderTable
		if multi {
			var err error
			if table, err = core.NewEnsembleSenderTable(cfgs, opts.Limits); err != nil {
				return nil, err
			}
		} else {
			table = core.NewSenderTable(cfgs[0], opts.Limits)
		}
		sh := &shard{
			ch:    make(chan *shardMsg, batches),
			free:  make(chan *shardMsg, batches+2),
			table: table,
		}
		// One message per queue slot, plus one for the router to fill
		// and one for the shard goroutine to drain.
		for j := 0; j < batches+2; j++ {
			msg := &shardMsg{}
			if multi {
				msg.mentries = make([]shardMultiObs, shardBatch)
			}
			sh.free <- msg
		}
		s.shards[i] = sh
	}
	s.cfg = s.shards[0].table.Config() // defaults materialised
	if multi {
		s.cfgs = s.shards[0].table.Configs()
		s.vals = make([]float64, len(s.cfgs))
		s.valid = make([]bool, len(s.cfgs))
	}
	return s, nil
}

// start launches the shard and merger goroutines once the reference
// set is installed.
func (s *Sharded) start() {
	s.segCh = make(chan shardSegment, len(s.shards)*2)
	for i, sh := range s.shards {
		s.shardWG.Add(1)
		go s.runShard(i, sh)
	}
	go func() {
		s.shardWG.Wait()
		close(s.segCh)
	}()
	s.mergerWG.Add(1)
	go s.runMerger()
	if s.opts.Watchdog > 0 {
		s.watchStop = make(chan struct{})
		s.watchWG.Add(1)
		go s.runWatchdog(s.opts.Watchdog)
	}
}

// Config returns the extraction configuration with defaults materialised
// (the first member's, in ensemble mode).
func (s *Sharded) Config() core.Config { return s.cfg }

// Configs returns every member configuration with defaults
// materialised, or nil for a single-parameter engine.
func (s *Sharded) Configs() []core.Config {
	if !s.multi {
		return nil
	}
	out := make([]core.Config, len(s.cfgs))
	copy(out, s.cfgs)
	return out
}

// SetDB atomically swaps the reference database, exactly like
// Engine.SetDB. Each shard picks the new database up at its next window
// close; a swap that races a closing window may match that window's
// shards against different databases, so swap between windows when the
// distinction matters.
func (s *Sharded) SetDB(db *core.CompiledDB) error {
	if s.multi {
		return fmt.Errorf("engine: ensemble engine takes a compiled ensemble (SetEnsembleDB)")
	}
	if err := checkShape(s.cfg, db); err != nil {
		return err
	}
	s.db.Store(db)
	return nil
}

// DB returns the currently installed reference database, or nil (always
// nil on an ensemble engine; see EnsembleDB).
func (s *Sharded) DB() *core.CompiledDB { return s.db.Load() }

// SetEnsembleDB atomically swaps the compiled ensemble, exactly like
// Engine.SetEnsembleDB; the swap-vs-closing-window caveat of SetDB
// applies.
func (s *Sharded) SetEnsembleDB(edb *core.CompiledEnsemble) error {
	if !s.multi {
		return fmt.Errorf("engine: single-parameter engine takes a compiled database (SetDB)")
	}
	if err := checkEnsembleShape(s.cfgs, edb); err != nil {
		return err
	}
	s.edb.Store(edb)
	return nil
}

// EnsembleDB returns the currently installed compiled ensemble, or nil
// (always nil on a single-parameter engine).
func (s *Sharded) EnsembleDB() *core.CompiledEnsemble { return s.edb.Load() }

// shardOf hashes a sender address to its shard: a fixed multiplicative
// hash over the 48 address bits, so partitioning is deterministic
// across runs and processes.
func (s *Sharded) shardOf(addr dot11.Addr) int {
	x := uint64(addr[0])<<40 | uint64(addr[1])<<32 | uint64(addr[2])<<24 |
		uint64(addr[3])<<16 | uint64(addr[4])<<8 | uint64(addr[5])
	x *= 0x9E3779B97F4A7C15
	x ^= x >> 29
	return int(x % uint64(len(s.shards)))
}

// ShardOf reports which shard owns a sender address — the partitioning
// is deterministic across runs and processes, so an operator can
// attribute a ShardStalled or shard ComponentPanicked event to the
// senders it affects (and chaos tests can place faults precisely).
func (s *Sharded) ShardOf(addr dot11.Addr) int { return s.shardOf(addr) }

// Push ingests one record; the record is not retained. The router
// applies the global window clock and attribution rules, computes the
// parameter value against the stream-wide inter-arrival context, and
// forwards the observation to its sender's shard. Push panics after
// Close.
//
//fp:hotpath test=TestShardedPushZeroAllocs
func (s *Sharded) Push(rec *capture.Record) {
	if s.closed {
		panic("engine: Push after Close")
	}
	if s.frames.Add(1) == 1 {
		s.startNs.Store(time.Now().UnixNano()) //fp:wallclock throughput-stats epoch, read once on the first frame; no output depends on it
	}
	if closed, meta := s.clock.Advance(rec.T); closed {
		s.broadcastClose(meta)
	}
	if s.multi {
		// Every member's value is computed here, against the global
		// inter-arrival context, exactly as the serial ensemble
		// accumulator computes them — sharding cannot change a value.
		if !rec.Sender.IsZero() && core.MemberValues(s.cfgs, rec, s.clock.PrevT(), s.vals, s.valid) {
			s.routeMulti(s.resolveSender(rec), rec.Class, rec.T)
		}
	} else if !rec.Sender.IsZero() && (rec.FCSOK || s.cfg.KeepBadFCS) {
		if v, ok := s.cfg.Param.Value(rec, s.clock.PrevT()); ok {
			s.route(s.resolveSender(rec), rec.Class, v, rec.T)
		}
	}
	s.clock.Mark(rec.T)
}

// resolveSender routes attribution through the MAC-randomization
// clusterer when one is attached: the canonical device address — not
// the raw (possibly rotated) sender — is what gets shard-hashed, so a
// device's whole observation history accumulates in one shard. Runs on
// the router goroutine, which is the clusterer's single owner.
func (s *Sharded) resolveSender(rec *capture.Record) dot11.Addr {
	if s.opts.Cluster == nil {
		return rec.Sender
	}
	return s.opts.Cluster.Resolve(rec)
}

// PushTrace replays a materialised trace through the push path.
func (s *Sharded) PushTrace(tr *capture.Trace) {
	for i := range tr.Records {
		s.Push(&tr.Records[i])
	}
}

// slot returns the shard's current batch with space for one more
// observation, applying the Backpressure policy: under Drop a full
// queue costs only the observations that arrive while it stays full —
// a filled batch is retained and retried on the next call, never
// discarded wholesale — and Push never stalls. A nil return means the
// observation was dropped (and counted).
func (s *Sharded) slot(sh *shard) *shardMsg {
	cur := sh.cur
	if cur != nil && cur.n == shardBatch {
		// A full batch is waiting for queue space (Drop policy only).
		select {
		case sh.ch <- cur:
			cur = nil
			sh.cur = nil
		default:
			s.droppedFrames.Add(1) // queue still full: lose this observation only
			return nil
		}
	}
	if cur == nil {
		if s.opts.Backpressure == Drop {
			select {
			case cur = <-sh.free:
			default:
				s.droppedFrames.Add(1)
				return nil
			}
		} else {
			cur = <-sh.free
		}
		sh.cur = cur
	}
	return cur
}

// commit accounts one appended observation, sending the batch when
// full (per the Backpressure policy).
func (s *Sharded) commit(sh *shard, cur *shardMsg) {
	cur.n++
	if cur.n == shardBatch {
		if s.opts.Backpressure == Drop {
			select {
			case sh.ch <- cur:
				sh.cur = nil
			default:
				// Queue full: keep the batch current and retry in slot.
			}
			return
		}
		sh.ch <- cur
		sh.cur = nil
	}
}

// route appends one observation to its shard's current batch.
func (s *Sharded) route(addr dot11.Addr, class dot11.Class, v float64, t int64) {
	sh := s.shards[s.shardOf(addr)]
	cur := s.slot(sh)
	if cur == nil {
		return
	}
	cur.entries[cur.n] = shardObs{addr: addr, class: class, v: v, t: t}
	s.commit(sh, cur)
}

// routeMulti appends one multi-parameter observation (the router's
// vals/valid buffers) to its shard's current batch.
func (s *Sharded) routeMulti(addr dot11.Addr, class dot11.Class, t int64) {
	sh := s.shards[s.shardOf(addr)]
	cur := s.slot(sh)
	if cur == nil {
		return
	}
	o := &cur.mentries[cur.n]
	o.addr, o.class, o.t = addr, class, t
	copy(o.vals[:len(s.vals)], s.vals)
	copy(o.valid[:len(s.valid)], s.valid)
	s.commit(sh, cur)
}

// broadcastClose flushes every shard's partial batch and appends the
// close-window control carrying the global window metadata. Controls
// are never dropped — window clocking survives the Drop policy — and
// per-shard FIFO order guarantees each shard sees all of a window's
// observations before its close.
//
//fp:coldpath one control broadcast per closed window
func (s *Sharded) broadcastClose(meta core.WindowMeta) {
	for _, sh := range s.shards {
		msg := sh.cur
		sh.cur = nil
		if msg == nil {
			msg = <-sh.free
		}
		msg.closeWin = true
		msg.meta = meta
		sh.ch <- msg
	}
	s.closes++
}

// Flush closes the currently open detection window early and blocks
// until its events (and those of every earlier window) have been
// delivered to the sink. The next pushed record opens a fresh window on
// the same grid.
func (s *Sharded) Flush() {
	if closed, meta := s.clock.CloseOpen(); closed {
		s.broadcastClose(meta)
	}
	target := s.closes
	s.mu.Lock()
	for s.emitted < target {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// Close flushes the open window, waits for every event to be delivered,
// and stops the shard and merger goroutines; further pushes panic.
// Close is idempotent.
func (s *Sharded) Close() {
	if s.closed {
		return
	}
	s.Flush()
	s.closed = true
	for _, sh := range s.shards {
		close(sh.ch)
	}
	s.shardWG.Wait()
	s.mergerWG.Wait()
	if s.watchStop != nil {
		close(s.watchStop)
		s.watchWG.Wait()
	}
}

// runWatchdog samples each shard's progress counter every interval: a
// shard with queued batches that drained none since the last sample is
// stalled — wedged on a slow sink, a livelocked table, an injected
// fault — and is reported once per stall edge (ShardStalled, then
// ShardResumed when it moves again). Reads are two atomic loads per
// shard per tick; the push path is never touched.
func (s *Sharded) runWatchdog(interval time.Duration) {
	defer s.watchWG.Done()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	last := make([]uint64, len(s.shards))
	ticks := make([]int, len(s.shards))
	for {
		select {
		case <-s.watchStop:
			return
		case <-tick.C:
		}
		for i, sh := range s.shards {
			cur := sh.processed.Load()
			queued := len(sh.ch)
			if cur == last[i] && queued > 0 {
				ticks[i]++
				if s.health.setStalled(i, true) {
					if hs := s.opts.HealthSink; hs != nil {
						hs.HandleEvent(ShardStalled{Shard: i, Queued: queued, For: time.Duration(ticks[i]) * interval})
					}
				}
			} else {
				ticks[i] = 0
				if s.health.setStalled(i, false) {
					if hs := s.opts.HealthSink; hs != nil {
						hs.HandleEvent(ShardResumed{Shard: i})
					}
				}
			}
			last[i] = cur
		}
	}
}

// Health snapshots the engine's supervision state: recovered panics,
// stalled shards, and per-shard queue depths. Safe from any goroutine.
func (s *Sharded) Health() Health {
	h := s.health.snapshot()
	h.QueueDepths = make([]int, len(s.shards))
	for i, sh := range s.shards {
		h.QueueDepths[i] = len(sh.ch)
	}
	return h
}

// runShard is one shard goroutine: it drains the queue, accumulates
// observations into the shard's sender table, and on each close control
// drains the table, matches the shard's candidates with its private
// scratch, and ships the segment to the merger.
func (s *Sharded) runShard(id int, sh *shard) {
	defer s.shardWG.Done()
	var scratch core.MatchScratch
	var escratch core.EnsembleScratch
	for msg := range sh.ch {
		s.shardProcess(id, sh, msg, &scratch, &escratch)
		sh.processed.Add(1)
		msg.n = 0
		msg.closeWin = false
		sh.free <- msg
	}
}

// shardProcess handles one queued message under panic supervision: a
// panic — from the batch hook, the sender table, or matching — loses
// that message's observations (and, on a close control, the shard's
// slice of the window) but never the shard goroutine, and never the
// window protocol: the merger still receives a segment for every
// (shard, window) pair, so windows keep completing and Flush/Close
// keep returning. The loss is counted in Health as a shard panic.
//
//fp:hotpath test=TestShardedPushZeroAllocs
func (s *Sharded) shardProcess(id int, sh *shard, msg *shardMsg, scratch *core.MatchScratch, escratch *core.EnsembleScratch) {
	sent := false
	defer func() {
		if r := recover(); r != nil {
			s.health.recordPanic(s.opts.HealthSink, "shard", id, r)
			if msg.closeWin && !sent {
				// Ship the close control's segment even though its content
				// was lost: an empty segment keeps the merge complete.
				seg := shardSegment{meta: msg.meta}
				seg.res.Index = msg.meta.Index
				seg.res.Start, seg.res.End = msg.meta.Start, msg.meta.End
				seg.res.Frames = msg.meta.Frames
				s.segCh <- seg
			}
		}
	}()
	if h := s.opts.Hooks.ShardBatch; h != nil {
		h(id, msg.n)
	}
	nm := len(s.cfgs)
	if s.multi {
		for i := 0; i < msg.n; i++ {
			o := &msg.mentries[i]
			sh.table.ObserveN(o.addr, o.class, o.vals[:nm], o.valid[:nm], o.t)
		}
	} else {
		for i := 0; i < msg.n; i++ {
			o := &msg.entries[i]
			sh.table.Observe(o.addr, o.class, o.v, o.t)
		}
	}
	if msg.closeWin {
		s.shardClose(sh, msg, scratch, escratch, &sent)
	}
}

// shardClose drains the shard's slice of a closing window, matches it
// (unless matching is deferred to the merger) and ships the segment.
// *sent flips just before the send so shardProcess's recovery never
// double-ships a segment.
//
//fp:coldpath runs once per (shard, window) close control; drain and match amortise across the window's frames
func (s *Sharded) shardClose(sh *shard, msg *shardMsg, scratch *core.MatchScratch, escratch *core.EnsembleScratch, sent *bool) {
	seg := shardSegment{meta: msg.meta}
	seg.res.Index = msg.meta.Index
	seg.res.Start, seg.res.End = msg.meta.Start, msg.meta.End
	seg.res.Frames = msg.meta.Frames
	sh.table.Drain(&seg.res)
	// With a trainer attached matching is deferred to the merger,
	// so window k's enrollment swap is installed before window
	// k+1's candidates are matched (see ShardedOptions.Trainer).
	if !s.deferMatch {
		if s.multi {
			if edb := s.edb.Load(); edb != nil && edb.Len() > 0 && len(seg.res.Multi) > 0 {
				if s.opts.TopK > 0 {
					seg.fused = edb.TopKAllScratch(seg.res.Multi, s.opts.TopK, escratch)
				} else {
					seg.fused, seg.perParam = edb.MatchAllScratch(seg.res.Multi, escratch)
				}
			}
		} else if db := s.db.Load(); db != nil && db.Len() > 0 && len(seg.res.Candidates) > 0 {
			if s.opts.TopK > 0 {
				seg.rows = db.TopKAllScratch(seg.res.Candidates, s.opts.TopK, scratch)
			} else {
				seg.rows = db.MatchAllScratch(seg.res.Candidates, scratch)
			}
		}
	}
	*sent = true
	s.segCh <- seg
}

// runMerger joins shard segments back into whole windows. Every shard
// contributes exactly one segment per close, and each shard emits its
// windows in close order through one FIFO channel, so the final segment
// of window k always arrives before the final segment of window k+1 —
// windows complete, and are emitted, in index order.
func (s *Sharded) runMerger() {
	defer s.mergerWG.Done()
	n := len(s.shards)
	pending := make(map[int][]shardSegment)
	for seg := range s.segCh {
		idx := seg.meta.Index
		pending[idx] = append(pending[idx], seg)
		if len(pending[idx]) == n {
			segs := pending[idx]
			delete(pending, idx)
			s.emitWindowSafe(segs)
		}
	}
}

// emitWindowSafe runs one window's merge-and-emit under panic
// supervision. Whatever happens inside — a panicking sink, a merger
// hook fault, a trainer fault — the window is always accounted as
// emitted and cond is always broadcast, so Flush and Close can never
// deadlock on a lost window; the loss is counted in Health instead.
func (s *Sharded) emitWindowSafe(segs []shardSegment) {
	var c windowCounts
	func() {
		defer func() {
			if r := recover(); r != nil {
				s.health.recordPanic(s.opts.HealthSink, "merger", -1, r)
			}
		}()
		if h := s.opts.Hooks.MergerWindow; h != nil {
			h(segs[0].meta.Index)
		}
		c = s.emitWindow(segs)
	}()
	s.mu.Lock()
	s.windows++
	s.matched += uint64(c.matched)
	s.unknown += uint64(c.unknown)
	s.dropped += uint64(c.dropped)
	s.evicted += uint64(c.evicted)
	s.emitted++
	s.cond.Broadcast()
	s.mu.Unlock()
}

// windowCounts is emitWindow's contribution to the snapshot counters.
type windowCounts struct {
	matched, unknown, dropped, evicted int
}

// addrLess orders candidates and drops across shard segments.
func addrLess(a, b [6]byte) bool { return bytes.Compare(a[:], b[:]) < 0 }

// addrCmp is addrLess's three-way form, for slices.SortFunc (which,
// unlike sort.Slice, sorts without boxing through sort.Interface).
func addrCmp(a, b [6]byte) int { return bytes.Compare(a[:], b[:]) }

// mergeByAddr walks per-segment sorted slices in one global ascending
// address order: n(k) is segment k's length, addr(k, i) its i-th
// address, and emit is called once per element in merged order. Shard
// address sets are disjoint and each segment is already sorted, so the
// N-way head merge reproduces the serial engine's per-window order
// exactly.
func mergeByAddr(segs int, n func(int) int, addr func(k, i int) [6]byte, emit func(k, i int)) {
	pos := make([]int, segs)
	for {
		best := -1
		for k := 0; k < segs; k++ {
			if pos[k] >= n(k) {
				continue
			}
			if best < 0 || addrLess(addr(k, pos[k]), addr(best, pos[best])) {
				best = k
			}
		}
		if best < 0 {
			return
		}
		emit(best, pos[best])
		pos[best]++
	}
}

// emitWindow merges one window's shard segments into the serial
// engine's event order — verdicts ascending by address, then drops
// ascending by address, then the WindowClosed summary — and returns the
// window's counter contributions (accounted by emitWindowSafe).
func (s *Sharded) emitWindow(segs []shardSegment) windowCounts {
	meta := segs[0].meta
	sink := s.opts.Sink

	matchedN, unknownN, candsN := 0, 0, 0
	// Every branch runs every candidate through the same verdict
	// accounting, so a change to it cannot drift the trainer-mode stream
	// from the normal one.
	verdict := func(c *core.Candidate, scores []core.Score) {
		candsN++
		if emitVerdict(sink, s.opts.Threshold, c, scores) {
			matchedN++
		} else {
			unknownN++
		}
	}
	verdictMulti := func(c *core.MultiCandidate, fused []core.Score, perParam [][]core.Score) {
		candsN++
		if emitVerdictMulti(sink, s.opts.Threshold, c, fused, perParam) {
			matchedN++
		} else {
			unknownN++
		}
	}
	var trainCands []core.Candidate      // the merged window, for the trainer
	var trainMulti []core.MultiCandidate // ensemble-mode form
	switch {
	case s.deferMatch && s.multi:
		// Trainer mode, fused: merge the shards' unmatched candidates
		// into the serial window order, then fuse-match here — after any
		// swap the previous window's enrollment installed.
		total := 0
		for k := range segs {
			total += len(segs[k].res.Multi)
		}
		merged := make([]core.MultiCandidate, 0, total)
		mergeByAddr(len(segs),
			func(k int) int { return len(segs[k].res.Multi) },
			func(k, i int) [6]byte { return segs[k].res.Multi[i].Addr },
			func(k, i int) { merged = append(merged, segs[k].res.Multi[i]) })
		var fused [][]core.Score
		var perParam [][][]core.Score
		if edb := s.edb.Load(); edb != nil && edb.Len() > 0 && len(merged) > 0 {
			if s.opts.TopK > 0 {
				fused = edb.TopKAllWorkers(merged, s.opts.TopK, 0)
			} else {
				fused, perParam = edb.MatchAll(merged)
			}
		}
		for i := range merged {
			var f []core.Score
			var pp [][]core.Score
			if fused != nil {
				f = fused[i]
			}
			if perParam != nil {
				pp = perParam[i]
			}
			verdictMulti(&merged[i], f, pp)
		}
		trainMulti = merged
	case s.deferMatch:
		// Trainer mode: the shards shipped unmatched candidates. Merge
		// them into the serial engine's ascending-address window order,
		// then match the whole window here — after any swap the previous
		// window's enrollment installed — fanning out across workers
		// exactly like the serial engine's window matching.
		total := 0
		for k := range segs {
			total += len(segs[k].res.Candidates)
		}
		merged := make([]core.Candidate, 0, total)
		mergeByAddr(len(segs),
			func(k int) int { return len(segs[k].res.Candidates) },
			func(k, i int) [6]byte { return segs[k].res.Candidates[i].Addr },
			func(k, i int) { merged = append(merged, segs[k].res.Candidates[i]) })
		var rows [][]core.Score
		if db := s.db.Load(); db != nil && db.Len() > 0 && len(merged) > 0 {
			if s.opts.TopK > 0 {
				rows = db.TopKAllWorkers(merged, s.opts.TopK, 0)
			} else {
				rows = db.MatchAll(merged)
			}
		}
		for i := range merged {
			var scores []core.Score
			if rows != nil {
				scores = rows[i]
			}
			verdict(&merged[i], scores)
		}
		trainCands = merged
	case s.multi:
		mergeByAddr(len(segs),
			func(k int) int { return len(segs[k].res.Multi) },
			func(k, i int) [6]byte { return segs[k].res.Multi[i].Addr },
			func(k, i int) {
				var f []core.Score
				var pp [][]core.Score
				if segs[k].fused != nil {
					f = segs[k].fused[i]
				}
				if segs[k].perParam != nil {
					pp = segs[k].perParam[i]
				}
				verdictMulti(&segs[k].res.Multi[i], f, pp)
			})
	default:
		mergeByAddr(len(segs),
			func(k int) int { return len(segs[k].res.Candidates) },
			func(k, i int) [6]byte { return segs[k].res.Candidates[i].Addr },
			func(k, i int) {
				var scores []core.Score
				if segs[k].rows != nil {
					scores = segs[k].rows[i]
				}
				verdict(&segs[k].res.Candidates[i], scores)
			})
	}

	droppedN, evictedN := 0, 0
	mergeByAddr(len(segs),
		func(k int) int { return len(segs[k].res.Dropped) },
		func(k, i int) [6]byte { return segs[k].res.Dropped[i].Addr },
		func(k, i int) {
			d := segs[k].res.Dropped[i]
			droppedN++
			if d.Evicted {
				evictedN++
			}
			if sink != nil {
				sink.HandleEvent(CandidateDropped{
					Window: meta.Index, Addr: d.Addr,
					Observations: d.Observations, Minimum: s.cfg.MinObservations,
					Evicted: d.Evicted,
				})
			}
		})
	// Evictions beyond the per-shard record cap carry no individual
	// event but count everywhere a total does.
	for k := range segs {
		droppedN += int(segs[k].res.EvictedSilently)
		evictedN += int(segs[k].res.EvictedSilently)
	}

	if sink != nil {
		sink.HandleEvent(WindowClosed{
			Window: meta.Index, Start: meta.Start, End: meta.End, Frames: meta.Frames,
			Senders:    candsN + droppedN,
			Candidates: candsN,
			Matched:    matchedN, Unknown: unknownN, Dropped: droppedN,
		})
	}

	// Enrollment runs after the window's own events and before emitted
	// is advanced, so Flush/Close returning guarantees the flushed
	// windows' promotions (and their events) have landed. The trainer
	// step is supervised separately: a panic in it loses this window's
	// enrollment (counted as a trainer fault) but not the window.
	if tr := s.opts.Trainer; tr != nil {
		func() {
			defer func() {
				if r := recover(); r != nil {
					s.health.recordPanic(s.opts.HealthSink, "trainer", -1, r)
				}
			}()
			emit := func(ev Event) {
				if sink != nil {
					sink.HandleEvent(ev)
				}
			}
			if s.multi {
				tr.observeWindowMulti(meta.Index, trainMulti, emit)
			} else {
				tr.observeWindow(meta.Index, trainCands, emit)
			}
		}()
	}

	return windowCounts{matched: matchedN, unknown: unknownN, dropped: droppedN, evicted: evictedN}
}

// Stats returns a snapshot of the engine's counters. The window-scoped
// counters are one consistent group (see Stats); Frames and
// DroppedFrames may run ahead by the records still queued in shards.
func (s *Sharded) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		WindowsClosed: s.windows,
		Matched:       s.matched,
		Unknown:       s.unknown,
		Dropped:       s.dropped,
		Evicted:       s.evicted,
	}
	s.mu.Unlock()
	st.Candidates = st.Matched + st.Unknown
	st.Frames = s.frames.Load()
	st.DroppedFrames = s.droppedFrames.Load()
	for _, sh := range s.shards {
		st.LiveSenders += sh.table.LiveSenders()
	}
	if s.multi {
		if edb := s.edb.Load(); edb != nil {
			st.Index = edb.IndexStats()
		}
	} else if db := s.db.Load(); db != nil {
		st.Index = db.IndexStats()
	}
	if ns := s.startNs.Load(); ns != 0 {
		st.Elapsed = time.Duration(time.Now().UnixNano() - ns) //fp:wallclock stats-only elapsed/throughput; no event output depends on it
		if st.Elapsed > 0 {
			st.FramesPerSec = float64(st.Frames) / st.Elapsed.Seconds()
		}
	}
	return st
}
