package engine_test

import (
	"bytes"
	"testing"
	"time"

	"dot11fp/internal/core"
	"dot11fp/internal/dot11"
	"dot11fp/internal/engine"
)

// TestTrainerDecideDefer pins the three-way Decide callback: a
// deferred sender stays pending — re-offered at its next candidate
// window, reported as EnrollmentProgress meanwhile — and can be
// approved later, unlike Confirm's permanent false. This is the seam
// the HTTP API's confirm-over-the-wire flow stands on: "no answer yet"
// must not mean "never".
func TestTrainerDecideDefer(t *testing.T) {
	t.Parallel()
	const window = 2 * time.Minute
	cfg := core.DefaultConfig(core.ParamInterArrival)
	tr := buildScenario(t, false)

	// Pass 1: defer everything, forever. Nothing enrolls, nothing is
	// rejected, and each sender is re-offered every candidate window
	// past its horizon — the call counts prove re-offering.
	offers := make(map[dot11.Addr]int)
	deferAll := engine.NewTrainer(cfg, core.MeasureCosine, engine.TrainerOptions{
		Policy: engine.EnrollConfirm,
		Decide: func(p engine.PendingEnrollment) engine.EnrollDecision {
			offers[p.Addr]++
			return engine.DecideDefer
		},
	})
	var te trainEvents
	eng, err := engine.New(cfg, nil, engine.Options{Window: window, Sink: collectTrainer(&te), Trainer: deferAll})
	if err != nil {
		t.Fatal(err)
	}
	eng.PushTrace(tr)
	eng.Close()

	st := deferAll.Stats()
	if st.Refs != 0 || st.Enrolled != 0 || st.Swaps != 0 || st.Rejected != 0 {
		t.Fatalf("defer-all trainer promoted or rejected: %+v", st)
	}
	if st.Pending == 0 {
		t.Fatal("defer-all trainer holds no pending senders")
	}
	var deferAddr dot11.Addr
	reoffers := 0
	for addr, n := range offers {
		if n > reoffers {
			deferAddr, reoffers = addr, n
		}
	}
	if reoffers < 2 {
		t.Fatalf("no sender was re-offered after a defer (max offers %d)", reoffers)
	}
	// A deferred completion is reported as progress, so the window's
	// event stream still accounts for the sender.
	progressed := false
	for _, p := range te.progress {
		if p.Addr == deferAddr && p.Windows >= p.Horizon {
			progressed = true
			break
		}
	}
	if !progressed {
		t.Fatal("deferred sender emitted no EnrollmentProgress past its horizon")
	}

	// PendingList is the API's view of the queue: every deferred sender
	// present, ascending address order, accumulation state summarised
	// without leaking the live signatures.
	pending := deferAll.PendingList()
	if len(pending) != st.Pending {
		t.Fatalf("PendingList has %d entries, Stats.Pending %d", len(pending), st.Pending)
	}
	found := false
	for i, pe := range pending {
		if pe.Windows == 0 || pe.Observations == 0 {
			t.Fatalf("pending entry %d has empty accumulation: %+v", i, pe)
		}
		if pe.Sig != nil || pe.Sigs != nil {
			t.Fatalf("pending entry %d leaks live signatures", i)
		}
		if i > 0 {
			prev, cur := pending[i-1].Addr, pe.Addr
			if bytes.Compare(prev[:], cur[:]) >= 0 {
				t.Fatalf("PendingList not in ascending address order: %v before %v", prev, cur)
			}
		}
		if pe.Addr == deferAddr {
			found = true
		}
	}
	if !found {
		t.Fatalf("deferred sender %v missing from PendingList", deferAddr)
	}

	// Pass 2: defer deferAddr once then approve it; reject another
	// sender outright. Decide takes precedence over Confirm.
	var rejectAddr dot11.Addr
	for addr := range offers {
		if addr != deferAddr {
			rejectAddr = addr
			break
		}
	}
	calls := make(map[dot11.Addr]int)
	trainer := engine.NewTrainer(cfg, core.MeasureCosine, engine.TrainerOptions{
		Policy: engine.EnrollConfirm,
		Confirm: func(engine.PendingEnrollment) bool {
			t.Error("Confirm called although Decide is set")
			return false
		},
		Decide: func(p engine.PendingEnrollment) engine.EnrollDecision {
			calls[p.Addr]++
			switch {
			case p.Addr == rejectAddr:
				return engine.DecideReject
			case p.Addr == deferAddr && calls[p.Addr] == 1:
				return engine.DecideDefer
			default:
				return engine.DecideApprove
			}
		},
	})
	eng, err = engine.New(cfg, nil, engine.Options{Window: window, Trainer: trainer})
	if err != nil {
		t.Fatal(err)
	}
	eng.PushTrace(tr)
	eng.Close()

	if calls[deferAddr] != 2 {
		t.Fatalf("deferred sender offered %d times, want 2 (defer, then approve)", calls[deferAddr])
	}
	if calls[rejectAddr] != 1 {
		t.Fatalf("rejected sender offered %d times, want exactly 1", calls[rejectAddr])
	}
	db := trainer.Database()
	if db.Signature(deferAddr) == nil {
		t.Fatal("deferred-then-approved sender missing from the references")
	}
	if db.Signature(rejectAddr) != nil {
		t.Fatal("rejected sender present in the references")
	}
	if st := trainer.Stats(); st.Rejected != 1 {
		t.Fatalf("rejected counter %d, want 1", st.Rejected)
	}
}
