package engine_test

import (
	"testing"
	"time"

	"dot11fp/internal/capture"
	"dot11fp/internal/core"
	"dot11fp/internal/dot11"
	"dot11fp/internal/engine"
)

// ensembleCfgs is the fused parameter set the engine tests run:
// inter-arrival first, so the window-edge asymmetry (iat undefined at
// window starts) is exercised on member 0.
func ensembleCfgs(minObs int) []core.Config {
	return []core.Config{
		{Param: core.ParamInterArrival, MinObservations: minObs},
		{Param: core.ParamSize, MinObservations: minObs},
		{Param: core.ParamRate, MinObservations: minObs},
	}
}

// multiCollected flattens an ensemble engine's event stream.
type multiCollected struct {
	cands    []core.MultiCandidate
	fused    [][]core.Score
	perParam [][][]core.Score
	best     []core.Score
	matched  []bool
	dropped  []engine.CandidateDropped
	closed   []engine.WindowClosed
}

// multiSink collects fused verdict events in order.
func multiSink(got *multiCollected) engine.Sink {
	return engine.SinkFunc(func(ev engine.Event) {
		switch ev := ev.(type) {
		case engine.CandidateMatched:
			got.cands = append(got.cands, core.MultiCandidate{Addr: [6]byte(ev.Addr), Window: ev.Window, Sigs: ev.Sigs})
			got.fused = append(got.fused, ev.Scores)
			got.perParam = append(got.perParam, ev.ParamScores)
			got.best = append(got.best, ev.Best)
			got.matched = append(got.matched, true)
			if ev.Sig != nil {
				panic("ensemble verdict carries a single-parameter Sig")
			}
		case engine.UnknownDevice:
			got.cands = append(got.cands, core.MultiCandidate{Addr: [6]byte(ev.Addr), Window: ev.Window, Sigs: ev.Sigs})
			got.fused = append(got.fused, ev.Scores)
			got.perParam = append(got.perParam, ev.ParamScores)
			got.best = append(got.best, ev.Best)
			got.matched = append(got.matched, false)
		case engine.CandidateDropped:
			got.dropped = append(got.dropped, ev)
		case engine.WindowClosed:
			got.closed = append(got.closed, ev)
		}
	})
}

// sameFused asserts two score vectors are bit-identical.
func sameFused(t *testing.T, label string, got, want []core.Score) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d scores, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] { // exact float equality: bit-identical
			t.Fatalf("%s score %d: %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// TestEnsembleEngineBitIdenticalToBatch is the fusion PR's acceptance
// test: the streaming ensemble engines — serial, and sharded at shard
// counts 1, 2 and 4 — produce exactly the multi-parameter candidates
// and fused + per-member score vectors of the batch core.Ensemble path
// (CandidatesIn + CompiledEnsemble.MatchAll) on the office and
// conference scenario traces and the hand-built edge trace, with the
// sharded streams event-for-event identical to the serial one.
func TestEnsembleEngineBitIdenticalToBatch(t *testing.T) {
	t.Parallel()
	traces := map[string]*capture.Trace{
		"office": buildScenario(t, false),
		"conf":   buildScenario(t, true),
		"edges":  edgeTrace(),
	}
	for name, tr := range traces {
		train, valid := core.Split(tr, 3*time.Minute)
		if name == "edges" {
			train, valid = tr, tr // tiny trace: train and monitor on the same records
		}
		cfgs := ensembleCfgs(10)
		ens, err := core.NewEnsemble(core.MeasureCosine, cfgs...)
		if err != nil {
			t.Fatal(err)
		}
		if err := ens.Train(train); err != nil {
			t.Fatal(err)
		}
		ce := ens.Compile()
		window := 2 * time.Minute

		wantCands := ens.CandidatesIn(valid, window)
		wantFused, wantPerParam := ce.MatchAll(wantCands)

		check := func(label string, got *multiCollected) {
			t.Helper()
			if len(got.cands) != len(wantCands) {
				t.Fatalf("%s: %d candidates, want %d", label, len(got.cands), len(wantCands))
			}
			for i := range wantCands {
				if got.cands[i].Addr != wantCands[i].Addr || got.cands[i].Window != wantCands[i].Window {
					t.Fatalf("%s cand %d: got (%x, w%d), want (%x, w%d)", label, i,
						got.cands[i].Addr, got.cands[i].Window, wantCands[i].Addr, wantCands[i].Window)
				}
				if len(got.cands[i].Sigs) != len(cfgs) {
					t.Fatalf("%s cand %d: %d member sigs, want %d", label, i, len(got.cands[i].Sigs), len(cfgs))
				}
				for m := range cfgs {
					sameSig(t, label, got.cands[i].Sigs[m], wantCands[i].Sigs[m])
				}
				sameFused(t, label, got.fused[i], wantFused[i])
				if len(got.perParam[i]) != len(wantPerParam[i]) {
					t.Fatalf("%s cand %d: %d member vectors, want %d", label, i, len(got.perParam[i]), len(wantPerParam[i]))
				}
				for m := range wantPerParam[i] {
					sameFused(t, label, got.perParam[i][m], wantPerParam[i][m])
				}
				best := core.Score{Sim: -1}
				for _, sc := range wantFused[i] {
					if sc.Sim > best.Sim {
						best = sc
					}
				}
				if got.best[i] != best {
					t.Fatalf("%s cand %d best: %+v, want %+v", label, i, got.best[i], best)
				}
			}
			// Window summaries must be self-consistent with the events.
			var matched, unknown, dropped, cands int
			for _, w := range got.closed {
				matched += w.Matched
				unknown += w.Unknown
				dropped += w.Dropped
				cands += w.Candidates
			}
			if cands != len(got.cands) || matched+unknown != cands || dropped != len(got.dropped) {
				t.Fatalf("%s: inconsistent summaries: %d cands (%d events), %d+%d verdicts, %d dropped (%d events)",
					label, cands, len(got.cands), matched, unknown, dropped, len(got.dropped))
			}
		}

		serial := &multiCollected{}
		eng, err := engine.NewEnsemble(cfgs, ce, engine.Options{Window: window, Sink: multiSink(serial)})
		if err != nil {
			t.Fatal(err)
		}
		for i := range valid.Records {
			rec := valid.Records[i]
			eng.Push(&rec)
		}
		eng.Close()
		check(name+"/serial", serial)

		for _, shards := range []int{1, 2, 4} {
			got := &multiCollected{}
			sh, err := engine.NewShardedEnsemble(cfgs, ce, engine.ShardedOptions{
				Window: window, Shards: shards, Sink: multiSink(got),
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := range valid.Records {
				rec := valid.Records[i]
				sh.Push(&rec)
			}
			sh.Close()
			label := name + "/shards=" + string(rune('0'+shards))
			check(label, got)
			// The sharded drop stream must match the serial one too.
			if len(got.dropped) != len(serial.dropped) {
				t.Fatalf("%s: %d drop events, want %d", label, len(got.dropped), len(serial.dropped))
			}
			for i := range serial.dropped {
				if got.dropped[i] != serial.dropped[i] {
					t.Fatalf("%s drop %d: %+v, want %+v", label, i, got.dropped[i], serial.dropped[i])
				}
			}
			if len(got.closed) != len(serial.closed) {
				t.Fatalf("%s: %d window summaries, want %d", label, len(got.closed), len(serial.closed))
			}
			for i := range serial.closed {
				if got.closed[i] != serial.closed[i] {
					t.Fatalf("%s summary %d: %+v, want %+v", label, i, got.closed[i], serial.closed[i])
				}
			}
		}
	}
}

// TestEnsembleEngineThresholdAndHotSwap covers the fused verdict split
// and the SetEnsembleDB hot-swap path, plus the mode-mismatch guards.
func TestEnsembleEngineThresholdAndHotSwap(t *testing.T) {
	t.Parallel()
	tr := buildScenario(t, false)
	cfgs := ensembleCfgs(10)
	ens, err := core.NewEnsemble(core.MeasureCosine, cfgs...)
	if err != nil {
		t.Fatal(err)
	}
	train, valid := core.Split(tr, 3*time.Minute)
	if err := ens.Train(train); err != nil {
		t.Fatal(err)
	}

	var unknownNoScores, matched int
	sink := engine.SinkFunc(func(ev engine.Event) {
		switch ev := ev.(type) {
		case engine.UnknownDevice:
			if ev.Scores == nil && !ev.HasBest {
				unknownNoScores++
			}
		case engine.CandidateMatched:
			matched++
			if len(ev.ParamScores) != len(cfgs) {
				t.Errorf("matched event carries %d member vectors, want %d", len(ev.ParamScores), len(cfgs))
			}
			if ev.Observations() == 0 {
				t.Error("matched event reports zero observations")
			}
		}
	})
	eng, err := engine.NewEnsemble(cfgs, nil, engine.Options{Window: 2 * time.Minute, Sink: sink})
	if err != nil {
		t.Fatal(err)
	}
	if eng.EnsembleDB() != nil {
		t.Fatal("fresh ensemble engine has references installed")
	}
	// Mode and shape guards.
	if err := eng.SetDB(nil); err == nil {
		t.Fatal("SetDB accepted on an ensemble engine")
	}
	wrong, _ := core.NewEnsemble(core.MeasureCosine, core.Config{Param: core.ParamTxTime})
	if err := eng.SetEnsembleDB(wrong.Compile()); err == nil {
		t.Fatal("mismatched SetEnsembleDB accepted")
	}

	half := len(valid.Records) / 2
	for i := range valid.Records {
		rec := valid.Records[i]
		eng.Push(&rec)
		if i == half {
			if err := eng.SetEnsembleDB(ens.Compile()); err != nil {
				t.Fatal(err)
			}
		}
	}
	eng.Close()
	if unknownNoScores == 0 {
		t.Fatal("no score-less UnknownDevice events before the ensemble was installed")
	}
	if matched == 0 {
		t.Fatal("no CandidateMatched events after the ensemble was installed")
	}

	// Single-parameter engines reject the ensemble entry points.
	single, err := engine.New(core.Config{Param: core.ParamSize}, nil, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	if err := single.SetEnsembleDB(ens.Compile()); err == nil {
		t.Fatal("SetEnsembleDB accepted on a single-parameter engine")
	}
}

// TestEnsembleTrainerLiveEqualsBatch pins live fused enrollment against
// first principles on both engines: a cold-started ensemble trainer
// (horizon 1, Update on) over a stream enrolls exactly the references
// that batch per-window atomic training (Ensemble.Add over
// CandidatesIn, merging re-observations) produces — same devices, same
// insertion order, bit-identical fused MatchAll scores — and the
// sharded engine's trainer events match the serial engine's at every
// shard count.
func TestEnsembleTrainerLiveEqualsBatch(t *testing.T) {
	t.Parallel()
	tr := buildScenario(t, true)
	cfgs := ensembleCfgs(10)
	window := 2 * time.Minute

	// Batch reference: per-window atomic enrollment.
	extractor, err := core.NewEnsemble(core.MeasureCosine, cfgs...)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := core.NewEnsemble(core.MeasureCosine, cfgs...)
	if err != nil {
		t.Fatal(err)
	}
	cands := extractor.CandidatesIn(tr, window)
	for i := range cands {
		addr := dot11.Addr(cands[i].Addr)
		if refs := batch.Signatures(addr); refs != nil {
			for m := range refs {
				if err := refs[m].Merge(cands[i].Sigs[m]); err != nil {
					t.Fatal(err)
				}
			}
			continue
		}
		// Clone: the live trainer accumulates into its own signatures.
		sigs := make([]*core.Signature, len(cands[i].Sigs))
		for m, sig := range cands[i].Sigs {
			sigs[m] = sig.Clone()
		}
		if err := batch.Add(addr, sigs); err != nil {
			t.Fatal(err)
		}
	}

	run := func(shards int) (*core.Ensemble, []engine.Event) {
		t.Helper()
		trainer, err := engine.NewEnsembleTrainer(cfgs, core.MeasureCosine, engine.TrainerOptions{Horizon: 1, Update: true})
		if err != nil {
			t.Fatal(err)
		}
		var events []engine.Event
		sink := &collectSink{}
		var eng interface {
			Push(*capture.Record)
			Close()
		}
		if shards == 0 {
			eng, err = engine.NewEnsemble(cfgs, nil, engine.Options{Window: window, Sink: sink, Trainer: trainer})
		} else {
			eng, err = engine.NewShardedEnsemble(cfgs, nil, engine.ShardedOptions{
				Window: window, Shards: shards, Sink: sink, Trainer: trainer,
			})
		}
		if err != nil {
			t.Fatal(err)
		}
		for i := range tr.Records {
			rec := tr.Records[i]
			eng.Push(&rec)
		}
		eng.Close()
		events = sink.events
		return trainer.Ensemble(), events
	}

	compare := func(label string, live *core.Ensemble) {
		t.Helper()
		if live.Len() != batch.Len() {
			t.Fatalf("%s: %d refs, want %d", label, live.Len(), batch.Len())
		}
		if len(live.Partial()) != 0 {
			t.Fatalf("%s: live enrollment produced partial devices: %v", label, live.Partial())
		}
		lm, bm := live.Members(), batch.Members()
		for m := range bm {
			ld, bd := lm[m].Devices(), bm[m].Devices()
			if len(ld) != len(bd) {
				t.Fatalf("%s member %d: %d devices, want %d", label, m, len(ld), len(bd))
			}
			for i := range bd {
				if ld[i] != bd[i] {
					t.Fatalf("%s member %d device %d: %v, want %v (insertion order)", label, m, i, ld[i], bd[i])
				}
			}
		}
		// Fused scores over the full candidate set, bit-identical.
		lce, bce := live.Compile(), batch.Compile()
		lf, _ := lce.MatchAll(cands)
		bf, _ := bce.MatchAll(cands)
		for i := range bf {
			sameFused(t, label, lf[i], bf[i])
		}
	}

	serialEns, serialEvents := run(0)
	compare("serial", serialEns)
	for _, shards := range []int{1, 2, 4} {
		liveEns, events := run(shards)
		label := "shards=" + string(rune('0'+shards))
		compare(label, liveEns)
		if len(events) != len(serialEvents) {
			t.Fatalf("%s: %d events, want %d", label, len(events), len(serialEvents))
		}
		for i := range serialEvents {
			sameTrainerEvent(t, label, events[i], serialEvents[i])
		}
	}
}

// sameTrainerEvent compares events across engines, covering the trainer
// event types on top of sameEvent's.
func sameTrainerEvent(t *testing.T, label string, got, want engine.Event) {
	t.Helper()
	switch want := want.(type) {
	case engine.EnrollmentProgress:
		if g, ok := got.(engine.EnrollmentProgress); !ok || g != want {
			t.Fatalf("%s: %+v, want %+v", label, got, want)
		}
	case engine.DeviceEnrolled:
		if g, ok := got.(engine.DeviceEnrolled); !ok || g != want {
			t.Fatalf("%s: %+v, want %+v", label, got, want)
		}
	case engine.DBSwapped:
		if g, ok := got.(engine.DBSwapped); !ok || g != want {
			t.Fatalf("%s: %+v, want %+v", label, got, want)
		}
	case engine.CandidateMatched:
		g, ok := got.(engine.CandidateMatched)
		if !ok {
			t.Fatalf("%s: got %T, want CandidateMatched", label, got)
		}
		if g.Window != want.Window || g.Addr != want.Addr || g.Best != want.Best {
			t.Fatalf("%s: matched %v/w%d best %+v, want %v/w%d best %+v",
				label, g.Addr, g.Window, g.Best, want.Addr, want.Window, want.Best)
		}
		sameScores(t, label, g.Scores, want.Scores)
	case engine.UnknownDevice:
		g, ok := got.(engine.UnknownDevice)
		if !ok {
			t.Fatalf("%s: got %T, want UnknownDevice", label, got)
		}
		if g.Window != want.Window || g.Addr != want.Addr || g.Best != want.Best || g.HasBest != want.HasBest {
			t.Fatalf("%s: unknown %v/w%d, want %v/w%d", label, g.Addr, g.Window, want.Addr, want.Window)
		}
		sameScores(t, label, g.Scores, want.Scores)
	default:
		sameEvent(t, label, got, want)
	}
}

// TestEnsembleTrainerRefusesPartialSeed pins the trainer half of the
// partially-known fix: a warm start from an ensemble holding devices
// enrolled in some members but not all is refused outright.
func TestEnsembleTrainerRefusesPartialSeed(t *testing.T) {
	t.Parallel()
	seed, err := core.NewEnsemble(core.MeasureCosine,
		core.Config{Param: core.ParamSize, MinObservations: 1},
		core.Config{Param: core.ParamInterArrival, MinObservations: 1})
	if err != nil {
		t.Fatal(err)
	}
	// One device known to the size member only.
	tr := &capture.Trace{}
	tr.Records = append(tr.Records, capture.Record{
		T: 0, Sender: dot11.LocalAddr(9), Receiver: dot11.LocalAddr(99),
		Class: dot11.ClassData, Size: 500, RateMbps: 24, FCSOK: true,
	})
	if err := seed.Train(tr); err != nil {
		t.Fatal(err)
	}
	if len(seed.Partial()) == 0 {
		t.Fatal("seed construction failed to produce a partial device")
	}
	if _, err := engine.NewEnsembleTrainerFrom(seed, engine.TrainerOptions{}); err == nil {
		t.Fatal("partial seed accepted")
	}

	// A clean seed is accepted and warm-starts matching.
	clean, err := core.NewEnsemble(core.MeasureCosine,
		core.Config{Param: core.ParamSize, MinObservations: 1},
		core.Config{Param: core.ParamRate, MinObservations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := clean.Train(tr); err != nil {
		t.Fatal(err)
	}
	trainer, err := engine.NewEnsembleTrainerFrom(clean, engine.TrainerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if trainer.Ensemble().Len() != 1 {
		t.Fatalf("warm-started trainer holds %d refs, want 1", trainer.Ensemble().Len())
	}
	if trainer.Database() != nil || trainer.Compiled() != nil {
		t.Fatal("ensemble trainer leaks single-parameter accessors")
	}
}
