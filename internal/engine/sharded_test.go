package engine_test

import (
	"sync"
	"testing"
	"time"

	"dot11fp/internal/capture"
	"dot11fp/internal/core"
	"dot11fp/internal/dot11"
	"dot11fp/internal/engine"
	"dot11fp/internal/scenario"
)

// collectSink gathers a full ordered event stream. The sharded engine
// delivers events from its merger goroutine, so the slice is guarded;
// reads happen after Close, when delivery has quiesced.
type collectSink struct {
	mu     sync.Mutex
	events []engine.Event
}

func (c *collectSink) HandleEvent(ev engine.Event) {
	c.mu.Lock()
	c.events = append(c.events, ev)
	c.mu.Unlock()
}

// sameEvent asserts two events are equal in type and content, down to
// bit-identical scores.
func sameEvent(t *testing.T, label string, got, want engine.Event) {
	t.Helper()
	switch want := want.(type) {
	case engine.CandidateMatched:
		g, ok := got.(engine.CandidateMatched)
		if !ok {
			t.Fatalf("%s: got %T, want CandidateMatched", label, got)
		}
		if g.Window != want.Window || g.Addr != want.Addr || g.Best != want.Best {
			t.Fatalf("%s: matched %v/w%d best %+v, want %v/w%d best %+v",
				label, g.Addr, g.Window, g.Best, want.Addr, want.Window, want.Best)
		}
		sameScores(t, label, g.Scores, want.Scores)
		sameSig(t, label, g.Sig, want.Sig)
	case engine.UnknownDevice:
		g, ok := got.(engine.UnknownDevice)
		if !ok {
			t.Fatalf("%s: got %T, want UnknownDevice", label, got)
		}
		if g.Window != want.Window || g.Addr != want.Addr || g.Best != want.Best || g.HasBest != want.HasBest {
			t.Fatalf("%s: unknown %+v, want %+v", label, g, want)
		}
		sameScores(t, label, g.Scores, want.Scores)
		sameSig(t, label, g.Sig, want.Sig)
	case engine.CandidateDropped:
		g, ok := got.(engine.CandidateDropped)
		if !ok {
			t.Fatalf("%s: got %T, want CandidateDropped", label, got)
		}
		if g != want {
			t.Fatalf("%s: dropped %+v, want %+v", label, g, want)
		}
	case engine.WindowClosed:
		g, ok := got.(engine.WindowClosed)
		if !ok {
			t.Fatalf("%s: got %T, want WindowClosed", label, got)
		}
		if g != want {
			t.Fatalf("%s: closed %+v, want %+v", label, g, want)
		}
	default:
		t.Fatalf("%s: unhandled event type %T", label, want)
	}
}

func sameScores(t *testing.T, label string, got, want []core.Score) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d scores, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] { // exact float equality: bit-identical
			t.Fatalf("%s score %d: %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// TestShardedIdenticalToSerial is the refactor's acceptance test: over
// the office and conference scenario traces and the hand-built edge
// trace, the sharded engine's merged event stream is identical — same
// events, same order, bit-identical scores — to the serial Engine's,
// for shards=1 and for every shard count beyond it, with and without a
// mid-stream Flush.
func TestShardedIdenticalToSerial(t *testing.T) {
	t.Parallel()
	traces := map[string]*capture.Trace{
		"office": buildScenario(t, false),
		"conf":   buildScenario(t, true),
		"edges":  edgeTrace(),
	}
	type tc struct {
		window   time.Duration
		minObs   int
		param    core.Param
		shards   int
		midFlush bool
	}
	cases := []tc{
		{2 * time.Minute, 0, core.ParamInterArrival, 1, false},
		{2 * time.Minute, 0, core.ParamInterArrival, 4, false},
		{time.Minute, 10, core.ParamSize, 2, false},
		{time.Minute, 10, core.ParamSize, 7, true},
		{90 * time.Second, 25, core.ParamTxTime, 3, false},
		{-1, 10, core.ParamMediumAccess, 4, false}, // whole stream as one window
	}
	for name, tr := range traces {
		train, valid := core.Split(tr, 3*time.Minute)
		if name == "edges" {
			train, valid = tr, tr
		}
		for _, c := range cases {
			cfg := core.Config{Param: c.param, MinObservations: c.minObs}
			db := core.NewDatabase(cfg, core.MeasureCosine)
			if err := db.Train(train); err != nil {
				t.Fatal(err)
			}
			cdb := db.Compile()
			label := name + "/" + c.param.ShortName()

			want := &collectSink{}
			serial, err := engine.New(cfg, cdb, engine.Options{
				Window: c.window, Threshold: 0.2, Sink: want,
			})
			if err != nil {
				t.Fatal(err)
			}
			got := &collectSink{}
			sharded, err := engine.NewSharded(cfg, cdb, engine.ShardedOptions{
				Window: c.window, Threshold: 0.2, Shards: c.shards, Sink: got,
			})
			if err != nil {
				t.Fatal(err)
			}
			half := len(valid.Records) / 2
			for i := range valid.Records {
				rec := valid.Records[i]
				serial.Push(&rec)
				rec = valid.Records[i] // fresh copy: the engines must not alias
				sharded.Push(&rec)
				if c.midFlush && i == half {
					serial.Flush()
					sharded.Flush()
				}
			}
			serial.Close()
			sharded.Close()

			if len(got.events) != len(want.events) {
				t.Fatalf("%s shards=%d: %d events, want %d", label, c.shards, len(got.events), len(want.events))
			}
			for i := range want.events {
				sameEvent(t, label, got.events[i], want.events[i])
			}

			ss, ws := sharded.Stats(), serial.Stats()
			if ss.Frames != ws.Frames || ss.WindowsClosed != ws.WindowsClosed ||
				ss.Matched != ws.Matched || ss.Unknown != ws.Unknown ||
				ss.Dropped != ws.Dropped || ss.DroppedFrames != 0 {
				t.Fatalf("%s shards=%d: stats %+v, want %+v", label, c.shards, ss, ws)
			}
		}
	}
}

// TestShardedBackpressureDrop pins the Drop policy: with a minimal
// queue and a sink that stalls the pipeline, Push never blocks for
// long, dropped observations are counted, and the engine still drains
// cleanly with consistent counters.
func TestShardedBackpressureDrop(t *testing.T) {
	t.Parallel()
	cfg := core.Config{Param: core.ParamSize, MinObservations: 1}
	slow := engine.SinkFunc(func(ev engine.Event) {
		if _, ok := ev.(engine.WindowClosed); ok {
			time.Sleep(2 * time.Millisecond)
		}
	})
	eng, err := engine.NewSharded(cfg, nil, engine.ShardedOptions{
		Window:       time.Second,
		Shards:       2,
		QueueLen:     1, // one batch per shard
		Backpressure: engine.Drop,
		Sink:         slow,
	})
	if err != nil {
		t.Fatal(err)
	}
	senders := make([]dot11.Addr, 64)
	for i := range senders {
		senders[i] = dot11.LocalAddr(uint64(i + 1))
	}
	for i := 0; i < 200_000; i++ {
		rec := capture.Record{
			T: int64(i) * 50, Sender: senders[i%len(senders)], Receiver: apX,
			Class: dot11.ClassData, Size: 300, RateMbps: 24, FCSOK: true,
		}
		eng.Push(&rec)
	}
	eng.Close()
	st := eng.Stats()
	if st.DroppedFrames == 0 {
		t.Fatal("drop policy never dropped under a stalled sink and a 1-batch queue")
	}
	if st.Frames != 200_000 || st.Candidates != st.Matched+st.Unknown || st.WindowsClosed == 0 {
		t.Fatalf("inconsistent stats after lossy run: %+v", st)
	}
}

// TestShardedEviction pins the bounded-sender behaviour end to end: a
// per-shard cap keeps live senders bounded under heavy MAC churn, and
// the evicted senders surface as CandidateDropped events with Evicted
// set.
func TestShardedEviction(t *testing.T) {
	t.Parallel()
	cfg := core.Config{Param: core.ParamSize, MinObservations: 10}
	var evictedEvents, droppedEvents int
	sink := engine.SinkFunc(func(ev engine.Event) {
		if d, ok := ev.(engine.CandidateDropped); ok {
			droppedEvents++
			if d.Evicted {
				evictedEvents++
			}
		}
	})
	const shards, cap = 4, 32
	eng, err := engine.NewSharded(cfg, nil, engine.ShardedOptions{
		Window: time.Hour,
		Shards: shards,
		Limits: core.SenderLimits{MaxSenders: cap},
		Sink:   sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 20k distinct randomized MACs in one window: unbounded state would
	// hold 20k signatures; the cap keeps it at shards*cap.
	x := uint64(1)
	maxLive := 0
	for i := 0; i < 20_000; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		rec := capture.Record{
			T: int64(i) * 100, Sender: dot11.LocalAddr(x >> 24), Receiver: apX,
			Class: dot11.ClassData, Size: 300, RateMbps: 24, FCSOK: true,
		}
		eng.Push(&rec)
		if i%1000 == 999 {
			if live := eng.Stats().LiveSenders; live > maxLive {
				maxLive = live
			}
		}
	}
	eng.Close()
	if maxLive > shards*cap {
		t.Fatalf("live senders reached %d, cap is %d", maxLive, shards*cap)
	}
	st := eng.Stats()
	if st.Evicted == 0 || evictedEvents == 0 {
		t.Fatalf("no evictions under 20k-MAC churn with cap %d: stats %+v, %d evicted events",
			cap, st, evictedEvents)
	}
	// Detailed CandidateDropped events are capped per shard and window
	// (the eviction record cap); the overflow is counted in the stats
	// but carries no event — both counters must agree on the overflow.
	if uint64(droppedEvents) > st.Dropped || uint64(evictedEvents) > st.Evicted {
		t.Fatalf("more events than counted: %d/%d events, stats %+v", droppedEvents, evictedEvents, st)
	}
	if st.Dropped-uint64(droppedEvents) != st.Evicted-uint64(evictedEvents) {
		t.Fatalf("silent overflow disagrees: %d dropped vs %d evicted beyond events (stats %+v)",
			st.Dropped-uint64(droppedEvents), st.Evicted-uint64(evictedEvents), st)
	}
}

// TestShardedCloseIdempotent pins Close-after-Close and Push-after-
// Close behaviour.
func TestShardedCloseIdempotent(t *testing.T) {
	t.Parallel()
	eng, err := engine.NewSharded(core.Config{Param: core.ParamSize}, nil, engine.ShardedOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	rec := capture.Record{T: 1, Sender: staA, Class: dot11.ClassData, FCSOK: true, Size: 100, RateMbps: 24}
	eng.Push(&rec)
	eng.Close()
	eng.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Push after Close did not panic")
		}
	}()
	eng.Push(&rec)
}

// TestShardedClusteredIdenticalToSerial extends the equivalence pin to
// the clustering stage: over the MAC-randomizing office trace, the
// sharded engine resolving rotated senders in its router produces the
// same event stream as the serial engine resolving them in its
// accumulator — canonical addressing is a pure function of content, so
// the two paths must agree bit for bit at every shard count.
func TestShardedClusteredIdenticalToSerial(t *testing.T) {
	t.Parallel()
	p := scenario.RandomizedOffice("shard-rand", 47, 8*time.Minute, 8)
	tr, _, err := scenario.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	train, valid := core.Split(tr, 3*time.Minute)
	cfg := core.Config{Param: core.ParamProbeIE}
	db := core.NewDatabase(cfg, core.MeasureCosine)
	if err := db.Train(core.NewClusterer(0).Apply(train)); err != nil {
		t.Fatal(err)
	}
	cdb := db.Compile()

	for _, shards := range []int{1, 3, 5} {
		want := &collectSink{}
		serial, err := engine.New(cfg, cdb, engine.Options{
			Window: 2 * time.Minute, Threshold: 0.2, Sink: want,
			Cluster: core.NewClusterer(0),
		})
		if err != nil {
			t.Fatal(err)
		}
		got := &collectSink{}
		sharded, err := engine.NewSharded(cfg, cdb, engine.ShardedOptions{
			Window: 2 * time.Minute, Threshold: 0.2, Shards: shards, Sink: got,
			Cluster: core.NewClusterer(0),
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range valid.Records {
			rec := valid.Records[i]
			serial.Push(&rec)
			rec = valid.Records[i]
			sharded.Push(&rec)
		}
		serial.Close()
		sharded.Close()

		if len(got.events) != len(want.events) {
			t.Fatalf("shards=%d: %d events, want %d", shards, len(got.events), len(want.events))
		}
		for i := range want.events {
			sameEvent(t, "clustered", got.events[i], want.events[i])
		}
	}
}
