package engine_test

import (
	"testing"
	"time"

	"dot11fp/internal/engine"
)

// TestChannelSinkBlockingBackpressures pins the default full-buffer
// policy: a blocking sink's send into a full channel waits for the
// consumer, losing nothing and counting nothing.
func TestChannelSinkBlockingBackpressures(t *testing.T) {
	t.Parallel()
	sink := engine.NewChannelSink(1)
	sink.HandleEvent(engine.WindowClosed{Window: 0})

	// The second send must block until the consumer drains one event.
	sent := make(chan struct{})
	go func() {
		sink.HandleEvent(engine.WindowClosed{Window: 1})
		close(sent)
	}()
	select {
	case <-sent:
		t.Fatal("send into a full blocking sink did not block")
	case <-time.After(20 * time.Millisecond):
	}
	if ev := (<-sink.C).(engine.WindowClosed); ev.Window != 0 {
		t.Fatalf("drained window %d, want 0", ev.Window)
	}
	select {
	case <-sent:
	case <-time.After(2 * time.Second):
		t.Fatal("blocked send never completed after a drain")
	}
	if ev := (<-sink.C).(engine.WindowClosed); ev.Window != 1 {
		t.Fatalf("drained window %d, want 1", ev.Window)
	}
	if n := sink.Dropped(); n != 0 {
		t.Fatalf("blocking sink counted %d drops, want 0", n)
	}
}

// TestChannelSinkDroppingCounts pins the dropping policy: a full buffer
// discards the event immediately — never stalling the caller — and
// every discard is visible in Dropped; delivered events keep their
// order.
func TestChannelSinkDroppingCounts(t *testing.T) {
	t.Parallel()
	sink := engine.NewDroppingChannelSink(2)
	for i := 0; i < 5; i++ {
		done := make(chan struct{})
		go func(i int) {
			sink.HandleEvent(engine.WindowClosed{Window: i})
			close(done)
		}(i)
		select {
		case <-done:
		case <-time.After(2 * time.Second):
			t.Fatalf("send %d blocked on a dropping sink", i)
		}
	}
	if n := sink.Dropped(); n != 3 {
		t.Fatalf("counted %d drops, want 3", n)
	}
	sink.Close()
	var got []int
	for ev := range sink.C {
		got = append(got, ev.(engine.WindowClosed).Window)
	}
	// The first two sends fit the buffer; the rest dropped. Order of
	// the delivered prefix is preserved.
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("delivered %v, want [0 1]", got)
	}
}
