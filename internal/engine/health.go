package engine

import (
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"time"
)

// Health is a point-in-time snapshot of an engine's supervision state,
// from Engine.Health or Sharded.Health. The zero value — no panics, no
// stalls — is a healthy engine.
//
// A recovered panic means the faulting unit of work was lost (a shard's
// batch, a merged window's events, or one trainer step) but the engine
// keeps running: window clocking, the other shards, and Flush/Close
// semantics all survive. The stream is then degraded — no longer
// bit-identical to a fault-free run — which is why the counters exist:
// an operator (or fingerprintd's degraded-mode exit) can tell a clean
// run from a survived one.
// The JSON field names are a stable API surface shared by the HTTP
// server and the /metrics encoder (TestSnapshotJSONStable pins them).
type Health struct {
	// ShardPanics, MergerPanics, TrainerPanics and EnginePanics count
	// recovered panics per component (EnginePanics is the serial
	// engine's window-delivery path).
	ShardPanics   uint64 `json:"shard_panics"`
	MergerPanics  uint64 `json:"merger_panics"`
	TrainerPanics uint64 `json:"trainer_panics"`
	EnginePanics  uint64 `json:"engine_panics"`
	// LastPanic describes the most recent recovered panic, "" if none.
	LastPanic string `json:"last_panic,omitempty"`
	// StalledShards lists shards the watchdog currently considers
	// stalled (queued work, no progress across a sampling interval).
	StalledShards []int `json:"stalled_shards,omitempty"`
	// QueueDepths is each shard's queued batch count at snapshot time
	// (nil on the serial engine, which has no queues).
	QueueDepths []int `json:"queue_depths,omitempty"`
}

// Panics returns the total recovered panic count.
func (h Health) Panics() uint64 {
	return h.ShardPanics + h.MergerPanics + h.TrainerPanics + h.EnginePanics
}

// Healthy reports a fault-free engine: no recovered panics, no stalled
// shards.
func (h Health) Healthy() bool {
	return h.Panics() == 0 && len(h.StalledShards) == 0
}

// ComponentPanicked is the health event for a recovered panic.
type ComponentPanicked struct {
	// Component is "shard", "merger", "trainer" or "engine".
	Component string
	// Shard is the shard index for Component "shard", -1 otherwise.
	Shard int
	// Err is the panic value, stringified.
	Err string
	// Stack is the panicking goroutine's stack trace.
	Stack string
}

// ShardStalled is the watchdog's health event for a shard with queued
// work and no progress across at least one sampling interval.
type ShardStalled struct {
	Shard int
	// Queued is the shard's queued batch count at detection time.
	Queued int
	// For is how long the shard has made no progress (a multiple of the
	// watchdog interval).
	For time.Duration
}

// ShardResumed is the watchdog's all-clear for a previously stalled
// shard.
type ShardResumed struct {
	Shard int
}

func (ComponentPanicked) event() {}
func (ShardStalled) event()      {}
func (ShardResumed) event()      {}

// Hooks are the engine's fault-injection/test points, called on the
// internal goroutines they name. Production engines leave them nil —
// a nil hook is a single predictable branch per batch, never per
// frame, so the zero-allocation push path is untouched.
type Hooks struct {
	// ShardBatch runs on the shard goroutine before each queued batch
	// (window-close controls included) is processed. shard is the shard
	// index, batchLen the batch's observation count. A panic it raises
	// is recovered and counted exactly like a shard fault.
	ShardBatch func(shard, batchLen int)
	// MergerWindow runs on the merger goroutine before each completed
	// window is merged and emitted; window is the window index. A panic
	// it raises is recovered and counted as a merger fault.
	MergerWindow func(window int)
}

// healthState aggregates recovered-panic and stall accounting for one
// engine. Writers are internal goroutines (shards, merger, watchdog,
// or the pushing goroutine on the serial engine); snapshot may be
// called from any goroutine.
type healthState struct {
	mu       sync.Mutex
	shards   uint64
	mergers  uint64
	trainers uint64
	engines  uint64
	last     string
	stalled  map[int]bool
}

// recordPanic counts one recovered panic and, when a health sink is
// configured, delivers the ComponentPanicked event (on the recovering
// goroutine).
func (h *healthState) recordPanic(sink Sink, component string, shard int, r any) {
	stack := string(debug.Stack())
	h.mu.Lock()
	switch component {
	case "shard":
		h.shards++
	case "merger":
		h.mergers++
	case "trainer":
		h.trainers++
	default:
		h.engines++
	}
	h.last = fmt.Sprintf("%s: %v", component, r)
	h.mu.Unlock()
	if sink != nil {
		sink.HandleEvent(ComponentPanicked{
			Component: component, Shard: shard,
			Err: fmt.Sprint(r), Stack: stack,
		})
	}
}

// setStalled updates one shard's stall flag, reporting whether the
// flag changed (the event edge).
func (h *healthState) setStalled(shard int, stalled bool) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.stalled == nil {
		h.stalled = make(map[int]bool)
	}
	if h.stalled[shard] == stalled {
		return false
	}
	h.stalled[shard] = stalled
	return true
}

// snapshot builds the exported Health view.
func (h *healthState) snapshot() Health {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := Health{
		ShardPanics:   h.shards,
		MergerPanics:  h.mergers,
		TrainerPanics: h.trainers,
		EnginePanics:  h.engines,
		LastPanic:     h.last,
	}
	for i, st := range h.stalled { //fp:unordered shard ids are sorted below
		if st {
			out.StalledShards = append(out.StalledShards, i)
		}
	}
	sort.Ints(out.StalledShards)
	return out
}
