package traffic

import (
	"testing"

	"dot11fp/internal/stats"
)

// drain pulls up to n arrivals from a source starting at t0.
func drain(s Source, t0 int64, n int) []int64 {
	var out []int64
	now := t0
	for i := 0; i < n; i++ {
		at, _, ok := s.Next(now)
		if !ok {
			break
		}
		out = append(out, at)
		now = at
	}
	return out
}

func TestCBRPeriodic(t *testing.T) {
	t.Parallel()
	c := NewCBR("voip", 1000, 20_000, 172, 0, nil)
	times := drain(c, 0, 5)
	want := []int64{1000, 21_000, 41_000, 61_000, 81_000}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("arrival %d = %d, want %d", i, times[i], want[i])
		}
	}
}

func TestCBRSkipsToFuture(t *testing.T) {
	t.Parallel()
	c := NewCBR("voip", 0, 10_000, 172, 0, nil)
	at, _, ok := c.Next(55_000)
	if !ok || at != 60_000 {
		t.Fatalf("Next(55ms) = %d, want 60000", at)
	}
}

func TestCBREnd(t *testing.T) {
	t.Parallel()
	c := NewCBR("burst", 0, 1_000, 100, 0, nil)
	c.EndUs = 5_000
	times := drain(c, 0, 100)
	if len(times) == 0 || len(times) > 5 {
		t.Fatalf("bounded CBR yielded %d arrivals", len(times))
	}
	for _, at := range times {
		if at >= 5_000 {
			t.Fatalf("arrival %d at/after EndUs", at)
		}
	}
}

func TestCBRJitterBounded(t *testing.T) {
	t.Parallel()
	r := stats.NewRand(1, 1)
	c := NewCBR("jittery", 0, 20_000, 100, 2_000, r)
	times := drain(c, 0, 500)
	for i := 1; i < len(times); i++ {
		gap := times[i] - times[i-1]
		if gap < 10_000 || gap > 30_000 {
			t.Fatalf("jittered gap %d outside [period/2, 3*period/2]", gap)
		}
	}
}

func TestSaturatorImmediate(t *testing.T) {
	t.Parallel()
	s := &Saturator{Label: "iperf", Bytes: 1470, StartUs: 1_000}
	at, sdu, ok := s.Next(0)
	if !ok || at != 1_000 || sdu.Bytes != 1470 {
		t.Fatalf("first arrival = (%d,%d,%v)", at, sdu.Bytes, ok)
	}
	at2, _, _ := s.Next(5_000)
	if at2 != 5_001 {
		t.Fatalf("saturator should arrive immediately after now, got %d", at2)
	}
	s.EndUs = 6_000
	if _, _, ok := s.Next(7_000); ok {
		t.Fatal("saturator should stop at EndUs")
	}
}

func TestWebOnOffStructure(t *testing.T) {
	t.Parallel()
	w := NewWeb("web", 0, stats.NewRand(7, 1))
	times := drain(w, 0, 3_000)
	if len(times) != 3_000 {
		t.Fatalf("web source exhausted early: %d", len(times))
	}
	// Arrivals strictly increase.
	var gaps []float64
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			t.Fatalf("non-monotone arrivals at %d", i)
		}
		gaps = append(gaps, float64(times[i]-times[i-1]))
	}
	s := stats.Summarize(gaps)
	// Heavy tail: OFF (reading) periods dwarf the in-burst ACK gaps.
	if s.Max < 100*s.P50 {
		t.Errorf("web gaps not heavy-tailed: p50=%v max=%v", s.P50, s.Max)
	}
	if s.Max < 4_000_000 {
		t.Errorf("no OFF period sampled: max gap %v < OffMinUs", s.Max)
	}
}

func TestWebSizesBimodal(t *testing.T) {
	t.Parallel()
	w := NewWeb("web", 0, stats.NewRand(8, 1))
	small, large := 0, 0
	now := int64(0)
	for i := 0; i < 2_000; i++ {
		at, sdu, ok := w.Next(now)
		if !ok {
			t.Fatal("exhausted")
		}
		now = at
		if sdu.Bytes == 40 {
			small++
		} else if sdu.Bytes >= 480 {
			large++
		}
	}
	if small == 0 || large == 0 {
		t.Fatalf("sizes not bimodal: small=%d large=%d", small, large)
	}
	if small < large {
		t.Errorf("ACKs (%d) should outnumber requests (%d)", small, large)
	}
}

func TestInteractive(t *testing.T) {
	t.Parallel()
	s := NewInteractive("ssh", 0, stats.NewRand(9, 1))
	times := drain(s, 0, 1_000)
	var gaps []float64
	for i := 1; i < len(times); i++ {
		gaps = append(gaps, float64(times[i]-times[i-1]))
	}
	sum := stats.Summarize(gaps)
	if sum.Mean < 100_000 || sum.Mean > 600_000 {
		t.Errorf("ssh mean gap = %v, want ~280ms", sum.Mean)
	}
}

func TestServiceBurstStructure(t *testing.T) {
	t.Parallel()
	svc := NewService("ssdp", 1_000_000, 0, 1_500, []int{311, 325, 341}, 0, nil)
	type arr struct {
		at int64
		sz int
	}
	var got []arr
	now := int64(-1)
	for i := 0; i < 9; i++ {
		at, sdu, ok := svc.Next(now)
		if !ok {
			t.Fatal("service exhausted")
		}
		if !sdu.Broadcast {
			t.Fatal("service SDU not broadcast")
		}
		got = append(got, arr{at, sdu.Bytes})
		now = at
	}
	// First burst at phase 0: frames at 0, 1500, 3000 with sizes 311/325/341.
	if got[0].at != 0 || got[1].at != 1_500 || got[2].at != 3_000 {
		t.Fatalf("burst 1 times = %d,%d,%d", got[0].at, got[1].at, got[2].at)
	}
	if got[0].sz != 311 || got[1].sz != 325 || got[2].sz != 341 {
		t.Fatalf("burst sizes = %d,%d,%d", got[0].sz, got[1].sz, got[2].sz)
	}
	// Second burst starts one period later.
	if got[3].at != 1_000_000 {
		t.Fatalf("burst 2 start = %d, want 1000000", got[3].at)
	}
}

func TestServicePhase(t *testing.T) {
	t.Parallel()
	svc := NewService("arp", 1_000_000, 0, 0, []int{36}, 123_456, nil)
	at, _, ok := svc.Next(-1)
	if !ok || at != 123_456 {
		t.Fatalf("phased first arrival = %d, want 123456", at)
	}
}

func TestServiceCatalogAndLookup(t *testing.T) {
	t.Parallel()
	cat := ServiceCatalog()
	if len(cat) < 6 {
		t.Fatalf("service catalogue too small: %d", len(cat))
	}
	names := make(map[string]bool)
	for _, s := range cat {
		if s.PeriodUs <= 0 || len(s.BurstBytes) == 0 {
			t.Errorf("service %q malformed", s.Name)
		}
		if names[s.Name] {
			t.Errorf("duplicate service %q", s.Name)
		}
		names[s.Name] = true
	}
	if _, ok := ServiceByName("llmnr", 0, stats.NewRand(1, 1)); !ok {
		t.Error("ServiceByName(llmnr) failed")
	}
	if _, ok := ServiceByName("absent", 0, nil); ok {
		t.Error("ServiceByName(absent) should fail")
	}
}

func TestMergedOrdering(t *testing.T) {
	t.Parallel()
	a := NewCBR("a", 0, 30_000, 100, 0, nil)
	b := NewCBR("b", 10_000, 30_000, 200, 0, nil)
	m := NewMerged(a, b)
	var labels []string
	var times []int64
	now := int64(-1)
	for i := 0; i < 6; i++ {
		at, sdu, ok := m.Next(now)
		if !ok {
			t.Fatal("merged exhausted")
		}
		labels = append(labels, sdu.Label)
		times = append(times, at)
		now = at
	}
	wantLabels := []string{"a", "b", "a", "b", "a", "b"}
	wantTimes := []int64{0, 10_000, 30_000, 40_000, 60_000, 70_000}
	for i := range wantLabels {
		if labels[i] != wantLabels[i] || times[i] != wantTimes[i] {
			t.Fatalf("merged[%d] = (%s,%d), want (%s,%d)", i, labels[i], times[i], wantLabels[i], wantTimes[i])
		}
	}
}

func TestMergedExhaustion(t *testing.T) {
	t.Parallel()
	a := NewCBR("a", 0, 1_000, 10, 0, nil)
	a.EndUs = 3_500
	b := NewCBR("b", 500, 1_000, 20, 0, nil)
	b.EndUs = 1_600
	m := NewMerged(a, b)
	count := 0
	now := int64(-1)
	for {
		at, _, ok := m.Next(now)
		if !ok {
			break
		}
		now = at
		count++
		if count > 20 {
			t.Fatal("merged did not exhaust")
		}
	}
	// a yields 0,1000,2000,3000 (4); b yields 500,1500 (2).
	if count != 6 {
		t.Fatalf("merged yielded %d arrivals, want 6", count)
	}
	m2 := NewMerged()
	if _, _, ok := m2.Next(0); ok {
		t.Fatal("empty merged should be exhausted")
	}
}

func TestServiceCatchesUpAfterBusyPeriod(t *testing.T) {
	t.Parallel()
	svc := NewService("igmp", 100_000, 0, 1_000, []int{62, 62}, 0, nil)
	// First frame at 0.
	at, _, _ := svc.Next(-1)
	if at != 0 {
		t.Fatalf("first = %d", at)
	}
	// Pretend the MAC was blocked for 5ms; the second burst frame must be
	// delivered right after, not in the past.
	at2, _, _ := svc.Next(5_000)
	if at2 <= 5_000 {
		t.Fatalf("arrival in the past: %d", at2)
	}
}
