// Package traffic generates the application- and service-level workload
// that rides on the simulated 802.11 MAC. The paper's §VI-C shows that
// running services and applications reshape a device's inter-arrival and
// frame-size histograms — two identical netbooks are tellable apart
// purely by their service mix (Fig. 7). This package provides:
//
//   - application sources: saturated UDP (the paper's iperf experiments),
//     heavy-tailed web browsing, constant-bit-rate VoIP, interactive SSH,
//     bulk upload;
//   - network-service sources: periodic broadcast/multicast announcers
//     (SSDP, mDNS, LLMNR, IGMPv3, ARP, NBNS) with characteristic frame
//     sizes and burst structures.
//
// A Source is a deterministic pull-based arrival process: given the time
// of the previous arrival it returns the next scheduled SDU.
package traffic

import (
	"math/rand/v2"

	"dot11fp/internal/stats"
)

// SDU is one MAC service data unit handed to the MAC layer.
type SDU struct {
	// Bytes is the MSDU size (LLC + payload) before MAC framing.
	Bytes int
	// Broadcast marks group-addressed frames (sent unacknowledged at a
	// basic rate).
	Broadcast bool
	// Label names the generating application or service (for debugging
	// and trace statistics; never visible to the fingerprint pipeline).
	Label string
}

// Source is a deterministic arrival process. Next returns the absolute
// time (µs) of the next SDU strictly after now, or ok=false when the
// source is exhausted.
type Source interface {
	Next(now int64) (at int64, sdu SDU, ok bool)
}

// --- Saturated / constant-bit-rate sources ---------------------------------

// CBR emits fixed-size SDUs with a fixed period and optional jitter:
// VoIP frames, iperf UDP streams, telemetry.
type CBR struct {
	Label    string
	PeriodUs int64
	JitterUs float64 // gaussian σ applied per interval
	Bytes    int
	StartUs  int64
	EndUs    int64 // 0 = unbounded
	rng      *rand.Rand
	next     int64
	started  bool
}

// NewCBR builds a CBR source. r may be nil when JitterUs is zero.
func NewCBR(label string, startUs, periodUs int64, bytes int, jitterUs float64, r *rand.Rand) *CBR {
	return &CBR{Label: label, PeriodUs: periodUs, JitterUs: jitterUs, Bytes: bytes, StartUs: startUs, rng: r}
}

// Next implements Source.
func (c *CBR) Next(now int64) (int64, SDU, bool) {
	if !c.started {
		c.next = c.StartUs
		c.started = true
	}
	for c.next <= now {
		c.next += c.step()
	}
	if c.EndUs > 0 && c.next >= c.EndUs {
		return 0, SDU{}, false
	}
	at := c.next
	c.next += c.step()
	return at, SDU{Bytes: c.Bytes, Label: c.Label}, true
}

func (c *CBR) step() int64 {
	d := c.PeriodUs
	if c.JitterUs > 0 && c.rng != nil {
		d += int64(stats.TruncNormal(c.rng, 0, c.JitterUs, -float64(c.PeriodUs)/2, float64(c.PeriodUs)/2))
	}
	if d < 1 {
		d = 1
	}
	return d
}

// Saturator emits SDUs as fast as the MAC drains them (queue-limited):
// the iperf experiment of Figures 4 and 6. The MAC asks for the next
// arrival after each completed transmission, and the saturator always
// answers "immediately".
type Saturator struct {
	Label   string
	Bytes   int
	StartUs int64
	EndUs   int64 // 0 = unbounded
}

// Next implements Source.
func (s *Saturator) Next(now int64) (int64, SDU, bool) {
	at := now + 1
	if at < s.StartUs {
		at = s.StartUs
	}
	if s.EndUs > 0 && at >= s.EndUs {
		return 0, SDU{}, false
	}
	return at, SDU{Bytes: s.Bytes, Label: s.Label}, true
}

// --- Web browsing -----------------------------------------------------------

// Web models heavy-tailed browsing: ON periods with exponentially spaced
// uplink frames (TCP ACKs and HTTP requests), OFF periods drawn from a
// bounded Pareto (reading time). Sizes are a bimodal ACK/request mix.
type Web struct {
	Label string
	// MeanGapUs is the mean uplink inter-frame gap during ON periods.
	MeanGapUs float64
	// OnMeanUs is the mean ON-period length.
	OnMeanUs float64
	// OffMinUs/OffMaxUs bound the Pareto OFF period; OffAlpha shapes it.
	OffMinUs, OffMaxUs float64
	OffAlpha           float64
	// AckBytes/ReqBytes are the two size modes; ReqProb selects requests.
	AckBytes, ReqBytes int
	ReqProb            float64

	rng   *rand.Rand
	onEnd int64
	t     int64
	speed float64 // per-page pacing factor (ack clocking)
}

// NewWeb builds a browsing source with defaults modelling a page-load
// cycle: each ON period is one page fetch whose uplink is a dense
// TCP-ACK train (one ACK per downlink segment pair at megabit link
// speeds, i.e. sub-millisecond to low-millisecond gaps), plus occasional
// HTTP requests; OFF periods are heavy-tailed reading time. The dense
// ACK train keeps the MAC queue fed, so consecutive frames expose the
// card's SIFS/DIFS/backoff signature to the medium-access and
// inter-arrival fingerprints — the self-adjacency that makes busy
// devices fingerprintable in the paper's traces.
func NewWeb(label string, startUs int64, r *rand.Rand) *Web {
	return &Web{
		Label:     label,
		MeanGapUs: 1_000,
		OnMeanUs:  80_000,
		OffMinUs:  5_000_000, OffMaxUs: 180_000_000, OffAlpha: 1.15,
		AckBytes: 40, ReqBytes: 480, ReqProb: 0.12,
		rng: r,
		t:   startUs,
	}
}

// Next implements Source.
func (w *Web) Next(now int64) (int64, SDU, bool) {
	if w.t <= now {
		w.t = now + 1
	}
	for {
		if w.t >= w.onEnd {
			// Enter OFF, then a fresh ON period (one page fetch). Each
			// page is served at its own pace (server/route dependent).
			off := int64(stats.Pareto(w.rng, w.OffAlpha, w.OffMinUs, w.OffMaxUs))
			on := int64(stats.Exponential(w.rng, w.OnMeanUs))
			w.t += off
			w.onEnd = w.t + on
			w.speed = 0.75 + w.rng.Float64()*0.55
			continue
		}
		// ACK clocking: during a steady download the uplink ACK train is
		// nearly periodic at the per-page pace, with modest jitter.
		mean := w.MeanGapUs * w.speed
		gap := int64(stats.TruncNormal(w.rng, mean, mean/5, mean/2, mean*2))
		if gap < 50 {
			gap = 50 // back-to-back ACKs queue at the MAC
		}
		w.t += gap
		if w.t >= w.onEnd {
			continue // page fetch complete
		}
		size := w.AckBytes
		if w.rng.Float64() < w.ReqProb {
			size = w.ReqBytes + w.rng.IntN(600)
		}
		return w.t, SDU{Bytes: size, Label: w.Label}, true
	}
}

// --- Bulk transfer ------------------------------------------------------------

// BurstTrain emits periodic trains of back-to-back full-size frames:
// the uplink shape of a TCP bulk transfer (congestion windows drain in
// bursts). Within a burst the MAC queue stays non-empty, so consecutive
// frames are separated by pure DIFS+backoff — the card's timing
// signature.
type BurstTrain struct {
	Label    string
	PeriodUs int64 // gap between burst starts
	JitterUs float64
	Burst    int   // frames per burst
	GapUs    int64 // arrival spacing within a burst (keeps the queue fed)
	Bytes    int
	StartUs  int64

	rng     *rand.Rand
	nextAt  int64
	inBurst int
	started bool
}

// NewBurstTrain builds a bulk-transfer source.
func NewBurstTrain(label string, startUs, periodUs int64, burst, bytes int, jitterUs float64, r *rand.Rand) *BurstTrain {
	return &BurstTrain{
		Label: label, PeriodUs: periodUs, JitterUs: jitterUs,
		Burst: burst, GapUs: 700, Bytes: bytes, StartUs: startUs, rng: r,
	}
}

// Next implements Source.
func (b *BurstTrain) Next(now int64) (int64, SDU, bool) {
	if b.Burst <= 0 || b.PeriodUs <= 0 {
		return 0, SDU{}, false
	}
	if !b.started {
		b.nextAt = b.StartUs
		b.started = true
	}
	if b.inBurst >= b.Burst {
		b.inBurst = 0
		d := b.PeriodUs
		if b.JitterUs > 0 && b.rng != nil {
			d += int64(stats.TruncNormal(b.rng, 0, b.JitterUs, -float64(b.PeriodUs)/2, float64(b.PeriodUs)/2))
		}
		b.nextAt += d
	}
	at := b.nextAt + int64(b.inBurst)*b.GapUs
	b.inBurst++
	if at <= now {
		at = now + 1 // MAC fell behind; keep the queue fed
	}
	return at, SDU{Bytes: b.Bytes, Label: b.Label}, true
}

// --- Interactive (SSH-like) -------------------------------------------------

// Interactive models keystroke-driven traffic: exponentially spaced
// small frames with occasional larger paste/scroll bursts.
type Interactive struct {
	Label     string
	MeanGapUs float64
	Bytes     int
	rng       *rand.Rand
	t         int64
}

// NewInteractive builds an SSH-like source.
func NewInteractive(label string, startUs int64, r *rand.Rand) *Interactive {
	return &Interactive{Label: label, MeanGapUs: 280_000, Bytes: 68, rng: r, t: startUs}
}

// Next implements Source.
func (s *Interactive) Next(now int64) (int64, SDU, bool) {
	if s.t <= now {
		s.t = now + 1
	}
	s.t += int64(stats.Exponential(s.rng, s.MeanGapUs))
	size := s.Bytes
	if s.rng.Float64() < 0.05 {
		size += s.rng.IntN(900) // paste burst
	}
	return s.t, SDU{Bytes: size, Label: s.Label}, true
}

// --- Periodic broadcast services --------------------------------------------

// Service is a periodic broadcast/multicast announcer: every PeriodUs
// (±jitter) it emits a burst of len(BurstBytes) group-addressed frames
// spaced GapUs apart. This is the mechanism behind the paper's Fig. 7
// peaks: back-to-back broadcast frames at a basic rate produce
// inter-arrival peaks at airtime-determined positions.
type Service struct {
	Name       string
	PeriodUs   int64
	JitterUs   float64
	GapUs      int64 // queueing gap between burst frames
	BurstBytes []int
	PhaseUs    int64

	rng     *rand.Rand
	nextAt  int64
	burstAt int
	started bool
}

// NewService builds a periodic service source.
func NewService(name string, periodUs int64, jitterUs float64, gapUs int64, burstBytes []int, phaseUs int64, r *rand.Rand) *Service {
	bb := make([]int, len(burstBytes))
	copy(bb, burstBytes)
	return &Service{Name: name, PeriodUs: periodUs, JitterUs: jitterUs, GapUs: gapUs, BurstBytes: bb, PhaseUs: phaseUs, rng: r}
}

// Next implements Source.
func (s *Service) Next(now int64) (int64, SDU, bool) {
	if len(s.BurstBytes) == 0 || s.PeriodUs <= 0 {
		return 0, SDU{}, false
	}
	if !s.started {
		s.nextAt = s.PhaseUs
		s.started = true
	}
	if s.burstAt >= len(s.BurstBytes) {
		// Schedule the next burst.
		s.burstAt = 0
		d := s.PeriodUs
		if s.JitterUs > 0 && s.rng != nil {
			d += int64(stats.TruncNormal(s.rng, 0, s.JitterUs, -float64(s.PeriodUs)/3, float64(s.PeriodUs)/3))
		}
		s.nextAt += d
	}
	at := s.nextAt + int64(s.burstAt)*s.GapUs
	sz := s.BurstBytes[s.burstAt]
	s.burstAt++
	if at <= now {
		// The MAC fell behind (long busy period); deliver immediately
		// after now, preserving burst order.
		at = now + 1
	}
	return at, SDU{Bytes: sz, Broadcast: true, Label: s.Name}, true
}

// --- Service catalogue -------------------------------------------------------

// ServiceTemplate describes a named service archetype.
type ServiceTemplate struct {
	Name       string
	PeriodUs   int64
	JitterUs   float64
	GapUs      int64
	BurstBytes []int
}

// ServiceCatalog returns the named service archetypes with sizes and
// periods typical of 2008-era stacks. Sizes are MSDU bytes.
func ServiceCatalog() []ServiceTemplate {
	return []ServiceTemplate{
		{Name: "arp-probe", PeriodUs: 45_000_000, JitterUs: 8_000_000, GapUs: 900, BurstBytes: []int{36}},
		{Name: "igmpv3", PeriodUs: 125_000_000, JitterUs: 12_000_000, GapUs: 1_000, BurstBytes: []int{62, 62}},
		{Name: "llmnr", PeriodUs: 30_000_000, JitterUs: 6_000_000, GapUs: 700, BurstBytes: []int{84, 84}},
		{Name: "mdns", PeriodUs: 60_000_000, JitterUs: 10_000_000, GapUs: 1_200, BurstBytes: []int{193, 309}},
		{Name: "ssdp", PeriodUs: 90_000_000, JitterUs: 15_000_000, GapUs: 1_500, BurstBytes: []int{311, 325, 341}},
		{Name: "nbns", PeriodUs: 40_000_000, JitterUs: 7_000_000, GapUs: 800, BurstBytes: []int{92, 92, 92}},
		{Name: "dhcp-renew", PeriodUs: 300_000_000, JitterUs: 30_000_000, GapUs: 2_000, BurstBytes: []int{342}},
	}
}

// ServiceByName instantiates a catalogue service with a phase and rng.
func ServiceByName(name string, phaseUs int64, r *rand.Rand) (*Service, bool) {
	for _, t := range ServiceCatalog() {
		if t.Name == name {
			return NewService(t.Name, t.PeriodUs, t.JitterUs, t.GapUs, t.BurstBytes, phaseUs, r), true
		}
	}
	return nil, false
}

// --- Merging -----------------------------------------------------------------

// Merged multiplexes several sources into one time-ordered stream.
// It is itself a Source.
type Merged struct {
	srcs []Source
	// peeked holds the next pending arrival of each live source.
	peeked []pending
	primed bool
}

type pending struct {
	at  int64
	sdu SDU
	ok  bool
}

// NewMerged builds a merged source over the given sources.
func NewMerged(srcs ...Source) *Merged {
	return &Merged{srcs: srcs, peeked: make([]pending, len(srcs))}
}

// Next implements Source: it returns the earliest pending arrival among
// all sub-sources.
func (m *Merged) Next(now int64) (int64, SDU, bool) {
	if !m.primed {
		for i, s := range m.srcs {
			at, sdu, ok := s.Next(now)
			m.peeked[i] = pending{at, sdu, ok}
		}
		m.primed = true
	}
	best := -1
	for i := range m.peeked {
		if !m.peeked[i].ok {
			continue
		}
		if best < 0 || m.peeked[i].at < m.peeked[best].at {
			best = i
		}
	}
	if best < 0 {
		return 0, SDU{}, false
	}
	out := m.peeked[best]
	at, sdu, ok := m.srcs[best].Next(out.at)
	m.peeked[best] = pending{at, sdu, ok}
	return out.at, out.sdu, true
}
