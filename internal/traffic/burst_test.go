package traffic

import (
	"testing"

	"dot11fp/internal/stats"
)

func TestBurstTrainStructure(t *testing.T) {
	t.Parallel()
	bt := NewBurstTrain("bulk", 1_000, 100_000, 4, 1460, 0, nil)
	var times []int64
	now := int64(-1)
	for i := 0; i < 8; i++ {
		at, sdu, ok := bt.Next(now)
		if !ok {
			t.Fatal("exhausted")
		}
		if sdu.Bytes != 1460 {
			t.Fatalf("bytes = %d", sdu.Bytes)
		}
		if sdu.Broadcast {
			t.Fatal("bulk SDU marked broadcast")
		}
		times = append(times, at)
		now = at
	}
	// First burst: 1000, 1700, 2400, 3100 (gap 700).
	want := []int64{1_000, 1_700, 2_400, 3_100}
	for i, w := range want {
		if times[i] != w {
			t.Fatalf("burst frame %d at %d, want %d", i, times[i], w)
		}
	}
	// Second burst starts one period after the first.
	if times[4] != 101_000 {
		t.Fatalf("second burst at %d, want 101000", times[4])
	}
}

func TestBurstTrainCatchesUp(t *testing.T) {
	t.Parallel()
	bt := NewBurstTrain("bulk", 0, 50_000, 3, 1000, 0, nil)
	at, _, _ := bt.Next(-1)
	if at != 0 {
		t.Fatalf("first at %d", at)
	}
	// MAC blocked 10 ms: next burst frame must arrive right after.
	at2, _, _ := bt.Next(10_000)
	if at2 != 10_001 {
		t.Fatalf("catch-up arrival at %d, want 10001", at2)
	}
}

func TestBurstTrainJitterBounded(t *testing.T) {
	t.Parallel()
	bt := NewBurstTrain("bulk", 0, 100_000, 2, 500, 20_000, stats.NewRand(3, 9))
	var bursts []int64
	now := int64(-1)
	for i := 0; i < 40; i++ {
		at, _, ok := bt.Next(now)
		if !ok {
			t.Fatal("exhausted")
		}
		if i%2 == 0 {
			bursts = append(bursts, at)
		}
		now = at
	}
	for i := 1; i < len(bursts); i++ {
		gap := bursts[i] - bursts[i-1]
		if gap < 50_000 || gap > 150_000 {
			t.Fatalf("burst gap %d outside jitter bounds", gap)
		}
	}
}

func TestBurstTrainDegenerate(t *testing.T) {
	t.Parallel()
	if _, _, ok := (&BurstTrain{Burst: 0, PeriodUs: 100}).Next(0); ok {
		t.Fatal("zero burst should be exhausted")
	}
	if _, _, ok := (&BurstTrain{Burst: 3, PeriodUs: 0}).Next(0); ok {
		t.Fatal("zero period should be exhausted")
	}
}
