package sim

import (
	"math/rand/v2"

	"dot11fp/internal/device"
)

// rateController picks the data rate for each transmission attempt and
// learns from outcomes. Implementations mirror the policy families of
// device.RatePolicy.
type rateController interface {
	// Rate returns the rate for the next attempt.
	Rate() float64
	// OnResult reports the outcome of an attempt at the Rate returned.
	OnResult(success bool)
}

// ladderFor returns the ascending rate ladder a profile may use, capped
// at the profile's preferred rate for fixed-rate devices.
func ladderFor(spec device.Spec) []float64 {
	if spec.Mode == device.ModeB {
		return device.RatesB
	}
	return device.RatesOrdered
}

// indexOf returns the position of the closest ladder rate ≤ want,
// defaulting to 0.
func indexOf(ladder []float64, want float64) int {
	best := 0
	for i, r := range ladder {
		if r <= want {
			best = i
		}
	}
	return best
}

// newRateController builds the controller selected by the spec. The
// profile's preferred rate acts as the vendor's configured ceiling:
// adaptive controllers never climb above it, which is what gives each
// card family its own rate distribution (Gopinath et al., the paper's
// §VI-B).
func newRateController(spec device.Spec, r *rand.Rand) rateController {
	ladder := ladderFor(spec)
	idx := indexOf(ladder, spec.PreferredRateMbps)
	ladder = ladder[:idx+1]
	// Cards start at their ceiling and fall back quickly (2–3 failures
	// per step), so steady state is reached within seconds — keeping
	// training and validation windows statistically alike.
	start := idx
	switch spec.RatePolicy {
	case device.RateFixed:
		return &fixedRate{rate: ladder[idx]}
	case device.RateConservative:
		return &arfRate{ladder: ladder, idx: start, upAfter: 20, downAfter: 3}
	case device.RateSampler:
		return &samplerRate{ladder: ladder, sampleProb: 0.18, r: r,
			arf: arfRate{ladder: ladder, idx: start, upAfter: 20, downAfter: 3}}
	default: // device.RateARF
		return &arfRate{ladder: ladder, idx: start, upAfter: 10, downAfter: 2}
	}
}

// fixedRate pins one rate forever.
type fixedRate struct{ rate float64 }

func (f *fixedRate) Rate() float64 { return f.rate }
func (f *fixedRate) OnResult(bool) {}

// arfRate is the classic Auto Rate Fallback ladder walker.
type arfRate struct {
	ladder             []float64
	idx                int
	succ, fail         int
	upAfter, downAfter int
}

func (a *arfRate) Rate() float64 { return a.ladder[a.idx] }

func (a *arfRate) OnResult(success bool) {
	if success {
		a.succ++
		a.fail = 0
		if a.succ >= a.upAfter && a.idx < len(a.ladder)-1 {
			a.idx++
			a.succ = 0
		}
		return
	}
	a.fail++
	a.succ = 0
	if a.fail >= a.downAfter && a.idx > 0 {
		a.idx--
		a.fail = 0
	}
}

// samplerRate mostly transmits at an ARF-adapted home rate but
// frequently probes neighbouring rates, producing the spread rate
// distribution of the paper's Fig. 6d.
type samplerRate struct {
	ladder     []float64
	sampleProb float64
	r          *rand.Rand
	arf        arfRate
	sampling   bool
	sampleIdx  int
}

func (s *samplerRate) Rate() float64 {
	if s.r.Float64() < s.sampleProb {
		s.sampling = true
		delta := 1 + s.r.IntN(2)
		if s.r.IntN(2) == 0 {
			delta = -delta
		}
		idx := s.arf.idx + delta
		if idx < 0 {
			idx = 0
		}
		if idx >= len(s.ladder) {
			idx = len(s.ladder) - 1
		}
		s.sampleIdx = idx
		return s.ladder[idx]
	}
	s.sampling = false
	return s.arf.Rate()
}

func (s *samplerRate) OnResult(success bool) {
	if s.sampling {
		// Sampling outcomes do not move the home rate; reset the flag.
		s.sampling = false
		return
	}
	s.arf.OnResult(success)
}

// snrProcess models a station's channel quality over time: a base SNR
// with AR(1) noise, plus optional relocation jumps (conference mobility,
// the mechanism that destabilises rate-dependent fingerprints in the
// paper's conference traces).
type snrProcess struct {
	base     float64
	noise    float64 // current AR(1) deviation
	sigma    float64 // innovation σ per step
	rho      float64 // AR(1) coefficient
	moveProb float64 // per-step probability of relocating
	moveLo   float64 // new-base range after a move
	moveHi   float64
	r        *rand.Rand
}

// newSNRProcess builds a process; stepUs callers advance it at 1 s.
func newSNRProcess(base, sigma, moveProb, moveLo, moveHi float64, r *rand.Rand) *snrProcess {
	return &snrProcess{base: base, sigma: sigma, rho: 0.9, moveProb: moveProb, moveLo: moveLo, moveHi: moveHi, r: r}
}

// Step advances the process one tick.
func (s *snrProcess) Step() {
	if s.moveProb > 0 && s.r.Float64() < s.moveProb {
		s.base = s.moveLo + s.r.Float64()*(s.moveHi-s.moveLo)
	}
	s.noise = s.rho*s.noise + s.r.NormFloat64()*s.sigma
}

// SNR returns the current signal-to-noise ratio in dB.
func (s *snrProcess) SNR() float64 { return s.base + s.noise }
