package sim

import (
	"bytes"
	"math"
	"testing"

	"dot11fp/internal/capture"
	"dot11fp/internal/device"
	"dot11fp/internal/dot11"
	"dot11fp/internal/stats"
	"dot11fp/internal/traffic"
)

// mkSpec instantiates a named profile with a fixed per-test source.
func mkSpec(t *testing.T, name string, unit int) device.Spec {
	t.Helper()
	p, err := device.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p.Instantiate(unit, stats.NewRand(77, uint64(unit)))
}

// faradaySim builds a single-AP, single-station saturated-UDP run, the
// paper's Faraday-cage experiment (§VI-A1).
func faradaySim(t *testing.T, profile string, seed uint64, durUs int64, fixedRate float64) *capture.Trace {
	t.Helper()
	s := New(Config{Name: "faraday", Seed: seed, DurationUs: durUs})
	apSpec := device.APProfile().Instantiate(0, stats.NewRand(seed, 1000))
	s.AddAP(StationConfig{Spec: apSpec, SNR: SNRParams{BaseDB: 35}})
	spec := mkSpec(t, profile, 1)
	if fixedRate > 0 {
		spec.RatePolicy = device.RateFixed
		spec.PreferredRateMbps = fixedRate
	}
	spec.PowerSave = false
	spec.ProbePeriodUs = 0
	s.AddStation(StationConfig{
		Spec:    spec,
		Sources: []traffic.Source{&traffic.Saturator{Label: "iperf", Bytes: 1470}},
		SNR:     SNRParams{BaseDB: 40}, // clean cage channel
	})
	tr, _, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRunNoStations(t *testing.T) {
	t.Parallel()
	if _, _, err := New(Config{}).Run(); err == nil {
		t.Fatal("Run with no stations should error")
	}
}

func TestRecordsTimeOrdered(t *testing.T) {
	t.Parallel()
	tr := faradaySim(t, "atheros-like-a", 1, 3_000_000, 54)
	for i := 1; i < len(tr.Records); i++ {
		if tr.Records[i].T < tr.Records[i-1].T {
			t.Fatalf("records out of order at %d: %d < %d", i, tr.Records[i].T, tr.Records[i-1].T)
		}
	}
}

func TestDeterminism(t *testing.T) {
	t.Parallel()
	a := faradaySim(t, "atheros-like-a", 42, 2_000_000, 54)
	b := faradaySim(t, "atheros-like-a", 42, 2_000_000, 54)
	if len(a.Records) != len(b.Records) {
		t.Fatalf("runs differ in length: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		if !a.Records[i].Equal(b.Records[i]) {
			t.Fatalf("record %d differs: %+v vs %+v", i, a.Records[i], b.Records[i])
		}
	}
	c := faradaySim(t, "atheros-like-a", 43, 2_000_000, 54)
	if len(a.Records) == len(c.Records) {
		same := true
		for i := range a.Records {
			if !a.Records[i].Equal(c.Records[i]) {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestSaturatedThroughputAndACKs(t *testing.T) {
	t.Parallel()
	tr := faradaySim(t, "atheros-like-a", 2, 5_000_000, 54)
	var data, acks int
	for _, r := range tr.Records {
		switch r.Class {
		case dot11.ClassQoSData, dot11.ClassData:
			if !r.Sender.IsZero() {
				data++
			}
		case dot11.ClassACK:
			acks++
			if !r.Sender.IsZero() {
				t.Fatal("ACK with a sender address")
			}
		}
	}
	// 5 s of saturated 54 Mb/s traffic: hundreds of frames at least.
	if data < 500 {
		t.Fatalf("saturated run produced only %d data frames", data)
	}
	// Nearly every data frame is acknowledged in a clean cage.
	if float64(acks) < 0.9*float64(data) {
		t.Fatalf("acks = %d for %d data frames", acks, data)
	}
}

func TestFaradayInterArrivalComb(t *testing.T) {
	t.Parallel()
	// First-transmission 54 Mb/s data frames in a clean channel must show
	// the slotted backoff comb: gaps concentrated on ~16 slot positions
	// exactly SlotUs apart (paper Fig. 4).
	tr := faradaySim(t, "atheros-like-a", 3, 10_000_000, 54)
	var prevT int64 = -1
	gapCount := make(map[int64]int)
	total := 0
	for _, r := range tr.Records {
		if prevT >= 0 && (r.Class == dot11.ClassQoSData || r.Class == dot11.ClassData) &&
			!r.Retry && r.RateMbps == 54 && !r.Sender.IsZero() {
			gap := r.T - prevT
			gapCount[gap]++
			total++
		}
		prevT = r.T
	}
	if total < 1000 {
		t.Fatalf("too few first-try data gaps: %d", total)
	}
	// Collect distinct heavily-populated gaps.
	var popular []int64
	for g, n := range gapCount {
		if n > total/100 {
			popular = append(popular, g)
		}
	}
	if len(popular) < 10 || len(popular) > 24 {
		t.Fatalf("popular gap positions = %d, want ~16 slot peaks", len(popular))
	}
	// Spacing between sorted popular gaps must be a multiple of SlotUs
	// (allowing the card's 1 µs jitter to shift the comb by ≤2 µs).
	minG, maxG := popular[0], popular[0]
	for _, g := range popular {
		if g < minG {
			minG = g
		}
		if g > maxG {
			maxG = g
		}
	}
	spread := maxG - minG
	if spread < 14*SlotUs || spread > 18*SlotUs {
		t.Fatalf("comb spread = %d µs, want ≈ 16 slots (%d)", spread, 16*SlotUs)
	}
}

func TestExtraSlotQuirkWidensComb(t *testing.T) {
	t.Parallel()
	// The BackoffExtraSlot card exhibits one additional peak before the
	// standard grid: its minimum first-try gap is ~ExtraSlotUs smaller.
	combSpan := func(profile string) (int64, int64) {
		tr := faradaySim(t, profile, 4, 8_000_000, 54)
		var prevT int64 = -1
		minGap, maxGap := int64(math.MaxInt64), int64(0)
		hist := make(map[int64]int)
		n := 0
		for _, r := range tr.Records {
			if prevT >= 0 && (r.Class == dot11.ClassQoSData || r.Class == dot11.ClassData) &&
				!r.Retry && r.RateMbps == 54 && !r.Sender.IsZero() {
				hist[r.T-prevT]++
				n++
			}
			prevT = r.T
		}
		for g, c := range hist {
			if c <= n/200 { // ignore stragglers
				continue
			}
			if g < minGap {
				minGap = g
			}
			if g > maxGap {
				maxGap = g
			}
		}
		return minGap, maxGap
	}
	minStd, _ := combSpan("atheros-like-a")   // standard backoff
	minQuirk, _ := combSpan("atheros-like-b") // extra pre-slot, 10 µs
	if minQuirk >= minStd {
		t.Fatalf("extra-slot card min gap %d not below standard %d", minQuirk, minStd)
	}
	if d := minStd - minQuirk; d < 5 || d > 18 {
		t.Fatalf("pre-slot offset = %d µs, want ≈ 10", d)
	}
}

func TestRTSMechanism(t *testing.T) {
	t.Parallel()
	// Same device, RTS off vs RTS threshold 2000 with 1470 B frames
	// below the threshold => no RTS. Then threshold 1000 => RTS/CTS
	// precedes every data frame (paper Fig. 5).
	run := func(thresh int) (rts, cts, data int) {
		s := New(Config{Name: "rts", Seed: 9, DurationUs: 3_000_000})
		ap := device.APProfile().Instantiate(0, stats.NewRand(9, 1000))
		s.AddAP(StationConfig{Spec: ap, SNR: SNRParams{BaseDB: 35}})
		spec := mkSpec(t, "atheros-like-a", 1)
		spec.RatePolicy = device.RateFixed
		spec.PreferredRateMbps = 54
		spec.RTSThresholdB = thresh
		spec.ProbePeriodUs = 0
		s.AddStation(StationConfig{
			Spec:    spec,
			Sources: []traffic.Source{&traffic.Saturator{Label: "udp", Bytes: 1470}},
			SNR:     SNRParams{BaseDB: 40},
		})
		tr, _, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range tr.Records {
			switch r.Class {
			case dot11.ClassRTS:
				rts++
			case dot11.ClassCTS:
				cts++
				if !r.Sender.IsZero() {
					t.Fatal("CTS with sender address")
				}
			case dot11.ClassData, dot11.ClassQoSData:
				data++
			}
		}
		return
	}
	rtsOff, ctsOff, dataOff := run(device.RTSDisabled)
	if rtsOff != 0 || ctsOff != 0 {
		t.Fatalf("RTS disabled but saw %d RTS / %d CTS", rtsOff, ctsOff)
	}
	if dataOff < 100 {
		t.Fatalf("too little data: %d", dataOff)
	}
	rtsOn, ctsOn, dataOn := run(1000)
	if rtsOn == 0 || ctsOn == 0 {
		t.Fatal("RTS threshold 1000 produced no RTS/CTS")
	}
	if float64(rtsOn) < 0.9*float64(dataOn) {
		t.Fatalf("RTS (%d) should accompany nearly all data (%d)", rtsOn, dataOn)
	}
}

func TestCollisionsBetweenSaturatedStations(t *testing.T) {
	t.Parallel()
	s := New(Config{Name: "contend", Seed: 10, DurationUs: 4_000_000})
	ap := device.APProfile().Instantiate(0, stats.NewRand(10, 1000))
	s.AddAP(StationConfig{Spec: ap, SNR: SNRParams{BaseDB: 35}})
	for i := 1; i <= 3; i++ {
		spec := mkSpec(t, "atheros-like-a", i)
		spec.ProbePeriodUs = 0
		s.AddStation(StationConfig{
			Spec:    spec,
			Sources: []traffic.Source{&traffic.Saturator{Label: "udp", Bytes: 1200}},
			SNR:     SNRParams{BaseDB: 38},
		})
	}
	tr, st, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Collisions == 0 {
		t.Error("three saturated stations never collided")
	}
	if st.Retries == 0 {
		t.Error("no retries despite collisions")
	}
	retryBit := 0
	for _, r := range tr.Records {
		if r.Retry {
			retryBit++
		}
	}
	if retryBit == 0 {
		t.Error("no frame carries the retry bit")
	}
}

func TestBroadcastServiceFrames(t *testing.T) {
	t.Parallel()
	s := New(Config{Name: "svc", Seed: 11, DurationUs: 10_000_000})
	ap := device.APProfile().Instantiate(0, stats.NewRand(11, 1000))
	s.AddAP(StationConfig{Spec: ap, SNR: SNRParams{BaseDB: 35}})
	spec := mkSpec(t, "apple-like", 1)
	spec.PowerSave = false
	spec.ProbePeriodUs = 0
	svc := traffic.NewService("ssdp", 1_000_000, 0, 1_500, []int{311, 325, 341}, 0, stats.NewRand(11, 7))
	s.AddStation(StationConfig{Spec: spec, Sources: []traffic.Source{svc}, SNR: SNRParams{BaseDB: 35}})
	tr, _, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	bc := 0
	for _, r := range tr.Records {
		if r.Class == dot11.ClassData && r.Receiver.IsBroadcast() && !r.Sender.IsZero() {
			bc++
			if r.RateMbps != broadcastRateMbps {
				t.Fatalf("broadcast frame at %v Mb/s, want %v", r.RateMbps, broadcastRateMbps)
			}
		}
	}
	// ~10 bursts of 3 frames.
	if bc < 24 || bc > 36 {
		t.Fatalf("broadcast frames = %d, want ≈ 30", bc)
	}
}

func TestPowerSaveNullFrames(t *testing.T) {
	t.Parallel()
	s := New(Config{Name: "ps", Seed: 12, DurationUs: 20_000_000})
	ap := device.APProfile().Instantiate(0, stats.NewRand(12, 1000))
	s.AddAP(StationConfig{Spec: ap, SNR: SNRParams{BaseDB: 35}})
	spec := mkSpec(t, "realtek-like", 1)
	spec.NullPeriodUs = 1_000_000 // 1 s keepalive for the test
	spec.NullJitterUs = 0
	spec.ProbePeriodUs = 0
	s.AddStation(StationConfig{Spec: spec, SNR: SNRParams{BaseDB: 30}})
	tr, _, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	nulls := 0
	for _, r := range tr.Records {
		if r.Class == dot11.ClassNull && !r.Sender.IsZero() {
			nulls++
			if r.Size != 28 {
				t.Fatalf("null frame size = %d, want 28", r.Size)
			}
		}
	}
	if nulls < 15 || nulls > 25 {
		t.Fatalf("null frames = %d, want ≈ 20 (1 Hz over 20 s)", nulls)
	}
}

func TestProbeBurstsAndResponses(t *testing.T) {
	t.Parallel()
	s := New(Config{Name: "probe", Seed: 13, DurationUs: 10_000_000})
	ap := device.APProfile().Instantiate(0, stats.NewRand(13, 1000))
	s.AddAP(StationConfig{Spec: ap, SNR: SNRParams{BaseDB: 35}})
	spec := mkSpec(t, "ralink-like", 1) // 5-probe bursts
	spec.ProbePeriodUs = 2_000_000
	spec.PowerSave = false
	s.AddStation(StationConfig{Spec: spec, SNR: SNRParams{BaseDB: 30}})
	tr, _, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	req, resp := 0, 0
	for _, r := range tr.Records {
		switch r.Class {
		case dot11.ClassProbeReq:
			req++
		case dot11.ClassProbeResp:
			resp++
		}
	}
	// ~5 bursts of 5 probes.
	if req < 15 {
		t.Fatalf("probe requests = %d, want ≥ 15", req)
	}
	if resp == 0 {
		t.Fatal("AP never answered probe requests")
	}
}

func TestBeaconCadence(t *testing.T) {
	t.Parallel()
	s := New(Config{Name: "beacon", Seed: 14, DurationUs: 10_240_000})
	ap := device.APProfile().Instantiate(0, stats.NewRand(14, 1000))
	s.AddAP(StationConfig{Spec: ap, SNR: SNRParams{BaseDB: 35}})
	// A station must exist for Run to do anything useful, but keep it quiet.
	spec := mkSpec(t, "atheros-like-a", 1)
	spec.ProbePeriodUs = 0
	s.AddStation(StationConfig{Spec: spec, SNR: SNRParams{BaseDB: 30}})
	tr, _, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	beacons := 0
	for _, r := range tr.Records {
		if r.Class == dot11.ClassBeacon {
			beacons++
		}
	}
	// 10.24 s / 102.4 ms = 100 beacons (minus capture margin).
	if beacons < 90 || beacons > 105 {
		t.Fatalf("beacons = %d, want ≈ 100", beacons)
	}
}

func TestChurnStationLeaves(t *testing.T) {
	t.Parallel()
	s := New(Config{Name: "churn", Seed: 15, DurationUs: 6_000_000})
	ap := device.APProfile().Instantiate(0, stats.NewRand(15, 1000))
	s.AddAP(StationConfig{Spec: ap, SNR: SNRParams{BaseDB: 35}})
	spec := mkSpec(t, "atheros-like-a", 1)
	spec.ProbePeriodUs = 0
	addr := s.AddStation(StationConfig{
		Spec:    spec,
		Sources: []traffic.Source{traffic.NewCBR("cbr", 0, 10_000, 200, 0, nil)},
		SNR:     SNRParams{BaseDB: 35},
		JoinUs:  1_000_000,
		LeaveUs: 3_000_000,
	})
	tr, _, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	var first, last int64 = -1, -1
	for _, r := range tr.Records {
		if r.Sender == addr {
			if first < 0 {
				first = r.T
			}
			last = r.T
		}
	}
	if first < 1_000_000 {
		t.Fatalf("station transmitted at %d before joining", first)
	}
	if last > 3_050_000 { // small slack for an in-flight exchange
		t.Fatalf("station transmitted at %d after leaving", last)
	}
}

func TestEncryptedFraming(t *testing.T) {
	t.Parallel()
	run := func(enc bool) int {
		s := New(Config{Name: "enc", Seed: 16, DurationUs: 2_000_000, Encrypted: enc})
		ap := device.APProfile().Instantiate(0, stats.NewRand(16, 1000))
		s.AddAP(StationConfig{Spec: ap, SNR: SNRParams{BaseDB: 35}})
		spec := mkSpec(t, "atheros-like-a", 1)
		spec.ProbePeriodUs = 0
		s.AddStation(StationConfig{
			Spec:    spec,
			Sources: []traffic.Source{traffic.NewCBR("cbr", 0, 20_000, 400, 0, nil)},
			SNR:     SNRParams{BaseDB: 40},
		})
		tr, _, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range tr.Records {
			if r.Class == dot11.ClassQoSData && r.FCSOK && !r.Sender.IsZero() {
				if enc && !r.Protected {
					t.Fatal("encrypted run produced unprotected data frame")
				}
				return r.Size
			}
		}
		t.Fatal("no data frame found")
		return 0
	}
	plain := run(false)
	enc := run(true)
	if enc-plain != 16 {
		t.Fatalf("CCMP overhead = %d bytes, want 16", enc-plain)
	}
}

func TestRateAdaptationFollowsSNR(t *testing.T) {
	t.Parallel()
	meanRate := func(snrDB float64) float64 {
		s := New(Config{Name: "arf", Seed: 17, DurationUs: 8_000_000})
		ap := device.APProfile().Instantiate(0, stats.NewRand(17, 1000))
		s.AddAP(StationConfig{Spec: ap, SNR: SNRParams{BaseDB: 35}})
		spec := mkSpec(t, "broadcom-like", 1) // plain ARF
		spec.ProbePeriodUs = 0
		spec.PowerSave = false
		s.AddStation(StationConfig{
			Spec:    spec,
			Sources: []traffic.Source{&traffic.Saturator{Label: "udp", Bytes: 1000}},
			SNR:     SNRParams{BaseDB: snrDB, SigmaDB: 0.5},
		})
		tr, _, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		var n int
		// Average over the second half, after ARF has converged.
		for _, r := range tr.Records {
			if r.T > 4_000_000 && (r.Class == dot11.ClassQoSData || r.Class == dot11.ClassData) && !r.Sender.IsZero() {
				sum += r.RateMbps
				n++
			}
		}
		if n == 0 {
			t.Fatal("no data frames in second half")
		}
		return sum / float64(n)
	}
	good := meanRate(32)
	bad := meanRate(12)
	if good < 40 {
		t.Errorf("high-SNR mean rate = %v, want ≥ 40", good)
	}
	if bad > 20 {
		t.Errorf("low-SNR mean rate = %v, want ≤ 20", bad)
	}
	if good <= bad {
		t.Errorf("rate adaptation inverted: good=%v bad=%v", good, bad)
	}
}

func TestMediumNeverOverlaps(t *testing.T) {
	t.Parallel()
	// Outside collisions, data/ack sequences from different exchanges
	// must not interleave: consecutive record times from different
	// senders must respect at least SIFS separation minus quirk slack.
	s := New(Config{Name: "overlap", Seed: 18, DurationUs: 3_000_000})
	ap := device.APProfile().Instantiate(0, stats.NewRand(18, 1000))
	s.AddAP(StationConfig{Spec: ap, SNR: SNRParams{BaseDB: 35}})
	for i := 1; i <= 4; i++ {
		spec := mkSpec(t, "intel-like-a", i)
		spec.ProbePeriodUs = 0
		spec.PowerSave = false
		s.AddStation(StationConfig{
			Spec:    spec,
			Sources: []traffic.Source{traffic.NewCBR("cbr", int64(i)*1000, 15_000, 500, 0, nil)},
			SNR:     SNRParams{BaseDB: 35},
		})
	}
	tr, _, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	clean := 0
	for i := 1; i < len(tr.Records); i++ {
		if tr.Records[i].FCSOK && tr.Records[i-1].FCSOK {
			if d := tr.Records[i].T - tr.Records[i-1].T; d >= 0 {
				clean++
			}
		}
	}
	if clean == 0 {
		t.Fatal("no clean consecutive records")
	}
}

func TestPcapRoundTripFromSim(t *testing.T) {
	t.Parallel()
	tr := faradaySim(t, "marvell-like", 19, 1_000_000, 0)
	senders := tr.Senders()
	if len(senders) == 0 {
		t.Fatal("no senders in sim trace")
	}
}

func TestMACRandomizationRotatesPerBurst(t *testing.T) {
	t.Parallel()
	run := func() *capture.Trace {
		s := New(Config{Name: "rand", Seed: 21, DurationUs: 12_000_000})
		ap := device.APProfile().Instantiate(0, stats.NewRand(21, 1000))
		s.AddAP(StationConfig{Spec: ap, SNR: SNRParams{BaseDB: 35}})
		spec := mkSpec(t, "ralink-like", 1)
		spec.ProbePeriodUs = 2_000_000
		spec.PowerSave = false
		spec.RandomizeMAC = true
		s.AddStation(StationConfig{Spec: spec, SNR: SNRParams{BaseDB: 30}})
		tr, _, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	tr := run()
	probeSenders := make(map[dot11.Addr]bool)
	var content []byte
	for _, r := range tr.Records {
		if r.Class != dot11.ClassProbeReq || !r.FCSOK {
			continue
		}
		probeSenders[r.Sender] = true
		if r.Sender[0] != 0x06 {
			t.Fatalf("randomized probe sender %v lacks the 0x06 rotated prefix", r.Sender)
		}
		if len(r.ProbeIEs) == 0 {
			t.Fatal("probe request without content despite Spec.ProbeIEs")
		}
		if content == nil {
			content = r.ProbeIEs
		} else if !bytes.Equal(content, r.ProbeIEs) {
			t.Fatal("probe content changed across rotations; it must stay stable")
		}
	}
	// ~6 bursts over 12 s at a 2 s period: each burst gets a fresh MAC.
	if len(probeSenders) < 3 {
		t.Fatalf("saw %d distinct rotated MACs, want ≥ 3 (one per burst)", len(probeSenders))
	}
	e := dot11.ParseElems(content)
	if key := e.ContentKey(); key == 0 {
		t.Fatal("probe content has zero ContentKey")
	}

	// Determinism: the rotation stream must be seed-stable.
	tr2 := run()
	if len(tr.Records) != len(tr2.Records) {
		t.Fatalf("randomized runs differ in length: %d vs %d", len(tr.Records), len(tr2.Records))
	}
	for i := range tr.Records {
		if !tr.Records[i].Equal(tr2.Records[i]) {
			t.Fatalf("randomized runs diverge at record %d", i)
		}
	}
}

func TestProbeContentStampedWithoutRandomization(t *testing.T) {
	t.Parallel()
	s := New(Config{Name: "stamp", Seed: 22, DurationUs: 8_000_000})
	ap := device.APProfile().Instantiate(0, stats.NewRand(22, 1000))
	s.AddAP(StationConfig{Spec: ap, SNR: SNRParams{BaseDB: 35}})
	spec := mkSpec(t, "ralink-like", 1)
	spec.ProbePeriodUs = 2_000_000
	spec.PowerSave = false
	s.AddStation(StationConfig{Spec: spec, SNR: SNRParams{BaseDB: 30}})
	tr, _, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	base := dot11.LocalAddr(2) // AP is unit 1
	probes := 0
	for _, r := range tr.Records {
		if r.Class != dot11.ClassProbeReq {
			continue
		}
		probes++
		if r.Sender != base {
			t.Fatalf("non-randomized probe sender = %v, want stable %v", r.Sender, base)
		}
		if len(r.ProbeIEs) == 0 {
			t.Fatal("probe content missing on non-randomized station")
		}
	}
	if probes == 0 {
		t.Fatal("no probe requests captured")
	}
}
