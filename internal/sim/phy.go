package sim

import "math"

// 802.11b/g MAC timing (long-slot compatibility mode, the common 2008
// configuration when b and g stations share a channel).
const (
	// SlotUs is the backoff slot time.
	SlotUs int64 = 20
	// SIFSUs is the short interframe space.
	SIFSUs int64 = 10
	// DIFSUs is the distributed interframe space: SIFS + 2 slots.
	DIFSUs = SIFSUs + 2*SlotUs

	// preambleLongUs is the long CCK PLCP preamble+header time.
	preambleLongUs int64 = 192
	// preambleShortUs is the short CCK preamble time.
	preambleShortUs int64 = 96
	// preambleOFDMUs is the OFDM preamble+SIGNAL (+extension) time.
	preambleOFDMUs int64 = 26

	// maxRetries is the short retry limit before a frame is dropped.
	maxRetries = 7
)

// isCCK reports whether a rate is an 802.11b CCK/DSSS rate.
func isCCK(rate float64) bool {
	switch rate {
	case 1, 2, 5.5, 11:
		return true
	default:
		return false
	}
}

// AirtimeUs returns the on-air duration of a frame of the given MPDU
// size at the given rate, including the PHY preamble. shortPreamble
// only applies to CCK rates above 1 Mb/s.
func AirtimeUs(sizeBytes int, rateMbps float64, shortPreamble bool) int64 {
	payload := int64(math.Ceil(float64(sizeBytes) * 8 / rateMbps))
	if isCCK(rateMbps) {
		pre := preambleLongUs
		if shortPreamble && rateMbps > 1 {
			pre = preambleShortUs
		}
		return pre + payload
	}
	return preambleOFDMUs + payload
}

// ctrlRateFor returns the basic rate used for the control response
// (ACK/CTS) to a frame sent at the given data rate.
func ctrlRateFor(dataRate float64) float64 {
	if isCCK(dataRate) {
		if dataRate >= 2 {
			return 2
		}
		return 1
	}
	switch {
	case dataRate >= 24:
		return 24
	case dataRate >= 12:
		return 12
	default:
		return 6
	}
}

// broadcastRateMbps is the rate used for group-addressed frames: the
// lowest mandatory rate, for maximum reach.
const broadcastRateMbps = 1.0

// snrRequired maps each rate to the approximate SNR (dB) needed for a
// low frame error rate. Derived from standard receiver sensitivity
// ladders; only the relative ordering matters for the reproduction.
var snrRequired = map[float64]float64{
	1: 4, 2: 6, 5.5: 8, 11: 10,
	6: 8, 9: 9, 12: 11, 18: 13, 24: 16, 36: 20, 48: 24, 54: 26,
}

// successProb returns the probability that a frame at the given rate is
// received given the sender's current SNR: a logistic curve over the
// margin above the required SNR, floored so even deep fades occasionally
// deliver (capture effect).
func successProb(rateMbps, snrDB float64) float64 {
	req, ok := snrRequired[rateMbps]
	if !ok {
		req = 26
	}
	margin := snrDB - req
	p := 1 / (1 + math.Exp(-margin))
	if p < 0.02 {
		p = 0.02
	}
	return p
}
