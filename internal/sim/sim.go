// Package sim is a discrete-event simulator of a single 802.11 b/g
// channel under the distributed coordination function (DCF). It is the
// testbed substrate of this reproduction: the paper measured real
// captures (a Sigcomm conference hall, an office, a Faraday cage), and
// this package reproduces the mechanisms those captures expose —
// DIFS/SIFS timing, slotted random backoff with per-card quirks,
// collisions and binary exponential backoff, RTS/CTS virtual carrier
// sensing, per-vendor rate adaptation under time-varying SNR, power-save
// null frames, active scanning, beacons — and feeds everything through a
// monitor model that produces capture.Records exactly as a monitoring
// card would (end-of-reception timestamps, no sender for ACK/CTS,
// capture loss, corrupt frames).
//
// Simplifications versus a full ns-3-class model are documented in
// DESIGN.md; the guiding rule is that every mechanism the paper
// identifies as a fingerprint source (§VI) is modelled faithfully, while
// mechanisms orthogonal to fingerprinting (e.g. exact NAV bookkeeping of
// hidden terminals) are collapsed.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"dot11fp/internal/capture"
	"dot11fp/internal/device"
	"dot11fp/internal/dot11"
	"dot11fp/internal/stats"
	"dot11fp/internal/traffic"
)

// Config parameterises one simulation run.
type Config struct {
	// Name labels the produced trace.
	Name string
	// Seed drives every random stream in the run.
	Seed uint64
	// DurationUs is the simulated time span.
	DurationUs int64
	// Channel is the monitored channel number (metadata only).
	Channel int
	// Encrypted applies WPA(CCMP) framing overhead and marks data
	// frames protected.
	Encrypted bool
	// CaptureLossProb is the monitor's per-frame loss probability for
	// cleanly transmitted frames.
	CaptureLossProb float64
}

// SNRParams describe a station's channel-quality process.
type SNRParams struct {
	// BaseDB is the starting SNR.
	BaseDB float64
	// SigmaDB is the AR(1) innovation σ (per second).
	SigmaDB float64
	// MoveProb is the per-second probability of relocating to a new
	// base SNR in [MoveLoDB, MoveHiDB] (conference mobility).
	MoveProb           float64
	MoveLoDB, MoveHiDB float64
}

// StationConfig describes one station to add to the simulation.
type StationConfig struct {
	// Spec is the card/driver unit.
	Spec device.Spec
	// Sources generate the station's application/service traffic.
	Sources []traffic.Source
	// SNR is the channel-quality process.
	SNR SNRParams
	// JoinUs/LeaveUs bound the station's presence (LeaveUs 0 = stays).
	JoinUs, LeaveUs int64
	// MonitorSignalDBm is the mean RSSI the monitor sees for this
	// station (distance to the monitor).
	MonitorSignalDBm float64
}

// Stats summarises a completed run.
type Stats struct {
	FramesOnAir    int
	DataFrames     int
	Collisions     int
	Retries        int
	Drops          int
	CaptureDropped int
	Records        int
}

// queueCap bounds per-station MAC queues; saturating sources refill as
// the queue drains.
const queueCap = 3

// tbttUs is the beacon interval (102.4 ms).
const tbttUs int64 = 102_400

// mpdu is a queued MAC frame awaiting transmission.
type mpdu struct {
	class        dot11.Class
	sizeOnAir    int
	broadcast    bool
	dest         *station // nil = infrastructure default (AP / broadcast)
	retries      int
	rateOverride float64 // 0 = use rate controller
}

// station is the internal per-station state.
type station struct {
	addr dot11.Addr
	spec device.Spec
	cfg  StationConfig
	rng  *rand.Rand
	// macRng drives per-burst MAC rotation (RandomizeMAC profiles only).
	// It is a separate stream so enabling randomization never perturbs
	// the behavioural draws of st.rng — existing traces stay identical.
	macRng *rand.Rand
	src    traffic.Source
	rc     rateController
	snr    *snrProcess
	isAP   bool
	ap     *station

	queue          []mpdu
	cw             int
	slots          int
	slotOffsetUs   int64
	contending     bool
	arrivalBlocked bool
	srcDone        bool
	left           bool

	snrLastUs int64
	seqNum    uint16
}

// event is a scheduled callback.
type event struct {
	at  int64
	seq uint64
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Simulator runs one channel.
type Simulator struct {
	cfg      Config
	now      int64
	seq      uint64
	events   eventQueue
	stations []*station
	clients  []*station
	aps      []*station

	busyUntil  int64
	inTx       bool
	contenders []*station

	monRng  *rand.Rand
	records []capture.Record
	stats   Stats
}

// New creates a simulator.
func New(cfg Config) *Simulator {
	if cfg.DurationUs <= 0 {
		cfg.DurationUs = 60_000_000
	}
	if cfg.Channel == 0 {
		cfg.Channel = 6
	}
	return &Simulator{
		cfg:    cfg,
		monRng: stats.NewRand(cfg.Seed, 0xB0B),
	}
}

// AddAP adds an access point and returns its address.
func (s *Simulator) AddAP(cfg StationConfig) dot11.Addr {
	st := s.addStation(cfg, true)
	return st.addr
}

// AddStation adds a client station and returns its address.
func (s *Simulator) AddStation(cfg StationConfig) dot11.Addr {
	st := s.addStation(cfg, false)
	return st.addr
}

func (s *Simulator) addStation(cfg StationConfig, isAP bool) *station {
	unit := len(s.stations) + 1
	st := &station{
		addr:  dot11.LocalAddr(uint64(unit)),
		spec:  cfg.Spec,
		cfg:   cfg,
		rng:   stats.NewRand(s.cfg.Seed, uint64(unit)),
		isAP:  isAP,
		cw:    cfg.Spec.CWmin,
		slots: -1,
	}
	if len(cfg.Sources) > 0 {
		st.src = traffic.NewMerged(cfg.Sources...)
	}
	if !isAP && cfg.Spec.RandomizeMAC {
		st.macRng = stats.NewRand(s.cfg.Seed, 0x20000+uint64(unit))
	}
	st.rc = newRateController(cfg.Spec, st.rng)
	st.snr = newSNRProcess(cfg.SNR.BaseDB, cfg.SNR.SigmaDB, cfg.SNR.MoveProb, cfg.SNR.MoveLoDB, cfg.SNR.MoveHiDB, st.rng)
	if !isAP && len(s.aps) > 0 {
		st.ap = s.aps[0]
	}
	s.stations = append(s.stations, st)
	if isAP {
		s.aps = append(s.aps, st)
	} else {
		s.clients = append(s.clients, st)
	}
	return st
}

// schedule queues fn at time at (clamped to now).
func (s *Simulator) schedule(at int64, fn func()) {
	if at < s.now {
		at = s.now
	}
	s.seq++
	heap.Push(&s.events, &event{at: at, seq: s.seq, fn: fn})
}

// Run executes the simulation and returns the monitor's trace.
func (s *Simulator) Run() (*capture.Trace, Stats, error) {
	if len(s.stations) == 0 {
		return nil, Stats{}, fmt.Errorf("sim: no stations configured")
	}
	// Wire default associations for stations added before their AP.
	for _, st := range s.clients {
		if st.ap == nil && len(s.aps) > 0 {
			st.ap = s.aps[0]
		}
	}
	for _, st := range s.stations {
		st := st
		s.schedule(st.cfg.JoinUs, func() { s.join(st) })
		if st.cfg.LeaveUs > 0 {
			s.schedule(st.cfg.LeaveUs, func() { s.leave(st) })
		}
	}
	for len(s.events) > 0 {
		e := heap.Pop(&s.events).(*event)
		if e.at > s.cfg.DurationUs {
			break
		}
		s.now = e.at
		e.fn()
	}
	// Collision emissions can interleave slightly out of order; the
	// monitor's view is strictly time-ordered.
	sort.SliceStable(s.records, func(i, j int) bool { return s.records[i].T < s.records[j].T })
	tr := &capture.Trace{
		Name:      s.cfg.Name,
		Channel:   s.cfg.Channel,
		Encrypted: s.cfg.Encrypted,
		Records:   s.records,
	}
	s.stats.Records = len(s.records)
	return tr, s.stats, nil
}

// --- station lifecycle -------------------------------------------------------

func (s *Simulator) join(st *station) {
	if st.src != nil {
		s.scheduleArrival(st)
	}
	if st.isAP {
		s.scheduleBeacon(st, s.now+st.rng.Int64N(tbttUs))
		return
	}
	if st.spec.PowerSave && st.spec.NullPeriodUs > 0 {
		s.scheduleNull(st, s.now+st.spec.NullPhaseUs%st.spec.NullPeriodUs)
	}
	if st.spec.ProbePeriodUs > 0 && st.spec.ProbeBurst > 0 {
		s.scheduleProbeBurst(st, s.now+st.spec.ProbePhaseUs%st.spec.ProbePeriodUs)
	}
}

func (s *Simulator) leave(st *station) {
	st.left = true
	st.srcDone = true
	st.queue = nil
	if st.contending {
		st.contending = false
		s.removeContender(st)
	}
}

// --- traffic arrivals --------------------------------------------------------

func (s *Simulator) scheduleArrival(st *station) {
	if st.srcDone || st.left {
		return
	}
	at, sdu, ok := st.src.Next(s.now)
	if !ok {
		st.srcDone = true
		return
	}
	if st.cfg.LeaveUs > 0 && at >= st.cfg.LeaveUs {
		st.srcDone = true
		return
	}
	s.schedule(at, func() { s.onArrival(st, sdu) })
}

func (s *Simulator) onArrival(st *station, sdu traffic.SDU) {
	if st.left {
		return
	}
	st.queue = append(st.queue, s.mpduFor(st, sdu))
	if len(st.queue) < queueCap {
		s.scheduleArrival(st)
	} else {
		st.arrivalBlocked = true
	}
	s.makeContender(st)
}

// mpduFor frames an SDU for the air.
func (s *Simulator) mpduFor(st *station, sdu traffic.SDU) mpdu {
	m := mpdu{broadcast: sdu.Broadcast}
	hdr := 24
	if st.spec.Mode == device.ModeG && !sdu.Broadcast {
		m.class = dot11.ClassQoSData
		hdr = 26
	} else {
		m.class = dot11.ClassData
	}
	enc := 0
	if s.cfg.Encrypted {
		enc = 16 // CCMP header + MIC
	}
	m.sizeOnAir = hdr + sdu.Bytes + enc + 4
	if sdu.Broadcast {
		m.rateOverride = broadcastRateMbps
	}
	return m
}

// enqueueMgmt inserts a management/control-plane frame (null, probe,
// beacon) directly into the station queue, bypassing the arrival cap.
func (s *Simulator) enqueueMgmt(st *station, m mpdu) {
	if st.left {
		return
	}
	st.queue = append(st.queue, m)
	s.makeContender(st)
}

func (s *Simulator) makeContender(st *station) {
	if st.contending || len(st.queue) == 0 || st.left {
		return
	}
	st.contending = true
	s.contenders = append(s.contenders, st)
	s.requestResolve()
}

func (s *Simulator) removeContender(st *station) {
	for i, c := range s.contenders {
		if c == st {
			s.contenders = append(s.contenders[:i], s.contenders[i+1:]...)
			return
		}
	}
}

// --- MAC-level periodic behaviours -------------------------------------------

func (s *Simulator) scheduleNull(st *station, at int64) {
	s.schedule(at, func() {
		if st.left {
			return
		}
		s.enqueueMgmt(st, mpdu{class: dot11.ClassNull, sizeOnAir: 28})
		period := st.spec.SkewPeriod(st.spec.NullPeriodUs)
		jit := int64(stats.TruncNormal(st.rng, 0, st.spec.NullJitterUs, -float64(period)/3, float64(period)/3))
		s.scheduleNull(st, s.now+period+jit)
	})
}

func (s *Simulator) scheduleProbeBurst(st *station, at int64) {
	s.schedule(at, func() {
		if st.left {
			return
		}
		if st.macRng != nil {
			// Privacy-conscious OS: mint a fresh locally-administered
			// address for this burst; all traffic until the next burst
			// uses it, so no stable MAC links the station's frames.
			st.addr = randomizedMAC(st.macRng)
		}
		size := 24 + 26 + 4*st.spec.ProbeBurst + 4 // SSID+rates IEs vary per driver
		for i := 0; i < st.spec.ProbeBurst; i++ {
			d := int64(i) * st.spec.ProbeGapUs
			s.schedule(s.now+d, func() {
				s.enqueueMgmt(st, mpdu{class: dot11.ClassProbeReq, sizeOnAir: size, broadcast: true, rateOverride: broadcastRateMbps})
			})
		}
		period := st.spec.SkewPeriod(st.spec.ProbePeriodUs)
		jit := int64(stats.TruncNormal(st.rng, 0, float64(period)/20, -float64(period)/4, float64(period)/4))
		s.scheduleProbeBurst(st, s.now+period+jit)
	})
}

func (s *Simulator) scheduleBeacon(st *station, at int64) {
	s.schedule(at, func() {
		if st.left {
			return
		}
		s.enqueueMgmt(st, mpdu{class: dot11.ClassBeacon, sizeOnAir: 24 + 104 + 4, broadcast: true, rateOverride: broadcastRateMbps})
		s.scheduleBeacon(st, s.now+st.spec.SkewPeriod(tbttUs))
	})
}

// --- DCF arbitration ----------------------------------------------------------

// requestResolve schedules a contention-resolution pass at the earliest
// moment the medium is idle. Stale passes are ignored via the inTx flag
// and an emptiness check.
func (s *Simulator) requestResolve() {
	if s.inTx {
		return // txComplete re-requests
	}
	at := s.now
	if s.busyUntil > at {
		at = s.busyUntil
	}
	s.schedule(at, s.resolve)
}

// resolve picks the next transmitter among contenders via slotted
// backoff. Equal slot positions collide.
func (s *Simulator) resolve() {
	if s.inTx || len(s.contenders) == 0 || s.now < s.busyUntil {
		return
	}
	minKey := math.Inf(1)
	var winners []*station
	for _, c := range s.contenders {
		if c.slots < 0 {
			c.slots, c.slotOffsetUs = c.spec.DrawBackoffSlots(c.rng, c.cw)
		}
		key := float64(c.slots)
		if c.slotOffsetUs != 0 {
			key -= 0.5 // quirk pre-slot fires before the regular slot
		}
		switch {
		case key < minKey:
			minKey = key
			winners = winners[:0]
			winners = append(winners, c)
		case key == minKey:
			winners = append(winners, c)
		}
	}
	dec := int(minKey)
	if dec < 0 {
		dec = 0
	}
	for _, c := range s.contenders {
		if !contains(winners, c) && c.slots > dec {
			c.slots -= dec
		} else if !contains(winners, c) {
			c.slots = 1
		}
	}
	if len(winners) == 1 {
		s.transmit(winners[0])
		return
	}
	s.collide(winners)
}

func contains(set []*station, st *station) bool {
	for _, c := range set {
		if c == st {
			return true
		}
	}
	return false
}

// accessWaitUs computes a station's post-idle access delay: DIFS with
// firmware offsets, the drawn backoff slots, quirk sub-slot offset, and
// gaussian jitter, quantised to the card's timer granularity.
func (s *Simulator) accessWaitUs(c *station) int64 {
	w := DIFSUs + c.spec.DIFSAdjustUs + c.spec.UnitDIFSUs +
		int64(c.slots)*SlotUs + c.slotOffsetUs
	if c.spec.JitterUs > 0 {
		w += int64(stats.TruncNormal(c.rng, 0, c.spec.JitterUs, -3*c.spec.JitterUs, 3*c.spec.JitterUs))
	}
	w = c.spec.Quantize(w)
	if w < SIFSUs+1 {
		w = SIFSUs + 1
	}
	return w
}

// pickRate selects the rate for a frame attempt.
func (c *station) pickRate(m *mpdu) float64 {
	if m.rateOverride > 0 {
		return m.rateOverride
	}
	return c.rc.Rate()
}

// currentSNR lazily advances the station's SNR process to now.
func (s *Simulator) currentSNR(c *station) float64 {
	const stepUs = 1_000_000
	steps := (s.now - c.snrLastUs) / stepUs
	if steps > 120 {
		steps = 120
	}
	for i := int64(0); i < steps; i++ {
		c.snr.Step()
	}
	c.snrLastUs = s.now
	return c.snr.SNR()
}

// transmit runs a full winner exchange: optional RTS/CTS, the data
// frame, and the ACK, emitting monitor records along the way.
func (s *Simulator) transmit(c *station) {
	if len(c.queue) == 0 { // left or drained mid-resolution
		c.contending = false
		s.removeContender(c)
		s.requestResolve()
		return
	}
	m := &c.queue[0]
	start := s.now + s.accessWaitUs(c)
	rate := c.pickRate(m)
	snr := s.currentSNR(c)
	success := true
	if !m.broadcast {
		success = c.rng.Float64() < successProb(rate, snr)
	}

	t := start
	useRTS := !m.broadcast && m.sizeOnAir > c.spec.RTSThresholdB
	ctrlRate := ctrlRateFor(rate)
	if useRTS {
		rtsEnd := t + AirtimeUs(20, ctrlRate, c.spec.ShortPreamble)
		s.emit(c, capture.Record{
			T: rtsEnd, Sender: c.addr, Receiver: s.receiverAddr(c, m),
			Class: dot11.ClassRTS, Size: 20, RateMbps: ctrlRate, FCSOK: true,
		}, true)
		ctsEnd := rtsEnd + SIFSUs + AirtimeUs(14, ctrlRate, c.spec.ShortPreamble)
		s.emit(c, capture.Record{
			T: ctsEnd, Sender: dot11.ZeroAddr, Receiver: c.addr,
			Class: dot11.ClassCTS, Size: 14, RateMbps: ctrlRate, FCSOK: true,
		}, true)
		t = ctsEnd + SIFSUs
	}
	dataEnd := t + AirtimeUs(m.sizeOnAir, rate, c.spec.ShortPreamble)
	rec := capture.Record{
		T: dataEnd, Sender: c.addr, Receiver: s.receiverAddr(c, m),
		Class: m.class, Size: m.sizeOnAir, RateMbps: rate,
		Retry: m.retries > 0, FCSOK: true,
		Protected: s.cfg.Encrypted && (m.class == dot11.ClassData || m.class == dot11.ClassQoSData),
	}
	s.emit(c, rec, success)
	s.stats.FramesOnAir++
	if m.class == dot11.ClassData || m.class == dot11.ClassQoSData {
		s.stats.DataFrames++
	}

	end := dataEnd
	if !m.broadcast {
		ackEnd := dataEnd + SIFSUs + AirtimeUs(14, ctrlRate, c.spec.ShortPreamble)
		if success {
			s.emit(c, capture.Record{
				T: ackEnd, Sender: dot11.ZeroAddr, Receiver: c.addr,
				Class: dot11.ClassACK, Size: 14, RateMbps: ctrlRate, FCSOK: true,
			}, true)
		}
		end = ackEnd // ACK timeout occupies the same span on failure
	}
	s.inTx = true
	s.busyUntil = end
	adaptive := m.rateOverride == 0 && !m.broadcast
	s.schedule(end, func() { s.txComplete(c, success, adaptive) })
}

// receiverAddr resolves the RA for a station's frame.
func (s *Simulator) receiverAddr(c *station, m *mpdu) dot11.Addr {
	if m.broadcast {
		return dot11.Broadcast
	}
	if m.dest != nil {
		return m.dest.addr
	}
	if c.isAP {
		// Downlink unicast without explicit dest: pick an active client.
		if len(s.clients) > 0 {
			return s.clients[c.rng.IntN(len(s.clients))].addr
		}
		return dot11.Broadcast
	}
	if c.ap != nil {
		return c.ap.addr
	}
	return dot11.Broadcast
}

// collide models two or more stations expiring in the same slot: all
// their data frames overlap and none is acknowledged.
func (s *Simulator) collide(winners []*station) {
	s.stats.Collisions++
	var end int64
	for _, c := range winners {
		if len(c.queue) == 0 {
			continue
		}
		m := &c.queue[0]
		start := s.now + s.accessWaitUs(c)
		rate := c.pickRate(m)
		frameEnd := start + AirtimeUs(m.sizeOnAir, rate, c.spec.ShortPreamble)
		// Overlapping frames reach the monitor corrupted, if at all.
		if s.monRng.Float64() < 0.6 {
			s.emitRaw(c, capture.Record{
				T: frameEnd, Sender: c.addr, Receiver: s.receiverAddr(c, m),
				Class: m.class, Size: m.sizeOnAir, RateMbps: rate,
				Retry: m.retries > 0, FCSOK: false,
			})
		} else {
			s.stats.CaptureDropped++
		}
		if frameEnd > end {
			end = frameEnd
		}
	}
	if end == 0 {
		end = s.now + DIFSUs
	}
	end += DIFSUs // EIFS-like recovery gap
	s.inTx = true
	s.busyUntil = end
	cs := append([]*station(nil), winners...)
	s.schedule(end, func() {
		s.inTx = false
		for _, c := range cs {
			s.finishAttempt(c, false, true)
		}
		s.requestResolve()
	})
}

// txComplete finalises a single-winner exchange.
func (s *Simulator) txComplete(c *station, success, adaptive bool) {
	s.inTx = false
	s.finishAttempt(c, success, adaptive)
	s.requestResolve()
}

// finishAttempt applies retry/drop/queue bookkeeping for one station.
func (s *Simulator) finishAttempt(c *station, success, adaptive bool) {
	c.slots = -1
	c.slotOffsetUs = 0
	if len(c.queue) == 0 {
		c.contending = false
		s.removeContender(c)
		return
	}
	m := &c.queue[0]
	if adaptive {
		c.rc.OnResult(success)
	}
	completed := false
	if success || m.broadcast {
		completed = true
	} else {
		s.stats.Retries++
		m.retries++
		c.cw = min(2*(c.cw+1)-1, c.spec.CWmax)
		if m.retries > maxRetries {
			s.stats.Drops++
			completed = true
		}
	}
	if completed {
		cls := m.class
		c.queue = c.queue[1:]
		c.cw = c.spec.CWmin
		if success && cls == dot11.ClassProbeReq {
			s.scheduleProbeResponse(c)
		}
		if c.arrivalBlocked && len(c.queue) < queueCap {
			c.arrivalBlocked = false
			s.scheduleArrival(c)
		}
	}
	if len(c.queue) == 0 {
		c.contending = false
		s.removeContender(c)
	}
}

// scheduleProbeResponse makes the AP answer a successful probe request.
func (s *Simulator) scheduleProbeResponse(requester *station) {
	ap := requester.ap
	if ap == nil {
		return
	}
	delay := 600 + requester.rng.Int64N(2_500)
	req := requester
	s.schedule(s.now+delay, func() {
		s.enqueueMgmt(ap, mpdu{
			class: dot11.ClassProbeResp, sizeOnAir: 24 + 118 + 4, dest: req,
		})
	})
}

// --- monitor ------------------------------------------------------------------

// emit records a frame subject to monitor capture behaviour. delivered
// reflects whether the intended receiver decoded it; the monitor is an
// independent receiver and may capture frames the AP lost, and vice
// versa.
func (s *Simulator) emit(c *station, rec capture.Record, delivered bool) {
	if !delivered {
		// A frame that faded at the AP is often still seen (the monitor
		// sits elsewhere): captured fine, captured corrupt, or missed.
		x := s.monRng.Float64()
		switch {
		case x < 0.45:
			// fallthrough to normal capture below
		case x < 0.75:
			rec.FCSOK = false
		default:
			s.stats.CaptureDropped++
			return
		}
	} else if s.cfg.CaptureLossProb > 0 && s.monRng.Float64() < s.cfg.CaptureLossProb {
		s.stats.CaptureDropped++
		return
	}
	s.emitRaw(c, rec)
}

// randomizedMAC draws a fresh locally-administered address. The 0x06
// first byte (local bit set, distinct from both the simulator's base
// 0x02 prefix and the clusterer's canonical 0x0a prefix) makes rotated
// senders recognisable in traces.
func randomizedMAC(r *rand.Rand) dot11.Addr {
	v := r.Uint64()
	return dot11.Addr{0x06, byte(v >> 32), byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
}

// emitRaw stamps monitor-side fields and appends the record.
func (s *Simulator) emitRaw(c *station, rec capture.Record) {
	sig := c.cfg.MonitorSignalDBm
	if sig == 0 {
		sig = -55
	}
	sig += stats.TruncNormal(s.monRng, 0, 2, -8, 8)
	if sig < -94 {
		sig = -94
	}
	if sig > -20 {
		sig = -20
	}
	rec.SignalDBm = int8(sig)
	if rec.Class == dot11.ClassProbeReq && len(c.spec.ProbeIEs) > 0 {
		// Spec.ProbeIEs is immutable after Instantiate, so sharing the
		// slice across records is safe and allocation-free.
		rec.ProbeIEs = c.spec.ProbeIEs
	}
	s.records = append(s.records, rec)
}
