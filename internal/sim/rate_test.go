package sim

import (
	"testing"

	"dot11fp/internal/device"
	"dot11fp/internal/stats"
)

func specWithPolicy(t *testing.T, policy device.RatePolicy, pref float64, mode device.PHYMode) device.Spec {
	t.Helper()
	p, err := device.ByName("atheros-like-a")
	if err != nil {
		t.Fatal(err)
	}
	p.RatePolicy = policy
	p.PreferredRateMbps = pref
	p.Mode = mode
	return p.Instantiate(1, stats.NewRand(1, 1))
}

func TestFixedRateNeverMoves(t *testing.T) {
	t.Parallel()
	rc := newRateController(specWithPolicy(t, device.RateFixed, 24, device.ModeG), stats.NewRand(1, 2))
	for i := 0; i < 100; i++ {
		if got := rc.Rate(); got != 24 {
			t.Fatalf("fixed rate moved to %v", got)
		}
		rc.OnResult(i%3 == 0)
	}
}

func TestARFStepsDownOnFailures(t *testing.T) {
	t.Parallel()
	rc := newRateController(specWithPolicy(t, device.RateARF, 54, device.ModeG), stats.NewRand(1, 3))
	if rc.Rate() != 54 {
		t.Fatalf("ARF starts at %v, want ceiling 54", rc.Rate())
	}
	rc.OnResult(false)
	rc.OnResult(false) // downAfter = 2
	if rc.Rate() != 48 {
		t.Fatalf("after 2 failures rate = %v, want 48", rc.Rate())
	}
	// Ten consecutive successes climb back up.
	for i := 0; i < 10; i++ {
		rc.OnResult(true)
	}
	if rc.Rate() != 54 {
		t.Fatalf("after 10 successes rate = %v, want 54", rc.Rate())
	}
}

func TestARFRespectsVendorCeiling(t *testing.T) {
	t.Parallel()
	rc := newRateController(specWithPolicy(t, device.RateARF, 36, device.ModeG), stats.NewRand(1, 4))
	for i := 0; i < 200; i++ {
		rc.OnResult(true)
		if got := rc.Rate(); got > 36 {
			t.Fatalf("rate %v exceeded vendor ceiling 36", got)
		}
	}
	if rc.Rate() != 36 {
		t.Fatalf("steady rate = %v, want ceiling 36", rc.Rate())
	}
}

func TestARFNeverBelowFloor(t *testing.T) {
	t.Parallel()
	rc := newRateController(specWithPolicy(t, device.RateARF, 54, device.ModeG), stats.NewRand(1, 5))
	for i := 0; i < 200; i++ {
		rc.OnResult(false)
		if got := rc.Rate(); got < 1 {
			t.Fatalf("rate fell below 1 Mb/s: %v", got)
		}
	}
	if rc.Rate() != 1 {
		t.Fatalf("floor rate = %v, want 1", rc.Rate())
	}
}

func TestModeBLadder(t *testing.T) {
	t.Parallel()
	rc := newRateController(specWithPolicy(t, device.RateARF, 11, device.ModeB), stats.NewRand(1, 6))
	seen := map[float64]bool{}
	for i := 0; i < 400; i++ {
		r := rc.Rate()
		seen[r] = true
		switch r {
		case 1, 2, 5.5, 11:
		default:
			t.Fatalf("ModeB card used OFDM rate %v", r)
		}
		// Mostly successes with occasional paired failures, so ARF both
		// climbs and falls within the b ladder.
		rc.OnResult(i%12 < 10)
	}
	if len(seen) < 2 {
		t.Error("ARF on a b-card never moved")
	}
}

func TestSamplerSpreadsButStaysNearHome(t *testing.T) {
	t.Parallel()
	rc := newRateController(specWithPolicy(t, device.RateSampler, 54, device.ModeG), stats.NewRand(1, 7))
	counts := map[float64]int{}
	const n = 10_000
	for i := 0; i < n; i++ {
		counts[rc.Rate()]++
		rc.OnResult(true)
	}
	if len(counts) < 3 {
		t.Fatalf("sampler used only %d rates", len(counts))
	}
	if frac := float64(counts[54]) / n; frac < 0.7 || frac > 0.95 {
		t.Fatalf("home-rate fraction = %v, want ≈0.82", frac)
	}
}

func TestSamplerFailuresDuringSamplingDoNotMoveHome(t *testing.T) {
	t.Parallel()
	rc := newRateController(specWithPolicy(t, device.RateSampler, 54, device.ModeG), stats.NewRand(1, 8))
	// Fail only on sampled (non-54) attempts: home must stay at 54.
	for i := 0; i < 2_000; i++ {
		r := rc.Rate()
		rc.OnResult(r == 54)
	}
	// The final home rate is observable through the majority rate.
	counts := map[float64]int{}
	for i := 0; i < 1_000; i++ {
		counts[rc.Rate()]++
		rc.OnResult(true)
	}
	best, bn := 0.0, 0
	for r, n := range counts {
		if n > bn {
			best, bn = r, n
		}
	}
	if best != 54 {
		t.Fatalf("home rate drifted to %v", best)
	}
}

func TestSuccessProbMonotone(t *testing.T) {
	t.Parallel()
	for _, rate := range device.RatesG {
		prev := -1.0
		for snr := 0.0; snr <= 40; snr += 2 {
			p := successProb(rate, snr)
			if p < 0.0199 || p > 1 {
				t.Fatalf("successProb(%v, %v) = %v out of range", rate, snr, p)
			}
			if p < prev {
				t.Fatalf("successProb(%v) not monotone in SNR", rate)
			}
			prev = p
		}
	}
	// Higher rates need more SNR: at 16 dB, 54 Mb/s must be less
	// reliable than 6 Mb/s.
	if successProb(54, 16) >= successProb(6, 16) {
		t.Error("rate/SNR ordering violated")
	}
}

func TestSNRProcessStationary(t *testing.T) {
	t.Parallel()
	p := newSNRProcess(25, 1, 0, 0, 0, stats.NewRand(2, 1))
	var min, max float64 = 1e9, -1e9
	for i := 0; i < 10_000; i++ {
		p.Step()
		v := p.SNR()
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	// AR(1) with σ=1, ρ=0.9: stationary σ ≈ 2.3; excursions beyond
	// ±12 dB would indicate a broken process.
	if min < 25-12 || max > 25+12 {
		t.Fatalf("SNR excursions [%v, %v] around base 25", min, max)
	}
}

func TestSNRProcessRelocates(t *testing.T) {
	t.Parallel()
	p := newSNRProcess(30, 0.1, 0.05, 5, 10, stats.NewRand(3, 1))
	moved := false
	for i := 0; i < 1_000; i++ {
		p.Step()
		if p.SNR() < 15 {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("mobile process never relocated to the low-SNR band")
	}
}

func TestAirtime(t *testing.T) {
	t.Parallel()
	tests := []struct {
		size  int
		rate  float64
		short bool
		want  int64
	}{
		{1500, 54, true, 26 + 223},    // OFDM: ceil(12000/54)=223
		{1500, 11, false, 192 + 1091}, // CCK long preamble
		{1500, 11, true, 96 + 1091},   // CCK short preamble
		{1500, 1, true, 192 + 12000},  // 1 Mb/s never uses short preamble
		{14, 24, true, 26 + 5},        // ACK at OFDM basic rate
	}
	for _, tt := range tests {
		if got := AirtimeUs(tt.size, tt.rate, tt.short); got != tt.want {
			t.Errorf("AirtimeUs(%d, %v, %v) = %d, want %d", tt.size, tt.rate, tt.short, got, tt.want)
		}
	}
}

func TestCtrlRateFor(t *testing.T) {
	t.Parallel()
	tests := []struct{ data, want float64 }{
		{54, 24}, {36, 24}, {24, 24}, {18, 12}, {12, 12}, {9, 6}, {6, 6},
		{11, 2}, {5.5, 2}, {2, 2}, {1, 1},
	}
	for _, tt := range tests {
		if got := ctrlRateFor(tt.data); got != tt.want {
			t.Errorf("ctrlRateFor(%v) = %v, want %v", tt.data, got, tt.want)
		}
	}
}
