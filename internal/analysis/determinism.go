package analysis

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Determinism is the fpdeterminism analyzer. It applies only to
// packages that opt in with //fp:deterministic in their package doc —
// the packages whose event streams and serialized artifacts must be
// bit-identical between the serial and sharded engines at every shard
// count (the property the identification-rate reproduction rests on).
//
// It reports:
//
//   - map iteration whose body lets map order escape: emitting events
//     (emit*/Emit*/Handle* calls, channel sends), appending to a slice
//     declared outside the loop, or writing serialized output
//     (Write/Encode/Marshal/Fprint calls). Iterations that only build
//     other maps or fold order-insensitive aggregates are fine, as is
//     anything annotated //fp:unordered with a justification (e.g. the
//     collected slice is sorted before it escapes).
//   - wall-clock reads (time.Now/Since/Until) and global math/rand
//     draws outside the //fp:wallclock allowlist: stats timing is
//     acknowledged per-line, everything else is a reproducibility bug.
var Determinism = &analysis.Analyzer{
	Name: "fpdeterminism",
	Doc:  "report map-order and wall-clock leaks in bit-identical packages",
	Run:  runDeterminism,
}

func runDeterminism(pass *analysis.Pass) (interface{}, error) {
	if !packageHasDirective(pass.Files, "deterministic") {
		return nil, nil
	}
	for _, file := range pass.Files {
		ix := fileLines(pass.Fset, file)
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				checkMapRange(pass, ix, n)
			case *ast.CallExpr:
				checkWallClock(pass, ix, n)
			}
			return true
		})
	}
	return nil, nil
}

// checkWallClock flags unacknowledged wall-clock reads and global rand
// draws.
func checkWallClock(pass *analysis.Pass, ix lineIndex, call *ast.CallExpr) {
	callee := calleeOf(pass.TypesInfo, call)
	if callee == nil || callee.Pkg() == nil {
		return
	}
	path := callee.Pkg().Path()
	qname := path + "." + callee.Name()
	switch qname {
	case "time.Now", "time.Since", "time.Until":
		if _, ok := ix.at(pass.Fset, call.Pos(), "wallclock"); ok {
			return
		}
		pass.Reportf(call.Pos(), "wall-clock read (%s) in a deterministic package; annotate //fp:wallclock with a justification if output-neutral", qname)
	default:
		if hotRandPkgs[path] && callee.Type().(*types.Signature).Recv() == nil {
			if _, ok := ix.at(pass.Fset, call.Pos(), "wallclock"); ok {
				return
			}
			pass.Reportf(call.Pos(), "global %s draw in a deterministic package (seed an explicit *rand.Rand instead)", qname)
		}
	}
}

// checkMapRange flags map iterations whose body lets iteration order
// escape into events, outer slices or serialized output.
func checkMapRange(pass *analysis.Pass, ix lineIndex, rng *ast.RangeStmt) {
	t := pass.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	if _, ok := ix.at(pass.Fset, rng.Pos(), "unordered"); ok {
		if d, _ := ix.at(pass.Fset, rng.Pos(), "unordered"); d.Reason == "" {
			pass.Reportf(d.Pos, "fp:unordered annotation requires a justification")
		}
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send inside map iteration leaks map order into the event stream")
			return true
		case *ast.CallExpr:
			if name, bad := orderEscapingCall(pass.TypesInfo, n); bad {
				pass.Reportf(n.Pos(), "%s inside map iteration leaks map order (sort first, or annotate //fp:unordered with why order cannot escape)", name)
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				if appendsToOuter(pass.TypesInfo, rng, lhs, n.Rhs[i]) {
					pass.Reportf(n.Pos(), "append to a slice declared outside the loop records map order (sort afterwards and annotate //fp:unordered, or iterate sorted keys)")
				}
			}
		}
		return true
	})
}

// orderEscapingCall reports calls that emit events or serialized bytes.
func orderEscapingCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	var name string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return "", false
	}
	switch {
	case strings.HasPrefix(name, "emit"), strings.HasPrefix(name, "Emit"),
		strings.HasPrefix(name, "Handle"),
		name == "Write", name == "WriteString", name == "WriteByte",
		strings.HasPrefix(name, "Encode"), strings.HasPrefix(name, "Marshal"),
		strings.HasPrefix(name, "Fprint"), strings.HasPrefix(name, "Print"):
		return name + " call", true
	}
	return "", false
}

// appendsToOuter reports `x = append(x, ...)` where x is declared
// outside the range statement.
func appendsToOuter(info *types.Info, rng *ast.RangeStmt, lhs, rhs ast.Expr) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	base := baseIdent(lhs)
	if base == nil {
		return false
	}
	obj := info.Uses[base]
	if obj == nil {
		obj = info.Defs[base]
	}
	if obj == nil {
		return false
	}
	// Declared outside the loop iff its declaration position precedes
	// the range statement or follows its end.
	return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
}
