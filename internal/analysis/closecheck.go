package analysis

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
)

// CloseCheck is the fpclosecheck analyzer: an error returned by Close
// or Sync that is silently discarded. On the checkpoint/save path the
// fsync discipline (temp + fsync + rename + dir-fsync) is only as
// strong as its weakest unchecked return — a Close that reports the
// deferred write-back failure of everything buffered is the last chance
// to notice a torn checkpoint. Elsewhere it is still the difference
// between "the trace was written" and "the trace was probably written".
//
// Flagged: statement-position calls `x.Close()` / `x.Sync()` (including
// deferred and go'd ones) whose single error result vanishes.
// Not flagged: `_ = x.Close()` (a visible, reviewable discard — use it
// for read-only handles where the close error carries no data risk,
// with a comment saying so) and lines annotated //fp:closeok with a
// justification (for defers that cannot take an assignment).
var CloseCheck = &analysis.Analyzer{
	Name: "fpclosecheck",
	Doc:  "report discarded Close/Sync error returns",
	Run:  runCloseCheck,
}

func runCloseCheck(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		ix := fileLines(pass.Fset, file)
		ast.Inspect(file, func(n ast.Node) bool {
			var call *ast.CallExpr
			kind := ""
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, _ = ast.Unparen(n.X).(*ast.CallExpr)
			case *ast.DeferStmt:
				call, kind = n.Call, "deferred "
			case *ast.GoStmt:
				call, kind = n.Call, "go'd "
			default:
				return true
			}
			if call == nil {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			if name != "Close" && name != "Sync" {
				return true
			}
			callee := calleeOf(pass.TypesInfo, call)
			var sig *types.Signature
			if callee != nil {
				sig = callee.Type().(*types.Signature)
			} else if tv, ok := pass.TypesInfo.Types[call.Fun]; ok {
				sig, _ = tv.Type.Underlying().(*types.Signature)
			}
			if sig == nil || sig.Params().Len() != 0 || sig.Results().Len() != 1 {
				return true
			}
			if !isErrorType(sig.Results().At(0).Type()) {
				return true
			}
			if d, ok := ix.at(pass.Fset, call.Pos(), "closeok"); ok {
				if d.Reason == "" {
					pass.Reportf(d.Pos, "fp:closeok annotation requires a justification")
				}
				return true
			}
			pass.Reportf(call.Pos(), "%s%s error discarded (check it, or make the discard visible: `_ = x.%s()` for read-only handles, //fp:closeok on defers)", kind, name, name)
			return true
		})
	}
	return nil, nil
}

func isErrorType(t types.Type) bool {
	named, ok := t.(interface{ Obj() *types.TypeName })
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}
